#!/usr/bin/env bash
# Control-plane smoke test: build hrmcd, start it with an HTTP control
# listener on a unix socket, drive a complete multicast transfer over
# loopback purely through the API (admit receiver + sender, poll to
# completion, scrape metrics), drain a second in-flight flow, shut the
# daemon down gracefully, and verify the received bytes.
#
# Needs only bash, curl, and the go toolchain. Exits non-zero on any
# failure.
set -euo pipefail

cd "$(dirname "$0")/.."
TMP=$(mktemp -d)
SOCK="$TMP/hrmcd.sock"
CURL=(curl -sS --fail-with-body --unix-socket "$SOCK")
API=http://hrmcd

cleanup() {
    [[ -n "${HRMCD_PID:-}" ]] && kill "$HRMCD_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "smoke_control: FAIL: $*" >&2; exit 1; }

echo "== build hrmcd"
go build -o "$TMP/hrmcd" ./cmd/hrmcd

cat >"$TMP/config.json" <<EOF
{
  "tick_ms": 10,
  "stats_every_sec": 0,
  "loopback": true,
  "listen": "unix:$SOCK",
  "groups": []
}
EOF

echo "== start daemon"
"$TMP/hrmcd" -config "$TMP/config.json" >"$TMP/hrmcd.log" 2>&1 &
HRMCD_PID=$!

for _ in $(seq 50); do
    [[ -S "$SOCK" ]] && break
    kill -0 "$HRMCD_PID" || { cat "$TMP/hrmcd.log" >&2; fail "daemon died on startup"; }
    sleep 0.1
done
[[ -S "$SOCK" ]] || fail "control socket never appeared"
"${CURL[@]}" "$API/v1/status" >/dev/null

# Pulls "field":<value> out of single-object JSON output (no jq in the
# loop: keep the dependency surface to curl).
jsonfield() { grep -o "\"$1\": *\"\\?[^,\"}]*" | head -n1 | sed 's/.*: *"\?//'; }

echo "== admit receiver + sender (256 KiB over 239.66.77.88:15999)"
SIZE=262144
RECV_ID=$("${CURL[@]}" -X POST "$API/v1/flows" -d '{
  "name": "smoke-recv", "group": "239.66.77.88:15999", "role": "recv",
  "file": "'"$TMP"'/out.bin", "local_port": 2, "peer_port": 1
}' | jsonfield id)
SEND_ID=$("${CURL[@]}" -X POST "$API/v1/flows" -d '{
  "name": "smoke-send", "group": "239.66.77.88:15999", "role": "send",
  "size": '"$SIZE"', "receivers": 1, "local_port": 1, "peer_port": 2
}' | jsonfield id)
echo "   receiver id=$RECV_ID sender id=$SEND_ID"

echo "== wait for completion"
for i in $(seq 100); do
    state=$("${CURL[@]}" "$API/v1/flows/$RECV_ID" | jsonfield state)
    [[ "$state" == done ]] && break
    [[ "$state" == failed ]] && { cat "$TMP/hrmcd.log" >&2; fail "receiver failed"; }
    [[ $i == 100 ]] && fail "transfer did not complete (state=$state)"
    sleep 0.1
done

echo "== scrape metrics"
"${CURL[@]}" "$API/metrics" >"$TMP/metrics.txt"
for metric in hrmc_session_budget_bytes_per_second \
              hrmc_total_sender_bytes_sent \
              hrmc_sender_rate_bps \
              hrmc_receiver_bytes_delivered \
              hrmc_flow_done; do
    grep -q "^$metric" "$TMP/metrics.txt" || fail "metrics missing $metric"
done
grep "^hrmc_total_receiver_bytes_delivered $SIZE\$" "$TMP/metrics.txt" >/dev/null \
    || fail "metrics do not show $SIZE bytes delivered"

echo "== drain an in-flight flow"
# A slow, rate-capped sender stays mid-transfer long enough to be
# drained from the API; its receiver then reaches end of stream alone.
VICTIM_RECV=$("${CURL[@]}" -X POST "$API/v1/flows" -d '{
  "name": "victim-recv", "group": "239.66.77.89:16999", "role": "recv",
  "local_port": 4, "peer_port": 3
}' | jsonfield id)
VICTIM_SEND=$("${CURL[@]}" -X POST "$API/v1/flows" -d '{
  "name": "victim-send", "group": "239.66.77.89:16999", "role": "send",
  "size": 67108864, "receivers": 1, "local_port": 3, "peer_port": 4,
  "buf": 16384, "min_rate_bps": 100000, "max_rate_bps": 200000
}' | jsonfield id)
sleep 1
state=$("${CURL[@]}" -X DELETE "$API/v1/flows/$VICTIM_SEND?mode=drain" | jsonfield state)
[[ "$state" == closed ]] || fail "drained sender state=$state, want closed"
for i in $(seq 100); do
    state=$("${CURL[@]}" "$API/v1/flows/$VICTIM_RECV" | jsonfield state)
    [[ "$state" == done || "$state" == closed ]] && break
    [[ $i == 100 ]] && fail "victim receiver never finished after drain (state=$state)"
    sleep 0.1
done
"${CURL[@]}" -X DELETE "$API/v1/flows/$VICTIM_RECV?mode=forget" >/dev/null

echo "== graceful shutdown"
"${CURL[@]}" -X POST "$API/v1/shutdown" >/dev/null
for i in $(seq 100); do
    kill -0 "$HRMCD_PID" 2>/dev/null || break
    [[ $i == 100 ]] && { cat "$TMP/hrmcd.log" >&2; fail "daemon did not exit"; }
    sleep 0.1
done
wait "$HRMCD_PID" || { cat "$TMP/hrmcd.log" >&2; fail "daemon exited non-zero"; }
HRMCD_PID=""

echo "== verify received bytes"
[[ $(stat -c %s "$TMP/out.bin") == "$SIZE" ]] \
    || fail "out.bin is $(stat -c %s "$TMP/out.bin") bytes, want $SIZE"

echo "smoke_control: PASS"
