#!/usr/bin/env bash
# bench.sh — run BenchmarkSessionMultiplex at 1/12/64 flows and write
# BENCH_5.json (ns/op, MB/s, B/op, allocs/op per flow count) next to
# the recorded Transport-v2 baseline, so the zero-copy datapath win is
# tracked as a checked-in artifact.
#
# The 1-flow case is the regression gate: Transport v2 left it at
# 3.83 MB/s (the single-flow ceiling the zero-copy datapath removes);
# if the current run drops more than 20% below that floor the script
# fails, which fails the CI smoke step.
#
# The recorded baseline is commit 859c265 re-measured under this PR's
# allocation-light harness (source data and reader scratch hoisted out
# of the timed loop), so baseline and current count the same things.
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime  go -benchtime value (default 3x; CI smoke uses 1x)
# Env:
#   BENCH_OUT  output path (default BENCH_5.json in the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
OUT="${BENCH_OUT:-BENCH_5.json}"

RAW=$(HRMC_BENCH_FLOWS=1,12,64 go test -run '^$' -bench 'BenchmarkSessionMultiplex' \
	-benchtime "$BENCHTIME" -benchmem .)
echo "$RAW"

echo "$RAW" | awk -v benchtime="$BENCHTIME" '
/BenchmarkSessionMultiplex\/flows=/ {
	name = $1
	sub(/.*flows=/, "", name)
	sub(/-[0-9]+$/, "", name)
	# Fields: name iters ns "ns/op" mbs "MB/s" bytes "B/op" allocs "allocs/op"
	cur[name] = sprintf("{\"ns_op\": %s, \"mb_s\": %s, \"b_op\": %s, \"allocs_op\": %s}",
		$3, $5, $7, $9)
	mbs[name] = $5
	if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkSessionMultiplex\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"baseline\": {\n"
	printf "    \"commit\": \"859c265 (Transport v2, per-flow goroutine pair; re-measured with the allocation-light harness)\",\n"
	printf "    \"flows\": {\n"
	printf "      \"1\": {\"ns_op\": 68454101, \"mb_s\": 3.83, \"b_op\": 904717, \"allocs_op\": 1512},\n"
	printf "      \"12\": {\"ns_op\": 77773317, \"mb_s\": 40.45, \"b_op\": 10863300, \"allocs_op\": 17914},\n"
	printf "      \"64\": {\"ns_op\": 224789063, \"mb_s\": 74.64, \"b_op\": 57859487, \"allocs_op\": 95631}\n"
	printf "    }\n"
	printf "  },\n"
	printf "  \"current\": {\n"
	printf "    \"flows\": {\n"
	for (i = 0; i < n; i++) {
		printf "      \"%s\": %s%s\n", order[i], cur[order[i]], (i < n-1 ? "," : "")
	}
	printf "    }\n"
	printf "  }\n"
	printf "}\n"
	# Gate: 1-flow MB/s must stay within 20% of the recorded baseline.
	if ("1" in mbs && mbs["1"] + 0 < 3.83 * 0.8) {
		printf "bench.sh: 1-flow regression: %.2f MB/s < 80%% of baseline 3.83 MB/s\n", mbs["1"] > "/dev/stderr"
		exit 1
	}
}' > "$OUT"

echo "wrote $OUT"
