#!/usr/bin/env bash
# bench.sh — run BenchmarkSessionMultiplex at 1/12/64 flows and write
# BENCH_4.json (ns/op, MB/s, B/op, allocs/op per flow count) next to
# the recorded pre-Transport-v2 baseline, so the batching win is
# tracked as a checked-in artifact.
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime  go -benchtime value (default 3x; CI smoke uses 1x)
# Env:
#   BENCH_OUT  output path (default BENCH_4.json in the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
OUT="${BENCH_OUT:-BENCH_4.json}"

RAW=$(HRMC_BENCH_FLOWS=1,12,64 go test -run '^$' -bench 'BenchmarkSessionMultiplex' \
	-benchtime "$BENCHTIME" -benchmem .)
echo "$RAW"

echo "$RAW" | awk -v benchtime="$BENCHTIME" '
/BenchmarkSessionMultiplex\/flows=/ {
	name = $1
	sub(/.*flows=/, "", name)
	sub(/-[0-9]+$/, "", name)
	# Fields: name iters ns "ns/op" mbs "MB/s" bytes "B/op" allocs "allocs/op"
	cur[name] = sprintf("{\"ns_op\": %s, \"mb_s\": %s, \"b_op\": %s, \"allocs_op\": %s}",
		$3, $5, $7, $9)
	if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkSessionMultiplex\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"baseline\": {\n"
	printf "    \"commit\": \"a16ad3e (pre-Transport v2, per-packet hub + channel inbox)\",\n"
	printf "    \"flows\": {\n"
	printf "      \"1\": {\"ns_op\": 71500000, \"mb_s\": 3.67, \"b_op\": 2445728, \"allocs_op\": 1883},\n"
	printf "      \"12\": {\"ns_op\": 190400000, \"mb_s\": 16.52, \"b_op\": 102527077, \"allocs_op\": 134480},\n"
	printf "      \"64\": {\"ns_op\": 7406000000, \"mb_s\": 2.27, \"b_op\": 2368113277, \"allocs_op\": 3305570}\n"
	printf "    }\n"
	printf "  },\n"
	printf "  \"current\": {\n"
	printf "    \"flows\": {\n"
	for (i = 0; i < n; i++) {
		printf "      \"%s\": %s%s\n", order[i], cur[order[i]], (i < n-1 ? "," : "")
	}
	printf "    }\n"
	printf "  }\n"
	printf "}\n"
}' > "$OUT"

echo "wrote $OUT"
