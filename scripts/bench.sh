#!/usr/bin/env bash
# bench.sh — run BenchmarkSessionMultiplex at 1/12/64 flows and write
# BENCH_5.json (ns/op, MB/s, B/op, allocs/op per flow count) next to
# the recorded Transport-v2 baseline, so the zero-copy datapath win is
# tracked as a checked-in artifact.
#
# The 1-flow case is the regression gate: Transport v2 left it at
# 3.83 MB/s (the single-flow ceiling the zero-copy datapath removes);
# if the current run drops more than 20% below that floor the script
# fails, which fails the CI smoke step.
#
# The recorded baseline is commit 859c265 re-measured under this PR's
# allocation-light harness (source data and reader scratch hoisted out
# of the timed loop), so baseline and current count the same things.
#
# It also runs BenchmarkFeedbackPlane (flat vs. hierarchical feedback
# at 1k/10k receivers) and writes BENCH_6.json with the per-round cost
# and the flat/hier ratio — the repair tier's sender-side win as a
# checked-in artifact. The gate there is shape, not speed: the
# hierarchical round must stay at least 10x cheaper than the flat one
# at 10k receivers.
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime  go -benchtime value (default 3x; CI smoke uses 1x)
# Env:
#   BENCH_OUT   output path (default BENCH_5.json in the repo root)
#   BENCH6_OUT  feedback-plane output path (default BENCH_6.json)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
OUT="${BENCH_OUT:-BENCH_5.json}"
OUT6="${BENCH6_OUT:-BENCH_6.json}"

RAW=$(HRMC_BENCH_FLOWS=1,12,64 go test -run '^$' -bench 'BenchmarkSessionMultiplex' \
	-benchtime "$BENCHTIME" -benchmem .)
echo "$RAW"

echo "$RAW" | awk -v benchtime="$BENCHTIME" '
/BenchmarkSessionMultiplex\/flows=/ {
	name = $1
	sub(/.*flows=/, "", name)
	sub(/-[0-9]+$/, "", name)
	# Fields: name iters ns "ns/op" mbs "MB/s" bytes "B/op" allocs "allocs/op"
	cur[name] = sprintf("{\"ns_op\": %s, \"mb_s\": %s, \"b_op\": %s, \"allocs_op\": %s}",
		$3, $5, $7, $9)
	mbs[name] = $5
	if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkSessionMultiplex\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"baseline\": {\n"
	printf "    \"commit\": \"859c265 (Transport v2, per-flow goroutine pair; re-measured with the allocation-light harness)\",\n"
	printf "    \"flows\": {\n"
	printf "      \"1\": {\"ns_op\": 68454101, \"mb_s\": 3.83, \"b_op\": 904717, \"allocs_op\": 1512},\n"
	printf "      \"12\": {\"ns_op\": 77773317, \"mb_s\": 40.45, \"b_op\": 10863300, \"allocs_op\": 17914},\n"
	printf "      \"64\": {\"ns_op\": 224789063, \"mb_s\": 74.64, \"b_op\": 57859487, \"allocs_op\": 95631}\n"
	printf "    }\n"
	printf "  },\n"
	printf "  \"current\": {\n"
	printf "    \"flows\": {\n"
	for (i = 0; i < n; i++) {
		printf "      \"%s\": %s%s\n", order[i], cur[order[i]], (i < n-1 ? "," : "")
	}
	printf "    }\n"
	printf "  }\n"
	printf "}\n"
	# Gate: 1-flow MB/s must stay within 20% of the recorded baseline.
	if ("1" in mbs && mbs["1"] + 0 < 3.83 * 0.8) {
		printf "bench.sh: 1-flow regression: %.2f MB/s < 80%% of baseline 3.83 MB/s\n", mbs["1"] > "/dev/stderr"
		exit 1
	}
}' > "$OUT"

echo "wrote $OUT"

RAW6=$(go test -run '^$' -bench 'BenchmarkFeedbackPlane' \
	-benchtime "$BENCHTIME" ./internal/sender)
echo "$RAW6"

echo "$RAW6" | awk -v benchtime="$BENCHTIME" '
/BenchmarkFeedbackPlane\// {
	name = $1
	sub(/^BenchmarkFeedbackPlane\//, "", name)
	sub(/-[0-9]+$/, "", name)
	# Fields: name iters ns "ns/op"
	ns[name] = $3
	if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkFeedbackPlane\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"note\": \"ns per full feedback round at the sender: every flat receiver sends one UPDATE vs. every repair head (1%% of the population) sending one AGG_UPDATE\",\n"
	printf "  \"rounds\": {\n"
	for (i = 0; i < n; i++) {
		printf "    \"%s\": {\"ns_op\": %s}%s\n", order[i], ns[order[i]], (i < n-1 ? "," : "")
	}
	printf "  }"
	if (("flat/n=10000" in ns) && ("hier/n=10000" in ns) && ns["hier/n=10000"] + 0 > 0) {
		ratio = ns["flat/n=10000"] / ns["hier/n=10000"]
		printf ",\n  \"flat_over_hier_10k\": %.1f\n", ratio
	} else {
		ratio = -1
		printf "\n"
	}
	printf "}\n"
	# Gate: the hierarchical round must stay >= 10x cheaper at 10k.
	if (ratio >= 0 && ratio < 10) {
		printf "bench.sh: feedback-plane ratio %.1fx < 10x at 10k receivers\n", ratio > "/dev/stderr"
		exit 1
	}
}' > "$OUT6"

echo "wrote $OUT6"
