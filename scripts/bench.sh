#!/usr/bin/env bash
# bench.sh — run BenchmarkSessionMultiplex at 1/12/64 flows and write
# BENCH_5.json (ns/op, MB/s, B/op, allocs/op per flow count) next to
# the recorded Transport-v2 baseline, so the zero-copy datapath win is
# tracked as a checked-in artifact.
#
# The 1-flow case is the regression gate: Transport v2 left it at
# 3.83 MB/s (the single-flow ceiling the zero-copy datapath removes);
# if the current run drops more than 20% below that floor the script
# fails, which fails the CI smoke step.
#
# The recorded baseline is commit 859c265 re-measured under this PR's
# allocation-light harness (source data and reader scratch hoisted out
# of the timed loop), so baseline and current count the same things.
#
# It also runs BenchmarkFeedbackPlane (flat vs. hierarchical feedback
# at 1k/10k receivers) and writes BENCH_6.json with the per-round cost
# and the flat/hier ratio — the repair tier's sender-side win as a
# checked-in artifact. The gate there is shape, not speed: the
# hierarchical round must stay at least 10x cheaper than the flat one
# at 10k receivers.
#
# It also runs BenchmarkFecCrossover (proactive parity vs. pure
# selective-NAK at 1% and 5% loss, in the netsim, the live-hub, and the
# real-UDP-loopback harness) and writes BENCH_7.json with each arm's
# mean gap-recovery latency and the nak/fec ratio. Gates: at 1% loss
# parity must recover at least 2x faster than the NAK baseline in the
# netsim and live-hub harnesses; at 5% (the crossover region, where
# double-loss groups erode the single-parity win) it must merely not be
# slower; and each live FEC arm's allocs/op must stay within 1.2x of
# its non-FEC arm. The udp arm is exempt from the latency gates — on a
# ~zero-RTT loopback link NAK recovery costs only the timer grain while
# FEC fallbacks pay the NAK-defer interval, so pure NAK wins there by
# design (the crossover is RTT-dependent); its ratios are recorded as
# evidence, and it gates only allocations and bit-exact completion. It
# skips itself where loopback multicast is unavailable.
#
# It also runs BenchmarkManyGroups (1/64/1000 group flows over 8+8
# shared shard transports) and writes BENCH_8.json with each arm's
# per-group cost and post-admission goroutine growth. Gates: per-group
# cost at 1,000 groups must stay within 1.5x the 1-group cost (a
# shared-socket demux with an O(groups) per-packet term fails this),
# and goroutine growth at 1,000 groups must stay <= 64 (O(transports),
# never O(groups)).
#
# It also runs BenchmarkUdpOffload (UDP GSO/GRO segmentation offload on
# vs off over real loopback multicast, raw-transport and full-session
# arms) plus a 1/256-flow session sweep, and writes BENCH_9.json.
# Gates, applied only when the kernel supports offload (the on arms
# skip themselves otherwise): the raw offload send path must reach 4x
# the BENCH_5 single-flow figure (24.6 MB/s -> >= 98.4), datagrams per
# send syscall must stay >= 8, and per-flow cost at 256 flows must stay
# within 2x the single-flow cost (flat per-flow scaling; the margin
# absorbs 1x-benchtime variance).
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime  go -benchtime value (default 3x; CI smoke uses 1x)
# Env:
#   BENCH_OUT   output path (default BENCH_5.json in the repo root)
#   BENCH6_OUT  feedback-plane output path (default BENCH_6.json)
#   BENCH7_OUT  FEC crossover output path (default BENCH_7.json)
#   BENCH8_OUT  many-groups output path (default BENCH_8.json)
#   BENCH9_OUT  offload output path (default BENCH_9.json)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
OUT="${BENCH_OUT:-BENCH_5.json}"
OUT6="${BENCH6_OUT:-BENCH_6.json}"
OUT7="${BENCH7_OUT:-BENCH_7.json}"
OUT8="${BENCH8_OUT:-BENCH_8.json}"
OUT9="${BENCH9_OUT:-BENCH_9.json}"

RAW=$(HRMC_BENCH_FLOWS=1,12,64 go test -run '^$' -bench 'BenchmarkSessionMultiplex' \
	-benchtime "$BENCHTIME" -benchmem .)
echo "$RAW"

echo "$RAW" | awk -v benchtime="$BENCHTIME" '
/BenchmarkSessionMultiplex\/flows=/ {
	name = $1
	sub(/.*flows=/, "", name)
	sub(/-[0-9]+$/, "", name)
	# Fields: name iters ns "ns/op" mbs "MB/s" bytes "B/op" allocs "allocs/op"
	cur[name] = sprintf("{\"ns_op\": %s, \"mb_s\": %s, \"b_op\": %s, \"allocs_op\": %s}",
		$3, $5, $7, $9)
	mbs[name] = $5
	if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkSessionMultiplex\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"baseline\": {\n"
	printf "    \"commit\": \"859c265 (Transport v2, per-flow goroutine pair; re-measured with the allocation-light harness)\",\n"
	printf "    \"flows\": {\n"
	printf "      \"1\": {\"ns_op\": 68454101, \"mb_s\": 3.83, \"b_op\": 904717, \"allocs_op\": 1512},\n"
	printf "      \"12\": {\"ns_op\": 77773317, \"mb_s\": 40.45, \"b_op\": 10863300, \"allocs_op\": 17914},\n"
	printf "      \"64\": {\"ns_op\": 224789063, \"mb_s\": 74.64, \"b_op\": 57859487, \"allocs_op\": 95631}\n"
	printf "    }\n"
	printf "  },\n"
	printf "  \"current\": {\n"
	printf "    \"flows\": {\n"
	for (i = 0; i < n; i++) {
		printf "      \"%s\": %s%s\n", order[i], cur[order[i]], (i < n-1 ? "," : "")
	}
	printf "    }\n"
	printf "  }\n"
	printf "}\n"
	# Gate: 1-flow MB/s must stay within 20% of the recorded baseline.
	if ("1" in mbs && mbs["1"] + 0 < 3.83 * 0.8) {
		printf "bench.sh: 1-flow regression: %.2f MB/s < 80%% of baseline 3.83 MB/s\n", mbs["1"] > "/dev/stderr"
		exit 1
	}
}' > "$OUT"

echo "wrote $OUT"

RAW6=$(go test -run '^$' -bench 'BenchmarkFeedbackPlane' \
	-benchtime "$BENCHTIME" ./internal/sender)
echo "$RAW6"

echo "$RAW6" | awk -v benchtime="$BENCHTIME" '
/BenchmarkFeedbackPlane\// {
	name = $1
	sub(/^BenchmarkFeedbackPlane\//, "", name)
	sub(/-[0-9]+$/, "", name)
	# Fields: name iters ns "ns/op"
	ns[name] = $3
	if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkFeedbackPlane\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"note\": \"ns per full feedback round at the sender: every flat receiver sends one UPDATE vs. every repair head (1%% of the population) sending one AGG_UPDATE\",\n"
	printf "  \"rounds\": {\n"
	for (i = 0; i < n; i++) {
		printf "    \"%s\": {\"ns_op\": %s}%s\n", order[i], ns[order[i]], (i < n-1 ? "," : "")
	}
	printf "  }"
	if (("flat/n=10000" in ns) && ("hier/n=10000" in ns) && ns["hier/n=10000"] + 0 > 0) {
		ratio = ns["flat/n=10000"] / ns["hier/n=10000"]
		printf ",\n  \"flat_over_hier_10k\": %.1f\n", ratio
	} else {
		ratio = -1
		printf "\n"
	}
	printf "}\n"
	# Gate: the hierarchical round must stay >= 10x cheaper at 10k.
	if (ratio >= 0 && ratio < 10) {
		printf "bench.sh: feedback-plane ratio %.1fx < 10x at 10k receivers\n", ratio > "/dev/stderr"
		exit 1
	}
}' > "$OUT6"

echo "wrote $OUT6"

RAW7=$(go test -run '^$' -bench 'BenchmarkFecCrossover' \
	-benchtime "$BENCHTIME" .)
echo "$RAW7"

echo "$RAW7" | awk -v benchtime="$BENCHTIME" '
/BenchmarkFecCrossover\// {
	name = $1
	sub(/^BenchmarkFecCrossover\//, "", name)
	sub(/-[0-9]+$/, "", name)
	# Custom metrics shift field positions, so scan value-unit pairs
	# instead of indexing fixed columns. Only the live harness reports
	# allocs (b.ReportAllocs).
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "recovery-ms") rec[name] = $i
		else if ($(i+1) == "allocs/op") alloc[name] = $i
		else if ($(i+1) == "MB/s") mbs[name] = $i
	}
	if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkFecCrossover\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"note\": \"mean gap-recovery latency (detection to repair) per arm; nak_over_fec > 1 means parity beats retransmission. 5%% loss is the measured crossover region for K=8: double-loss groups fall back to NAKs and erode the single-parity win. The udp arm runs over real loopback multicast where RTT is ~0, so NAK recovery costs only the timer grain and pure NAK wins on latency — the RTT side of the crossover; it is gated on allocations and completion only.\",\n"
	printf "  \"arms\": {\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    \"%s\": {\"recovery_ms\": %s, \"mb_s\": %s", name, rec[name], mbs[name]
		if (name in alloc) printf ", \"allocs_op\": %s", alloc[name]
		printf "}%s\n", (i < n-1 ? "," : "")
	}
	printf "  },\n"
	printf "  \"nak_over_fec\": {\n"
	nr = 0
	nh = split("netsim live udp", harness, " ")
	split("1 5", losses, " ")
	for (h = 1; h <= nh; h++) {
		for (l = 1; l <= 2; l++) {
			key = harness[h] "/loss=" losses[l] "pct"
			fk = key "/fec"; nk = key "/nak"
			if ((fk in rec) && (nk in rec) && rec[fk] + 0 > 0) {
				ratio[key] = rec[nk] / rec[fk]
				out[nr++] = sprintf("    \"%s\": %.2f", key, ratio[key])
			} else if ((fk in rec) && (nk in rec)) {
				# No FEC-arm gaps at all: an unconditional win.
				ratio[key] = -1
				out[nr++] = sprintf("    \"%s\": null", key)
			}
		}
	}
	for (i = 0; i < nr; i++) printf "%s%s\n", out[i], (i < nr-1 ? "," : "")
	printf "  }\n"
	printf "}\n"
	# Gates. At 1% loss parity must win by 2x in the netsim and
	# live-hub harnesses (ratio -1 encodes a zero-gap FEC arm, which
	# trivially passes); at 5% it must not lose. The udp arm is exempt
	# from the latency gates (loopback RTT ~0 puts it on the NAK side
	# of the crossover by design) but every live FEC arm must stay
	# within 1.2x its NAK arm allocations.
	fail = 0
	for (h = 1; h <= nh; h++) {
		if (harness[h] != "udp") {
			k1 = harness[h] "/loss=1pct"
			if ((k1 in ratio) && ratio[k1] >= 0 && ratio[k1] < 2) {
				printf "bench.sh: %s FEC recovery only %.2fx faster at 1%% loss (gate: >= 2x)\n", harness[h], ratio[k1] > "/dev/stderr"
				fail = 1
			}
			k5 = harness[h] "/loss=5pct"
			if ((k5 in ratio) && ratio[k5] >= 0 && ratio[k5] < 1) {
				printf "bench.sh: %s FEC recovery slower than NAK at 5%% loss (%.2fx, gate: >= 1x)\n", harness[h], ratio[k5] > "/dev/stderr"
				fail = 1
			}
		}
		for (l = 1; l <= 2; l++) {
			key = harness[h] "/loss=" losses[l] "pct"
			fk = key "/fec"; nk = key "/nak"
			if ((fk in alloc) && (nk in alloc) && alloc[fk] + 0 > alloc[nk] * 1.2) {
				printf "bench.sh: %s allocs/op %s > 1.2x the NAK arm %s\n", key, alloc[fk], alloc[nk] > "/dev/stderr"
				fail = 1
			}
		}
	}
	if (fail) exit 1
}' > "$OUT7"

echo "wrote $OUT7"

RAW8=$(HRMC_BENCH_GROUPS=1,64,1000 go test -run '^$' -bench 'BenchmarkManyGroups' \
	-benchtime "$BENCHTIME" .)
echo "$RAW8"

echo "$RAW8" | awk -v benchtime="$BENCHTIME" '
/BenchmarkManyGroups\/groups=/ {
	name = $1
	sub(/.*groups=/, "", name)
	sub(/-[0-9]+$/, "", name)
	# Custom metrics shift field positions, so scan value-unit pairs.
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op") ns[name] = $i
		else if ($(i+1) == "MB/s") mbs[name] = $i
		else if ($(i+1) == "ns/group") pg[name] = $i
		else if ($(i+1) == "goroutines") gor[name] = $i
	}
	if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkManyGroups\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"note\": \"N group flows (one sender + one receiver each, 32 KiB) multiplexed over 8+8 shared shard transports. ns_group is the per-group cost of the whole admission+transfer cycle; goroutines is the growth after all flows are admitted, which sharding keeps O(transports). Gates: per-group cost at 1000 groups <= 1.5x the 1-group cost, goroutine growth at 1000 groups <= 64.\",\n"
	printf "  \"arms\": {\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    \"groups=%s\": {\"ns_op\": %s, \"mb_s\": %s, \"ns_group\": %s, \"goroutines\": %s}%s\n",
			name, ns[name], mbs[name], pg[name], gor[name], (i < n-1 ? "," : "")
	}
	printf "  }"
	ratio = -1
	if (("1" in pg) && ("1000" in pg) && pg["1"] + 0 > 0) {
		ratio = pg["1000"] / pg["1"]
		printf ",\n  \"pergroup_1000_over_1\": %.3f\n", ratio
	} else {
		printf "\n"
	}
	printf "}\n"
	# Gates: flat per-group cost, O(transports) goroutines.
	fail = 0
	if (ratio >= 0 && ratio > 1.5) {
		printf "bench.sh: per-group cost at 1000 groups is %.2fx the 1-group cost (gate: <= 1.5x)\n", ratio > "/dev/stderr"
		fail = 1
	}
	if (("1000" in gor) && gor["1000"] + 0 > 64) {
		printf "bench.sh: goroutine growth at 1000 groups = %s (gate: <= 64, O(transports))\n", gor["1000"] > "/dev/stderr"
		fail = 1
	}
	if (fail) exit 1
}' > "$OUT8"

echo "wrote $OUT8"

RAW9=$(go test -run '^$' -bench 'BenchmarkUdpOffload' -benchtime "$BENCHTIME" .)
echo "$RAW9"

RAW9B=$(HRMC_BENCH_FLOWS=1,256 go test -run '^$' -bench 'BenchmarkSessionMultiplex' \
	-benchtime "$BENCHTIME" .)
echo "$RAW9B"

printf '%s\n%s\n' "$RAW9" "$RAW9B" | awk -v benchtime="$BENCHTIME" '
/BenchmarkUdpOffload\// {
	name = $1
	sub(/^BenchmarkUdpOffload\//, "", name)
	sub(/-[0-9]+$/, "", name)
	# Custom metrics shift field positions, so scan value-unit pairs.
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "MB/s") mbs[name] = $i
		else if ($(i+1) == "dgram/syscall") dps[name] = $i
		else if ($(i+1) == "gso-segs/op") gso[name] = $i
		else if ($(i+1) == "gro-super/op") gro[name] = $i
		else if ($(i+1) == "rcvd-dgrams/op") rcv[name] = $i
	}
	if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
/BenchmarkSessionMultiplex\/flows=/ {
	fname = $1
	sub(/.*flows=/, "", fname)
	sub(/-[0-9]+$/, "", fname)
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/flow") nsflow[fname] = $i
	}
	if (!(fname in fseen)) { forder[fn++] = fname; fseen[fname] = 1 }
}
END {
	printf "{\n"
	printf "  \"benchmark\": \"BenchmarkUdpOffload\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"note\": \"UDP GSO/GRO over loopback multicast. The transport arms blast staged batches through a real SenderTransport (the wire datapath the offload optimizes: dgram_syscall is send amortization, gso_segs/gro_super confirm supersegments on both sides, rcvd is what survived an unpaced 1-CPU blast). The session arms run one reliable 4 MiB single-flow transfer end to end. Gate: the offload-on transport arm must reach 4x the BENCH_5 single-flow baseline (24.6 MB/s) and >= 8 datagrams per syscall; both skip (and the gate waives) on kernels without UDP_SEGMENT/UDP_GRO. flows records per-flow session cost at 1 vs 256 flows, gated at <= 2x.\",\n"
	printf "  \"bench5_single_flow_mb_s\": 24.6,\n"
	printf "  \"arms\": {\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    \"%s\": {\"mb_s\": %s", name, mbs[name]
		if (name in dps) printf ", \"dgram_syscall\": %s", dps[name]
		if (name in gso) printf ", \"gso_segs_op\": %s", gso[name]
		if (name in gro) printf ", \"gro_super_op\": %s", gro[name]
		if (name in rcv) printf ", \"rcvd_dgrams_op\": %s", rcv[name]
		printf "}%s\n", (i < n-1 ? "," : "")
	}
	printf "  },\n"
	printf "  \"flows\": {\n"
	for (i = 0; i < fn; i++) {
		printf "    \"%s\": {\"ns_flow\": %s}%s\n", forder[i], nsflow[forder[i]], (i < fn-1 ? "," : "")
	}
	printf "  }"
	ratio = -1
	if (("1" in nsflow) && ("256" in nsflow) && nsflow["1"] + 0 > 0) {
		ratio = nsflow["256"] / nsflow["1"]
		printf ",\n  \"perflow_256_over_1\": %.3f\n", ratio
	} else {
		printf "\n"
	}
	printf "}\n"
	# Gates. The offload-on arms skip on kernels without UDP_SEGMENT /
	# UDP_GRO, in which case only the flatness gate applies.
	fail = 0
	k = "transport/offload=on"
	if (k in mbs) {
		if (mbs[k] + 0 < 24.6 * 4) {
			printf "bench.sh: offload single-flow %.1f MB/s < 4x BENCH_5 baseline 24.6 (gate: >= 98.4)\n", mbs[k] > "/dev/stderr"
			fail = 1
		}
		if ((k in dps) && dps[k] + 0 < 8) {
			printf "bench.sh: offload datagrams-per-syscall %s < 8\n", dps[k] > "/dev/stderr"
			fail = 1
		}
		if ((k in gso) && gso[k] + 0 <= 0) {
			printf "bench.sh: offload arm ran but no traffic rode GSO supersegments\n" > "/dev/stderr"
			fail = 1
		}
	}
	if (ratio >= 0 && ratio > 2) {
		printf "bench.sh: per-flow cost at 256 flows is %.2fx the 1-flow cost (gate: <= 2x)\n", ratio > "/dev/stderr"
		fail = 1
	}
	if (fail) exit 1
}' > "$OUT9"

echo "wrote $OUT9"
