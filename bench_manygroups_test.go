package repro

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/app"
	"repro/internal/session"
	"repro/internal/transport"
)

// BenchmarkManyGroups measures the thousand-group daemon shape: N
// groups, each one sender flow and one receiver flow, multiplexed over
// a fixed pool of shared group transports (8 sender-side + 8
// receiver-side hub endpoints, the in-memory stand-in for hrmcd's shard
// sockets). The interesting series is per-group cost — ns/group must
// stay roughly flat from 1 group to 1,000, or the shared-socket demux
// has an O(groups) term per packet. The benchmark also reports the
// goroutine growth after all flows are open (before the harness spawns
// its own per-group workers), which must stay O(transports): sharding
// exists precisely so that group count never buys goroutines.
func BenchmarkManyGroups(b *testing.B) {
	for _, groups := range benchGroupCounts() {
		b.Run(fmt.Sprintf("groups=%d", groups), func(b *testing.B) {
			const size = 32 << 10
			datas := make([][]byte, groups)
			scratch := make([][]byte, groups)
			for g := range datas {
				datas[g] = make([]byte, size)
				app.FillPattern(datas[g], int64(g)<<20)
				scratch[g] = make([]byte, 32<<10)
			}
			b.SetBytes(int64(groups) * size)
			maxGrown := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if grown := runManyGroupsTransfer(b, datas, scratch); grown > maxGrown {
					maxGrown = grown
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(groups), "ns/group")
			b.ReportMetric(float64(maxGrown), "goroutines")
		})
	}
}

// benchGroupCounts returns the group counts BenchmarkManyGroups sweeps.
// HRMC_BENCH_GROUPS (comma-separated) overrides the default sweep;
// scripts/bench.sh uses it to pin the tracked 1/64/1000 points.
func benchGroupCounts() []int {
	env := os.Getenv("HRMC_BENCH_GROUPS")
	if env == "" {
		return []int{1, 64, 1000}
	}
	var out []int
	for _, part := range strings.Split(env, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			continue
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return []int{1, 64, 1000}
	}
	return out
}

// runManyGroupsTransfer opens one sender and one receiver flow per
// group over the shared shard endpoints, moves datas[g] on each, and
// returns the goroutine growth measured after every flow was admitted
// but before the harness's own workers start.
func runManyGroupsTransfer(b *testing.B, datas, scratch [][]byte) int {
	b.Helper()
	const shards = 8
	hub := transport.NewHub()
	sess := session.New(session.Config{})
	defer sess.Close()

	goroutinesBefore := runtime.NumGoroutine()
	var snd, rcv [shards]transport.GroupTransport
	for s := 0; s < shards; s++ {
		snd[s] = hub.Endpoint().(transport.GroupTransport)
		rcv[s] = hub.Endpoint().(transport.GroupTransport)
	}

	groups := len(datas)
	type pair struct {
		sf *session.SenderFlow
		rf *session.ReceiverFlow
	}
	pairs := make([]pair, groups)
	for g := 0; g < groups; g++ {
		addr := fmt.Sprintf("239.50.%d.%d", 1+g/254, 1+g%254)
		shard := g % shards
		gid, err := snd[shard].Register(addr)
		if err != nil {
			b.Fatalf("group %d register: %v", g, err)
		}
		if _, err := rcv[shard].Join(addr); err != nil {
			b.Fatalf("group %d join: %v", g, err)
		}
		sp, rp := uint16(2+2*g), uint16(3+2*g)
		rf, err := sess.OpenReceiverFlow(transport.AsTransport(rcv[shard]), session.FlowSpec{
			Kind: session.KindReceiver, LocalPort: rp, PeerPort: sp,
			Buf: 128 << 10, Group: gid,
		})
		if err != nil {
			b.Fatalf("group %d receiver: %v", g, err)
		}
		sf, err := sess.OpenSenderFlow(transport.AsTransport(snd[shard]), session.FlowSpec{
			Kind: session.KindSender, LocalPort: sp, PeerPort: rp,
			Buf: 128 << 10, Receivers: 1,
			MinRateBps: 32e6, MaxRateBps: 1e9, Group: gid,
		})
		if err != nil {
			b.Fatalf("group %d sender: %v", g, err)
		}
		pairs[g] = pair{sf, rf}
	}
	grown := runtime.NumGoroutine() - goroutinesBefore

	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			buf := scratch[g]
			total := 0
			for {
				n, err := pairs[g].rf.Read(buf)
				total += n
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Errorf("group %d read: %v", g, err)
					break
				}
			}
			if total != len(datas[g]) {
				b.Errorf("group %d: delivered %d bytes, want %d", g, total, len(datas[g]))
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			if _, err := pairs[g].sf.Write(datas[g]); err != nil {
				b.Errorf("group %d write: %v", g, err)
			}
			if err := pairs[g].sf.Close(); err != nil {
				b.Errorf("group %d close: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	return grown
}
