// Quickstart: one H-RMC sender, three receivers, in-process transport.
//
// This is the smallest complete use of the public API: create a
// transport, open a sending and several receiving connections, write on
// one side, read on the others. Close blocks until every receiver is
// known to hold the whole stream — the reliability guarantee H-RMC adds
// over the RMC baseline.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/transport"
)

func main() {
	const nReceivers = 3
	message := bytes.Repeat([]byte("reliable multicast with H-RMC! "), 4096) // 128 KiB

	hub := transport.NewHub()

	// Receivers first, so they are listening when data starts.
	var wg sync.WaitGroup
	results := make([][]byte, nReceivers)
	for i := 0; i < nReceivers; i++ {
		rcv := core.NewReceiver(hub.Endpoint(), receiver.Config{RcvBuf: 128 << 10})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := io.ReadAll(rcv) // io.Reader semantics: EOF at end of stream
			if err != nil {
				log.Fatalf("receiver %d: %v", i, err)
			}
			results[i] = got
			rcv.Close()
		}(i)
	}

	snd := core.NewSender(hub.Endpoint(), sender.Config{
		SndBuf:            128 << 10,
		ExpectedReceivers: nReceivers, // hold buffers until all three join
	})
	if _, err := snd.Write(message); err != nil {
		log.Fatalf("write: %v", err)
	}
	if err := snd.Close(); err != nil { // blocks until everyone has everything
		log.Fatalf("close: %v", err)
	}
	wg.Wait()

	for i, got := range results {
		fmt.Printf("receiver %d: %d bytes, identical=%v\n", i, len(got), bytes.Equal(got, message))
	}
	st := snd.Stats()
	fmt.Printf("sender: %d data packets, %d updates received, %d probes sent\n",
		st.PacketsSent, st.UpdatesReceived, st.ProbesSent)
}
