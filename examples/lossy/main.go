// Lossy: reliability under visible adversity. The in-memory hub drops
// 5% of all deliveries and delays the rest; the kernel buffers are tiny
// (16 KiB ≈ eleven packets). The transfer still completes bit-exact, and
// the printed statistics show the machinery that made it happen: NAKs,
// retransmissions, periodic updates and sender probes.
//
//	go run ./examples/lossy
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/transport"
)

func main() {
	const (
		nReceivers = 2
		size       = 96 << 10
		buffers    = 16 << 10
		lossRate   = 0.05
	)
	payload := make([]byte, size)
	app.FillPattern(payload, 0)

	hub := transport.NewHub(
		transport.WithLoss(lossRate, 42),
		transport.WithDelay(2*time.Millisecond),
	)

	var wg sync.WaitGroup
	rcvs := make([]*core.Receiver, nReceivers)
	for i := 0; i < nReceivers; i++ {
		rcvs[i] = core.NewReceiver(hub.Endpoint(), receiver.Config{RcvBuf: buffers})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := io.ReadAll(rcvs[i])
			if err != nil {
				log.Fatalf("receiver %d: %v", i, err)
			}
			fmt.Printf("receiver %d: %d bytes, bit-exact=%v\n", i, len(got), bytes.Equal(got, payload))
		}(i)
	}

	snd := core.NewSender(hub.Endpoint(), sender.Config{
		SndBuf:            buffers,
		ExpectedReceivers: nReceivers,
	})
	fmt.Printf("sending %d KiB through %d%% loss with %d KiB buffers...\n",
		size>>10, int(lossRate*100), buffers>>10)
	start := time.Now()
	if _, err := snd.Write(payload); err != nil {
		log.Fatalf("write: %v", err)
	}
	if err := snd.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	wg.Wait()

	st := snd.Stats()
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("sender:  %d data packets + %d retransmissions\n", st.PacketsSent, st.Retransmissions)
	fmt.Printf("feedback: %d NAKs, %d updates, %d probes sent, %d keepalives\n",
		st.NaksReceived, st.UpdatesReceived, st.ProbesSent, st.KeepalivesSent)
	fmt.Printf("reliability: %d NAK errors (H-RMC guarantees this stays 0)\n", st.NakErrsSent)
	for i, r := range rcvs {
		rs := r.Stats()
		fmt.Printf("receiver %d: %d dups discarded, %d NAKs sent (%d retried), %d probes answered\n",
			i, rs.Duplicates, rs.NaksSent, rs.NakRetries, rs.ProbesReceived)
		r.Close()
	}
}
