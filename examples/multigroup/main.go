// Multigroup: three concurrent multicast groups — each a sender and
// two receivers — multiplexed over ONE internal/session driver: a
// single 10 ms tick loop, one receive loop per endpoint, and a shared
// 16 Mbps bandwidth budget split fairly (group A gets a double weight)
// by the session's governor.
//
// All six-plus flows share one lossy in-process hub; the H-RMC header
// ports demultiplex the groups, so cross-group traffic never needs
// separate sockets. This mirrors the paper's kernel implementation,
// where every AF_HRMC socket shared one jiffy clock and one NIC.
//
//	go run ./examples/multigroup
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"repro/internal/app"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/session"
	"repro/internal/transport"
)

const (
	groups       = 3
	rcvPerGroup  = 2
	payloadBytes = 96 << 10 // per group
	budget       = 16e6 / 8 // 16 Mbps shared across all senders
)

func main() {
	hub := transport.NewHub(transport.WithLoss(0.01, 42))
	sess := session.New(session.Config{Budget: budget})

	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		g := g
		// Port convention: the sender's local port is where feedback
		// arrives; the receivers' local port is where DATA arrives.
		sndPort, rcvPort := uint16(100+2*g), uint16(101+2*g)
		payload := make([]byte, payloadBytes)
		app.FillPattern(payload, int64(g)<<24)

		for r := 0; r < rcvPerGroup; r++ {
			rf, err := sess.OpenReceiver(hub.Endpoint(), receiver.Config{
				LocalPort: rcvPort, RemotePort: sndPort, RcvBuf: 128 << 10,
			}, session.WithLabel(fmt.Sprintf("recv-%c%d", 'A'+g, r)))
			if err != nil {
				log.Fatalf("open receiver: %v", err)
			}
			wg.Add(1)
			go func(g, r int) {
				defer wg.Done()
				got, err := io.ReadAll(rf)
				if err != nil {
					log.Fatalf("group %c receiver %d: %v", 'A'+g, r, err)
				}
				fmt.Printf("group %c receiver %d: %d bytes, identical=%v\n",
					'A'+g, r, len(got), bytes.Equal(got, payload))
			}(g, r)
		}

		weight := 1.0
		if g == 0 {
			weight = 2.0 // group A gets a double share of the budget
		}
		sf, err := sess.OpenSender(hub.Endpoint(), sender.Config{
			LocalPort: sndPort, RemotePort: rcvPort,
			SndBuf: 128 << 10, ExpectedReceivers: rcvPerGroup,
		}, session.WithLabel(fmt.Sprintf("send-%c", 'A'+g)), session.WithWeight(weight))
		if err != nil {
			log.Fatalf("open sender: %v", err)
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := sf.Write(payload); err != nil {
				log.Fatalf("group %c write: %v", 'A'+g, err)
			}
			if err := sf.Close(); err != nil { // blocks until both receivers hold it
				log.Fatalf("group %c close: %v", 'A'+g, err)
			}
		}(g)
	}

	// Watch the session mid-flight: one line per flow plus the totals.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	for running := true; running; {
		select {
		case <-tick.C:
			printProgress(sess.Snapshot())
		case <-done:
			running = false
		}
	}

	snap := sess.Snapshot()
	printProgress(snap)
	fmt.Printf("aggregate: %d senders sent %d bytes (+%d retransmitted), "+
		"%d receivers delivered %d bytes, %d NAKs total\n",
		snap.Total.SenderFlows, snap.Total.Sender.BytesSent,
		snap.Total.Sender.RetransBytes,
		snap.Total.ReceiverFlows, snap.Total.Receiver.BytesDelivered,
		snap.Total.Receiver.NaksSent)
	if err := sess.Close(); err != nil {
		log.Fatalf("session close: %v", err)
	}
}

func printProgress(snap session.Snapshot) {
	line := ""
	for _, f := range snap.Flows {
		if f.Sender == nil {
			continue
		}
		line += fmt.Sprintf("  %s=%dKB", f.Label, f.Sender.BytesSent>>10)
	}
	fmt.Printf("progress:%s\n", line)
}
