// Softwaredist: bulk software-upgrade distribution, one of the paper's
// motivating workloads — push one image from a build server to a mixed
// population of campus (MAN) and remote (WAN) sites, reliably, over a
// simulated 10 Mbps network with real loss.
//
// The example runs the same discrete-event simulator the figure
// reproductions use and reports per-receiver completion and the
// feedback activity that made reliability work.
//
//	go run ./examples/softwaredist
package main

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/netsim"
	"repro/internal/rate"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/sim"
)

func main() {
	const (
		imageSize = 8 << 20   // 8 MiB upgrade image
		buffer    = 512 << 10 // per-socket kernel buffer
		campus    = 6         // receivers on the metropolitan network
		remote    = 2         // receivers across the WAN
	)

	cfg := netsim.DefaultConfig(netsim.Rate10Mbps, 2026)
	net := netsim.New(cfg)

	rcfg := rate.DefaultConfig()
	rcfg.MaxRate = netsim.Rate10Mbps
	snd := sender.New(sender.Config{
		SndBuf:            buffer,
		Rate:              rcfg,
		InitialRTT:        200 * sim.Millisecond,
		ExpectedReceivers: campus + remote,
	})
	net.AddSender(snd, app.NewMemorySource(imageSize))

	for i := 0; i < campus; i++ {
		r := receiver.New(receiver.Config{RcvBuf: buffer, AssumedRTT: 40 * sim.Millisecond})
		net.AddReceiver(r, netsim.GroupB, app.MemorySink{})
	}
	for i := 0; i < remote; i++ {
		r := receiver.New(receiver.Config{RcvBuf: buffer, AssumedRTT: 200 * sim.Millisecond})
		net.AddReceiver(r, netsim.GroupC, app.MemorySink{})
	}

	fmt.Printf("distributing a %d MiB image to %d campus + %d remote sites over 10 Mbps...\n",
		imageSize>>20, campus, remote)
	res := net.Run(2000 * sim.Second)

	fmt.Printf("completed: %v in %v (%.2f Mbps to the slowest site)\n",
		res.Completed, res.Duration, res.ThroughputMbps())
	for i, r := range net.Receivers() {
		fmt.Printf("  site %d (%s): %8d bytes, finished at %v, %d NAKs sent, %d corrupted bytes\n",
			i, r.Group.Name, r.Received, r.FinishedAt, r.M.Stats().NaksSent, r.BadBytes)
	}
	st := snd.Stats()
	fmt.Printf("loss handled: %.0f router drops, %.0f NIC drops → %d retransmissions, %d NAK errors (must be 0)\n",
		float64(res.RouterDrops), float64(res.NICDrops), st.Retransmissions, st.NakErrsSent)
	fmt.Printf("feedback: %d naks, %d rate requests (%d urgent), %d updates, %d probes\n",
		st.NaksReceived, st.RateRequestsReceived, st.UrgentReceived, st.UpdatesReceived, st.ProbesSent)
}
