// Manygroups: the thousand-group daemon shape in one process — 200
// multicast groups, each a sender and a receiver, admitted through the
// control plane onto a ShardedDialer with FOUR shared group transports.
// Every group hashes to a shard; receivers Join, senders Register, and
// arrivals demux by the destination group address the shard tags each
// envelope with. Serving all 200 groups costs O(shards) transports —
// and, over real UDP, O(shards) sockets and receive pollers — not
// O(groups); the run prints the per-shard membership to show the hash
// spreading groups across the pool. (Each active transfer still holds
// one control-plane stream-pump goroutine; it is the kernel-facing
// side that sharding keeps constant.)
//
// The same topology over real UDP is one hrmcd config away: "shards"
// picks the socket-pair count, "data_port" the UDP port every group
// shares (one socket joins many groups; IP_PKTINFO demuxes):
//
//	{
//	  "shards": 4,
//	  "data_port": 9999,
//	  "loopback": true,
//	  "groups": [
//	    {"name": "dist-0",   "group": "239.66.1.1", "role": "send",
//	     "size": 65536, "receivers": 1},
//	    {"name": "mirror-0", "group": "239.66.1.1", "role": "recv"},
//	    {"name": "dist-1",   "group": "239.66.1.2", "role": "send",
//	     "size": 65536, "receivers": 1},
//	    {"name": "mirror-1", "group": "239.66.1.2", "role": "recv"}
//	  ]
//	}
//
// (Past ~20 groups per shard, raise net.ipv4.igmp_max_memberships.)
//
//	go run ./examples/manygroups
package main

import (
	"fmt"
	"log"

	"repro/internal/control"
	"repro/internal/session"
	"repro/internal/transport"
)

const (
	groups   = 200
	shards   = 4
	sizeEach = 24 << 10
)

func main() {
	hub := transport.NewHub()
	sess := session.New(session.Config{})
	defer sess.Close()

	// The shard pool: every admitted flow lands on one of these four
	// shared transports, picked by hashing its group address.
	pool := make([]transport.GroupTransport, shards)
	for i := range pool {
		pool[i] = hub.Endpoint().(transport.GroupTransport)
	}
	dialer, err := control.NewShardedDialer(pool)
	if err != nil {
		log.Fatal(err)
	}
	mgr := control.NewManager(control.ManagerConfig{
		Session: sess,
		Dialer:  dialer,
	})

	specs := make([]control.FlowSpec, 0, 2*groups)
	for g := 0; g < groups; g++ {
		addr := fmt.Sprintf("239.66.%d.%d", 1+g/254, 1+g%254)
		specs = append(specs,
			control.FlowSpec{
				Name: fmt.Sprintf("mirror-%d", g), Group: addr,
				Role: control.RoleRecv,
			},
			control.FlowSpec{
				Name: fmt.Sprintf("dist-%d", g), Group: addr,
				Role: control.RoleSend, Size: sizeEach, Receivers: 1,
			},
		)
	}
	control.AssignPorts(specs)
	for _, spec := range specs {
		if _, err := mgr.Admit(spec); err != nil {
			log.Fatalf("admit %s: %v", spec.Name, err)
		}
	}
	mgr.Wait()
	done := 0
	for _, fs := range mgr.List() {
		if fs.State == control.StateDone {
			done++
		}
	}
	fmt.Printf("%d/%d flows done (%d groups x %d KiB)\n",
		done, 2*groups, groups, sizeEach>>10)
	// The hub meters membership only; the udpmcast shards additionally
	// count per-shard packets, truncations, and send errors here.
	for i, st := range dialer.ShardStats() {
		fmt.Printf("shard %d: groups joined=%d\n", i, st.Joined)
	}
	fmt.Printf("%d flows multiplexed over %d shared transports (%d UDP sockets in hrmcd's sharded mode)\n",
		2*groups, shards, 2*shards)
}
