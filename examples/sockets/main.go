// Sockets: the kernel implementation's BSD-style call sequence
// (Section 4 of the paper), reproduced over the in-memory transport.
// The sender performs socket → bind → connect → send → close; each
// receiver performs socket → bind → setsockopt(join) → recv → close —
// "application code that uses the H-RMC protocol looks much like any
// other socket-related code."
//
//	go run ./examples/sockets
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"sync"

	"repro/internal/app"
	"repro/internal/hrmcsock"
	"repro/internal/transport"
)

const group = "239.1.2.3:7777"

func main() {
	hub := transport.NewHub()
	payload := make([]byte, 256<<10)
	app.FillPattern(payload, 0)
	const nReceivers = 2

	var wg sync.WaitGroup
	for i := 0; i < nReceivers; i++ {
		// Receiver: socket(AF_HRMC, SOCK_IP, IPPROTO_HRMC) → bind →
		// setsockopt(HRMC_ADD_MEMBERSHIP) → recv → close.
		sock, err := hrmcsock.Socket(hrmcsock.AF_HRMC, hrmcsock.SOCK_IP, hrmcsock.IPPROTO_HRMC)
		if err != nil {
			log.Fatal(err)
		}
		sock.UseTransport(hub.Endpoint()) // in-process demo; omit for real UDP
		if err := sock.Bind(7777); err != nil {
			log.Fatal(err)
		}
		if err := sock.Setsockopt(hrmcsock.SO_RCVBUF, 128<<10); err != nil {
			log.Fatal(err)
		}
		if err := sock.Setsockopt(hrmcsock.HRMC_ADD_MEMBERSHIP, group); err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := io.ReadAll(sock)
			if err != nil {
				log.Fatalf("recv %d: %v", i, err)
			}
			fmt.Printf("receiver %d: recv'd %d bytes, identical=%v\n",
				i, len(got), bytes.Equal(got, payload))
			sock.Close()
		}(i)
	}

	// Sender: socket → bind → connect → send → close.
	sock, err := hrmcsock.Socket(hrmcsock.AF_HRMC, hrmcsock.SOCK_IP, hrmcsock.IPPROTO_HRMC)
	if err != nil {
		log.Fatal(err)
	}
	sock.UseTransport(hub.Endpoint())
	if err := sock.Bind(5123); err != nil {
		log.Fatal(err)
	}
	if err := sock.Setsockopt(hrmcsock.SO_SNDBUF, 128<<10); err != nil {
		log.Fatal(err)
	}
	if err := sock.Setsockopt(hrmcsock.HRMC_EXPECTED_RECEIVERS, nReceivers); err != nil {
		log.Fatal(err)
	}
	if err := sock.Connect(group); err != nil {
		log.Fatal(err)
	}
	if _, err := sock.Write(payload); err != nil {
		log.Fatal(err)
	}
	if err := sock.Close(); err != nil { // blocks until delivery is complete
		log.Fatal(err)
	}
	wg.Wait()
	fmt.Println("sender: close returned — every receiver holds the stream")
}
