// Udpmulticast: the live path — one sender and three receivers in a
// single process, exchanging H-RMC packets over *real* UDP multicast on
// the loopback interface. The identical protocol machines that run in
// the simulator drive real sockets here.
//
// Requires an environment where loopback multicast works (Linux with
// the lo interface up). If the group cannot be joined, the example says
// so and exits cleanly.
//
//	go run ./examples/udpmulticast
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/udpmcast"
)

const group = "239.66.66.66:39999"

func main() {
	const nReceivers = 3
	payload := make([]byte, 512<<10)
	app.FillPattern(payload, 0)

	lo, err := net.InterfaceByName("lo")
	if err != nil {
		fmt.Println("no loopback interface; skipping live multicast demo:", err)
		return
	}

	var rts []*udpmcast.ReceiverTransport
	for i := 0; i < nReceivers; i++ {
		rt, err := udpmcast.NewReceiverTransport(group, lo)
		if err != nil {
			fmt.Println("cannot join multicast group; skipping demo:", err)
			return
		}
		rts = append(rts, rt)
	}
	st, err := udpmcast.NewSenderTransport(group, udpmcast.WithEgressIP(net.IPv4(127, 0, 0, 1)))
	if err != nil {
		fmt.Println("cannot open sender transport; skipping demo:", err)
		return
	}

	var wg sync.WaitGroup
	for i, rt := range rts {
		rcv := core.NewReceiver(rt, receiver.Config{RcvBuf: 256 << 10})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := io.ReadAll(rcv)
			if err != nil {
				log.Fatalf("receiver %d: %v", i, err)
			}
			fmt.Printf("receiver %d: %d bytes over real UDP multicast, identical=%v\n",
				i, len(got), bytes.Equal(got, payload))
			rcv.Close()
		}(i)
	}

	snd := core.NewSender(st, sender.Config{
		SndBuf:            256 << 10,
		ExpectedReceivers: nReceivers,
	})
	start := time.Now()
	if _, err := snd.Write(payload); err != nil {
		log.Fatalf("write: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- snd.Close() }()
	select {
	case err := <-done:
		if err != nil {
			log.Fatalf("close: %v", err)
		}
	case <-time.After(30 * time.Second):
		fmt.Println("timed out — multicast may not be routed in this environment")
		os.Exit(1)
	}
	wg.Wait()
	el := time.Since(start)
	fmt.Printf("sender: done in %v (%.2f Mbps), %d members served\n",
		el.Round(time.Millisecond), float64(len(payload))*8/el.Seconds()/1e6, nReceivers)
}
