package repro

import (
	"bytes"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/packet"
	"repro/internal/rate"
	"repro/internal/transport"
	"repro/internal/udpmcast"
)

// BenchmarkUdpOffload measures what UDP segmentation offload buys the
// real-socket datapath, offload-on vs offload-off, over loopback
// multicast. Two arms per setting:
//
//   - transport: raw SendBatch blast through a SenderTransport — the
//     syscall economics in isolation. Custom metrics record
//     datagrams-per-syscall (dgram/syscall) and how much traffic rode
//     GSO supersegments / arrived as GRO supersegments.
//   - session: one full reliable single-flow transfer (session tick
//     loop, rate machine, bit-exact delivery) over real UDP — the
//     end-to-end single-flow throughput BENCH_9.json gates against the
//     BENCH_5 in-memory baseline.
//
// The offload-on arms skip with a clear message on kernels without
// UDP_SEGMENT/UDP_GRO; the off arms always run, pinning the fallback
// path's numbers. scripts/bench.sh writes both to BENCH_9.json.
func BenchmarkUdpOffload(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "offload=off"
		if on {
			name = "offload=on"
		}
		b.Run("transport/"+name, func(b *testing.B) { benchOffloadTransport(b, on) })
		b.Run("session/"+name, func(b *testing.B) { benchOffloadSession(b, on) })
	}
}

// skipWithoutOffload gates an offload-on arm on live kernel support.
func skipWithoutOffload(b *testing.B, on bool) {
	b.Helper()
	if !on {
		return
	}
	gso, gro := udpmcast.ProbeOffload()
	if !gso && !gro {
		b.Skip("kernel accepts neither UDP_SEGMENT nor UDP_GRO; skipping offload-on arm")
	}
}

// benchOffloadTransport blasts fixed-size multicast batches through a
// real sender transport while a receiver drains (and discards) them,
// measuring wire throughput and syscall amortization with the reliable
// protocol out of the way.
func benchOffloadTransport(b *testing.B, on bool) {
	lo, err := net.InterfaceByName("lo")
	if err != nil {
		b.Skipf("no loopback interface: %v", err)
	}
	skipWithoutOffload(b, on)
	udpmcast.SetOffload(on)
	defer udpmcast.SetOffload(true)

	group := "239.77.14.5:40990"
	if on {
		group = "239.77.14.5:40991" // keep the arms' straggler traffic apart
	}
	rt, err := udpmcast.NewReceiverTransport(group, lo)
	if err != nil {
		b.Skipf("loopback multicast unavailable: %v", err)
	}
	defer rt.Close()
	st, err := udpmcast.NewSenderTransport(group, udpmcast.WithEgressIP(net.IPv4(127, 0, 0, 1)))
	if err != nil {
		b.Skipf("loopback multicast unavailable: %v", err)
	}
	defer st.Close()
	var received atomic.Int64
	go func() {
		buf := make([]transport.Envelope, 64)
		for {
			n, err := rt.RecvBatch(buf)
			if err != nil {
				return
			}
			received.Add(int64(n))
			for i := 0; i < n; i++ {
				transport.PutPacket(buf[i].Pkt)
				buf[i] = transport.Envelope{}
			}
		}
	}()

	const (
		batch   = 64 // envelopes per SendBatch — one staged poller batch
		rounds  = 16
		payload = 1400 // MSS-sized, the coalescing sweet spot
	)
	env := make([]transport.Envelope, batch)
	for i := range env {
		pl := bytes.Repeat([]byte{byte(i)}, payload)
		env[i] = transport.Envelope{
			Pkt: &packet.Packet{
				Header:  packet.Header{Type: packet.TypeData, Seq: uint32(i), Length: payload},
				Payload: pl,
			},
			Multicast: true,
		}
	}
	b.SetBytes(int64(batch * rounds * (payload + packet.HeaderSize)))
	before := transport.IOStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < rounds; r++ {
			if err := st.SendBatch(env); err != nil {
				b.Fatalf("SendBatch: %v", err)
			}
		}
	}
	b.StopTimer()
	// Let the receive side drain what survived the blast (on a 1-CPU
	// host the reader goroutines barely run while the send loop spins)
	// before sampling the GRO counters: poll until the received count
	// stops moving.
	for prev := int64(-1); ; {
		cur := received.Load()
		if cur == prev {
			break
		}
		prev = cur
		time.Sleep(10 * time.Millisecond)
	}
	after := transport.IOStats()
	if d := after.SendSyscalls - before.SendSyscalls; d > 0 {
		b.ReportMetric(float64(after.SentDatagrams-before.SentDatagrams)/float64(d), "dgram/syscall")
	}
	b.ReportMetric(float64(after.GsoSegments-before.GsoSegments)/float64(b.N), "gso-segs/op")
	b.ReportMetric(float64(after.GroSupersegments-before.GroSupersegments)/float64(b.N), "gro-super/op")
	b.ReportMetric(float64(received.Load())/float64(b.N), "rcvd-dgrams/op")
}

// benchOffloadSession runs one reliable 4 MiB single-flow transfer per
// iteration over real UDP loopback multicast — the full datapath the
// BENCH_5 in-memory baseline measures, now with real sockets and (in
// the on arm) segmentation offload.
func benchOffloadSession(b *testing.B, on bool) {
	lo, err := net.InterfaceByName("lo")
	if err != nil {
		b.Skipf("no loopback interface: %v", err)
	}
	skipWithoutOffload(b, on)
	udpmcast.SetOffload(on)
	defer udpmcast.SetOffload(true)

	const size = 4 << 20
	data := make([]byte, size)
	app.FillPattern(data, 11<<20)
	scratch := make([]byte, 256<<10)
	fast := rate.Config{MinRate: 64e6, MaxRate: 8e9, MSS: 1400}
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh group port per iteration keeps straggler datagrams
		// from a finished transfer out of the next one.
		group := fmt.Sprintf("239.77.14.6:%d", 41300+i%1024)
		rt, err := udpmcast.NewReceiverTransport(group, lo)
		if err != nil {
			b.Skipf("loopback multicast unavailable: %v", err)
		}
		st, err := udpmcast.NewSenderTransport(group, udpmcast.WithEgressIP(net.IPv4(127, 0, 0, 1)))
		if err != nil {
			rt.Close()
			b.Skipf("loopback multicast unavailable: %v", err)
		}
		runCrossoverTransfer(b, &gapSink{}, data, scratch, rt, st, 0, fast)
	}
}
