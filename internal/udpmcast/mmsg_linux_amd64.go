//go:build linux && amd64

package udpmcast

// The frozen stdlib syscall tables predate sendmmsg, so the numbers
// are spelled out here (arch/x86/entry/syscalls/syscall_64.tbl).
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
