//go:build linux && (amd64 || arm64)

// Batched datagram syscalls: recvmmsg/sendmmsg collapse N datagrams
// into one kernel crossing, mirroring golang.org/x/net/ipv4's
// ReadBatch/WriteBatch. Implemented directly over the stdlib syscall
// package (this module carries no external dependencies); the
// non-blocking calls are woven into the runtime's netpoller via
// syscall.RawConn, so a blocked batch read parks the goroutine like a
// plain conn.Read would. On kernels or sandboxes rejecting the
// syscalls (ENOSYS/EPERM), the transport flips to the portable
// single-packet path in mmsg_common.go for the rest of the process.
package udpmcast

import (
	"net"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// mmsgSupported gates the batch syscalls process-wide; the first
// ENOSYS/EPERM disables them and every reader/writer falls back to
// single-packet I/O.
var mmsgSupported atomic.Bool

func init() { mmsgSupported.Store(true) }

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit Linux.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// ntohs converts a network-byte-order uint16 read through a raw
// sockaddr into host order, independent of host endianness.
func ntohs(v uint16) uint16 {
	b := (*[2]byte)(unsafe.Pointer(&v))
	return uint16(b[0])<<8 | uint16(b[1])
}

func htons(v uint16) uint16 { return ntohs(v) }

// pktinfoSpace is CMSG_SPACE(sizeof(struct in_pktinfo)) on 64-bit
// Linux: a 16-byte aligned cmsghdr plus the 12-byte payload rounded up.
const pktinfoSpace = 32

// batchReader reads datagram batches from one UDP socket. The mmsghdr,
// iovec, name, and payload buffers are set up once and reused for
// every recvmmsg call.
type batchReader struct {
	conn  *net.UDPConn
	rc    syscall.RawConn
	msgs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet4
	bufs  [][]byte
	addrs []net.UDPAddr // reused per-datagram source addresses

	// Destination-address recovery (IP_PKTINFO), enabled by
	// newBatchReaderDst for group transports that demux on the
	// multicast group a datagram was addressed to.
	wantDst bool
	// wantGro marks a socket armed for UDP_GRO: slots are sized for a
	// full supersegment (bufSize) and gro() reports each datagram's
	// kernel-coalesced segment size for the consumer to split on.
	wantGro   bool
	bufSize   int
	ctrlSpace int
	ctrls     [][]byte // per-slot control buffers, nil unless wantDst/wantGro

	// trunc, when set, additionally counts truncated-datagram drops for
	// the owning transport's stats.
	trunc *atomic.Int64

	// Single-read fallback state, used when rc is unavailable or the
	// batch syscalls have been disabled at runtime.
	oneBuf  []byte
	oneOOB  []byte
	oneN    int
	oneDst  uint32
	oneGro  int
	oneAddr *net.UDPAddr
	lastOne bool // last read() used the fallback path
}

func newBatchReader(conn *net.UDPConn) *batchReader {
	return newReader(conn, false, false)
}

// newBatchReaderOffload is newBatchReader plus UDP GRO: when the knob
// is on and the socket accepts the option, the kernel may deliver
// coalesced supersegments, so each slot is sized for a full 64 KB UDP
// payload and carries control space for the UDP_GRO segment-size cmsg.
func newBatchReaderOffload(conn *net.UDPConn) *batchReader {
	return newReader(conn, false, enableGRO(conn))
}

// newBatchReaderDst is newBatchReader plus destination-address
// recovery: each recvmmsg slot carries a control buffer sized for one
// IP_PKTINFO message (the socket must have the option enabled), and
// dst() reports the IPv4 address each datagram was sent to. GRO is
// armed alongside when available.
func newBatchReaderDst(conn *net.UDPConn) *batchReader {
	return newReader(conn, true, enableGRO(conn))
}

func newReader(conn *net.UDPConn, wantDst, gro bool) *batchReader {
	r := &batchReader{conn: conn, wantDst: wantDst, wantGro: gro, bufSize: mmsgBufSize}
	if gro {
		r.bufSize = groBufSize
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		return r // rc == nil selects the fallback path
	}
	r.rc = rc
	r.msgs = make([]mmsghdr, mmsgBatch)
	r.iovs = make([]syscall.Iovec, mmsgBatch)
	r.names = make([]syscall.RawSockaddrInet4, mmsgBatch)
	r.bufs = make([][]byte, mmsgBatch)
	r.addrs = make([]net.UDPAddr, mmsgBatch)
	for i := range r.msgs {
		r.bufs[i] = make([]byte, r.bufSize)
		r.iovs[i].Base = &r.bufs[i][0]
		r.iovs[i].Len = uint64(r.bufSize)
		r.msgs[i].hdr.Iov = &r.iovs[i]
		r.msgs[i].hdr.Iovlen = 1
		r.msgs[i].hdr.Name = (*byte)(unsafe.Pointer(&r.names[i]))
		r.msgs[i].hdr.Namelen = syscall.SizeofSockaddrInet4
	}
	if wantDst || gro {
		r.ctrlSpace = pktinfoSpace
		if gro {
			r.ctrlSpace = groCtrlSpace
		}
		r.ctrls = make([][]byte, len(r.msgs))
		for i := range r.ctrls {
			r.ctrls[i] = make([]byte, r.ctrlSpace)
			r.msgs[i].hdr.Control = &r.ctrls[i][0]
			r.msgs[i].hdr.SetControllen(r.ctrlSpace)
		}
	}
	return r
}

// read blocks until at least one datagram arrives and returns how many
// (at most max) were drained in one recvmmsg. It falls back to a
// single blocking read when batch syscalls are unavailable.
func (r *batchReader) read(max int) (int, error) {
	if r.rc == nil || !mmsgSupported.Load() {
		return r.readOne()
	}
	if max > len(r.msgs) {
		max = len(r.msgs)
	}
	if max <= 0 {
		return 0, nil
	}
	for i := 0; i < max; i++ {
		r.msgs[i].hdr.Namelen = syscall.SizeofSockaddrInet4
		if r.ctrls != nil {
			r.msgs[i].hdr.SetControllen(r.ctrlSpace) // kernel shrank it last read
		}
		r.msgs[i].n = 0
	}
	var n int
	var serr syscall.Errno
	err := r.rc.Read(func(fd uintptr) bool {
		got, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&r.msgs[0])), uintptr(max),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		if errno == syscall.EAGAIN {
			return false
		}
		n, serr = int(got), errno
		return true
	})
	if err != nil {
		return 0, err
	}
	if serr != 0 {
		if serr == syscall.ENOSYS || serr == syscall.EPERM {
			mmsgSupported.Store(false)
			return r.readOne()
		}
		return 0, serr
	}
	r.lastOne = false
	return n, nil
}

// readOne is the single-datagram path: one blocking ReadFromUDP (or
// ReadMsgUDP when destination addresses or GRO segment sizes are
// wanted — GRO may already be armed on the socket when the batch
// syscalls fall back, so supersegments must still be recognized here).
func (r *batchReader) readOne() (int, error) {
	if r.oneBuf == nil {
		r.oneBuf = make([]byte, maxDatagram)
	}
	if r.wantDst || r.wantGro {
		if r.oneOOB == nil {
			r.oneOOB = make([]byte, groCtrlSpace)
		}
		n, oobn, _, addr, err := r.conn.ReadMsgUDP(r.oneBuf, r.oneOOB)
		if err != nil {
			return 0, err
		}
		r.oneN, r.oneAddr, r.lastOne = n, addr, true
		r.oneDst = pktinfoDst(r.oneOOB[:oobn])
		r.oneGro = 0
		if r.wantGro {
			r.oneGro = groSegSize(r.oneOOB[:oobn])
		}
		return 1, nil
	}
	n, addr, err := r.conn.ReadFromUDP(r.oneBuf)
	if err != nil {
		return 0, err
	}
	r.oneN, r.oneAddr, r.lastOne = n, addr, true
	return 1, nil
}

// datagram returns the i-th datagram of the last read and its source
// address. The returned slices/addresses are valid until the next read.
func (r *batchReader) datagram(i int) ([]byte, *net.UDPAddr) {
	if r.lastOne {
		return r.oneBuf[:r.oneN], r.oneAddr
	}
	n := int(r.msgs[i].n)
	if n >= r.bufSize {
		// Possible kernel-side truncation: poison the length so the
		// decoder rejects it rather than delivering a clipped packet,
		// and count the drop instead of losing it silently.
		n = 0
		countTruncated(r.trunc)
	}
	name := &r.names[i]
	addr := &r.addrs[i]
	*addr = net.UDPAddr{
		IP:   net.IPv4(name.Addr[0], name.Addr[1], name.Addr[2], name.Addr[3]),
		Port: int(ntohs(name.Port)),
	}
	return r.bufs[i][:n], addr
}

// dst returns the IPv4 destination address of the i-th datagram of the
// last read as a big-endian uint32, or 0 when unavailable. Valid only
// on readers built with newBatchReaderDst.
func (r *batchReader) dst(i int) uint32 {
	if r.lastOne {
		return r.oneDst
	}
	if r.ctrls == nil {
		return 0
	}
	return pktinfoDst(r.ctrls[i][:r.msgs[i].hdr.Controllen])
}

// gro returns the GRO segment size of the i-th datagram of the last
// read, or 0 when the datagram is not a kernel-coalesced supersegment
// (including on readers never armed for GRO). A non-zero value means
// the payload packs several seg-size wire datagrams back to back, the
// last possibly shorter.
func (r *batchReader) gro(i int) int {
	if r.lastOne {
		return r.oneGro
	}
	if !r.wantGro || r.ctrls == nil {
		return 0
	}
	return groSegSize(r.ctrls[i][:r.msgs[i].hdr.Controllen])
}

// pktinfoDst walks a received control-message region and extracts the
// in_pktinfo destination address (ipi_addr) as a big-endian uint32.
// Returns 0 when no IP_PKTINFO message is present or the region is
// malformed.
func pktinfoDst(b []byte) uint32 {
	const hdrLen = syscall.SizeofCmsghdr
	for len(b) >= hdrLen {
		h := (*syscall.Cmsghdr)(unsafe.Pointer(&b[0]))
		l := int(h.Len)
		if l < hdrLen || l > len(b) {
			return 0
		}
		if h.Level == syscall.IPPROTO_IP && h.Type == syscall.IP_PKTINFO && l >= hdrLen+12 {
			// struct in_pktinfo{ipi_ifindex; ipi_spec_dst; ipi_addr}:
			// the wire destination lives in the last 4 bytes.
			d := b[hdrLen : hdrLen+12]
			return uint32(d[8])<<24 | uint32(d[9])<<16 | uint32(d[10])<<8 | uint32(d[11])
		}
		adv := (l + 7) &^ 7 // CMSG_ALIGN for 64-bit
		if adv <= 0 || adv > len(b) {
			return 0
		}
		b = b[adv:]
	}
	return 0
}

// batchWriter sends datagram batches to per-message destinations over
// one UDP socket. Not safe for concurrent use; callers serialize.
type batchWriter struct {
	conn  *net.UDPConn
	rc    syscall.RawConn
	msgs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet4
	ctrls []gsoCmsg  // per-mmsghdr UDP_SEGMENT control blocks
	spans []sendSpan // mmsghdr → original msgs range, for counting/fallback
	errs  *atomic.Int64
	gso   bool // UDP_SEGMENT arming (enableGSO); see also gsoSupported
}

// sendSpan records which input messages one mmsghdr carries: count > 1
// marks a GSO supersegment whose count messages the kernel splits back
// into wire datagrams.
type sendSpan struct {
	start, count int
}

func newBatchWriter(conn *net.UDPConn) *batchWriter {
	w := &batchWriter{conn: conn}
	if rc, err := conn.SyscallConn(); err == nil {
		w.rc = rc
	}
	return w
}

// coalesceRun returns how many messages starting at msgs[i] fit into
// one UDP_SEGMENT supersegment: a maximal run of same-destination
// messages of msgs[i]'s size, optionally closed by one shorter tail
// message (the kernel requires every segment but the last to be exactly
// the cmsg segment size), capped by the kernel's segment-count and
// payload limits. Returns 1 when nothing coalesces.
func coalesceRun(msgs []outMsg, i int) int {
	seg := len(msgs[i].buf)
	if seg == 0 || seg >= udpMaxPayload {
		return 1
	}
	max := udpMaxPayload / seg
	if max > gsoMaxSegments {
		max = gsoMaxSegments
	}
	a := msgs[i].addr
	run := 1
	for run < max && i+run < len(msgs) {
		m := &msgs[i+run]
		if m.addr == nil || len(m.buf) == 0 || len(m.buf) > seg {
			break
		}
		if m.addr != a && (m.addr.Port != a.Port || !m.addr.IP.Equal(a.IP)) {
			break
		}
		run++
		if len(m.buf) < seg {
			break // a shorter message is only valid as the final segment
		}
	}
	return run
}

// write transmits every message, using sendmmsg to cover the batch in
// as few syscalls as possible; with GSO armed, consecutive
// same-destination same-size messages collapse further into single
// UDP_SEGMENT supersegments (multi-iovec gather, zero copies) that the
// kernel splits into wire datagrams. A per-message destination of nil
// is skipped (the caller has already recorded its error). A message the
// kernel rejects is counted, skipped, and the batch continues — one
// dead destination no longer strands the rest of the batch — with the
// first error returned at the end.
func (w *batchWriter) write(msgs []outMsg) error {
	if w.rc == nil || !mmsgSupported.Load() {
		return writeSeq(w.conn, msgs, w.errs)
	}
	if len(w.iovs) < len(msgs) {
		w.msgs = make([]mmsghdr, len(msgs))
		w.iovs = make([]syscall.Iovec, len(msgs))
		w.names = make([]syscall.RawSockaddrInet4, len(msgs))
		w.ctrls = make([]gsoCmsg, len(msgs))
		w.spans = make([]sendSpan, len(msgs))
	}
	gso := w.gso && gsoSupported.Load()
	n, iv := 0, 0 // mmsghdrs built, iovecs consumed
	for i := 0; i < len(msgs); {
		m := &msgs[i]
		if m.addr == nil || len(m.buf) == 0 {
			i++
			continue
		}
		ip4 := m.addr.IP.To4()
		if ip4 == nil {
			i++
			continue
		}
		run := 1
		if gso {
			run = coalesceRun(msgs, i)
		}
		w.names[n] = syscall.RawSockaddrInet4{
			Family: syscall.AF_INET,
			Port:   htons(uint16(m.addr.Port)),
			Addr:   [4]byte(ip4),
		}
		first := iv
		for k := 0; k < run; k++ {
			w.iovs[iv].Base = &msgs[i+k].buf[0]
			w.iovs[iv].Len = uint64(len(msgs[i+k].buf))
			iv++
		}
		w.msgs[n] = mmsghdr{}
		w.msgs[n].hdr.Iov = &w.iovs[first]
		w.msgs[n].hdr.Iovlen = uint64(run)
		w.msgs[n].hdr.Name = (*byte)(unsafe.Pointer(&w.names[n]))
		w.msgs[n].hdr.Namelen = syscall.SizeofSockaddrInet4
		if run > 1 {
			c := &w.ctrls[n]
			c.set(uint16(len(m.buf)))
			w.msgs[n].hdr.Control = (*byte)(unsafe.Pointer(c))
			w.msgs[n].hdr.SetControllen(gsoCmsgSpace)
		}
		w.spans[n] = sendSpan{start: i, count: run}
		n++
		i += run
	}
	sent := 0
	var firstErr error
	for sent < n {
		var got int
		var serr syscall.Errno
		err := w.rc.Write(func(fd uintptr) bool {
			g, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&w.msgs[sent])), uintptr(n-sent),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			if errno == syscall.EAGAIN {
				return false
			}
			got, serr = int(g), errno
			return true
		})
		if err != nil {
			return err
		}
		if serr != 0 {
			if serr == syscall.ENOSYS || serr == syscall.EPERM {
				mmsgSupported.Store(false)
				// Re-send everything not yet on the wire, one datagram
				// per syscall.
				return firstOf(firstErr, writeSeq(w.conn, msgs[w.spans[sent].start:], w.errs))
			}
			if w.spans[sent].count > 1 && gsoRejected(serr) {
				// The socket took the UDP_SEGMENT probe but the kernel
				// rejects live supersegments (seccomp, odd qdisc/driver):
				// disable GSO process-wide and re-send the remainder
				// unsegmented. The wire format is identical either way.
				gsoSupported.Store(false)
				return firstOf(firstErr, w.write(msgs[w.spans[sent].start:]))
			}
			// sendmmsg reports an errno only when the message at index
			// `sent` failed with nothing later sent: count it, skip it,
			// keep going so one dead destination doesn't strand the
			// rest of the batch.
			countSendError(w.errs)
			if firstErr == nil {
				firstErr = serr
			}
			sent++
			continue
		}
		if got <= 0 {
			break
		}
		var wire, gsoSegs int64
		for k := sent; k < sent+got; k++ {
			wire += int64(w.spans[k].count)
			if w.spans[k].count > 1 {
				gsoSegs += int64(w.spans[k].count)
			}
		}
		countSent(wire, gsoSegs, 1)
		sent += got
	}
	return firstErr
}

// firstOf returns the first non-nil error.
func firstOf(a, b error) error {
	if a != nil {
		return a
	}
	return b
}
