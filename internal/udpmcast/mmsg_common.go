// Batch I/O plumbing shared by the recvmmsg/sendmmsg implementation
// (mmsg_linux.go) and the portable single-syscall fallback
// (mmsg_fallback.go). Both expose the same batchReader/batchWriter
// surface, so the transports above are identical on every platform.
package udpmcast

import (
	"log"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/transport"
)

const (
	// mmsgBatch is how many datagrams one recvmmsg drains at most.
	mmsgBatch = 16
	// mmsgBufSize bounds one batched datagram. Larger datagrams (which
	// would need jumbo frames well past 9K MTU) are treated as
	// truncated and dropped; the fallback path still accepts up to
	// maxDatagram.
	mmsgBufSize = 16 << 10
)

// outMsg is one encoded datagram and its destination. A nil addr marks
// a message the caller already failed (e.g. unknown node) — writers
// skip it.
type outMsg struct {
	buf  []byte
	addr *net.UDPAddr
}

// truncLogOnce gates the one-time log line for truncated-datagram
// drops; afterwards the incident is visible only through the counters.
var truncLogOnce sync.Once

// countTruncated records one truncated-datagram drop in the process
// counter, the per-transport counter when present, and logs the first
// occurrence.
func countTruncated(perTransport *atomic.Int64) {
	transport.IO.TruncatedDatagrams.Add(1)
	if perTransport != nil {
		perTransport.Add(1)
	}
	truncLogOnce.Do(func() {
		log.Printf("udpmcast: dropped datagram at or above the %d-byte batch buffer; further drops are counted in hrmc_transport_truncated_datagrams_total", mmsgBufSize)
	})
}

// countSendError records one per-destination send failure in the
// process counter and the per-transport counter when present.
func countSendError(perTransport *atomic.Int64) {
	transport.IO.SendErrors.Add(1)
	if perTransport != nil {
		perTransport.Add(1)
	}
}

// countSent records datagrams successfully handed to the kernel:
// datagrams is the wire count (GSO supersegments already expanded into
// their kernel-split sub-segments), gsoSegs the subset that left inside
// supersegments, and syscalls the kernel crossings spent.
func countSent(datagrams, gsoSegs, syscalls int64) {
	transport.IO.SentDatagrams.Add(datagrams)
	transport.IO.SendSyscalls.Add(syscalls)
	if gsoSegs > 0 {
		transport.IO.GsoSegments.Add(gsoSegs)
	}
}

// countGroSplit records one received GRO supersegment that the reader
// split into segments individual datagrams.
func countGroSplit(segments int) {
	transport.IO.GroSupersegments.Add(1)
	transport.IO.GroSegments.Add(int64(segments))
}

// splitDatagrams iterates the wire datagrams packed into one receive
// slot. A kernel-coalesced GRO supersegment (seg > 0 and a buffer
// longer than seg) is cut at seg-byte boundaries, the final segment
// allowed shorter (the odd tail); otherwise the buffer is one plain
// datagram. It returns how many datagrams fn saw.
func splitDatagrams(b []byte, seg int, fn func([]byte)) int {
	if seg <= 0 || len(b) <= seg {
		fn(b)
		return 1
	}
	n := 0
	for len(b) > 0 {
		d := b
		if len(d) > seg {
			d = d[:seg]
		}
		b = b[len(d):]
		fn(d)
		n++
	}
	return n
}

// writeSeq transmits each message with its own syscall — the portable
// path, and the runtime fallback when batch syscalls are unavailable.
// Every failure is counted (errs may be nil); only the first is
// returned.
func writeSeq(conn *net.UDPConn, msgs []outMsg, errs *atomic.Int64) error {
	var firstErr error
	for _, m := range msgs {
		if m.addr == nil || len(m.buf) == 0 {
			continue
		}
		if _, err := conn.WriteToUDP(m.buf, m.addr); err != nil {
			countSendError(errs)
			if firstErr == nil {
				firstErr = err
			}
		} else {
			countSent(1, 0, 1)
		}
	}
	return firstErr
}
