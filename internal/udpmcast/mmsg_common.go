// Batch I/O plumbing shared by the recvmmsg/sendmmsg implementation
// (mmsg_linux.go) and the portable single-syscall fallback
// (mmsg_fallback.go). Both expose the same batchReader/batchWriter
// surface, so the transports above are identical on every platform.
package udpmcast

import "net"

const (
	// mmsgBatch is how many datagrams one recvmmsg drains at most.
	mmsgBatch = 16
	// mmsgBufSize bounds one batched datagram. Larger datagrams (which
	// would need jumbo frames well past 9K MTU) are treated as
	// truncated and dropped; the fallback path still accepts up to
	// maxDatagram.
	mmsgBufSize = 16 << 10
)

// outMsg is one encoded datagram and its destination. A nil addr marks
// a message the caller already failed (e.g. unknown node) — writers
// skip it.
type outMsg struct {
	buf  []byte
	addr *net.UDPAddr
}

// writeSeq transmits each message with its own syscall — the portable
// path, and the runtime fallback when batch syscalls are unavailable.
func writeSeq(conn *net.UDPConn, msgs []outMsg) error {
	var firstErr error
	for _, m := range msgs {
		if m.addr == nil || len(m.buf) == 0 {
			continue
		}
		if _, err := conn.WriteToUDP(m.buf, m.addr); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
