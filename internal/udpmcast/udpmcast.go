// Package udpmcast implements the transport interfaces over real IP
// multicast using the standard net package, so the same protocol
// machines that run in the simulator drive actual UDP sockets — the
// library's equivalent of the paper's kernel deployment.
//
// Topology: the sender owns one UDP socket from which it multicasts DATA
// to the group address and unicasts PROBE/JOIN_RESPONSE/... to
// receivers; receivers join the group on a multicast listener and send
// feedback from a second unicast socket, whose source address is what
// the sender's membership table stores (mapped to a dense NodeID).
//
// Since Transport v2 both endpoints are batch-first: SendBatch encodes
// a whole envelope batch into reused buffers and hands it to sendmmsg,
// and RecvBatch drains up to mmsgBatch datagrams per recvmmsg into
// pooled packets (see mmsg_linux.go; platforms or kernels without the
// batch syscalls degrade to one datagram per syscall behind the same
// interface). Send/Recv remain as batch-size-1 adapters.
package udpmcast

import (
	"fmt"
	"net"
	"sync"
	"syscall"

	"repro/internal/packet"
	"repro/internal/transport"
)

// maxDatagram bounds received packet size (MSS + header with slack).
const maxDatagram = 64 << 10

// rxInboxDepth bounds the receiver's pending-delivery queue, playing
// the role of a kernel socket buffer: datagrams beyond it behave like
// network loss.
const rxInboxDepth = 4096

// peerIDBase is the first node ID handed to a learned peer address.
// Port-derived local IDs occupy [0, 65535]; keeping assigned peer IDs
// above this base keeps the two spaces disjoint.
const peerIDBase packet.NodeID = 1 << 20

// sendState is the shared batched-send half of both endpoints: encode
// scratch and the outMsg staging list survive between batches so the
// steady state allocates nothing. Guarded by mu; SendBatch calls from
// concurrent flows serialize here, which also serializes sendmmsg on
// the socket.
type sendState struct {
	mu  sync.Mutex
	bw  *batchWriter
	enc [][]byte
	out []outMsg
}

// encBuf returns the i-th reusable encode buffer, truncated to zero.
func (s *sendState) encBuf(i int) []byte {
	for len(s.enc) <= i {
		s.enc = append(s.enc, nil)
	}
	return s.enc[i][:0]
}

// SenderTransport is the sender-side UDP endpoint.
type SenderTransport struct {
	conn  *net.UDPConn
	group *net.UDPAddr

	send   sendState
	recvMu sync.Mutex // serializes RecvBatch over br and pend
	br     *batchReader
	// pend holds decoded envelopes beyond the caller's buffer capacity:
	// one GRO supersegment can split into more packets than the caller
	// asked for. Drained before the next read, so borrowed payloads
	// (aliasing reader slots) stay valid.
	pend []transport.Envelope

	mu    sync.Mutex
	ids   map[string]packet.NodeID
	addrs map[packet.NodeID]*net.UDPAddr
	next  packet.NodeID
}

var (
	_ transport.Transport      = (*SenderTransport)(nil)
	_ transport.BatchTransport = (*SenderTransport)(nil)
)

// SenderOption configures a SenderTransport.
type SenderOption func(*SenderTransport) error

// WithEgressIP pins outgoing multicast to the interface owning ip and
// enables multicast loopback — required for same-host demos, where the
// group must be reached over 127.0.0.1.
func WithEgressIP(ip net.IP) SenderOption {
	return func(t *SenderTransport) error {
		ip4 := ip.To4()
		if ip4 == nil {
			return fmt.Errorf("udpmcast: egress IP %v is not IPv4", ip)
		}
		rc, err := t.conn.SyscallConn()
		if err != nil {
			return err
		}
		var serr error
		err = rc.Control(func(fd uintptr) {
			if e := syscall.SetsockoptInt(int(fd), syscall.IPPROTO_IP, syscall.IP_MULTICAST_LOOP, 1); e != nil {
				serr = e
				return
			}
			serr = syscall.SetsockoptInet4Addr(int(fd), syscall.IPPROTO_IP, syscall.IP_MULTICAST_IF, [4]byte(ip4))
		})
		if err != nil {
			return err
		}
		return serr
	}
}

// NewSenderTransport opens a sender endpoint for the given multicast
// group ("239.66.66.66:9999").
func NewSenderTransport(group string, opts ...SenderOption) (*SenderTransport, error) {
	gaddr, err := net.ResolveUDPAddr("udp4", group)
	if err != nil {
		return nil, fmt.Errorf("udpmcast: resolve group: %w", err)
	}
	if !gaddr.IP.IsMulticast() {
		return nil, fmt.Errorf("udpmcast: %s is not a multicast address", gaddr.IP)
	}
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{})
	if err != nil {
		return nil, fmt.Errorf("udpmcast: listen: %w", err)
	}
	t := &SenderTransport{
		conn:  conn,
		group: gaddr,
		br:    newBatchReaderOffload(conn),
		ids:   make(map[string]packet.NodeID),
		addrs: make(map[packet.NodeID]*net.UDPAddr),
		next:  peerIDBase,
	}
	t.send.bw = newBatchWriter(conn)
	t.send.bw.enableGSO(conn)
	for _, o := range opts {
		if err := o(t); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return t, nil
}

// Local implements transport.Transport. Like ReceiverTransport, the
// node ID derives from the unicast socket's port, so sender and
// receiver flows hosted in one session share a node-ID space under the
// port demultiplexer. Peer IDs assigned by Recv live above peerIDBase
// and can never collide with a port-derived local ID.
func (t *SenderTransport) Local() packet.NodeID {
	return packet.NodeID(t.conn.LocalAddr().(*net.UDPAddr).Port)
}

// Addr returns the sender's unicast socket address.
func (t *SenderTransport) Addr() *net.UDPAddr { return t.conn.LocalAddr().(*net.UDPAddr) }

// SendBatch implements transport.BatchTransport: the whole batch is
// encoded into reused buffers and handed to one sendmmsg (where
// available). Unknown unicast nodes and encode failures surface as the
// first error after the rest of the batch is attempted.
func (t *SenderTransport) SendBatch(env []transport.Envelope) error {
	t.send.mu.Lock()
	defer t.send.mu.Unlock()
	msgs := t.send.out[:0]
	var firstErr error
	for i := range env {
		b, err := env[i].Pkt.Encode(t.send.encBuf(i))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		t.send.enc[i] = b
		addr := t.group
		if !env[i].Multicast {
			t.mu.Lock()
			addr = t.addrs[env[i].To]
			t.mu.Unlock()
			if addr == nil {
				countSendError(nil)
				if firstErr == nil {
					firstErr = fmt.Errorf("udpmcast: unknown node %v", env[i].To)
				}
				continue
			}
		}
		msgs = append(msgs, outMsg{buf: b, addr: addr})
	}
	err := t.send.bw.write(msgs)
	t.send.out = msgs[:0]
	if err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// RecvBatch implements transport.BatchTransport: it blocks for receiver
// feedback on the unicast socket, draining up to one recvmmsg batch of
// datagrams into pooled packets and assigning dense node IDs to new
// source addresses. GRO supersegments are split back into individual
// packets; the overflow past len(out) is parked on t.pend and returned
// first next call. Ownership of the returned packets transfers to the
// caller.
func (t *SenderTransport) RecvBatch(out []transport.Envelope) (int, error) {
	if len(out) == 0 {
		return 0, nil
	}
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if len(t.pend) > 0 {
		k := copy(out, t.pend)
		rem := copy(t.pend, t.pend[k:])
		for i := rem; i < len(t.pend); i++ {
			t.pend[i] = transport.Envelope{}
		}
		t.pend = t.pend[:rem]
		return k, nil
	}
	max := len(out)
	if max > mmsgBatch {
		max = mmsgBatch
	}
	for {
		n, err := t.br.read(max)
		if err != nil {
			return 0, transport.ErrClosed
		}
		k := 0
		for i := 0; i < n; i++ {
			b, src := t.br.datagram(i)
			// Resolve the source ID lazily, once per slot, and only when
			// at least one segment decodes — garbage datagrams never
			// populate the peer table.
			var id packet.NodeID
			resolved := false
			segs := splitDatagrams(b, t.br.gro(i), func(d []byte) {
				p := transport.GetPacket()
				// Zero-copy decode: the payload aliases the reader's fixed
				// datagram slot, which stays untouched until the next read
				// — and reads are serialized under recvMu, after the
				// session's demux loop has consumed (and released) the
				// previous batch (pend overflow is drained before reading
				// again). Feedback packets are header-only in practice,
				// but the borrow keeps even payload-carrying ones
				// (local-recovery repairs) copy-free.
				if err := packet.DecodeBorrow(p, d); err != nil {
					transport.PutPacket(p) // garbage or corrupted datagram
					return
				}
				if !resolved {
					resolved = true
					key := src.String()
					t.mu.Lock()
					var ok bool
					if id, ok = t.ids[key]; !ok {
						id = t.next
						t.next++
						t.ids[key] = id
						a := *src // src aliases reader-owned storage; keep a copy
						t.addrs[id] = &a
					}
					t.mu.Unlock()
				}
				env := transport.Envelope{Pkt: p, From: id}
				if k < len(out) {
					out[k] = env
					k++
				} else {
					t.pend = append(t.pend, env)
				}
			})
			if segs > 1 {
				countGroSplit(segs)
			}
		}
		if k > 0 {
			return k, nil
		}
	}
}

// Send implements transport.Transport as a batch-size-1 adapter.
func (t *SenderTransport) Send(p *packet.Packet, multicast bool, node packet.NodeID) error {
	env := [1]transport.Envelope{{Pkt: p, Multicast: multicast, To: node}}
	return t.SendBatch(env[:])
}

// Recv implements transport.Transport as a batch-size-1 adapter.
func (t *SenderTransport) Recv() (*packet.Packet, packet.NodeID, error) {
	var buf [1]transport.Envelope
	for {
		n, err := t.RecvBatch(buf[:])
		if err != nil {
			return nil, 0, err
		}
		if n == 1 {
			return buf[0].Pkt, buf[0].From, nil
		}
	}
}

// Close implements transport.Transport.
func (t *SenderTransport) Close() error { return t.conn.Close() }

// ReceiverTransport is the receiver-side UDP endpoint.
type ReceiverTransport struct {
	mconn *net.UDPConn // multicast listener (DATA, KEEPALIVE, ...)
	uconn *net.UDPConn // unicast socket (feedback out, PROBE in)
	group *net.UDPAddr // group address for local-recovery multicast

	send sendState

	qmu    sync.Mutex
	queue  []*packet.Packet // pending deliveries, queue[head:] live
	head   int
	notify chan struct{} // capacity 1: "queue may be non-empty"

	closed chan struct{}
	once   sync.Once

	mu     sync.Mutex
	sender *net.UDPAddr
}

var (
	_ transport.Transport      = (*ReceiverTransport)(nil)
	_ transport.BatchTransport = (*ReceiverTransport)(nil)
)

// NewReceiverTransport joins the multicast group on the given interface
// (nil selects the system default) and opens the feedback socket.
func NewReceiverTransport(group string, ifi *net.Interface) (*ReceiverTransport, error) {
	gaddr, err := net.ResolveUDPAddr("udp4", group)
	if err != nil {
		return nil, fmt.Errorf("udpmcast: resolve group: %w", err)
	}
	mconn, err := net.ListenMulticastUDP("udp4", ifi, gaddr)
	if err != nil {
		return nil, fmt.Errorf("udpmcast: join group: %w", err)
	}
	uconn, err := net.ListenUDP("udp4", &net.UDPAddr{})
	if err != nil {
		mconn.Close()
		return nil, fmt.Errorf("udpmcast: listen unicast: %w", err)
	}
	t := &ReceiverTransport{
		mconn:  mconn,
		uconn:  uconn,
		group:  gaddr,
		notify: make(chan struct{}, 1),
		closed: make(chan struct{}),
	}
	t.send.bw = newBatchWriter(uconn)
	t.send.bw.enableGSO(uconn)
	// Readers are armed (GRO probe + setsockopt) here rather than inside
	// the goroutines, so offload state is settled when the constructor
	// returns.
	go t.readLoop(newBatchReaderOffload(mconn), true)
	go t.readLoop(newBatchReaderOffload(uconn), false)
	return t, nil
}

// readLoop drains one socket in recvmmsg batches, decodes into pooled
// packets (splitting GRO supersegments back into individual datagrams),
// and pushes whole batches into the shared inbox under one lock
// acquisition.
func (t *ReceiverTransport) readLoop(br *batchReader, learnSender bool) {
	batch := make([]*packet.Packet, 0, mmsgBatch)
	for {
		n, err := br.read(mmsgBatch)
		if err != nil {
			return
		}
		batch = batch[:0]
		for i := 0; i < n; i++ {
			b, src := br.datagram(i)
			before := len(batch)
			segs := splitDatagrams(b, br.gro(i), func(d []byte) {
				// Copy-mode decode (the batch outlives the reader slots
				// here), so draw a packet that already owns a backing
				// array.
				p := packet.GetBuf(len(d))
				if err := packet.DecodeInto(p, d); err != nil {
					transport.PutPacket(p)
					return
				}
				batch = append(batch, p)
			})
			if segs > 1 {
				countGroSplit(segs)
			}
			// Learn the sender's address only from datagrams that carried
			// at least one valid packet, as the pre-offload path did.
			if learnSender && len(batch) > before {
				t.mu.Lock()
				if t.sender == nil {
					a := *src // src aliases reader-owned storage
					t.sender = &a
				}
				t.mu.Unlock()
			}
		}
		if len(batch) > 0 {
			t.push(batch)
		}
	}
}

// push appends a decoded batch to the inbox. Overflow beyond
// rxInboxDepth behaves like network loss, and the dropped packets go
// straight back to the pool.
func (t *ReceiverTransport) push(pkts []*packet.Packet) {
	select {
	case <-t.closed:
		for _, p := range pkts {
			transport.PutPacket(p)
		}
		return
	default:
	}
	t.qmu.Lock()
	if t.head > 0 {
		n := copy(t.queue, t.queue[t.head:])
		for i := n; i < len(t.queue); i++ {
			t.queue[i] = nil
		}
		t.queue = t.queue[:n]
		t.head = 0
	}
	space := rxInboxDepth - len(t.queue)
	for i, p := range pkts {
		if i >= space {
			transport.PutPacket(p)
			continue
		}
		t.queue = append(t.queue, p)
	}
	t.qmu.Unlock()
	select {
	case t.notify <- struct{}{}:
	default:
	}
}

// pop moves up to len(buf) pending packets into buf, re-arming the
// notify token when items remain.
func (t *ReceiverTransport) pop(buf []transport.Envelope) int {
	t.qmu.Lock()
	n := len(t.queue) - t.head
	if n > len(buf) {
		n = len(buf)
	}
	for i := 0; i < n; i++ {
		buf[i] = transport.Envelope{Pkt: t.queue[t.head+i]}
		t.queue[t.head+i] = nil
	}
	t.head += n
	remaining := len(t.queue) - t.head
	if remaining == 0 {
		t.queue = t.queue[:0]
		t.head = 0
	}
	t.qmu.Unlock()
	if remaining > 0 {
		select {
		case t.notify <- struct{}{}:
		default:
		}
	}
	return n
}

// Local implements transport.Transport. Receivers identify themselves to
// the protocol by their feedback port (unique per host in practice); the
// sender side assigns its own dense IDs from source addresses, so this
// value is only cosmetic.
func (t *ReceiverTransport) Local() packet.NodeID {
	return packet.NodeID(t.uconn.LocalAddr().(*net.UDPAddr).Port)
}

// SendBatch implements transport.BatchTransport: unicast feedback goes
// to the sender, whose address is learned from the first multicast
// packet; multicast (local-recovery NAKs and repairs) goes to the group
// address. The whole batch leaves in one sendmmsg where available.
func (t *ReceiverTransport) SendBatch(env []transport.Envelope) error {
	t.mu.Lock()
	sender := t.sender
	t.mu.Unlock()
	t.send.mu.Lock()
	defer t.send.mu.Unlock()
	msgs := t.send.out[:0]
	var firstErr error
	for i := range env {
		b, err := env[i].Pkt.Encode(t.send.encBuf(i))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		t.send.enc[i] = b
		addr := t.group
		if !env[i].Multicast {
			if sender == nil {
				countSendError(nil)
				if firstErr == nil {
					firstErr = fmt.Errorf("udpmcast: sender address not yet known")
				}
				continue
			}
			addr = sender
		}
		msgs = append(msgs, outMsg{buf: b, addr: addr})
	}
	err := t.send.bw.write(msgs)
	t.send.out = msgs[:0]
	if err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// RecvBatch implements transport.BatchTransport, draining the inbox
// fed by both read loops. Ownership of the returned packets transfers
// to the caller. The source node ID is always 0: a receiver's only
// peers are the sender and the anonymous group.
func (t *ReceiverTransport) RecvBatch(buf []transport.Envelope) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	for {
		if n := t.pop(buf); n > 0 {
			return n, nil
		}
		select {
		case <-t.notify:
		case <-t.closed:
			// Drain anything that raced with close.
			if n := t.pop(buf); n > 0 {
				return n, nil
			}
			return 0, transport.ErrClosed
		}
	}
}

// Send implements transport.Transport as a batch-size-1 adapter.
func (t *ReceiverTransport) Send(p *packet.Packet, multicast bool, node packet.NodeID) error {
	env := [1]transport.Envelope{{Pkt: p, Multicast: multicast, To: node}}
	return t.SendBatch(env[:])
}

// Recv implements transport.Transport as a batch-size-1 adapter.
func (t *ReceiverTransport) Recv() (*packet.Packet, packet.NodeID, error) {
	var buf [1]transport.Envelope
	for {
		n, err := t.RecvBatch(buf[:])
		if err != nil {
			return nil, 0, err
		}
		if n == 1 {
			return buf[0].Pkt, buf[0].From, nil
		}
	}
}

// Close implements transport.Transport.
func (t *ReceiverTransport) Close() error {
	t.once.Do(func() { close(t.closed) })
	err1 := t.mconn.Close()
	err2 := t.uconn.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
