// Package udpmcast implements the transport.Transport interface over
// real IP multicast using the standard net package, so the same protocol
// machines that run in the simulator drive actual UDP sockets — the
// library's equivalent of the paper's kernel deployment.
//
// Topology: the sender owns one UDP socket from which it multicasts DATA
// to the group address and unicasts PROBE/JOIN_RESPONSE/... to
// receivers; receivers join the group on a multicast listener and send
// feedback from a second unicast socket, whose source address is what
// the sender's membership table stores (mapped to a dense NodeID).
package udpmcast

import (
	"fmt"
	"net"
	"sync"
	"syscall"

	"repro/internal/packet"
	"repro/internal/transport"
)

// maxDatagram bounds received packet size (MSS + header with slack).
const maxDatagram = 64 << 10

// peerIDBase is the first node ID handed to a learned peer address.
// Port-derived local IDs occupy [0, 65535]; keeping assigned peer IDs
// above this base keeps the two spaces disjoint.
const peerIDBase packet.NodeID = 1 << 20

// SenderTransport is the sender-side UDP endpoint.
type SenderTransport struct {
	conn  *net.UDPConn
	group *net.UDPAddr

	mu    sync.Mutex
	ids   map[string]packet.NodeID
	addrs map[packet.NodeID]*net.UDPAddr
	next  packet.NodeID
}

var _ transport.Transport = (*SenderTransport)(nil)

// SenderOption configures a SenderTransport.
type SenderOption func(*SenderTransport) error

// WithEgressIP pins outgoing multicast to the interface owning ip and
// enables multicast loopback — required for same-host demos, where the
// group must be reached over 127.0.0.1.
func WithEgressIP(ip net.IP) SenderOption {
	return func(t *SenderTransport) error {
		ip4 := ip.To4()
		if ip4 == nil {
			return fmt.Errorf("udpmcast: egress IP %v is not IPv4", ip)
		}
		rc, err := t.conn.SyscallConn()
		if err != nil {
			return err
		}
		var serr error
		err = rc.Control(func(fd uintptr) {
			if e := syscall.SetsockoptInt(int(fd), syscall.IPPROTO_IP, syscall.IP_MULTICAST_LOOP, 1); e != nil {
				serr = e
				return
			}
			serr = syscall.SetsockoptInet4Addr(int(fd), syscall.IPPROTO_IP, syscall.IP_MULTICAST_IF, [4]byte(ip4))
		})
		if err != nil {
			return err
		}
		return serr
	}
}

// NewSenderTransport opens a sender endpoint for the given multicast
// group ("239.66.66.66:9999").
func NewSenderTransport(group string, opts ...SenderOption) (*SenderTransport, error) {
	gaddr, err := net.ResolveUDPAddr("udp4", group)
	if err != nil {
		return nil, fmt.Errorf("udpmcast: resolve group: %w", err)
	}
	if !gaddr.IP.IsMulticast() {
		return nil, fmt.Errorf("udpmcast: %s is not a multicast address", gaddr.IP)
	}
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{})
	if err != nil {
		return nil, fmt.Errorf("udpmcast: listen: %w", err)
	}
	t := &SenderTransport{
		conn:  conn,
		group: gaddr,
		ids:   make(map[string]packet.NodeID),
		addrs: make(map[packet.NodeID]*net.UDPAddr),
		next:  peerIDBase,
	}
	for _, o := range opts {
		if err := o(t); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return t, nil
}

// Local implements transport.Transport. Like ReceiverTransport, the
// node ID derives from the unicast socket's port, so sender and
// receiver flows hosted in one session share a node-ID space under the
// port demultiplexer. Peer IDs assigned by Recv live above peerIDBase
// and can never collide with a port-derived local ID.
func (t *SenderTransport) Local() packet.NodeID {
	return packet.NodeID(t.conn.LocalAddr().(*net.UDPAddr).Port)
}

// Addr returns the sender's unicast socket address.
func (t *SenderTransport) Addr() *net.UDPAddr { return t.conn.LocalAddr().(*net.UDPAddr) }

// Send implements transport.Transport.
func (t *SenderTransport) Send(p *packet.Packet, multicast bool, node packet.NodeID) error {
	buf, err := p.Encode(nil)
	if err != nil {
		return err
	}
	if multicast {
		_, err = t.conn.WriteToUDP(buf, t.group)
		return err
	}
	t.mu.Lock()
	addr := t.addrs[node]
	t.mu.Unlock()
	if addr == nil {
		return fmt.Errorf("udpmcast: unknown node %v", node)
	}
	_, err = t.conn.WriteToUDP(buf, addr)
	return err
}

// Recv implements transport.Transport: it blocks for receiver feedback
// on the unicast socket, assigning dense node IDs to new source
// addresses.
func (t *SenderTransport) Recv() (*packet.Packet, packet.NodeID, error) {
	buf := make([]byte, maxDatagram)
	for {
		n, src, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return nil, 0, transport.ErrClosed
		}
		p, err := packet.Decode(buf[:n])
		if err != nil {
			continue // garbage or corrupted datagram
		}
		key := src.String()
		t.mu.Lock()
		id, ok := t.ids[key]
		if !ok {
			id = t.next
			t.next++
			t.ids[key] = id
			t.addrs[id] = src
		}
		t.mu.Unlock()
		return p, id, nil
	}
}

// Close implements transport.Transport.
func (t *SenderTransport) Close() error { return t.conn.Close() }

// ReceiverTransport is the receiver-side UDP endpoint.
type ReceiverTransport struct {
	mconn *net.UDPConn // multicast listener (DATA, KEEPALIVE, ...)
	uconn *net.UDPConn // unicast socket (feedback out, PROBE in)
	group *net.UDPAddr // group address for local-recovery multicast

	items  chan rxItem
	closed chan struct{}
	once   sync.Once

	mu     sync.Mutex
	sender *net.UDPAddr
}

type rxItem struct {
	pkt *packet.Packet
	src *net.UDPAddr
}

var _ transport.Transport = (*ReceiverTransport)(nil)

// NewReceiverTransport joins the multicast group on the given interface
// (nil selects the system default) and opens the feedback socket.
func NewReceiverTransport(group string, ifi *net.Interface) (*ReceiverTransport, error) {
	gaddr, err := net.ResolveUDPAddr("udp4", group)
	if err != nil {
		return nil, fmt.Errorf("udpmcast: resolve group: %w", err)
	}
	mconn, err := net.ListenMulticastUDP("udp4", ifi, gaddr)
	if err != nil {
		return nil, fmt.Errorf("udpmcast: join group: %w", err)
	}
	uconn, err := net.ListenUDP("udp4", &net.UDPAddr{})
	if err != nil {
		mconn.Close()
		return nil, fmt.Errorf("udpmcast: listen unicast: %w", err)
	}
	t := &ReceiverTransport{
		mconn:  mconn,
		uconn:  uconn,
		group:  gaddr,
		items:  make(chan rxItem, 4096),
		closed: make(chan struct{}),
	}
	go t.readLoop(mconn, true)
	go t.readLoop(uconn, false)
	return t, nil
}

func (t *ReceiverTransport) readLoop(conn *net.UDPConn, learnSender bool) {
	buf := make([]byte, maxDatagram)
	for {
		n, src, err := conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		p, err := packet.Decode(buf[:n])
		if err != nil {
			continue
		}
		if learnSender {
			t.mu.Lock()
			if t.sender == nil {
				t.sender = src
			}
			t.mu.Unlock()
		}
		select {
		case t.items <- rxItem{pkt: p, src: src}:
		case <-t.closed:
			return
		default: // overflow behaves like network loss
		}
	}
}

// Local implements transport.Transport. Receivers identify themselves to
// the protocol by their feedback port (unique per host in practice); the
// sender side assigns its own dense IDs from source addresses, so this
// value is only cosmetic.
func (t *ReceiverTransport) Local() packet.NodeID {
	return packet.NodeID(t.uconn.LocalAddr().(*net.UDPAddr).Port)
}

// Send implements transport.Transport: unicast feedback goes to the
// sender, whose address is learned from the first multicast packet;
// multicast (local-recovery NAKs and repairs) goes to the group address.
func (t *ReceiverTransport) Send(p *packet.Packet, multicast bool, _ packet.NodeID) error {
	buf, err := p.Encode(nil)
	if err != nil {
		return err
	}
	if multicast {
		_, err = t.uconn.WriteToUDP(buf, t.group)
		return err
	}
	t.mu.Lock()
	dst := t.sender
	t.mu.Unlock()
	if dst == nil {
		return fmt.Errorf("udpmcast: sender address not yet known")
	}
	_, err = t.uconn.WriteToUDP(buf, dst)
	return err
}

// Recv implements transport.Transport.
func (t *ReceiverTransport) Recv() (*packet.Packet, packet.NodeID, error) {
	select {
	case item := <-t.items:
		return item.pkt, 0, nil
	case <-t.closed:
		select {
		case item := <-t.items:
			return item.pkt, 0, nil
		default:
			return nil, 0, transport.ErrClosed
		}
	}
}

// Close implements transport.Transport.
func (t *ReceiverTransport) Close() error {
	t.once.Do(func() { close(t.closed) })
	err1 := t.mconn.Close()
	err2 := t.uconn.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
