//go:build !linux || (!amd64 && !arm64)

// Portable batch I/O: platforms without the recvmmsg/sendmmsg wiring
// run batch size 1 per syscall behind the same batchReader/batchWriter
// surface as mmsg_linux.go.
package udpmcast

import (
	"net"
	"sync/atomic"
)

// batchReader reads one datagram per call on platforms without
// recvmmsg support.
type batchReader struct {
	conn *net.UDPConn
	buf  []byte
	n    int
	addr *net.UDPAddr
}

func newBatchReader(conn *net.UDPConn) *batchReader {
	return &batchReader{conn: conn, buf: make([]byte, maxDatagram)}
}

func (r *batchReader) read(max int) (int, error) {
	if max <= 0 {
		return 0, nil
	}
	n, addr, err := r.conn.ReadFromUDP(r.buf)
	if err != nil {
		return 0, err
	}
	r.n, r.addr = n, addr
	return 1, nil
}

func (r *batchReader) datagram(int) ([]byte, *net.UDPAddr) {
	return r.buf[:r.n], r.addr
}

// batchWriter sends each message with its own syscall.
type batchWriter struct {
	conn *net.UDPConn
	errs *atomic.Int64 // optional per-transport send-error counter
}

func newBatchWriter(conn *net.UDPConn) *batchWriter { return &batchWriter{conn: conn} }

func (w *batchWriter) write(msgs []outMsg) error { return writeSeq(w.conn, msgs, w.errs) }
