// Shared-socket group transport: configuration and stats shared by the
// Linux implementation (group_linux.go) and the stub for platforms
// without the batch syscalls + IP_PKTINFO plumbing (group_stub.go).
//
// A GroupTransport is one socket pair hosting many multicast groups:
//
//   - mconn binds the shared data port with SO_REUSEADDR, joins every
//     group via IP_ADD_MEMBERSHIP, disables IP_MULTICAST_ALL (so it
//     receives only groups it joined, not every group any socket on the
//     host joined), and enables IP_PKTINFO so each datagram's
//     destination group address comes back as a control message. That
//     destination address — an IPv4 address, read as a big-endian
//     uint32 — IS the transport.GroupID, so kernel demux output maps
//     straight to the envelope tag with no lookup.
//   - uconn is an ephemeral-port unicast socket carrying all
//     transmission (multicast egress included) and receiving unicast
//     feedback. Sending from uconn rather than the shared data port
//     means peers learn a per-process source address, so feedback and
//     PROBEs route between daemons even when several share one host
//     and one data port.
//
// Every group on a transport must use the transport's data port: the
// group address alone distinguishes them. A daemon shards its groups
// across a few GroupTransports (see internal/control.ShardedDialer),
// giving O(shards) sockets and read loops for O(thousands) of groups.
package udpmcast

import (
	"errors"
	"net"
)

// ErrGroupUnsupported reports that the shared-socket group transport is
// unavailable on this platform (it needs the Linux recvmmsg +
// IP_PKTINFO plumbing); callers fall back to one transport per group.
var ErrGroupUnsupported = errors.New("udpmcast: shared-socket group transport requires linux amd64/arm64")

// GroupConfig configures a shared-socket group transport.
type GroupConfig struct {
	// Port is the UDP data port shared by every group on this
	// transport. Required.
	Port int
	// Interface selects the NIC for memberships and multicast egress;
	// nil uses the system default route.
	Interface *net.Interface
	// Loopback confines the transport to 127.0.0.1: memberships join on
	// the loopback interface, egress is pinned there, and multicast
	// loop is enabled — the same-host demo/test mode.
	Loopback bool
}
