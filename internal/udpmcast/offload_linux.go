//go:build linux && (amd64 || arm64)

// UDP segmentation offload (GSO) and receive offload (GRO) support.
//
// Send side: consecutive same-destination, same-size messages in one
// batch collapse into a single "supersegment" carrying a UDP_SEGMENT
// control message; the kernel splits it into wire datagrams after the
// one syscall (Linux >= 4.18). Receive side: UDP_GRO asks the kernel to
// coalesce bursts of same-size datagrams into one supersegment whose
// segment size arrives in a UDP_GRO control message (Linux >= 5.0);
// readers split it back apart in user space. Both directions are pure
// batching — the wire format is unchanged, so offload-on and
// offload-off endpoints interoperate bit-exactly.
//
// Probing and fallback: each socket trials the setsockopt at setup
// (enableGSO/enableGRO); kernels without the options simply leave the
// plain mmsg path in charge. A kernel that accepts the option but
// rejects a live UDP_SEGMENT send (observed with some seccomp/tc
// setups) flips the process-wide gsoSupported kill-switch and the
// writer re-sends the remainder unsegmented. SetOffload(false) turns
// the whole feature off for new sockets.
package udpmcast

import (
	"net"
	"sync/atomic"
	"syscall"
	"unsafe"
)

const (
	// solUDP is SOL_UDP, the cmsg/sockopt level of the offload options.
	solUDP = 17
	// udpSegment is the UDP_SEGMENT sockopt/cmsg: the GSO segment size
	// the kernel splits an oversized send payload at.
	udpSegment = 103
	// udpGRO is the UDP_GRO sockopt (enable receive coalescing) and the
	// cmsg type reporting a received supersegment's segment size.
	udpGRO = 104

	// udpMaxPayload is the largest UDP payload one supersegment can
	// carry (65535 minus IPv4 and UDP headers).
	udpMaxPayload = 65507
	// gsoMaxSegments caps how many wire datagrams one supersegment may
	// split into (the kernel's UDP_MAX_SEGMENTS).
	gsoMaxSegments = 64

	// gsoCmsgSpace is CMSG_SPACE(sizeof(__u16)) on 64-bit Linux: the
	// 16-byte cmsghdr plus the 2-byte segment size rounded up to 8.
	gsoCmsgSpace = syscall.SizeofCmsghdr + 8
	// groBufSize sizes a GRO-armed receive slot for a full supersegment.
	groBufSize = 64 << 10
	// offloadSockBuf is the SO_RCVBUF/SO_SNDBUF requested for
	// offload-armed sockets: room for dozens of supersegment bursts
	// (the kernel clamps to rmem_max/wmem_max).
	offloadSockBuf = 4 << 20
	// groCtrlSpace holds one IP_PKTINFO plus one UDP_GRO cmsg.
	groCtrlSpace = pktinfoSpace + gsoCmsgSpace
)

// offloadEnabled is the configuration knob (hrmcd "gso": false, or
// SetOffload): when cleared, new sockets skip the offload probes
// entirely and run the plain mmsg path.
var offloadEnabled atomic.Bool

// gsoSupported is the runtime kill-switch: set while UDP_SEGMENT sends
// are believed to work, cleared process-wide the first time the kernel
// rejects one so every writer falls back to unsegmented sends.
var gsoSupported atomic.Bool

func init() {
	offloadEnabled.Store(true)
	gsoSupported.Store(true)
}

// SetOffload enables or disables UDP GSO/GRO for sockets opened from
// now on (default enabled; existing sockets keep their arming).
func SetOffload(on bool) { offloadEnabled.Store(on) }

// OffloadEnabled reports the SetOffload knob.
func OffloadEnabled() bool { return offloadEnabled.Load() }

// ProbeOffload reports whether the running kernel accepts the
// UDP_SEGMENT and UDP_GRO socket options, independent of the SetOffload
// knob. Tests and benches use it to skip offload arms gracefully.
func ProbeOffload() (gso, gro bool) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return false, false
	}
	defer conn.Close()
	rc, err := conn.SyscallConn()
	if err != nil {
		return false, false
	}
	_ = rc.Control(func(fd uintptr) {
		gso = syscall.SetsockoptInt(int(fd), solUDP, udpSegment, 0) == nil
		gro = syscall.SetsockoptInt(int(fd), solUDP, udpGRO, 1) == nil
	})
	return gso, gro
}

// enableGSO arms the writer for UDP_SEGMENT coalescing when the knob is
// on and the socket accepts the option. A zero segment size means "no
// standing segmentation" — actual sizes ride per-send cmsgs.
func (w *batchWriter) enableGSO(conn *net.UDPConn) {
	if !offloadEnabled.Load() || w.rc == nil {
		return
	}
	var ok bool
	_ = w.rc.Control(func(fd uintptr) {
		ok = syscall.SetsockoptInt(int(fd), solUDP, udpSegment, 0) == nil
	})
	w.gso = ok
	if ok {
		// A coalesced batch hands the kernel up to 64 KB per sendmmsg
		// entry; give the socket queue room for several supersegments
		// (clamped by wmem_max) so bursts don't stall the send poller.
		_ = conn.SetWriteBuffer(offloadSockBuf)
	}
}

// enableGRO asks the kernel to coalesce this socket's inbound datagrams
// into supersegments, reporting whether the option took (and so whether
// the reader must be sized and armed for splitting).
func enableGRO(conn *net.UDPConn) bool {
	if !offloadEnabled.Load() {
		return false
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		return false
	}
	var ok bool
	_ = rc.Control(func(fd uintptr) {
		ok = syscall.SetsockoptInt(int(fd), solUDP, udpGRO, 1) == nil
	})
	if ok {
		// A GSO sender delivers 64 KB bursts per syscall; the default
		// ~208 KB receive queue holds only three supersegments, so
		// overruns (and the NAK storms they trigger) dominate before the
		// reader ever falls behind for real. Clamp is rmem_max.
		_ = conn.SetReadBuffer(offloadSockBuf)
	}
	return ok
}

// gsoCmsg is one send-side UDP_SEGMENT control block, laid out exactly
// as CMSG_SPACE(2) so a pointer to it is a valid msg_control region.
// Keeping the cmsghdr in a struct (rather than casting into a byte
// slice) guarantees the kernel-required alignment.
type gsoCmsg struct {
	hdr  syscall.Cmsghdr
	data [8]byte
}

// set fills the block with a UDP_SEGMENT cmsg carrying seg (host byte
// order, per the kernel ABI for __u16 cmsg payloads).
func (c *gsoCmsg) set(seg uint16) {
	c.hdr.Level = solUDP
	c.hdr.Type = udpSegment
	c.hdr.SetLen(syscall.SizeofCmsghdr + 2)
	*(*uint16)(unsafe.Pointer(&c.data[0])) = seg
}

// groSegSize walks a received control-message region and extracts the
// UDP_GRO segment size, or 0 when absent. The kernel declares the
// payload as int, but pre-5.2 builds shipped a u16 — both widths are
// accepted.
func groSegSize(b []byte) int {
	const hdrLen = syscall.SizeofCmsghdr
	for len(b) >= hdrLen {
		h := (*syscall.Cmsghdr)(unsafe.Pointer(&b[0]))
		l := int(h.Len)
		if l < hdrLen || l > len(b) {
			return 0
		}
		if h.Level == solUDP && h.Type == udpGRO {
			switch {
			case l >= hdrLen+4:
				return int(*(*int32)(unsafe.Pointer(&b[hdrLen])))
			case l >= hdrLen+2:
				return int(*(*uint16)(unsafe.Pointer(&b[hdrLen])))
			}
			return 0
		}
		adv := (l + 7) &^ 7 // CMSG_ALIGN for 64-bit
		if adv <= 0 || adv > len(b) {
			return 0
		}
		b = b[adv:]
	}
	return 0
}

// gsoRejected classifies a sendmmsg errno on a supersegment as "the
// kernel refuses UDP_SEGMENT here" — grounds to disable offload
// process-wide and re-send unsegmented — as opposed to a transient or
// per-destination failure.
func gsoRejected(errno syscall.Errno) bool {
	switch errno {
	case syscall.EINVAL, syscall.EIO, syscall.EOPNOTSUPP, syscall.EMSGSIZE:
		return true
	}
	return false
}
