//go:build !linux || (!amd64 && !arm64)

// GroupTransport stub for platforms without the recvmmsg/IP_PKTINFO
// plumbing: construction fails with ErrGroupUnsupported, and callers
// (hrmcd's sharded mode) fall back to one transport per group.
package udpmcast

import (
	"repro/internal/packet"
	"repro/internal/transport"
)

// GroupTransport is unavailable on this platform; NewGroupTransport
// always fails, so no method can ever be reached on a live value.
type GroupTransport struct{}

var _ transport.GroupTransport = (*GroupTransport)(nil)

// NewGroupTransport always fails with ErrGroupUnsupported here.
func NewGroupTransport(GroupConfig) (*GroupTransport, error) { return nil, ErrGroupUnsupported }

func (t *GroupTransport) Join(string) (transport.GroupID, error)     { return 0, ErrGroupUnsupported }
func (t *GroupTransport) Register(string) (transport.GroupID, error) { return 0, ErrGroupUnsupported }
func (t *GroupTransport) Leave(transport.GroupID) error              { return ErrGroupUnsupported }
func (t *GroupTransport) SendBatch([]transport.Envelope) error       { return ErrGroupUnsupported }
func (t *GroupTransport) RecvBatch([]transport.Envelope) (int, error) {
	return 0, ErrGroupUnsupported
}
func (t *GroupTransport) Local() packet.NodeID             { return 0 }
func (t *GroupTransport) Addr() interface{}                { return nil }
func (t *GroupTransport) Port() int                        { return 0 }
func (t *GroupTransport) Sockets() int                     { return 0 }
func (t *GroupTransport) GroupStats() transport.GroupStats { return transport.GroupStats{} }
func (t *GroupTransport) Close() error                     { return nil }
