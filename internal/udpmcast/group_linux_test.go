//go:build linux && (amd64 || arm64)

package udpmcast

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/transport"
)

const groupTestPort = 39911

// groupAddr returns the i-th test group address (i < 64516).
func groupAddr(i int) string {
	return fmt.Sprintf("239.77.%d.%d:%d", 1+i/254, 1+i%254, groupTestPort)
}

// newTestGroupTransport opens a loopback-confined group transport or
// skips the test when the environment forbids it.
func newTestGroupTransport(t *testing.T, port int) *GroupTransport {
	t.Helper()
	gt, err := NewGroupTransport(GroupConfig{Port: port, Loopback: true})
	if err != nil {
		t.Skipf("group transport unavailable: %v", err)
	}
	t.Cleanup(func() { gt.Close() })
	return gt
}

// groupMulticastWorks probes whether loopback multicast actually moves
// a tagged packet between two group transports in this environment.
func groupMulticastWorks(t *testing.T) bool {
	t.Helper()
	rx := newTestGroupTransport(t, groupTestPort)
	tx := newTestGroupTransport(t, groupTestPort)
	gid, err := rx.Join(groupAddr(0))
	if err != nil {
		t.Logf("join failed: %v", err)
		return false
	}
	if _, err := tx.Register(groupAddr(0)); err != nil {
		t.Logf("register failed: %v", err)
		return false
	}
	got := make(chan transport.GroupID, 1)
	go func() {
		var buf [4]transport.Envelope
		n, err := rx.RecvBatch(buf[:])
		if err != nil || n == 0 {
			got <- 0
			return
		}
		g := buf[0].Group
		for i := 0; i < n; i++ {
			transport.PutPacket(buf[i].Pkt)
		}
		got <- g
	}()
	p := &packet.Packet{Header: packet.Header{Type: packet.TypeKeepalive, Seq: 7}}
	for i := 0; i < 5; i++ {
		if err := tx.SendBatch([]transport.Envelope{{Pkt: p, Multicast: true, Group: gid}}); err != nil {
			t.Logf("send failed: %v", err)
			return false
		}
		select {
		case g := <-got:
			return g == gid
		case <-time.After(200 * time.Millisecond):
		}
	}
	return false
}

// recvTagged drains t until a packet tagged with want arrives (or the
// deadline passes), returning the envelope's source node ID.
func recvTagged(t *testing.T, gt *GroupTransport, want transport.GroupID, deadline time.Duration) (packet.NodeID, bool) {
	t.Helper()
	type res struct {
		from packet.NodeID
		ok   bool
	}
	ch := make(chan res, 1)
	go func() {
		var buf [mmsgBatch]transport.Envelope
		for {
			n, err := gt.RecvBatch(buf[:])
			if err != nil {
				ch <- res{}
				return
			}
			for i := 0; i < n; i++ {
				g, from := buf[i].Group, buf[i].From
				transport.PutPacket(buf[i].Pkt)
				if g == want {
					ch <- res{from: from, ok: true}
					return
				}
			}
		}
	}()
	select {
	case r := <-ch:
		return r.from, r.ok
	case <-time.After(deadline):
		return 0, false
	}
}

func TestGroupTransportRejectsBadGroups(t *testing.T) {
	gt := newTestGroupTransport(t, groupTestPort)
	if _, err := gt.Join("127.0.0.1:39911"); err == nil {
		t.Error("unicast group address accepted")
	}
	if _, err := gt.Join(fmt.Sprintf("239.77.1.1:%d", groupTestPort+1)); err == nil {
		t.Error("group on a foreign data port accepted")
	}
	if _, err := gt.Register("not-an-address"); err == nil {
		t.Error("garbage group accepted")
	}
	if err := gt.Leave(transport.GroupID(12345)); err != nil {
		t.Errorf("leaving a never-seen group: %v", err)
	}
}

func TestGroupTransportJoinIdempotent(t *testing.T) {
	gt := newTestGroupTransport(t, groupTestPort)
	g1, err := gt.Join(groupAddr(1))
	if err != nil {
		t.Skipf("join: %v", err)
	}
	g2, err := gt.Join(groupAddr(1))
	if err != nil || g1 != g2 {
		t.Errorf("re-join: got (%v, %v), want (%v, nil)", g2, err, g1)
	}
	// Register of a joined group resolves to the same ID; bare-IP and
	// ip:port specs agree.
	g3, err := gt.Register(strings.TrimSuffix(groupAddr(1), fmt.Sprintf(":%d", groupTestPort)))
	if err != nil || g3 != g1 {
		t.Errorf("register joined group: got (%v, %v), want (%v, nil)", g3, err, g1)
	}
	st := gt.GroupStats()
	if st.Joined != 1 || st.Registered != 1 {
		t.Errorf("stats after idempotent joins: %+v", st)
	}
	if err := gt.Leave(g1); err != nil {
		t.Errorf("leave: %v", err)
	}
	if st := gt.GroupStats(); st.Joined != 0 || st.Registered != 1 {
		t.Errorf("stats after leave: %+v", st)
	}
}

// TestGroupTransportDemux is the tentpole behavior: one socket pair,
// several groups, arrivals tagged with the group they were addressed
// to, and unicast feedback flowing back over learned peer IDs.
func TestGroupTransportDemux(t *testing.T) {
	if !groupMulticastWorks(t) {
		t.Skip("loopback multicast not available in this environment")
	}
	rx := newTestGroupTransport(t, groupTestPort)
	tx := newTestGroupTransport(t, groupTestPort)

	const n = 4
	gids := make([]transport.GroupID, n)
	for i := 0; i < n; i++ {
		gid, err := rx.Join(groupAddr(10 + i))
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		if _, err := tx.Register(groupAddr(10 + i)); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		gids[i] = gid
	}
	// Each group gets a distinctly-numbered packet; every arrival must
	// carry the group it was addressed to.
	var senderID packet.NodeID
	for i := n - 1; i >= 0; i-- {
		p := &packet.Packet{Header: packet.Header{Type: packet.TypeData, Seq: uint32(100 + i)}}
		if err := tx.SendBatch([]transport.Envelope{{Pkt: p, Multicast: true, Group: gids[i]}}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		from, ok := recvTagged(t, rx, gids[i], 2*time.Second)
		if !ok {
			t.Fatalf("no arrival tagged for group %d (%v)", i, gids[i])
		}
		senderID = from
	}
	// Unicast feedback to the learned sender lands on tx's unicast
	// socket with Group 0.
	fb := &packet.Packet{Header: packet.Header{Type: packet.TypeNak, Seq: 555}}
	if err := rx.SendBatch([]transport.Envelope{{Pkt: fb, To: senderID}}); err != nil {
		t.Fatalf("feedback: %v", err)
	}
	if _, ok := recvTagged(t, tx, 0, 2*time.Second); !ok {
		t.Fatal("feedback did not arrive as a Group-0 unicast envelope")
	}
	// A group that was never joined or registered fails fast and counts.
	bad := &packet.Packet{Header: packet.Header{Type: packet.TypeData}}
	if err := tx.SendBatch([]transport.Envelope{{Pkt: bad, Multicast: true, Group: 1}}); err == nil {
		t.Error("send to unregistered group succeeded")
	}
	if st := tx.GroupStats(); st.SendErrors == 0 {
		t.Error("unregistered-group send not counted in SendErrors")
	}
}

// igmpMembershipBudget reports how many memberships one socket may
// hold, raising the sysctl toward want when the environment allows.
func igmpMembershipBudget(t *testing.T, want int) int {
	t.Helper()
	const path = "/proc/sys/net/ipv4/igmp_max_memberships"
	raw, err := os.ReadFile(path)
	if err != nil {
		return 20 // kernel default
	}
	cur, err := strconv.Atoi(strings.TrimSpace(string(raw)))
	if err != nil {
		return 20
	}
	if cur >= want {
		return cur
	}
	if err := os.WriteFile(path, []byte(strconv.Itoa(want)), 0o644); err != nil {
		t.Logf("cannot raise igmp_max_memberships past %d (%v); capping the test", cur, err)
		return cur
	}
	t.Cleanup(func() { os.WriteFile(path, raw, 0o644) })
	return want
}

// TestGroupTransportThousandGroups is the scale acceptance: 1,000
// groups spread over 4 shard transports hold exactly 8 sockets, and a
// spot-check of groups across every shard still demuxes correctly.
func TestGroupTransportThousandGroups(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if !groupMulticastWorks(t) {
		t.Skip("loopback multicast not available in this environment")
	}
	const shards = 4
	perShard := 250
	if budget := igmpMembershipBudget(t, perShard+8); budget < perShard {
		perShard = budget - 8 // probe/demux tests may hold a few
		if perShard < 4 {
			t.Skipf("igmp membership budget too small: %d", budget)
		}
	}
	total := shards * perShard

	fdsBefore := countFDs(t)
	goroutinesBefore := runtime.NumGoroutine()
	var rxs [shards]*GroupTransport
	for s := range rxs {
		rxs[s] = newTestGroupTransport(t, groupTestPort)
	}
	gids := make([]transport.GroupID, total)
	for i := 0; i < total; i++ {
		gid, err := rxs[i%shards].Join(groupAddr(100 + i))
		if err != nil {
			t.Fatalf("join %d/%d: %v", i, total, err)
		}
		gids[i] = gid
	}
	// Poller budget: two read loops per shard, independent of group
	// count (+2 slack for runtime goroutines winding up).
	if grown := runtime.NumGoroutine() - goroutinesBefore; grown > 2*shards+2 {
		t.Errorf("goroutine growth for %d groups = %d, want <= %d (O(pollers), not O(groups))",
			total, grown, 2*shards+2)
	}
	// fd budget: 2 sockets per shard, independent of group count. Allow
	// +2 slack for runtime-internal descriptors created lazily.
	sockets := 0
	for _, rx := range rxs {
		sockets += rx.Sockets()
	}
	if sockets != 2*shards {
		t.Errorf("reported sockets = %d, want %d", sockets, 2*shards)
	}
	if got := countFDs(t) - fdsBefore; got > 2*shards+2 {
		t.Errorf("fd growth for %d groups = %d, want <= %d", total, got, 2*shards+2)
	}
	for s, rx := range rxs {
		if st := rx.GroupStats(); st.Joined != perShard {
			t.Errorf("shard %d joined = %d, want %d", s, st.Joined, perShard)
		}
	}

	// Spot-check demux: one sender addresses the first and last group
	// of every shard; each must arrive on its shard tagged correctly.
	tx := newTestGroupTransport(t, groupTestPort)
	for _, i := range []int{0, 1, 2, 3, total - 4, total - 3, total - 2, total - 1} {
		if _, err := tx.Register(groupAddr(100 + i)); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		p := &packet.Packet{Header: packet.Header{Type: packet.TypeData, Seq: uint32(i)}}
		if err := tx.SendBatch([]transport.Envelope{{Pkt: p, Multicast: true, Group: gids[i]}}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if _, ok := recvTagged(t, rxs[i%shards], gids[i], 2*time.Second); !ok {
			t.Fatalf("group %d (%v) did not arrive on shard %d", i, gids[i], i%shards)
		}
	}
}

// countFDs returns the process's open file-descriptor count.
func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("cannot count fds: %v", err)
	}
	return len(ents)
}
