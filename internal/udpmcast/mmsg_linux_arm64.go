//go:build linux && arm64

package udpmcast

// The frozen stdlib syscall tables predate sendmmsg, so the numbers
// are spelled out here (include/uapi/asm-generic/unistd.h).
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
