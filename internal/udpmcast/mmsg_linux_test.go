//go:build linux && (amd64 || arm64)

package udpmcast

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/transport"
)

// TestBatchSyscallRuntimeFallback simulates a kernel or sandbox without
// recvmmsg/sendmmsg (the ENOSYS/EPERM path flips mmsgSupported): the
// transports must keep moving packets, one datagram per syscall.
func TestBatchSyscallRuntimeFallback(t *testing.T) {
	mmsgSupported.Store(false)
	t.Cleanup(func() { mmsgSupported.Store(true) })

	st, err := NewSenderTransport(testGroup)
	if err != nil {
		t.Skipf("cannot open sender transport: %v", err)
	}
	defer st.Close()
	c := dialFeedback(t, st.Addr().Port)

	const total = 6
	for i := 0; i < total; i++ {
		writeSeq32(t, c, uint32(300+i))
	}
	seqs, calls := collectSeqs(t, st, 4, total)
	for i := 0; i < total; i++ {
		if seqs[uint32(300+i)] != 1 {
			t.Errorf("seq %d delivered %d times, want 1", 300+i, seqs[uint32(300+i)])
		}
	}
	// The single-read path hands over exactly one datagram per call.
	if calls != total {
		t.Errorf("fallback RecvBatch took %d calls for %d datagrams, want one each", calls, total)
	}

	// The send side degrades to sequential WriteToUDP: a multicast batch
	// must still leave without error.
	env := make([]transport.Envelope, 3)
	for i := range env {
		env[i] = transport.Envelope{
			Pkt:       &packet.Packet{Header: packet.Header{Type: packet.TypeKeepalive, Seq: uint32(i)}},
			Multicast: true,
		}
	}
	if err := st.SendBatch(env); err != nil {
		t.Errorf("SendBatch under fallback: %v", err)
	}
}
