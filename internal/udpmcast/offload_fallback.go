//go:build !linux || (!amd64 && !arm64)

// Segmentation-offload stubs for platforms running the portable batch
// path (mmsg_fallback.go): UDP GSO/GRO is Linux-only, so the probe
// reports unsupported, arming is a no-op, and readers never see
// supersegments. The shared transports compile unchanged.
package udpmcast

import (
	"net"
	"sync/atomic"
)

// offloadEnabled mirrors the Linux knob so SetOffload/OffloadEnabled
// behave identically; nothing consults it on this platform.
var offloadEnabled atomic.Bool

func init() { offloadEnabled.Store(true) }

// SetOffload enables or disables UDP GSO/GRO for sockets opened from
// now on. A no-op here: this platform has no offload path.
func SetOffload(on bool) { offloadEnabled.Store(on) }

// OffloadEnabled reports the SetOffload knob.
func OffloadEnabled() bool { return offloadEnabled.Load() }

// ProbeOffload reports kernel UDP_SEGMENT/UDP_GRO support: never
// available on this platform.
func ProbeOffload() (gso, gro bool) { return false, false }

// enableGSO is a no-op: the portable writer sends one datagram per
// syscall.
func (w *batchWriter) enableGSO(conn *net.UDPConn) {}

// newBatchReaderOffload is newBatchReader here: no GRO, so no oversized
// slots or control buffers are needed.
func newBatchReaderOffload(conn *net.UDPConn) *batchReader { return newBatchReader(conn) }

// gro reports the i-th datagram's GRO segment size: always 0 (never a
// supersegment) on this platform.
func (r *batchReader) gro(int) int { return 0 }
