//go:build linux && (amd64 || arm64)

// GroupTransport implementation: one socket pair hosting many
// multicast groups, demultiplexed on the kernel-reported destination
// address (IP_PKTINFO). See group.go for the design overview.
package udpmcast

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"repro/internal/packet"
	"repro/internal/transport"
)

// ipMulticastAll is the IP_MULTICAST_ALL socket option (absent from the
// syscall package). Linux defaults it to 1, which delivers traffic for
// ANY group any socket on the host joined to every socket bound to the
// group's port — clearing it confines mconn to its own memberships,
// which is what makes several sharded transports on one host sane.
const ipMulticastAll = 49

// groupCounters is the per-transport half of GroupStats, all atomics
// because read loops, SendBatch callers, and Stats readers race freely.
type groupCounters struct {
	pktsIn     atomic.Int64
	pktsOut    atomic.Int64
	inboxDrops atomic.Int64
	truncated  atomic.Int64
	sendErrors atomic.Int64
}

// GroupTransport is the shared-socket many-group endpoint. One instance
// serves every flow of every group assigned to its shard; fd cost is
// exactly two sockets and goroutine cost exactly two read loops,
// independent of group count.
type GroupTransport struct {
	mconn *net.UDPConn // shared data port: memberships + group traffic in
	uconn *net.UDPConn // ephemeral port: all traffic out, unicast feedback in
	port  int          // the shared data port
	ifidx int          // membership/egress interface index (0 = default)

	send sendState

	qmu    sync.Mutex
	queue  []transport.Envelope // pending deliveries, queue[head:] live
	head   int
	notify chan struct{} // capacity 1: "queue may be non-empty"

	closed chan struct{}
	once   sync.Once

	mu     sync.Mutex
	ids    map[string]packet.NodeID           // src addr -> learned peer ID
	addrs  map[packet.NodeID]*net.UDPAddr     // learned peer ID -> src addr
	next   packet.NodeID                      // next peer ID to assign
	groups map[transport.GroupID]*net.UDPAddr // resolved groups (joined or send-only)
	joined map[transport.GroupID]bool         // groups with live memberships

	cnt groupCounters
}

var (
	_ transport.Transport      = (*GroupTransport)(nil)
	_ transport.BatchTransport = (*GroupTransport)(nil)
	_ transport.GroupTransport = (*GroupTransport)(nil)
	_ transport.GroupReporter  = (*GroupTransport)(nil)
)

// NewGroupTransport opens the shared socket pair for one shard. No
// groups are joined yet; flows join (receive) or register (send-only)
// groups afterwards.
func NewGroupTransport(cfg GroupConfig) (*GroupTransport, error) {
	if cfg.Port <= 0 {
		return nil, fmt.Errorf("udpmcast: group transport needs a data port, got %d", cfg.Port)
	}
	ifidx := 0
	var egress net.IP
	switch {
	case cfg.Loopback:
		lo, err := loopbackIndex()
		if err != nil {
			return nil, err
		}
		ifidx = lo
		egress = net.IPv4(127, 0, 0, 1)
	case cfg.Interface != nil:
		ifidx = cfg.Interface.Index
	}

	mconn, err := listenShared(cfg.Port)
	if err != nil {
		return nil, err
	}
	uconn, err := net.ListenUDP("udp4", &net.UDPAddr{})
	if err != nil {
		mconn.Close()
		return nil, fmt.Errorf("udpmcast: listen unicast: %w", err)
	}
	t := &GroupTransport{
		mconn:  mconn,
		uconn:  uconn,
		port:   cfg.Port,
		ifidx:  ifidx,
		notify: make(chan struct{}, 1),
		closed: make(chan struct{}),
		ids:    make(map[string]packet.NodeID),
		addrs:  make(map[packet.NodeID]*net.UDPAddr),
		next:   peerIDBase,
		groups: make(map[transport.GroupID]*net.UDPAddr),
		joined: make(map[transport.GroupID]bool),
	}
	t.send.bw = newBatchWriter(uconn)
	t.send.bw.errs = &t.cnt.sendErrors
	t.send.bw.enableGSO(uconn)
	if err := t.setupEgress(egress); err != nil {
		t.Close()
		return nil, err
	}
	// Readers are armed (GRO probe + setsockopt) here rather than inside
	// the goroutines, so offload state is settled when the constructor
	// returns. The mconn reader additionally recovers destination
	// addresses (IP_PKTINFO) for the group demux.
	mbr := newBatchReaderDst(mconn)
	mbr.trunc = &t.cnt.truncated
	ubr := newBatchReaderOffload(uconn)
	ubr.trunc = &t.cnt.truncated
	go t.readLoop(mbr, true)
	go t.readLoop(ubr, false)
	return t, nil
}

// listenShared binds the shared data port with SO_REUSEADDR (several
// shards or daemons may share a host) and arms IP_PKTINFO +
// !IP_MULTICAST_ALL after the bind.
func listenShared(port int) (*net.UDPConn, error) {
	lc := net.ListenConfig{Control: func(network, address string, c syscall.RawConn) error {
		var serr error
		err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_REUSEADDR, 1)
		})
		if err != nil {
			return err
		}
		return serr
	}}
	pc, err := lc.ListenPacket(context.Background(), "udp4", net.JoinHostPort("0.0.0.0", strconv.Itoa(port)))
	if err != nil {
		return nil, fmt.Errorf("udpmcast: listen shared port %d: %w", port, err)
	}
	conn := pc.(*net.UDPConn)
	rc, err := conn.SyscallConn()
	if err != nil {
		conn.Close()
		return nil, err
	}
	var serr error
	err = rc.Control(func(fd uintptr) {
		if e := syscall.SetsockoptInt(int(fd), syscall.IPPROTO_IP, syscall.IP_PKTINFO, 1); e != nil {
			serr = fmt.Errorf("udpmcast: enable IP_PKTINFO: %w", e)
			return
		}
		if e := syscall.SetsockoptInt(int(fd), syscall.IPPROTO_IP, ipMulticastAll, 0); e != nil {
			serr = fmt.Errorf("udpmcast: clear IP_MULTICAST_ALL: %w", e)
		}
	})
	if err == nil {
		err = serr
	}
	if err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// setupEgress pins outgoing multicast on uconn to the loopback address
// (with loop enabled) or the configured interface.
func (t *GroupTransport) setupEgress(egress net.IP) error {
	if egress == nil && t.ifidx == 0 {
		return nil
	}
	rc, err := t.uconn.SyscallConn()
	if err != nil {
		return err
	}
	var serr error
	err = rc.Control(func(fd uintptr) {
		if egress != nil {
			if e := syscall.SetsockoptInt(int(fd), syscall.IPPROTO_IP, syscall.IP_MULTICAST_LOOP, 1); e != nil {
				serr = e
				return
			}
			serr = syscall.SetsockoptInet4Addr(int(fd), syscall.IPPROTO_IP, syscall.IP_MULTICAST_IF, [4]byte(egress.To4()))
			return
		}
		serr = syscall.SetsockoptIPMreqn(int(fd), syscall.IPPROTO_IP, syscall.IP_MULTICAST_IF,
			&syscall.IPMreqn{Ifindex: int32(t.ifidx)})
	})
	if err != nil {
		return err
	}
	if serr != nil {
		return fmt.Errorf("udpmcast: set multicast egress: %w", serr)
	}
	return nil
}

// loopbackIndex finds the loopback interface's index.
func loopbackIndex() (int, error) {
	ifs, err := net.Interfaces()
	if err != nil {
		return 0, err
	}
	for _, ifi := range ifs {
		if ifi.Flags&net.FlagLoopback != 0 {
			return ifi.Index, nil
		}
	}
	return 0, fmt.Errorf("udpmcast: no loopback interface")
}

// resolve parses a group spec ("239.1.2.3" or "239.1.2.3:9999"),
// requires the transport's shared data port, and derives the GroupID
// from the IPv4 group address.
func (t *GroupTransport) resolve(group string) (transport.GroupID, *net.UDPAddr, error) {
	spec := group
	if !strings.Contains(spec, ":") {
		spec = net.JoinHostPort(spec, strconv.Itoa(t.port))
	}
	gaddr, err := net.ResolveUDPAddr("udp4", spec)
	if err != nil {
		return 0, nil, fmt.Errorf("udpmcast: resolve group: %w", err)
	}
	if gaddr.Port != t.port {
		return 0, nil, fmt.Errorf("udpmcast: group %s port %d differs from the transport's shared data port %d",
			group, gaddr.Port, t.port)
	}
	ip4 := gaddr.IP.To4()
	if ip4 == nil || !gaddr.IP.IsMulticast() {
		return 0, nil, fmt.Errorf("udpmcast: %s is not an IPv4 multicast address", gaddr.IP)
	}
	gid := transport.GroupID(uint32(ip4[0])<<24 | uint32(ip4[1])<<16 | uint32(ip4[2])<<8 | uint32(ip4[3]))
	return gid, gaddr, nil
}

// Join implements transport.GroupTransport: resolve, remember, and add
// the IGMP membership (idempotently).
func (t *GroupTransport) Join(group string) (transport.GroupID, error) {
	gid, gaddr, err := t.resolve(group)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.joined[gid] {
		return gid, nil
	}
	if err := t.membership(gaddr.IP.To4(), syscall.IP_ADD_MEMBERSHIP); err != nil {
		return 0, fmt.Errorf("udpmcast: join %s: %w (hitting igmp_max_memberships?)", group, err)
	}
	t.groups[gid] = gaddr
	t.joined[gid] = true
	return gid, nil
}

// Register implements transport.GroupTransport: resolve the group for
// sending without a membership.
func (t *GroupTransport) Register(group string) (transport.GroupID, error) {
	gid, gaddr, err := t.resolve(group)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.groups[gid]; !ok {
		t.groups[gid] = gaddr
	}
	return gid, nil
}

// Leave implements transport.GroupTransport: drop the membership. The
// group stays resolved for sending; leaving a group that was only
// registered (or never seen) is a no-op.
func (t *GroupTransport) Leave(gid transport.GroupID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.joined[gid] {
		return nil
	}
	gaddr := t.groups[gid]
	delete(t.joined, gid)
	return t.membership(gaddr.IP.To4(), syscall.IP_DROP_MEMBERSHIP)
}

// membership adds or drops one IGMP membership on mconn. Caller holds
// t.mu (which serializes membership changes).
func (t *GroupTransport) membership(ip4 net.IP, op int) error {
	rc, err := t.mconn.SyscallConn()
	if err != nil {
		return err
	}
	var serr error
	err = rc.Control(func(fd uintptr) {
		mreq := &syscall.IPMreqn{
			Multiaddr: [4]byte(ip4),
			Ifindex:   int32(t.ifidx),
		}
		serr = syscall.SetsockoptIPMreqn(int(fd), syscall.IPPROTO_IP, op, mreq)
	})
	if err != nil {
		return err
	}
	return serr
}

// readLoop drains one socket in recvmmsg batches, decodes into pooled
// packets (splitting GRO supersegments back into individual datagrams),
// learns peer source addresses, and pushes whole batches into the
// shared inbox. The mconn loop (wantDst) tags each envelope with the
// multicast group it was addressed to — every segment of a
// supersegment shares one wire destination and source, so the group
// tag and peer ID are resolved once per slot.
func (t *GroupTransport) readLoop(br *batchReader, wantDst bool) {
	batch := make([]transport.Envelope, 0, mmsgBatch)
	for {
		n, err := br.read(mmsgBatch)
		if err != nil {
			return
		}
		batch = batch[:0]
		for i := 0; i < n; i++ {
			b, src := br.datagram(i)
			var gid transport.GroupID
			if wantDst {
				if d := br.dst(i); d>>28 == 0xe { // 224.0.0.0/4
					gid = transport.GroupID(d)
				}
			}
			var id packet.NodeID
			resolved := false
			segs := splitDatagrams(b, br.gro(i), func(d []byte) {
				// Copy-mode decode: the batch outlives the reader slots.
				p := packet.GetBuf(len(d))
				if err := packet.DecodeInto(p, d); err != nil {
					transport.PutPacket(p)
					return
				}
				if !resolved {
					resolved = true
					key := src.String()
					t.mu.Lock()
					var ok bool
					if id, ok = t.ids[key]; !ok {
						id = t.next
						t.next++
						t.ids[key] = id
						a := *src // src aliases reader-owned storage; keep a copy
						t.addrs[id] = &a
					}
					t.mu.Unlock()
				}
				batch = append(batch, transport.Envelope{Pkt: p, From: id, Group: gid})
			})
			if segs > 1 {
				countGroSplit(segs)
			}
		}
		if len(batch) > 0 {
			t.cnt.pktsIn.Add(int64(len(batch)))
			t.push(batch)
		}
	}
}

// push appends a decoded batch to the inbox. Overflow beyond
// rxInboxDepth behaves like network loss.
func (t *GroupTransport) push(env []transport.Envelope) {
	select {
	case <-t.closed:
		for i := range env {
			transport.PutPacket(env[i].Pkt)
		}
		return
	default:
	}
	t.qmu.Lock()
	if t.head > 0 {
		n := copy(t.queue, t.queue[t.head:])
		for i := n; i < len(t.queue); i++ {
			t.queue[i] = transport.Envelope{}
		}
		t.queue = t.queue[:n]
		t.head = 0
	}
	space := rxInboxDepth - len(t.queue)
	for i := range env {
		if i >= space {
			transport.PutPacket(env[i].Pkt)
			t.cnt.inboxDrops.Add(1)
			continue
		}
		t.queue = append(t.queue, env[i])
	}
	t.qmu.Unlock()
	select {
	case t.notify <- struct{}{}:
	default:
	}
}

// pop moves up to len(buf) pending envelopes into buf, re-arming the
// notify token when items remain.
func (t *GroupTransport) pop(buf []transport.Envelope) int {
	t.qmu.Lock()
	n := len(t.queue) - t.head
	if n > len(buf) {
		n = len(buf)
	}
	for i := 0; i < n; i++ {
		buf[i] = t.queue[t.head+i]
		t.queue[t.head+i] = transport.Envelope{}
	}
	t.head += n
	remaining := len(t.queue) - t.head
	if remaining == 0 {
		t.queue = t.queue[:0]
		t.head = 0
	}
	t.qmu.Unlock()
	if remaining > 0 {
		select {
		case t.notify <- struct{}{}:
		default:
		}
	}
	return n
}

// Local implements transport.Transport: the node ID derives from the
// unicast socket's port, like the single-group transports, keeping
// local IDs disjoint from learned peer IDs (>= peerIDBase).
func (t *GroupTransport) Local() packet.NodeID {
	return packet.NodeID(t.uconn.LocalAddr().(*net.UDPAddr).Port)
}

// Addr returns the transport's unicast (feedback) socket address.
func (t *GroupTransport) Addr() *net.UDPAddr { return t.uconn.LocalAddr().(*net.UDPAddr) }

// Port returns the shared multicast data port.
func (t *GroupTransport) Port() int { return t.port }

// Sockets returns how many file descriptors the transport holds — the
// O(1) half of the thousand-group claim.
func (t *GroupTransport) Sockets() int { return 2 }

// GroupStats snapshots the transport's datapath counters, implementing
// transport.GroupReporter for the control plane's per-shard metrics.
func (t *GroupTransport) GroupStats() transport.GroupStats {
	t.mu.Lock()
	joined, registered := len(t.joined), len(t.groups)
	t.mu.Unlock()
	return transport.GroupStats{
		Joined:         joined,
		Registered:     registered,
		PktsIn:         t.cnt.pktsIn.Load(),
		PktsOut:        t.cnt.pktsOut.Load(),
		InboxDrops:     t.cnt.inboxDrops.Load(),
		TruncatedDrops: t.cnt.truncated.Load(),
		SendErrors:     t.cnt.sendErrors.Load(),
	}
}

// SendBatch implements transport.BatchTransport. Multicast envelopes
// are addressed by Envelope.Group (which must be joined or registered);
// unicast goes to the learned peer address. Everything leaves from
// uconn in one sendmmsg where available. Per-envelope failures are
// counted and the first is returned after the rest of the batch is
// attempted.
func (t *GroupTransport) SendBatch(env []transport.Envelope) error {
	t.send.mu.Lock()
	defer t.send.mu.Unlock()
	msgs := t.send.out[:0]
	var firstErr error
	for i := range env {
		b, err := env[i].Pkt.Encode(t.send.encBuf(i))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		t.send.enc[i] = b
		var addr *net.UDPAddr
		if env[i].Multicast {
			t.mu.Lock()
			addr = t.groups[env[i].Group]
			t.mu.Unlock()
			if addr == nil {
				countSendError(&t.cnt.sendErrors)
				if firstErr == nil {
					firstErr = fmt.Errorf("udpmcast: group %v neither joined nor registered", env[i].Group)
				}
				continue
			}
		} else {
			t.mu.Lock()
			addr = t.addrs[env[i].To]
			t.mu.Unlock()
			if addr == nil {
				countSendError(&t.cnt.sendErrors)
				if firstErr == nil {
					firstErr = fmt.Errorf("udpmcast: unknown node %v", env[i].To)
				}
				continue
			}
		}
		msgs = append(msgs, outMsg{buf: b, addr: addr})
	}
	t.cnt.pktsOut.Add(int64(len(msgs)))
	err := t.send.bw.write(msgs)
	t.send.out = msgs[:0]
	if err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// RecvBatch implements transport.BatchTransport, draining the inbox
// fed by both read loops. Ownership of the returned packets transfers
// to the caller.
func (t *GroupTransport) RecvBatch(buf []transport.Envelope) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	for {
		if n := t.pop(buf); n > 0 {
			return n, nil
		}
		select {
		case <-t.notify:
		case <-t.closed:
			// Drain anything that raced with close.
			if n := t.pop(buf); n > 0 {
				return n, nil
			}
			return 0, transport.ErrClosed
		}
	}
}

// Send implements transport.Transport as a batch-size-1 adapter. Note
// that per-packet sends cannot address a group (no Envelope.Group);
// multicast through the batch interface instead.
func (t *GroupTransport) Send(p *packet.Packet, multicast bool, node packet.NodeID) error {
	env := [1]transport.Envelope{{Pkt: p, Multicast: multicast, To: node}}
	return t.SendBatch(env[:])
}

// Recv implements transport.Transport as a batch-size-1 adapter.
func (t *GroupTransport) Recv() (*packet.Packet, packet.NodeID, error) {
	var buf [1]transport.Envelope
	for {
		n, err := t.RecvBatch(buf[:])
		if err != nil {
			return nil, 0, err
		}
		if n == 1 {
			return buf[0].Pkt, buf[0].From, nil
		}
	}
}

// Close implements transport.Transport.
func (t *GroupTransport) Close() error {
	t.once.Do(func() { close(t.closed) })
	err1 := t.mconn.Close()
	err2 := t.uconn.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
