package udpmcast

import (
	"bytes"
	"testing"
)

// TestSplitDatagrams covers the user-space half of UDP GRO: carving a
// kernel-coalesced supersegment back into the wire datagrams it packs,
// including the one allowed shorter tail.
func TestSplitDatagrams(t *testing.T) {
	pattern := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i)
		}
		return b
	}
	split := func(b []byte, seg int) ([][]byte, int) {
		var parts [][]byte
		n := splitDatagrams(b, seg, func(d []byte) {
			parts = append(parts, append([]byte(nil), d...))
		})
		return parts, n
	}

	cases := []struct {
		name string
		size int
		seg  int
		want []int // expected part lengths
	}{
		{"no-gro-seg-zero", 3000, 0, []int{3000}},
		{"single-under-seg", 900, 1400, []int{900}},
		{"single-exact-seg", 1400, 1400, []int{1400}},
		{"exact-multiple", 4200, 1400, []int{1400, 1400, 1400}},
		{"odd-tail", 3100, 1400, []int{1400, 1400, 300}},
		{"tiny-tail", 2801, 1400, []int{1400, 1400, 1}},
		{"empty", 0, 1400, []int{0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := pattern(tc.size)
			parts, n := split(src, tc.seg)
			if n != len(tc.want) || len(parts) != len(tc.want) {
				t.Fatalf("split %d/%d: got %d parts (n=%d), want %d",
					tc.size, tc.seg, len(parts), n, len(tc.want))
			}
			var joined []byte
			for i, p := range parts {
				if len(p) != tc.want[i] {
					t.Errorf("part %d: %d bytes, want %d", i, len(p), tc.want[i])
				}
				joined = append(joined, p...)
			}
			if !bytes.Equal(joined, src) {
				t.Errorf("split %d/%d: reassembled bytes differ from input", tc.size, tc.seg)
			}
		})
	}
}
