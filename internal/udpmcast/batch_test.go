package udpmcast

import (
	"net"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/transport"
)

// dialFeedback opens a local UDP socket aimed at the given port —
// multicast-free plumbing for driving the receive paths, in the style
// of TestNodeIDAssignmentStable.
func dialFeedback(t *testing.T, port int) *net.UDPConn {
	t.Helper()
	c, err := net.DialUDP("udp4", nil, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: port})
	if err != nil {
		t.Skipf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func writeSeq32(t *testing.T, c *net.UDPConn, seq uint32) {
	t.Helper()
	p := &packet.Packet{Header: packet.Header{Type: packet.TypeUpdate, Seq: seq}}
	buf, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(buf); err != nil {
		t.Fatal(err)
	}
}

// collectSeqs drains bt until want distinct sequence numbers arrived,
// asserting every RecvBatch call respects the buffer bound.
func collectSeqs(t *testing.T, bt transport.BatchTransport, bufLen, want int) (map[uint32]int, int) {
	t.Helper()
	buf := make([]transport.Envelope, bufLen)
	seqs := make(map[uint32]int)
	calls := 0
	deadline := time.Now().Add(10 * time.Second)
	for len(seqs) < want && time.Now().Before(deadline) {
		n, err := bt.RecvBatch(buf)
		if err != nil {
			t.Fatalf("RecvBatch: %v", err)
		}
		if n < 1 || n > bufLen {
			t.Fatalf("RecvBatch returned %d envelopes with buffer %d", n, bufLen)
		}
		calls++
		for i := 0; i < n; i++ {
			seqs[buf[i].Pkt.Seq]++
			transport.PutPacket(buf[i].Pkt)
			buf[i] = transport.Envelope{}
		}
	}
	return seqs, calls
}

// TestSenderRecvBatchPartialFill blasts more datagrams at the sender's
// unicast socket than one RecvBatch buffer holds: every packet must
// arrive exactly once across several partially-filled calls, all
// attributed to the same learned node ID.
func TestSenderRecvBatchPartialFill(t *testing.T) {
	st, err := NewSenderTransport(testGroup)
	if err != nil {
		t.Skipf("cannot open sender transport: %v", err)
	}
	defer st.Close()
	c := dialFeedback(t, st.Addr().Port)

	const total = 12
	for i := 0; i < total; i++ {
		writeSeq32(t, c, uint32(100+i))
	}
	buf := make([]transport.Envelope, 4)
	seqs := make(map[uint32]int)
	var from packet.NodeID
	for len(seqs) < total {
		n, err := st.RecvBatch(buf)
		if err != nil {
			t.Fatalf("RecvBatch: %v", err)
		}
		if n < 1 || n > len(buf) {
			t.Fatalf("RecvBatch returned %d with buffer %d", n, len(buf))
		}
		for i := 0; i < n; i++ {
			seqs[buf[i].Pkt.Seq]++
			if from == 0 {
				from = buf[i].From
			} else if buf[i].From != from {
				t.Fatalf("one source got two node IDs: %v and %v", from, buf[i].From)
			}
			transport.PutPacket(buf[i].Pkt)
			buf[i] = transport.Envelope{}
		}
	}
	for i := 0; i < total; i++ {
		if seqs[uint32(100+i)] != 1 {
			t.Errorf("seq %d delivered %d times, want 1", 100+i, seqs[uint32(100+i)])
		}
	}
	if from < peerIDBase {
		t.Errorf("peer node ID %v below peerIDBase", from)
	}
}

// TestSenderBatchAdapterEquivalence checks that the per-packet Recv
// adapter delivers the same stream the batch interface would: strict
// one-in one-out, same node-ID assignment.
func TestSenderBatchAdapterEquivalence(t *testing.T) {
	st, err := NewSenderTransport(testGroup)
	if err != nil {
		t.Skipf("cannot open sender transport: %v", err)
	}
	defer st.Close()
	c := dialFeedback(t, st.Addr().Port)

	var ids []packet.NodeID
	for i := 0; i < 3; i++ {
		writeSeq32(t, c, uint32(i))
		p, id, err := st.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if p.Seq != uint32(i) {
			t.Fatalf("Recv %d: seq %d", i, p.Seq)
		}
		ids = append(ids, id)
		transport.PutPacket(p)
	}
	if ids[0] != ids[1] || ids[1] != ids[2] {
		t.Errorf("adapter re-assigned node IDs across calls: %v", ids)
	}
}

// TestReceiverInboxBatchDelivery feeds the receiver's unicast socket
// directly (the PROBE path) and drains through RecvBatch: the two read
// loops share one inbox, packets arrive once each, and Close unblocks
// with ErrClosed after a drain.
func TestReceiverInboxBatchDelivery(t *testing.T) {
	rt, err := NewReceiverTransport(testGroup, loopbackInterface(t))
	if err != nil {
		t.Skipf("cannot join group: %v", err)
	}
	defer rt.Close()
	c := dialFeedback(t, int(rt.Local()))

	const total = 10
	for i := 0; i < total; i++ {
		writeSeq32(t, c, uint32(200+i))
	}
	seqs, _ := collectSeqs(t, rt, 3, total)
	for i := 0; i < total; i++ {
		if seqs[uint32(200+i)] != 1 {
			t.Errorf("seq %d delivered %d times, want 1", 200+i, seqs[uint32(200+i)])
		}
	}

	rt.Close()
	var buf [1]transport.Envelope
	if _, err := rt.RecvBatch(buf[:]); err != transport.ErrClosed {
		t.Errorf("RecvBatch after close = %v, want ErrClosed", err)
	}
}
