package udpmcast

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/receiver"
	"repro/internal/sender"
)

const testGroup = "239.66.77.88:39877"

// loopbackInterface returns an interface suitable for same-host
// multicast, preferring loopback.
func loopbackInterface(t *testing.T) *net.Interface {
	t.Helper()
	ifs, err := net.Interfaces()
	if err != nil {
		t.Skipf("no interfaces: %v", err)
	}
	for _, ifi := range ifs {
		if ifi.Flags&net.FlagLoopback != 0 && ifi.Flags&net.FlagUp != 0 {
			ifi := ifi
			return &ifi
		}
	}
	return nil
}

// multicastAvailable probes whether same-host multicast actually moves
// packets in this environment.
func multicastAvailable(t *testing.T) bool {
	t.Helper()
	ifi := loopbackInterface(t)
	rt, err := NewReceiverTransport(testGroup, ifi)
	if err != nil {
		t.Logf("multicast unavailable: %v", err)
		return false
	}
	defer rt.Close()
	st, err := NewSenderTransport(testGroup, WithEgressIP(net.IPv4(127, 0, 0, 1)))
	if err != nil {
		t.Logf("multicast unavailable: %v", err)
		return false
	}
	defer st.Close()
	probe := &packet.Packet{Header: packet.Header{Type: packet.TypeKeepalive, Seq: 42}}
	got := make(chan bool, 1)
	go func() {
		p, _, err := rt.Recv()
		got <- err == nil && p.Seq == 42
	}()
	for i := 0; i < 5; i++ {
		if err := st.Send(probe, true, 0); err != nil {
			t.Logf("multicast send failed: %v", err)
			return false
		}
		select {
		case ok := <-got:
			return ok
		case <-time.After(200 * time.Millisecond):
		}
	}
	return false
}

func TestUDPMulticastTransfer(t *testing.T) {
	if !multicastAvailable(t) {
		t.Skip("IP multicast not available in this environment")
	}
	const n = 2
	const size = 64 << 10
	ifi := loopbackInterface(t)

	var rts []*ReceiverTransport
	for i := 0; i < n; i++ {
		rt, err := NewReceiverTransport(testGroup, ifi)
		if err != nil {
			t.Fatal(err)
		}
		rts = append(rts, rt)
	}
	st, err := NewSenderTransport(testGroup, WithEgressIP(net.IPv4(127, 0, 0, 1)))
	if err != nil {
		t.Fatal(err)
	}

	want := make([]byte, size)
	app.FillPattern(want, 0)

	var wg sync.WaitGroup
	results := make([][]byte, n)
	for i, rt := range rts {
		wg.Add(1)
		go func(i int, rt *ReceiverTransport) {
			defer wg.Done()
			rc := core.NewReceiver(rt, receiver.Config{RcvBuf: 64 << 10})
			got, err := io.ReadAll(rc)
			if err != nil {
				t.Errorf("receiver %d: %v", i, err)
			}
			results[i] = got
			rc.Close()
		}(i, rt)
	}

	sc := core.NewSender(st, sender.Config{SndBuf: 64 << 10, ExpectedReceivers: n})
	if _, err := sc.Write(want); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- sc.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("sender Close timed out over UDP multicast")
	}
	wg.Wait()
	for i, got := range results {
		if !bytes.Equal(got, want) {
			t.Errorf("receiver %d delivered %d bytes, equal=%v", i, len(got), bytes.Equal(got, want))
		}
	}
}

func TestSenderTransportRejectsNonMulticastGroup(t *testing.T) {
	if _, err := NewSenderTransport("127.0.0.1:9999"); err == nil {
		t.Error("unicast group address accepted")
	}
	if _, err := NewSenderTransport("not-an-address"); err == nil {
		t.Error("garbage group address accepted")
	}
}

func TestSenderTransportUnknownNode(t *testing.T) {
	st, err := NewSenderTransport(testGroup)
	if err != nil {
		t.Skipf("cannot open sender transport: %v", err)
	}
	defer st.Close()
	p := &packet.Packet{Header: packet.Header{Type: packet.TypeProbe}}
	if err := st.Send(p, false, 99); err == nil {
		t.Error("unicast to unknown node succeeded")
	}
}

func TestReceiverTransportSendBeforeSenderKnown(t *testing.T) {
	rt, err := NewReceiverTransport(testGroup, loopbackInterface(t))
	if err != nil {
		t.Skipf("cannot join group: %v", err)
	}
	defer rt.Close()
	p := &packet.Packet{Header: packet.Header{Type: packet.TypeNak}}
	if err := rt.Send(p, false, 0); err == nil {
		t.Error("feedback before the sender address is known succeeded")
	}
	// Multicast (local-recovery traffic) needs no sender address.
	if err := rt.Send(p, true, 0); err != nil {
		t.Errorf("receiver multicast failed: %v", err)
	}
}

func TestNodeIDAssignmentStable(t *testing.T) {
	st, err := NewSenderTransport(testGroup)
	if err != nil {
		t.Skipf("cannot open sender transport: %v", err)
	}
	defer st.Close()
	// Feed feedback from two local sockets straight to the sender's
	// unicast port; IDs must be dense and stable per source.
	dst := st.Addr()
	c1, err := net.DialUDP("udp4", nil, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: dst.Port})
	if err != nil {
		t.Skipf("dial: %v", err)
	}
	defer c1.Close()
	c2, err := net.DialUDP("udp4", nil, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: dst.Port})
	if err != nil {
		t.Skipf("dial: %v", err)
	}
	defer c2.Close()
	send := func(c *net.UDPConn, seq uint32) {
		p := &packet.Packet{Header: packet.Header{Type: packet.TypeUpdate, Seq: seq}}
		buf, _ := p.Encode(nil)
		c.Write(buf)
	}
	send(c1, 1)
	p1, id1, err := st.Recv()
	if err != nil || p1.Seq != 1 {
		t.Fatalf("recv1: %v %v", p1, err)
	}
	send(c2, 2)
	_, id2, _ := st.Recv()
	send(c1, 3)
	_, id3, _ := st.Recv()
	if id1 == id2 {
		t.Error("two sources shared a node ID")
	}
	if id3 != id1 {
		t.Error("same source got a different node ID")
	}
}
