//go:build linux && (amd64 || arm64)

package udpmcast

import (
	"bytes"
	"net"
	"syscall"
	"testing"
	"time"
	"unsafe"

	"repro/internal/packet"
	"repro/internal/transport"
)

// cmsgBuf builds a control-message region holding one cmsg with the
// given level/type/payload, padded to CMSG_SPACE like the kernel does.
func cmsgBuf(level, typ int32, data []byte) []byte {
	l := syscall.SizeofCmsghdr + len(data)
	b := make([]byte, (l+7)&^7)
	h := (*syscall.Cmsghdr)(unsafe.Pointer(&b[0]))
	h.Level = level
	h.Type = typ
	h.SetLen(l)
	copy(b[syscall.SizeofCmsghdr:], data)
	return b
}

// TestGsoCmsgEncode checks the send-side UDP_SEGMENT control block
// against the kernel ABI: correct level/type/length and a host-order
// u16 payload, parseable by the stdlib cmsg walker.
func TestGsoCmsgEncode(t *testing.T) {
	var c gsoCmsg
	c.set(1420)
	if c.hdr.Level != solUDP || c.hdr.Type != udpSegment {
		t.Fatalf("cmsg level/type = %d/%d, want %d/%d", c.hdr.Level, c.hdr.Type, solUDP, udpSegment)
	}
	if int(c.hdr.Len) != syscall.SizeofCmsghdr+2 {
		t.Fatalf("cmsg len = %d, want %d", c.hdr.Len, syscall.SizeofCmsghdr+2)
	}
	raw := (*[gsoCmsgSpace]byte)(unsafe.Pointer(&c))[:]
	scms, err := syscall.ParseSocketControlMessage(raw)
	if err != nil {
		t.Fatalf("stdlib cannot parse the block: %v", err)
	}
	if len(scms) != 1 {
		t.Fatalf("parsed %d cmsgs, want 1", len(scms))
	}
	got := *(*uint16)(unsafe.Pointer(&scms[0].Data[0]))
	if got != 1420 {
		t.Fatalf("segment size round-trip = %d, want 1420", got)
	}
}

// TestGroSegSizeParse checks the receive-side UDP_GRO decode against
// both payload widths the kernel has shipped (int since 5.2, u16
// before), cmsg walking past a preceding IP_PKTINFO, and rejection of
// absent or malformed regions.
func TestGroSegSizeParse(t *testing.T) {
	i32 := func(v int32) []byte { return (*[4]byte)(unsafe.Pointer(&v))[:] }
	u16 := func(v uint16) []byte { return (*[2]byte)(unsafe.Pointer(&v))[:] }
	pktinfo := cmsgBuf(syscall.IPPROTO_IP, syscall.IP_PKTINFO, make([]byte, 12))

	cases := []struct {
		name string
		buf  []byte
		want int
	}{
		{"int-width", cmsgBuf(solUDP, udpGRO, i32(1420)), 1420},
		{"u16-width", cmsgBuf(solUDP, udpGRO, u16(1300)), 1300},
		{"after-pktinfo", append(append([]byte(nil), pktinfo...), cmsgBuf(solUDP, udpGRO, i32(1472))...), 1472},
		{"pktinfo-only", pktinfo, 0},
		{"empty", nil, 0},
		{"short", []byte{1, 2, 3}, 0},
		{"wrong-level", cmsgBuf(syscall.IPPROTO_IP, udpGRO, i32(1420)), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := groSegSize(tc.buf); got != tc.want {
				t.Errorf("groSegSize = %d, want %d", got, tc.want)
			}
		})
	}

	// A cmsg header whose length overruns the buffer must not be trusted.
	bad := cmsgBuf(solUDP, udpGRO, i32(1420))
	(*syscall.Cmsghdr)(unsafe.Pointer(&bad[0])).SetLen(len(bad) + 64)
	if got := groSegSize(bad); got != 0 {
		t.Errorf("overlong cmsg len parsed as %d, want 0", got)
	}
}

// TestCoalesceRun checks the GSO coalescing rule on staged batches:
// maximal same-destination same-size runs, one shorter tail allowed
// only as the final segment, kernel segment-count and payload caps.
func TestCoalesceRun(t *testing.T) {
	addrA := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9000}
	addrA2 := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9000} // same value, distinct pointer
	addrB := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9001}
	mk := func(n int, a *net.UDPAddr) outMsg { return outMsg{buf: make([]byte, n), addr: a} }

	repeat := func(n, size int, a *net.UDPAddr) []outMsg {
		msgs := make([]outMsg, n)
		for i := range msgs {
			msgs[i] = mk(size, a)
		}
		return msgs
	}

	cases := []struct {
		name string
		msgs []outMsg
		want int
	}{
		{"uniform", repeat(4, 1000, addrA), 4},
		{"addr-by-value", []outMsg{mk(1000, addrA), mk(1000, addrA2), mk(1000, addrA)}, 3},
		{"dest-change-breaks", []outMsg{mk(1000, addrA), mk(1000, addrA), mk(1000, addrB)}, 2},
		{"shorter-tail-joins", []outMsg{mk(1000, addrA), mk(1000, addrA), mk(600, addrA), mk(1000, addrA)}, 3},
		{"larger-breaks", []outMsg{mk(1000, addrA), mk(1200, addrA)}, 1},
		{"zero-first", []outMsg{mk(0, addrA), mk(1000, addrA)}, 1},
		{"zero-breaks", []outMsg{mk(1000, addrA), mk(0, addrA), mk(1000, addrA)}, 1},
		{"nil-addr-breaks", []outMsg{mk(1000, addrA), {buf: make([]byte, 1000)}, mk(1000, addrA)}, 1},
		{"oversize-first", []outMsg{mk(udpMaxPayload, addrA), mk(udpMaxPayload, addrA)}, 1},
		{"segment-cap", repeat(gsoMaxSegments+6, 100, addrA), gsoMaxSegments},
		{"payload-cap", repeat(4, 30000, addrA), 2}, // 65507/30000 = 2 segments max
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := coalesceRun(tc.msgs, 0); got != tc.want {
				t.Errorf("coalesceRun = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestGsoWriterLiveLoopback drives a real UDP_SEGMENT send: a batch of
// same-size messages plus a shorter tail, aimed at two destinations,
// must arrive as individual bit-exact wire datagrams in order, with the
// IO counters showing kernel-split sub-segments amortized over few
// syscalls.
func TestGsoWriterLiveLoopback(t *testing.T) {
	if gso, _ := ProbeOffload(); !gso {
		t.Skip("kernel does not accept UDP_SEGMENT; skipping live GSO send test")
	}
	if !gsoSupported.Load() {
		t.Skip("GSO disabled at runtime earlier in this process")
	}
	listen := func() *net.UDPConn {
		c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Skipf("loopback socket: %v", err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	peer1, peer2, conn := listen(), listen(), listen()
	w := newBatchWriter(conn)
	w.enableGSO(conn)
	if !w.gso {
		t.Skip("send socket refused UDP_SEGMENT arming")
	}

	dst1 := peer1.LocalAddr().(*net.UDPAddr)
	dst2 := peer2.LocalAddr().(*net.UDPAddr)
	var msgs []outMsg
	var want1, want2 [][]byte
	for i := 0; i < 9; i++ {
		b := bytes.Repeat([]byte{byte('a' + i)}, 1200)
		msgs = append(msgs, outMsg{buf: b, addr: dst1})
		want1 = append(want1, b)
	}
	tail := bytes.Repeat([]byte{'z'}, 700) // shorter tail closes the first run
	msgs = append(msgs, outMsg{buf: tail, addr: dst1})
	want1 = append(want1, tail)
	for i := 0; i < 2; i++ {
		b := bytes.Repeat([]byte{byte('A' + i)}, 800) // second supersegment, second destination
		msgs = append(msgs, outMsg{buf: b, addr: dst2})
		want2 = append(want2, b)
	}

	before := transport.IOStats()
	if err := w.write(msgs); err != nil {
		t.Fatalf("write: %v", err)
	}
	after := transport.IOStats()

	recv := func(peer *net.UDPConn, want [][]byte) {
		buf := make([]byte, 2048)
		_ = peer.SetReadDeadline(time.Now().Add(5 * time.Second))
		for i, wd := range want {
			n, _, err := peer.ReadFromUDP(buf)
			if err != nil {
				t.Fatalf("datagram %d: %v", i, err)
			}
			if !bytes.Equal(buf[:n], wd) {
				t.Fatalf("datagram %d: %d bytes, want %d, content mismatch", i, n, len(wd))
			}
		}
	}
	recv(peer1, want1)
	recv(peer2, want2)

	wire := len(want1) + len(want2)
	if d := after.SentDatagrams - before.SentDatagrams; d < int64(wire) {
		t.Errorf("SentDatagrams +%d, want >= %d (sub-segments must be counted)", d, wire)
	}
	if d := after.GsoSegments - before.GsoSegments; d < int64(wire) {
		t.Errorf("GsoSegments +%d, want >= %d", d, wire)
	}
	if d := after.SendSyscalls - before.SendSyscalls; d > 2 {
		t.Errorf("SendSyscalls +%d for %d datagrams, want amortization (<= 2)", d, wire)
	}
}

// TestOffloadBitExactLoopback runs the same multicast batch transfer
// with offload on and off and demands identical decoded streams — the
// wire format must not change, only the syscall economics.
func TestOffloadBitExactLoopback(t *testing.T) {
	if !multicastAvailable(t) {
		t.Skip("no same-host multicast in this environment")
	}
	const total = 40
	run := func(t *testing.T, on bool, group string) map[uint32]string {
		SetOffload(on)
		defer SetOffload(true)
		rt, err := NewReceiverTransport(group, loopbackInterface(t))
		if err != nil {
			t.Skipf("receiver transport: %v", err)
		}
		defer rt.Close()
		st, err := NewSenderTransport(group, WithEgressIP(net.IPv4(127, 0, 0, 1)))
		if err != nil {
			t.Skipf("sender transport: %v", err)
		}
		defer st.Close()

		env := make([]transport.Envelope, 0, total)
		for i := 0; i < total; i++ {
			pl := bytes.Repeat([]byte{byte(i)}, 1000)
			env = append(env, transport.Envelope{
				Pkt: &packet.Packet{
					Header:  packet.Header{Type: packet.TypeData, Seq: uint32(i), Length: uint32(len(pl))},
					Payload: pl,
				},
				Multicast: true,
			})
		}
		if err := st.SendBatch(env); err != nil {
			t.Fatalf("SendBatch(offload=%v): %v", on, err)
		}

		// Watchdog: close the receiver rather than hang if datagrams are
		// lost, and let the count assertion below report it.
		stop := time.AfterFunc(15*time.Second, func() { rt.Close() })
		defer stop.Stop()
		got := make(map[uint32]string, total)
		buf := make([]transport.Envelope, 16)
		for len(got) < total {
			n, err := rt.RecvBatch(buf)
			if err != nil {
				break
			}
			for i := 0; i < n; i++ {
				if buf[i].Pkt.Type == packet.TypeData {
					got[buf[i].Pkt.Seq] = string(buf[i].Pkt.Payload)
				}
				transport.PutPacket(buf[i].Pkt)
				buf[i] = transport.Envelope{}
			}
		}
		return got
	}

	on := run(t, true, "239.66.77.91:39893")
	off := run(t, false, "239.66.77.91:39894")
	if len(on) != total || len(off) != total {
		t.Fatalf("incomplete delivery: offload-on %d/%d, offload-off %d/%d",
			len(on), total, len(off), total)
	}
	for seq, pl := range on {
		if off[seq] != pl {
			t.Errorf("seq %d: payload differs between offload on and off", seq)
		}
	}
}
