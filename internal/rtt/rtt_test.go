package rtt

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestInitialEstimate(t *testing.T) {
	e := New(0)
	if e.RTT() != DefaultInitialRTT {
		t.Errorf("default initial RTT = %v", e.RTT())
	}
	e = New(5 * sim.Millisecond)
	if e.RTT() != 5*sim.Millisecond {
		t.Errorf("initial RTT = %v", e.RTT())
	}
	if e.Samples() != 0 {
		t.Error("fresh estimator has samples")
	}
}

func TestFirstSampleTakesOver(t *testing.T) {
	e := New(10 * sim.Millisecond)
	e.Sample(100 * sim.Millisecond)
	if e.RTT() != 100*sim.Millisecond {
		t.Errorf("first sample: RTT = %v, want 100ms", e.RTT())
	}
	if e.Var() != 50*sim.Millisecond {
		t.Errorf("first sample: var = %v, want 50ms", e.Var())
	}
}

func TestAsymmetricConvergence(t *testing.T) {
	// Start with a fast receiver, then a distant one appears: the
	// estimate must rise to near the distant RTT within a few samples.
	e := New(0)
	for i := 0; i < 10; i++ {
		e.Sample(2 * sim.Millisecond)
	}
	for i := 0; i < 8; i++ {
		e.Sample(200 * sim.Millisecond)
	}
	if e.RTT() < 150*sim.Millisecond {
		t.Errorf("estimate rose only to %v after distant receiver appeared", e.RTT())
	}
	// Now the distant receiver leaves; fast samples must decay the
	// estimate slowly — after the same number of samples it should still
	// remember the distant receiver to some degree.
	for i := 0; i < 8; i++ {
		e.Sample(2 * sim.Millisecond)
	}
	if e.RTT() < 50*sim.Millisecond {
		t.Errorf("estimate decayed too fast: %v", e.RTT())
	}
	// But eventually it converges down.
	for i := 0; i < 200; i++ {
		e.Sample(2 * sim.Millisecond)
	}
	if e.RTT() > 4*sim.Millisecond {
		t.Errorf("estimate stuck high: %v", e.RTT())
	}
}

func TestIgnoredSamples(t *testing.T) {
	e := New(10 * sim.Millisecond)
	e.Sample(0)
	e.Sample(-5)
	if e.Samples() != 0 {
		t.Error("non-positive samples were consumed")
	}
}

func TestSampleClamp(t *testing.T) {
	e := New(0)
	e.Sample(time100x(DefaultMaxRTT))
	if e.RTT() > DefaultMaxRTT {
		t.Errorf("sample not clamped: %v", e.RTT())
	}
}

func time100x(d sim.Time) sim.Time { return d * 100 }

func TestRTOBackoff(t *testing.T) {
	e := New(0)
	e.Sample(10 * sim.Millisecond)
	base := e.RTO()
	if base < 10*sim.Millisecond {
		t.Fatalf("RTO %v below srtt", base)
	}
	e.Backoff()
	if got := e.RTO(); got != base*2 && got != DefaultMaxRTT {
		t.Errorf("one backoff: RTO = %v, want %v", got, base*2)
	}
	e.Backoff()
	if got := e.RTO(); got != base*4 && got != DefaultMaxRTT {
		t.Errorf("two backoffs: RTO = %v", got)
	}
	// A good sample clears the backoff (Karn rule 2 exit condition).
	e.Sample(10 * sim.Millisecond)
	if got := e.RTO(); got > base*2 {
		t.Errorf("sample did not clear backoff: RTO = %v", got)
	}
}

func TestRTOSaturates(t *testing.T) {
	e := New(0)
	e.Sample(sim.Second)
	for i := 0; i < 40; i++ {
		e.Backoff()
	}
	if got := e.RTO(); got != DefaultMaxRTT {
		t.Errorf("saturated RTO = %v, want %v", got, DefaultMaxRTT)
	}
}

func TestRTOFloor(t *testing.T) {
	e := New(0)
	e.Sample(10 * sim.Microsecond)
	if e.RTO() < sim.Millisecond {
		t.Errorf("RTO %v below the 1ms floor", e.RTO())
	}
}

func TestRTONoSamples(t *testing.T) {
	e := New(20 * sim.Millisecond)
	if e.RTO() != 40*sim.Millisecond {
		t.Errorf("unseeded RTO = %v, want 2×initial", e.RTO())
	}
}

// Property: the estimate always stays within [1µs, DefaultMaxRTT] and the
// sample counter matches the positive samples fed.
func TestPropEstimatorBounds(t *testing.T) {
	f := func(samples []int64) bool {
		e := New(0)
		fed := 0
		for _, s := range samples {
			d := sim.Time(s % int64(20*sim.Second))
			e.Sample(d)
			if d > 0 {
				fed++
			}
		}
		if e.Samples() != fed {
			return false
		}
		if fed > 0 && (e.RTT() < sim.Microsecond || e.RTT() > DefaultMaxRTT) {
			return false
		}
		return e.RTO() >= sim.Millisecond && e.RTO() <= DefaultMaxRTT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: feeding a constant sample converges the estimate to exactly
// that sample.
func TestPropConstantConvergence(t *testing.T) {
	f := func(ms uint16) bool {
		d := sim.Time(int64(ms)+1) * sim.Millisecond
		if d > DefaultMaxRTT {
			d = DefaultMaxRTT
		}
		e := New(0)
		for i := 0; i < 300; i++ {
			e.Sample(d)
		}
		got := e.RTT()
		lo, hi := d-d/8, d+d/8
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
