// Package rtt implements the round-trip-time estimation H-RMC inherits
// from RMC: Karn's algorithm [Karn & Partridge, SIGCOMM '87] applied to
// the multicast setting, where the sender tracks the round trip time to
// the *most distant* receiver and uses it to pace window advancement,
// probe rate-limiting, and retransmission backoff.
//
// Karn's two rules are preserved:
//
//  1. Samples from retransmitted packets are ambiguous and are never fed
//     to the estimator (callers discard samples when Tries > 0).
//  2. On retransmission the timeout is backed off exponentially and the
//     backed-off value is kept until a sample from an unambiguous
//     exchange arrives.
//
// Because the protocol must adapt to the slowest receiver, the estimator
// converges upward quickly (a sample above the smoothed estimate pulls
// hard) and decays downward slowly (a fast sample from a near receiver
// must not erase what is known about a distant one).
package rtt

import "repro/internal/sim"

// Estimator tracks a smoothed round trip time with mean-deviation, in the
// style of Jacobson/Karels as used by TCP, with asymmetric gain as
// described in the package comment.
type Estimator struct {
	// InitialRTT seeds the estimate before any sample arrives.
	initial sim.Time
	srtt    sim.Time
	rttvar  sim.Time
	samples int
	backoff uint // exponential backoff shift applied to RTO
	// MaxRTT clamps the estimate against pathological samples.
	max sim.Time
}

// Gains, expressed as divisor shifts like the TCP implementation:
// alpha = 1/8 for downward movement, beta = 1/4 for the deviation.
const (
	alphaShift = 3
	betaShift  = 2
	upGain     = 2 // divisor for upward movement: gain 1/2, fast rise
)

// DefaultInitialRTT is used when the caller provides none; it matches a
// campus LAN-to-MAN guess and adapts within a few samples.
const DefaultInitialRTT = 10 * sim.Millisecond

// DefaultMaxRTT bounds the estimate.
const DefaultMaxRTT = 10 * sim.Second

// New returns an estimator seeded with the given initial RTT. Zero or
// negative initial values select DefaultInitialRTT.
func New(initial sim.Time) *Estimator {
	if initial <= 0 {
		initial = DefaultInitialRTT
	}
	return &Estimator{initial: initial, max: DefaultMaxRTT}
}

// Samples returns the number of unambiguous samples consumed.
func (e *Estimator) Samples() int { return e.samples }

// RTT returns the current smoothed estimate of the round trip time to the
// most distant receiver.
func (e *Estimator) RTT() sim.Time {
	if e.samples == 0 {
		return e.initial
	}
	return e.srtt
}

// Sample feeds one unambiguous round-trip measurement. Callers enforce
// Karn's first rule (never sample a retransmitted exchange). Non-positive
// samples are ignored.
func (e *Estimator) Sample(m sim.Time) {
	if m <= 0 {
		return
	}
	if m > e.max {
		m = e.max
	}
	if e.samples == 0 {
		e.srtt = m
		e.rttvar = m / 2
	} else {
		diff := m - e.srtt
		if diff > 0 {
			// Distant-receiver sample: rise fast.
			e.srtt += diff / upGain
		} else {
			// Near-receiver sample: decay slowly.
			e.srtt += diff >> alphaShift
		}
		if diff < 0 {
			diff = -diff
		}
		e.rttvar += (diff - e.rttvar) >> betaShift
	}
	if e.srtt < sim.Microsecond {
		e.srtt = sim.Microsecond
	}
	e.samples++
	e.backoff = 0 // Karn: a good sample clears the backoff
}

// RTO returns the retransmission/probe timeout: srtt + 4*rttvar with the
// current exponential backoff applied, clamped to [1ms, max].
func (e *Estimator) RTO() sim.Time {
	base := e.RTT() + 4*e.rttvar
	if e.samples == 0 {
		base = 2 * e.initial
	}
	rto := base << e.backoff
	if rto < sim.Millisecond {
		rto = sim.Millisecond
	}
	if rto > e.max || rto <= 0 { // overflow guard on large backoff
		rto = e.max
	}
	return rto
}

// Backoff doubles the timeout (Karn's second rule); it saturates rather
// than overflowing.
func (e *Estimator) Backoff() {
	if e.backoff < 16 {
		e.backoff++
	}
}

// Var returns the current mean deviation.
func (e *Estimator) Var() sim.Time { return e.rttvar }
