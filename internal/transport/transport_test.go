package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/packet"
)

func pkt(seq uint32) *packet.Packet {
	return &packet.Packet{Header: packet.Header{Type: packet.TypeData, Seq: seq, Length: 0}}
}

func TestHubEndpointIdentity(t *testing.T) {
	hub := NewHub()
	a, b := hub.Endpoint(), hub.Endpoint()
	if a.Local() == b.Local() {
		t.Fatal("endpoints share a node ID")
	}
}

func TestHubMulticastExcludesOrigin(t *testing.T) {
	hub := NewHub()
	a, b, c := hub.Endpoint(), hub.Endpoint(), hub.Endpoint()
	if err := a.Send(pkt(1), true, 0); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []Transport{b, c} {
		got, from, err := ep.Recv()
		if err != nil || got.Seq != 1 || from != a.Local() {
			t.Fatalf("multicast recv: %v %v %v", got, from, err)
		}
	}
	// The origin must not have received its own multicast: nothing to
	// read without blocking. Close unblocks with ErrClosed.
	done := make(chan error, 1)
	go func() {
		_, _, err := a.Recv()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	a.Close()
	if err := <-done; err != ErrClosed {
		t.Errorf("origin received its own multicast or wrong error: %v", err)
	}
}

func TestHubUnicastTargetsOneEndpoint(t *testing.T) {
	hub := NewHub()
	a, b, c := hub.Endpoint(), hub.Endpoint(), hub.Endpoint()
	if err := a.Send(pkt(9), false, b.Local()); err != nil {
		t.Fatal(err)
	}
	got, from, err := b.Recv()
	if err != nil || got.Seq != 9 || from != a.Local() {
		t.Fatalf("unicast recv: %v %v %v", got, from, err)
	}
	// c must not see the unicast.
	done := make(chan struct{})
	go func() {
		c.Recv()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("unrelated endpoint received a unicast")
	case <-time.After(30 * time.Millisecond):
	}
	c.Close()
}

func TestHubUnicastToUnknownNodeIsDropped(t *testing.T) {
	hub := NewHub()
	a := hub.Endpoint()
	if err := a.Send(pkt(1), false, 999); err != nil {
		t.Errorf("send to unknown node errored: %v", err)
	}
}

func TestHubDeliveryIsolation(t *testing.T) {
	// Payload mutations after Send must not reach receivers (packets
	// are cloned per delivery).
	hub := NewHub()
	a, b := hub.Endpoint(), hub.Endpoint()
	p := &packet.Packet{
		Header:  packet.Header{Type: packet.TypeData, Seq: 1, Length: 3},
		Payload: []byte{1, 2, 3},
	}
	a.Send(p, true, 0)
	p.Payload[0] = 99
	got, _, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload[0] != 1 {
		t.Error("delivered packet shares payload memory with the sender")
	}
}

func TestHubLossDropsDeliveries(t *testing.T) {
	hub := NewHub(WithLoss(1.0, 1)) // drop everything
	a, b := hub.Endpoint(), hub.Endpoint()
	for i := 0; i < 10; i++ {
		a.Send(pkt(uint32(i)), true, 0)
	}
	done := make(chan struct{})
	go func() {
		b.Recv()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("packet delivered despite 100% loss")
	case <-time.After(30 * time.Millisecond):
	}
	b.Close()
}

func TestHubPartialLossStatistics(t *testing.T) {
	hub := NewHub(WithLoss(0.5, 7))
	a, b := hub.Endpoint(), hub.Endpoint()
	const n = 2000
	for i := 0; i < n; i++ {
		a.Send(pkt(uint32(i)), false, b.Local())
	}
	// Without a configured delay, delivery is synchronous: everything
	// that survived the loss draw is already queued.
	got := b.(*hubEndpoint).pending()
	if got < 800 || got > 1200 {
		t.Errorf("50%% loss delivered %d of %d", got, n)
	}
}

func TestHubDelay(t *testing.T) {
	hub := NewHub(WithDelay(50 * time.Millisecond))
	a, b := hub.Endpoint(), hub.Endpoint()
	start := time.Now()
	a.Send(pkt(1), true, 0)
	_, _, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 45*time.Millisecond {
		t.Errorf("delivery took %v, want ≥ 50ms delay", el)
	}
}

func TestHubCloseSemantics(t *testing.T) {
	hub := NewHub()
	a, b := hub.Endpoint(), hub.Endpoint()
	a.Close()
	if err := a.Close(); err != nil {
		t.Errorf("double Close errored: %v", err)
	}
	if _, _, err := a.Recv(); err != ErrClosed {
		t.Errorf("Recv after Close = %v", err)
	}
	// Sending to a closed endpoint is a silent drop, like the network.
	if err := b.Send(pkt(1), false, a.Local()); err != nil {
		t.Errorf("send to closed endpoint errored: %v", err)
	}
}

func TestHubConcurrentSendersSafe(t *testing.T) {
	hub := NewHub()
	rx := hub.Endpoint()
	const senders, per = 8, 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep := hub.Endpoint()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ep.Send(pkt(uint32(i)), false, rx.Local())
			}
		}()
	}
	got := 0
	recvDone := make(chan int, 1)
	go func() {
		n := 0
		for n < senders*per {
			_, _, err := rx.Recv()
			if err != nil {
				break
			}
			n++
		}
		recvDone <- n
	}()
	wg.Wait()
	select {
	case got = <-recvDone:
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent delivery timed out")
	}
	if got != senders*per {
		t.Errorf("received %d of %d", got, senders*per)
	}
}
