// Group-addressed transport: one endpoint, many multicast groups.
//
// The per-group transports (udpmcast's SenderTransport and
// ReceiverTransport, hub endpoints) burn one endpoint per group, which
// caps how many groups a process can serve: fds and receive loops grow
// O(groups). A GroupTransport amortizes the endpoint instead — a single
// socket (pair) joins N groups, arriving traffic is demultiplexed on
// the destination group address, and outgoing multicast is addressed
// per envelope via Envelope.Group. internal/session hosts many flows on
// one shared GroupTransport, so a daemon's fd and goroutine counts are
// O(shards), not O(groups).
//
// GroupIDs are transport-scoped opaque handles. The udpmcast
// implementation uses the IPv4 group address (a uint32) so the kernel's
// IP_PKTINFO destination maps straight to the ID; the hub assigns dense
// IDs per group name. ID 0 is reserved: it marks "no group" — a unicast
// arrival, or a flow on a classic single-group transport.
package transport

// GroupID identifies one multicast group within a GroupTransport. Zero
// means no group: a unicast arrival or a single-group transport.
type GroupID uint32

// GroupStats is a point-in-time snapshot of one group transport's
// datapath counters; the control plane renders one set per shard on
// /metrics.
type GroupStats struct {
	// Joined is the number of groups with live memberships.
	Joined int
	// Registered is the number of resolved groups (joined or send-only).
	Registered int
	// PktsIn counts decoded datagrams delivered toward the inbox.
	PktsIn int64
	// PktsOut counts datagrams handed to the socket.
	PktsOut int64
	// InboxDrops counts packets dropped on inbox overflow.
	InboxDrops int64
	// TruncatedDrops counts datagrams dropped for exceeding the batch
	// receive buffer.
	TruncatedDrops int64
	// SendErrors counts per-destination send failures, including ones
	// masked by SendBatch's first-error-only return.
	SendErrors int64
}

// GroupReporter is optionally implemented by group transports that can
// snapshot per-shard datapath counters.
type GroupReporter interface {
	GroupStats() GroupStats
}

// GroupTransport is a BatchTransport hosting many multicast groups on
// one endpoint. Outgoing multicast envelopes select their group with
// Envelope.Group; arriving multicast is tagged with the group it was
// addressed to (unicast arrivals carry Group 0). Implementations must
// be safe for concurrent use.
type GroupTransport interface {
	BatchTransport
	// Join makes the endpoint a member of the named group — its traffic
	// is received from now on — and returns the group's ID for envelope
	// addressing. Joining an already-joined group is idempotent and
	// returns the same ID.
	Join(group string) (GroupID, error)
	// Register resolves the named group for sending without becoming a
	// member: send-only flows address the group but do not receive its
	// traffic (no IGMP join, no cross-sender chatter).
	Register(group string) (GroupID, error)
	// Leave drops membership of gid. Leaving a group that was only
	// registered, or never seen, is a no-op.
	Leave(gid GroupID) error
}
