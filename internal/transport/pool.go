package transport

import (
	"repro/internal/packet"
)

// The transport layer draws its packets from the process-wide
// reference-counted pool in internal/packet (see packet/pool.go for
// the full ownership rules). These wrappers exist so transport code
// and its callers keep one vocabulary for the Transport v2 contract:
//
//   - A BatchTransport's RecvBatch hands packet ownership to the
//     caller. The caller either releases the packet with PutPacket
//     once it is done — the demultiplexer does this for packets no
//     flow is bound to — or hands ownership on. A protocol machine
//     that retains the payload (the receive window's hold-until-
//     release buffering) releases it on in-order delivery to the app.
//   - A packet passed to SendBatch remains owned by the sender;
//     implementations copy or encode it before returning and never
//     release it themselves. Senders that need the packet to outlive a
//     concurrent release (the session's shared send poller) cover the
//     overlap with packet.Retain.
//   - After the final PutPacket the packet and its payload must not be
//     touched: the pool will hand both to an unrelated receive path.

// GetPacket takes a packet from the shared pool with one reference.
// The header is zeroed; the payload slice is empty but may have
// recycled capacity.
func GetPacket() *packet.Packet { return packet.Get() }

// PutPacket drops one reference to p, recycling it into the shared
// pool when no references remain. Releasing nil is a no-op.
func PutPacket(p *packet.Packet) { packet.Put(p) }

// ClonePacket deep-copies p into a pooled packet: the batched
// delivery paths' replacement for packet.Clone, recycling both the
// packet struct and the payload backing array.
func ClonePacket(p *packet.Packet) *packet.Packet {
	q := packet.GetBuf(len(p.Payload))
	p.CloneInto(q)
	return q
}

// ReleaseEnvelopes returns every envelope's packet to the pool and
// clears the slots, for callers that consumed a whole RecvBatch
// without retaining anything.
func ReleaseEnvelopes(env []Envelope) {
	for i := range env {
		PutPacket(env[i].Pkt)
		env[i] = Envelope{}
	}
}
