package transport

import (
	"sync"

	"repro/internal/packet"
)

// pktPool is the shared packet buffer pool behind every batched hot
// path: hub per-target clones, udpmcast batched decodes, and any other
// BatchTransport implementation that wants allocation-free receive.
// Payload backing arrays travel with their packet through the pool, so
// a recycled packet absorbs the next clone/decode without allocating.
var pktPool = sync.Pool{New: func() any { return new(packet.Packet) }}

// GetPacket takes a packet from the shared pool. The header is zeroed;
// the payload slice is empty but may have recycled capacity.
//
// Ownership rules (the "explicit release" contract of Transport v2):
//
//   - A BatchTransport's RecvBatch hands packet ownership to the
//     caller. The caller either releases the packet with PutPacket
//     once it is done — the demultiplexer does this for packets no
//     flow is bound to — or hands ownership on (a protocol machine
//     that retains the payload simply never releases it, and the
//     garbage collector reclaims it as before; sync.Pool does not
//     require returns).
//   - A packet passed to SendBatch remains owned by the sender;
//     implementations copy or encode it before returning and never
//     release it themselves.
//   - After PutPacket the packet and its payload must not be touched:
//     the pool will hand both to an unrelated receive path.
func GetPacket() *packet.Packet {
	return pktPool.Get().(*packet.Packet)
}

// PutPacket releases p back to the shared pool, keeping its payload
// capacity for reuse. Releasing nil is a no-op. See GetPacket for the
// ownership rules; releasing a packet something still references is a
// use-after-free style bug (the payload bytes will be overwritten).
func PutPacket(p *packet.Packet) {
	if p == nil {
		return
	}
	pl := p.Payload[:0]
	*p = packet.Packet{}
	p.Payload = pl
	pktPool.Put(p)
}

// ClonePacket deep-copies p into a pooled packet: the batched
// delivery paths' replacement for packet.Clone, recycling both the
// packet struct and the payload backing array.
func ClonePacket(p *packet.Packet) *packet.Packet {
	q := GetPacket()
	p.CloneInto(q)
	return q
}

// ReleaseEnvelopes returns every envelope's packet to the pool and
// clears the slots, for callers that consumed a whole RecvBatch
// without retaining anything.
func ReleaseEnvelopes(env []Envelope) {
	for i := range env {
		PutPacket(env[i].Pkt)
		env[i] = Envelope{}
	}
}
