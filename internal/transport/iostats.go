// Transport-level datapath telemetry. These are process-wide counters
// for incidents that would otherwise vanish: datagrams dropped for
// exceeding the batch buffer size, and per-destination send failures
// beyond the first (SendBatch returns only the first error, so without
// the counter a single dead destination masks every later failure in
// the batch). The control plane renders them on /metrics as
// hrmc_transport_* counters.
package transport

import "sync/atomic"

// IOCounters aggregates transport datapath incidents across every live
// transport in the process. Fields are atomics; read them through
// IOStats.
type IOCounters struct {
	// TruncatedDatagrams counts received datagrams dropped because they
	// exceeded the batch receive buffer (udpmcast's mmsgBufSize) — the
	// signature of a peer misconfigured to send oversized datagrams.
	TruncatedDatagrams atomic.Int64
	// SendErrors counts per-destination send failures, including those
	// masked by SendBatch's first-error-only return.
	SendErrors atomic.Int64
}

// IO is the process-wide transport incident counter set.
var IO IOCounters

// IOSnapshot is a point-in-time copy of the IO counters.
type IOSnapshot struct {
	TruncatedDatagrams int64
	SendErrors         int64
}

// IOStats returns a snapshot of the process-wide transport incident
// counters.
func IOStats() IOSnapshot {
	return IOSnapshot{
		TruncatedDatagrams: IO.TruncatedDatagrams.Load(),
		SendErrors:         IO.SendErrors.Load(),
	}
}
