// Transport-level datapath telemetry. These are process-wide counters
// for the wire-facing half of the datapath: datagrams sent (counted in
// wire datagrams even when UDP GSO hands the kernel one supersegment),
// syscalls spent sending them, segmentation-offload activity, and
// incidents that would otherwise vanish — datagrams dropped for
// exceeding the batch buffer size, and per-destination send failures
// beyond the first (SendBatch returns only the first error, so without
// the counter a single dead destination masks every later failure in
// the batch). The control plane renders them on /metrics as
// hrmc_transport_* and hrmc_gso_*/hrmc_gro_* counters.
package transport

import "sync/atomic"

// IOCounters aggregates transport datapath activity across every live
// transport in the process. Fields are atomics; read them through
// IOStats.
type IOCounters struct {
	// SentDatagrams counts wire datagrams successfully handed to the
	// kernel. A UDP_SEGMENT supersegment counts once per kernel-split
	// sub-segment, not once per syscall payload, so the counter stays
	// comparable whether segmentation offload is on or off.
	SentDatagrams atomic.Int64
	// SendSyscalls counts the send-side kernel crossings
	// (sendmmsg/sendmsg/sendto) that carried those datagrams.
	// SentDatagrams/SendSyscalls is the datagrams-per-syscall gauge.
	SendSyscalls atomic.Int64
	// GsoSegments counts wire datagrams that left inside a UDP_SEGMENT
	// supersegment (i.e. the kernel did the splitting). GsoSegments ==
	// 0 with traffic flowing means offload is off or unsupported.
	GsoSegments atomic.Int64
	// GroSupersegments counts received kernel-coalesced supersegments
	// (UDP_GRO), each of which the transport split back into
	// GroSegments individual packets.
	GroSupersegments atomic.Int64
	// GroSegments counts the individual datagrams recovered from GRO
	// supersegments.
	GroSegments atomic.Int64
	// TruncatedDatagrams counts received datagrams dropped because they
	// exceeded the batch receive buffer (udpmcast's mmsgBufSize) — the
	// signature of a peer misconfigured to send oversized datagrams.
	TruncatedDatagrams atomic.Int64
	// SendErrors counts per-destination send failures, including those
	// masked by SendBatch's first-error-only return.
	SendErrors atomic.Int64
}

// IO is the process-wide transport datapath counter set.
var IO IOCounters

// IOSnapshot is a point-in-time copy of the IO counters.
type IOSnapshot struct {
	SentDatagrams      int64
	SendSyscalls       int64
	GsoSegments        int64
	GroSupersegments   int64
	GroSegments        int64
	TruncatedDatagrams int64
	SendErrors         int64
}

// IOStats returns a snapshot of the process-wide transport datapath
// counters.
func IOStats() IOSnapshot {
	return IOSnapshot{
		SentDatagrams:      IO.SentDatagrams.Load(),
		SendSyscalls:       IO.SendSyscalls.Load(),
		GsoSegments:        IO.GsoSegments.Load(),
		GroSupersegments:   IO.GroSupersegments.Load(),
		GroSegments:        IO.GroSegments.Load(),
		TruncatedDatagrams: IO.TruncatedDatagrams.Load(),
		SendErrors:         IO.SendErrors.Load(),
	}
}
