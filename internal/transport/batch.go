// Transport v2: the batch-first interface. Every layer of the live
// stack — the udpmcast syscall boundary, the in-memory hub, and the
// session demultiplexer — moves envelopes in batches, amortizing one
// syscall / lock acquisition / dispatch over many packets. The
// per-packet Transport interface survives as a batch-size-1
// compatibility adapter (see AsTransport and the hub/udpmcast Send and
// Recv methods), so single-flow users keep their simple API while the
// hot paths underneath run batched.
package transport

import (
	"sync"

	"repro/internal/packet"
)

// Envelope is one packet in flight with its addressing. On the send
// side To and Multicast select the destination (To is ignored for
// multicast), and Group selects which multicast group of a
// GroupTransport the packet goes to (ignored by single-group
// transports); on the receive side From carries the source node ID,
// Group the multicast group the packet arrived on (0 for unicast), and
// the destination fields are zero.
type Envelope struct {
	Pkt       *packet.Packet
	From      packet.NodeID
	To        packet.NodeID
	Group     GroupID
	Multicast bool
}

// BatchTransport moves batches of encoded H-RMC packets between one
// sender and many receivers. Implementations must be safe for
// concurrent use. Packet buffers obey the pool ownership rules
// documented on GetPacket: RecvBatch transfers ownership of each
// delivered packet to the caller (who may release it with PutPacket);
// SendBatch borrows the packets only for the duration of the call.
type BatchTransport interface {
	// SendBatch transmits every envelope, each to the whole group
	// (multicast) or to one node. It returns the first per-envelope
	// error after attempting the rest, or ErrClosed.
	SendBatch(env []Envelope) error
	// RecvBatch blocks until at least one packet arrives, fills buf
	// with as many as are immediately available (at most len(buf)),
	// and returns the count. It returns ErrClosed after Close.
	RecvBatch(buf []Envelope) (int, error)
	// Local returns this endpoint's node ID.
	Local() packet.NodeID
	// Close shuts the endpoint down and unblocks RecvBatch.
	Close() error
}

// InboundFilterFunc inspects a packet header before the transport
// commits resources to delivering it. Returning false discards the
// packet at the source — before cloning or queueing — so the filter
// must be cheap and must not retain the header.
type InboundFilterFunc func(h *packet.Header) bool

// FilteredTransport is implemented by transports that support early
// demultiplexing: the consumer pushes a destination filter down to the
// delivery path, and packets no local flow could accept are discarded
// before they are cloned or queued — the in-memory analogue of NIC
// multicast filtering / the kernel's early demux. internal/session
// installs its port-binding table here, which is what removes the
// O(endpoints²) clone fan-out on a shared hub. Filtering is advisory:
// consumers must still drop unroutable packets themselves.
type FilteredTransport interface {
	// SetInboundFilter installs f as the early-demux predicate; nil
	// restores deliver-everything. Safe for concurrent use with
	// traffic; packets already in flight may bypass a newly installed
	// filter.
	SetInboundFilter(f InboundFilterFunc)
}

// Batched resolves the batch interface for any transport: a native
// BatchTransport is used directly; anything else is wrapped in a
// batch-size-1 adapter. This is how internal/session runs every
// transport through one batched receive loop.
func Batched(tr Transport) BatchTransport {
	if bt, ok := tr.(BatchTransport); ok {
		return bt
	}
	return &batchAdapter{tr: tr}
}

// batchAdapter lifts a per-packet Transport to BatchTransport with
// batch size 1 — the compatibility path for third-party Transport
// implementations that have no native batch support.
type batchAdapter struct{ tr Transport }

func (a *batchAdapter) SendBatch(env []Envelope) error {
	var firstErr error
	for i := range env {
		if err := a.tr.Send(env[i].Pkt, env[i].Multicast, env[i].To); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (a *batchAdapter) RecvBatch(buf []Envelope) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	p, from, err := a.tr.Recv()
	if err != nil {
		return 0, err
	}
	buf[0] = Envelope{Pkt: p, From: from}
	return 1, nil
}

func (a *batchAdapter) Local() packet.NodeID { return a.tr.Local() }
func (a *batchAdapter) Close() error         { return a.tr.Close() }

// AsTransport adapts a BatchTransport to the per-packet Transport
// interface (batch size 1). Transport is the documented compatibility
// surface of the pre-batch API: existing per-packet callers (core,
// hrmcsock, the examples) keep compiling against it, while new drivers
// should implement and consume BatchTransport directly. Recv buffers
// nothing — each call asks the underlying transport for exactly one
// envelope — so adapter users keep strict one-in one-out semantics.
func AsTransport(bt BatchTransport) Transport {
	if tr, ok := bt.(Transport); ok {
		return tr
	}
	return &packetAdapter{bt: bt}
}

// packetAdapter narrows a BatchTransport to the per-packet surface.
type packetAdapter struct {
	bt BatchTransport

	mu  sync.Mutex
	one [1]Envelope
}

func (a *packetAdapter) Send(p *packet.Packet, multicast bool, node packet.NodeID) error {
	return a.bt.SendBatch([]Envelope{{Pkt: p, Multicast: multicast, To: node}})
}

func (a *packetAdapter) Recv() (*packet.Packet, packet.NodeID, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		n, err := a.bt.RecvBatch(a.one[:])
		if err != nil {
			return nil, 0, err
		}
		if n == 1 {
			e := a.one[0]
			a.one[0] = Envelope{}
			return e.Pkt, e.From, nil
		}
	}
}

func (a *packetAdapter) Local() packet.NodeID { return a.bt.Local() }
func (a *packetAdapter) Close() error         { return a.bt.Close() }
