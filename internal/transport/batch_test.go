package transport

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/packet"
)

func payloadPkt(seq uint32, payload []byte) *packet.Packet {
	return &packet.Packet{
		Header:  packet.Header{Type: packet.TypeData, Seq: seq, Length: uint32(len(payload))},
		Payload: payload,
	}
}

// drainEnvelopes collects exactly want envelopes from bt in the
// background, failing the test on timeout.
func drainEnvelopes(t *testing.T, bt BatchTransport, want int) []Envelope {
	t.Helper()
	out := make(chan []Envelope, 1)
	go func() {
		var got []Envelope
		buf := make([]Envelope, 8)
		for len(got) < want {
			n, err := bt.RecvBatch(buf)
			if err != nil {
				out <- got
				return
			}
			got = append(got, buf[:n]...)
			for i := range buf[:n] {
				buf[i] = Envelope{}
			}
		}
		out <- got
	}()
	select {
	case got := <-out:
		if len(got) != want {
			t.Fatalf("received %d envelopes, want %d", len(got), want)
		}
		return got
	case <-time.After(10 * time.Second):
		t.Fatalf("timeout draining %d envelopes", want)
		return nil
	}
}

// TestHubBatchLossDelayBitExact sends one batch through a lossy,
// delayed hub and checks that exactly the envelopes surviving the
// per-envelope loss draws arrive — in order, after the delay, and with
// payloads bit-exact even though the caller rewrites its buffers the
// moment SendBatch returns.
func TestHubBatchLossDelayBitExact(t *testing.T) {
	const (
		n     = 100
		loss  = 0.3
		seed  = 77
		delay = 30 * time.Millisecond
	)
	hub := NewHub(WithLoss(loss, seed), WithDelay(delay))
	a, b := hub.Endpoint(), hub.Endpoint()
	abt, bbt := Batched(a), Batched(b)

	// Unicast draws happen in envelope order under the hub lock, so the
	// surviving set replays deterministically from the same seed.
	rng := rand.New(rand.NewSource(seed))
	var wantSeqs []uint32
	env := make([]Envelope, n)
	payloads := make([][]byte, n)
	for i := range env {
		payloads[i] = bytes.Repeat([]byte{byte(i)}, 64)
		env[i] = Envelope{Pkt: payloadPkt(uint32(i), payloads[i]), To: b.Local()}
		if rng.Float64() >= loss {
			wantSeqs = append(wantSeqs, uint32(i))
		}
	}
	start := time.Now()
	if err := abt.SendBatch(env); err != nil {
		t.Fatal(err)
	}
	// SendBatch only borrows the packets: scribbling over them now must
	// not reach the receivers.
	for i := range env {
		env[i].Pkt.Seq = 9999
		for j := range payloads[i] {
			payloads[i][j] = 0xFF
		}
	}

	got := drainEnvelopes(t, bbt, len(wantSeqs))
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("first delivery after %v, want >= %v", elapsed, delay)
	}
	for i, e := range got {
		if e.From != a.Local() {
			t.Fatalf("envelope %d from %v, want %v", i, e.From, a.Local())
		}
		if e.Pkt.Seq != wantSeqs[i] {
			t.Fatalf("envelope %d seq = %d, want %d", i, e.Pkt.Seq, wantSeqs[i])
		}
		want := bytes.Repeat([]byte{byte(wantSeqs[i])}, 64)
		if !bytes.Equal(e.Pkt.Payload, want) {
			t.Fatalf("envelope %d payload corrupted (seq %d)", i, e.Pkt.Seq)
		}
		PutPacket(e.Pkt)
	}
}

// TestHubConcurrentBatchEndpointsAndLoss races Endpoint() allocation
// against concurrent lossy batched sends: node IDs must stay unique and
// the shared loss rng must stay race-clean (the race detector is the
// assertion there).
func TestHubConcurrentBatchEndpointsAndLoss(t *testing.T) {
	const (
		senders = 4
		batches = 25
		batchN  = 8
	)
	hub := NewHub(WithLoss(0.5, 42))
	sink := Batched(hub.Endpoint())
	sinkDone := make(chan struct{})
	go func() {
		defer close(sinkDone)
		buf := make([]Envelope, 16)
		for {
			n, err := sink.RecvBatch(buf)
			if err != nil {
				return
			}
			for i := 0; i < n; i++ {
				PutPacket(buf[i].Pkt)
				buf[i] = Envelope{}
			}
		}
	}()

	var mu sync.Mutex
	seen := make(map[packet.NodeID]bool)
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ep := Batched(hub.Endpoint())
			defer ep.Close()
			mu.Lock()
			if seen[ep.Local()] {
				mu.Unlock()
				t.Errorf("duplicate node ID %v", ep.Local())
				return
			}
			seen[ep.Local()] = true
			mu.Unlock()
			env := make([]Envelope, batchN)
			for b := 0; b < batches; b++ {
				for i := range env {
					env[i] = Envelope{Pkt: payloadPkt(uint32(b*batchN+i), nil), Multicast: true}
				}
				if err := ep.SendBatch(env); err != nil {
					t.Errorf("sender %d: %v", s, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	sink.Close()
	<-sinkDone
}

// legacyTransport hides a hub endpoint's batch methods so Batched must
// wrap it in the batch-size-1 adapter.
type legacyTransport struct{ tr Transport }

func (l *legacyTransport) Send(p *packet.Packet, multicast bool, node packet.NodeID) error {
	return l.tr.Send(p, multicast, node)
}
func (l *legacyTransport) Recv() (*packet.Packet, packet.NodeID, error) { return l.tr.Recv() }
func (l *legacyTransport) Local() packet.NodeID                         { return l.tr.Local() }
func (l *legacyTransport) Close() error                                 { return l.tr.Close() }

// TestAdapterEquivalence runs the same traffic through the two adapter
// directions — a per-packet transport lifted by Batched, and a native
// batch transport narrowed by AsTransport — and expects identical
// delivery in both.
func TestAdapterEquivalence(t *testing.T) {
	hub := NewHub()
	a, b := hub.Endpoint(), hub.Endpoint()

	// Lifted direction: batch calls over a per-packet-only transport.
	lifted := Batched(&legacyTransport{tr: a})
	if _, native := lifted.(*hubEndpoint); native {
		t.Fatal("legacyTransport should not resolve to the native batch endpoint")
	}
	env := make([]Envelope, 5)
	for i := range env {
		env[i] = Envelope{Pkt: payloadPkt(uint32(i), []byte{byte(i)}), To: b.Local()}
	}
	if err := lifted.SendBatch(env); err != nil {
		t.Fatal(err)
	}

	// Narrowed direction: per-packet calls over the native batch endpoint.
	narrowed := AsTransport(Batched(b))
	for i := 0; i < 5; i++ {
		p, from, err := narrowed.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if from != a.Local() || p.Seq != uint32(i) || !bytes.Equal(p.Payload, []byte{byte(i)}) {
			t.Fatalf("recv %d: seq=%d from=%v payload=%v", i, p.Seq, from, p.Payload)
		}
	}

	// Batched must pass a native implementation straight through, and
	// AsTransport must unwrap one that still is a Transport.
	if _, ok := Batched(a).(*hubEndpoint); !ok {
		t.Error("Batched(hub endpoint) should be the endpoint itself")
	}
	if _, ok := AsTransport(Batched(a)).(*hubEndpoint); !ok {
		t.Error("AsTransport(hub endpoint) should be the endpoint itself")
	}
}

// TestPacketPoolRoundTrip checks the pool contract: a released packet
// comes back zeroed but keeps its payload capacity, and ClonePacket is
// a deep copy.
func TestPacketPoolRoundTrip(t *testing.T) {
	p := GetPacket()
	if p.Type != 0 || len(p.Payload) != 0 {
		t.Fatalf("fresh pooled packet not zeroed: %+v", p)
	}
	p.Header = packet.Header{Type: packet.TypeData, Seq: 7, Length: 3}
	p.Payload = append(p.Payload, 1, 2, 3)

	c := ClonePacket(p)
	if c == p || &c.Payload[0] == &p.Payload[0] {
		t.Fatal("ClonePacket must deep-copy")
	}
	if c.Seq != 7 || !bytes.Equal(c.Payload, []byte{1, 2, 3}) {
		t.Fatalf("clone mismatch: %+v", c)
	}
	p.Payload[0] = 99
	if c.Payload[0] != 1 {
		t.Fatal("clone shares payload storage with original")
	}

	PutPacket(c)
	r := GetPacket()
	// sync.Pool gives no identity guarantee, but whatever comes back
	// must be zeroed with payload length 0.
	if r.Type != 0 || r.Seq != 0 || len(r.Payload) != 0 {
		t.Fatalf("reused packet not zeroed: %+v", r)
	}
	PutPacket(r)
	PutPacket(p)
	ReleaseEnvelopes([]Envelope{{Pkt: GetPacket()}, {}})
}

// TestBatchAdapterPropagatesErrors checks the lifted adapter's error
// contract: first error wins, the rest of the batch is still attempted.
func TestBatchAdapterPropagatesErrors(t *testing.T) {
	calls := 0
	ft := &funcTransport{
		send: func(p *packet.Packet, mc bool, node packet.NodeID) error {
			calls++
			if p.Seq == 1 {
				return fmt.Errorf("boom %d", p.Seq)
			}
			return nil
		},
	}
	bt := Batched(ft)
	err := bt.SendBatch([]Envelope{
		{Pkt: payloadPkt(0, nil)}, {Pkt: payloadPkt(1, nil)}, {Pkt: payloadPkt(2, nil)},
	})
	if err == nil || err.Error() != "boom 1" {
		t.Fatalf("err = %v, want boom 1", err)
	}
	if calls != 3 {
		t.Fatalf("attempted %d sends, want 3", calls)
	}
}

type funcTransport struct {
	send func(*packet.Packet, bool, packet.NodeID) error
}

func (f *funcTransport) Send(p *packet.Packet, mc bool, node packet.NodeID) error {
	return f.send(p, mc, node)
}
func (f *funcTransport) Recv() (*packet.Packet, packet.NodeID, error) { return nil, 0, ErrClosed }
func (f *funcTransport) Local() packet.NodeID                         { return 0 }
func (f *funcTransport) Close() error                                 { return nil }
