// Package transport defines the packet transport the live (real-time)
// protocol drivers run over, plus an in-memory multicast hub for tests
// and examples that need no network at all. The same sans-I/O protocol
// machines also run under internal/netsim; this interface is only for
// wall-clock operation.
package transport

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/packet"
)

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// Transport moves encoded H-RMC packets between one sender and many
// receivers. Implementations must be safe for concurrent use.
type Transport interface {
	// Send transmits p to the whole group (multicast) or to one node.
	Send(p *packet.Packet, multicast bool, node packet.NodeID) error
	// Recv blocks until a packet arrives and returns it with the
	// source's node ID. It returns ErrClosed after Close.
	Recv() (*packet.Packet, packet.NodeID, error)
	// Local returns this endpoint's node ID.
	Local() packet.NodeID
	// Close shuts the endpoint down and unblocks Recv.
	Close() error
}

// Hub is an in-memory multicast domain: one process, many endpoints.
// Configurable loss and delay make it a convenient harness for
// demonstrating recovery without a real network.
type Hub struct {
	mu     sync.Mutex
	eps    map[packet.NodeID]*hubEndpoint
	next   packet.NodeID
	loss   float64
	delay  time.Duration
	rng    *rand.Rand
	closed bool
}

// HubOption configures a Hub.
type HubOption func(*Hub)

// WithLoss makes the hub drop each delivery independently with
// probability p, seeded deterministically.
func WithLoss(p float64, seed int64) HubOption {
	return func(h *Hub) {
		h.loss = p
		h.rng = rand.New(rand.NewSource(seed))
	}
}

// WithDelay adds a fixed one-way delivery delay.
func WithDelay(d time.Duration) HubOption {
	return func(h *Hub) { h.delay = d }
}

// NewHub creates an in-memory multicast domain.
func NewHub(opts ...HubOption) *Hub {
	h := &Hub{eps: make(map[packet.NodeID]*hubEndpoint)}
	for _, o := range opts {
		o(h)
	}
	return h
}

// Endpoint creates a new endpoint attached to the hub.
func (h *Hub) Endpoint() Transport {
	h.mu.Lock()
	defer h.mu.Unlock()
	id := h.next
	h.next++
	ep := &hubEndpoint{
		hub: h,
		id:  id,
		ch:  make(chan hubItem, 4096),
	}
	h.eps[id] = ep
	return ep
}

type hubItem struct {
	pkt  *packet.Packet
	from packet.NodeID
}

type hubEndpoint struct {
	hub    *Hub
	id     packet.NodeID
	ch     chan hubItem
	closed sync.Once
	done   chan struct{}
	init   sync.Once
}

func (e *hubEndpoint) doneCh() chan struct{} {
	e.init.Do(func() { e.done = make(chan struct{}) })
	return e.done
}

func (e *hubEndpoint) Local() packet.NodeID { return e.id }

func (e *hubEndpoint) Send(p *packet.Packet, multicast bool, node packet.NodeID) error {
	h := e.hub
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrClosed
	}
	var targets []*hubEndpoint
	if multicast {
		for id, t := range h.eps {
			if id != e.id {
				targets = append(targets, t)
			}
		}
	} else if t, ok := h.eps[node]; ok {
		targets = append(targets, t)
	}
	// Loss draws happen under the lock for determinism.
	kept := targets[:0]
	for _, t := range targets {
		if h.rng != nil && h.rng.Float64() < h.loss {
			continue
		}
		kept = append(kept, t)
	}
	delay := h.delay
	h.mu.Unlock()

	deliver := func() {
		for _, t := range kept {
			item := hubItem{pkt: p.Clone(), from: e.id}
			select {
			case t.ch <- item:
			case <-t.doneCh():
			default: // receiver queue overflow behaves like loss
			}
		}
	}
	if delay > 0 {
		time.AfterFunc(delay, deliver)
	} else {
		deliver()
	}
	return nil
}

func (e *hubEndpoint) Recv() (*packet.Packet, packet.NodeID, error) {
	select {
	case item := <-e.ch:
		return item.pkt, item.from, nil
	case <-e.doneCh():
		// Drain anything that raced with close.
		select {
		case item := <-e.ch:
			return item.pkt, item.from, nil
		default:
			return nil, 0, ErrClosed
		}
	}
}

func (e *hubEndpoint) Close() error {
	e.closed.Do(func() {
		close(e.doneCh())
		h := e.hub
		h.mu.Lock()
		delete(h.eps, e.id)
		h.mu.Unlock()
	})
	return nil
}
