// Package transport defines the packet transports the live (real-time)
// protocol drivers run over, plus an in-memory multicast hub for tests
// and examples that need no network at all. The same sans-I/O protocol
// machines also run under internal/netsim; this interface is only for
// wall-clock operation.
//
// Since Transport v2 the native interface is batch-first (see
// BatchTransport in batch.go): implementations move []Envelope batches
// so one syscall or lock acquisition is amortized over many packets,
// and hot receive paths draw packet buffers from the shared pool
// (GetPacket/PutPacket). The per-packet Transport interface below is
// retained as the compatibility surface for existing callers.
package transport

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/packet"
)

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// Transport moves encoded H-RMC packets between one sender and many
// receivers, one packet per call. Implementations must be safe for
// concurrent use.
//
// Deprecated-in-spirit, kept-in-practice: Transport is the documented
// compatibility surface of the pre-batch API. Every transport in this
// repository implements the batch-first BatchTransport natively and
// exposes these methods as thin batch-size-1 adapters; internal/core,
// internal/hrmcsock, and the examples keep compiling unchanged against
// it. New transport implementations should implement BatchTransport
// (Batched lifts any remaining per-packet implementation), and new
// drivers should consume BatchTransport directly as internal/session
// does.
type Transport interface {
	// Send transmits p to the whole group (multicast) or to one node.
	Send(p *packet.Packet, multicast bool, node packet.NodeID) error
	// Recv blocks until a packet arrives and returns it with the
	// source's node ID. It returns ErrClosed after Close.
	Recv() (*packet.Packet, packet.NodeID, error)
	// Local returns this endpoint's node ID.
	Local() packet.NodeID
	// Close shuts the endpoint down and unblocks Recv.
	Close() error
}

// hubInboxDepth bounds each endpoint's pending-delivery queue, playing
// the role of a kernel socket buffer: deliveries beyond it behave like
// network loss.
const hubInboxDepth = 4096

// Hub is an in-memory multicast domain: one process, many endpoints.
// Configurable loss and delay make it a convenient harness for
// demonstrating recovery without a real network. Endpoints are
// batch-first: a whole SendBatch takes the hub lock once for
// membership and loss draws, then each target endpoint's inbox lock
// once for the entire batch.
type Hub struct {
	mu     sync.Mutex
	eps    map[packet.NodeID]*hubEndpoint
	next   packet.NodeID
	groups map[string]GroupID // group name → dense ID, shared by all endpoints
	nextG  GroupID
	loss   float64
	delay  time.Duration
	rng    *rand.Rand
	closed bool
}

// HubOption configures a Hub.
type HubOption func(*Hub)

// WithLoss makes the hub drop each delivery independently with
// probability p, seeded deterministically. Loss draws happen under the
// hub lock (per envelope, per target), so concurrent batched senders
// share the rng safely.
func WithLoss(p float64, seed int64) HubOption {
	return func(h *Hub) {
		h.loss = p
		h.rng = rand.New(rand.NewSource(seed))
	}
}

// WithDelay adds a fixed one-way delivery delay. Delayed deliveries
// are cloned at send time, so the caller regains ownership of its
// packets as soon as SendBatch returns.
func WithDelay(d time.Duration) HubOption {
	return func(h *Hub) { h.delay = d }
}

// NewHub creates an in-memory multicast domain.
func NewHub(opts ...HubOption) *Hub {
	h := &Hub{
		eps:    make(map[packet.NodeID]*hubEndpoint),
		groups: make(map[string]GroupID),
		nextG:  1,
	}
	for _, o := range opts {
		o(h)
	}
	return h
}

// Endpoint creates a new endpoint attached to the hub. The returned
// Transport also implements BatchTransport (the hub's native
// interface); internal/session discovers that via Batched.
func (h *Hub) Endpoint() Transport {
	h.mu.Lock()
	defer h.mu.Unlock()
	id := h.next
	h.next++
	ep := &hubEndpoint{
		hub:    h,
		id:     id,
		stage:  -1,
		notify: make(chan struct{}, 1),
	}
	h.eps[id] = ep
	return ep
}

type hubItem struct {
	pkt   *packet.Packet
	from  packet.NodeID
	group GroupID
}

// delivery is one target endpoint's share of a SendBatch.
type delivery struct {
	t     *hubEndpoint
	items []hubItem
}

type hubEndpoint struct {
	hub *Hub
	id  packet.NodeID

	// stage indexes this endpoint's delivery list while a SendBatch
	// holds the hub lock; -1 between batches. Guarded by hub.mu.
	stage int

	// joined is the endpoint's group membership set (nil until the
	// first Join). Group-addressed multicast (Envelope.Group != 0) is
	// delivered only to joined members. Guarded by hub.mu.
	joined map[GroupID]bool

	// filter is the consumer's early-demux predicate; senders consult
	// it before cloning a delivery for this endpoint.
	filter atomic.Pointer[InboundFilterFunc]

	mu    sync.Mutex
	queue []hubItem // pending deliveries, queue[head:] live
	head  int

	notify chan struct{} // capacity 1: "queue may be non-empty"
	closed sync.Once
	done   chan struct{}
	init   sync.Once
}

var (
	_ Transport         = (*hubEndpoint)(nil)
	_ BatchTransport    = (*hubEndpoint)(nil)
	_ FilteredTransport = (*hubEndpoint)(nil)
	_ GroupTransport    = (*hubEndpoint)(nil)
)

// groupID resolves (or assigns) the hub-wide ID for a group name.
// Caller holds h.mu.
func (h *Hub) groupID(group string) GroupID {
	id, ok := h.groups[group]
	if !ok {
		id = h.nextG
		h.nextG++
		h.groups[group] = id
	}
	return id
}

// Join implements GroupTransport: the endpoint becomes a member of the
// named group and receives its group-addressed multicast from now on.
func (e *hubEndpoint) Join(group string) (GroupID, error) {
	h := e.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, ErrClosed
	}
	id := h.groupID(group)
	if e.joined == nil {
		e.joined = make(map[GroupID]bool)
	}
	e.joined[id] = true
	return id, nil
}

// Register implements GroupTransport: it resolves the group's ID for
// sending without membership.
func (e *hubEndpoint) Register(group string) (GroupID, error) {
	h := e.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, ErrClosed
	}
	return h.groupID(group), nil
}

// Leave implements GroupTransport.
func (e *hubEndpoint) Leave(gid GroupID) error {
	h := e.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(e.joined, gid)
	return nil
}

// GroupStats implements GroupReporter with the membership count; the
// hub does not meter per-endpoint datapath traffic.
func (e *hubEndpoint) GroupStats() GroupStats {
	h := e.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	return GroupStats{Joined: len(e.joined)}
}

// SetInboundFilter implements FilteredTransport.
func (e *hubEndpoint) SetInboundFilter(f InboundFilterFunc) {
	if f == nil {
		e.filter.Store(nil)
		return
	}
	e.filter.Store(&f)
}

// stageBuf is a pooled SendBatch staging area: the per-target delivery
// lists survive between batches so the hot path reuses their capacity
// instead of reallocating one slice per target per send.
type stageBuf struct {
	dels []delivery
}

var stagePool = sync.Pool{New: func() any { return new(stageBuf) }}

// add opens a delivery slot for t, reusing a truncated slot's item
// capacity when one is available.
func (sb *stageBuf) add(t *hubEndpoint) int {
	if len(sb.dels) < cap(sb.dels) {
		sb.dels = sb.dels[:len(sb.dels)+1]
		sb.dels[len(sb.dels)-1].t = t
	} else {
		sb.dels = append(sb.dels, delivery{t: t})
	}
	return len(sb.dels) - 1
}

// release clears packet references and returns the buffer to the pool.
func (sb *stageBuf) release() {
	for i := range sb.dels {
		for j := range sb.dels[i].items {
			sb.dels[i].items[j] = hubItem{}
		}
		sb.dels[i].items = sb.dels[i].items[:0]
		sb.dels[i].t = nil
	}
	sb.dels = sb.dels[:0]
	stagePool.Put(sb)
}

func (e *hubEndpoint) doneCh() chan struct{} {
	e.init.Do(func() { e.done = make(chan struct{}) })
	return e.done
}

func (e *hubEndpoint) Local() packet.NodeID { return e.id }

// SendBatch implements BatchTransport: one hub-lock acquisition covers
// membership lookup and loss draws for the whole batch, then each
// target's inbox is filled under a single lock acquisition. Unknown
// unicast nodes are silently dropped, like the network.
func (e *hubEndpoint) SendBatch(env []Envelope) error {
	h := e.hub
	sb := stagePool.Get().(*stageBuf)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		sb.release()
		return ErrClosed
	}
	keep := func(t *hubEndpoint, p *packet.Packet, g GroupID) {
		// Early demux: a target that could never route this packet to
		// a flow discards it before the loss draw and before cloning.
		if fp := t.filter.Load(); fp != nil && !(*fp)(&p.Header) {
			return
		}
		if h.rng != nil && h.rng.Float64() < h.loss {
			return
		}
		if t.stage < 0 {
			t.stage = sb.add(t)
		}
		sb.dels[t.stage].items = append(sb.dels[t.stage].items, hubItem{pkt: p, from: e.id, group: g})
	}
	for i := range env {
		switch {
		case env[i].Multicast && env[i].Group != 0:
			// Group-addressed multicast reaches the group's members only
			// — including the sending endpoint, matching real multicast
			// loopback, where a shared socket hosting both ends of a
			// group hears its own sends.
			for _, t := range h.eps {
				if t.joined[env[i].Group] {
					keep(t, env[i].Pkt, env[i].Group)
				}
			}
		case env[i].Multicast:
			for id, t := range h.eps {
				if id != e.id {
					keep(t, env[i].Pkt, 0)
				}
			}
		default:
			if t, ok := h.eps[env[i].To]; ok {
				keep(t, env[i].Pkt, 0)
			}
		}
	}
	for i := range sb.dels {
		sb.dels[i].t.stage = -1
	}
	delay := h.delay
	h.mu.Unlock()

	// Clone surviving deliveries into pooled packets before returning,
	// so the caller regains ownership of its batch even under delay.
	for _, d := range sb.dels {
		for i := range d.items {
			d.items[i].pkt = ClonePacket(d.items[i].pkt)
		}
	}
	deliver := func() {
		for _, d := range sb.dels {
			d.t.enqueue(d.items)
		}
		sb.release()
	}
	if delay > 0 {
		time.AfterFunc(delay, deliver)
	} else {
		deliver()
	}
	return nil
}

// enqueue appends a whole delivery batch to the inbox under one lock
// acquisition. Overflow beyond hubInboxDepth behaves like loss, and the
// dropped clones go straight back to the packet pool.
func (e *hubEndpoint) enqueue(items []hubItem) {
	select {
	case <-e.doneCh():
		for _, it := range items {
			PutPacket(it.pkt)
		}
		return
	default:
	}
	e.mu.Lock()
	if e.head > 0 {
		n := copy(e.queue, e.queue[e.head:])
		for i := n; i < len(e.queue); i++ {
			e.queue[i] = hubItem{}
		}
		e.queue = e.queue[:n]
		e.head = 0
	}
	space := hubInboxDepth - len(e.queue)
	for i, it := range items {
		if i >= space {
			PutPacket(it.pkt)
			continue
		}
		e.queue = append(e.queue, it)
	}
	e.mu.Unlock()
	select {
	case e.notify <- struct{}{}:
	default:
	}
}

// pop moves up to len(buf) pending deliveries into buf. It re-arms the
// notify token when items remain, so a second blocked reader wakes.
func (e *hubEndpoint) pop(buf []Envelope) int {
	e.mu.Lock()
	n := len(e.queue) - e.head
	if n > len(buf) {
		n = len(buf)
	}
	for i := 0; i < n; i++ {
		it := e.queue[e.head+i]
		e.queue[e.head+i] = hubItem{}
		buf[i] = Envelope{Pkt: it.pkt, From: it.from, Group: it.group}
	}
	e.head += n
	remaining := len(e.queue) - e.head
	if remaining == 0 {
		e.queue = e.queue[:0]
		e.head = 0
	}
	e.mu.Unlock()
	if remaining > 0 {
		select {
		case e.notify <- struct{}{}:
		default:
		}
	}
	return n
}

// pending reports the number of queued deliveries (tests only).
func (e *hubEndpoint) pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue) - e.head
}

// RecvBatch implements BatchTransport.
func (e *hubEndpoint) RecvBatch(buf []Envelope) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	for {
		if n := e.pop(buf); n > 0 {
			return n, nil
		}
		select {
		case <-e.notify:
		case <-e.doneCh():
			// Drain anything that raced with close.
			if n := e.pop(buf); n > 0 {
				return n, nil
			}
			return 0, ErrClosed
		}
	}
}

// Send implements Transport as a batch-size-1 adapter over SendBatch.
func (e *hubEndpoint) Send(p *packet.Packet, multicast bool, node packet.NodeID) error {
	env := [1]Envelope{{Pkt: p, Multicast: multicast, To: node}}
	return e.SendBatch(env[:])
}

// Recv implements Transport as a batch-size-1 adapter over RecvBatch.
func (e *hubEndpoint) Recv() (*packet.Packet, packet.NodeID, error) {
	var buf [1]Envelope
	for {
		n, err := e.RecvBatch(buf[:])
		if err != nil {
			return nil, 0, err
		}
		if n == 1 {
			return buf[0].Pkt, buf[0].From, nil
		}
	}
}

func (e *hubEndpoint) Close() error {
	e.closed.Do(func() {
		close(e.doneCh())
		h := e.hub
		h.mu.Lock()
		delete(h.eps, e.id)
		h.mu.Unlock()
	})
	return nil
}
