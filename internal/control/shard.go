// ShardedDialer: flow admission over a small fixed set of shared
// group transports. Where the classic dialer opens one socket (pair)
// per admitted flow, a sharded daemon opens its shards up front — each
// a transport.GroupTransport hosting many multicast groups on one
// socket pair — and every admission just joins (receivers) or
// registers (senders) its group on the shard the group name hashes to.
// The daemon's fd and poller counts are O(shards) no matter how many
// groups it serves.
package control

import (
	"errors"
	"hash/fnv"

	"repro/internal/transport"
)

// ShardedDialer admits flows onto a fixed set of shared group
// transports, choosing the shard by FNV-1a hash of the group name so a
// group's sender and receivers in one daemon always share a shard.
type ShardedDialer struct {
	shards []transport.GroupTransport
}

// NewShardedDialer wraps the given shard transports. The dialer does
// not own them: close them (or let session shutdown do it) after the
// manager is done.
func NewShardedDialer(shards []transport.GroupTransport) (*ShardedDialer, error) {
	if len(shards) == 0 {
		return nil, errors.New("control: sharded dialer needs at least one shard")
	}
	return &ShardedDialer{shards: shards}, nil
}

// shardOf maps a group name onto a shard index by FNV-1a.
func shardOf(group string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(group))
	return int(h.Sum32() % uint32(n))
}

// Dial implements Dialer: receivers join the group (membership +
// traffic), senders only register it (addressing without membership,
// so a pure sender receives no cross-sender chatter). The returned
// link is shared — admission failures must not close the shard.
func (d *ShardedDialer) Dial(spec FlowSpec) (Link, error) {
	tr := d.shards[shardOf(spec.Group, len(d.shards))]
	var (
		gid transport.GroupID
		err error
	)
	if spec.Role == RoleRecv {
		gid, err = tr.Join(spec.Group)
	} else {
		gid, err = tr.Register(spec.Group)
	}
	if err != nil {
		return Link{}, err
	}
	// AsTransport is a no-op for shard transports that already expose
	// the per-packet surface (udpmcast's does); otherwise it narrows the
	// batch interface for the session to re-widen with Batched.
	return Link{Transport: transport.AsTransport(tr), Group: gid, Shared: true}, nil
}

// Shards returns the number of shard transports.
func (d *ShardedDialer) Shards() int { return len(d.shards) }

// ShardStats snapshots each shard's datapath counters, in shard order,
// for the /metrics per-shard series. Shards that cannot report (no
// GroupReporter) yield zero stats.
func (d *ShardedDialer) ShardStats() []transport.GroupStats {
	out := make([]transport.GroupStats, len(d.shards))
	for i, s := range d.shards {
		if r, ok := s.(transport.GroupReporter); ok {
			out[i] = r.GroupStats()
		}
	}
	return out
}
