// The HTTP face of the control plane: a JSON API over any listener —
// the daemon serves it on a TCP or unix socket — mapping the Manager's
// operations onto RESTish routes:
//
//	GET    /v1/status          session overview: uptime, budget, totals, flows
//	GET    /v1/flows           list flow statuses
//	POST   /v1/flows           admit a flow (body: FlowSpec JSON)
//	GET    /v1/flows/{id}      one flow's status
//	PATCH  /v1/flows/{id}      tune a flow (body: {"weight":…, "ceiling_bps":…})
//	DELETE /v1/flows/{id}      ?mode=drain (default) | abort | forget
//	GET    /v1/governor        current budget
//	PATCH  /v1/governor        set budget (body: {"budget_bps":…})
//	GET    /metrics            Prometheus-style text metrics
//	POST   /v1/shutdown        ask the daemon to drain everything and exit
//
// Errors are JSON {"error": "..."} with conventional status codes.
package control

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/session"
	"repro/internal/stats"
)

// Server mounts a Manager behind an http.Handler.
type Server struct {
	mgr   *Manager
	start time.Time
	// shutdown, when non-nil, is invoked (once, asynchronously) by
	// POST /v1/shutdown; the daemon wires it to its exit path.
	shutdown func()
}

// NewServer wraps mgr. shutdown may be nil, disabling /v1/shutdown.
func NewServer(mgr *Manager, shutdown func()) *Server {
	return &Server{mgr: mgr, start: time.Now(), shutdown: shutdown}
}

// Handler returns the control-plane API handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/status", s.getStatus)
	mux.HandleFunc("GET /v1/flows", s.getFlows)
	mux.HandleFunc("POST /v1/flows", s.postFlows)
	mux.HandleFunc("GET /v1/flows/{id}", s.getFlow)
	mux.HandleFunc("PATCH /v1/flows/{id}", s.patchFlow)
	mux.HandleFunc("DELETE /v1/flows/{id}", s.deleteFlow)
	mux.HandleFunc("GET /v1/governor", s.getGovernor)
	mux.HandleFunc("PATCH /v1/governor", s.patchGovernor)
	mux.HandleFunc("GET /metrics", s.getMetrics)
	mux.HandleFunc("POST /v1/shutdown", s.postShutdown)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// errCode maps manager errors onto HTTP statuses.
func errCode(err error) int {
	switch {
	case errors.Is(err, ErrUnknownFlow):
		return http.StatusNotFound
	case errors.Is(err, ErrNotTerminal):
		return http.StatusConflict
	case errors.Is(err, ErrManagerClosed), errors.Is(err, session.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, session.ErrPortInUse):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) flowID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad flow id %q", r.PathValue("id")))
		return 0, false
	}
	return id, true
}

// StatusReply is the GET /v1/status JSON shape.
type StatusReply struct {
	UptimeSec float64         `json:"uptime_sec"`
	BudgetBps float64         `json:"budget_bps"`
	Flows     []FlowStatus    `json:"flows"`
	Total     stats.Aggregate `json:"total"`
}

func (s *Server) getStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatusReply{
		UptimeSec: time.Since(s.start).Seconds(),
		BudgetBps: s.mgr.Session().Budget(),
		Flows:     s.mgr.List(),
		Total:     s.mgr.Aggregate(),
	})
}

func (s *Server) getFlows(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.List())
}

func (s *Server) postFlows(w http.ResponseWriter, r *http.Request) {
	var spec FlowSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parse flow spec: %w", err))
		return
	}
	fs, err := s.mgr.Admit(spec)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, fs)
}

func (s *Server) getFlow(w http.ResponseWriter, r *http.Request) {
	id, ok := s.flowID(w, r)
	if !ok {
		return
	}
	fs, err := s.mgr.Status(id)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, fs)
}

// FlowPatch is the PATCH /v1/flows/{id} JSON body; zero fields are
// left untouched.
type FlowPatch struct {
	Weight     float64 `json:"weight,omitempty"`
	CeilingBps float64 `json:"ceiling_bps,omitempty"`
}

func (s *Server) patchFlow(w http.ResponseWriter, r *http.Request) {
	id, ok := s.flowID(w, r)
	if !ok {
		return
	}
	var p FlowPatch
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parse flow patch: %w", err))
		return
	}
	if p.Weight == 0 && p.CeilingBps == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("nothing to patch: set weight and/or ceiling_bps"))
		return
	}
	if p.Weight != 0 {
		if err := s.mgr.SetWeight(id, p.Weight); err != nil {
			writeErr(w, errCode(err), err)
			return
		}
	}
	if p.CeilingBps != 0 {
		if err := s.mgr.SetCeiling(id, p.CeilingBps); err != nil {
			writeErr(w, errCode(err), err)
			return
		}
	}
	fs, err := s.mgr.Status(id)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, fs)
}

func (s *Server) deleteFlow(w http.ResponseWriter, r *http.Request) {
	id, ok := s.flowID(w, r)
	if !ok {
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "drain"
	}
	var err error
	switch mode {
	case "drain":
		err = s.mgr.Drain(r.Context(), id)
	case "abort":
		err = s.mgr.Abort(id)
	case "forget":
		err = s.mgr.Forget(id)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad mode %q: want drain, abort, or forget", mode))
		return
	}
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// The client gave up before the drain finished; the drain keeps
		// going in the background.
		writeErr(w, http.StatusAccepted, fmt.Errorf("drain still in progress: %w", err))
		return
	}
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	if mode == "forget" {
		writeJSON(w, http.StatusOK, map[string]string{"status": "forgotten"})
		return
	}
	fs, err := s.mgr.Status(id)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, fs)
}

// GovernorReply is the GET/PATCH /v1/governor JSON shape.
type GovernorReply struct {
	BudgetBps float64 `json:"budget_bps"`
}

func (s *Server) getGovernor(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, GovernorReply{BudgetBps: s.mgr.Session().Budget()})
}

// GovernorPatch is the PATCH /v1/governor body. BudgetBps zero
// disables the governor (flows revert to their own ceilings).
type GovernorPatch struct {
	BudgetBps *float64 `json:"budget_bps"`
}

func (s *Server) patchGovernor(w http.ResponseWriter, r *http.Request) {
	var p GovernorPatch
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parse governor patch: %w", err))
		return
	}
	if p.BudgetBps == nil {
		writeErr(w, http.StatusBadRequest, errors.New("budget_bps is required"))
		return
	}
	s.mgr.Session().SetBudget(*p.BudgetBps)
	s.getGovernor(w, r)
}

func (s *Server) postShutdown(w http.ResponseWriter, r *http.Request) {
	if s.shutdown == nil {
		writeErr(w, http.StatusNotImplemented, errors.New("shutdown is not wired on this server"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "shutting down"})
	go s.shutdown()
}
