package control

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/session"
	"repro/internal/transport"
)

// memSinks hands every recv flow an in-memory capture buffer, keyed by
// flow name, so tests can assert bit-exact delivery.
type memSinks struct {
	mu   sync.Mutex
	bufs map[string]*memBuf
}

type memBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *memBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *memBuf) Close() error { return nil }

func (b *memBuf) bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

func newMemSinks() *memSinks { return &memSinks{bufs: make(map[string]*memBuf)} }

func (m *memSinks) open(spec FlowSpec) (io.WriteCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b := &memBuf{}
	m.bufs[spec.Name] = b
	return b, nil
}

func (m *memSinks) get(name string) *memBuf {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bufs[name]
}

// seededSource serves app.FillPattern bytes offset by a per-name seed,
// so every flow carries a distinct, reproducible stream.
func seededSource(seed func(name string) int64) func(FlowSpec) (io.ReadCloser, error) {
	return func(spec FlowSpec) (io.ReadCloser, error) {
		return io.NopCloser(&patternSource{off: seed(spec.Name), remaining: spec.Size}), nil
	}
}

func nameSeed(name string) int64 {
	var h int64
	for _, c := range name {
		h = h*131 + int64(c)
	}
	return h << 20
}

func expectPattern(name string, size int64) []byte {
	b := make([]byte, size)
	app.FillPattern(b, nameSeed(name))
	return b
}

// testPlane wires a manager to an in-memory hub and an httptest server.
type testPlane struct {
	hub   *transport.Hub
	sess  *session.Session
	mgr   *Manager
	sinks *memSinks
	srv   *httptest.Server
}

func newTestPlane(t *testing.T, hubOpts []transport.HubOption, sessCfg session.Config) *testPlane {
	t.Helper()
	p := &testPlane{
		hub:   transport.NewHub(hubOpts...),
		sinks: newMemSinks(),
	}
	p.sess = session.New(sessCfg)
	p.mgr = NewManager(ManagerConfig{
		Session: p.sess,
		Dialer: DialerFunc(func(FlowSpec) (Link, error) {
			return Link{Transport: p.hub.Endpoint()}, nil
		}),
		OpenSource: seededSource(nameSeed),
		OpenSink:   p.sinks.open,
	})
	p.srv = httptest.NewServer(NewServer(p.mgr, nil).Handler())
	t.Cleanup(func() {
		p.srv.Close()
		p.sess.Abort()
	})
	return p
}

// do runs one JSON request and decodes the reply into out (when
// non-nil), asserting the expected status code.
func (p *testPlane) do(t *testing.T, method, path string, body any, wantCode int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, p.srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := p.srv.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s = %d, want %d (body: %s)", method, path, resp.StatusCode, wantCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, raw, err)
		}
	}
}

// waitFlow polls one flow's status until cond holds.
func (p *testPlane) waitFlow(t *testing.T, id int, what string, cond func(FlowStatus) bool) FlowStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var fs FlowStatus
	for time.Now().Before(deadline) {
		p.do(t, "GET", fmt.Sprintf("/v1/flows/%d", id), nil, http.StatusOK, &fs)
		if cond(fs) {
			return fs
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for flow %d: %s (last: %+v)", id, what, fs)
	return fs
}

// TestControlAdmitTransferObserve drives one whole transfer through
// the HTTP API: admit receiver and sender, watch them complete, check
// the status and metrics endpoints see the same counters, and forget
// the flows.
func TestControlAdmitTransferObserve(t *testing.T) {
	p := newTestPlane(t, nil, session.Config{})
	const size = 64 << 10

	var rcv, snd FlowStatus
	p.do(t, "POST", "/v1/flows", FlowSpec{
		Name: "mirror", Group: "g1", Role: RoleRecv, LocalPort: 2, PeerPort: 1,
		Fec: 8,
	}, http.StatusCreated, &rcv)
	p.do(t, "POST", "/v1/flows", FlowSpec{
		Name: "dist", Group: "g1", Role: RoleSend, Size: size, Receivers: 1,
		LocalPort: 1, PeerPort: 2, MinRateBps: 1e6, MaxRateBps: 64e6,
		Fec: 8,
	}, http.StatusCreated, &snd)
	if rcv.State != StateRunning || snd.State != StateRunning {
		t.Fatalf("admitted states = %s/%s, want running", rcv.State, snd.State)
	}

	snd = p.waitFlow(t, snd.ID, "sender done", func(fs FlowStatus) bool { return fs.State == StateDone })
	rcv = p.waitFlow(t, rcv.ID, "receiver done", func(fs FlowStatus) bool { return fs.State == StateDone })
	if got := p.sinks.get("mirror").bytes(); !bytes.Equal(got, expectPattern("dist", size)) {
		t.Errorf("delivered %d bytes, not bit-exact with the %d-byte source", len(got), size)
	}
	if snd.Sender == nil || snd.Sender.BytesSent != size {
		t.Errorf("sender status counters = %+v, want BytesSent=%d", snd.Sender, size)
	}
	if snd.Sender != nil && snd.Sender.CeilingBps <= 0 {
		t.Errorf("sender CeilingBps = %d, want > 0", snd.Sender.CeilingBps)
	}
	if rcv.Receiver == nil || rcv.Receiver.BytesDelivered != size {
		t.Errorf("receiver status counters = %+v, want BytesDelivered=%d", rcv.Receiver, size)
	}
	// The spec's fec field must reach the sender machine: parity flows
	// even on a loss-free transport (1/K overhead, nothing recovered).
	if snd.Sender != nil && snd.Sender.FecParitySent == 0 {
		t.Error("FlowSpec.Fec did not enable the parity pipeline (FecParitySent = 0)")
	}

	var status StatusReply
	p.do(t, "GET", "/v1/status", nil, http.StatusOK, &status)
	if len(status.Flows) != 2 {
		t.Errorf("status lists %d flows, want 2", len(status.Flows))
	}
	if status.Total.Sender.BytesSent != size || status.Total.Receiver.BytesDelivered != size {
		t.Errorf("aggregate totals = sent %d / delivered %d, want %d/%d",
			status.Total.Sender.BytesSent, status.Total.Receiver.BytesDelivered, size, size)
	}

	resp, err := http.Get(p.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(raw)
	for _, want := range []string{
		fmt.Sprintf(`hrmc_sender_bytes_sent{flow="dist",id="%d",group="g1"} %d`, snd.ID, size),
		fmt.Sprintf(`hrmc_receiver_bytes_delivered{flow="mirror",id="%d",group="g1"} %d`, rcv.ID, size),
		"# TYPE hrmc_sender_rate_bps gauge",
		"# TYPE hrmc_sender_bytes_sent counter",
		"hrmc_total_sender_bytes_sent " + fmt.Sprint(size),
		"hrmc_session_flows 2",
		// The FEC counters surface by reflection from internal/stats:
		// parity sent / local recoveries / fallback NAKs / wasted parity.
		`hrmc_sender_fec_parity_sent{flow="dist"`,
		`hrmc_receiver_fec_recovered{flow="mirror"`,
		`hrmc_receiver_fec_fallback_naks{flow="mirror"`,
		`hrmc_receiver_fec_parity_wasted{flow="mirror"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics output missing %q\n--- got ---\n%s", want, metrics)
		}
	}

	// Forgetting a terminal flow frees it; forgetting twice is a 404.
	p.do(t, "DELETE", fmt.Sprintf("/v1/flows/%d?mode=forget", snd.ID), nil, http.StatusOK, nil)
	p.do(t, "DELETE", fmt.Sprintf("/v1/flows/%d?mode=forget", snd.ID), nil, http.StatusNotFound, nil)
	p.do(t, "GET", "/v1/flows", nil, http.StatusOK, &[]FlowStatus{})
}

// TestControlDrainLossyFlowMidTransfer is the drain-on-close-under-loss
// regression test: three sender/receiver pairs share one lossy hub; the
// slowest sender is drained mid-transfer through the HTTP API, and the
// other two flows must still deliver bit-exact. The drained flow's
// receiver must end with a clean EOF holding exactly the prefix the
// sender shipped before the drain.
func TestControlDrainLossyFlowMidTransfer(t *testing.T) {
	p := newTestPlane(t,
		[]transport.HubOption{transport.WithLoss(0.02, 11), transport.WithDelay(time.Millisecond)},
		session.Config{})
	const size = 192 << 10

	specs := []FlowSpec{
		{Name: "victim-rcv", Group: "gv", Role: RoleRecv},
		// The victim paces slowly with a small send buffer, so its pump
		// is genuinely mid-copy — not just mid-release — when drained.
		{Name: "victim", Group: "gv", Role: RoleSend, Size: size, Receivers: 1,
			Buf: 16 << 10, MinRateBps: 100e3, MaxRateBps: 200e3},
		{Name: "a-rcv", Group: "ga", Role: RoleRecv},
		{Name: "a", Group: "ga", Role: RoleSend, Size: size, Receivers: 1,
			MinRateBps: 400e3, MaxRateBps: 800e3},
		{Name: "b-rcv", Group: "gb", Role: RoleRecv},
		{Name: "b", Group: "gb", Role: RoleSend, Size: size, Receivers: 1,
			MinRateBps: 400e3, MaxRateBps: 800e3},
	}
	AssignPorts(specs)
	ids := make(map[string]int)
	for _, spec := range specs {
		var fs FlowStatus
		p.do(t, "POST", "/v1/flows", spec, http.StatusCreated, &fs)
		ids[spec.Name] = fs.ID
	}

	// Let the victim ship part of its stream, then drain it while the
	// other flows are still running.
	p.waitFlow(t, ids["victim"], "mid-transfer", func(fs FlowStatus) bool {
		return fs.BytesCopied > 16<<10
	})
	var drained FlowStatus
	p.do(t, "DELETE", fmt.Sprintf("/v1/flows/%d", ids["victim"]), nil, http.StatusOK, &drained)
	if drained.State != StateClosed {
		t.Errorf("drained flow state = %s, want %s", drained.State, StateClosed)
	}
	if drained.BytesCopied <= 0 || drained.BytesCopied >= size {
		t.Errorf("drained flow copied %d bytes, want a strict mid-transfer prefix of %d",
			drained.BytesCopied, size)
	}

	// The untouched flows finish bit-exact.
	for _, name := range []string{"a", "b"} {
		p.waitFlow(t, ids[name], "sender done", func(fs FlowStatus) bool { return fs.State == StateDone })
		p.waitFlow(t, ids[name+"-rcv"], "receiver done", func(fs FlowStatus) bool { return fs.State == StateDone })
		if got := p.sinks.get(name + "-rcv").bytes(); !bytes.Equal(got, expectPattern(name, size)) {
			t.Errorf("flow %s: delivered %d bytes, not bit-exact after sibling drain", name, len(got))
		}
	}

	// The victim's receiver sees a clean end of stream carrying exactly
	// the drained prefix.
	p.waitFlow(t, ids["victim-rcv"], "victim receiver done", func(fs FlowStatus) bool {
		return fs.State == StateDone
	})
	got := p.sinks.get("victim-rcv").bytes()
	want := expectPattern("victim", size)[:drained.BytesCopied]
	if !bytes.Equal(got, want) {
		t.Errorf("victim receiver delivered %d bytes, want the %d-byte drained prefix, bit-exact",
			len(got), len(want))
	}
}

// TestControlGovernorTuning exercises live tuning end to end: budget
// changes through PATCH /v1/governor and per-flow weight/ceiling
// changes through PATCH /v1/flows/{id}, observed via the rate/ceiling
// gauges in flow status.
func TestControlGovernorTuning(t *testing.T) {
	p := newTestPlane(t, nil, session.Config{Budget: 1e6})
	const size = 32 << 20 // big enough to outlive the test

	var g GovernorReply
	p.do(t, "GET", "/v1/governor", nil, http.StatusOK, &g)
	if g.BudgetBps != 1e6 {
		t.Fatalf("budget = %v, want 1e6", g.BudgetBps)
	}

	specs := []FlowSpec{
		{Name: "a-rcv", Group: "ga", Role: RoleRecv},
		{Name: "a", Group: "ga", Role: RoleSend, Size: size, Receivers: 1,
			MinRateBps: 100e3, MaxRateBps: 64e6},
		{Name: "b-rcv", Group: "gb", Role: RoleRecv},
		{Name: "b", Group: "gb", Role: RoleSend, Size: size, Receivers: 1,
			MinRateBps: 100e3, MaxRateBps: 64e6},
	}
	AssignPorts(specs)
	ids := make(map[string]int)
	for _, spec := range specs {
		var fs FlowStatus
		p.do(t, "POST", "/v1/flows", spec, http.StatusCreated, &fs)
		ids[spec.Name] = fs.ID
	}
	ceiling := func(fs FlowStatus) int64 {
		if fs.Sender == nil {
			return 0
		}
		return fs.Sender.CeilingBps
	}

	// Both hungry: the governor splits the 1 MB/s budget equally.
	p.waitFlow(t, ids["a"], "equal split", func(fs FlowStatus) bool { return ceiling(fs) == 500e3 })
	p.waitFlow(t, ids["b"], "equal split", func(fs FlowStatus) bool { return ceiling(fs) == 500e3 })

	// Double the budget at runtime.
	budget := 2e6
	p.do(t, "PATCH", "/v1/governor", GovernorPatch{BudgetBps: &budget}, http.StatusOK, &g)
	if g.BudgetBps != 2e6 {
		t.Fatalf("budget after patch = %v, want 2e6", g.BudgetBps)
	}
	p.waitFlow(t, ids["a"], "doubled split", func(fs FlowStatus) bool { return ceiling(fs) == 1e6 })

	// Re-weight flow a to 3: the split becomes 1.5 MB/s / 0.5 MB/s.
	var fs FlowStatus
	p.do(t, "PATCH", fmt.Sprintf("/v1/flows/%d", ids["a"]), FlowPatch{Weight: 3}, http.StatusOK, &fs)
	if fs.Weight != 3 {
		t.Errorf("patched weight = %v, want 3", fs.Weight)
	}
	p.waitFlow(t, ids["a"], "3:1 split", func(fs FlowStatus) bool { return ceiling(fs) == 1.5e6 })
	p.waitFlow(t, ids["b"], "3:1 split", func(fs FlowStatus) bool { return ceiling(fs) == 500e3 })

	// Cap flow b below its governor share; the slack goes to a.
	p.do(t, "PATCH", fmt.Sprintf("/v1/flows/%d", ids["b"]), FlowPatch{CeilingBps: 200e3}, http.StatusOK, &fs)
	p.waitFlow(t, ids["b"], "capped", func(fs FlowStatus) bool {
		return ceiling(fs) > 0 && ceiling(fs) <= 200e3
	})
	p.waitFlow(t, ids["a"], "cap slack donated", func(fs FlowStatus) bool { return ceiling(fs) == 1.8e6 })
}

// TestControlAPIErrors covers the HTTP error mapping.
func TestControlAPIErrors(t *testing.T) {
	p := newTestPlane(t, nil, session.Config{})

	p.do(t, "GET", "/v1/flows/99", nil, http.StatusNotFound, nil)
	p.do(t, "DELETE", "/v1/flows/99", nil, http.StatusNotFound, nil)
	p.do(t, "DELETE", "/v1/flows/notanid", nil, http.StatusBadRequest, nil)
	p.do(t, "POST", "/v1/flows", FlowSpec{Name: "x", Role: "sideways"}, http.StatusBadRequest, nil)
	p.do(t, "PATCH", "/v1/governor", map[string]any{}, http.StatusBadRequest, nil)

	// A running flow cannot be forgotten; a receiver cannot be tuned.
	var rcv FlowStatus
	p.do(t, "POST", "/v1/flows", FlowSpec{
		Name: "r", Group: "g", Role: RoleRecv, LocalPort: 2, PeerPort: 1,
	}, http.StatusCreated, &rcv)
	p.do(t, "DELETE", fmt.Sprintf("/v1/flows/%d?mode=forget", rcv.ID), nil, http.StatusConflict, nil)
	p.do(t, "PATCH", fmt.Sprintf("/v1/flows/%d", rcv.ID), FlowPatch{Weight: 2}, http.StatusBadRequest, nil)

	// Duplicate port binding on the same transport cannot happen with
	// per-flow endpoints, but an unknown shutdown hook is a 501.
	p.do(t, "POST", "/v1/shutdown", nil, http.StatusNotImplemented, nil)
}

// TestControlShutdownDrainsAll checks Manager.Shutdown: every flow is
// drained, admissions are rejected afterwards, and Wait returns.
func TestControlShutdownDrainsAll(t *testing.T) {
	p := newTestPlane(t, nil, session.Config{})
	const size = 8 << 20

	specs := []FlowSpec{
		{Name: "r", Group: "g", Role: RoleRecv},
		{Name: "s", Group: "g", Role: RoleSend, Size: size, Receivers: 1,
			MinRateBps: 200e3, MaxRateBps: 400e3},
	}
	AssignPorts(specs)
	for _, spec := range specs {
		p.do(t, "POST", "/v1/flows", spec, http.StatusCreated, nil)
	}
	p.waitFlow(t, 1, "transfer started", func(fs FlowStatus) bool { return fs.BytesCopied > 0 })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.mgr.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if _, err := p.mgr.Admit(FlowSpec{Name: "late", Group: "g", Role: RoleRecv}); err != ErrManagerClosed {
		t.Errorf("Admit after shutdown = %v, want ErrManagerClosed", err)
	}
	for _, fs := range p.mgr.List() {
		if fs.State != StateClosed && fs.State != StateDone {
			t.Errorf("flow %s state after shutdown = %s, want closed or done", fs.Name, fs.State)
		}
	}
}

// TestControlRetentionEvictsTerminalFlows checks the metrics
// cardinality cap: with Retention set, flows that finished stay listed
// for the window and are then swept — detached from the session like
// Forget — while flows still running are untouched.
func TestControlRetentionEvictsTerminalFlows(t *testing.T) {
	hub := transport.NewHub()
	sess := session.New(session.Config{})
	sinks := newMemSinks()
	mgr := NewManager(ManagerConfig{
		Session: sess,
		Dialer: DialerFunc(func(FlowSpec) (Link, error) {
			return Link{Transport: hub.Endpoint()}, nil
		}),
		OpenSource: seededSource(nameSeed),
		OpenSink:   sinks.open,
		Retention:  30 * time.Millisecond,
	})
	t.Cleanup(sess.Abort)

	const size = 8 << 10
	if _, err := mgr.Admit(FlowSpec{Name: "mirror", Group: "g1", Role: RoleRecv, LocalPort: 2, PeerPort: 1}); err != nil {
		t.Fatal(err)
	}
	snd, err := mgr.Admit(FlowSpec{Name: "dist", Group: "g1", Role: RoleSend,
		Size: size, Receivers: 1, LocalPort: 1, PeerPort: 2})
	if err != nil {
		t.Fatal(err)
	}
	// An idle receiver on its own ports never terminates; retention must
	// leave it alone.
	idle, err := mgr.Admit(FlowSpec{Name: "idle", Group: "g2", Role: RoleRecv, LocalPort: 4, PeerPort: 3})
	if err != nil {
		t.Fatal(err)
	}

	waitList := func(what string, cond func([]FlowStatus) bool) []FlowStatus {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		var fss []FlowStatus
		for time.Now().Before(deadline) {
			fss = mgr.List()
			if cond(fss) {
				return fss
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timeout waiting for %s (last: %+v)", what, fss)
		return nil
	}

	// Each List sweeps, so the transfer pair is retired within one
	// retention window of finishing; completion itself is asserted from
	// the delivered bytes below.
	fss := waitList("terminal flows to be retired", func(fss []FlowStatus) bool { return len(fss) == 1 })
	if got := sinks.get("mirror").bytes(); !bytes.Equal(got, expectPattern("dist", size)) {
		t.Errorf("delivered %d bytes, not bit-exact with the %d-byte source", len(got), size)
	}
	if fss[0].ID != idle.ID || fss[0].State != StateRunning {
		t.Fatalf("surviving flow = %+v, want the running idle receiver", fss[0])
	}
	if err := mgr.Forget(snd.ID); !errors.Is(err, ErrUnknownFlow) {
		t.Errorf("Forget after retention sweep = %v, want ErrUnknownFlow", err)
	}
	if n := len(sess.Snapshot().Flows); n != 1 {
		t.Errorf("session still hosts %d flows after sweep, want 1", n)
	}
}
