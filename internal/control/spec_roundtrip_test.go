package control

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/session"
	"repro/internal/transport"
)

// newShardedPlane wires a manager to a ShardedDialer over hub group
// endpoints: every admitted flow lands on one of `shards` shared
// transports, exactly the thousand-group daemon topology but in-memory.
func newShardedPlane(t *testing.T, shards int) (*testPlane, *ShardedDialer) {
	t.Helper()
	p := &testPlane{
		hub:   transport.NewHub(),
		sinks: newMemSinks(),
	}
	eps := make([]transport.GroupTransport, shards)
	for i := range eps {
		eps[i] = p.hub.Endpoint().(transport.GroupTransport)
	}
	dialer, err := NewShardedDialer(eps)
	if err != nil {
		t.Fatal(err)
	}
	p.sess = session.New(session.Config{})
	p.mgr = NewManager(ManagerConfig{
		Session:    p.sess,
		Dialer:     dialer,
		OpenSource: seededSource(nameSeed),
		OpenSink:   p.sinks.open,
	})
	p.srv = httptest.NewServer(NewServer(p.mgr, nil).Handler())
	t.Cleanup(func() {
		p.srv.Close()
		p.sess.Abort()
	})
	return p, dialer
}

// TestControlSpecRoundTripSharded drives the whole control-plane
// surface over a sharded dialer: every FlowSpec field survives the
// admission round trip (POST body → sanitized echo in FlowStatus.Spec
// → GET), a transfer completes bit-exact over the hub's
// group-addressed multicast, the runtime weight/ceiling knobs land,
// and /metrics exposes the per-shard and transport-IO series.
func TestControlSpecRoundTripSharded(t *testing.T) {
	p, dialer := newShardedPlane(t, 2)
	const size = 64 << 10

	// A receiver exercising every control-plane knob a leaf can carry.
	leafSpec := FlowSpec{
		Name: "leaf", Group: "239.9.1.1", Role: RoleRecv,
		LocalPort: 14, PeerPort: 13, Buf: 128 << 10,
		HeadAddr: 7, ReadoptHead: true, JoinInProgress: true, Fec: 8,
	}
	var leaf FlowStatus
	p.do(t, "POST", "/v1/flows", leafSpec, http.StatusCreated, &leaf)
	if leaf.Spec == nil || !reflect.DeepEqual(*leaf.Spec, leafSpec) {
		t.Errorf("admitted spec echo = %+v, want %+v", leaf.Spec, leafSpec)
	}
	p.do(t, "GET", fmt.Sprintf("/v1/flows/%d", leaf.ID), nil, http.StatusOK, &leaf)
	if leaf.Spec == nil || !reflect.DeepEqual(*leaf.Spec, leafSpec) {
		t.Errorf("GET spec echo = %+v, want %+v", leaf.Spec, leafSpec)
	}

	// A repair head on the same idle group.
	headSpec := FlowSpec{
		Name: "head", Group: "239.9.1.1", Role: RoleRecv,
		LocalPort: 16, PeerPort: 13, Buf: 128 << 10, Head: true, Fec: 8,
	}
	var head FlowStatus
	p.do(t, "POST", "/v1/flows", headSpec, http.StatusCreated, &head)
	if head.Spec == nil || !head.Spec.Head {
		t.Errorf("head spec echo lost Head: %+v", head.Spec)
	}

	// A full transfer over group-addressed multicast: sender and
	// receiver share a group, so the dialer puts them on one shard.
	var mirror, dist FlowStatus
	p.do(t, "POST", "/v1/flows", FlowSpec{
		Name: "mirror", Group: "239.9.2.2", Role: RoleRecv,
		LocalPort: 2, PeerPort: 1, Fec: 8,
	}, http.StatusCreated, &mirror)
	p.do(t, "POST", "/v1/flows", FlowSpec{
		Name: "dist", Group: "239.9.2.2", Role: RoleSend, Size: size,
		Receivers: 1, LocalPort: 1, PeerPort: 2, Weight: 2,
		MinRateBps: 1e6, MaxRateBps: 64e6, Fec: 8,
	}, http.StatusCreated, &dist)
	if dist.Spec == nil || dist.Spec.Weight != 2 || dist.Spec.MinRateBps != 1e6 ||
		dist.Spec.MaxRateBps != 64e6 || dist.Spec.Fec != 8 {
		t.Errorf("sender spec echo = %+v", dist.Spec)
	}
	dist = p.waitFlow(t, dist.ID, "sender done", func(fs FlowStatus) bool { return fs.State == StateDone })
	if got := p.sinks.get("mirror").bytes(); !bytes.Equal(got, expectPattern("dist", size)) {
		t.Errorf("sharded transfer delivered %d bytes, not bit-exact with the %d-byte source", len(got), size)
	}
	if dist.Sender == nil || dist.Sender.FecParitySent == 0 {
		t.Error("Fec knob did not reach the sender machine over the sharded dialer")
	}

	// Runtime knobs on a sender that stays running (no receivers ever
	// join, so it cannot finish under us).
	var stay FlowStatus
	p.do(t, "POST", "/v1/flows", FlowSpec{
		Name: "stay", Group: "239.9.3.3", Role: RoleSend, Size: 1 << 20,
		Receivers: 1, LocalPort: 21, PeerPort: 22, Weight: 1.5,
	}, http.StatusCreated, &stay)
	p.do(t, "PATCH", fmt.Sprintf("/v1/flows/%d", stay.ID),
		map[string]float64{"weight": 2.5, "ceiling_bps": 1e6}, http.StatusOK, &stay)
	if stay.Weight != 2.5 {
		t.Errorf("patched weight = %v, want 2.5", stay.Weight)
	}
	p.waitFlow(t, stay.ID, "ceiling applied", func(fs FlowStatus) bool {
		return fs.Sender != nil && fs.Sender.CeilingBps == 1e6
	})

	// The sharded dialer reports per-shard membership: leaf + head share
	// the 239.9.1.1 shard, mirror joined 239.9.2.2's shard.
	joined := 0
	for _, st := range dialer.ShardStats() {
		joined += st.Joined
	}
	if joined != 2 {
		t.Errorf("shard stats joined sum = %d, want 2 (two distinct groups with members)", joined)
	}

	// /metrics renders the per-shard and transport-IO series.
	resp, err := http.Get(p.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`hrmc_shard_groups_joined{shard="0"}`,
		`hrmc_shard_groups_joined{shard="1"}`,
		"hrmc_transport_truncated_datagrams_total",
		"hrmc_transport_send_errors_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
