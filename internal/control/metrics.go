// Prometheus-style text rendering of the session's snapshots. Metric
// names are derived from the stats struct fields by reflection, so new
// counters added to internal/stats surface here without further
// plumbing: stats.Sender.PacketsSent becomes
// hrmc_sender_packets_sent{flow=…,id=…}, aggregate totals become
// hrmc_total_sender_packets_sent, and the same for receiver fields.
package control

import (
	"fmt"
	"net/http"
	"reflect"
	"sort"
	"strings"

	"repro/internal/packet"
	"repro/internal/transport"
)

// gaugeFields are stats fields exposed as gauges; everything else is a
// monotonic counter.
var gaugeFields = map[string]bool{
	"RateBps":           true,
	"CeilingBps":        true,
	"MaxFillPermille":   true,
	"RepairHead":        true,
	"RepairMembers":     true,
	"RepairHeads":       true,
	"DownstreamMembers": true,
	"OrphanedLeaves":    true,
}

// snakeCase converts a Go field name (PacketsSent, RateBps) to a
// metric suffix (packets_sent, rate_bps).
func snakeCase(name string) string {
	var b strings.Builder
	for i, r := range name {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				b.WriteByte('_')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// escapeLabel escapes a Prometheus label value.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// metricLine is one sample, grouped by name so each metric's # TYPE
// header is emitted once.
type metricLine struct {
	name   string
	labels string
	value  float64
	gauge  bool
}

// statLines renders every int64 field of a stats struct (passed by
// pointer) under prefix with the given label set.
func statLines(prefix, labels string, stat any) []metricLine {
	v := reflect.ValueOf(stat).Elem()
	t := v.Type()
	var out []metricLine
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).Kind() != reflect.Int64 {
			continue
		}
		out = append(out, metricLine{
			name:   prefix + snakeCase(t.Field(i).Name),
			labels: labels,
			value:  float64(v.Field(i).Int()),
			gauge:  gaugeFields[t.Field(i).Name],
		})
	}
	return out
}

func (s *Server) getMetrics(w http.ResponseWriter, r *http.Request) {
	sess := s.mgr.Session()
	flows := s.mgr.List()

	var lines []metricLine
	add := func(name string, value float64, gauge bool, labels string) {
		lines = append(lines, metricLine{name: name, labels: labels, value: value, gauge: gauge})
	}
	add("hrmc_session_budget_bytes_per_second", sess.Budget(), true, "")
	add("hrmc_session_flows", float64(len(flows)), true, "")

	// Shared packet-pool activity: gets - puts is the number of packets
	// currently checked out, so a leak in the zero-copy datapath shows
	// up as a monotonically widening gap; news counts pool misses
	// (fresh allocations).
	pool := packet.PoolStats()
	add("hrmc_packet_pool_gets", float64(pool.Gets), true, "")
	add("hrmc_packet_pool_puts", float64(pool.Puts), true, "")
	add("hrmc_packet_pool_news", float64(pool.News), true, "")
	add("hrmc_packet_pool_outstanding", float64(pool.Gets-pool.Puts), true, "")

	// Process-wide transport datapath health: datagrams dropped for
	// outgrowing the batch receive buffer (previously a silent drop) and
	// per-destination send failures (previously masked by first-error-
	// only returns from the batch writers).
	io := transport.IOStats()
	add("hrmc_transport_truncated_datagrams_total", float64(io.TruncatedDatagrams), false, "")
	add("hrmc_transport_send_errors_total", float64(io.SendErrors), false, "")

	// Wire-side send accounting and segmentation-offload activity.
	// sent_total counts kernel-split wire datagrams (a UDP GSO
	// supersegment contributes its sub-segment count, not 1), so it is
	// comparable whether offload is on or off; datagrams_per_syscall is
	// the amortization the batch + offload machinery is buying.
	add("hrmc_transport_sent_total", float64(io.SentDatagrams), false, "")
	add("hrmc_transport_send_syscalls_total", float64(io.SendSyscalls), false, "")
	add("hrmc_gso_segments_total", float64(io.GsoSegments), false, "")
	add("hrmc_gro_supersegments_total", float64(io.GroSupersegments), false, "")
	add("hrmc_gro_segments_total", float64(io.GroSegments), false, "")
	dps := 0.0
	if io.SendSyscalls > 0 {
		dps = float64(io.SentDatagrams) / float64(io.SendSyscalls)
	}
	add("hrmc_send_datagrams_per_syscall", dps, true, "")

	// Per-shard counters when flows are admitted through a ShardedDialer:
	// membership and traffic per shared group transport.
	if sd, ok := s.mgr.Dialer().(interface{ ShardStats() []transport.GroupStats }); ok {
		for i, st := range sd.ShardStats() {
			labels := fmt.Sprintf(`shard="%d"`, i)
			add("hrmc_shard_groups_joined", float64(st.Joined), true, labels)
			add("hrmc_shard_groups_registered", float64(st.Registered), true, labels)
			add("hrmc_shard_packets_in", float64(st.PktsIn), false, labels)
			add("hrmc_shard_packets_out", float64(st.PktsOut), false, labels)
			add("hrmc_shard_inbox_drops", float64(st.InboxDrops), false, labels)
			add("hrmc_shard_truncated_drops", float64(st.TruncatedDrops), false, labels)
			add("hrmc_shard_send_errors", float64(st.SendErrors), false, labels)
		}
	}

	agg := s.mgr.Aggregate()
	add("hrmc_total_sender_flows", float64(agg.SenderFlows), true, "")
	add("hrmc_total_receiver_flows", float64(agg.ReceiverFlows), true, "")
	lines = append(lines, statLines("hrmc_total_sender_", "", &agg.Sender)...)
	lines = append(lines, statLines("hrmc_total_receiver_", "", &agg.Receiver)...)

	// Repair-tier shape, derived from the receiver aggregates: RepairHead
	// is 1 per head flow (so the sum is the head count) and RepairMembers
	// sums each head's downstream membership. hrmc_head_failovers is the
	// failure-domain headline: how many times a leaf declared its head
	// dead and re-homed to the sender.
	add("hrmc_head_failovers", float64(agg.Receiver.HeadFailovers), false, "")
	add("hrmc_repair_heads", float64(agg.Receiver.RepairHead), true, "")
	if agg.Receiver.RepairHead > 0 {
		add("hrmc_repair_members_per_head",
			float64(agg.Receiver.RepairMembers)/float64(agg.Receiver.RepairHead), true, "")
	}

	for _, fs := range flows {
		labels := fmt.Sprintf(`flow=%q,id="%d",group=%q`,
			escapeLabel(fs.Name), fs.ID, escapeLabel(fs.Group))
		state := 0.0
		if fs.Done {
			state = 1
		}
		add("hrmc_flow_done", state, true, labels)
		add("hrmc_flow_bytes_copied", float64(fs.BytesCopied), false, labels)
		if fs.Sender != nil {
			add("hrmc_flow_weight", fs.Weight, true, labels)
			lines = append(lines, statLines("hrmc_sender_", labels, fs.Sender)...)
		}
		if fs.Receiver != nil {
			lines = append(lines, statLines("hrmc_receiver_", labels, fs.Receiver)...)
		}
	}

	// Group samples by metric name (stable order) under one TYPE header.
	sort.SliceStable(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	var b strings.Builder
	prev := ""
	for _, l := range lines {
		if l.name != prev {
			kind := "counter"
			if l.gauge {
				kind = "gauge"
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", l.name, kind)
			prev = l.name
		}
		if l.labels == "" {
			fmt.Fprintf(&b, "%s %v\n", l.name, l.value)
		} else {
			fmt.Fprintf(&b, "%s{%s} %v\n", l.name, l.labels, l.value)
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
