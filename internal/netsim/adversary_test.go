package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/app"
	"repro/internal/packet"
	"repro/internal/rate"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/sim"
)

// TestSequenceWraparound runs a full transfer across the 32-bit
// sequence-number wrap: the stream starts a few hundred packets below
// 2^32 and must reassemble bit-exact on the other side.
func TestSequenceWraparound(t *testing.T) {
	cfg := DefaultConfig(Rate10Mbps, 77)
	net := New(cfg)
	rcfg := rate.DefaultConfig()
	rcfg.MaxRate = Rate10Mbps
	const initialSeq = 0xFFFFFF80 // 128 packets below the wrap
	s := sender.New(sender.Config{
		SndBuf: 128 << 10, Rate: rcfg, ExpectedReceivers: 2,
		InitialSeq: initialSeq,
	})
	net.AddSender(s, app.NewMemorySource(1<<20)) // ≈750 packets: crosses the wrap
	for i := 0; i < 2; i++ {
		r := receiver.New(receiver.Config{
			RcvBuf: 128 << 10, InitialSeq: initialSeq,
		})
		net.AddReceiver(r, GroupB, app.MemorySink{})
	}
	res := net.Run(600 * sim.Second)
	if !res.Completed {
		t.Fatal("transfer across the sequence wrap did not complete")
	}
	for i, r := range net.Receivers() {
		if r.Received != 1<<20 || r.BadBytes != 0 {
			t.Errorf("receiver %d: %d bytes, %d bad across the wrap", i, r.Received, r.BadBytes)
		}
	}
	if s.Stats().NakErrsSent != 0 {
		t.Error("NAK_ERR across the wrap")
	}
}

// adversaryLink couples one sender and one receiver machine directly
// through a hostile link that drops, duplicates, reorders and delays
// packets under a seeded RNG — conditions the netsim topology never
// produces (it preserves order). The protocol must still deliver the
// exact stream.
type adversaryLink struct {
	eng *sim.Engine
	rng *sim.RNG

	drop, dup, reorder float64
	baseDelay          sim.Time
	jitter             float64
}

func (l *adversaryLink) delay() sim.Time {
	d := l.rng.Jitter(l.baseDelay, l.jitter)
	if l.rng.Bool(l.reorder) {
		// Occasionally hold a packet long enough to jump its successors.
		d += l.rng.Exp(4 * l.baseDelay)
	}
	return d
}

func (l *adversaryLink) deliver(fn func()) {
	if l.rng.Bool(l.drop) {
		return
	}
	n := 1
	if l.rng.Bool(l.dup) {
		n = 2
	}
	for i := 0; i < n; i++ {
		l.eng.After(l.delay(), fn)
	}
}

func runAdversarial(t *testing.T, seed uint64, size int, drop, dup, reorder float64) bool {
	t.Helper()
	eng := &sim.Engine{}
	link := &adversaryLink{
		eng: eng, rng: sim.NewRNG(seed),
		drop: drop, dup: dup, reorder: reorder,
		baseDelay: 5 * sim.Millisecond, jitter: 0.5,
	}
	rcfg := rate.DefaultConfig()
	rcfg.MaxRate = Rate10Mbps
	snd := sender.New(sender.Config{SndBuf: 32 << 10, Rate: rcfg, ExpectedReceivers: 1})
	rcv := receiver.New(receiver.Config{RcvBuf: 32 << 10})

	data := make([]byte, size)
	app.FillPattern(data, 0)
	written := 0
	closed := false
	var got []byte
	finished := false

	// Every emitted packet must round-trip the wire codec: the machines
	// may only produce valid packets.
	wireOK := true
	roundTrip := func(p *packet.Packet) *packet.Packet {
		buf, err := p.Encode(nil)
		if err != nil {
			t.Logf("emitted packet does not encode: %v (%v)", err, p)
			wireOK = false
			return p.Clone()
		}
		q, err := packet.Decode(buf)
		if err != nil {
			t.Logf("emitted packet does not decode: %v (%v)", err, p)
			wireOK = false
			return p.Clone()
		}
		return q
	}
	var flushSender func()
	var flushReceiver func()
	flushSender = func() {
		for _, o := range snd.Outgoing() {
			pkt := roundTrip(o.Pkt)
			link.deliver(func() {
				rcv.HandlePacket(eng.Now(), pkt)
				flushReceiver()
			})
		}
	}
	flushReceiver = func() {
		for _, p := range rcv.Outgoing() {
			pkt := roundTrip(p)
			link.deliver(func() {
				snd.HandlePacket(eng.Now(), 1, pkt)
				flushSender()
			})
		}
	}

	var tick func()
	tick = func() {
		now := eng.Now()
		if written < len(data) {
			written += snd.Write(now, data[written:])
		} else if !closed {
			closed = true
			snd.Close(now)
		}
		snd.Tick(now)
		flushSender()
		rcv.Advance(now)
		// Application read.
		buf := make([]byte, 8<<10)
		for {
			n, err := rcv.Read(now, buf)
			got = append(got, buf[:n]...)
			if err != nil {
				finished = true
				break
			}
			if n == 0 {
				break
			}
		}
		flushReceiver()
		if !(finished && snd.Done()) {
			eng.After(10*sim.Millisecond, tick)
		}
	}
	eng.After(10*sim.Millisecond, tick)
	eng.RunUntil(1200 * sim.Second)

	if !finished {
		t.Logf("seed %d: stream not finished (%d of %d bytes)", seed, len(got), size)
		return false
	}
	if len(got) != size {
		t.Logf("seed %d: got %d bytes, want %d", seed, len(got), size)
		return false
	}
	if i := app.VerifyPattern(got, 0); i >= 0 {
		t.Logf("seed %d: corruption at offset %d", seed, i)
		return false
	}
	if snd.Stats().NakErrsSent != 0 {
		t.Logf("seed %d: NAK_ERR under adversarial link", seed)
		return false
	}
	return wireOK
}

func TestAdversarialLinkDropDupReorder(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		if !runAdversarial(t, seed, 64<<10, 0.05, 0.05, 0.05) {
			t.Errorf("adversarial run failed for seed %d", seed)
		}
	}
}

func TestAdversarialHeavyLoss(t *testing.T) {
	if !runAdversarial(t, 9, 32<<10, 0.25, 0.10, 0.10) {
		t.Error("transfer failed under 25% loss with duplication and reordering")
	}
}

// Property: for arbitrary (bounded) adversary parameters, delivery is
// exact.
func TestPropAdversarialReliability(t *testing.T) {
	if testing.Short() {
		t.Skip("property adversary sweep is slow")
	}
	f := func(seed uint64, dropRaw, dupRaw, reorderRaw uint8) bool {
		drop := float64(dropRaw%30) / 100 // ≤29%
		dup := float64(dupRaw%20) / 100   // ≤19%
		reo := float64(reorderRaw%20) / 100
		return runAdversarial(t, seed, 16<<10, drop, dup, reo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestLocalRecoveryReliability runs the local-recovery extension under
// WAN loss: delivery stays bit-exact, repairs are actually served by
// peers, and the H-RMC release invariant holds.
func TestLocalRecoveryReliability(t *testing.T) {
	cfg := DefaultConfig(Rate10Mbps, 55)
	net := New(cfg)
	rcfg := rate.DefaultConfig()
	rcfg.MaxRate = Rate10Mbps
	s := sender.New(sender.Config{
		SndBuf: 128 << 10, Rate: rcfg, ExpectedReceivers: 6,
		InitialRTT: 210 * sim.Millisecond, LocalRecovery: true,
	})
	net.AddSender(s, app.NewMemorySource(1<<20))
	for i := 0; i < 6; i++ {
		r := receiver.New(receiver.Config{
			RcvBuf: 128 << 10, AssumedRTT: 200 * sim.Millisecond,
			LocalRecovery: true,
		})
		net.AddReceiver(r, GroupC, app.MemorySink{})
	}
	res := net.Run(2000 * sim.Second)
	if !res.Completed {
		t.Fatal("local-recovery transfer did not complete")
	}
	var repairs, peerNaks int64
	for i, r := range net.Receivers() {
		if r.Received != 1<<20 || r.BadBytes != 0 {
			t.Errorf("receiver %d: %d bytes, %d bad", i, r.Received, r.BadBytes)
		}
		repairs += r.M.Stats().RepairsSent
		peerNaks += r.M.Stats().PeerNaksHeard
	}
	if repairs == 0 {
		t.Error("no peer repairs under 2% loss; extension inert")
	}
	if peerNaks == 0 {
		t.Error("no multicast NAKs heard by peers")
	}
	if s.Stats().NakErrsSent != 0 {
		t.Error("release invariant violated under local recovery")
	}
	if s.Stats().RepairsHeard == 0 {
		t.Error("sender never heard a repair")
	}
}
