// Fault-plane tests against the flat Network model: the same
// crash/restart, partition, and burst machinery the hierarchy chaos
// scenarios use must hold for plain receivers reporting straight to
// the sender.
package netsim

import (
	"testing"

	"repro/internal/app"
	"repro/internal/rate"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/seqspace"
	"repro/internal/sim"
)

// faultNet builds a lossless flat network with n receivers and the
// given fault plan, using a 1 KiB MSS so restart re-anchoring is exact.
func faultNet(n int, size int64, plan *FaultPlan, seed uint64) *Network {
	cfg := DefaultConfig(Rate10Mbps, seed)
	cfg.Faults = plan
	cfg.StreamMSS = 1024
	net := New(cfg)
	rcfg := rate.DefaultConfig()
	rcfg.MaxRate = Rate10Mbps
	// The send buffer is deliberately large: with a small window the
	// sender would simply stop transmitting the moment release gates on
	// a faulted member, and the fault would never cost anyone a packet.
	s := sender.New(sender.Config{
		SndBuf:            512 << 10,
		Mode:              sender.HRMC,
		Rate:              rcfg,
		MSS:               1024,
		ExpectedReceivers: n,
	})
	net.AddSender(s, app.NewMemorySource(size))
	lossless := Group{Name: "L", Delay: 2 * sim.Millisecond, Loss: 0}
	for i := 0; i < n; i++ {
		r := receiver.New(receiver.Config{RcvBuf: 256 << 10, Mode: receiver.HRMC})
		net.AddReceiver(r, lossless, app.MemorySink{})
	}
	return net
}

// TestFaultFlatCrashRestart crashes a receiver mid-flow and restarts it
// with a cold machine (Rebuild + JoinInProgress). The sender must stall
// release on the silent member rather than lose its data, and the
// rebuilt machine must re-anchor mid-stream and deliver the remainder
// bit-exact.
func TestFaultFlatCrashRestart(t *testing.T) {
	const size = int64(1 << 20)
	plan := (&FaultPlan{}).
		CrashAt(300*sim.Millisecond, 2).
		RestartAt(900*sim.Millisecond, 2)
	net := faultNet(3, size, plan, 5)
	victim := net.Receivers()[1]
	victim.Rebuild = func() *receiver.Receiver {
		return receiver.New(receiver.Config{
			RcvBuf:         256 << 10,
			Mode:           receiver.HRMC,
			JoinInProgress: true,
		})
	}
	res := net.Run(120 * sim.Second)
	if !res.Completed {
		t.Fatal("transfer did not complete after the restart")
	}
	for _, i := range []int{0, 2} {
		r := net.Receivers()[i]
		if r.Received != size || r.BadBytes != 0 {
			t.Errorf("receiver %d delivered %d bytes (%d bad), want %d exact",
				i, r.Received, r.BadBytes, size)
		}
	}
	if !victim.Finished || victim.BadBytes != 0 {
		t.Fatalf("victim: finished=%v bad=%d, want re-finished clean",
			victim.Finished, victim.BadBytes)
	}
	rb, ok := victim.M.RebasedAt()
	if !ok {
		t.Fatal("rebuilt victim never anchored mid-stream")
	}
	if want := size - int64(seqspace.Diff(rb, 0))*1024; victim.Received != want {
		t.Errorf("victim delivered %d bytes, want %d from anchor %d",
			victim.Received, want, rb)
	}
	if st := net.Sender().M.Stats(); st.ReleaseStalls == 0 {
		t.Error("sender never stalled release on the crashed member")
	}
}

// TestFaultFlatPartitionHeal cuts one receiver off from the sender for
// over a second; the member entry freezes, release stalls, and after
// the heal the receiver NAKs its way back to a bit-exact stream.
func TestFaultFlatPartitionHeal(t *testing.T) {
	const size = int64(1 << 20)
	plan := (&FaultPlan{}).
		PartitionAt(200*sim.Millisecond, 0, 1).
		HealAt(1500*sim.Millisecond, 0, 1)
	net := faultNet(3, size, plan, 6)
	res := net.Run(120 * sim.Second)
	if !res.Completed {
		t.Fatal("transfer did not complete after the heal")
	}
	for i, r := range net.Receivers() {
		if r.Received != size || r.BadBytes != 0 {
			t.Errorf("receiver %d delivered %d bytes (%d bad), want %d exact",
				i, r.Received, r.BadBytes, size)
		}
	}
	st := net.Sender().M.Stats()
	if st.Retransmissions == 0 {
		t.Error("no retransmissions: the partition recovery was vacuous")
	}
	if st.ReleaseStalls == 0 {
		t.Error("sender never stalled release on the partitioned member")
	}
}

// TestFaultFlatBurstLoss runs a timed 30% loss burst against one
// receiver on an otherwise lossless network; ordinary NAK recovery must
// absorb it.
func TestFaultFlatBurstLoss(t *testing.T) {
	const size = int64(512 << 10)
	plan := (&FaultPlan{}).
		BurstLossAt(200*sim.Millisecond, 800*sim.Millisecond, 1, 0.3)
	net := faultNet(2, size, plan, 8)
	res := net.Run(120 * sim.Second)
	if !res.Completed {
		t.Fatal("transfer did not complete through the burst")
	}
	for i, r := range net.Receivers() {
		if r.Received != size || r.BadBytes != 0 {
			t.Errorf("receiver %d delivered %d bytes (%d bad), want %d exact",
				i, r.Received, r.BadBytes, size)
		}
	}
	if net.FaultDrops() == 0 {
		t.Fatal("burst dropped nothing; test is vacuous")
	}
	if st := net.Sender().M.Stats(); st.Retransmissions == 0 {
		t.Error("no retransmissions: the burst recovery was vacuous")
	}
}
