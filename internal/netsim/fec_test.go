package netsim

import (
	"testing"

	"repro/internal/app"
	"repro/internal/rate"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/sim"
)

// buildFecTransfer wires an FEC-enabled sender and n FEC-enabled
// receivers in group g. fecK == 0 degenerates to buildTransfer's HRMC
// shape, which keeps apples-to-apples comparisons honest.
func buildFecTransfer(seed uint64, lineRate float64, n int, g Group, size int64, buf int, fecK int) *Network {
	cfg := DefaultConfig(lineRate, seed)
	net := New(cfg)
	rcfg := rate.DefaultConfig()
	rcfg.MaxRate = lineRate
	s := sender.New(sender.Config{
		SndBuf:            buf,
		Mode:              sender.HRMC,
		Rate:              rcfg,
		ExpectedReceivers: n,
		FECGroupSize:      fecK,
	})
	net.AddSender(s, app.NewMemorySource(size))
	for i := 0; i < n; i++ {
		r := receiver.New(receiver.Config{
			RcvBuf:       buf,
			Mode:         receiver.HRMC,
			FECGroupSize: fecK,
		})
		net.AddReceiver(r, g, app.MemorySink{})
	}
	return net
}

// The tentpole acceptance scenario: a 2% uniform-loss WAN path with FEC
// K=8 completes bit-exact, and at least 80% of the gaps the receiver
// detects are repaired locally from parity — never reaching the NAK
// path, let alone the sender.
func TestFecRepairsMostLossesLocally(t *testing.T) {
	const size = 2 << 20
	g := Group{Name: "fec-wan", Delay: 20 * sim.Millisecond, Loss: 0.02}
	net := buildFecTransfer(4, Rate10Mbps, 1, g, size, 256<<10, 8)
	res := net.Run(600 * sim.Second)
	if !res.Completed {
		t.Fatal("FEC transfer did not complete under 2% loss")
	}
	if res.NICDrops+res.RouterDrops == 0 {
		t.Fatal("loss model produced no drops; test is vacuous")
	}
	r := net.Receivers()[0]
	if r.Received != size || r.BadBytes != 0 {
		t.Fatalf("receiver delivered %d bytes (%d bad), want %d bit-exact", r.Received, r.BadBytes, size)
	}
	st := r.M.Stats()
	ss := net.Sender().M.Stats()
	if ss.FecParitySent == 0 {
		t.Fatal("sender emitted no parity packets")
	}
	if st.FecRecovered == 0 {
		t.Fatal("receiver recovered nothing from parity despite drops")
	}
	// Local-repair share: every detected gap either closes via parity
	// (FecRecovered counts rebuilds) or falls back to a first NAK
	// (FecFallbackNaks counts gaps that outlived the defer window).
	if st.FecRecovered < 4*st.FecFallbackNaks {
		t.Errorf("local repair share too low: %d recovered vs %d fallback NAKs (want >= 80%%)",
			st.FecRecovered, st.FecFallbackNaks)
	}
	// Singly-lost groups must never reach the sender; only multi-loss
	// groups (rare at 2%) may cost a retransmission.
	if ss.Retransmissions > st.FecFallbackNaks {
		t.Errorf("sender retransmitted %d times for %d fallback NAKs; parity path leaked work",
			ss.Retransmissions, st.FecFallbackNaks)
	}
	if ss.NakErrsSent != 0 {
		t.Errorf("H-RMC release invariant violated: %d NAK_ERRs", ss.NakErrsSent)
	}
}

// Sweeping loss rates, the FEC flow should complete everywhere and send
// markedly fewer NAKs than the NAK-only baseline at the same seed —
// that is the whole point of spending bandwidth on parity.
func TestFecLossSweepCutsNaks(t *testing.T) {
	for _, loss := range []float64{0.005, 0.01, 0.02, 0.05} {
		g := Group{Name: "sweep", Delay: 20 * sim.Millisecond, Loss: loss}
		base := buildTransfer(13, Rate10Mbps, 1, g, 256<<10, 128<<10, sender.HRMC)
		bres := base.Run(600 * sim.Second)
		fec := buildFecTransfer(13, Rate10Mbps, 1, g, 256<<10, 128<<10, 8)
		fres := fec.Run(600 * sim.Second)
		if !bres.Completed || !fres.Completed {
			t.Fatalf("loss=%.3f: baseline completed=%v fec completed=%v", loss, bres.Completed, fres.Completed)
		}
		br := base.Receivers()[0]
		fr := fec.Receivers()[0]
		if fr.Received != 256<<10 || fr.BadBytes != 0 {
			t.Fatalf("loss=%.3f: FEC receiver %d bytes, %d bad", loss, fr.Received, fr.BadBytes)
		}
		bn := br.M.Stats().NaksSent
		fn := fr.M.Stats().NaksSent
		t.Logf("loss=%.3f: baseline NAKs=%d fec NAKs=%d (recovered=%d, parity sent=%d)",
			loss, bn, fn, fr.M.Stats().FecRecovered, fec.Sender().M.Stats().FecParitySent)
		if fn > bn {
			t.Errorf("loss=%.3f: FEC sent more NAKs (%d) than baseline (%d)", loss, fn, bn)
		}
		if loss >= 0.02 && bn > 0 && fn >= bn {
			t.Errorf("loss=%.3f: FEC did not cut NAKs (%d vs %d)", loss, fn, bn)
		}
	}
}

// FEC composes with the repair hierarchy: leaves recover locally from
// parity (the sender's multicast, parity included, reaches them
// unmodified through the tree) and the run completes bit-exact at
// every node with less feedback than the same tree without parity.
func TestFecHierarchyCompletes(t *testing.T) {
	run := func(fecK int) (*Hierarchy, Result) {
		hc := HierarchyConfig{
			Heads:         2,
			LeavesPerHead: 3,
			Size:          256 << 10,
			Buf:           256 << 10,
			Seed:          5,
			Delay:         10 * sim.Millisecond,
			LeafDelay:     2 * sim.Millisecond,
			HeadLoss:      0.01,
			SubtreeLoss:   0.005,
			LeafLoss:      0.02,
			FecK:          fecK,
		}
		// Only heads join the sender's membership table, so no
		// ExpectedReceivers gate — mirror hierarchyTransfer's shape.
		rcfg := rate.DefaultConfig()
		rcfg.MaxRate = Rate100Mbps
		scfg := sender.Config{
			SndBuf:       256 << 10,
			Mode:         sender.HRMC,
			Rate:         rcfg,
			FECGroupSize: fecK,
		}
		h := NewHierarchy(hc, scfg)
		res := h.Run(600 * sim.Second)
		if !res.Completed {
			for i, nd := range h.Nodes() {
				st := nd.M.Stats()
				t.Logf("node %d head=%v finished=%v received=%d recovered=%d fallback=%d naks=%d headnaksrecv=%d",
					i, nd.IsHead(), nd.Finished, nd.Received, st.FecRecovered, st.FecFallbackNaks, st.NaksSent, st.HeadNaksReceived)
			}
			t.Fatalf("hierarchy run (fecK=%d) did not complete", fecK)
		}
		return h, res
	}
	h, _ := run(8)
	var recovered int64
	for i, nd := range h.Nodes() {
		if nd.Received != 256<<10 || nd.BadBytes != 0 {
			t.Errorf("node %d: %d bytes, %d bad", i, nd.Received, nd.BadBytes)
		}
		recovered += nd.M.Stats().FecRecovered
	}
	if recovered == 0 {
		t.Error("no node recovered anything from parity despite lossy links")
	}
	// Against the same tree without parity, local recovery should cut
	// the repair-plane traffic the heads field from their leaves.
	// (Raw SenderFeedback is dominated by periodic updates, whose count
	// wobbles with completion time — compare NAK traffic instead.)
	headNaks := func(h *Hierarchy) (n int64) {
		for _, nd := range h.Nodes() {
			n += nd.M.Stats().HeadNaksReceived
		}
		return n
	}
	base, _ := run(0)
	fn, bn := headNaks(h), headNaks(base)
	t.Logf("head NAKs: fec=%d baseline=%d (recovered=%d; feedback fec=%d baseline=%d)",
		fn, bn, recovered, h.SenderFeedback, base.SenderFeedback)
	if bn == 0 {
		t.Error("baseline tree saw no HEAD_NAKs; comparison is vacuous")
	}
	if fn > bn {
		t.Errorf("FEC tree generated more HEAD_NAKs (%d) than baseline (%d)", fn, bn)
	}
}
