// Two-level scale model for the hierarchical repair tier: one sender,
// a row of repair heads, and a large leaf population behind them. The
// full Network model charges per-packet CPU and NIC queueing on every
// host, which is the right fidelity for the paper's Section 5.2 figures
// but makes a 10,000-receiver run intractable; Hierarchy trades the
// host model for fixed one-way delays and per-subtree correlated loss,
// which is exactly what the repair tier's scaling claims are about:
// feedback volume at the sender, suppression at the heads, and
// bit-exact delivery at every leaf.
package netsim

import (
	"repro/internal/app"
	"repro/internal/packet"
	"repro/internal/receiver"
	"repro/internal/repair"
	"repro/internal/sender"
	"repro/internal/sim"
)

// HierarchyConfig parametrizes the two-level model.
type HierarchyConfig struct {
	// Heads and LeavesPerHead shape the tree: Heads repair heads, each
	// answering for LeavesPerHead downstream leaves.
	Heads         int
	LeavesPerHead int
	// Flat disables the repair tier: every receiver (heads and leaves
	// alike become plain receivers) reports straight to the sender. The
	// baseline for the feedback-reduction comparison.
	Flat bool

	// Size is the stream length in bytes; Buf the per-socket buffer.
	Size int64
	Buf  int

	// Seed drives every loss stream.
	Seed uint64

	// Delay is the sender↔head one-way delay; LeafDelay the head↔leaf
	// one-way delay. A sender↔leaf path is Delay+LeafDelay.
	Delay     sim.Time
	LeafDelay sim.Time

	// HeadLoss is the per-head loss probability on sender multicast.
	// SubtreeLoss is drawn once per subtree per multicast packet and
	// drops it for every leaf of that subtree at once — the correlated
	// tail-link loss that makes NAK suppression worth having.
	// LeafLoss is the per-leaf uncorrelated residue.
	HeadLoss    float64
	SubtreeLoss float64
	LeafLoss    float64
}

// hNode is one simulated receiver host in the hierarchy.
type hNode struct {
	M    *receiver.Receiver
	id   packet.NodeID
	head bool
	tree int // subtree index; head i owns the leaves with tree == i

	Received   int64
	BadBytes   int64
	verifyOff  int64
	Finished   bool
	FinishedAt sim.Time
}

// Hierarchy owns the two-level simulation.
type Hierarchy struct {
	Engine *sim.Engine
	cfg    HierarchyConfig

	snd     *sender.Sender
	source  app.Source
	closed  bool
	pending []byte

	nodes    []*hNode // heads first (index 0..Heads-1), then leaves
	finished int

	headLoss    *sim.RNG
	subtreeLoss *sim.RNG
	leafLoss    *sim.RNG

	// SenderFeedback counts feedback packets delivered to the sender —
	// the quantity the repair tier exists to collapse.
	SenderFeedback int64
	// Drops counts simulated multicast losses.
	Drops int64

	// readBuf is shared across drains; the engine is single-threaded.
	readBuf []byte
}

// NewHierarchy builds the sender, heads and leaves. Receiver IDs are
// 1-based indexes into the node slice, heads first, so head i (0-based)
// has NodeID i+1 and its leaves follow all heads.
func NewHierarchy(cfg HierarchyConfig, scfg sender.Config) *Hierarchy {
	if cfg.Heads <= 0 {
		panic("netsim: hierarchy needs heads")
	}
	h := &Hierarchy{
		Engine:  &sim.Engine{},
		cfg:     cfg,
		source:  app.NewMemorySource(cfg.Size),
		readBuf: make([]byte, 64<<10),
	}
	rng := sim.NewRNG(cfg.Seed)
	h.headLoss = rng.Stream(1)
	h.subtreeLoss = rng.Stream(2)
	h.leafLoss = rng.Stream(3)

	h.snd = sender.New(scfg)

	total := cfg.Heads * (1 + cfg.LeavesPerHead)
	h.nodes = make([]*hNode, 0, total)
	for i := 0; i < cfg.Heads; i++ {
		id := packet.NodeID(i + 1)
		rcfg := receiver.Config{LocalAddr: id, RcvBuf: cfg.Buf, Mode: receiver.HRMC}
		if !cfg.Flat {
			rcfg.Head = &repair.Config{}
		}
		h.nodes = append(h.nodes, &hNode{M: receiver.New(rcfg), id: id, head: true, tree: i})
	}
	for i := 0; i < cfg.Heads; i++ {
		for j := 0; j < cfg.LeavesPerHead; j++ {
			id := packet.NodeID(len(h.nodes) + 1)
			rcfg := receiver.Config{LocalAddr: id, RcvBuf: cfg.Buf, Mode: receiver.HRMC}
			if !cfg.Flat {
				rcfg.RepairHead = packet.NodeID(i + 1)
			}
			h.nodes = append(h.nodes, &hNode{M: receiver.New(rcfg), id: id, tree: i})
		}
	}
	return h
}

// Sender returns the sender machine (for assertions).
func (h *Hierarchy) Sender() *sender.Sender { return h.snd }

// Nodes returns all receiver nodes, heads first.
func (h *Hierarchy) Nodes() []*hNode { return h.nodes }

// leaves returns the leaf nodes of subtree i.
func (h *Hierarchy) leaves(tree int) []*hNode {
	start := h.cfg.Heads + tree*h.cfg.LeavesPerHead
	return h.nodes[start : start+h.cfg.LeavesPerHead]
}

// tick is the per-jiffy driver: one event advances the sender and every
// receiver, which keeps the event queue small at 10k+ nodes.
func (h *Hierarchy) tick() {
	now := h.Engine.Now()
	h.feedWindow(now)
	if !h.closed && h.source.Remaining() == 0 && len(h.pending) == 0 {
		h.closed = true
		h.snd.Close(now)
	}
	h.snd.Tick(now)
	h.flushSender(now)
	for _, nd := range h.nodes {
		nd.M.Advance(now)
		h.drainReads(nd, now)
		h.flushNode(nd, now)
	}
	if !h.done() {
		h.Engine.At(now+jiffy, h.tick)
	}
}

func (h *Hierarchy) feedWindow(now sim.Time) {
	if h.closed {
		return
	}
	for len(h.pending) > 0 {
		w := h.snd.Write(now, h.pending)
		h.pending = h.pending[w:]
		if w == 0 {
			return
		}
	}
	for {
		avail := h.source.Available(now)
		if avail == 0 {
			return
		}
		buf := make([]byte, minInt(avail, 64<<10))
		m := h.source.Produce(now, buf)
		if m == 0 {
			return
		}
		buf = buf[:m]
		w := h.snd.Write(now, buf)
		if w < m {
			h.pending = buf[w:]
			return
		}
	}
}

// flushSender routes the sender's outgoing packets: multicast fans out
// to heads at +Delay and to leaves at +Delay+LeafDelay with the loss
// model applied; unicast goes to its node with the path delay.
func (h *Hierarchy) flushSender(now sim.Time) {
	for _, o := range h.snd.Outgoing() {
		if o.Dest.Multicast {
			// One clone shared by every receiver: nothing in this model
			// recycles packets (no pool ownership), windows only read the
			// stored payload, and repairs are rebuilt as fresh copies, so
			// aliasing one packet across 10k receive windows is safe and
			// is what makes the scale affordable.
			pkt := o.Pkt.Clone()
			h.Engine.At(now+h.cfg.Delay, func() {
				for _, nd := range h.nodes[:h.cfg.Heads] {
					if h.headLoss.Bool(h.cfg.HeadLoss) {
						h.Drops++
						continue
					}
					h.deliverToNode(nd, 0, pkt)
				}
			})
			h.Engine.At(now+h.cfg.Delay+h.cfg.LeafDelay, func() {
				for tree := 0; tree < h.cfg.Heads; tree++ {
					if h.subtreeLoss.Bool(h.cfg.SubtreeLoss) {
						h.Drops += int64(h.cfg.LeavesPerHead)
						continue
					}
					for _, nd := range h.leaves(tree) {
						if h.leafLoss.Bool(h.cfg.LeafLoss) {
							h.Drops++
							continue
						}
						h.deliverToNode(nd, 0, pkt)
					}
				}
			})
			continue
		}
		idx := int(o.Dest.Node) - 1
		if idx < 0 || idx >= len(h.nodes) {
			continue
		}
		dst := h.nodes[idx]
		delay := h.cfg.Delay
		if !dst.head {
			delay += h.cfg.LeafDelay
		}
		pkt := o.Pkt.Clone()
		h.Engine.At(now+delay, func() { h.deliverToNode(dst, 0, pkt) })
	}
}

// flushNode routes one receiver's output: feedback to the sender,
// repair multicast into the node's own subtree, and repair-plane
// unicast to its explicit destination.
func (h *Hierarchy) flushNode(nd *hNode, now sim.Time) {
	delayUp := h.cfg.Delay
	if !nd.head {
		delayUp += h.cfg.LeafDelay
	}
	for _, p := range nd.M.Outgoing() {
		pkt := p
		from := nd.id
		h.Engine.At(now+delayUp, func() {
			t := h.Engine.Now()
			h.SenderFeedback++
			h.snd.HandlePacket(t, from, pkt)
			h.flushSender(t)
		})
	}
	for _, p := range nd.M.OutgoingMulticast() {
		// A head's repair reaches only its own subtree — that scoping is
		// the whole point of the tier. (Leaves never multicast: local
		// recovery is off.)
		pkt := p
		tree := nd.tree
		self := nd
		h.Engine.At(now+h.cfg.LeafDelay, func() {
			for _, leaf := range h.leaves(tree) {
				if leaf != self {
					h.deliverToNode(leaf, self.id, pkt)
				}
			}
		})
	}
	for _, a := range nd.M.OutgoingAddressed() {
		idx := int(a.To) - 1
		if idx < 0 || idx >= len(h.nodes) {
			continue
		}
		dst := h.nodes[idx]
		pkt := a.Pkt
		from := nd.id
		h.Engine.At(now+h.cfg.LeafDelay, func() { h.deliverToNode(dst, from, pkt) })
	}
}

func (h *Hierarchy) deliverToNode(nd *hNode, from packet.NodeID, p *packet.Packet) {
	t := h.Engine.Now()
	nd.M.HandleFrom(t, from, p)
	h.drainReads(nd, t)
	h.flushNode(nd, t)
}

func (h *Hierarchy) drainReads(nd *hNode, now sim.Time) {
	for {
		m, err := nd.M.Read(now, h.readBuf)
		if m > 0 {
			if i := app.VerifyPattern(h.readBuf[:m], nd.verifyOff); i >= 0 {
				nd.BadBytes++
			}
			nd.verifyOff += int64(m)
			nd.Received += int64(m)
		}
		if nd.M.FinDelivered() && !nd.Finished {
			nd.Finished = true
			nd.FinishedAt = now
			h.finished++
		}
		if err != nil || m == 0 {
			return
		}
	}
}

func (h *Hierarchy) done() bool {
	return h.snd.Done() && h.finished == len(h.nodes)
}

// Run drives the simulation until the transfer completes or limit
// elapses, returning a Result over all nodes.
func (h *Hierarchy) Run(limit sim.Time) Result {
	h.Engine.At(jiffy, h.tick)
	for h.Engine.Now() < limit && !h.done() {
		if !h.Engine.Step() {
			break
		}
	}
	res := Result{Completed: true, NICDrops: h.Drops}
	for _, nd := range h.nodes {
		if !nd.Finished {
			res.Completed = false
			continue
		}
		if nd.FinishedAt > res.Duration {
			res.Duration = nd.FinishedAt
		}
		res.Bytes = nd.Received
	}
	return res
}
