// Two-level scale model for the hierarchical repair tier: one sender,
// a row of repair heads, and a large leaf population behind them. The
// full Network model charges per-packet CPU and NIC queueing on every
// host, which is the right fidelity for the paper's Section 5.2 figures
// but makes a 10,000-receiver run intractable; Hierarchy trades the
// host model for fixed one-way delays and per-subtree correlated loss,
// which is exactly what the repair tier's scaling claims are about:
// feedback volume at the sender, suppression at the heads, and
// bit-exact delivery at every leaf.
package netsim

import (
	"repro/internal/app"
	"repro/internal/packet"
	"repro/internal/receiver"
	"repro/internal/repair"
	"repro/internal/sender"
	"repro/internal/seqspace"
	"repro/internal/sim"
)

// HierarchyConfig parametrizes the two-level model.
type HierarchyConfig struct {
	// Heads and LeavesPerHead shape the tree: Heads repair heads, each
	// answering for LeavesPerHead downstream leaves.
	Heads         int
	LeavesPerHead int
	// Flat disables the repair tier: every receiver (heads and leaves
	// alike become plain receivers) reports straight to the sender. The
	// baseline for the feedback-reduction comparison.
	Flat bool

	// Size is the stream length in bytes; Buf the per-socket buffer.
	Size int64
	Buf  int

	// Seed drives every loss stream.
	Seed uint64

	// Delay is the sender↔head one-way delay; LeafDelay the head↔leaf
	// one-way delay. A sender↔leaf path is Delay+LeafDelay.
	Delay     sim.Time
	LeafDelay sim.Time

	// HeadLoss is the per-head loss probability on sender multicast.
	// SubtreeLoss is drawn once per subtree per multicast packet and
	// drops it for every leaf of that subtree at once — the correlated
	// tail-link loss that makes NAK suppression worth having.
	// LeafLoss is the per-leaf uncorrelated residue.
	HeadLoss    float64
	SubtreeLoss float64
	LeafLoss    float64

	// Faults schedules crashes, restarts, partitions, and loss bursts
	// (nil = fault-free). Restarted nodes come back with cold machines
	// and re-anchor mid-stream (receiver.Config.JoinInProgress).
	Faults *FaultPlan
	// ReadoptHead propagates to every leaf: a failed-over leaf
	// re-attaches to its head when the head's traffic reappears.
	ReadoptHead bool
	// LeafHeadSilence and LeafNakBudget tune the leaves' failover
	// detection (receiver.Config.HeadSilenceTimeout and
	// HeadNakRetryBudget): zero keeps the receiver defaults, negative
	// disables that detector.
	LeafHeadSilence sim.Time
	LeafNakBudget   int
	// HeadMemberTimeout tunes how long a head keeps a silent leaf in
	// its aggregate (repair.Config.MemberTimeout); zero keeps the
	// repair default. Chaos scenarios shorten it so a partitioned
	// leaf's frozen frontier stops gating the sender's release.
	HeadMemberTimeout sim.Time

	// FecK enables proactive parity on every node (heads and leaves):
	// receivers recover singly-lost groups locally before arming NAK
	// timers. Must match the sender's Config.FECGroupSize.
	FecK int
}

// hNode is one simulated receiver host in the hierarchy.
type hNode struct {
	M    *receiver.Receiver
	id   packet.NodeID
	head bool
	tree int // subtree index; head i owns the leaves with tree == i

	// rcfg is the machine's construction config, kept so a restart can
	// rebuild it cold (with JoinInProgress set).
	rcfg    receiver.Config
	crashed bool
	// pendingRebase defers pattern-verification re-anchoring until the
	// rebuilt machine reports its JoinInProgress anchor point.
	pendingRebase bool

	Received   int64
	BadBytes   int64
	verifyOff  int64
	Finished   bool
	FinishedAt sim.Time
}

// Crashed reports whether the node is currently down.
func (nd *hNode) Crashed() bool { return nd.crashed }

// ID returns the node's simulated unicast address.
func (nd *hNode) ID() packet.NodeID { return nd.id }

// IsHead reports whether the node was built as a repair head.
func (nd *hNode) IsHead() bool { return nd.head }

// Hierarchy owns the two-level simulation.
type Hierarchy struct {
	Engine *sim.Engine
	cfg    HierarchyConfig

	snd     *sender.Sender
	source  app.Source
	closed  bool
	pending []byte

	nodes    []*hNode // heads first (index 0..Heads-1), then leaves
	finished int
	// base is the size of the constructed topology; nodes appended later
	// by AddLeaf live past it (see eachLeaf).
	base int
	// crashedUnfinished counts nodes that are down and had not finished;
	// done() excludes them, so a run can complete around a dead host.
	crashedUnfinished int

	faults *faultState
	// mss and initialSeq are the sender's stream geometry, kept to
	// translate a restarted node's rebase anchor into a byte offset.
	mss        int
	initialSeq seqspace.Seq

	headLoss    *sim.RNG
	subtreeLoss *sim.RNG
	leafLoss    *sim.RNG

	// SenderFeedback counts feedback packets delivered to the sender —
	// the quantity the repair tier exists to collapse.
	SenderFeedback int64
	// Drops counts simulated multicast losses.
	Drops int64

	// readBuf is shared across drains; the engine is single-threaded.
	readBuf []byte
}

// NewHierarchy builds the sender, heads and leaves. Receiver IDs are
// 1-based indexes into the node slice, heads first, so head i (0-based)
// has NodeID i+1 and its leaves follow all heads.
func NewHierarchy(cfg HierarchyConfig, scfg sender.Config) *Hierarchy {
	if cfg.Heads <= 0 {
		panic("netsim: hierarchy needs heads")
	}
	h := &Hierarchy{
		Engine:  &sim.Engine{},
		cfg:     cfg,
		source:  app.NewMemorySource(cfg.Size),
		readBuf: make([]byte, 64<<10),
	}
	rng := sim.NewRNG(cfg.Seed)
	h.headLoss = rng.Stream(1)
	h.subtreeLoss = rng.Stream(2)
	h.leafLoss = rng.Stream(3)
	// Derived only when a plan exists: Stream consumes parent RNG state,
	// and fault-free runs must draw identically to earlier builds.
	if cfg.Faults != nil && len(cfg.Faults.Events) > 0 {
		h.faults = newFaultState(cfg.Faults, rng.Stream(4))
	}

	h.mss = scfg.MSS
	if h.mss <= 0 {
		h.mss = 1400 // the sender.Config default
	}
	h.initialSeq = scfg.InitialSeq
	h.snd = sender.New(scfg)

	total := cfg.Heads * (1 + cfg.LeavesPerHead)
	h.nodes = make([]*hNode, 0, total)
	for i := 0; i < cfg.Heads; i++ {
		id := packet.NodeID(i + 1)
		rcfg := receiver.Config{LocalAddr: id, RcvBuf: cfg.Buf, Mode: receiver.HRMC, FECGroupSize: cfg.FecK}
		if !cfg.Flat {
			rcfg.Head = &repair.Config{MemberTimeout: cfg.HeadMemberTimeout}
		}
		h.nodes = append(h.nodes, &hNode{M: receiver.New(rcfg), id: id, head: true, tree: i, rcfg: rcfg})
	}
	for i := 0; i < cfg.Heads; i++ {
		for j := 0; j < cfg.LeavesPerHead; j++ {
			id := packet.NodeID(len(h.nodes) + 1)
			rcfg := h.leafConfig(id, i)
			h.nodes = append(h.nodes, &hNode{M: receiver.New(rcfg), id: id, tree: i, rcfg: rcfg})
		}
	}
	h.base = len(h.nodes)
	if h.faults != nil {
		h.faults.onCrash = h.onCrash
		h.faults.onRestart = h.onRestart
	}
	return h
}

// leafConfig builds one leaf's receiver config, applying the model-wide
// failover knobs.
func (h *Hierarchy) leafConfig(id packet.NodeID, tree int) receiver.Config {
	rcfg := receiver.Config{LocalAddr: id, RcvBuf: h.cfg.Buf, Mode: receiver.HRMC, FECGroupSize: h.cfg.FecK}
	if !h.cfg.Flat {
		rcfg.RepairHead = packet.NodeID(tree + 1)
		rcfg.ReadoptHead = h.cfg.ReadoptHead
		rcfg.HeadSilenceTimeout = h.cfg.LeafHeadSilence
		rcfg.HeadNakRetryBudget = h.cfg.LeafNakBudget
	}
	return rcfg
}

// AddLeaf joins a fresh leaf to subtree tree mid-run (the flash-crowd
// scenario): the new machine anchors to the in-progress stream
// (JoinInProgress) and its pattern verification starts at the anchor.
// Call from a scheduled event, not concurrently with the engine.
func (h *Hierarchy) AddLeaf(tree int) *hNode {
	id := packet.NodeID(len(h.nodes) + 1)
	rcfg := h.leafConfig(id, tree)
	rcfg.JoinInProgress = true
	nd := &hNode{M: receiver.New(rcfg), id: id, tree: tree, rcfg: rcfg, pendingRebase: true}
	h.nodes = append(h.nodes, nd)
	return nd
}

// onCrash marks a node dead. Its machine keeps its state (useless — a
// restart rebuilds cold) but stops being ticked or delivered to.
func (h *Hierarchy) onCrash(node packet.NodeID) {
	idx := int(node) - 1
	if idx < 0 || idx >= len(h.nodes) {
		return
	}
	nd := h.nodes[idx]
	if nd.crashed {
		return
	}
	nd.crashed = true
	if !nd.Finished {
		h.crashedUnfinished++
	}
}

// onRestart revives a crashed node with a cold machine: empty windows,
// no retained repair state, JoinInProgress so it anchors mid-stream.
// Delivery accounting restarts from the anchor.
func (h *Hierarchy) onRestart(node packet.NodeID) {
	idx := int(node) - 1
	if idx < 0 || idx >= len(h.nodes) {
		return
	}
	nd := h.nodes[idx]
	if !nd.crashed {
		return
	}
	nd.crashed = false
	if !nd.Finished {
		h.crashedUnfinished--
	} else {
		// Restarting a finished node re-opens its delivery: it must
		// finish again from its new anchor.
		h.finished--
	}
	rcfg := nd.rcfg
	rcfg.JoinInProgress = true
	nd.M = receiver.New(rcfg)
	nd.Received, nd.BadBytes, nd.verifyOff = 0, 0, 0
	nd.Finished, nd.FinishedAt = false, 0
	nd.pendingRebase = true
}

// Sender returns the sender machine (for assertions).
func (h *Hierarchy) Sender() *sender.Sender { return h.snd }

// FaultDrops returns how many packets the fault plane's loss bursts
// destroyed (zero without a plan).
func (h *Hierarchy) FaultDrops() int64 {
	if h.faults == nil {
		return 0
	}
	return h.faults.Drops
}

// Nodes returns all receiver nodes, heads first.
func (h *Hierarchy) Nodes() []*hNode { return h.nodes }

// eachLeaf visits the leaf nodes of subtree tree: the constructed block
// plus any leaves AddLeaf appended mid-run.
func (h *Hierarchy) eachLeaf(tree int, fn func(*hNode)) {
	start := h.cfg.Heads + tree*h.cfg.LeavesPerHead
	for _, nd := range h.nodes[start : start+h.cfg.LeavesPerHead] {
		fn(nd)
	}
	for _, nd := range h.nodes[h.base:] {
		if nd.tree == tree && !nd.head {
			fn(nd)
		}
	}
}

// tick is the per-jiffy driver: one event advances the sender and every
// receiver, which keeps the event queue small at 10k+ nodes.
func (h *Hierarchy) tick() {
	now := h.Engine.Now()
	h.feedWindow(now)
	if !h.closed && h.source.Remaining() == 0 && len(h.pending) == 0 {
		h.closed = true
		h.snd.Close(now)
	}
	h.snd.Tick(now)
	h.flushSender(now)
	for _, nd := range h.nodes {
		if nd.crashed {
			continue
		}
		nd.M.Advance(now)
		h.drainReads(nd, now)
		h.flushNode(nd, now)
	}
	if !h.done() {
		h.Engine.At(now+jiffy, h.tick)
	}
}

func (h *Hierarchy) feedWindow(now sim.Time) {
	if h.closed {
		return
	}
	for len(h.pending) > 0 {
		w := h.snd.Write(now, h.pending)
		h.pending = h.pending[w:]
		if w == 0 {
			return
		}
	}
	for {
		avail := h.source.Available(now)
		if avail == 0 {
			return
		}
		buf := make([]byte, minInt(avail, 64<<10))
		m := h.source.Produce(now, buf)
		if m == 0 {
			return
		}
		buf = buf[:m]
		w := h.snd.Write(now, buf)
		if w < m {
			h.pending = buf[w:]
			return
		}
	}
}

// flushSender routes the sender's outgoing packets: multicast fans out
// to heads at +Delay and to leaves at +Delay+LeafDelay with the loss
// model applied; unicast goes to its node with the path delay.
func (h *Hierarchy) flushSender(now sim.Time) {
	for _, o := range h.snd.Outgoing() {
		if o.Dest.Multicast {
			// One clone shared by every receiver: nothing in this model
			// recycles packets (no pool ownership), windows only read the
			// stored payload, and repairs are rebuilt as fresh copies, so
			// aliasing one packet across 10k receive windows is safe and
			// is what makes the scale affordable.
			pkt := o.Pkt.Clone()
			h.Engine.At(now+h.cfg.Delay, func() {
				for _, nd := range h.nodes[:h.cfg.Heads] {
					if h.headLoss.Bool(h.cfg.HeadLoss) {
						h.Drops++
						continue
					}
					h.deliverToNode(nd, 0, pkt)
				}
			})
			h.Engine.At(now+h.cfg.Delay+h.cfg.LeafDelay, func() {
				for tree := 0; tree < h.cfg.Heads; tree++ {
					if h.subtreeLoss.Bool(h.cfg.SubtreeLoss) {
						h.Drops += int64(h.cfg.LeavesPerHead)
						continue
					}
					h.eachLeaf(tree, func(nd *hNode) {
						if h.leafLoss.Bool(h.cfg.LeafLoss) {
							h.Drops++
							return
						}
						h.deliverToNode(nd, 0, pkt)
					})
				}
			})
			continue
		}
		idx := int(o.Dest.Node) - 1
		if idx < 0 || idx >= len(h.nodes) {
			continue
		}
		dst := h.nodes[idx]
		delay := h.cfg.Delay
		if !dst.head {
			delay += h.cfg.LeafDelay
		}
		pkt := o.Pkt.Clone()
		h.Engine.At(now+delay, func() { h.deliverToNode(dst, 0, pkt) })
	}
}

// flushNode routes one receiver's output: feedback to the sender,
// repair multicast into the node's own subtree, and repair-plane
// unicast to its explicit destination.
func (h *Hierarchy) flushNode(nd *hNode, now sim.Time) {
	delayUp := h.cfg.Delay
	if !nd.head {
		delayUp += h.cfg.LeafDelay
	}
	for _, p := range nd.M.Outgoing() {
		pkt := p
		from := nd.id
		h.Engine.At(now+delayUp, func() {
			t := h.Engine.Now()
			if h.faults.Blocked(t, from, 0) {
				return
			}
			h.SenderFeedback++
			h.snd.HandlePacket(t, from, pkt)
			h.flushSender(t)
		})
	}
	for _, p := range nd.M.OutgoingMulticast() {
		// Subtree-scoped multicast: a head's repairs and declines reach
		// only its own subtree — that scoping is the whole point of the
		// tier. A failed-over leaf's multicast (a HEAD_DECLINE relayed
		// before failover) also stays within its subtree.
		pkt := p
		tree := nd.tree
		self := nd
		h.Engine.At(now+h.cfg.LeafDelay, func() {
			h.eachLeaf(tree, func(leaf *hNode) {
				if leaf != self {
					h.deliverToNode(leaf, self.id, pkt)
				}
			})
		})
	}
	for _, a := range nd.M.OutgoingAddressed() {
		idx := int(a.To) - 1
		if idx < 0 || idx >= len(h.nodes) {
			continue
		}
		dst := h.nodes[idx]
		pkt := a.Pkt
		from := nd.id
		h.Engine.At(now+h.cfg.LeafDelay, func() { h.deliverToNode(dst, from, pkt) })
	}
}

func (h *Hierarchy) deliverToNode(nd *hNode, from packet.NodeID, p *packet.Packet) {
	t := h.Engine.Now()
	if nd.crashed || h.faults.Blocked(t, from, nd.id) {
		return
	}
	nd.M.HandleFrom(t, from, p)
	h.drainReads(nd, t)
	h.flushNode(nd, t)
}

func (h *Hierarchy) drainReads(nd *hNode, now sim.Time) {
	if nd.pendingRebase {
		// A mid-stream joiner (restart or flash crowd) delivers from its
		// anchor, not from byte zero: translate the anchor sequence into
		// a byte offset. Exact only while every packet before the anchor
		// carried MSS bytes — the sender's 64 KiB feed buffer guarantees
		// that when MSS divides it; chaos scenarios pick such an MSS.
		rb, ok := nd.M.RebasedAt()
		if !ok {
			return // nothing readable before the anchor exists
		}
		nd.verifyOff = int64(seqspace.Diff(rb, h.initialSeq)) * int64(h.mss)
		nd.pendingRebase = false
	}
	for {
		m, err := nd.M.Read(now, h.readBuf)
		if m > 0 {
			if i := app.VerifyPattern(h.readBuf[:m], nd.verifyOff); i >= 0 {
				nd.BadBytes++
			}
			nd.verifyOff += int64(m)
			nd.Received += int64(m)
		}
		if nd.M.FinDelivered() && !nd.Finished {
			nd.Finished = true
			nd.FinishedAt = now
			h.finished++
		}
		if err != nil || m == 0 {
			return
		}
	}
}

func (h *Hierarchy) done() bool {
	// Crashed nodes are excluded: the run completes around a dead host.
	return h.snd.Done() && h.finished+h.crashedUnfinished == len(h.nodes)
}

// Run drives the simulation until the transfer completes or limit
// elapses, returning a Result over all nodes.
func (h *Hierarchy) Run(limit sim.Time) Result {
	h.faults.install(h.Engine, h.cfg.Faults)
	h.Engine.At(jiffy, h.tick)
	for h.Engine.Now() < limit && !h.done() {
		if !h.Engine.Step() {
			break
		}
	}
	res := Result{Completed: true, NICDrops: h.Drops}
	for _, nd := range h.nodes {
		if !nd.Finished {
			// A node down at the end of the run does not count against
			// completion; every live node must have finished.
			if !nd.crashed {
				res.Completed = false
			}
			continue
		}
		if nd.FinishedAt > res.Duration {
			res.Duration = nd.FinishedAt
		}
		res.Bytes = nd.Received
	}
	return res
}
