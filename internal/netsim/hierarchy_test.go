package netsim

import (
	"testing"

	"repro/internal/rate"
	"repro/internal/sender"
	"repro/internal/sim"
)

// hierarchyTransfer runs the two-level model and returns it with the
// run result. The same topology and loss model serve the hierarchical
// and the flat (baseline) configuration.
func hierarchyTransfer(t *testing.T, flat bool, heads, leavesPerHead int, size int64, seed uint64) (*Hierarchy, Result) {
	t.Helper()
	rcfg := rate.DefaultConfig()
	rcfg.MaxRate = Rate100Mbps
	h := NewHierarchy(HierarchyConfig{
		Heads:         heads,
		LeavesPerHead: leavesPerHead,
		Flat:          flat,
		Size:          size,
		Buf:           256 << 10,
		Seed:          seed,
		Delay:         10 * sim.Millisecond,
		LeafDelay:     2 * sim.Millisecond,
		HeadLoss:      0.01,
		SubtreeLoss:   0.02,
		LeafLoss:      0.005,
	}, sender.Config{
		SndBuf: 256 << 10,
		Mode:   sender.HRMC,
		Rate:   rcfg,
	})
	res := h.Run(120 * sim.Second)
	return h, res
}

// TestHierarchyScale is the acceptance scenario for the repair tier:
// 10,000+ receivers behind 100 repair heads complete a lossy transfer
// bit-exact while the sender tracks only the heads, and the feedback
// the sender receives shrinks by an order of magnitude against the
// same population reporting flat.
func TestHierarchyScale(t *testing.T) {
	const (
		heads  = 100
		leaves = 100 // per head: 100 + 100*100 = 10,100 receivers
		size   = 96 << 10
	)
	hier, res := hierarchyTransfer(t, false, heads, leaves, size, 11)
	if !res.Completed {
		t.Fatal("hierarchical transfer did not complete")
	}
	if res.NICDrops == 0 {
		t.Fatal("loss model produced no drops; test is vacuous")
	}
	for _, nd := range hier.Nodes() {
		if nd.Received != size || nd.BadBytes != 0 {
			t.Fatalf("node %d delivered %d bytes (%d bad), want %d exact",
				nd.id, nd.Received, nd.BadBytes, size)
		}
	}

	// O(heads) sender state: only heads ever enter the membership table.
	if mj := hier.Sender().MaxJoined(); mj > heads+2 {
		t.Errorf("sender tracked %d members, want <= heads+2 = %d", mj, heads+2)
	}

	// The repair tier actually worked, not just idled: heads answered
	// downstream requests, suppressed duplicates from correlated subtree
	// loss, and aggregated their subtrees' state.
	var answered, suppressed, escalated, aggs int64
	for _, nd := range hier.Nodes()[:heads] {
		st := nd.M.Stats()
		answered += st.HeadNaksAnswered
		suppressed += st.HeadNaksSuppressed
		escalated += st.HeadNaksEscalated
		aggs += st.AggUpdatesSent
	}
	if answered == 0 {
		t.Error("no HEAD_NAK was answered by any head")
	}
	if suppressed == 0 {
		t.Error("correlated subtree loss suppressed no duplicate HEAD_NAKs")
	}
	if aggs == 0 {
		t.Error("heads sent no AGG_UPDATEs")
	}
	t.Logf("hier: feedback=%d answered=%d suppressed=%d escalated=%d aggs=%d maxJoined=%d",
		hier.SenderFeedback, answered, suppressed, escalated, aggs, hier.Sender().MaxJoined())

	// Baseline: same tree, flat reporting.
	flat, fres := hierarchyTransfer(t, true, heads, leaves, size, 11)
	if !fres.Completed {
		t.Fatal("flat transfer did not complete")
	}
	for _, nd := range flat.Nodes() {
		if nd.Received != size || nd.BadBytes != 0 {
			t.Fatalf("flat node %d delivered %d bytes (%d bad), want %d exact",
				nd.id, nd.Received, nd.BadBytes, size)
		}
	}
	t.Logf("flat: feedback=%d maxJoined=%d", flat.SenderFeedback, flat.Sender().MaxJoined())
	if hier.SenderFeedback == 0 {
		t.Fatal("hierarchical run recorded no sender feedback at all")
	}
	if ratio := float64(flat.SenderFeedback) / float64(hier.SenderFeedback); ratio < 10 {
		t.Errorf("sender feedback reduced only %.1fx (flat %d, hier %d), want >= 10x",
			ratio, flat.SenderFeedback, hier.SenderFeedback)
	}
}

// TestHierarchySmallTree exercises the same machinery at a size cheap
// enough for -race and repeated runs: every leaf still gets an exact
// copy and the sender still tracks only the heads.
func TestHierarchySmallTree(t *testing.T) {
	const (
		heads  = 4
		leaves = 8
		size   = 64 << 10
	)
	hier, res := hierarchyTransfer(t, false, heads, leaves, size, 3)
	if !res.Completed {
		t.Fatal("transfer did not complete")
	}
	for _, nd := range hier.Nodes() {
		if nd.Received != size || nd.BadBytes != 0 {
			t.Fatalf("node %d delivered %d bytes (%d bad), want %d exact",
				nd.id, nd.Received, nd.BadBytes, size)
		}
	}
	if mj := hier.Sender().MaxJoined(); mj > heads+2 {
		t.Errorf("sender tracked %d members, want <= %d", mj, heads+2)
	}
}
