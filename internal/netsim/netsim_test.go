package netsim

import (
	"testing"

	"repro/internal/app"
	"repro/internal/rate"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/sim"
)

// buildTransfer wires a sender and n receivers in group g for a transfer
// of size bytes with per-socket buffers of buf bytes.
func buildTransfer(seed uint64, lineRate float64, n int, g Group, size int64, buf int, mode sender.Mode) *Network {
	cfg := DefaultConfig(lineRate, seed)
	net := New(cfg)
	rcfg := rate.DefaultConfig()
	rcfg.MaxRate = lineRate
	s := sender.New(sender.Config{
		SndBuf:            buf,
		Mode:              mode,
		Rate:              rcfg,
		ExpectedReceivers: n,
	})
	net.AddSender(s, app.NewMemorySource(size))
	rmode := receiver.HRMC
	if mode == sender.RMC {
		rmode = receiver.RMC
	}
	for i := 0; i < n; i++ {
		r := receiver.New(receiver.Config{
			RcvBuf: buf,
			Mode:   rmode,
		})
		net.AddReceiver(r, g, app.MemorySink{})
	}
	return net
}

func TestLosslessTransferDeliversEverything(t *testing.T) {
	lossless := Group{Name: "L", Delay: 2 * sim.Millisecond, Loss: 0}
	net := buildTransfer(1, Rate10Mbps, 3, lossless, 1<<20, 256<<10, sender.HRMC)
	res := net.Run(120 * sim.Second)
	if !res.Completed {
		t.Fatal("transfer did not complete")
	}
	for i, r := range net.Receivers() {
		if r.Received != 1<<20 {
			t.Errorf("receiver %d delivered %d bytes, want %d", i, r.Received, 1<<20)
		}
		if r.BadBytes != 0 {
			t.Errorf("receiver %d saw %d corrupted bytes", i, r.BadBytes)
		}
		if r.M.Stats().NaksSent != 0 {
			t.Errorf("receiver %d sent %d NAKs on a lossless link", i, r.M.Stats().NaksSent)
		}
	}
	if res.ThroughputMbps() <= 0.5 {
		t.Errorf("throughput %.2f Mbps is implausibly low", res.ThroughputMbps())
	}
	if res.ThroughputMbps() > 10 {
		t.Errorf("throughput %.2f Mbps exceeds the 10 Mbps line", res.ThroughputMbps())
	}
}

// The paper's central claim: H-RMC provides 100% reliability even with
// small kernel buffers and a lossy wide-area path.
func TestReliabilityUnderWANLoss(t *testing.T) {
	net := buildTransfer(7, Rate10Mbps, 4, GroupC, 512<<10, 64<<10, sender.HRMC)
	res := net.Run(600 * sim.Second)
	if !res.Completed {
		t.Fatal("H-RMC transfer did not complete under 2% loss")
	}
	totalDrops := res.NICDrops + res.RouterDrops
	if totalDrops == 0 {
		t.Fatal("loss model produced no drops; test is vacuous")
	}
	for i, r := range net.Receivers() {
		if r.Received != 512<<10 || r.BadBytes != 0 {
			t.Errorf("receiver %d: %d bytes, %d bad", i, r.Received, r.BadBytes)
		}
	}
	// Recovery must actually have happened.
	if net.Sender().M.Stats().Retransmissions == 0 {
		t.Error("no retransmissions despite drops")
	}
	// The H-RMC invariant: no NAK ever arrives for released data.
	if net.Sender().M.Stats().NakErrsSent != 0 {
		t.Errorf("H-RMC sent %d NAK_ERRs — released data a receiver needed", net.Sender().M.Stats().NakErrsSent)
	}
}

func TestReliabilityTinyBuffersHighLoss(t *testing.T) {
	// 16 KB buffers (≈11 packets) and 2% loss, with receivers whose
	// update period is pinned far beyond the sender's hold time: the
	// stop-and-wait regime where probes must do the heavy lifting.
	cfg := DefaultConfig(Rate10Mbps, 3)
	net := New(cfg)
	rcfg := rate.DefaultConfig()
	rcfg.MaxRate = Rate10Mbps
	s := sender.New(sender.Config{
		SndBuf: 16 << 10, Rate: rcfg, ExpectedReceivers: 3,
	})
	net.AddSender(s, app.NewMemorySource(128<<10))
	for i := 0; i < 3; i++ {
		r := receiver.New(receiver.Config{
			RcvBuf:              16 << 10,
			InitialUpdatePeriod: 30 * sim.Second,
			MinUpdatePeriod:     30 * sim.Second,
			MaxUpdatePeriod:     30 * sim.Second,
		})
		net.AddReceiver(r, GroupC, app.MemorySink{})
	}
	res := net.Run(600 * sim.Second)
	if !res.Completed {
		t.Fatal("transfer did not complete with tiny buffers")
	}
	for i, r := range net.Receivers() {
		if r.Received != 128<<10 || r.BadBytes != 0 {
			t.Errorf("receiver %d: %d bytes, %d bad", i, r.Received, r.BadBytes)
		}
	}
	if net.Sender().M.Stats().ProbesSent == 0 {
		t.Error("tiny-buffer run sent no probes; release gating untested")
	}
	if net.Sender().M.Stats().NakErrsSent != 0 {
		t.Error("H-RMC violated the release invariant")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, int64) {
		net := buildTransfer(42, Rate10Mbps, 3, GroupB, 256<<10, 64<<10, sender.HRMC)
		res := net.Run(600 * sim.Second)
		return res.Duration, res.NICDrops + res.RouterDrops
	}
	d1, l1 := run()
	d2, l2 := run()
	if d1 != d2 || l1 != l2 {
		t.Errorf("same seed diverged: (%v,%d) vs (%v,%d)", d1, l1, d2, l2)
	}
	net := buildTransfer(43, Rate10Mbps, 3, GroupB, 256<<10, 64<<10, sender.HRMC)
	res := net.Run(600 * sim.Second)
	if res.Duration == d1 {
		t.Log("different seeds coincided (possible but unlikely)")
	}
}

func TestRMCBaselineCompletesOnCleanLAN(t *testing.T) {
	net := buildTransfer(5, Rate10Mbps, 2, GroupA, 512<<10, 128<<10, sender.RMC)
	res := net.Run(300 * sim.Second)
	if !res.Completed {
		t.Fatal("RMC transfer did not complete on a near-lossless LAN")
	}
	for i, r := range net.Receivers() {
		if r.Received != 512<<10 || r.BadBytes != 0 {
			t.Errorf("receiver %d: %d bytes, %d bad", i, r.Received, r.BadBytes)
		}
	}
	// RMC receivers send no UPDATEs and answer no probes.
	for _, r := range net.Receivers() {
		if r.M.Stats().ProbesReceived != 0 {
			t.Error("RMC receiver processed a probe")
		}
	}
}

func TestUpdatesGiveSenderCompleteInformation(t *testing.T) {
	// The Figure 3 contrast in miniature: on a low-loss network the
	// H-RMC sender has complete receiver information at far more release
	// points than the RMC sender, because updates flow even when NAKs do
	// not.
	run := func(mode sender.Mode) float64 {
		net := buildTransfer(11, Rate10Mbps, 5, GroupA, 1<<20, 128<<10, mode)
		res := net.Run(600 * sim.Second)
		if !res.Completed {
			t.Fatalf("%v run did not complete", mode)
		}
		return net.Sender().M.Stats().ReleaseInfoRatio()
	}
	rmc := run(sender.RMC)
	hrmc := run(sender.HRMC)
	if hrmc <= rmc {
		t.Errorf("release-info ratio: H-RMC %.3f <= RMC %.3f; updates had no effect", hrmc, rmc)
	}
	if hrmc < 0.5 {
		t.Errorf("H-RMC release-info ratio %.3f is implausibly low on a clean LAN", hrmc)
	}
}

func TestThroughputGrowsWithBufferSize(t *testing.T) {
	tp := func(buf int) float64 {
		net := buildTransfer(9, Rate10Mbps, 3, GroupA, 2<<20, buf, sender.HRMC)
		res := net.Run(600 * sim.Second)
		if !res.Completed {
			t.Fatalf("run with %dK buffers did not complete", buf>>10)
		}
		return res.ThroughputMbps()
	}
	small := tp(16 << 10)
	large := tp(512 << 10)
	if large <= small {
		t.Errorf("throughput did not grow with buffer size: %0.2f (16K) vs %0.2f (512K)", small, large)
	}
}

func TestHeterogeneousGroupsAdaptToSlowest(t *testing.T) {
	// Test 4/5 shape: mixing in wide-area receivers pulls throughput
	// down toward the WAN number.
	run := func(mk func(net *Network)) float64 {
		cfg := DefaultConfig(Rate10Mbps, 21)
		net := New(cfg)
		rcfg := rate.DefaultConfig()
		rcfg.MaxRate = Rate10Mbps
		s := sender.New(sender.Config{SndBuf: 256 << 10, Rate: rcfg, ExpectedReceivers: 4})
		net.AddSender(s, app.NewMemorySource(1<<20))
		mk(net)
		res := net.Run(600 * sim.Second)
		if !res.Completed {
			t.Fatal("heterogeneous run did not complete")
		}
		return res.ThroughputMbps()
	}
	addR := func(net *Network, g Group) {
		net.AddReceiver(receiver.New(receiver.Config{RcvBuf: 256 << 10}), g, app.MemorySink{})
	}
	allB := run(func(net *Network) {
		for i := 0; i < 4; i++ {
			addR(net, GroupB)
		}
	})
	mixed := run(func(net *Network) {
		addR(net, GroupB)
		addR(net, GroupB)
		addR(net, GroupB)
		addR(net, GroupC)
	})
	if mixed >= allB {
		t.Errorf("adding a WAN receiver did not reduce throughput: mixed %.2f >= allB %.2f", mixed, allB)
	}
}

func TestDiskSinkSlowsButCompletes(t *testing.T) {
	cfg := DefaultConfig(Rate10Mbps, 31)
	net := New(cfg)
	rcfg := rate.DefaultConfig()
	rcfg.MaxRate = Rate10Mbps
	s := sender.New(sender.Config{SndBuf: 128 << 10, Rate: rcfg, ExpectedReceivers: 2})
	diskRng := sim.NewRNG(99)
	net.AddSender(s, app.NewDiskSource(1<<20, app.DefaultDiskConfig(diskRng.Stream(1))))
	for i := 0; i < 2; i++ {
		r := receiver.New(receiver.Config{RcvBuf: 128 << 10})
		net.AddReceiver(r, GroupA, app.NewDiskSink(app.DefaultDiskConfig(diskRng.Stream(uint64(i)+2))))
	}
	res := net.Run(600 * sim.Second)
	if !res.Completed {
		t.Fatal("disk-to-disk transfer did not complete")
	}
	for i, r := range net.Receivers() {
		if r.Received != 1<<20 || r.BadBytes != 0 {
			t.Errorf("receiver %d: %d bytes, %d bad", i, r.Received, r.BadBytes)
		}
	}
}
