package netsim

import (
	"testing"

	"repro/internal/app"
	"repro/internal/packet"
	"repro/internal/rate"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/sim"
)

func TestCPUCostModel(t *testing.T) {
	// The paper's measured host cost: (10 + 0.025·l) µs.
	n := New(DefaultConfig(Rate10Mbps, 1))
	if got := n.cpuCost(0); got != 10*sim.Microsecond {
		t.Errorf("cpuCost(0) = %v, want 10µs", got)
	}
	if got := n.cpuCost(1400); got != 45*sim.Microsecond {
		t.Errorf("cpuCost(1400) = %v, want 45µs", got)
	}
}

func TestHostCPUSerializes(t *testing.T) {
	n := New(DefaultConfig(Rate10Mbps, 1))
	h := host{net: n}
	d1 := h.cpu(0, 1400) // 45µs
	d2 := h.cpu(0, 1400) // queued behind the first
	if d1 != 45*sim.Microsecond {
		t.Errorf("first completion %v", d1)
	}
	if d2 != 90*sim.Microsecond {
		t.Errorf("second completion %v, want serialized 90µs", d2)
	}
	// After idle, no residual queueing.
	d3 := h.cpu(sim.Second, 0)
	if d3 != sim.Second+10*sim.Microsecond {
		t.Errorf("post-idle completion %v", d3)
	}
}

func TestNICServiceRate(t *testing.T) {
	cfg := DefaultConfig(Rate10Mbps, 1)
	n := New(cfg)
	h := host{net: n}
	// 1250 bytes at 1.25 MB/s = exactly 1 ms on the wire.
	exit, dropped := h.nic(0, 1250)
	if dropped {
		t.Fatal("dropped with an empty queue")
	}
	if exit != sim.Millisecond {
		t.Errorf("exit = %v, want 1ms", exit)
	}
	exit2, _ := h.nic(0, 1250)
	if exit2 != 2*sim.Millisecond {
		t.Errorf("second exit = %v, want serialized 2ms", exit2)
	}
}

func TestNICQueueOverflowDrops(t *testing.T) {
	cfg := DefaultConfig(Rate10Mbps, 1)
	cfg.NICQueueBytes = 3000
	n := New(cfg)
	h := host{net: n}
	drops := 0
	for i := 0; i < 5; i++ {
		if _, dropped := h.nic(0, 1000); dropped {
			drops++
		}
	}
	// 3 packets fit the 3000-byte queue at time zero; the rest drop.
	if drops != 2 {
		t.Errorf("drops = %d, want 2", drops)
	}
	if n.NICDrops != 2 {
		t.Errorf("NICDrops counter = %d", n.NICDrops)
	}
	// Once the queue drains (3000 B at 1.25 MB/s = 2.4 ms), room again.
	if _, dropped := h.nic(3*sim.Millisecond, 1000); dropped {
		t.Error("dropped after the queue drained")
	}
}

func TestNICUnboundedQueue(t *testing.T) {
	cfg := DefaultConfig(Rate10Mbps, 1)
	cfg.NICQueueBytes = 0
	n := New(cfg)
	h := host{net: n}
	for i := 0; i < 1000; i++ {
		if _, dropped := h.nic(0, 1500); dropped {
			t.Fatal("unbounded queue dropped")
		}
	}
}

func TestGroupDefinitionsMatchPaper(t *testing.T) {
	if GroupA.Delay != 2*sim.Millisecond || GroupA.Loss != 0.00005 {
		t.Errorf("group A = %+v", GroupA)
	}
	if GroupB.Delay != 20*sim.Millisecond || GroupB.Loss != 0.005 {
		t.Errorf("group B = %+v", GroupB)
	}
	if GroupC.Delay != 100*sim.Millisecond || GroupC.Loss != 0.02 {
		t.Errorf("group C = %+v", GroupC)
	}
	if CorrelatedShare != 0.9 {
		t.Errorf("correlated share = %v, want the paper's 90%%", CorrelatedShare)
	}
}

// TestCorrelatedLossSharedWithinGroup verifies the 90/10 split: when the
// group router drops a multicast packet, every receiver in that group
// misses it together.
func TestCorrelatedLossSharedWithinGroup(t *testing.T) {
	lossy := Group{Name: "X", Delay: sim.Millisecond, Loss: 0.2}
	cfg := DefaultConfig(Rate10Mbps, 5)
	n := New(cfg)
	rcfg := rate.DefaultConfig()
	rcfg.MaxRate = Rate10Mbps
	s := sender.New(sender.Config{SndBuf: 256 << 10, Rate: rcfg, ExpectedReceivers: 4})
	n.AddSender(s, app.NewMemorySource(256<<10))
	for i := 0; i < 4; i++ {
		r := receiver.New(receiver.Config{RcvBuf: 256 << 10})
		n.AddReceiver(r, lossy, app.MemorySink{})
	}
	res := n.Run(600 * sim.Second)
	if !res.Completed {
		t.Fatal("run incomplete")
	}
	if res.RouterDrops == 0 {
		t.Fatal("no correlated drops at 20% loss")
	}
	// With 90% of a 20% loss correlated and only 2% uncorrelated per
	// receiver, router drops (counted once per receiver) must dominate
	// NIC drops.
	if res.RouterDrops < res.NICDrops {
		t.Errorf("correlated drops %d < uncorrelated %d; split inverted", res.RouterDrops, res.NICDrops)
	}
}

func TestDeliveryLatencyFloor(t *testing.T) {
	// One packet, no loss: end-to-end latency is at least group delay +
	// lower-layer delay.
	cfg := DefaultConfig(Rate10Mbps, 3)
	n := New(cfg)
	rcfg := rate.DefaultConfig()
	rcfg.MaxRate = Rate10Mbps
	s := sender.New(sender.Config{SndBuf: 64 << 10, Rate: rcfg, ExpectedReceivers: 1})
	n.AddSender(s, app.NewMemorySource(100))
	clean := Group{Name: "Z", Delay: 30 * sim.Millisecond, Loss: 0}
	r := receiver.New(receiver.Config{RcvBuf: 64 << 10})
	rh := n.AddReceiver(r, clean, app.MemorySink{})
	res := n.Run(60 * sim.Second)
	if !res.Completed {
		t.Fatal("single-packet transfer incomplete")
	}
	// First data can only arrive after one jiffy (first tick) plus the
	// one-way delay.
	if rh.FinishedAt < 40*sim.Millisecond {
		t.Errorf("finished at %v, faster than the physics allow", rh.FinishedAt)
	}
}

func TestResultThroughput(t *testing.T) {
	r := Result{Duration: sim.Second, Bytes: 1250000}
	if got := r.ThroughputMbps(); got != 10 {
		t.Errorf("ThroughputMbps = %v, want 10", got)
	}
	if (Result{}).ThroughputMbps() != 0 {
		t.Error("zero-duration throughput not zero")
	}
}

func TestNetworkStringAndGuards(t *testing.T) {
	n := New(DefaultConfig(Rate100Mbps, 1))
	if n.String() == "" {
		t.Error("empty String()")
	}
	defer func() {
		if recover() == nil {
			t.Error("Start without a sender did not panic")
		}
	}()
	n.Start()
}

func TestSecondSenderPanics(t *testing.T) {
	n := New(DefaultConfig(Rate10Mbps, 1))
	s := sender.New(sender.Config{})
	n.AddSender(s, app.NewMemorySource(1))
	defer func() {
		if recover() == nil {
			t.Error("second AddSender did not panic")
		}
	}()
	n.AddSender(sender.New(sender.Config{}), app.NewMemorySource(1))
}

func TestReceiverNodeIDsAreDense(t *testing.T) {
	n := New(DefaultConfig(Rate10Mbps, 1))
	n.AddSender(sender.New(sender.Config{}), app.NewMemorySource(1))
	var ids []packet.NodeID
	for i := 0; i < 3; i++ {
		rh := n.AddReceiver(receiver.New(receiver.Config{}), GroupA, app.MemorySink{})
		ids = append(ids, rh.id)
	}
	for i, id := range ids {
		if id != packet.NodeID(i+1) {
			t.Errorf("receiver %d has id %v", i, id)
		}
	}
}
