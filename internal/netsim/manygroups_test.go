package netsim

import (
	"testing"

	"repro/internal/sender"
	"repro/internal/sim"
)

// TestManyGroupsPopulation models the thousand-group daemon's workload
// shape in the discrete-event world: a population of independent
// groups — each its own sender, receivers, and loss profile drawn from
// the paper's characteristic groups — all completing reliably. Each
// group is one Network (the model is single-sender by construction);
// what the scenario pins is that per-group protocol cost does not
// depend on the population: NAK and retransmission counts for group i
// running alone equal those of group i inside the population, because
// groups share no state. A regression that couples groups (global
// registries, shared counters misused as per-flow state) breaks the
// equality.
func TestManyGroupsPopulation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const (
		groups = 24
		size   = 128 << 10
		buf    = 64 << 10
	)
	profiles := []Group{GroupA, GroupB, GroupC}

	run := func(i int) (retrans, naks int64) {
		g := profiles[i%len(profiles)]
		net := buildTransfer(uint64(1000+i), Rate10Mbps, 2, g, size, buf, sender.HRMC)
		res := net.Run(600 * sim.Second)
		if !res.Completed {
			t.Fatalf("group %d (%s) did not complete", i, g.Name)
		}
		for j, r := range net.Receivers() {
			if r.Received != size || r.BadBytes != 0 {
				t.Errorf("group %d receiver %d: %d bytes, %d bad", i, j, r.Received, r.BadBytes)
			}
			naks += r.M.Stats().NaksSent
		}
		return net.Sender().M.Stats().Retransmissions, naks
	}

	// Baseline: each group alone.
	type cost struct{ retrans, naks int64 }
	alone := make([]cost, groups)
	for i := 0; i < groups; i++ {
		r, n := run(i)
		alone[i] = cost{r, n}
	}
	// Population: the same groups again, interleaved in one process.
	// Identical seeds must reproduce identical protocol behavior.
	for i := 0; i < groups; i++ {
		r, n := run(i)
		if r != alone[i].retrans || n != alone[i].naks {
			t.Errorf("group %d cost changed inside the population: retrans %d→%d naks %d→%d",
				i, alone[i].retrans, r, alone[i].naks, n)
		}
	}
}
