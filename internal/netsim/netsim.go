// Package netsim is the discrete-event network model of the paper's
// simulation study (Section 5.2): host processes with the measured
// H-RMC processing costs, network-interface processes with finite egress
// queues and uncorrelated loss, and router processes with link-rate
// serialization, characteristic-group delays, multicast duplication and
// correlated loss.
//
// Loss is split 90% correlated (at the group router, shared by all
// receivers of the group) and 10% uncorrelated (at each receiver's
// network interface), following the paper's reading of Yajnik et al.
// that most loss happens on tail links.
package netsim

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/packet"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/seqspace"
	"repro/internal/sim"
)

// Group is a characteristic receiver group (Figure 14(a)).
type Group struct {
	Name string
	// Delay is the one-way network delay between the sender's site and
	// the group.
	Delay sim.Time
	// Loss is the total packet loss probability for receivers in the
	// group (0.02 = 2%).
	Loss float64
}

// The paper's characteristic groups (Figure 14(a)).
var (
	GroupA = Group{Name: "A", Delay: 2 * sim.Millisecond, Loss: 0.00005}
	GroupB = Group{Name: "B", Delay: 20 * sim.Millisecond, Loss: 0.005}
	GroupC = Group{Name: "C", Delay: 100 * sim.Millisecond, Loss: 0.02}
)

// CorrelatedShare is the fraction of loss applied at the group router.
const CorrelatedShare = 0.9

// Config parametrizes the network and host model.
type Config struct {
	// Seed drives every random stream in the simulation.
	Seed uint64
	// LineRate is the link bandwidth in bytes/second (10 Mbps ⇒ 1.25e6).
	LineRate float64
	// NICQueueBytes bounds each host's egress queue; a burst larger than
	// the queue overflows and the excess packets are dropped, which is
	// the paper's explanation for the NAKs of Figure 13. Zero means
	// unbounded.
	NICQueueBytes int
	// PerPacketCPU and PerByteCPU express the measured H-RMC processing
	// cost (10 + 0.025·l) µs; they serialize on the host CPU.
	PerPacketCPU sim.Time
	PerByteCPU   float64 // nanoseconds per payload byte
	// LowerLayerDelay is the measured lower-layer cost (150 µs),
	// modeled as pipeline latency.
	LowerLayerDelay sim.Time

	// Faults schedules crashes, restarts, partitions, and loss bursts
	// against this network (nil = fault-free). A crashed receiver stops
	// processing; a restart rebuilds its machine via the host's Rebuild
	// hook. The sender (NodeID 0) cannot crash in this model.
	Faults *FaultPlan
	// StreamMSS and StreamInitialSeq describe the sender's stream
	// geometry so a rebuilt receiver's pattern verification can
	// re-anchor: a JoinInProgress rebase at sequence s corresponds to
	// byte offset (s − StreamInitialSeq)·StreamMSS. Only consulted when
	// Faults restarts receivers; exact while every pre-anchor packet
	// carries MSS bytes (pick an MSS dividing the 64 KiB feed buffer).
	StreamMSS        int
	StreamInitialSeq seqspace.Seq
}

// DefaultConfig returns the paper's host model on a network of the given
// line rate in bytes/second.
func DefaultConfig(lineRate float64, seed uint64) Config {
	return Config{
		Seed:            seed,
		LineRate:        lineRate,
		NICQueueBytes:   256 << 10,
		PerPacketCPU:    10 * sim.Microsecond,
		PerByteCPU:      25, // 0.025 µs per byte
		LowerLayerDelay: 150 * sim.Microsecond,
	}
}

// Rates for convenience.
const (
	Rate10Mbps  = 10e6 / 8
	Rate100Mbps = 100e6 / 8
)

// Network owns the simulation: one sender host and any number of
// receiver hosts organized in characteristic groups.
type Network struct {
	Engine *sim.Engine
	cfg    Config
	rng    *sim.RNG

	snd  *SenderHost
	rcvs []*ReceiverHost

	// Per-group router serialization and loss streams.
	groups map[string]*groupRouter

	faults *faultState

	// Drop counters.
	NICDrops    int64
	RouterDrops int64
}

type groupRouter struct {
	g    Group
	loss *sim.RNG
}

// New creates an empty network.
func New(cfg Config) *Network {
	if cfg.LineRate <= 0 {
		cfg.LineRate = Rate10Mbps
	}
	n := &Network{
		Engine: &sim.Engine{},
		cfg:    cfg,
		rng:    sim.NewRNG(cfg.Seed),
		groups: make(map[string]*groupRouter),
	}
	// Derive the fault stream only when a plan exists: Stream consumes
	// parent RNG state, and a fault-free run must draw identically to a
	// build without fault support at all.
	if cfg.Faults != nil && len(cfg.Faults.Events) > 0 {
		n.faults = newFaultState(cfg.Faults, n.rng.Stream(99))
		n.faults.onCrash = n.onCrash
		n.faults.onRestart = n.onRestart
	}
	return n
}

// onCrash marks the receiver with the given address as down; its tick
// keeps rescheduling (cheap) but skips all processing.
func (n *Network) onCrash(node packet.NodeID) {
	if r := n.receiverByID(node); r != nil {
		r.crashed = true
	}
}

// onRestart revives a crashed receiver with a cold machine built by its
// Rebuild hook (a restart without Rebuild resumes the old machine — the
// process froze rather than died).
func (n *Network) onRestart(node packet.NodeID) {
	r := n.receiverByID(node)
	if r == nil {
		return
	}
	r.crashed = false
	if r.Rebuild == nil {
		return
	}
	r.M = r.Rebuild()
	r.Received, r.BadBytes, r.verifyOff = 0, 0, 0
	r.Finished, r.FinishedAt = false, 0
	r.pendingRebase = true
}

func (n *Network) receiverByID(node packet.NodeID) *ReceiverHost {
	idx := int(node) - 1
	if idx < 0 || idx >= len(n.rcvs) {
		return nil
	}
	return n.rcvs[idx]
}

func (n *Network) group(g Group) *groupRouter {
	gr, ok := n.groups[g.Name]
	if !ok {
		gr = &groupRouter{g: g, loss: n.rng.Stream(uint64(len(n.groups)) + 101)}
		n.groups[g.Name] = gr
	}
	return gr
}

// cpuCost returns the host protocol-processing cost for a packet of the
// given payload length: (10 + 0.025·l) µs with the default config.
func (n *Network) cpuCost(payloadLen int) sim.Time {
	return n.cfg.PerPacketCPU + sim.Time(n.cfg.PerByteCPU*float64(payloadLen))
}

// host is the shared CPU/NIC state of a simulated machine.
type host struct {
	net     *Network
	id      packet.NodeID
	cpuFree sim.Time
	nicFree sim.Time
}

// cpu reserves CPU time for one packet and returns when processing
// completes.
func (h *host) cpu(now sim.Time, payloadLen int) sim.Time {
	start := now
	if h.cpuFree > start {
		start = h.cpuFree
	}
	done := start + h.net.cpuCost(payloadLen)
	h.cpuFree = done
	return done
}

// nic pushes one packet through the host's egress interface: it drains
// at line rate and drops when the queued backlog exceeds the queue
// bound. It returns the wire-exit time and whether the packet was
// dropped.
func (h *host) nic(now sim.Time, wireBytes int) (sim.Time, bool) {
	if h.nicFree < now {
		h.nicFree = now
	}
	if h.net.cfg.NICQueueBytes > 0 {
		backlog := float64(h.nicFree-now) / float64(sim.Second) * h.net.cfg.LineRate
		if int(backlog)+wireBytes > h.net.cfg.NICQueueBytes {
			h.net.NICDrops++
			return 0, true
		}
	}
	service := sim.Time(float64(wireBytes) / h.net.cfg.LineRate * float64(sim.Second))
	h.nicFree += service
	return h.nicFree, false
}

// SenderHost couples a sender machine with its application source.
type SenderHost struct {
	host
	M      *sender.Sender
	Source app.Source
	closed bool
	// pending holds produced bytes the send window refused; they are
	// written before any new bytes so the stream stays exact.
	pending []byte
}

// ReceiverHost couples a receiver machine with its group and sink.
type ReceiverHost struct {
	host
	M     *receiver.Receiver
	Sink  app.Sink
	Group Group
	rxRng *sim.RNG

	Received   int64 // bytes delivered to the application
	FinishedAt sim.Time
	Finished   bool
	BadBytes   int64 // pattern-verification failures (must stay zero)
	verifyOff  int64
	readBuf    []byte

	// Rebuild constructs a cold replacement machine when a FaultRestart
	// revives this host (typically receiver.New with JoinInProgress set).
	Rebuild func() *receiver.Receiver
	crashed bool
	// pendingRebase defers verification re-anchoring until the rebuilt
	// machine reports its JoinInProgress anchor (see Config.StreamMSS).
	pendingRebase bool
}

// Crashed reports whether the host is currently down.
func (r *ReceiverHost) Crashed() bool { return r.crashed }

// AddSender installs the sender host; only one is supported (the paper's
// protocol is single-source).
func (n *Network) AddSender(m *sender.Sender, src app.Source) *SenderHost {
	if n.snd != nil {
		panic("netsim: second sender")
	}
	s := &SenderHost{host: host{net: n, id: 0}, M: m, Source: src}
	n.snd = s
	return s
}

// AddReceiver installs a receiver host in the given characteristic
// group.
func (n *Network) AddReceiver(m *receiver.Receiver, g Group, sink app.Sink) *ReceiverHost {
	id := packet.NodeID(len(n.rcvs) + 1)
	r := &ReceiverHost{
		host:    host{net: n, id: id},
		M:       m,
		Sink:    sink,
		Group:   g,
		rxRng:   n.rng.Stream(uint64(id) + 1000),
		readBuf: make([]byte, 64<<10),
	}
	n.group(g)
	n.rcvs = append(n.rcvs, r)
	return r
}

// Receivers returns the installed receiver hosts.
func (n *Network) Receivers() []*ReceiverHost { return n.rcvs }

// Sender returns the installed sender host.
func (n *Network) Sender() *SenderHost { return n.snd }

// FaultDrops returns how many packets the fault plane's loss bursts
// destroyed (zero without a plan).
func (n *Network) FaultDrops() int64 {
	if n.faults == nil {
		return 0
	}
	return n.faults.Drops
}

// Start arms the per-jiffy ticks. Call after all hosts are added.
func (n *Network) Start() {
	if n.snd == nil {
		panic("netsim: no sender")
	}
	n.faults.install(n.Engine, n.cfg.Faults)
	n.scheduleSenderTick(jiffy)
	for _, r := range n.rcvs {
		n.scheduleReceiverTick(r, jiffy)
	}
}

const jiffy = 10 * sim.Millisecond

func (n *Network) scheduleSenderTick(at sim.Time) {
	n.Engine.At(at, func() {
		now := n.Engine.Now()
		s := n.snd
		s.feedWindow(now)
		if !s.closed && s.Source.Remaining() == 0 && len(s.pending) == 0 {
			s.closed = true
			s.M.Close(now)
		}
		s.M.Tick(now)
		n.flushSender(now)
		if !n.done() {
			n.scheduleSenderTick(now + jiffy)
		}
	})
}

// feedWindow is the Application Interface: it writes previously refused
// bytes first, then produces fresh data until the window fills or the
// source runs dry.
func (s *SenderHost) feedWindow(now sim.Time) {
	if s.closed {
		return
	}
	for len(s.pending) > 0 {
		w := s.M.Write(now, s.pending)
		s.pending = s.pending[w:]
		if w == 0 {
			return // window full
		}
	}
	for {
		avail := s.Source.Available(now)
		if avail == 0 {
			return
		}
		buf := make([]byte, minInt(avail, 64<<10))
		m := s.Source.Produce(now, buf)
		if m == 0 {
			return
		}
		buf = buf[:m]
		w := s.M.Write(now, buf)
		if w < m {
			s.pending = buf[w:]
			return
		}
	}
}

func (n *Network) scheduleReceiverTick(r *ReceiverHost, at sim.Time) {
	n.Engine.At(at, func() {
		now := n.Engine.Now()
		if r.crashed {
			// Down: no processing, but keep the tick alive so a restart
			// resumes without rescheduling machinery.
			if !n.done() {
				n.scheduleReceiverTick(r, now+jiffy)
			}
			return
		}
		r.M.Advance(now)
		n.drainReads(r, now)
		n.flushReceiver(r, now)
		if !r.M.Done() && !n.done() {
			n.scheduleReceiverTick(r, now+jiffy)
		}
	})
}

// drainReads performs application reads within the sink's budget.
func (n *Network) drainReads(r *ReceiverHost, now sim.Time) {
	if r.pendingRebase {
		rb, ok := r.M.RebasedAt()
		if !ok {
			return // nothing readable before the anchor exists
		}
		r.verifyOff = int64(seqspace.Diff(rb, n.cfg.StreamInitialSeq)) * int64(n.cfg.StreamMSS)
		r.pendingRebase = false
	}
	for {
		budget := r.Sink.Budget(now)
		if budget <= 0 {
			return
		}
		buf := r.readBuf
		if budget < len(buf) {
			buf = buf[:budget]
		}
		m, err := r.M.Read(now, buf)
		if m > 0 {
			if i := app.VerifyPattern(buf[:m], r.verifyOff); i >= 0 {
				r.BadBytes++
			}
			r.verifyOff += int64(m)
			r.Received += int64(m)
			r.Sink.Consume(now, m)
		}
		if r.M.FinDelivered() && !r.Finished {
			r.Finished = true
			r.FinishedAt = now
		}
		if err != nil || m == 0 {
			return
		}
	}
}

// flushSender routes the sender machine's outgoing packets through the
// CPU and NIC models into the network.
func (n *Network) flushSender(now sim.Time) {
	for _, o := range n.snd.M.Outgoing() {
		cpuDone := n.snd.cpu(now, len(o.Pkt.Payload))
		exit, dropped := n.snd.nic(cpuDone, o.Pkt.WireSize())
		if dropped {
			continue
		}
		n.deliverFromSender(exit, o)
	}
}

// deliverFromSender fans a sender packet out to its destinations with
// group delay and loss applied.
func (n *Network) deliverFromSender(exit sim.Time, o sender.Out) {
	if o.Dest.Multicast {
		// One correlated-loss draw per group; uncorrelated per receiver.
		corrLost := make(map[string]bool, len(n.groups))
		for name, gr := range n.groups {
			corrLost[name] = gr.loss.Bool(gr.g.Loss * CorrelatedShare)
		}
		for _, r := range n.rcvs {
			if corrLost[r.Group.Name] {
				n.RouterDrops++
				continue
			}
			n.deliverToReceiver(exit, 0, r, o.Pkt)
		}
		return
	}
	for _, r := range n.rcvs {
		if r.id == o.Dest.Node {
			gr := n.groups[r.Group.Name]
			if gr.loss.Bool(gr.g.Loss * CorrelatedShare) {
				n.RouterDrops++
				return
			}
			n.deliverToReceiver(exit, 0, r, o.Pkt)
			return
		}
	}
}

// deliverToReceiver applies the tail-link model for one receiver: the
// group's one-way delay, the lower-layer latency, uncorrelated loss at
// the receiver NIC, then CPU processing before the protocol sees it.
func (n *Network) deliverToReceiver(exit sim.Time, from packet.NodeID, r *ReceiverHost, p *packet.Packet) {
	if r.rxRng.Bool(r.Group.Loss * (1 - CorrelatedShare)) {
		n.NICDrops++
		return
	}
	arrive := exit + r.Group.Delay + n.cfg.LowerLayerDelay
	pkt := p.Clone()
	n.Engine.At(arrive, func() {
		now := n.Engine.Now()
		if r.crashed || n.faults.Blocked(now, from, r.id) {
			return
		}
		done := r.cpu(now, len(pkt.Payload))
		n.Engine.At(done, func() {
			t := n.Engine.Now()
			if r.crashed {
				return
			}
			r.M.HandleFrom(t, from, pkt)
			n.drainReads(r, t)
			n.flushReceiver(r, t)
		})
	})
}

// flushReceiver routes receiver feedback back to the sender, and — for
// the local-recovery extension — multicast NAKs and repairs to the whole
// group including the sender.
func (n *Network) flushReceiver(r *ReceiverHost, now sim.Time) {
	for _, p := range r.M.OutgoingMulticast() {
		cpuDone := r.cpu(now, len(p.Payload))
		exit, dropped := r.nic(cpuDone, p.WireSize())
		if dropped {
			continue
		}
		// Origin tail link: one correlated draw covers the climb to the
		// backbone.
		gr := n.groups[r.Group.Name]
		if gr.loss.Bool(gr.g.Loss * CorrelatedShare) {
			n.RouterDrops++
			continue
		}
		// Fan out to the sender (delay = origin's tail only) ...
		pkt := p.Clone()
		origin := r
		n.Engine.At(exit+r.Group.Delay+n.cfg.LowerLayerDelay, func() {
			t0 := n.Engine.Now()
			if n.faults.Blocked(t0, origin.id, 0) {
				return
			}
			done := n.snd.cpu(t0, len(pkt.Payload))
			n.Engine.At(done, func() {
				t := n.Engine.Now()
				n.snd.M.HandlePacket(t, origin.id, pkt)
				n.flushSender(t)
			})
		})
		// ... and to every other receiver (origin tail + their tail).
		for _, dst := range n.rcvs {
			if dst == r {
				continue
			}
			dgr := n.groups[dst.Group.Name]
			if dgr.loss.Bool(dgr.g.Loss * CorrelatedShare) {
				n.RouterDrops++
				continue
			}
			n.deliverToReceiver(exit+r.Group.Delay, r.id, dst, p)
		}
	}
	// Repair-plane unicast (hierarchical-recovery extension): leaf→head
	// feedback and head→leaf responses travel receiver-to-receiver —
	// origin tail, then the destination's tail inside deliverToReceiver.
	for _, a := range r.M.OutgoingAddressed() {
		cpuDone := r.cpu(now, len(a.Pkt.Payload))
		exit, dropped := r.nic(cpuDone, a.Pkt.WireSize())
		if dropped {
			continue
		}
		idx := int(a.To) - 1
		if idx < 0 || idx >= len(n.rcvs) {
			continue
		}
		gr := n.groups[r.Group.Name]
		if gr.loss.Bool(gr.g.Loss * CorrelatedShare) {
			n.RouterDrops++
			continue
		}
		n.deliverToReceiver(exit+r.Group.Delay, r.id, n.rcvs[idx], a.Pkt)
	}
	for _, p := range r.M.Outgoing() {
		cpuDone := r.cpu(now, len(p.Payload))
		exit, dropped := r.nic(cpuDone, p.WireSize())
		if dropped {
			continue
		}
		gr := n.groups[r.Group.Name]
		if gr.loss.Bool(gr.g.Loss * CorrelatedShare) {
			n.RouterDrops++
			continue
		}
		if r.rxRng.Bool(r.Group.Loss * (1 - CorrelatedShare)) {
			n.NICDrops++
			continue
		}
		arrive := exit + r.Group.Delay + n.cfg.LowerLayerDelay
		pkt := p.Clone()
		from := r.id
		n.Engine.At(arrive, func() {
			t0 := n.Engine.Now()
			if n.faults.Blocked(t0, from, 0) {
				return
			}
			done := n.snd.cpu(t0, len(pkt.Payload))
			n.Engine.At(done, func() {
				t := n.Engine.Now()
				n.snd.M.HandlePacket(t, from, pkt)
				n.flushSender(t)
			})
		})
	}
}

// done reports whether the whole transfer has completed.
func (n *Network) done() bool {
	if !n.snd.M.Done() {
		return false
	}
	for _, r := range n.rcvs {
		if !r.Finished && !r.crashed {
			return false
		}
	}
	return true
}

// Result summarizes a run.
type Result struct {
	// Duration is when the last receiver finished delivering the stream.
	Duration sim.Time
	// Completed reports whether every receiver finished within the
	// limit.
	Completed bool
	// Bytes is the stream size delivered per receiver.
	Bytes int64
	// NICDrops and RouterDrops count simulated losses.
	NICDrops, RouterDrops int64
}

// ThroughputMbps returns the end-to-end goodput in megabits/second.
func (r Result) ThroughputMbps() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / r.Duration.Seconds() / 1e6
}

// Run drives the simulation until the transfer completes or limit
// elapses.
func (n *Network) Run(limit sim.Time) Result {
	n.Start()
	for n.Engine.Now() < limit && !n.done() {
		if !n.Engine.Step() {
			break
		}
	}
	res := Result{
		Completed:   true,
		NICDrops:    n.NICDrops,
		RouterDrops: n.RouterDrops,
	}
	for _, r := range n.rcvs {
		if !r.Finished {
			// Hosts down at the end of the run don't count against
			// completion; every live host must have finished.
			if !r.crashed {
				res.Completed = false
			}
			continue
		}
		if r.FinishedAt > res.Duration {
			res.Duration = r.FinishedAt
		}
		res.Bytes = r.Received
	}
	return res
}

// String describes the network briefly.
func (n *Network) String() string {
	return fmt.Sprintf("netsim{rate=%.0fMbps receivers=%d}", n.cfg.LineRate*8/1e6, len(n.rcvs))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
