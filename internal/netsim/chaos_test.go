// Chaos scenarios: the fault plane driving the failover machinery
// end-to-end. These are the acceptance tests for repair-head failover —
// a head dying under a 1k+ leaf population mid-flow, a head restarting
// with a cold retained window, and a flash crowd arriving through a
// partition. The TestChaos* names are what the CI chaos job runs under
// -race.
package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/rate"
	"repro/internal/sender"
	"repro/internal/seqspace"
	"repro/internal/sim"
)

// TestChaosFailoverHeadCrash is the headline scenario: 10 repair heads
// front 1,010 leaves, and one head crashes mid-flow. Its leaves must
// detect the silence, fail over to flat mode, re-home their recovery to
// the sender, and the whole run must still complete bit-exact with no
// stalled receiver. The sender, for its part, must notice the head's
// AGG_UPDATE silence and evict the dead entry so release is not gated
// on a ghost forever.
func TestChaosFailoverHeadCrash(t *testing.T) {
	const (
		heads  = 10
		leaves = 101 // per head: 1,010 leaves — the 1k+ acceptance scale
		size   = int64(512 << 10)
	)
	rcfg := rate.DefaultConfig()
	rcfg.MaxRate = Rate100Mbps
	plan := (&FaultPlan{}).CrashAt(600*sim.Millisecond, 1)
	h := NewHierarchy(HierarchyConfig{
		Heads:         heads,
		LeavesPerHead: leaves,
		Size:          size,
		Buf:           256 << 10,
		Seed:          7,
		Delay:         10 * sim.Millisecond,
		LeafDelay:     2 * sim.Millisecond,
		HeadLoss:      0.01,
		SubtreeLoss:   0.02,
		LeafLoss:      0.005,
		Faults:        plan,
		// Fast leaf-side detection so failover happens well inside the
		// sender's release grace window.
		LeafHeadSilence: sim.Second,
		LeafNakBudget:   4,
	}, sender.Config{
		SndBuf:             256 << 10,
		Mode:               sender.HRMC,
		Rate:               rcfg,
		HeadSilenceTimeout: 3 * sim.Second,
		FailoverGrace:      2 * sim.Second,
	})
	res := h.Run(60 * sim.Second)
	if !res.Completed {
		t.Fatal("transfer did not complete around the crashed head")
	}
	if res.NICDrops == 0 {
		t.Fatal("loss model produced no drops; test is vacuous")
	}
	var failovers int64
	for _, nd := range h.Nodes() {
		if nd.Crashed() {
			continue
		}
		if nd.Received != size || nd.BadBytes != 0 {
			t.Fatalf("node %d delivered %d bytes (%d bad), want %d exact",
				nd.ID(), nd.Received, nd.BadBytes, size)
		}
		failovers += nd.M.Stats().HeadFailovers
	}
	if failovers == 0 {
		t.Error("no leaf failed over from the crashed head")
	}
	st := h.Sender().Stats()
	if st.HeadsEvicted < 1 {
		t.Errorf("HeadsEvicted = %d, want >= 1 (silent head)", st.HeadsEvicted)
	}
	t.Logf("failovers=%d headsEvicted=%d orphaned=%d maxJoined=%d nakErrs=%d",
		failovers, st.HeadsEvicted, st.OrphanedLeaves, h.Sender().MaxJoined(), st.NakErrsSent)
}

// TestChaosHeadRestartColdWindow exercises escalate-or-decline against
// a restarted head's cold retained window. One leaf (the victim) is
// silenced toward its head, loses a burst mid-flow once the head has
// forgotten it (so its frozen frontier stops gating release), and the
// head then crashes and restarts cold, re-anchoring above the victim's
// hole. By the time the victim can reach the head again, the sender
// has released the lost range and the head's retained window starts
// past it. The victim's HEAD_NAK must draw an explicit refusal — head
// escalation, sender NAK_ERR, multicast HEAD_DECLINE, direct retry,
// final NAK_ERR — never silence. The timeline is fully deterministic:
// every stochastic loss rate is zero.
func TestChaosHeadRestartColdWindow(t *testing.T) {
	const (
		size   = int64(256 << 10)
		head   = packet.NodeID(1)
		victim = packet.NodeID(2)
	)
	rcfg := rate.DefaultConfig()
	rcfg.MaxRate = Rate100Mbps
	plan := (&FaultPlan{}).
		// Silence the victim toward its head: its UPDATEs and HEAD_NAKs
		// vanish, so after MemberTimeout the head's aggregate forgets it
		// and the sender's release no longer waits for it.
		PartitionAt(500*sim.Millisecond, victim, head).
		// Once forgotten, the victim loses a burst of flowing data. It
		// still hears the stream resume afterwards, so the hole is
		// visible — but every HEAD_NAK dies against the partition.
		BurstLossAt(1550*sim.Millisecond, 1800*sim.Millisecond, victim, 1.0).
		// The head crashes and restarts with a cold retained window,
		// re-anchoring at the release frontier — above the victim's hole.
		CrashAt(2000*sim.Millisecond, head).
		RestartAt(3000*sim.Millisecond, head).
		// Long after release, the victim reaches the head again and asks.
		HealAt(15*sim.Second, victim, head)
	h := NewHierarchy(HierarchyConfig{
		Heads:         1,
		LeavesPerHead: 4,
		Size:          size,
		Buf:           256 << 10,
		Seed:          21,
		Delay:         10 * sim.Millisecond,
		LeafDelay:     2 * sim.Millisecond,
		Faults:        plan,
		// The victim must keep asking its head forever — failover would
		// sidestep the decline path this test is about.
		LeafHeadSilence: -1,
		LeafNakBudget:   -1,
		// Forget the silenced victim quickly so release moves past its
		// hole while the head is still alive.
		HeadMemberTimeout: sim.Second,
	}, sender.Config{
		SndBuf: 64 << 10,
		Mode:   sender.HRMC,
		Rate:   rcfg,
		MSS:    1024, // divides the 64 KiB feed: exact restart re-anchoring
		// The head comes back on its own; never evict it.
		HeadSilenceTimeout: -1,
	})
	// The victim can never finish (its hole is authoritatively dead), so
	// the run ends at the limit; assertions look at per-node state.
	h.Run(25 * sim.Second)

	nodes := h.Nodes()
	hd := nodes[0]
	if !hd.Finished || hd.BadBytes != 0 {
		t.Fatalf("restarted head: finished=%v bad=%d, want re-finished clean",
			hd.Finished, hd.BadBytes)
	}
	rb, ok := hd.M.RebasedAt()
	if !ok {
		t.Fatal("restarted head never anchored mid-stream")
	}
	if want := size - int64(seqspace.Diff(rb, 0))*1024; hd.Received != want {
		t.Errorf("restarted head delivered %d bytes, want %d from anchor %d",
			hd.Received, want, rb)
	}
	for _, nd := range nodes[2:] { // the healthy leaves
		if !nd.Finished || nd.Received != size || nd.BadBytes != 0 {
			t.Fatalf("healthy leaf %d: finished=%v got %d bytes (%d bad), want %d exact",
				nd.ID(), nd.Finished, nd.Received, nd.BadBytes, size)
		}
	}
	v := nodes[1]
	if v.Finished {
		t.Error("victim finished despite an authoritatively dead hole")
	}
	vst := v.M.Stats()
	if vst.HeadDeclinesHeard < 1 {
		t.Errorf("victim HeadDeclinesHeard = %d, want >= 1", vst.HeadDeclinesHeard)
	}
	if vst.NakErrsHeard < 1 {
		t.Errorf("victim NakErrsHeard = %d, want >= 1", vst.NakErrsHeard)
	}
	if vst.UnrecoverableHoles < 1 {
		t.Errorf("victim UnrecoverableHoles = %d, want >= 1", vst.UnrecoverableHoles)
	}
	hst := hd.M.Stats()
	if hst.HeadNaksEscalated < 1 {
		t.Errorf("head HeadNaksEscalated = %d, want >= 1", hst.HeadNaksEscalated)
	}
	if hst.HeadDeclinesSent < 1 {
		t.Errorf("head HeadDeclinesSent = %d, want >= 1", hst.HeadDeclinesSent)
	}
	if st := h.Sender().Stats(); st.NakErrsSent < 1 {
		t.Errorf("sender NakErrsSent = %d, want >= 1", st.NakErrsSent)
	}
}

// TestChaosFlashCrowdPartition drives a flash crowd of mid-stream
// joiners into a subtree while another head is partitioned from the
// sender and a loss burst chews on a third. The crowd must stay behind
// its head (O(heads) sender state), nobody may fail over (the faults
// heal), and every joiner must deliver bit-exact from its anchor.
func TestChaosFlashCrowdPartition(t *testing.T) {
	const (
		heads = 3
		perHd = 10
		size  = int64(512 << 10)
		crowd = 20
	)
	rcfg := rate.DefaultConfig()
	rcfg.MaxRate = Rate100Mbps
	plan := (&FaultPlan{}).
		PartitionAt(400*sim.Millisecond, 0, 3).
		BurstLossAt(600*sim.Millisecond, 900*sim.Millisecond, 2, 0.5).
		HealAt(1800*sim.Millisecond, 0, 3)
	h := NewHierarchy(HierarchyConfig{
		Heads:         heads,
		LeavesPerHead: perHd,
		Size:          size,
		Buf:           256 << 10,
		Seed:          9,
		Delay:         10 * sim.Millisecond,
		LeafDelay:     2 * sim.Millisecond,
		Faults:        plan,
		// Patient leaves: the head is only unreachable, not dead.
		LeafHeadSilence: -1,
		LeafNakBudget:   -1,
	}, sender.Config{
		SndBuf:             128 << 10,
		Mode:               sender.HRMC,
		Rate:               rcfg,
		MSS:                1024,
		HeadSilenceTimeout: -1,
	})
	var lateNodes []*hNode
	for i := 0; i < crowd; i++ {
		at := 500*sim.Millisecond + sim.Time(i)*10*sim.Millisecond
		h.Engine.At(at, func() {
			lateNodes = append(lateNodes, h.AddLeaf(1))
		})
	}
	res := h.Run(60 * sim.Second)
	if !res.Completed {
		t.Fatal("transfer did not complete")
	}
	if h.FaultDrops() == 0 {
		t.Fatal("loss burst dropped nothing; test is vacuous")
	}
	var failovers int64
	for _, nd := range h.Nodes() {
		failovers += nd.M.Stats().HeadFailovers
		if nd.BadBytes != 0 {
			t.Fatalf("node %d saw %d corrupted bytes", nd.ID(), nd.BadBytes)
		}
	}
	if failovers != 0 {
		t.Errorf("failovers = %d, want 0: partition healed, head never died", failovers)
	}
	for _, nd := range h.Nodes()[:heads*(1+perHd)] {
		if nd.Received != size {
			t.Fatalf("node %d delivered %d bytes, want %d", nd.ID(), nd.Received, size)
		}
	}
	if len(lateNodes) != crowd {
		t.Fatalf("flash crowd: %d joined, want %d", len(lateNodes), crowd)
	}
	for _, nd := range lateNodes {
		rb, ok := nd.M.RebasedAt()
		if !ok {
			t.Fatalf("late leaf %d never anchored", nd.ID())
		}
		want := size - int64(seqspace.Diff(rb, 0))*1024
		if !nd.Finished || nd.Received != want || nd.Received <= 0 {
			t.Fatalf("late leaf %d: finished=%v got %d bytes, want %d from anchor %d",
				nd.ID(), nd.Finished, nd.Received, want, rb)
		}
	}
	st := h.Sender().Stats()
	if st.HeadsEvicted != 0 {
		t.Errorf("HeadsEvicted = %d, want 0: the partition healed in time", st.HeadsEvicted)
	}
	if mj := h.Sender().MaxJoined(); mj > heads+2 {
		t.Errorf("sender tracked %d members, want <= heads+2 = %d: the crowd must stay behind heads",
			mj, heads+2)
	}
}
