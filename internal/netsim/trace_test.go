package netsim

import (
	"testing"

	"repro/internal/app"
	"repro/internal/rate"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestTraceCoversLossyTransfer runs a lossy transfer with counting
// sinks attached to both sides and checks that the protocol's life
// events all show up: transmissions, gaps, NAKs, retransmissions,
// updates, membership and completion.
func TestTraceCoversLossyTransfer(t *testing.T) {
	cfg := DefaultConfig(Rate10Mbps, 13)
	net := New(cfg)
	rcfg := rate.DefaultConfig()
	rcfg.MaxRate = Rate10Mbps

	var sndTrace trace.CountingSink
	s := sender.New(sender.Config{
		SndBuf: 64 << 10, Rate: rcfg, ExpectedReceivers: 2,
		Trace: &sndTrace,
	})
	net.AddSender(s, app.NewMemorySource(512<<10))

	var rcvTraces []*trace.CountingSink
	for i := 0; i < 2; i++ {
		ct := &trace.CountingSink{}
		rcvTraces = append(rcvTraces, ct)
		r := receiver.New(receiver.Config{
			RcvBuf: 64 << 10, AssumedRTT: 200 * sim.Millisecond,
			Trace: ct,
		})
		net.AddReceiver(r, GroupC, app.MemorySink{})
	}
	res := net.Run(600 * sim.Second)
	if !res.Completed {
		t.Fatal("transfer incomplete")
	}

	st := s.Stats()
	if got := sndTrace.Count(trace.SendData); got != st.PacketsSent {
		t.Errorf("SendData events %d != PacketsSent %d", got, st.PacketsSent)
	}
	if got := sndTrace.Count(trace.SendRetransmission); got != st.Retransmissions {
		t.Errorf("retransmission events %d != stat %d", got, st.Retransmissions)
	}
	if got := sndTrace.Count(trace.Release); got != int64(st.PacketsSent) {
		// Every first-transmission packet (incl. FIN) is eventually
		// released exactly once.
		t.Errorf("Release events %d != packets %d", got, st.PacketsSent)
	}
	if sndTrace.Count(trace.MemberJoined) != 2 {
		t.Errorf("MemberJoined events = %d", sndTrace.Count(trace.MemberJoined))
	}
	if sndTrace.Count(trace.MemberLeft) != 2 {
		t.Errorf("MemberLeft events = %d", sndTrace.Count(trace.MemberLeft))
	}
	if sndTrace.Count(trace.NakErrSent) != 0 {
		t.Error("NAK_ERR traced in an H-RMC run")
	}
	if sndTrace.Count(trace.RateCut) == 0 {
		t.Error("no rate cuts traced under 2% loss")
	}

	for i, ct := range rcvTraces {
		rst := net.Receivers()[i].M.Stats()
		if got := ct.Count(trace.NakSent); got != rst.NaksSent+rst.NakRetries {
			t.Errorf("receiver %d: NakSent events %d != stats %d", i, got, rst.NaksSent+rst.NakRetries)
		}
		if ct.Count(trace.GapDetected) == 0 {
			t.Errorf("receiver %d: no gaps traced under loss", i)
		}
		if got := ct.Count(trace.UpdateSent); got != rst.UpdatesSent {
			t.Errorf("receiver %d: UpdateSent events %d != stats %d", i, got, rst.UpdatesSent)
		}
		if ct.Count(trace.StreamComplete) != 1 {
			t.Errorf("receiver %d: StreamComplete events = %d", i, ct.Count(trace.StreamComplete))
		}
		last, ok := ct.Last(trace.StreamComplete)
		if !ok || last.Value != 512<<10 {
			t.Errorf("receiver %d: completion event carries %d bytes", i, last.Value)
		}
	}
}
