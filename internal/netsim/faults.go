// Fault injection for both network models: a FaultPlan is a declarative
// schedule of node crashes and restarts, pairwise link partitions, and
// timed loss bursts. The models consult the shared faultState on every
// delivery, so a fault expressed once applies uniformly to multicast
// fan-out, repair-plane unicast, and feedback paths alike. This is the
// substrate for the chaos scenarios: a repair head dying mid-flow, a
// partitioned leaf rejoining, a flash crowd arriving through a lossy
// window.
package netsim

import (
	"repro/internal/packet"
	"repro/internal/sim"
)

// FaultKind classifies one scheduled fault.
type FaultKind int

const (
	// FaultCrash silences a node: it stops processing, emitting, and
	// receiving. In-flight packets it already sent still deliver — a
	// crash kills the process, not the photons on the wire.
	FaultCrash FaultKind = iota
	// FaultRestart revives a crashed node with a cold machine: the model
	// rebuilds its protocol state from scratch (empty windows, no
	// retained repair data), which is what makes head-restart scenarios
	// interesting.
	FaultRestart
	// FaultPartition cuts the pair (A, B) in both directions until a
	// matching FaultHeal. The sender is NodeID 0.
	FaultPartition
	// FaultHeal removes the (A, B) cut.
	FaultHeal
	// FaultBurstLoss drops packets touching Node (or every packet when
	// Node is 0) with probability Loss during [At, Until).
	FaultBurstLoss
)

// FaultEvent is one scheduled fault.
type FaultEvent struct {
	At   sim.Time
	Kind FaultKind
	// Node is the crash/restart target, or the burst's focus (0 = the
	// whole network).
	Node packet.NodeID
	// A, B are the partition endpoints (0 = the sender).
	A, B packet.NodeID
	// Until ends a loss burst.
	Until sim.Time
	// Loss is the burst drop probability.
	Loss float64
}

// FaultPlan is a buildable schedule of faults. The zero value is an
// empty plan; the builder methods return the plan for chaining.
type FaultPlan struct {
	Events []FaultEvent
}

// CrashAt schedules a node crash.
func (p *FaultPlan) CrashAt(at sim.Time, node packet.NodeID) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, Kind: FaultCrash, Node: node})
	return p
}

// RestartAt schedules a cold restart of a crashed node.
func (p *FaultPlan) RestartAt(at sim.Time, node packet.NodeID) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, Kind: FaultRestart, Node: node})
	return p
}

// PartitionAt cuts the pair (a, b) in both directions; 0 is the sender.
func (p *FaultPlan) PartitionAt(at sim.Time, a, b packet.NodeID) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, Kind: FaultPartition, A: a, B: b})
	return p
}

// HealAt removes the (a, b) cut.
func (p *FaultPlan) HealAt(at sim.Time, a, b packet.NodeID) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, Kind: FaultHeal, A: a, B: b})
	return p
}

// BurstLossAt drops packets touching node (0 = all packets) with
// probability loss during [at, until).
func (p *FaultPlan) BurstLossAt(at, until sim.Time, node packet.NodeID, loss float64) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, Kind: FaultBurstLoss, Node: node, Until: until, Loss: loss})
	return p
}

// cutKey normalizes a partition pair so (a,b) and (b,a) share one entry.
func cutKey(a, b packet.NodeID) [2]packet.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]packet.NodeID{a, b}
}

// faultState is the live fault machinery one model instance owns. All
// methods are nil-safe so fault-free runs pay a single pointer check.
type faultState struct {
	crashed map[packet.NodeID]bool
	cuts    map[[2]packet.NodeID]bool
	bursts  []FaultEvent
	rng     *sim.RNG

	// Drops counts packets the fault plane destroyed (burst loss only;
	// crash and partition drops are deterministic and uncounted).
	Drops int64

	// onCrash and onRestart are the model's hooks: marking the node dead
	// and rebuilding its machine are model-specific.
	onCrash   func(packet.NodeID)
	onRestart func(packet.NodeID)
}

// newFaultState builds the live state for a plan; nil plan yields nil
// state (every method tolerates the nil receiver).
func newFaultState(plan *FaultPlan, rng *sim.RNG) *faultState {
	if plan == nil || len(plan.Events) == 0 {
		return nil
	}
	f := &faultState{
		crashed: make(map[packet.NodeID]bool),
		cuts:    make(map[[2]packet.NodeID]bool),
		rng:     rng,
	}
	for _, e := range plan.Events {
		if e.Kind == FaultBurstLoss {
			f.bursts = append(f.bursts, e)
		}
	}
	return f
}

// install schedules the plan's discrete events (crash, restart,
// partition, heal) on the engine. Bursts need no events: Blocked
// consults their time windows directly.
func (f *faultState) install(eng *sim.Engine, plan *FaultPlan) {
	if f == nil {
		return
	}
	for _, e := range plan.Events {
		ev := e
		switch ev.Kind {
		case FaultCrash:
			eng.At(ev.At, func() {
				f.crashed[ev.Node] = true
				if f.onCrash != nil {
					f.onCrash(ev.Node)
				}
			})
		case FaultRestart:
			eng.At(ev.At, func() {
				delete(f.crashed, ev.Node)
				if f.onRestart != nil {
					f.onRestart(ev.Node)
				}
			})
		case FaultPartition:
			eng.At(ev.At, func() { f.cuts[cutKey(ev.A, ev.B)] = true })
		case FaultHeal:
			eng.At(ev.At, func() { delete(f.cuts, cutKey(ev.A, ev.B)) })
		}
	}
}

// Crashed reports whether node is currently down.
func (f *faultState) Crashed(node packet.NodeID) bool {
	return f != nil && f.crashed[node]
}

// Blocked decides the fate of one packet traveling between a and b
// (either direction; 0 is the sender) at time now: dropped when either
// endpoint is crashed, the pair is partitioned, or an active loss burst
// touching an endpoint draws against it.
func (f *faultState) Blocked(now sim.Time, a, b packet.NodeID) bool {
	if f == nil {
		return false
	}
	if f.crashed[a] || f.crashed[b] {
		return true
	}
	if len(f.cuts) > 0 && f.cuts[cutKey(a, b)] {
		return true
	}
	for _, e := range f.bursts {
		if now < e.At || now >= e.Until {
			continue
		}
		if e.Node != 0 && e.Node != a && e.Node != b {
			continue
		}
		if f.rng.Bool(e.Loss) {
			f.Drops++
			return true
		}
	}
	return false
}
