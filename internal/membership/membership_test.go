package membership

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/seqspace"
	"repro/internal/sim"
)

func TestAddLookupRemove(t *testing.T) {
	var tb Table
	if tb.Len() != 0 {
		t.Fatal("zero table not empty")
	}
	m, added := tb.Add(5, 100)
	if !added || m == nil || m.Addr != 5 {
		t.Fatalf("Add = %v,%v", m, added)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d", tb.Len())
	}
	if tb.Lookup(5) != m {
		t.Error("Lookup missed the member")
	}
	if tb.Lookup(6) != nil {
		t.Error("Lookup found a ghost")
	}
	// Duplicate join is idempotent and refreshes LastHeard.
	m2, added := tb.Add(5, 200)
	if added || m2 != m {
		t.Error("duplicate Add created a new member")
	}
	if m.LastHeard != 200 {
		t.Error("duplicate Add did not refresh LastHeard")
	}
	if !tb.Remove(5) {
		t.Error("Remove returned false")
	}
	if tb.Remove(5) {
		t.Error("second Remove returned true")
	}
	if tb.Len() != 0 || tb.Lookup(5) != nil {
		t.Error("Remove left state behind")
	}
}

func TestHashCollisions(t *testing.T) {
	var tb Table
	// Addresses 1, 1+64, 1+128 share a bucket.
	addrs := []packet.NodeID{1, 1 + HashTableSize, 1 + 2*HashTableSize}
	for _, a := range addrs {
		tb.Add(a, 0)
	}
	for _, a := range addrs {
		if got := tb.Lookup(a); got == nil || got.Addr != a {
			t.Errorf("Lookup(%d) = %v", a, got)
		}
	}
	// Remove the middle of the chain.
	tb.Remove(addrs[1])
	if tb.Lookup(addrs[1]) != nil {
		t.Error("removed member still found")
	}
	if tb.Lookup(addrs[0]) == nil || tb.Lookup(addrs[2]) == nil {
		t.Error("removal broke the chain")
	}
}

func TestEachJoinOrder(t *testing.T) {
	var tb Table
	for i := packet.NodeID(10); i < 15; i++ {
		tb.Add(i, 0)
	}
	tb.Remove(12)
	var got []packet.NodeID
	tb.Each(func(m *Member) bool {
		got = append(got, m.Addr)
		return true
	})
	want := []packet.NodeID{10, 11, 13, 14}
	if len(got) != len(want) {
		t.Fatalf("Each order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each order %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	tb.Each(func(*Member) bool { n++; return false })
	if n != 1 {
		t.Errorf("Each early stop visited %d", n)
	}
}

func TestUpdateMonotone(t *testing.T) {
	var tb Table
	tb.Add(1, 0)
	if tb.Update(99, 5, 0) {
		t.Error("Update for unknown member returned true")
	}
	if !tb.Update(1, 10, 50) {
		t.Fatal("Update returned false")
	}
	m := tb.Lookup(1)
	if !m.KnownState || m.NextExpected != 10 || m.LastHeard != 50 {
		t.Fatalf("after update: %+v", m)
	}
	// A stale (reordered) report must not regress state but still counts
	// as hearing from the receiver.
	tb.Update(1, 7, 60)
	if m.NextExpected != 10 {
		t.Error("stale update regressed NextExpected")
	}
	if m.LastHeard != 60 {
		t.Error("stale update did not refresh LastHeard")
	}
	tb.Update(1, 12, 70)
	if m.NextExpected != 12 {
		t.Error("fresh update ignored")
	}
}

func TestUpdateClearsProbe(t *testing.T) {
	var tb Table
	m, _ := tb.Add(1, 0)
	m.ProbeOutstanding = true
	m.ProbeSeq = 9
	tb.Update(1, 9, 10) // next expected 9 means seq 9 NOT received yet
	if !m.ProbeOutstanding {
		t.Error("probe cleared by a response that does not cover the probe seq")
	}
	tb.Update(1, 10, 20) // now 9 is covered
	if m.ProbeOutstanding {
		t.Error("probe not cleared by a covering response")
	}
}

func TestAllPastAndLacking(t *testing.T) {
	var tb Table
	if !tb.AllPast(100) {
		t.Error("empty table must be trivially past any seq")
	}
	tb.Add(1, 0)
	tb.Add(2, 0)
	if tb.AllPast(0) {
		t.Error("members with unknown state counted as past")
	}
	if got := tb.Lacking(0, nil); len(got) != 2 {
		t.Fatalf("Lacking = %d members, want 2", len(got))
	}
	tb.Update(1, 6, 0)
	tb.Update(2, 4, 0)
	if !tb.AllPast(3) {
		t.Error("AllPast(3) false with next-expected {6,4}")
	}
	if tb.AllPast(4) {
		t.Error("AllPast(4) true but member 2 expects 4")
	}
	lack := tb.Lacking(4, nil)
	if len(lack) != 1 || lack[0].Addr != 2 {
		t.Errorf("Lacking(4) = %v", lack)
	}
}

func TestMinNextExpected(t *testing.T) {
	var tb Table
	if _, ok := tb.MinNextExpected(); ok {
		t.Error("empty table reported a minimum")
	}
	tb.Add(1, 0)
	if _, ok := tb.MinNextExpected(); ok {
		t.Error("unknown-state member reported a minimum")
	}
	tb.Update(1, 10, 0)
	tb.Add(2, 0)
	tb.Update(2, 7, 0)
	min, ok := tb.MinNextExpected()
	if !ok || min != 7 {
		t.Errorf("MinNextExpected = %d,%v, want 7,true", min, ok)
	}
	// Wrap-aware minimum.
	tb.Update(2, 0xFFFFFFF0, 0) // ignored: stale (before 7? no — after)
	// 0xFFFFFFF0 is before 7 in wrap arithmetic, so it is stale and
	// NextExpected stays 7.
	min, _ = tb.MinNextExpected()
	if min != 7 {
		t.Errorf("stale wrap update changed minimum to %d", min)
	}
}

// Property: the table agrees with a reference map implementation under a
// random operation sequence, and the linked list stays consistent with
// the hash table.
func TestPropTableMatchesMap(t *testing.T) {
	type op struct {
		Kind uint8
		Addr uint8
		Seq  uint32
	}
	f := func(ops []op) bool {
		var tb Table
		ref := map[packet.NodeID]seqspace.Seq{}
		known := map[packet.NodeID]bool{}
		now := sim.Time(0)
		for _, o := range ops {
			addr := packet.NodeID(o.Addr % 40)
			now += sim.Millisecond
			switch o.Kind % 3 {
			case 0: // add
				tb.Add(addr, now)
				if _, ok := ref[addr]; !ok {
					ref[addr] = 0
					known[addr] = false
				}
			case 1: // remove
				tb.Remove(addr)
				delete(ref, addr)
				delete(known, addr)
			case 2: // update
				s := seqspace.Seq(o.Seq % 1000)
				tb.Update(addr, s, now)
				if _, ok := ref[addr]; ok {
					if !known[addr] || seqspace.After(s, ref[addr]) {
						ref[addr] = s
						known[addr] = true
					}
				}
			}
		}
		if tb.Len() != len(ref) {
			return false
		}
		// Every map entry is in the table with matching state.
		for a, s := range ref {
			m := tb.Lookup(a)
			if m == nil || m.KnownState != known[a] {
				return false
			}
			if known[a] && m.NextExpected != s {
				return false
			}
		}
		// The linked list visits exactly the map's members, once each.
		seen := map[packet.NodeID]int{}
		tb.Each(func(m *Member) bool { seen[m.Addr]++; return true })
		if len(seen) != len(ref) {
			return false
		}
		for a, n := range seen {
			if n != 1 {
				return false
			}
			if _, ok := ref[a]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: AllPast(seq) is exactly "Lacking(seq) is empty".
func TestPropAllPastLackingAgree(t *testing.T) {
	f := func(nexts []uint16, seq uint16) bool {
		var tb Table
		for i, n := range nexts {
			a := packet.NodeID(i + 1)
			tb.Add(a, 0)
			tb.Update(a, seqspace.Seq(n), 0)
		}
		return tb.AllPast(seqspace.Seq(seq)) == (len(tb.Lacking(seqspace.Seq(seq), nil)) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// UpdateAggregate (hierarchical repair tier) is non-monotonic: a new
// leaf joining behind the subtree front legitimately regresses the
// head's reported minimum, and the sender must honor it.
func TestUpdateAggregateAllowsRegression(t *testing.T) {
	var tb Table
	tb.Add(1, 0)
	if !tb.UpdateAggregate(1, 100, 10, 0) {
		t.Fatal("UpdateAggregate on a present member returned false")
	}
	if tb.UpdateAggregate(2, 50, 3, 0) {
		t.Fatal("UpdateAggregate on an absent member returned true")
	}
	m := tb.Lookup(1)
	if !m.Head || !m.KnownState || m.NextExpected != 100 || m.Members != 10 {
		t.Fatalf("member after aggregate = %+v", *m)
	}
	// Regression (monotonic Update would refuse this).
	tb.UpdateAggregate(1, 60, 11, 1)
	if m.NextExpected != 60 || m.Members != 11 {
		t.Fatalf("aggregate regression not applied: next=%d members=%d", m.NextExpected, m.Members)
	}
	tb.Update(1, 40, 2)
	if m.NextExpected != 60 {
		t.Fatalf("plain Update regressed a known member: next=%d", m.NextExpected)
	}
}

// Heads and Downstream track the repair-tier shape through join,
// aggregate updates, and removal.
func TestHeadsAndDownstreamCounters(t *testing.T) {
	var tb Table
	for a := packet.NodeID(1); a <= 3; a++ {
		tb.Add(a, 0)
	}
	tb.UpdateAggregate(1, 10, 4, 0)
	tb.UpdateAggregate(2, 10, 6, 0)
	tb.Update(3, 10, 0) // a plain leaf reporting directly
	if tb.Heads() != 2 || tb.Downstream() != 10 {
		t.Fatalf("heads=%d downstream=%d, want 2 and 10", tb.Heads(), tb.Downstream())
	}
	// Shrinking a subtree shrinks the downstream count.
	tb.UpdateAggregate(2, 12, 5, 1)
	if tb.Downstream() != 9 {
		t.Fatalf("downstream=%d after shrink, want 9", tb.Downstream())
	}
	// A second aggregate from the same head does not double-count it.
	if tb.Heads() != 2 {
		t.Fatalf("heads=%d after repeat aggregate, want 2", tb.Heads())
	}
	tb.Remove(2)
	if tb.Heads() != 1 || tb.Downstream() != 4 {
		t.Fatalf("heads=%d downstream=%d after removing a head, want 1 and 4", tb.Heads(), tb.Downstream())
	}
	tb.Remove(3)
	if tb.Heads() != 1 || tb.Downstream() != 4 {
		t.Fatalf("heads=%d downstream=%d after removing a leaf, want 1 and 4", tb.Heads(), tb.Downstream())
	}
}

// StaleHeads reports only repair heads past the timeout: leaves are
// probed, not evicted, and a recently heard head is not stale.
func TestStaleHeads(t *testing.T) {
	var tb Table
	for a := packet.NodeID(1); a <= 3; a++ {
		tb.Add(a, 0)
	}
	tb.UpdateAggregate(1, 10, 4, 0) // head, silent since t=0
	tb.UpdateAggregate(2, 10, 6, 0) // head, will speak again
	tb.Update(3, 10, 0)             // leaf, silent since t=0
	tb.UpdateAggregate(2, 12, 6, 900)
	stale := tb.StaleHeads(1000, 1000, nil)
	if len(stale) != 1 || stale[0].Addr != 1 {
		t.Fatalf("stale heads = %v, want exactly head 1", stale)
	}
	// JoinedAt marks the most recent explicit JOIN: Add on a present
	// member refreshes LastHeard but not JoinedAt (that is the caller's
	// restart signal to apply).
	m, added := tb.Add(1, 1100)
	if added {
		t.Fatal("Add on a present member reported added")
	}
	if m.JoinedAt != 0 || m.LastHeard != 1100 {
		t.Fatalf("JoinedAt=%v LastHeard=%v, want 0 and 1100", m.JoinedAt, m.LastHeard)
	}
	if got := tb.StaleHeads(1100, 1000, nil); len(got) != 0 {
		t.Fatalf("refreshed head still stale: %v", got)
	}
}
