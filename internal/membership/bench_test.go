package membership

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/seqspace"
)

func benchTable(n int) *Table {
	var t Table
	for i := 0; i < n; i++ {
		t.Add(packet.NodeID(i+1), 0)
		t.Update(packet.NodeID(i+1), seqspace.Seq(i), 0)
	}
	return &t
}

func BenchmarkLookup100(b *testing.B) {
	t := benchTable(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if t.Lookup(packet.NodeID(i%100+1)) == nil {
			b.Fatal("miss")
		}
	}
}

func BenchmarkUpdate100(b *testing.B) {
	t := benchTable(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Update(packet.NodeID(i%100+1), seqspace.Seq(i), 0)
	}
}

func BenchmarkAllPast100(b *testing.B) {
	t := benchTable(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.AllPast(50)
	}
}

func BenchmarkLacking100(b *testing.B) {
	t := benchTable(100)
	var dst []*Member
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = t.Lacking(50, dst[:0])
	}
	if len(dst) == 0 {
		b.Fatal("no lacking members")
	}
}

func BenchmarkAddRemove(b *testing.B) {
	var t Table
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := packet.NodeID(i%512 + 1)
		t.Add(addr, 0)
		t.Remove(addr)
	}
}
