// Package membership implements the H-RMC sender's group-membership
// structure: a hash table of receivers combined with an intrusive doubly
// linked list, as described in Section 3 ("group membership is maintained
// in the form of a doubly linked list as well as a hashed list of all the
// receivers").
//
// Per the paper the sender keeps minimal per-receiver state: the unicast
// address and the sequence number the receiver is expecting next. This
// implementation also carries the bookkeeping the protocol needs around
// that state (when the receiver was last heard from, when it was last
// probed) — information the kernel implementation kept implicitly in its
// timers.
package membership

import (
	"repro/internal/packet"
	"repro/internal/seqspace"
	"repro/internal/sim"
)

// HashTableSize mirrors RMC_HTABLE_SIZE from the kernel structures shown
// in Figure 7.
const HashTableSize = 64

// Member is the per-receiver state kept by the sender.
type Member struct {
	// Addr is the receiver's unicast address.
	Addr packet.NodeID
	// NextExpected is the next sequence number the receiver is expecting,
	// updated from every feedback packet (NAK, CONTROL, UPDATE, JOIN).
	NextExpected seqspace.Seq
	// KnownState reports whether any feedback has been received yet; a
	// member that joined but has said nothing about sequence numbers has
	// unknown state and must be probed before a release past its join
	// point.
	KnownState bool
	// LastHeard is when feedback last arrived from this receiver.
	LastHeard sim.Time
	// JoinedAt is when the receiver's (most recent) JOIN arrived. A
	// restarted or re-homed receiver legitimately NAKs data transmitted
	// before it existed; RTT sampling must ignore such packets, since
	// transmission-to-NAK time then measures history, not the network.
	JoinedAt sim.Time
	// LastProbed is when the sender last unicast a PROBE to this
	// receiver, used to rate-limit probing to once per round trip.
	LastProbed sim.Time
	// ProbeSeq is the sequence number carried by the outstanding probe,
	// used to take Karn-safe RTT samples from the response.
	ProbeSeq seqspace.Seq
	// ProbeOutstanding reports whether an un-answered probe exists.
	ProbeOutstanding bool
	// ProbeTries counts transmissions of the outstanding probe; a
	// response to a probe with ProbeTries > 1 is an ambiguous RTT sample
	// under Karn's algorithm and is discarded.
	ProbeTries int

	// Head marks a repair-head entry (hierarchical recovery extension):
	// the member speaks for a subtree of downstream receivers via
	// AGG_UPDATEs, and NextExpected is the subtree minimum rather than
	// the member's own frontier.
	Head bool
	// Members is the downstream receiver count a head last reported;
	// zero for leaf entries.
	Members int

	// Intrusive doubly linked list over all members.
	prev, next *Member
	// Hash chain.
	hnext *Member
}

// Table is the sender's membership structure. The zero value is ready to
// use.
type Table struct {
	buckets [HashTableSize]*Member
	// head/tail of the doubly linked list, in join order.
	head, tail *Member
	count      int
	// heads and downstream track the repair tier incrementally: how
	// many members are repair heads, and the sum of their reported
	// downstream member counts.
	heads      int
	downstream int
}

func bucket(addr packet.NodeID) int { return int(uint32(addr) % HashTableSize) }

// Len returns the number of members.
func (t *Table) Len() int { return t.count }

// Lookup returns the member with the given address, or nil.
func (t *Table) Lookup(addr packet.NodeID) *Member {
	for m := t.buckets[bucket(addr)]; m != nil; m = m.hnext {
		if m.Addr == addr {
			return m
		}
	}
	return nil
}

// Add inserts a member for addr (the kernel's add_member) and returns it.
// If the address is already present, the existing member is returned and
// reported as not added — a duplicate JOIN is idempotent.
func (t *Table) Add(addr packet.NodeID, now sim.Time) (m *Member, added bool) {
	if m := t.Lookup(addr); m != nil {
		m.LastHeard = now
		return m, false
	}
	m = &Member{Addr: addr, LastHeard: now, JoinedAt: now}
	b := bucket(addr)
	m.hnext = t.buckets[b]
	t.buckets[b] = m
	if t.tail == nil {
		t.head, t.tail = m, m
	} else {
		m.prev = t.tail
		t.tail.next = m
		t.tail = m
	}
	t.count++
	return m, true
}

// Remove deletes the member with the given address (the kernel's
// rm_member) and reports whether it was present.
func (t *Table) Remove(addr packet.NodeID) bool {
	b := bucket(addr)
	var hprev *Member
	m := t.buckets[b]
	for m != nil && m.Addr != addr {
		hprev, m = m, m.hnext
	}
	if m == nil {
		return false
	}
	if hprev == nil {
		t.buckets[b] = m.hnext
	} else {
		hprev.hnext = m.hnext
	}
	if m.Head {
		t.heads--
		t.downstream -= m.Members
	}
	if m.prev == nil {
		t.head = m.next
	} else {
		m.prev.next = m.next
	}
	if m.next == nil {
		t.tail = m.prev
	} else {
		m.next.prev = m.prev
	}
	m.prev, m.next, m.hnext = nil, nil, nil
	t.count--
	return true
}

// Update records feedback from addr carrying the receiver's next expected
// sequence number (the kernel's update_mem). State only moves forward: a
// reordered stale report never regresses NextExpected. Unknown members are
// ignored (feedback from a host that never joined) and reported false.
func (t *Table) Update(addr packet.NodeID, nextExpected seqspace.Seq, now sim.Time) bool {
	m := t.Lookup(addr)
	if m == nil {
		return false
	}
	if !m.KnownState || seqspace.After(nextExpected, m.NextExpected) {
		m.NextExpected = nextExpected
		m.KnownState = true
	}
	m.LastHeard = now
	if m.ProbeOutstanding && seqspace.After(nextExpected, m.ProbeSeq) {
		m.ProbeOutstanding = false
		m.ProbeTries = 0
	}
	return true
}

// UpdateAggregate records an AGG_UPDATE from a repair head: nextExpected
// is the minimum next-expected sequence number over the head's whole
// subtree and members its downstream receiver count. Unlike Update it is
// not monotonic — a new leaf joining behind the subtree front legitimately
// regresses the minimum, and regression is the safe direction (the sender
// merely holds data longer). Unknown addresses are ignored and reported
// false.
func (t *Table) UpdateAggregate(addr packet.NodeID, nextExpected seqspace.Seq, members int, now sim.Time) bool {
	m := t.Lookup(addr)
	if m == nil {
		return false
	}
	if !m.Head {
		m.Head = true
		t.heads++
	}
	t.downstream += members - m.Members
	m.Members = members
	m.NextExpected = nextExpected
	m.KnownState = true
	m.LastHeard = now
	if m.ProbeOutstanding && seqspace.After(nextExpected, m.ProbeSeq) {
		m.ProbeOutstanding = false
		m.ProbeTries = 0
	}
	return true
}

// Heads returns how many members are repair heads.
func (t *Table) Heads() int { return t.heads }

// Downstream returns the total downstream receiver count reported by
// repair heads.
func (t *Table) Downstream() int { return t.downstream }

// Each calls fn for every member in join order; fn returning false stops
// the walk.
func (t *Table) Each(fn func(*Member) bool) {
	for m := t.head; m != nil; m = m.next {
		if !fn(m) {
			return
		}
	}
}

// AllPast reports whether every member is known to have received all data
// up to and including seq (that is, every member's next expected sequence
// number is after seq). An empty table trivially satisfies the predicate,
// matching anonymous pre-join behaviour. This is the release-safety check
// of probe_members.
func (t *Table) AllPast(seq seqspace.Seq) bool {
	for m := t.head; m != nil; m = m.next {
		if !m.KnownState || !seqspace.After(m.NextExpected, seq) {
			return false
		}
	}
	return true
}

// Lacking appends to dst every member whose state is unknown or whose
// next expected sequence number is not past seq — the set the sender must
// probe before releasing seq.
func (t *Table) Lacking(seq seqspace.Seq, dst []*Member) []*Member {
	for m := t.head; m != nil; m = m.next {
		if !m.KnownState || !seqspace.After(m.NextExpected, seq) {
			dst = append(dst, m)
		}
	}
	return dst
}

// StaleHeads appends to dst every repair-head member whose last feedback
// of any kind is at least timeout old — the candidates for silent-head
// eviction. Leaves are never reported: an idle leaf is probed, not
// evicted, because only heads carry an obligation to speak periodically
// (the AGG_UPDATE timer). Callers collect first and Remove afterwards;
// removing during an Each walk is unsafe.
func (t *Table) StaleHeads(now, timeout sim.Time, dst []*Member) []*Member {
	for m := t.head; m != nil; m = m.next {
		if m.Head && now-m.LastHeard >= timeout {
			dst = append(dst, m)
		}
	}
	return dst
}

// MinNextExpected returns the smallest next-expected sequence number over
// all members with known state, and whether any member has known state.
func (t *Table) MinNextExpected() (seqspace.Seq, bool) {
	var min seqspace.Seq
	found := false
	for m := t.head; m != nil; m = m.next {
		if !m.KnownState {
			continue
		}
		if !found || seqspace.Before(m.NextExpected, min) {
			min, found = m.NextExpected, true
		}
	}
	return min, found
}
