package kernel

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
)

func TestJiffyConversions(t *testing.T) {
	if Jiffy != 10*sim.Millisecond {
		t.Fatalf("Jiffy = %v, want 10ms (the paper's 2.1 kernel tick)", Jiffy)
	}
	if Jiffies(50) != 500*sim.Millisecond {
		t.Errorf("Jiffies(50) = %v", Jiffies(50))
	}
	if ToJiffies(95*sim.Millisecond) != 9 {
		t.Errorf("ToJiffies(95ms) = %d, want 9 (round down)", ToJiffies(95*sim.Millisecond))
	}
}

func TestTimerLifecycle(t *testing.T) {
	var tm Timer
	if tm.Armed() {
		t.Error("zero Timer is armed")
	}
	if tm.Due(sim.Second) {
		t.Error("zero Timer is due")
	}
	tm.Arm(100 * sim.Millisecond)
	if !tm.Armed() {
		t.Error("Arm did not arm")
	}
	if tm.Due(99 * sim.Millisecond) {
		t.Error("due before deadline")
	}
	if !tm.Due(100 * sim.Millisecond) {
		t.Error("not due at deadline")
	}
	// Re-arm replaces the deadline (mod_timer semantics).
	tm.Arm(200 * sim.Millisecond)
	if tm.Due(150 * sim.Millisecond) {
		t.Error("re-armed timer kept the old deadline")
	}
	tm.Disarm()
	if tm.Armed() || tm.Due(sim.Second) {
		t.Error("Disarm did not disarm")
	}
}

func TestTimerFire(t *testing.T) {
	var tm Timer
	tm.ArmIn(0, 50*sim.Millisecond)
	if tm.Fire(40 * sim.Millisecond) {
		t.Error("Fire before deadline returned true")
	}
	if !tm.Fire(50 * sim.Millisecond) {
		t.Error("Fire at deadline returned false")
	}
	if tm.Armed() {
		t.Error("Fire left the timer armed")
	}
	if tm.Fire(sim.Second) {
		t.Error("second Fire returned true")
	}
}

func TestEarliest(t *testing.T) {
	var a, b, c Timer
	if _, ok := Earliest(&a, &b, &c); ok {
		t.Error("Earliest of disarmed timers reported a deadline")
	}
	b.Arm(30 * sim.Millisecond)
	c.Arm(10 * sim.Millisecond)
	d, ok := Earliest(&a, &b, &c)
	if !ok || d != 10*sim.Millisecond {
		t.Errorf("Earliest = %v,%v, want 10ms,true", d, ok)
	}
}

func mkData(seq uint32, n int) *packet.Packet {
	return &packet.Packet{
		Header:  packet.Header{Type: packet.TypeData, Seq: seq, Length: uint32(n)},
		Payload: make([]byte, n),
	}
}

func TestQueueFIFO(t *testing.T) {
	var q Queue
	if q.Pop() != nil || q.Peek() != nil || q.Len() != 0 || q.Bytes() != 0 {
		t.Fatal("zero Queue not empty")
	}
	for i := uint32(0); i < 5; i++ {
		q.Push(mkData(i, 100))
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d", q.Len())
	}
	wantBytes := 5 * (packet.HeaderSize + 100)
	if q.Bytes() != wantBytes {
		t.Fatalf("Bytes = %d, want %d", q.Bytes(), wantBytes)
	}
	if q.Peek().Seq != 0 {
		t.Error("Peek returned wrong packet")
	}
	for i := uint32(0); i < 5; i++ {
		p := q.Pop()
		if p == nil || p.Seq != i {
			t.Fatalf("Pop %d returned %v", i, p)
		}
	}
	if q.Len() != 0 || q.Bytes() != 0 {
		t.Error("queue not empty after draining")
	}
}

func TestQueueDrain(t *testing.T) {
	var q Queue
	for i := uint32(0); i < 3; i++ {
		q.Push(mkData(i, 1))
	}
	out := q.Drain()
	if len(out) != 3 || out[0].Seq != 0 || out[2].Seq != 2 {
		t.Fatalf("Drain = %v", out)
	}
	if q.Len() != 0 {
		t.Error("Drain left packets behind")
	}
}

func TestQueueCompaction(t *testing.T) {
	// Push/pop far past the compaction threshold; FIFO order and byte
	// accounting must survive the internal copy.
	var q Queue
	next := uint32(0)
	popped := uint32(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			q.Push(mkData(next, 10))
			next++
		}
		for i := 0; i < 9; i++ {
			p := q.Pop()
			if p == nil || p.Seq != popped {
				t.Fatalf("round %d: popped %v, want seq %d", round, p, popped)
			}
			popped++
		}
	}
	if q.Len() != 50 {
		t.Fatalf("Len = %d, want 50", q.Len())
	}
	if q.Bytes() != 50*(packet.HeaderSize+10) {
		t.Fatalf("Bytes = %d", q.Bytes())
	}
	for p := q.Pop(); p != nil; p = q.Pop() {
		if p.Seq != popped {
			t.Fatalf("tail drain: got %d, want %d", p.Seq, popped)
		}
		popped++
	}
	if popped != next {
		t.Fatalf("popped %d packets, pushed %d", popped, next)
	}
}

// Property: any interleaving of pushes and pops preserves FIFO order and
// exact byte accounting.
func TestPropQueueFIFOAccounting(t *testing.T) {
	f := func(ops []bool, sizes []uint8) bool {
		var q Queue
		next, popped := uint32(0), uint32(0)
		bytes := 0
		for i, push := range ops {
			if push {
				n := 1
				if i < len(sizes) {
					n = int(sizes[i])%200 + 1
				}
				q.Push(mkData(next, n))
				bytes += packet.HeaderSize + n
				next++
			} else {
				p := q.Pop()
				if next == popped {
					if p != nil {
						return false
					}
					continue
				}
				if p == nil || p.Seq != popped {
					return false
				}
				bytes -= p.WireSize()
				popped++
			}
			if q.Bytes() != bytes || q.Len() != int(next-popped) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
