// Package kernel emulates the small slice of the Linux kernel environment
// the H-RMC driver lives in: the 10 ms jiffy clock, timer_list-style
// one-shot timers, and sk_buff_head-style packet queues with socket-buffer
// byte accounting (sndbuf/rcvbuf).
//
// The protocol machines in internal/sender and internal/receiver observe
// time only through these abstractions, so the same code runs unchanged
// under the discrete-event simulator and the live UDP transport — the Go
// analogue of the paper importing its kernel code into the CSIM simulator.
package kernel

import (
	"repro/internal/packet"
	"repro/internal/sim"
)

// Jiffy is the Linux 2.1 timer tick on the paper's machines: 10 ms.
const Jiffy = 10 * sim.Millisecond

// Jiffies converts a jiffy count to a duration.
func Jiffies(n int64) sim.Time { return sim.Time(n) * Jiffy }

// ToJiffies converts a duration to whole jiffies, rounding down.
func ToJiffies(d sim.Time) int64 { return int64(d / Jiffy) }

// Timer is a one-shot deadline, the analogue of a struct timer_list. The
// zero value is a disarmed timer. Timers do not fire by themselves: the
// owner polls Due (or Deadline) from whatever drives time forward.
type Timer struct {
	deadline sim.Time
	armed    bool
}

// Arm sets the timer to fire at the given absolute time, replacing any
// previous deadline (Linux mod_timer).
func (t *Timer) Arm(at sim.Time) {
	t.deadline = at
	t.armed = true
}

// ArmIn arms the timer d after now.
func (t *Timer) ArmIn(now, d sim.Time) { t.Arm(now + d) }

// Disarm stops the timer (Linux del_timer).
func (t *Timer) Disarm() { t.armed = false }

// Armed reports whether the timer has a pending deadline.
func (t *Timer) Armed() bool { return t.armed }

// Deadline returns the pending deadline, if armed.
func (t *Timer) Deadline() (sim.Time, bool) { return t.deadline, t.armed }

// Due reports whether the timer is armed with a deadline at or before now.
func (t *Timer) Due(now sim.Time) bool { return t.armed && t.deadline <= now }

// Fire disarms the timer and reports whether it was due. The owner calls
// this at the top of its handler so a re-arm inside the handler sticks.
func (t *Timer) Fire(now sim.Time) bool {
	if !t.Due(now) {
		return false
	}
	t.armed = false
	return true
}

// Earliest returns the soonest deadline among the given timers.
func Earliest(timers ...*Timer) (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, t := range timers {
		if d, ok := t.Deadline(); ok && (!found || d < best) {
			best, found = d, true
		}
	}
	return best, found
}

// Queue is a FIFO of packets with byte accounting, the analogue of a
// struct sk_buff_head plus the sock rmem/wmem counters. Bytes counts wire
// size (header + payload) like the kernel's truesize accounting.
type Queue struct {
	pkts  []*packet.Packet
	head  int
	bytes int
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return len(q.pkts) - q.head }

// Bytes returns the total wire bytes queued.
func (q *Queue) Bytes() int { return q.bytes }

// Push appends a packet to the tail.
func (q *Queue) Push(p *packet.Packet) {
	q.pkts = append(q.pkts, p)
	q.bytes += p.WireSize()
}

// Pop removes and returns the head packet, or nil when empty.
func (q *Queue) Pop() *packet.Packet {
	if q.head >= len(q.pkts) {
		return nil
	}
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	q.bytes -= p.WireSize()
	// Reclaim space once the dead prefix dominates.
	if q.head > 64 && q.head*2 >= len(q.pkts) {
		n := copy(q.pkts, q.pkts[q.head:])
		for i := n; i < len(q.pkts); i++ {
			q.pkts[i] = nil
		}
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	return p
}

// Peek returns the head packet without removing it, or nil when empty.
func (q *Queue) Peek() *packet.Packet {
	if q.head >= len(q.pkts) {
		return nil
	}
	return q.pkts[q.head]
}

// Drain removes all packets and returns them in order.
func (q *Queue) Drain() []*packet.Packet {
	out := make([]*packet.Packet, 0, q.Len())
	for p := q.Pop(); p != nil; p = q.Pop() {
		out = append(out, p)
	}
	return out
}
