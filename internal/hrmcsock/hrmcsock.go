// Package hrmcsock provides the BSD-socket-flavoured interface of the
// kernel implementation (Section 4): applications create a socket with
// address family AF_HRMC, type SOCK_IP and protocol IPPROTO_HRMC, bind
// to a local port, then either connect to a multicast group and send
// (the sending side) or join the group with a socket option and recv
// (the receiving side). SO_SNDBUF/SO_RCVBUF set the kernel-buffer
// analogues that the paper's evaluation sweeps.
//
// It is a thin, faithful veneer over internal/core; new code that does
// not need the socket idiom should use core directly.
package hrmcsock

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/transport"
	"repro/internal/udpmcast"
)

// Constants mirroring the kernel implementation's socket() triple.
const (
	// AF_HRMC is the protocol's address family.
	AF_HRMC = 27
	// SOCK_IP is the socket type used by the kernel implementation.
	SOCK_IP = 5
	// IPPROTO_HRMC identifies the transport protocol.
	IPPROTO_HRMC = 254
)

// Socket option names (setsockopt analogues).
const (
	// SO_SNDBUF sets the send-side kernel buffer in bytes.
	SO_SNDBUF = iota
	// SO_RCVBUF sets the receive-side kernel buffer in bytes.
	SO_RCVBUF
	// HRMC_ADD_MEMBERSHIP joins the multicast group given as the string
	// option value ("239.1.2.3:9999"); the socket becomes a receiver.
	HRMC_ADD_MEMBERSHIP
	// HRMC_EXPECTED_RECEIVERS sets how many receivers must join before
	// the sending side releases buffered data.
	HRMC_EXPECTED_RECEIVERS
	// HRMC_LOOPBACK pins sender multicast egress to 127.0.0.1 (same-host
	// demos).
	HRMC_LOOPBACK
)

// Errors.
var (
	ErrBadSocketTriple = errors.New("hrmcsock: socket() requires (AF_HRMC, SOCK_IP, IPPROTO_HRMC)")
	ErrNotConnected    = errors.New("hrmcsock: not connected")
	ErrAlreadyBound    = errors.New("hrmcsock: role already established")
	ErrBadOption       = errors.New("hrmcsock: unknown or misused option")
	ErrClosed          = errors.New("hrmcsock: socket closed")
)

// Sock is an H-RMC socket. Methods follow the BSD call sequence of the
// paper: sender — Socket, Bind, Connect, Send*, Close; receiver —
// Socket, Bind, Setsockopt(HRMC_ADD_MEMBERSHIP), Recv*, Close.
type Sock struct {
	mu   sync.Mutex
	port uint16

	sndBuf, rcvBuf int
	expected       int
	loopback       bool

	// transportOverride lets tests substitute an in-memory transport.
	transportOverride transport.Transport

	snd    *core.Sender
	rcv    *core.Receiver
	closed bool
}

// Socket creates an H-RMC socket; domain, typ and proto must be the
// AF_HRMC/SOCK_IP/IPPROTO_HRMC triple, exactly as with the kernel
// driver.
func Socket(domain, typ, proto int) (*Sock, error) {
	if domain != AF_HRMC || typ != SOCK_IP || proto != IPPROTO_HRMC {
		return nil, ErrBadSocketTriple
	}
	return &Sock{}, nil
}

// Bind associates the socket with a local port (informational in this
// user-space incarnation: the UDP transports pick free ports, and the
// value travels in the H-RMC header's port fields).
func (s *Sock) Bind(port uint16) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.port = port
	return nil
}

// Setsockopt sets integer options (SO_SNDBUF, SO_RCVBUF,
// HRMC_EXPECTED_RECEIVERS, HRMC_LOOPBACK with nonzero = on) and the
// string option HRMC_ADD_MEMBERSHIP.
func (s *Sock) Setsockopt(opt int, value any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	switch opt {
	case SO_SNDBUF:
		v, ok := value.(int)
		if !ok || v <= 0 {
			return ErrBadOption
		}
		s.sndBuf = v
	case SO_RCVBUF:
		v, ok := value.(int)
		if !ok || v <= 0 {
			return ErrBadOption
		}
		s.rcvBuf = v
	case HRMC_EXPECTED_RECEIVERS:
		v, ok := value.(int)
		if !ok || v < 0 {
			return ErrBadOption
		}
		s.expected = v
	case HRMC_LOOPBACK:
		v, ok := value.(int)
		if !ok {
			return ErrBadOption
		}
		s.loopback = v != 0
	case HRMC_ADD_MEMBERSHIP:
		group, ok := value.(string)
		if !ok {
			return ErrBadOption
		}
		return s.joinLocked(group)
	default:
		return ErrBadOption
	}
	return nil
}

// joinLocked establishes the receiving role.
func (s *Sock) joinLocked(group string) error {
	if s.snd != nil || s.rcv != nil {
		return ErrAlreadyBound
	}
	tr := s.transportOverride
	if tr == nil {
		var ifi *net.Interface
		if lo, err := net.InterfaceByName("lo"); err == nil && s.loopback {
			ifi = lo
		}
		var err error
		tr, err = udpmcast.NewReceiverTransport(group, ifi)
		if err != nil {
			return fmt.Errorf("hrmcsock: join %s: %w", group, err)
		}
	}
	s.rcv = core.NewReceiver(tr, receiver.Config{
		LocalPort: s.port,
		RcvBuf:    s.rcvBuf,
	})
	return nil
}

// Connect establishes the sending role toward the multicast group
// ("address:port").
func (s *Sock) Connect(group string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.snd != nil || s.rcv != nil {
		return ErrAlreadyBound
	}
	tr := s.transportOverride
	if tr == nil {
		var opts []udpmcast.SenderOption
		if s.loopback {
			opts = append(opts, udpmcast.WithEgressIP(net.IPv4(127, 0, 0, 1)))
		}
		var err error
		tr, err = udpmcast.NewSenderTransport(group, opts...)
		if err != nil {
			return fmt.Errorf("hrmcsock: connect %s: %w", group, err)
		}
	}
	// DATA is addressed to the group's port — the port receivers bind —
	// while feedback comes back to the locally bound port.
	var remote uint16
	if _, portStr, err := net.SplitHostPort(group); err == nil {
		if p, err := strconv.ParseUint(portStr, 10, 16); err == nil {
			remote = uint16(p)
		}
	}
	s.snd = core.NewSender(tr, sender.Config{
		LocalPort:         s.port,
		RemotePort:        remote,
		SndBuf:            s.sndBuf,
		ExpectedReceivers: s.expected,
	})
	return nil
}

// Send transmits b on the multicast stream, blocking while the send
// window is full — the send system call of the kernel interface.
func (s *Sock) Send(b []byte) (int, error) {
	s.mu.Lock()
	snd := s.snd
	s.mu.Unlock()
	if snd == nil {
		return 0, ErrNotConnected
	}
	return snd.Write(b)
}

// Recv delivers in-order stream bytes, blocking until data arrives; it
// returns io.EOF at the end of the stream — the recv system call.
func (s *Sock) Recv(b []byte) (int, error) {
	s.mu.Lock()
	rcv := s.rcv
	s.mu.Unlock()
	if rcv == nil {
		return 0, ErrNotConnected
	}
	return rcv.Read(b)
}

// Read makes a receiving Sock an io.Reader.
func (s *Sock) Read(b []byte) (int, error) { return s.Recv(b) }

// Write makes a sending Sock an io.Writer.
func (s *Sock) Write(b []byte) (int, error) { return s.Send(b) }

// Close releases the socket. On the sending side it blocks until every
// receiver is known to hold the whole stream, like the kernel close on
// an H-RMC socket.
func (s *Sock) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	snd, rcv := s.snd, s.rcv
	s.mu.Unlock()
	if snd != nil {
		return snd.Close()
	}
	if rcv != nil {
		return rcv.Close()
	}
	return nil
}

// UseTransport substitutes the packet transport before Connect or the
// membership option — used by tests and in-process demos to run the
// socket API over an in-memory hub.
func (s *Sock) UseTransport(tr transport.Transport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.transportOverride = tr
}
