package hrmcsock

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"repro/internal/app"
	"repro/internal/transport"
)

func TestSocketTripleValidation(t *testing.T) {
	if _, err := Socket(AF_HRMC, SOCK_IP, IPPROTO_HRMC); err != nil {
		t.Fatalf("valid triple rejected: %v", err)
	}
	bad := [][3]int{
		{2 /* AF_INET */, SOCK_IP, IPPROTO_HRMC},
		{AF_HRMC, 1 /* SOCK_STREAM */, IPPROTO_HRMC},
		{AF_HRMC, SOCK_IP, 17 /* UDP */},
	}
	for _, tr := range bad {
		if _, err := Socket(tr[0], tr[1], tr[2]); err != ErrBadSocketTriple {
			t.Errorf("Socket%v err = %v, want ErrBadSocketTriple", tr, err)
		}
	}
}

func TestSetsockoptValidation(t *testing.T) {
	s, _ := Socket(AF_HRMC, SOCK_IP, IPPROTO_HRMC)
	if err := s.Setsockopt(SO_SNDBUF, 64<<10); err != nil {
		t.Errorf("SO_SNDBUF: %v", err)
	}
	if err := s.Setsockopt(SO_SNDBUF, -1); err != ErrBadOption {
		t.Error("negative SO_SNDBUF accepted")
	}
	if err := s.Setsockopt(SO_RCVBUF, "big"); err != ErrBadOption {
		t.Error("string SO_RCVBUF accepted")
	}
	if err := s.Setsockopt(99, 1); err != ErrBadOption {
		t.Error("unknown option accepted")
	}
	if err := s.Setsockopt(HRMC_ADD_MEMBERSHIP, 5); err != ErrBadOption {
		t.Error("integer membership accepted")
	}
}

func TestSendRecvLifecycleErrors(t *testing.T) {
	s, _ := Socket(AF_HRMC, SOCK_IP, IPPROTO_HRMC)
	if _, err := s.Send([]byte("x")); err != ErrNotConnected {
		t.Errorf("Send before Connect: %v", err)
	}
	if _, err := s.Recv(make([]byte, 1)); err != ErrNotConnected {
		t.Errorf("Recv before join: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close of idle socket: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	if err := s.Bind(7); err != ErrClosed {
		t.Errorf("Bind after Close: %v", err)
	}
	if err := s.Connect("239.0.0.1:1"); err != ErrClosed {
		t.Errorf("Connect after Close: %v", err)
	}
}

func TestRoleExclusivity(t *testing.T) {
	hub := transport.NewHub()
	s, _ := Socket(AF_HRMC, SOCK_IP, IPPROTO_HRMC)
	s.UseTransport(hub.Endpoint())
	if err := s.Connect("239.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect("239.0.0.1:1"); err != ErrAlreadyBound {
		t.Errorf("second Connect: %v", err)
	}
	if err := s.Setsockopt(HRMC_ADD_MEMBERSHIP, "239.0.0.1:1"); err != ErrAlreadyBound {
		t.Errorf("join on a sending socket: %v", err)
	}
	s.Close()
}

// TestSocketTransferOverHub runs the full BSD-style call sequence of
// Section 4 over the in-memory transport: socket/bind/connect/send/close
// against socket/bind/setsockopt(join)/recv/close.
func TestSocketTransferOverHub(t *testing.T) {
	hub := transport.NewHub()
	const n = 2
	payload := make([]byte, 200<<10)
	app.FillPattern(payload, 0)

	var wg sync.WaitGroup
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		r, err := Socket(AF_HRMC, SOCK_IP, IPPROTO_HRMC)
		if err != nil {
			t.Fatal(err)
		}
		r.UseTransport(hub.Endpoint())
		if err := r.Bind(7000); err != nil {
			t.Fatal(err)
		}
		if err := r.Setsockopt(SO_RCVBUF, 128<<10); err != nil {
			t.Fatal(err)
		}
		if err := r.Setsockopt(HRMC_ADD_MEMBERSHIP, "239.1.2.3:7000"); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, r *Sock) {
			defer wg.Done()
			got, err := io.ReadAll(r)
			if err != nil {
				t.Errorf("receiver %d: %v", i, err)
			}
			results[i] = got
			r.Close()
		}(i, r)
	}

	s, err := Socket(AF_HRMC, SOCK_IP, IPPROTO_HRMC)
	if err != nil {
		t.Fatal(err)
	}
	s.UseTransport(hub.Endpoint())
	if err := s.Bind(5000); err != nil {
		t.Fatal(err)
	}
	if err := s.Setsockopt(SO_SNDBUF, 128<<10); err != nil {
		t.Fatal(err)
	}
	if err := s.Setsockopt(HRMC_EXPECTED_RECEIVERS, n); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect("239.1.2.3:7000"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, got := range results {
		if !bytes.Equal(got, payload) {
			t.Errorf("receiver %d: %d bytes, equal=false", i, len(got))
		}
	}
}
