package experiments

import (
	"strings"
	"testing"

	"repro/internal/netsim"
)

// quick returns smoke-test options: one seed, shrunken sweeps.
func quick() Options { return Options{Seeds: 1, Quick: true} }

func findTable(t *testing.T, tables []*Table, id string) *Table {
	t.Helper()
	for _, tb := range tables {
		if tb.ID == id {
			return tb
		}
	}
	t.Fatalf("table %s not produced", id)
	return nil
}

func findSeries(t *testing.T, tb *Table, label string) Series {
	t.Helper()
	for _, s := range tb.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("%s: series %q not found", tb.ID, label)
	return Series{}
}

func noInvariantNotes(t *testing.T, tables []*Table) {
	t.Helper()
	for _, tb := range tables {
		for _, n := range tb.Notes {
			if strings.Contains(n, "did not complete") || strings.Contains(n, "corrupted") || strings.Contains(n, "invariant") {
				t.Errorf("%s: %s", tb.ID, n)
			}
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig3", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"ext-earlyprobe", "ext-mcastprobe", "ext-fec", "ext-localrec", "ext-scaling"}
	rs := Registry()
	if len(rs) != len(want) {
		t.Fatalf("registry has %d runners, want %d", len(rs), len(want))
	}
	for i, name := range want {
		if rs[i].Name != name {
			t.Errorf("registry[%d] = %s, want %s", i, rs[i].Name, name)
		}
		if _, ok := Find(name); !ok {
			t.Errorf("Find(%s) failed", name)
		}
	}
	if _, ok := Find("fig99"); ok {
		t.Error("Find invented a runner")
	}
}

func TestFig3Shape(t *testing.T) {
	tables := Fig3(quick())
	noInvariantNotes(t, tables)
	a := findTable(t, tables, "fig3a")
	b := findTable(t, tables, "fig3b")
	// Headline contrast: with updates, the sender has complete
	// information far more often in the low-loss LAN environment.
	lanA := findSeries(t, a, "LAN .005%")
	lanB := findSeries(t, b, "LAN .005%")
	last := len(lanA.Y) - 1
	if lanB.Y[last] <= lanA.Y[last] {
		t.Errorf("LAN: H-RMC %.1f%% <= RMC %.1f%% at the largest buffer", lanB.Y[last], lanA.Y[last])
	}
	if lanB.Y[last] < 60 {
		t.Errorf("H-RMC LAN release info %.1f%%, expected high", lanB.Y[last])
	}
	// In the WAN, NAKs alone give RMC much better information than in
	// the LAN (the paper's point about loss-rate dependence).
	wanA := findSeries(t, a, "WAN 2%")
	if wanA.Y[last] <= lanA.Y[last] {
		t.Errorf("RMC: WAN info %.1f%% not above LAN %.1f%%", wanA.Y[last], lanA.Y[last])
	}
}

func TestFig10Shape(t *testing.T) {
	tables := Fig10(quick())
	noInvariantNotes(t, tables)
	a := findTable(t, tables, "fig10a")
	// Throughput grows with buffer size and flattens; with the largest
	// buffer all receiver counts perform comparably.
	for _, s := range a.Series {
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last <= first {
			t.Errorf("fig10a %s: throughput %.2f → %.2f did not grow with buffer", s.Label, first, last)
		}
		if last > 10 {
			t.Errorf("fig10a %s: %.2f Mbps exceeds the line rate", s.Label, last)
		}
	}
	one := findSeries(t, a, "1 receiver(s)").Y
	three := findSeries(t, a, "3 receiver(s)").Y
	l := len(one) - 1
	if diff := one[l] - three[l]; diff > 2.5 || diff < -2.5 {
		t.Errorf("fig10a: receiver count changed large-buffer throughput by %.2f Mbps", diff)
	}
}

func TestFig11Shape(t *testing.T) {
	tables := Fig11(quick())
	noInvariantNotes(t, tables)
	// Disk tests produce rate requests (memory tests produce none);
	// NAKs stay near zero on the clean LAN.
	total := 0.0
	for _, id := range []string{"fig11a", "fig11c"} {
		rr := findTable(t, tables, id)
		for _, s := range rr.Series {
			for _, y := range s.Y {
				total += y
			}
		}
	}
	if total == 0 {
		t.Error("fig11: disk tests produced no rate requests at all")
	}
	naks := findTable(t, tables, "fig11b")
	for _, s := range naks.Series {
		for i, y := range s.Y {
			if y > 50 {
				t.Errorf("fig11b %s at %dK: %.0f NAKs on a near-lossless LAN", s.Label, naks.X[i], y)
			}
		}
	}
}

func TestFig12Shape(t *testing.T) {
	tables := Fig12(quick())
	noInvariantNotes(t, tables)
	a := findTable(t, tables, "fig12a")
	b := findTable(t, tables, "fig12b")
	sa := findSeries(t, a, "1 receiver(s)").Y
	sb := findSeries(t, b, "1 receiver(s)").Y
	l := len(sa) - 1
	if sa[l] <= 10 {
		t.Errorf("fig12a large-buffer throughput %.1f Mbps does not exploit the 100 Mbps line", sa[l])
	}
	// Larger transfers amortize slow start: 40 MB ≥ 10 MB throughput.
	if sb[l] < sa[l] {
		t.Errorf("fig12: 40 MB throughput %.1f below 10 MB %.1f", sb[l], sa[l])
	}
}

func TestFig13Shape(t *testing.T) {
	tables := Fig13(quick())
	noInvariantNotes(t, tables)
	a := findTable(t, tables, "fig13b")
	for _, s := range a.Series {
		if s.Y[0] != 0 {
			t.Errorf("fig13b %s: %.0f NAKs at the smallest buffer, want 0", s.Label, s.Y[0])
		}
	}
	// At least one series shows NIC-drop NAKs at the largest buffer.
	anyNaks := false
	for _, s := range a.Series {
		if s.Y[len(s.Y)-1] > 0 {
			anyNaks = true
		}
	}
	if !anyNaks {
		t.Error("fig13b: no NAKs at 2048K buffers; NIC burst drops not reproduced")
	}
}

func TestFig14Definitions(t *testing.T) {
	tables := Fig14(quick())
	groups := findTable(t, tables, "fig14a")
	if len(groups.X) != 3 {
		t.Error("fig14a must define three characteristic groups")
	}
	tests := findTable(t, tables, "fig14b")
	if len(tests.X) != 5 {
		t.Error("fig14b must define five test cases")
	}
	// Cross-check testCase against the declared percentages.
	for n := 1; n <= 5; n++ {
		gs := testCase(n, 10)
		if len(gs) != 10 {
			t.Errorf("test %d has %d receivers", n, len(gs))
		}
	}
	c4 := 0
	for _, g := range testCase(4, 10) {
		if g.Name == netsim.GroupC.Name {
			c4++
		}
	}
	if c4 != 2 {
		t.Errorf("Test 4 has %d receivers in C, want 2 of 10", c4)
	}
	c5 := 0
	for _, g := range testCase(5, 10) {
		if g.Name == netsim.GroupC.Name {
			c5++
		}
	}
	if c5 != 8 {
		t.Errorf("Test 5 has %d receivers in C, want 8 of 10", c5)
	}
}

func TestFig15Shape(t *testing.T) {
	tables := Fig15(quick())
	noInvariantNotes(t, tables)
	tp := findTable(t, tables, "fig15a")
	l := len(tp.X) - 1
	t1 := findSeries(t, tp, "Test 1").Y[l]
	t2 := findSeries(t, tp, "Test 2").Y[l]
	t3 := findSeries(t, tp, "Test 3").Y[l]
	t4 := findSeries(t, tp, "Test 4").Y[l]
	t5 := findSeries(t, tp, "Test 5").Y[l]
	if !(t1 > t2 && t2 > t3) {
		t.Errorf("fig15a ordering broken: T1=%.2f T2=%.2f T3=%.2f", t1, t2, t3)
	}
	// Tests 4 and 5 sit near the WAN result: the protocol adapts to the
	// least capable receiver.
	if t4 > (t2+t3)/2+1 || t5 > (t2+t3)/2+1 {
		t.Errorf("mixed tests too fast: T4=%.2f T5=%.2f vs T2=%.2f T3=%.2f", t4, t5, t2, t3)
	}
	// Rate requests: more loss ⇒ more requests at small buffers.
	rr := findTable(t, tables, "fig15b")
	r1 := findSeries(t, rr, "Test 1").Y[0]
	r3 := findSeries(t, rr, "Test 3").Y[0]
	if r3 <= r1 {
		t.Errorf("fig15b: WAN rate requests %.0f not above LAN %.0f at the smallest buffer", r3, r1)
	}
	// 100-receiver panel exists and completed.
	findTable(t, tables, "fig15c")
}

func TestFig16Shape(t *testing.T) {
	tables := Fig16(quick())
	noInvariantNotes(t, tables)
	tp := findTable(t, tables, "fig16a")
	l := len(tp.X) - 1
	t1 := findSeries(t, tp, "Test 1").Y[l]
	t3 := findSeries(t, tp, "Test 3").Y[l]
	if t1 <= t3 {
		t.Errorf("fig16a: T1=%.2f not above T3=%.2f", t1, t3)
	}
	c := findTable(t, tables, "fig16c")
	if c.Series[0].Y[0] < 10 {
		t.Errorf("fig16c: %0.1f Mbps with many receivers and large buffers is too low", c.Series[0].Y[0])
	}
}

func TestTableFormat(t *testing.T) {
	tb := &Table{
		ID: "figX", Title: "demo", XLabel: "buffer KB", YLabel: "Mbps",
		X:      []int{64, 128},
		Series: []Series{{Label: "a", Y: []float64{1, 2}}, {Label: "b", Y: []float64{3}}},
	}
	tb.AddNote("note %d", 7)
	out := tb.Format()
	for _, want := range []string{"figX", "demo", "64", "128", "1.00", "3.00", "-", "note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAvgAverages(t *testing.T) {
	sc := Scenario{
		Seed: 5, LineRate: netsim.Rate10Mbps, Buffer: 128 * KB,
		FileSize: 256 << 10, Receivers: groupN(netsim.GroupB, 2),
	}
	m1 := Run(sc)
	avg := RunAvg(sc, 3)
	if !avg.Completed {
		t.Fatal("averaged run incomplete")
	}
	// The average must be in the neighborhood of a single run but is
	// generally not identical (different seeds).
	if avg.ThroughputMbps <= 0 {
		t.Error("averaged throughput non-positive")
	}
	if m1.ThroughputMbps <= 0 {
		t.Error("single-run throughput non-positive")
	}
}

func TestTableFormatCSV(t *testing.T) {
	tb := &Table{
		ID: "figY", Title: "demo", XLabel: "buffer KB", YLabel: "Mbps",
		X:      []int{64, 128},
		Series: []Series{{Label: "a,b", Y: []float64{1.5, 2}}, {Label: "c", Y: []float64{3}}},
	}
	tb.AddNote("careful")
	out := tb.FormatCSV()
	for _, want := range []string{"# figY", "buffer KB,\"a,b\",c", "64,1.5,3", "128,2,", "# note: careful"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV output missing %q:\n%s", want, out)
		}
	}
}
