package experiments

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// ExtEarlyProbe is the ablation for the early-probe extension (Section
// 7, item 1). With small buffers H-RMC behaves like stop-and-wait: the
// window fills, the MINBUF deadline passes, the sender probes, and a
// full probe round trip passes before release. Probing EarlyProbeRTTs
// before the deadline overlaps the probe exchange with the tail of the
// hold time. Receivers' update periods are pinned long so probes — not
// periodic updates — carry the release information, isolating the
// mechanism under study.
func ExtEarlyProbe(opt Options) []*Table {
	opt.sanitize()
	bufs := []int{32, 64, 128, 256}
	if opt.Quick {
		bufs = []int{32, 128}
	}
	t := &Table{
		ID:     "ext-earlyprobe",
		Title:  "early-probe ablation: throughput with probe-bound releases (10 Mbps, 3 WAN receivers)",
		XLabel: "buffer KB", YLabel: "throughput Mbps",
		X: bufs,
	}
	for _, variant := range []struct {
		label string
		rtts  float64
	}{
		{"baseline", 0},
		{"early 4 RTTs", 4},
	} {
		s := Series{Label: variant.label}
		for _, b := range bufs {
			m := RunAvg(Scenario{
				Seed: 200, LineRate: netsim.Rate10Mbps,
				Buffer: b * KB, FileSize: fileSize(opt, 4),
				Receivers:      groupN(netsim.GroupC, 3),
				UpdatePeriod:   20 * sim.Second, // pin: probes do the work
				EarlyProbeRTTs: variant.rtts,
			}, opt.Seeds)
			s.Y = append(s.Y, m.ThroughputMbps)
			checkInvariants(t, fmt.Sprintf("%s/%dK", variant.label, b), m, 0)
		}
		t.Series = append(t.Series, s)
	}
	t.AddNote("early probes hide the probe round trip inside the MINBUF hold; gains concentrate at small buffers")
	return []*Table{t}
}

// ExtMulticastProbe is the ablation for the multicast-probe extension
// (Section 7, item 2): with many receivers lagging at once, one
// multicast PROBE replaces a burst of unicasts. The series compare the
// probe packets transmitted; throughput stays comparable (the table's
// second panel) while sender probe traffic collapses.
func ExtMulticastProbe(opt Options) []*Table {
	opt.sanitize()
	counts := []int{10, 25, 50}
	if opt.Quick {
		counts = []int{10, 25}
	}
	probes := &Table{
		ID:     "ext-mcastprobe",
		Title:  "multicast-probe ablation: probe packets sent (10 Mbps, WAN receivers, 64K buffers)",
		XLabel: "receivers", YLabel: "probe packets",
		X: counts,
	}
	tp := &Table{
		ID:     "ext-mcastprobe-tp",
		Title:  "multicast-probe ablation: throughput (same runs)",
		XLabel: "receivers", YLabel: "throughput Mbps",
		X: counts,
	}
	for _, variant := range []struct {
		label     string
		threshold int
	}{
		{"unicast probes", 0},
		{"multicast ≥4", 4},
	} {
		ps := Series{Label: variant.label}
		ts := Series{Label: variant.label}
		for _, n := range counts {
			m := RunAvg(Scenario{
				Seed: 210, LineRate: netsim.Rate10Mbps,
				Buffer: 64 * KB, FileSize: fileSize(opt, 2),
				Receivers:               groupN(netsim.GroupC, n),
				UpdatePeriod:            20 * sim.Second,
				MulticastProbeThreshold: variant.threshold,
			}, opt.Seeds)
			ps.Y = append(ps.Y, m.ProbesSent)
			ts.Y = append(ts.Y, m.ThroughputMbps)
			checkInvariants(probes, fmt.Sprintf("%s/%d", variant.label, n), m, 0)
		}
		probes.Series = append(probes.Series, ps)
		tp.Series = append(tp.Series, ts)
	}
	probes.AddNote("ProbesSent counts multicast probes once; wire copies scale with the group via IP multicast")
	return []*Table{probes, tp}
}

// ExtFec is the ablation for the forward-error-correction extension
// (Section 7, item 4): XOR parity every K packets lets receivers repair
// single losses locally. On a lossy wide-area path this converts most
// NAK round trips into silent local rebuilds — the paper's motivation
// for wireless environments, where uncorrelated tail-link loss
// dominates.
func ExtFec(opt Options) []*Table {
	opt.sanitize()
	naks := &Table{
		ID:     "ext-fec",
		Title:  "FEC ablation: NAKs at the sender (10 Mbps, 5 WAN receivers, 256K buffers)",
		XLabel: "fec group K", YLabel: "naks",
		X: []int{0, 4, 8, 16},
	}
	tp := &Table{
		ID:     "ext-fec-tp",
		Title:  "FEC ablation: throughput and recoveries (same runs)",
		XLabel: "fec group K", YLabel: "value",
		X: []int{0, 4, 8, 16},
	}
	sn := Series{Label: "naks"}
	st := Series{Label: "throughput Mbps"}
	for _, k := range naks.X {
		m := RunAvg(Scenario{
			Seed: 230, LineRate: netsim.Rate10Mbps,
			Buffer: 256 * KB, FileSize: fileSize(opt, 4),
			Receivers:    groupN(netsim.GroupC, 5),
			FECGroupSize: k,
		}, opt.Seeds)
		sn.Y = append(sn.Y, m.Naks)
		st.Y = append(st.Y, m.ThroughputMbps)
		checkInvariants(naks, fmt.Sprintf("K=%d", k), m, 0)
	}
	naks.Series = append(naks.Series, sn)
	tp.Series = append(tp.Series, st)
	naks.AddNote("K=0 disables FEC; smaller K trades more parity overhead for more single-loss coverage")
	naks.AddNote("FEC trades throughput (parity overhead + quieter feedback) for a large cut in NAKs and retransmissions — the right trade for the paper's wireless motivation")
	return []*Table{naks, tp}
}

// ExtLocalRecovery is the ablation for the local-recovery extension
// (Section 7, item 3): NAKs are multicast with SRM-style suppression and
// peers serve repairs, offloading the sender's retransmitter. In this
// topology peers are no closer than the sender, so the benefit shows up
// as sender offload (fewer sender retransmissions, repairs served by the
// group), not as lower latency.
func ExtLocalRecovery(opt Options) []*Table {
	opt.sanitize()
	counts := []int{5, 10, 20}
	if opt.Quick {
		counts = []int{5, 10}
	}
	retr := &Table{
		ID:     "ext-localrec",
		Title:  "local-recovery ablation: sender retransmissions (10 Mbps, WAN receivers, 256K buffers)",
		XLabel: "receivers", YLabel: "sender retransmissions",
		X: counts,
	}
	tp := &Table{
		ID:     "ext-localrec-tp",
		Title:  "local-recovery ablation: throughput and repairs (same runs)",
		XLabel: "receivers", YLabel: "value",
		X: counts,
	}
	for _, variant := range []struct {
		label string
		on    bool
	}{
		{"centralized", false},
		{"local recovery", true},
	} {
		sr := Series{Label: variant.label}
		st := Series{Label: variant.label + " Mbps"}
		for _, n := range counts {
			m := RunAvg(Scenario{
				Seed: 240, LineRate: netsim.Rate10Mbps,
				Buffer: 256 * KB, FileSize: fileSize(opt, 4),
				Receivers:     groupN(netsim.GroupC, n),
				LocalRecovery: variant.on,
			}, opt.Seeds)
			sr.Y = append(sr.Y, m.Retrans)
			st.Y = append(st.Y, m.ThroughputMbps)
			checkInvariants(retr, fmt.Sprintf("%s/%d", variant.label, n), m, 0)
		}
		retr.Series = append(retr.Series, sr)
		tp.Series = append(tp.Series, st)
	}
	retr.AddNote("repairs multicast by peers replace sender retransmissions; delivery guarantees are unchanged")
	return []*Table{retr, tp}
}

// ExtScaling studies receiver-count scaling beyond the paper's 100 (the
// Section 5.2 discussion: feedback processing at the sender eventually
// costs throughput, which RMTP-style local processing would address).
// One run per point (many-receiver runs are heavy).
func ExtScaling(opt Options) []*Table {
	opt.sanitize()
	counts := []int{1, 5, 10, 25, 50, 100, 200}
	if opt.Quick {
		counts = []int{1, 10, 50}
	}
	tp := &Table{
		ID:     "ext-scaling",
		Title:  "receiver scaling: throughput (10 Mbps, group A, 1024K buffers)",
		XLabel: "receivers", YLabel: "throughput Mbps",
		X: counts,
	}
	fb := &Table{
		ID:     "ext-scaling-fb",
		Title:  "receiver scaling: feedback packets at the sender (same runs)",
		XLabel: "receivers", YLabel: "updates+naks+rate requests",
		X: counts,
	}
	st := Series{Label: "H-RMC"}
	sf := Series{Label: "H-RMC"}
	for _, n := range counts {
		m := Run(Scenario{
			Seed: 220, LineRate: netsim.Rate10Mbps,
			Buffer: 1024 * KB, FileSize: fileSize(opt, 10),
			Receivers: groupN(netsim.GroupA, n),
		})
		st.Y = append(st.Y, m.ThroughputMbps)
		sf.Y = append(sf.Y, m.Updates+m.Naks+m.RateRequests+m.Urgents)
		checkInvariants(tp, fmt.Sprintf("%dr", n), m, 0)
	}
	tp.Series = append(tp.Series, st)
	fb.Series = append(fb.Series, sf)
	tp.AddNote("the paper stops at 100 receivers and points to RMTP-style local processing beyond")
	return []*Table{tp, fb}
}
