// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5): the release-information study (Figure 3), the
// experimental LAN study at 10 and 100 Mbps (Figures 10–13), and the
// simulation study over characteristic groups (Figures 14–16). Each
// figure has a runner returning formatted tables; cmd/hrmc-bench and the
// root bench_test.go drive them.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/app"
	"repro/internal/netsim"
	"repro/internal/rate"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Scenario describes one simulated transfer.
type Scenario struct {
	Seed     uint64
	LineRate float64 // bytes/second
	Buffer   int     // per-socket kernel buffer, bytes (sndbuf == rcvbuf)
	FileSize int64
	// Receivers lists one characteristic group per receiver.
	Receivers []netsim.Group
	// DiskIO selects the disk-to-disk application model.
	DiskIO bool
	// Mode selects H-RMC or the RMC baseline.
	Mode sender.Mode
	// NICQueueBytes overrides the egress queue bound (0 keeps default).
	NICQueueBytes int
	// UpdatePeriod overrides the receivers' initial update period.
	UpdatePeriod sim.Time
	// Limit bounds the run (default 2000 s of virtual time).
	Limit sim.Time
	// Extensions.
	EarlyProbeRTTs          float64
	MulticastProbeThreshold int
	FECGroupSize            int
	LocalRecovery           bool
	// TraceTo, when non-nil, receives a text protocol-event trace from
	// every party.
	TraceTo io.Writer
}

// Metrics is what a run yields, aggregating the counters the paper
// plots.
type Metrics struct {
	Completed      bool
	Duration       sim.Time
	ThroughputMbps float64

	// Sender-side feedback activity (what Figures 11, 13, 15(b), 16(b)
	// count: arrivals at the sender).
	Naks         float64
	RateRequests float64
	Urgents      float64
	Updates      float64
	ProbesSent   float64
	Retrans      float64
	NakErrs      float64

	// Local-recovery extension counters.
	RepairsSent      float64
	RetransCancelled float64

	// Figure 3 metric, in percent.
	ReleaseInfoPct float64

	NICDrops, RouterDrops float64
	BadBytes              float64
}

// Run executes one scenario and returns its metrics.
func Run(sc Scenario) Metrics {
	if sc.Limit <= 0 {
		sc.Limit = 2000 * sim.Second
	}
	cfg := netsim.DefaultConfig(sc.LineRate, sc.Seed)
	if sc.NICQueueBytes != 0 {
		cfg.NICQueueBytes = sc.NICQueueBytes
	}
	net := netsim.New(cfg)

	rcfg := rate.DefaultConfig()
	rcfg.MaxRate = sc.LineRate

	diskRng := sim.NewRNG(sc.Seed ^ 0xD15C)
	var src app.Source
	if sc.DiskIO {
		src = app.NewDiskSource(sc.FileSize, app.DefaultDiskSourceConfig(diskRng.Stream(0)))
	} else {
		src = app.NewMemorySource(sc.FileSize)
	}
	// Seed the worst-receiver RTT estimate from the deployment's most
	// distant group (the paper's sender learns it from the first JOIN
	// exchanges; seeding avoids an unprotected warm-up window).
	var maxDelay sim.Time
	for _, g := range sc.Receivers {
		if g.Delay > maxDelay {
			maxDelay = g.Delay
		}
	}
	var sndTrace trace.Sink
	if sc.TraceTo != nil {
		sndTrace = trace.NewTextSink(sc.TraceTo, "snd")
	}
	s := sender.New(sender.Config{
		SndBuf:                  sc.Buffer,
		Mode:                    sc.Mode,
		Rate:                    rcfg,
		InitialRTT:              2*maxDelay + 10*sim.Millisecond,
		ExpectedReceivers:       len(sc.Receivers),
		EarlyProbeRTTs:          sc.EarlyProbeRTTs,
		MulticastProbeThreshold: sc.MulticastProbeThreshold,
		FECGroupSize:            sc.FECGroupSize,
		LocalRecovery:           sc.LocalRecovery,
		Trace:                   sndTrace,
	})
	net.AddSender(s, src)

	rmode := receiver.HRMC
	if sc.Mode == sender.RMC {
		rmode = receiver.RMC
	}
	for i, g := range sc.Receivers {
		var sink app.Sink = app.MemorySink{}
		if sc.DiskIO {
			sink = app.NewDiskSink(app.DefaultDiskSinkConfig(diskRng.Stream(uint64(i) + 1)))
		}
		var rcvTrace trace.Sink
		if sc.TraceTo != nil {
			rcvTrace = trace.NewTextSink(sc.TraceTo, fmt.Sprintf("rcv%d", i))
		}
		r := receiver.New(receiver.Config{
			RcvBuf:              sc.Buffer,
			Mode:                rmode,
			InitialUpdatePeriod: sc.UpdatePeriod,
			AssumedRTT:          2 * g.Delay,
			FECGroupSize:        sc.FECGroupSize,
			LocalRecovery:       sc.LocalRecovery,
			Trace:               rcvTrace,
		})
		net.AddReceiver(r, g, sink)
	}

	res := net.Run(sc.Limit)
	st := s.Stats()
	m := Metrics{
		Completed:        res.Completed,
		Duration:         res.Duration,
		ThroughputMbps:   res.ThroughputMbps(),
		Naks:             float64(st.NaksReceived),
		RateRequests:     float64(st.RateRequestsReceived),
		Urgents:          float64(st.UrgentReceived),
		Updates:          float64(st.UpdatesReceived),
		ProbesSent:       float64(st.ProbesSent + st.MulticastProbesSent),
		Retrans:          float64(st.Retransmissions),
		NakErrs:          float64(st.NakErrsSent),
		ReleaseInfoPct:   100 * st.ReleaseInfoRatio(),
		RetransCancelled: float64(st.RetransCancelled),
		NICDrops:         float64(res.NICDrops),
		RouterDrops:      float64(res.RouterDrops),
	}
	for _, r := range net.Receivers() {
		m.BadBytes += float64(r.BadBytes)
		m.RepairsSent += float64(r.M.Stats().RepairsSent)
	}
	return m
}

// RunAvg averages seeds runs of the scenario (seeds ≥ 1), mirroring the
// paper's five-test averages.
func RunAvg(sc Scenario, seeds int) Metrics {
	if seeds < 1 {
		seeds = 1
	}
	var acc Metrics
	acc.Completed = true
	for i := 0; i < seeds; i++ {
		s := sc
		s.Seed = sc.Seed + uint64(i)*1000003
		m := Run(s)
		acc.Completed = acc.Completed && m.Completed
		acc.Duration += m.Duration
		acc.ThroughputMbps += m.ThroughputMbps
		acc.Naks += m.Naks
		acc.RateRequests += m.RateRequests
		acc.Urgents += m.Urgents
		acc.Updates += m.Updates
		acc.ProbesSent += m.ProbesSent
		acc.Retrans += m.Retrans
		acc.NakErrs += m.NakErrs
		acc.ReleaseInfoPct += m.ReleaseInfoPct
		acc.RepairsSent += m.RepairsSent
		acc.RetransCancelled += m.RetransCancelled
		acc.NICDrops += m.NICDrops
		acc.RouterDrops += m.RouterDrops
		acc.BadBytes += m.BadBytes
	}
	f := float64(seeds)
	acc.Duration = sim.Time(float64(acc.Duration) / f)
	acc.ThroughputMbps /= f
	acc.Naks /= f
	acc.RateRequests /= f
	acc.Urgents /= f
	acc.Updates /= f
	acc.ProbesSent /= f
	acc.Retrans /= f
	acc.NakErrs /= f
	acc.ReleaseInfoPct /= f
	acc.RepairsSent /= f
	acc.RetransCancelled /= f
	acc.NICDrops /= f
	acc.RouterDrops /= f
	acc.BadBytes /= f
	return acc
}

// groupN returns n receivers all in group g.
func groupN(g netsim.Group, n int) []netsim.Group {
	gs := make([]netsim.Group, n)
	for i := range gs {
		gs[i] = g
	}
	return gs
}

// mix returns receivers split between two groups.
func mix(a netsim.Group, na int, b netsim.Group, nb int) []netsim.Group {
	return append(groupN(a, na), groupN(b, nb)...)
}

// MB is a file-size unit.
const MB = int64(1) << 20

// KB is a buffer-size unit.
const KB = 1 << 10
