package experiments

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sender"
	"repro/internal/sim"
)

// Standard kernel-buffer sweeps (KB), as plotted in the paper.
var (
	buffersStd = []int{64, 128, 256, 512, 1024}
	buffersExt = []int{64, 128, 256, 512, 1024, 2048}
)

func bufList(opt Options, ext bool) []int {
	if opt.Quick {
		if ext {
			return []int{64, 512, 2048}
		}
		return []int{64, 256, 1024}
	}
	if ext {
		return buffersExt
	}
	return buffersStd
}

func fileSize(opt Options, mb int64) int64 {
	if opt.Quick {
		if mb >= 40 {
			return 4 * MB
		}
		return 2 * MB
	}
	return mb * MB
}

// checkInvariants appends notes when a run breaks the reproduction's
// ground rules (incomplete transfer, corrupted bytes, or an H-RMC
// NAK_ERR).
func checkInvariants(t *Table, label string, m Metrics, mode sender.Mode) {
	if m.BadBytes > 0 {
		t.AddNote("%s: %v corrupted bytes delivered", label, m.BadBytes)
	}
	if mode == sender.HRMC {
		if !m.Completed {
			t.AddNote("%s: transfer did not complete within the limit", label)
		}
		if m.NakErrs > 0 {
			t.AddNote("%s: H-RMC emitted %v NAK_ERRs (invariant violation)", label, m.NakErrs)
		}
	} else if m.NakErrs > 0 {
		// Expected for the baseline: pure NAK reliability can fail.
		t.AddNote("%s: RMC reliability gap — %v NAK_ERRs", label, m.NakErrs)
	}
}

// Fig3 reproduces Figure 3: the percentage of buffer releases for which
// the sender had complete receiver information, without updates
// (original RMC, panel a) and with updates (H-RMC, panel b), for LAN,
// MAN and WAN loss environments, 10 receivers.
func Fig3(opt Options) []*Table {
	opt.sanitize()
	bufs := bufList(opt, false)
	size := fileSize(opt, 5)
	envs := []struct {
		name string
		g    netsim.Group
	}{
		{"LAN .005%", netsim.GroupA},
		{"MAN 0.5%", netsim.GroupB},
		{"WAN 2%", netsim.GroupC},
	}
	var tables []*Table
	for _, panel := range []struct {
		id, title string
		mode      sender.Mode
	}{
		{"fig3a", "release info without updates (original RMC)", sender.RMC},
		{"fig3b", "release info with updates (H-RMC)", sender.HRMC},
	} {
		t := &Table{
			ID: panel.id, Title: panel.title,
			XLabel: "buffer KB", YLabel: "% releases with complete info",
			X: bufs,
		}
		for _, env := range envs {
			s := Series{Label: env.name}
			for _, b := range bufs {
				m := RunAvg(Scenario{
					Seed: 30, LineRate: netsim.Rate10Mbps,
					Buffer: b * KB, FileSize: size,
					Receivers: groupN(env.g, 10),
					Mode:      panel.mode,
					Limit:     400 * sim.Second,
				}, opt.Seeds)
				s.Y = append(s.Y, m.ReleaseInfoPct)
				checkInvariants(t, fmt.Sprintf("%s/%dK", env.name, b), m, panel.mode)
			}
			t.Series = append(t.Series, s)
		}
		tables = append(tables, t)
	}
	return tables
}

// fig10Runs runs the experimental-testbed matrix at the given line rate
// and returns the metrics per (disk, sizeMB, receivers, buffer).
func runPanel(opt Options, lineRate float64, disk bool, sizeMB int64, nRecv int, bufs []int, seedBase uint64) []Metrics {
	var ms []Metrics
	for _, b := range bufs {
		ms = append(ms, RunAvg(Scenario{
			Seed: seedBase, LineRate: lineRate,
			Buffer: b * KB, FileSize: fileSize(opt, sizeMB),
			Receivers: groupN(netsim.GroupA, nRecv),
			DiskIO:    disk,
		}, opt.Seeds))
	}
	return ms
}

// Fig10 reproduces Figure 10: H-RMC throughput on the 10 Mbps testbed,
// memory and disk tests, 10 and 40 MB files, 1–3 receivers.
func Fig10(opt Options) []*Table {
	opt.sanitize()
	bufs := bufList(opt, false)
	var tables []*Table
	for _, panel := range []struct {
		id, title string
		disk      bool
		sizeMB    int64
	}{
		{"fig10a", "memory-to-memory throughput, 10 MB", false, 10},
		{"fig10b", "memory-to-memory throughput, 40 MB", false, 40},
		{"fig10c", "disk-to-disk throughput, 10 MB", true, 10},
		{"fig10d", "disk-to-disk throughput, 40 MB", true, 40},
	} {
		t := &Table{
			ID: panel.id, Title: panel.title + " (10 Mbps)",
			XLabel: "buffer KB", YLabel: "throughput Mbps",
			X: bufs,
		}
		for n := 1; n <= 3; n++ {
			s := Series{Label: fmt.Sprintf("%d receiver(s)", n)}
			ms := runPanel(opt, netsim.Rate10Mbps, panel.disk, panel.sizeMB, n, bufs, 40+uint64(n))
			for i, m := range ms {
				s.Y = append(s.Y, m.ThroughputMbps)
				checkInvariants(t, fmt.Sprintf("%dr/%dK", n, bufs[i]), m, sender.HRMC)
			}
			t.Series = append(t.Series, s)
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig11 reproduces Figure 11: feedback activity (rate requests and NAKs
// arriving at the sender) during the 10 Mbps disk tests.
func Fig11(opt Options) []*Table {
	opt.sanitize()
	bufs := bufList(opt, false)
	var tables []*Table
	for _, panel := range []struct {
		id, title string
		sizeMB    int64
		naks      bool
	}{
		{"fig11a", "rate requests, 10 MB, disk-to-disk", 10, false},
		{"fig11b", "NAKs, 10 MB, disk-to-disk", 10, true},
		{"fig11c", "rate requests, 40 MB, disk-to-disk", 40, false},
		{"fig11d", "NAKs, 40 MB, disk-to-disk", 40, true},
	} {
		t := &Table{
			ID: panel.id, Title: panel.title + " (10 Mbps)",
			XLabel: "buffer KB", YLabel: "count at sender",
			X: bufs,
		}
		for n := 1; n <= 3; n++ {
			s := Series{Label: fmt.Sprintf("%d receiver(s)", n)}
			ms := runPanel(opt, netsim.Rate10Mbps, true, panel.sizeMB, n, bufs, 40+uint64(n))
			for i, m := range ms {
				if panel.naks {
					s.Y = append(s.Y, m.Naks)
				} else {
					s.Y = append(s.Y, m.RateRequests+m.Urgents)
				}
				checkInvariants(t, fmt.Sprintf("%dr/%dK", n, bufs[i]), m, sender.HRMC)
			}
			t.Series = append(t.Series, s)
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig12 reproduces Figure 12: memory-to-memory throughput on the
// 100 Mbps network.
func Fig12(opt Options) []*Table {
	opt.sanitize()
	bufs := bufList(opt, false)
	var tables []*Table
	for _, panel := range []struct {
		id, title string
		sizeMB    int64
	}{
		{"fig12a", "memory-to-memory throughput, 10 MB", 10},
		{"fig12b", "memory-to-memory throughput, 40 MB", 40},
	} {
		t := &Table{
			ID: panel.id, Title: panel.title + " (100 Mbps)",
			XLabel: "buffer KB", YLabel: "throughput Mbps",
			X: bufs,
		}
		for n := 1; n <= 3; n++ {
			s := Series{Label: fmt.Sprintf("%d receiver(s)", n)}
			ms := runPanel(opt, netsim.Rate100Mbps, false, panel.sizeMB, n, bufs, 50+uint64(n))
			for i, m := range ms {
				s.Y = append(s.Y, m.ThroughputMbps)
				checkInvariants(t, fmt.Sprintf("%dr/%dK", n, bufs[i]), m, sender.HRMC)
			}
			t.Series = append(t.Series, s)
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig13 reproduces Figure 13: NAK activity in the 100 Mbps memory tests.
// With large kernel buffers the sender's one-jiffy bursts overflow the
// network card's egress queue, producing the only NAKs of the test.
func Fig13(opt Options) []*Table {
	opt.sanitize()
	bufs := bufList(opt, true)
	var tables []*Table
	for _, panel := range []struct {
		id, title string
		sizeMB    int64
	}{
		{"fig13a", "NAK activity, 10 MB, memory-to-memory", 10},
		{"fig13b", "NAK activity, 40 MB, memory-to-memory", 40},
	} {
		t := &Table{
			ID: panel.id, Title: panel.title + " (100 Mbps)",
			XLabel: "buffer KB", YLabel: "NAKs at sender",
			X: bufs,
		}
		for n := 1; n <= 3; n++ {
			s := Series{Label: fmt.Sprintf("%d receiver(s)", n)}
			for i, b := range bufs {
				m := RunAvg(Scenario{
					Seed: 60 + uint64(n), LineRate: netsim.Rate100Mbps,
					Buffer: b * KB, FileSize: fileSize(opt, panel.sizeMB),
					Receivers: groupN(netsim.GroupA, n),
					// The testbed NIC: an egress queue just under one
					// jiffy of line rate, which the full-rate bursts
					// reached only with large buffers can overflow.
					NICQueueBytes: 112 << 10,
				}, opt.Seeds)
				s.Y = append(s.Y, m.Naks)
				checkInvariants(t, fmt.Sprintf("%dr/%dK", n, bufs[i]), m, sender.HRMC)
			}
			t.Series = append(t.Series, s)
		}
		tables = append(tables, t)
	}
	return tables
}

// Tests 1–5 of Figure 14(b).
func testCase(n int, receivers int) []netsim.Group {
	part := func(frac float64) int { return int(frac * float64(receivers)) }
	switch n {
	case 1:
		return groupN(netsim.GroupA, receivers)
	case 2:
		return groupN(netsim.GroupB, receivers)
	case 3:
		return groupN(netsim.GroupC, receivers)
	case 4:
		return mix(netsim.GroupB, receivers-part(0.2), netsim.GroupC, part(0.2))
	case 5:
		return mix(netsim.GroupB, part(0.2), netsim.GroupC, receivers-part(0.2))
	}
	panic("unknown test case")
}

// Fig14 emits the characteristic-group and test-case definitions of
// Figure 14 as data tables.
func Fig14(opt Options) []*Table {
	groups := &Table{
		ID: "fig14a", Title: "characteristic groups",
		XLabel: "delay ms", YLabel: "loss %",
		X: []int{2, 20, 100},
		Series: []Series{
			{Label: "loss %", Y: []float64{0.005, 0.5, 2}},
		},
	}
	groups.AddNote("group A = 2 ms/0.005%%, B = 20 ms/0.5%%, C = 100 ms/2%%")
	tests := &Table{
		ID: "fig14b", Title: "test cases (receiver composition)",
		XLabel: "test", YLabel: "% of receivers",
		X: []int{1, 2, 3, 4, 5},
		Series: []Series{
			{Label: "% in A", Y: []float64{100, 0, 0, 0, 0}},
			{Label: "% in B", Y: []float64{0, 100, 0, 80, 20}},
			{Label: "% in C", Y: []float64{0, 0, 100, 20, 80}},
		},
	}
	return []*Table{groups, tests}
}

// fig1516 builds the simulated throughput and rate-request panels for a
// line rate.
func fig1516(opt Options, idPrefix string, lineRate float64, seedBase uint64) []*Table {
	bufs := bufList(opt, true)
	size := fileSize(opt, 10)
	tp := &Table{
		ID: idPrefix + "a", Title: fmt.Sprintf("throughput, 10 receivers (%.0f Mbps, simulated)", lineRate*8/1e6),
		XLabel: "buffer KB", YLabel: "throughput Mbps",
		X: bufs,
	}
	rr := &Table{
		ID: idPrefix + "b", Title: fmt.Sprintf("rate reduce requests, 10 receivers (%.0f Mbps, simulated)", lineRate*8/1e6),
		XLabel: "buffer KB", YLabel: "rate requests at sender",
		X: bufs,
	}
	for test := 1; test <= 5; test++ {
		st := Series{Label: fmt.Sprintf("Test %d", test)}
		sr := Series{Label: fmt.Sprintf("Test %d", test)}
		for i, b := range bufs {
			m := RunAvg(Scenario{
				Seed: seedBase + uint64(test), LineRate: lineRate,
				Buffer: b * KB, FileSize: size,
				Receivers: testCase(test, 10),
			}, opt.Seeds)
			st.Y = append(st.Y, m.ThroughputMbps)
			sr.Y = append(sr.Y, m.RateRequests+m.Urgents)
			checkInvariants(tp, fmt.Sprintf("test%d/%dK", test, bufs[i]), m, sender.HRMC)
		}
		tp.Series = append(tp.Series, st)
		rr.Series = append(rr.Series, sr)
	}
	return []*Table{tp, rr}
}

// Fig15 reproduces Figure 15: the 10 Mbps simulation study — throughput
// and rate-reduce requests for Tests 1–5 with 10 receivers, plus the
// 100-receiver scaling panel.
func Fig15(opt Options) []*Table {
	opt.sanitize()
	tables := fig1516(opt, "fig15", netsim.Rate10Mbps, 70)

	// Panel (c): 100 receivers. The paper shows throughput dipping
	// slightly versus 10 receivers and recovering with buffer size.
	bufs := bufList(opt, true)
	nRecv := 100
	testsC := []int{1, 2, 3}
	if opt.Quick {
		nRecv = 30
		testsC = []int{1, 3}
	}
	tc := &Table{
		ID: "fig15c", Title: fmt.Sprintf("throughput, %d receivers (10 Mbps, simulated)", nRecv),
		XLabel: "buffer KB", YLabel: "throughput Mbps",
		X: bufs,
	}
	for _, test := range testsC {
		s := Series{Label: fmt.Sprintf("Test %d", test)}
		for i, b := range bufs {
			m := RunAvg(Scenario{
				Seed: 80 + uint64(test), LineRate: netsim.Rate10Mbps,
				Buffer: b * KB, FileSize: fileSize(opt, 10),
				Receivers: testCase(test, nRecv),
			}, 1) // 100-receiver runs are heavy; one seed like the paper's single plot
			s.Y = append(s.Y, m.ThroughputMbps)
			checkInvariants(tc, fmt.Sprintf("test%d/%dK", test, bufs[i]), m, sender.HRMC)
		}
		tc.Series = append(tc.Series, s)
	}
	return append(tables, tc)
}

// Fig16 reproduces Figure 16: the 100 Mbps simulation study, plus the
// Section 5.2 headline that 100 receivers still reach roughly two thirds
// of the line rate with large buffers.
func Fig16(opt Options) []*Table {
	opt.sanitize()
	tables := fig1516(opt, "fig16", netsim.Rate100Mbps, 90)

	nRecv := 100
	if opt.Quick {
		nRecv = 30
	}
	buf := 2048
	m := Run(Scenario{
		Seed: 95, LineRate: netsim.Rate100Mbps,
		Buffer: buf * KB, FileSize: fileSize(opt, 40),
		Receivers: groupN(netsim.GroupA, nRecv),
	})
	tc := &Table{
		ID: "fig16c", Title: fmt.Sprintf("max throughput, %d receivers, large buffers (100 Mbps, simulated)", nRecv),
		XLabel: "buffer KB", YLabel: "throughput Mbps",
		X:      []int{buf},
		Series: []Series{{Label: fmt.Sprintf("%d receivers, group A", nRecv), Y: []float64{m.ThroughputMbps}}},
	}
	tc.AddNote("paper reports ≈66 Mbps for 100 receivers — a modest drop from the 10-receiver case")
	checkInvariants(tc, "100r", m, sender.HRMC)
	return append(tables, tc)
}

var _ = sim.Second // keep sim imported for future panels
