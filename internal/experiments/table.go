package experiments

import (
	"fmt"
	"strings"
)

// Series is one line of a figure: a label and a Y value per X point.
type Series struct {
	Label string
	Y     []float64
}

// Table is one figure panel rendered as the paper's rows: X is the swept
// parameter (kernel buffer size in KB throughout the evaluation).
type Table struct {
	ID     string // e.g. "fig10a"
	Title  string
	XLabel string
	YLabel string
	X      []int
	Series []Series
	// Notes carries caveats (incomplete runs, invariant checks).
	Notes []string
}

// AddNote appends a caveat to the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table as aligned text, one row per X value and one
// column per series.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "  %s vs %s\n", t.YLabel, t.XLabel)
	// Header.
	fmt.Fprintf(&b, "  %-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %14s", s.Label)
	}
	b.WriteByte('\n')
	for i, x := range t.X {
		fmt.Fprintf(&b, "  %-12d", x)
		for _, s := range t.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %14.2f", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// FormatCSV renders the table as CSV: a header row of series labels,
// one row per X value. The title and notes become comment lines.
func (t *Table) FormatCSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s (%s vs %s)\n", t.ID, t.Title, t.YLabel, t.XLabel)
	b.WriteString(csvEscape(t.XLabel))
	for _, s := range t.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Label))
	}
	b.WriteByte('\n')
	for i, x := range t.X {
		fmt.Fprintf(&b, "%d", x)
		for _, s := range t.Series {
			b.WriteByte(',')
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%g", s.Y[i])
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# note: %s\n", n)
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Runner regenerates one paper figure and returns its panels.
type Runner struct {
	Name string
	// Desc says what the paper's figure shows.
	Desc string
	Run  func(opt Options) []*Table
}

// Options tunes how much work a regeneration does.
type Options struct {
	// Seeds is how many seeded runs are averaged per point (the paper
	// averages five tests).
	Seeds int
	// Quick shrinks file sizes and sweeps for smoke tests and benches.
	Quick bool
}

// DefaultOptions mirror the paper's averaging.
func DefaultOptions() Options { return Options{Seeds: 3} }

func (o *Options) sanitize() {
	if o.Seeds < 1 {
		o.Seeds = 1
	}
}

// Registry returns all figure runners in paper order.
func Registry() []Runner {
	return []Runner{
		{Name: "fig3", Desc: "Percentage of releases with complete receiver information, RMC vs H-RMC (simulated, 10 receivers)", Run: Fig3},
		{Name: "fig10", Desc: "Throughput on a 10 Mbps network: mem/disk × 10/40 MB × 1-3 receivers (experimental testbed, simulated here)", Run: Fig10},
		{Name: "fig11", Desc: "Feedback activity (rate requests, NAKs) for the 10 Mbps disk tests", Run: Fig11},
		{Name: "fig12", Desc: "Throughput on a 100 Mbps network, memory-to-memory", Run: Fig12},
		{Name: "fig13", Desc: "NAK activity on a 100 Mbps network: NIC burst drops appear beyond 1024K buffers", Run: Fig13},
		{Name: "fig14", Desc: "Characteristic groups and test cases (definitions)", Run: Fig14},
		{Name: "fig15", Desc: "Simulated 10 Mbps: throughput and rate requests for Tests 1-5; 100-receiver scaling", Run: Fig15},
		{Name: "fig16", Desc: "Simulated 100 Mbps: throughput and rate requests; 100-receiver headline", Run: Fig16},
		{Name: "ext-earlyprobe", Desc: "Ablation: early probes vs stop-and-wait releases (Section 7, item 1)", Run: ExtEarlyProbe},
		{Name: "ext-mcastprobe", Desc: "Ablation: multicast vs unicast probes with many lagging receivers (Section 7, item 2)", Run: ExtMulticastProbe},
		{Name: "ext-fec", Desc: "Ablation: XOR-parity forward error correction vs NAK recovery (Section 7, item 4)", Run: ExtFec},
		{Name: "ext-localrec", Desc: "Ablation: local recovery (multicast NAKs + peer repairs) vs centralized recovery (Section 7, item 3)", Run: ExtLocalRecovery},
		{Name: "ext-scaling", Desc: "Extension study: receiver-count scaling to 200 (Section 5.2 discussion)", Run: ExtScaling},
	}
}

// Find returns the runner with the given name.
func Find(name string) (Runner, bool) {
	for _, r := range Registry() {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}
