package experiments

import "testing"

func TestExtFecCutsNaks(t *testing.T) {
	tables := ExtFec(quick())
	noInvariantNotes(t, tables)
	naks := findTable(t, tables, "ext-fec")
	s := naks.Series[0]
	base := s.Y[0] // K=0
	if base == 0 {
		t.Fatal("baseline produced no NAKs; ablation vacuous")
	}
	cut := false
	for _, y := range s.Y[1:] {
		if y < base/2 {
			cut = true
		}
	}
	if !cut {
		t.Errorf("no FEC setting halved the NAK count: %v", s.Y)
	}
	// Throughput pays a bounded price for parity overhead and quieter
	// feedback, but must not collapse.
	tp := findTable(t, tables, "ext-fec-tp").Series[0]
	for i, y := range tp.Y[1:] {
		if y < tp.Y[0]*0.5 {
			t.Errorf("K=%d throughput collapsed: %.2f vs baseline %.2f", naks.X[i+1], y, tp.Y[0])
		}
	}
}

func TestExtScalingShape(t *testing.T) {
	tables := ExtScaling(quick())
	noInvariantNotes(t, tables)
	tp := findTable(t, tables, "ext-scaling")
	s := tp.Series[0]
	first, last := s.Y[0], s.Y[len(s.Y)-1]
	if last > first {
		t.Errorf("throughput grew with receiver count: %.2f → %.2f", first, last)
	}
	if last < first*0.5 {
		t.Errorf("scaling collapse too steep at these counts: %.2f → %.2f", first, last)
	}
	fb := findTable(t, tables, "ext-scaling-fb")
	f := fb.Series[0]
	if f.Y[len(f.Y)-1] <= f.Y[0] {
		t.Error("feedback volume did not grow with receiver count")
	}
}

func TestExtEarlyProbeHelpsSmallBuffers(t *testing.T) {
	tables := ExtEarlyProbe(quick())
	noInvariantNotes(t, tables)
	tb := findTable(t, tables, "ext-earlyprobe")
	base := findSeries(t, tb, "baseline")
	early := findSeries(t, tb, "early 4 RTTs")
	// At the smallest buffer (deepest stop-and-wait), early probes must
	// not hurt and should help.
	if early.Y[0] < base.Y[0] {
		t.Errorf("early probes reduced small-buffer throughput: %.3f vs %.3f", early.Y[0], base.Y[0])
	}
	improved := false
	for i := range base.Y {
		if early.Y[i] > base.Y[i]*1.02 {
			improved = true
		}
	}
	if !improved {
		t.Error("early probes improved nothing anywhere in the sweep")
	}
}

func TestExtMulticastProbeCutsProbeTraffic(t *testing.T) {
	tables := ExtMulticastProbe(quick())
	noInvariantNotes(t, tables)
	probes := findTable(t, tables, "ext-mcastprobe")
	uni := findSeries(t, probes, "unicast probes")
	multi := findSeries(t, probes, "multicast ≥4")
	last := len(probes.X) - 1
	if uni.Y[last] == 0 {
		t.Fatal("baseline sent no probes; ablation is vacuous")
	}
	if multi.Y[last] >= uni.Y[last]/2 {
		t.Errorf("multicast probes did not cut probe traffic: %.0f vs %.0f", multi.Y[last], uni.Y[last])
	}
	// Throughput stays in the same ballpark.
	tp := findTable(t, tables, "ext-mcastprobe-tp")
	u := findSeries(t, tp, "unicast probes").Y[last]
	m := findSeries(t, tp, "multicast ≥4").Y[last]
	if m < u*0.7 {
		t.Errorf("multicast probes cost too much throughput: %.2f vs %.2f", m, u)
	}
}

func TestExtLocalRecoveryOffloadsSender(t *testing.T) {
	tables := ExtLocalRecovery(quick())
	noInvariantNotes(t, tables)
	retr := findTable(t, tables, "ext-localrec")
	base := findSeries(t, retr, "centralized")
	lr := findSeries(t, retr, "local recovery")
	last := len(retr.X) - 1
	if base.Y[last] == 0 {
		t.Fatal("baseline produced no retransmissions; ablation vacuous")
	}
	if lr.Y[last] >= base.Y[last] {
		t.Errorf("local recovery did not reduce sender retransmissions: %.0f vs %.0f", lr.Y[last], base.Y[last])
	}
	tp := findTable(t, tables, "ext-localrec-tp")
	b := findSeries(t, tp, "centralized Mbps").Y[last]
	l := findSeries(t, tp, "local recovery Mbps").Y[last]
	if l < b*0.5 {
		t.Errorf("local recovery collapsed throughput: %.2f vs %.2f", l, b)
	}
}
