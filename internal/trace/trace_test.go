package trace

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

func TestKindNames(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "Kind(") {
		t.Error("unknown kind not formatted generically")
	}
}

func TestEmitNilSinkSafe(t *testing.T) {
	Emit(nil, 0, SendData, 1, 2) // must not panic
}

func TestTextSinkFormat(t *testing.T) {
	var b strings.Builder
	s := NewTextSink(&b, "snd")
	Emit(s, 1500*sim.Millisecond, NakSent, 42, 3)
	out := b.String()
	for _, want := range []string{"snd", "nak-sent", "seq=42", "val=3", "1.500000s"} {
		if !strings.Contains(out, want) {
			t.Errorf("text sink output %q missing %q", out, want)
		}
	}
}

func TestCountingSink(t *testing.T) {
	var s CountingSink
	if s.Count(SendData) != 0 {
		t.Error("fresh sink has counts")
	}
	if _, ok := s.Last(SendData); ok {
		t.Error("fresh sink has a last event")
	}
	Emit(&s, 10, SendData, 1, 100)
	Emit(&s, 20, SendData, 2, 200)
	Emit(&s, 30, Release, 1, 0)
	if s.Count(SendData) != 2 || s.Count(Release) != 1 || s.Count(NakSent) != 0 {
		t.Errorf("counts wrong: %d %d %d", s.Count(SendData), s.Count(Release), s.Count(NakSent))
	}
	last, ok := s.Last(SendData)
	if !ok || last.Seq != 2 || last.Value != 200 || last.Time != 20 {
		t.Errorf("last = %+v, %v", last, ok)
	}
	// Out-of-range kinds are ignored, not panics.
	s.Emit(Event{Kind: Kind(200)})
	if s.Count(Kind(200)) != 0 {
		t.Error("out-of-range kind counted")
	}
}

func TestCountingSinkConcurrent(t *testing.T) {
	var s CountingSink
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				Emit(&s, 0, UpdateSent, uint32(j), 0)
			}
		}()
	}
	wg.Wait()
	if s.Count(UpdateSent) != 8000 {
		t.Errorf("concurrent count = %d", s.Count(UpdateSent))
	}
}

func TestTee(t *testing.T) {
	var a, b CountingSink
	tee := Tee{&a, nil, &b}
	Emit(tee, 0, GapDetected, 7, 0)
	if a.Count(GapDetected) != 1 || b.Count(GapDetected) != 1 {
		t.Error("tee did not fan out")
	}
}
