// Package trace provides structured protocol-event tracing for the
// H-RMC machines: senders and receivers emit coarse events (packet
// transmissions, releases, stalls, probes, rate changes, NAKs) into a
// Sink supplied via their configs. A nil Sink disables tracing with no
// overhead beyond a nil check.
//
// The package deliberately carries no formatting opinions in the event
// type itself; TextSink renders a human-readable line per event, and
// CountingSink aggregates per-kind totals for tests and tools.
package trace

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/sim"
)

// Kind classifies a protocol event.
type Kind int

// Event kinds, grouped by emitting side.
const (
	// Sender side.
	SendData Kind = iota
	SendRetransmission
	Release
	ReleaseStall
	ProbeSent
	KeepaliveSent
	RateCut
	RateStopped
	MemberJoined
	MemberLeft
	NakErrSent

	// Receiver side.
	GapDetected
	NakSent
	UpdateSent
	ProbeAnswered
	RegionWarning
	RegionCritical
	StreamComplete

	// Extensions.
	FecParitySent
	FecRecovered
	// GapFilled marks a pending gap closing (retransmission, parity
	// recovery, or rebase); aux is how long the gap stayed open — the
	// per-loss recovery latency.
	GapFilled

	// Hierarchical repair tier.
	AggUpdateSent
	HeadRepairSent
	HeadNakEscalated

	// Repair-head failover.
	HeadFailover     // leaf declared its head dead and degraded to flat mode
	HeadReadopted    // leaf re-adopted a reappeared head
	HeadDeclineSent  // head declined an un-servable HEAD_NAK range
	HeadEvicted      // sender evicted a silent head
	HeadDrainTimeout // departing head gave up waiting for a drained subtree

	numKinds
)

var kindNames = [...]string{
	SendData:           "send-data",
	SendRetransmission: "retransmit",
	Release:            "release",
	ReleaseStall:       "release-stall",
	ProbeSent:          "probe-sent",
	KeepaliveSent:      "keepalive",
	RateCut:            "rate-cut",
	RateStopped:        "rate-stopped",
	MemberJoined:       "member-joined",
	MemberLeft:         "member-left",
	NakErrSent:         "nak-err",
	GapDetected:        "gap-detected",
	NakSent:            "nak-sent",
	UpdateSent:         "update-sent",
	ProbeAnswered:      "probe-answered",
	RegionWarning:      "region-warning",
	RegionCritical:     "region-critical",
	StreamComplete:     "stream-complete",
	FecParitySent:      "fec-parity-sent",
	FecRecovered:       "fec-recovered",
	GapFilled:          "gap-filled",
	AggUpdateSent:      "agg-update-sent",
	HeadRepairSent:     "head-repair-sent",
	HeadNakEscalated:   "head-nak-escalated",
	HeadFailover:       "head-failover",
	HeadReadopted:      "head-readopted",
	HeadDeclineSent:    "head-decline-sent",
	HeadEvicted:        "head-evicted",
	HeadDrainTimeout:   "head-drain-timeout",
}

// String returns the event kind's name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one protocol occurrence.
type Event struct {
	Time sim.Time
	Kind Kind
	// Seq is the sequence number the event concerns, when meaningful.
	Seq uint32
	// Value carries a kind-specific quantity: packet count for NAKs,
	// bytes/second for rate events, member count for joins/leaves.
	Value int64
}

// Sink consumes events. Implementations must tolerate concurrent use if
// shared between live connections; the sim drivers are single-threaded.
type Sink interface {
	Emit(Event)
}

// Emit sends an event to s if s is non-nil — the helper the protocol
// machines call.
func Emit(s Sink, t sim.Time, k Kind, seq uint32, value int64) {
	if s == nil {
		return
	}
	s.Emit(Event{Time: t, Kind: k, Seq: seq, Value: value})
}

// TextSink renders events as one line each.
type TextSink struct {
	mu sync.Mutex
	w  io.Writer
	// Prefix labels the emitting party ("snd", "rcv3").
	prefix string
}

// NewTextSink writes events to w with the given party prefix.
func NewTextSink(w io.Writer, prefix string) *TextSink {
	return &TextSink{w: w, prefix: prefix}
}

// Emit implements Sink.
func (s *TextSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "%12v %-5s %-15s seq=%-10d val=%d\n",
		e.Time, s.prefix, e.Kind, e.Seq, e.Value)
}

// CountingSink tallies events per kind.
type CountingSink struct {
	mu     sync.Mutex
	counts [numKinds]int64
	last   [numKinds]Event
}

// Emit implements Sink.
func (s *CountingSink) Emit(e Event) {
	if e.Kind < 0 || e.Kind >= numKinds {
		return
	}
	s.mu.Lock()
	s.counts[e.Kind]++
	s.last[e.Kind] = e
	s.mu.Unlock()
}

// Count returns how many events of kind k arrived.
func (s *CountingSink) Count(k Kind) int64 {
	if k < 0 || k >= numKinds {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[k]
}

// Last returns the most recent event of kind k and whether any arrived.
func (s *CountingSink) Last(k Kind) (Event, bool) {
	if k < 0 || k >= numKinds {
		return Event{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last[k], s.counts[k] > 0
}

// Tee fans events out to several sinks.
type Tee []Sink

// Emit implements Sink.
func (t Tee) Emit(e Event) {
	for _, s := range t {
		if s != nil {
			s.Emit(e)
		}
	}
}
