package rate

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newC() *Controller {
	return New(Config{MinRate: 1000, MaxRate: 1e6, MSS: 100})
}

func TestStartsAtMinInSlowStart(t *testing.T) {
	c := newC()
	if c.Rate(0) != 1000 {
		t.Errorf("initial rate = %v, want MinRate", c.Rate(0))
	}
	if c.Phase(0) != SlowStart {
		t.Errorf("initial phase = %v", c.Phase(0))
	}
}

func TestSlowStartDoublesPerRTT(t *testing.T) {
	c := newC()
	rtt := 10 * sim.Millisecond
	now := sim.Time(0)
	// First call sets the growth clock; growth needs a full RTT.
	c.MaybeGrow(now, rtt)
	r0 := c.Rate(now)
	now += rtt
	c.MaybeGrow(now, rtt)
	if got := c.Rate(now); got != r0*2 {
		t.Errorf("after one RTT: rate = %v, want %v", got, r0*2)
	}
	// Sub-RTT calls must not grow again.
	c.MaybeGrow(now+rtt/2, rtt)
	if got := c.Rate(now); got != r0*2 {
		t.Errorf("sub-RTT growth happened: %v", got)
	}
}

func TestSlowStartCapsAtSsthreshThenLinear(t *testing.T) {
	c := newC()
	rtt := 10 * sim.Millisecond
	now := sim.Time(0)
	for i := 0; i < 40; i++ {
		now += rtt
		c.MaybeGrow(now, rtt)
	}
	if c.Rate(now) != 1e6 {
		t.Errorf("rate did not reach MaxRate: %v", c.Rate(now))
	}
	if c.Phase(now) != CongestionAvoidance {
		t.Errorf("phase after reaching cap = %v", c.Phase(now))
	}
}

func TestCongestionHalvesAndGoesLinear(t *testing.T) {
	c := newC()
	rtt := 10 * sim.Millisecond
	now := rtt
	for i := 0; i < 6; i++ {
		c.MaybeGrow(now, rtt)
		now += rtt
	}
	before := c.Rate(now)
	c.OnCongestion(now, rtt, 0)
	if got := c.Rate(now); got != before/2 {
		t.Errorf("after congestion: rate = %v, want %v", got, before/2)
	}
	if c.Phase(now) != CongestionAvoidance {
		t.Errorf("phase = %v, want congestion-avoidance", c.Phase(now))
	}
	// Linear growth: one MSS per RTT as a rate increment.
	r := c.Rate(now)
	now += rtt
	c.MaybeGrow(now, rtt)
	wantInc := float64(100) / rtt.Seconds()
	if got := c.Rate(now); got != r+wantInc {
		t.Errorf("linear increase = %v, want %v", got-r, wantInc)
	}
}

func TestCongestionRespectsSuggestedRate(t *testing.T) {
	c := newC()
	c.rate = 800000
	c.OnCongestion(sim.Second, sim.Millisecond, 100000)
	if got := c.Rate(sim.Second); got != 100000 {
		t.Errorf("suggested rate ignored: %v", got)
	}
	// A suggestion above rate/2 does not raise the cut.
	c2 := newC()
	c2.rate = 800000
	c2.OnCongestion(sim.Second, sim.Millisecond, 700000)
	if got := c2.Rate(sim.Second); got != 400000 {
		t.Errorf("cut = %v, want 400000", got)
	}
}

func TestCongestionFloorsAtMinRate(t *testing.T) {
	c := newC()
	now := sim.Time(0)
	for i := 0; i < 10; i++ {
		now += sim.Second
		c.OnCongestion(now, sim.Millisecond, 0)
	}
	if got := c.Rate(now); got != 1000 {
		t.Errorf("rate fell below MinRate: %v", got)
	}
}

func TestOneCutPerRTT(t *testing.T) {
	c := newC()
	c.rate = 800000
	rtt := 100 * sim.Millisecond
	now := sim.Second
	c.OnCongestion(now, rtt, 0)
	r := c.Rate(now)
	// A second cut within the same RTT is ignored (burst of NAKs from
	// many receivers counts once).
	c.OnCongestion(now+rtt/2, rtt, 0)
	if got := c.Rate(now + rtt/2); got != r {
		t.Errorf("second cut within an RTT applied: %v", got)
	}
	c.OnCongestion(now+2*rtt, rtt, 0)
	if got := c.Rate(now + 2*rtt); got != r/2 {
		t.Errorf("cut after an RTT not applied: %v", got)
	}
}

func TestUrgentStopsAndRestartsFromMin(t *testing.T) {
	c := newC()
	rtt := 10 * sim.Millisecond
	now := sim.Time(0)
	for i := 0; i < 6; i++ {
		now += rtt
		c.MaybeGrow(now, rtt)
	}
	if c.Rate(now) <= 1000 {
		t.Fatal("setup: rate did not grow")
	}
	c.OnUrgent(now, rtt)
	if got := c.Rate(now); got != 0 {
		t.Errorf("rate while stopped = %v, want 0", got)
	}
	if c.Allowance(now+rtt) != 0 {
		t.Error("allowance while stopped is non-zero")
	}
	if until, ok := c.StoppedUntil(); !ok || until != now+2*rtt {
		t.Errorf("StoppedUntil = %v,%v, want %v", until, ok, now+2*rtt)
	}
	// After two RTTs transmission resumes at MinRate in slow start.
	resume := now + 2*rtt
	if got := c.Rate(resume); got != 1000 {
		t.Errorf("rate after stop = %v, want MinRate", got)
	}
	if c.Phase(resume) != SlowStart {
		t.Errorf("phase after stop = %v, want slow-start", c.Phase(resume))
	}
}

func TestUrgentExtendsStop(t *testing.T) {
	c := newC()
	rtt := 10 * sim.Millisecond
	c.OnUrgent(0, rtt)
	c.OnUrgent(rtt, rtt) // second urgent while stopped extends
	if until, _ := c.StoppedUntil(); until != 3*rtt {
		t.Errorf("extended stop = %v, want %v", until, 3*rtt)
	}
	if got := c.Rate(2 * rtt); got != 0 {
		t.Error("rate resumed during extended stop")
	}
}

func TestCongestionIgnoredWhileStopped(t *testing.T) {
	c := newC()
	c.OnUrgent(0, 10*sim.Millisecond)
	c.OnCongestion(sim.Millisecond, sim.Millisecond, 0)
	if c.Phase(sim.Millisecond) != Stopped {
		t.Error("congestion broke the urgent stop")
	}
}

func TestAllowanceAccrual(t *testing.T) {
	c := newC() // 1000 B/s min rate
	if got := c.Allowance(0); got != 0 {
		t.Errorf("initial allowance = %d", got)
	}
	// 10ms at 1000 B/s = 10 bytes.
	if got := c.Allowance(10 * sim.Millisecond); got != 10 {
		t.Errorf("allowance after 10ms = %d, want 10", got)
	}
	c.Spend(10)
	if got := c.Allowance(10 * sim.Millisecond); got != 0 {
		t.Errorf("allowance after spend = %d", got)
	}
}

func TestAllowanceBurstCap(t *testing.T) {
	c := newC()
	c.Allowance(0)
	// After a long idle the bucket must hold at most ~2 jiffies of rate
	// (with a 2×MSS floor so one full packet always fits).
	got := c.Allowance(10 * sim.Second)
	if got > 200 { // floor dominates at 1000 B/s (20ms*1000=20 < 2*MSS)
		t.Errorf("burst after idle = %d, want ≤ 2×MSS", got)
	}
}

func TestAdvertisedClamps(t *testing.T) {
	c := New(Config{MinRate: 1, MaxRate: 1e18, MSS: 1})
	c.rate = 1e15
	if c.Advertised() != ^uint32(0) {
		t.Error("huge rate not clamped to uint32 max")
	}
}

func TestSpendFloor(t *testing.T) {
	c := newC()
	c.Allowance(sim.Second)
	c.Spend(1 << 30)
	if c.tokens != 0 {
		t.Error("Spend drove tokens negative")
	}
}

// Property: under any event sequence the rate stays within
// [0 or MinRate, MaxRate]: zero only while stopped, never above the cap,
// never below the floor while running.
func TestPropRateBounds(t *testing.T) {
	f := func(events []uint8) bool {
		c := newC()
		now := sim.Time(0)
		rtt := 5 * sim.Millisecond
		for _, e := range events {
			now += sim.Time(e%13) * sim.Millisecond
			switch e % 4 {
			case 0:
				c.MaybeGrow(now, rtt)
			case 1:
				c.OnCongestion(now, rtt, float64(e)*1000)
			case 2:
				c.OnUrgent(now, rtt)
			case 3:
				a := c.Allowance(now)
				if a < 0 {
					return false
				}
				c.Spend(a / 2)
			}
			r := c.Rate(now)
			if r < 0 || r > 1e6 {
				return false
			}
			if r == 0 && c.Phase(now) != Stopped {
				return false
			}
			if c.Phase(now) != Stopped && r < 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: an urgent stop always ends, and the first rate after it is
// exactly MinRate in slow start.
func TestPropUrgentAlwaysRecovers(t *testing.T) {
	f := func(ms uint8) bool {
		c := newC()
		rtt := sim.Time(ms%50+1) * sim.Millisecond
		c.OnUrgent(sim.Second, rtt)
		end, ok := c.StoppedUntil()
		if !ok {
			return false
		}
		return c.Rate(end) == 1000 && c.Phase(end) == SlowStart
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetCeilingClampsAndFloors(t *testing.T) {
	c := newC()
	rtt := 10 * sim.Millisecond
	now := sim.Time(0)
	// Grow well past the ceiling we are about to impose.
	for i := 0; i < 8; i++ {
		now += rtt
		c.MaybeGrow(now, rtt)
	}
	if c.Rate(now) <= 4000 {
		t.Fatalf("setup: rate %v did not grow past 4000", c.Rate(now))
	}
	c.SetCeiling(4000)
	if got := c.Ceiling(); got != 4000 {
		t.Errorf("Ceiling() = %v, want 4000", got)
	}
	if got := c.Rate(now); got != 4000 {
		t.Errorf("rate after SetCeiling = %v, want clamped to 4000", got)
	}
	// Growth must respect the new ceiling.
	for i := 0; i < 8; i++ {
		now += rtt
		c.MaybeGrow(now, rtt)
	}
	if got := c.Rate(now); got > 4000 {
		t.Errorf("rate grew to %v past ceiling 4000", got)
	}
	// Raising the ceiling again lets the linear phase resume.
	c.SetCeiling(8000)
	for i := 0; i < 4; i++ {
		now += rtt
		c.MaybeGrow(now, rtt)
	}
	if got := c.Rate(now); got <= 4000 {
		t.Errorf("rate %v did not resume growth after ceiling raise", got)
	}
	// Ceilings below MinRate are floored at MinRate.
	c.SetCeiling(1)
	if got := c.Ceiling(); got != 1000 {
		t.Errorf("Ceiling() after sub-min set = %v, want MinRate 1000", got)
	}
}
