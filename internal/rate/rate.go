// Package rate implements the rate-based half of RMC/H-RMC flow control
// (Section 2, "Flow Control"): a current transmission rate advertised in
// every outgoing packet, grown with slow-start and congestion-avoidance
// phases like TCP [Jacobson & Karels, SIGCOMM '88], halved on NAKs and
// warning rate requests, and stopped entirely for two round trips by an
// urgent rate request, after which transmission restarts from the minimum
// rate in slow start.
//
// The controller doubles as the transmitter's token bucket: the per-jiffy
// transmit timer asks for an allowance and spends it as packets go out.
package rate

import "repro/internal/sim"

// Phase is the congestion-control phase.
type Phase int

const (
	// SlowStart doubles the rate every round trip.
	SlowStart Phase = iota
	// CongestionAvoidance increases the rate linearly.
	CongestionAvoidance
	// Stopped halts forward transmission (urgent rate request); the
	// controller leaves Stopped by itself when the stop deadline passes.
	Stopped
)

func (p Phase) String() string {
	switch p {
	case SlowStart:
		return "slow-start"
	case CongestionAvoidance:
		return "congestion-avoidance"
	case Stopped:
		return "stopped"
	}
	return "unknown"
}

// Config parametrizes the controller.
type Config struct {
	// MinRate is the slow-start floor in bytes/second.
	MinRate float64
	// MaxRate caps the transmission rate in bytes/second (for example
	// the line rate).
	MaxRate float64
	// MSS is the segment payload size, used for the linear increase.
	MSS int
}

// DefaultConfig mirrors the kernel implementation: the minimum rate is
// one segment per jiffy — a 10 ms-tick transmitter cannot pace slower
// without skipping ticks — and the ceiling is 1 Gb/s (effectively
// uncapped; the network limits throughput).
func DefaultConfig() Config {
	return Config{MinRate: 140e3, MaxRate: 125e6, MSS: 1400}
}

func (c *Config) sanitize() {
	if c.MSS <= 0 {
		c.MSS = 1400
	}
	if c.MinRate <= 0 {
		c.MinRate = 16 << 10
	}
	if c.MaxRate < c.MinRate {
		c.MaxRate = c.MinRate
	}
}

// Controller is the sender's rate state. Create with New.
type Controller struct {
	cfg      Config
	rate     float64 // current transmission rate, bytes/second
	ssthresh float64
	phase    Phase
	stopped  sim.Time // when Stopped ends

	lastGrow sim.Time // last growth step
	lastCut  sim.Time // last halving, to bound cuts to one per RTT

	// Token bucket.
	tokens     float64
	lastRefill sim.Time
	refillInit bool
}

// New returns a controller at the minimum rate in slow start, as at the
// beginning of data transmission for a new connection.
func New(cfg Config) *Controller {
	cfg.sanitize()
	return &Controller{
		cfg:      cfg,
		rate:     cfg.MinRate,
		ssthresh: cfg.MaxRate,
		phase:    SlowStart,
	}
}

// Rate returns the current transmission rate in bytes/second; it is zero
// while stopped by an urgent request.
func (c *Controller) Rate(now sim.Time) float64 {
	c.maybeResume(now)
	if c.phase == Stopped {
		return 0
	}
	return c.rate
}

// Advertised returns the rate advertisement for outgoing packet headers.
// The advertisement reflects the configured rate even while transmission
// is urgently stopped, since the receivers use it for their WARNBUF rule
// once transmission resumes.
func (c *Controller) Advertised() uint32 {
	if c.rate >= float64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(c.rate)
}

// Phase returns the current phase, resolving an expired stop.
func (c *Controller) Phase(now sim.Time) Phase {
	c.maybeResume(now)
	return c.phase
}

func (c *Controller) maybeResume(now sim.Time) {
	if c.phase == Stopped && now >= c.stopped {
		// Restart from the minimum rate with slow start, per the paper:
		// "any time following an urgent rate request, the sender sets the
		// transmission rate to a minimum value and uses slow start".
		c.phase = SlowStart
		c.rate = c.cfg.MinRate
		c.lastGrow = now
	}
}

// Ceiling returns the current MaxRate ceiling in bytes/second.
func (c *Controller) Ceiling() float64 { return c.cfg.MaxRate }

// MinRate returns the configured rate floor in bytes/second.
func (c *Controller) MinRate() float64 { return c.cfg.MinRate }

// SetCeiling re-points the MaxRate ceiling at runtime; a session's
// fair-share governor uses it to apportion one line rate among many
// concurrent flows. The ceiling is floored at MinRate (the
// one-packet-per-jiffy pacing floor), and the current rate and ssthresh
// are clamped down immediately so an over-budget flow backs off within
// a tick rather than a round trip.
func (c *Controller) SetCeiling(max float64) {
	if max < c.cfg.MinRate {
		max = c.cfg.MinRate
	}
	c.cfg.MaxRate = max
	if c.ssthresh > max {
		c.ssthresh = max
	}
	if c.rate > max {
		c.rate = max
	}
}

// MaybeGrow applies at most one growth step per round trip: doubling in
// slow start until ssthresh, then a linear MSS-per-RTT increase. The
// transmitter calls this from its per-jiffy tick while it has data to
// send; growth during idle periods is suppressed by that discipline.
func (c *Controller) MaybeGrow(now sim.Time, rtt sim.Time) {
	c.maybeResume(now)
	if c.phase == Stopped {
		return
	}
	if rtt <= 0 {
		rtt = sim.Millisecond
	}
	if now-c.lastGrow < rtt {
		return
	}
	c.lastGrow = now
	switch c.phase {
	case SlowStart:
		c.rate *= 2
		if c.rate >= c.ssthresh {
			c.rate = c.ssthresh
			c.phase = CongestionAvoidance
		}
	case CongestionAvoidance:
		// One MSS per RTT, expressed as a rate increment.
		c.rate += float64(c.cfg.MSS) / rtt.Seconds()
	}
	if c.rate > c.cfg.MaxRate {
		c.rate = c.cfg.MaxRate
	}
}

// OnCongestion reacts to a NAK or a warning rate request: the rate is cut
// in half and growth switches to the linear phase. suggested, when
// non-zero, is the receiver's advertised acceptable rate (from a CONTROL
// packet) and lower-bounds the cut. Cuts are limited to one per round
// trip so a burst of feedback from many receivers counts once, mirroring
// TCP's one-cut-per-window rule.
func (c *Controller) OnCongestion(now sim.Time, rtt sim.Time, suggested float64) {
	c.maybeResume(now)
	if c.phase == Stopped {
		return
	}
	if now-c.lastCut < rtt && c.lastCut != 0 {
		return
	}
	c.lastCut = now
	target := c.rate / 2
	if suggested > 0 && suggested < target {
		target = suggested
	}
	if target < c.cfg.MinRate {
		target = c.cfg.MinRate
	}
	c.rate = target
	c.ssthresh = target
	c.phase = CongestionAvoidance
	c.lastGrow = now
	c.tokens = 0
}

// OnUrgent reacts to an urgent rate request: forward transmission stops
// for two round trips regardless of the advertised rate.
func (c *Controller) OnUrgent(now sim.Time, rtt sim.Time) {
	if rtt <= 0 {
		rtt = sim.Millisecond
	}
	until := now + 2*rtt
	if c.phase == Stopped {
		if until > c.stopped {
			c.stopped = until
		}
		return
	}
	c.phase = Stopped
	c.stopped = until
	c.ssthresh = c.rate / 2
	if c.ssthresh < c.cfg.MinRate {
		c.ssthresh = c.cfg.MinRate
	}
	c.tokens = 0
	c.lastCut = now
}

// Allowance refills the token bucket to now and returns the bytes that
// may be transmitted immediately. The bucket is capped at two jiffies of
// the current rate (and never below one MSS while running) so the sender
// can use a full tick's budget but cannot accumulate an unbounded burst.
func (c *Controller) Allowance(now sim.Time) int {
	c.maybeResume(now)
	r := c.Rate(now)
	if !c.refillInit {
		c.lastRefill = now
		c.refillInit = true
	}
	dt := now - c.lastRefill
	c.lastRefill = now
	if r <= 0 {
		c.tokens = 0
		return 0
	}
	c.tokens += r * dt.Seconds()
	// The burst cap must admit at least one full packet (header
	// included) or low rates would deadlock, hence the 2×MSS floor.
	burst := r * (20 * sim.Millisecond).Seconds()
	if burst < float64(2*c.cfg.MSS) {
		burst = float64(2 * c.cfg.MSS)
	}
	if c.tokens > burst {
		c.tokens = burst
	}
	return int(c.tokens)
}

// Spend consumes n bytes of allowance.
func (c *Controller) Spend(n int) {
	c.tokens -= float64(n)
	if c.tokens < 0 {
		c.tokens = 0
	}
}

// StoppedUntil returns the end of the current urgent stop, if any.
func (c *Controller) StoppedUntil() (sim.Time, bool) {
	if c.phase == Stopped {
		return c.stopped, true
	}
	return 0, false
}
