// Package stats defines the counters the performance evaluation reads:
// feedback activity (NAKs, rate requests, updates, probes), traffic
// volumes, and the Figure 3 release-information metric.
package stats

// Sender aggregates sender-side protocol counters. All fields count
// events since the connection started. The zero value is ready to use.
type Sender struct {
	PacketsSent     int64 // first transmissions of DATA packets
	BytesSent       int64 // payload bytes in first transmissions
	Retransmissions int64 // DATA packets retransmitted
	RetransBytes    int64

	NaksReceived         int64
	NakErrsSent          int64 // retransmission requests that could not be met
	RateRequestsReceived int64 // warning CONTROL packets
	UrgentReceived       int64 // URG CONTROL packets
	UpdatesReceived      int64
	JoinsReceived        int64
	LeavesReceived       int64

	ProbesSent          int64 // unicast PROBE packets
	MulticastProbesSent int64 // multicast PROBE packets (extension)
	FecParitySent       int64 // FEC parity packets (extension)
	FecGroupRestarts    int64 // parity groups abandoned on a discontinuous transmit (extension)
	RepairsHeard        int64 // peer repairs observed (local recovery)
	RetransCancelled    int64 // retransmissions cancelled by peer repairs
	KeepalivesSent      int64

	// RateBps and CeilingBps are flow-control gauges refreshed on every
	// transmit tick: the current configured transmission rate and the
	// rate-control ceiling (the session governor's share under a
	// budget), both in bytes/second. In Aggregate they sum across
	// flows, giving the aggregate offered rate and aggregate ceiling.
	RateBps    int64
	CeilingBps int64

	// Figure 3 metric: of the Releases buffer-release decisions, how
	// many happened while the sender had complete information from all
	// receivers (every member known past the released sequence number).
	Releases             int64
	ReleasesCompleteInfo int64
	// ReleaseStalls counts transmit ticks on which the H-RMC sender
	// wanted to advance the window but could not because receiver
	// information was lacking.
	ReleaseStalls int64

	// Hierarchical repair tier (extension). AggUpdatesReceived counts
	// AGG_UPDATE packets from repair heads; RepairHeads and
	// DownstreamMembers are gauges refreshed on every transmit tick:
	// how many membership-table entries are repair heads, and how many
	// downstream receivers those heads report in aggregate.
	AggUpdatesReceived int64
	RepairHeads        int64
	DownstreamMembers  int64

	// Repair-head failover (extension). HeadsEvicted counts repair heads
	// evicted for AGG_UPDATE silence; OrphanedLeaves is a gauge of
	// downstream receivers last reported by since-evicted heads that have
	// not yet re-homed — it rises by the evicted head's reported member
	// count and falls as former leaves JOIN directly or a restarted head
	// re-reports its subtree.
	HeadsEvicted   int64
	OrphanedLeaves int64
}

// ReleaseInfoRatio returns the Figure 3 percentage: the fraction of
// buffer releases for which the sender had complete receiver
// information. It reports 1 when no release has happened yet.
func (s *Sender) ReleaseInfoRatio() float64 {
	if s.Releases == 0 {
		return 1
	}
	return float64(s.ReleasesCompleteInfo) / float64(s.Releases)
}

// Receiver aggregates receiver-side protocol counters.
type Receiver struct {
	DataReceived    int64 // DATA packets accepted (in or out of order)
	Duplicates      int64
	OutOfWindow     int64 // DATA packets dropped: beyond the receive window
	BytesDelivered  int64 // payload bytes handed to the application
	ChecksumErrors  int64
	NaksSent        int64 // first NAK for a gap
	NakRetries      int64 // NAK resends by the NAK manager
	UpdatesSent     int64
	UpdatesSkipped  int64 // update timer fired but other reverse traffic sufficed
	ProbesReceived  int64
	RateRequests    int64 // warning CONTROL packets sent
	UrgentRequests  int64 // URG CONTROL packets sent
	KeepalivesHeard int64
	FecParityHeard  int64 // FEC parity packets received (extension)
	FecRecovered    int64 // data packets rebuilt from parity (extension)
	FecParityWasted int64 // parity packets that repaired nothing (extension)
	FecFallbackNaks int64 // gaps NAKed after the FEC defer expired unrepaired (extension)
	PeerNaksHeard   int64 // multicast NAKs from other receivers (local recovery)
	RepairsSent     int64 // multicast repairs served to peers (local recovery)
	// MaxFillPermille tracks the highest receive-window fill observed,
	// in thousandths — a diagnostic for flow-control studies.
	MaxFillPermille int64

	// Hierarchical repair tier (extension). RepairHead is 1 when this
	// receiver serves as a repair head, 0 otherwise; RepairMembers is a
	// gauge of its current downstream membership. The remaining fields
	// count head activity: HEAD_NAKs received from downstream members,
	// those suppressed as duplicates within the suppression interval,
	// those answered from the head's retained window, those escalated
	// to the sender, downstream members evicted by timeout, and
	// aggregated UPDATEs emitted to the sender.
	RepairHead           int64
	RepairMembers        int64
	HeadNaksReceived     int64
	HeadNaksSuppressed   int64
	HeadNaksAnswered     int64
	HeadNaksEscalated    int64
	RepairMembersEvicted int64
	AggUpdatesSent       int64

	// Repair-head failover (extension). HeadFailovers counts the times
	// this leaf declared its repair head dead and degraded to flat mode;
	// HeadReadoptions the times it re-attached to a reappeared head.
	// HeadDeclinesSent counts explicit HEAD_DECLINEs this head multicast
	// for un-servable ranges; HeadDeclinesHeard counts declines this leaf
	// received and converted to direct end-to-end recovery.
	// HeadDrainTimeouts counts departures forced after the deferred-LEAVE
	// drain bound expired. NakErrsHeard counts authoritative sender
	// refusals received; UnrecoverableHoles counts sequence numbers the
	// receiver gave up re-requesting after such a refusal.
	HeadFailovers      int64
	HeadReadoptions    int64
	HeadDeclinesSent   int64
	HeadDeclinesHeard  int64
	HeadDrainTimeouts  int64
	NakErrsHeard       int64
	UnrecoverableHoles int64
}
