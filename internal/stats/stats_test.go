package stats

import "testing"

func TestSnapshotCopies(t *testing.T) {
	s := &Sender{PacketsSent: 5, Releases: 2, ReleasesCompleteInfo: 1}
	cp := s.Snapshot()
	if cp != *s {
		t.Errorf("snapshot %+v differs from source %+v", cp, *s)
	}
	s.PacketsSent++
	if cp.PacketsSent != 5 {
		t.Errorf("snapshot tracked the live struct: PacketsSent = %d", cp.PacketsSent)
	}

	r := &Receiver{DataReceived: 7, MaxFillPermille: 420}
	rcp := r.Snapshot()
	if rcp != *r {
		t.Errorf("receiver snapshot %+v differs from source %+v", rcp, *r)
	}
}

func TestAggregateMerges(t *testing.T) {
	var a Aggregate
	a.AddSender(&Sender{PacketsSent: 3, BytesSent: 100, Releases: 2, ReleasesCompleteInfo: 1})
	a.AddSender(&Sender{PacketsSent: 4, Retransmissions: 2, Releases: 2, ReleasesCompleteInfo: 2})
	a.AddReceiver(&Receiver{BytesDelivered: 10, MaxFillPermille: 500})
	a.AddReceiver(&Receiver{BytesDelivered: 5, MaxFillPermille: 200})

	if a.SenderFlows != 2 || a.ReceiverFlows != 2 {
		t.Errorf("flow counts = %d/%d, want 2/2", a.SenderFlows, a.ReceiverFlows)
	}
	if a.Sender.PacketsSent != 7 || a.Sender.BytesSent != 100 || a.Sender.Retransmissions != 2 {
		t.Errorf("sender totals wrong: %+v", a.Sender)
	}
	if got := a.Sender.ReleaseInfoRatio(); got != 0.75 {
		t.Errorf("merged ReleaseInfoRatio = %v, want 0.75", got)
	}
	if a.Receiver.BytesDelivered != 15 {
		t.Errorf("BytesDelivered = %d, want 15", a.Receiver.BytesDelivered)
	}
	// MaxFillPermille is a gauge: merged by maximum, not summed.
	if a.Receiver.MaxFillPermille != 500 {
		t.Errorf("MaxFillPermille = %d, want max 500", a.Receiver.MaxFillPermille)
	}
}
