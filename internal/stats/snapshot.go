// Snapshot and aggregation support: a session hosting many concurrent
// flows needs to report per-flow and whole-process counter totals while
// the protocol machines are still running. Snapshot copies use atomic
// loads so a monitor never sees a torn 64-bit read; cross-field
// consistency additionally requires holding whatever lock serializes
// the machine (internal/session snapshots under each flow's lock).
package stats

import (
	"reflect"
	"sync/atomic"
)

// Snapshot returns a copy of the sender counters with every field read
// atomically.
func (s *Sender) Snapshot() Sender {
	var out Sender
	atomicCopy(&out, s)
	return out
}

// Snapshot returns a copy of the receiver counters with every field
// read atomically.
func (r *Receiver) Snapshot() Receiver {
	var out Receiver
	atomicCopy(&out, r)
	return out
}

// Aggregate accumulates totals across many flows' counters, giving a
// session-wide view of protocol activity. The zero value is ready to
// use.
type Aggregate struct {
	SenderFlows   int // flows merged with AddSender
	ReceiverFlows int // flows merged with AddReceiver

	Sender   Sender   // field-wise totals over all merged sender flows
	Receiver Receiver // field-wise totals over all merged receiver flows
}

// AddSender merges an atomically-read copy of s into the totals.
func (a *Aggregate) AddSender(s *Sender) {
	a.SenderFlows++
	cp := s.Snapshot()
	mergeInt64(&a.Sender, &cp)
}

// AddReceiver merges an atomically-read copy of r into the totals.
func (a *Aggregate) AddReceiver(r *Receiver) {
	a.ReceiverFlows++
	cp := r.Snapshot()
	mergeInt64(&a.Receiver, &cp)
}

// maxFields are gauges, merged by maximum rather than summed.
var maxFields = map[string]bool{"MaxFillPermille": true}

// atomicCopy copies every int64 field of src into dst with atomic
// loads. Both arguments must be pointers to the same struct type.
func atomicCopy(dst, src any) {
	d := reflect.ValueOf(dst).Elem()
	s := reflect.ValueOf(src).Elem()
	for i := 0; i < s.NumField(); i++ {
		if s.Field(i).Kind() != reflect.Int64 {
			continue
		}
		v := atomic.LoadInt64(s.Field(i).Addr().Interface().(*int64))
		d.Field(i).SetInt(v)
	}
}

// mergeInt64 adds src's int64 fields into dst, taking the maximum for
// gauge fields. Both arguments must be pointers to the same struct
// type.
func mergeInt64(dst, src any) {
	d := reflect.ValueOf(dst).Elem()
	s := reflect.ValueOf(src).Elem()
	t := s.Type()
	for i := 0; i < s.NumField(); i++ {
		if s.Field(i).Kind() != reflect.Int64 {
			continue
		}
		sv := s.Field(i).Int()
		if maxFields[t.Field(i).Name] {
			if sv > d.Field(i).Int() {
				d.Field(i).SetInt(sv)
			}
		} else {
			d.Field(i).SetInt(d.Field(i).Int() + sv)
		}
	}
}
