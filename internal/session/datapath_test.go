package session

import (
	"bytes"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/packet"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/transport"
)

// TestSessionPoolBalanceUnderConcurrentAbort drives the zero-copy
// datapath's ownership contract under the race detector: half the
// flows transfer to completion while the other half are aborted
// concurrently, mid-stream, while the shared send poller is draining
// their staged packets. Every pooled buffer — window-held data on both
// sides, staged sends in flight, demux drops — must come back: the
// pool's get/put counters have to balance once the session is closed
// and every reader has drained.
func TestSessionPoolBalanceUnderConcurrentAbort(t *testing.T) {
	const (
		groups = 12
		size   = 256 << 10
	)
	before := packet.PoolStats()
	hub := transport.NewHub()
	sess := New(Config{})

	var readers, writers sync.WaitGroup
	var toAbort []*SenderFlow
	for g := 0; g < groups; g++ {
		sp, rp := groupPorts(g)
		data := make([]byte, size)
		app.FillPattern(data, int64(g)<<20)
		rf, err := sess.OpenReceiver(hub.Endpoint(), receiver.Config{
			LocalPort: rp, RemotePort: sp, RcvBuf: 64 << 10,
		})
		if err != nil {
			t.Fatalf("OpenReceiver g%d: %v", g, err)
		}
		sf, err := sess.OpenSender(hub.Endpoint(), sender.Config{
			LocalPort: sp, RemotePort: rp, SndBuf: 64 << 10,
			ExpectedReceivers: 1, Rate: fastRate(),
		})
		if err != nil {
			t.Fatalf("OpenSender g%d: %v", g, err)
		}
		if g < groups/2 {
			// Full transfer: must still be bit-exact with aborts
			// happening on neighboring flows.
			readers.Add(1)
			go func(g int) {
				defer readers.Done()
				got, err := io.ReadAll(rf)
				if err != nil || !bytes.Equal(got, data) {
					t.Errorf("group %d delivery: err=%v equal=%v", g, err, bytes.Equal(got, data))
				}
			}(g)
			writers.Add(1)
			go func(g int) {
				defer writers.Done()
				if _, err := sf.Write(data); err != nil {
					t.Errorf("group %d write: %v", g, err)
				}
				if err := sf.Close(); err != nil {
					t.Errorf("group %d close: %v", g, err)
				}
			}(g)
		} else {
			// Abort mid-stream: the writer pushes an endless stream so
			// the window stays full and the poller stays busy; both
			// sides are torn down while packets are staged and held.
			toAbort = append(toAbort, sf)
			readers.Add(1)
			go func() {
				defer readers.Done()
				_, _ = io.Copy(io.Discard, rf)
			}()
			writers.Add(1)
			go func() {
				defer writers.Done()
				_, _ = sf.Write(make([]byte, 16<<20))
			}()
		}
	}

	// Let every flow get airborne, then abort the victims concurrently
	// while the survivors keep the poller mid-batch.
	time.Sleep(30 * time.Millisecond)
	var ab sync.WaitGroup
	for _, sf := range toAbort {
		ab.Add(1)
		go func(sf *SenderFlow) {
			defer ab.Done()
			sf.Abort()
		}(sf)
	}
	ab.Wait()
	writers.Wait()

	// Close drains the survivors and fails the orphaned receivers;
	// their readers drain any still-buffered data (recycling it) and
	// exit. ErrAborted from the aborted flows' drain is expected.
	if err := sess.Close(); err != nil && err != ErrAborted {
		t.Errorf("session close: %v", err)
	}
	readers.Wait()

	after := packet.PoolStats()
	gets, puts := after.Gets-before.Gets, after.Puts-before.Puts
	if gets != puts {
		t.Errorf("pool imbalance after close: gets +%d, puts +%d (leaked %d)",
			gets, puts, gets-puts)
	}
	if gets == 0 {
		t.Error("pool saw no traffic — test exercised nothing")
	}
}

// TestSessionGoroutinesScaleWithTransports pins the shared-poller
// model: a session's goroutine count is one tick loop, one send
// poller, and one receive loop per transport — admitting 63 more flow
// pairs onto the same two endpoints must not grow it.
func TestSessionGoroutinesScaleWithTransports(t *testing.T) {
	const (
		flows = 64
		size  = 8 << 10
	)
	hub := transport.NewHub()
	sess := New(Config{})
	defer sess.Abort()
	sndEp, rcvEp := hub.Endpoint(), hub.Endpoint()

	type pair struct {
		sf *SenderFlow
		rf *ReceiverFlow
	}
	open := func(g int) pair {
		sp, rp := groupPorts(g)
		rf, err := sess.OpenReceiver(rcvEp, receiver.Config{
			LocalPort: rp, RemotePort: sp, RcvBuf: 32 << 10,
		})
		if err != nil {
			t.Fatalf("OpenReceiver g%d: %v", g, err)
		}
		sf, err := sess.OpenSender(sndEp, sender.Config{
			LocalPort: sp, RemotePort: rp, SndBuf: 32 << 10,
			ExpectedReceivers: 1, Rate: fastRate(),
		})
		if err != nil {
			t.Fatalf("OpenSender g%d: %v", g, err)
		}
		return pair{sf, rf}
	}

	pairs := make([]pair, 0, flows)
	pairs = append(pairs, open(0))
	time.Sleep(20 * time.Millisecond) // both recv loops running
	base := runtime.NumGoroutine()

	for g := 1; g < flows; g++ {
		pairs = append(pairs, open(g))
	}
	time.Sleep(20 * time.Millisecond)
	admitted := runtime.NumGoroutine()
	// Slack absorbs unrelated runtime/test goroutines winding up or
	// down; the per-flow goroutine pair this replaces would add 126.
	if grown := admitted - base; grown > 3 {
		t.Errorf("admitting %d more flow pairs grew goroutines by %d (base %d); want O(transports + const)",
			flows-1, grown, base)
	}

	// The count must hold with every flow live, not just idle: run a
	// small transfer on each and re-sample after they finish.
	var wg sync.WaitGroup
	for g, p := range pairs {
		data := make([]byte, size)
		app.FillPattern(data, int64(g)<<20)
		wg.Add(1)
		go func(g int, rf *ReceiverFlow) {
			defer wg.Done()
			got, err := io.ReadAll(rf)
			if err != nil || !bytes.Equal(got, data) {
				t.Errorf("group %d delivery: err=%v equal=%v", g, err, bytes.Equal(got, data))
			}
		}(g, p.rf)
		wg.Add(1)
		go func(g int, sf *SenderFlow) {
			defer wg.Done()
			if _, err := sf.Write(data); err != nil {
				t.Errorf("group %d write: %v", g, err)
			}
			if err := sf.Close(); err != nil {
				t.Errorf("group %d close: %v", g, err)
			}
		}(g, p.sf)
	}
	wg.Wait()
	time.Sleep(20 * time.Millisecond)
	if grown := runtime.NumGoroutine() - base; grown > 3 {
		t.Errorf("after %d concurrent transfers goroutines grew by %d (base %d); want O(transports + const)",
			flows, grown, base)
	}
}
