package session

import (
	"math"
	"sync"

	"repro/internal/packet"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
)

// Kind distinguishes flow directions.
type Kind int

const (
	// KindSender flows multicast a stream to a group.
	KindSender Kind = iota
	// KindReceiver flows read a stream from a group.
	KindReceiver
)

func (k Kind) String() string {
	if k == KindReceiver {
		return "receiver"
	}
	return "sender"
}

// FlowOption configures a flow at open time.
type FlowOption func(*flow)

// WithLabel names the flow in snapshots and logs.
func WithLabel(label string) FlowOption {
	return func(f *flow) { f.label = label }
}

// WithWeight sets the flow's fair-share weight under a session budget
// (default 1). Non-positive weights are ignored.
func WithWeight(w float64) FlowOption {
	return func(f *flow) {
		if w > 0 {
			f.weight = w
		}
	}
}

// WithGroup tags the flow with its multicast group on a shared
// GroupTransport: outgoing multicast is addressed to g (instead of the
// transport's only group), and arriving packets tagged with a
// different group are dropped at the demultiplexer as cross-group
// strays. Zero (the default) keeps the single-group behavior.
func WithGroup(g transport.GroupID) FlowOption {
	return func(f *flow) { f.group = g }
}

// DefaultFecGroupSize is the parity group size K used when FEC is
// enabled without an explicit K.
const DefaultFecGroupSize = 8

// FecConfig enables per-flow forward error correction: the sender
// multicasts one best-effort XOR parity packet per K data packets, and
// the receiver repairs single losses locally before falling back to a
// NAK. Both ends of a flow must agree on it.
type FecConfig struct {
	// Enabled turns the parity pipeline on.
	Enabled bool
	// K is the parity group size; 0 means DefaultFecGroupSize. Clamped
	// to [2, fec.MaxGroup] by the machines.
	K int
}

// GroupSize resolves the effective group size of an enabled config.
func (c FecConfig) GroupSize() int {
	if c.K <= 0 {
		return DefaultFecGroupSize
	}
	return c.K
}

// WithFec sets the flow's forward-error-correction parameters. On a
// sender it drives the parity pipeline; on a receiver it arms local
// parity recovery and defers first NAKs long enough for parity to win
// the race.
func WithFec(fc FecConfig) FlowOption {
	return func(f *flow) { f.fec = fc }
}

// anyFlow is what the session loops drive: either a *SenderFlow or a
// *ReceiverFlow.
type anyFlow interface {
	base() *flow
	tick(now sim.Time)
	// handleBatch feeds one receive batch's worth of packets to the
	// protocol machine under a single flow-lock acquisition, staging
	// outgoing traffic once at the end. The flow takes ownership of
	// the envelopes' packets and releases every packet the machine did
	// not retain; retained data packets (the receive window's
	// hold-until-release buffering) are released when the application
	// consumes them.
	handleBatch(now sim.Time, env []transport.Envelope)
	snapshot() FlowSnapshot
	drainClose() error
	abort()
}

// flow is the state shared by both flow kinds. The mutex serializes
// the sans-I/O machine against the tick loop, the receive loop, and
// the application; cond wakes blocked Write/Read/Close callers.
type flow struct {
	sess   *Session
	tr     transport.Transport
	bt     transport.BatchTransport
	kind   Kind
	id     int
	label  string
	port   uint16
	weight float64
	fec    FecConfig
	// group is the flow's multicast group on a shared GroupTransport
	// (see WithGroup); immutable after init, so the receive and send
	// paths read it without the flow lock.
	group transport.GroupID
	// sendShard is the session send-poller shard this flow stages onto,
	// inherited from its transport at attach; immutable afterwards.
	sendShard int

	mu   sync.Mutex
	cond *sync.Cond
	err  error
	// itemScratch is the reusable staging buffer flushLocked fills and
	// enqueueSend copies onto the session's shared send queue; guarded
	// by mu.
	itemScratch []outItem
}

func (f *flow) init(s *Session, kind Kind, tr transport.Transport, port uint16, opts []FlowOption) {
	f.sess = s
	f.tr = tr
	f.bt = transport.Batched(tr)
	f.kind = kind
	f.port = port
	f.weight = 1
	f.cond = sync.NewCond(&f.mu)
	for _, o := range opts {
		o(f)
	}
}

// stage appends one outgoing packet to the scratch staging buffer.
// Caller holds f.mu. The header is copied by value so later machine
// mutation cannot race the poller's send; windowed packets (still
// owned by the send window) get a covering Retain, every other packet
// transfers its ownership to the poller's post-send Put.
func (f *flow) stage(items []outItem, p *packet.Packet, windowed, multicast bool, to packet.NodeID) []outItem {
	if windowed {
		packet.Retain(p)
	}
	return append(items, outItem{
		bt:        f.bt,
		hdr:       p.Header,
		payload:   p.Payload,
		owner:     p,
		multicast: multicast,
		to:        to,
		group:     f.group,
	})
}

// ship hands the staged items to the session's shared send poller and
// clears the scratch slots. Caller holds f.mu.
func (f *flow) ship(items []outItem) {
	f.sess.enqueueSend(f.sendShard, items)
	for i := range items {
		items[i] = outItem{}
	}
	f.itemScratch = items[:0]
}

func (f *flow) base() *flow { return f }

// fail records a driver-side error (transport closed, abort) and wakes
// every waiter.
func (f *flow) fail(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// ID returns the flow's session-unique ID.
func (f *flow) ID() int { return f.id }

// Label returns the flow's WithLabel name, if any.
func (f *flow) Label() string { return f.label }

// Port returns the flow's local (demux) port.
func (f *flow) Port() uint16 { return f.port }

// Group returns the flow's WithGroup tag (0 on single-group
// transports).
func (f *flow) Group() transport.GroupID { return f.group }

// SenderFlow is one reliable-multicast sending flow hosted by a
// session. It keeps the blocking Write/Close socket feel of the kernel
// implementation's BSD interface.
type SenderFlow struct {
	flow
	m *sender.Sender

	// governed marks that the session governor owns the rate ceiling;
	// capCeiling is the flow's own configured ceiling (SetCeiling at
	// runtime, else the open-time rate config), which bounds the flow
	// even under a larger governor share.
	governed   bool
	capCeiling float64
}

func (f *SenderFlow) tick(now sim.Time) {
	f.tickSender(now, 0, false, false)
}

// govHeadroom is the growth room the governor leaves a flow pacing
// below its ceiling: the ceiling tracks twice the current rate — one
// slow-start doubling ahead — so ramp-up is never throttled, while the
// rest of the flow's unused share is donated to still-hungry flows.
const govHeadroom = 2

// tickSender runs one governor-aware tick under a single lock
// acquisition: apply the share the governor computed last tick, tick
// the protocol machine, and sample the demand report for the next
// allocation. It returns the flow's share request and whether the flow
// still participates in the budget.
func (f *SenderFlow) tickSender(now sim.Time, share float64, haveShare, governed bool) (shareReq, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		// A failed (aborted) flow's machine is quiescent — its buffers
		// may already be back in the pool.
		return shareReq{}, false
	}
	switch {
	case governed && haveShare && share > 0:
		if f.capCeiling > 0 && share > f.capCeiling {
			share = f.capCeiling
		}
		f.m.SetMaxRate(share)
		f.governed = true
	case !governed && f.governed:
		f.m.SetMaxRate(f.capCeiling)
		f.governed = false
	}
	f.m.Tick(now)
	f.flushLocked()
	f.cond.Broadcast()
	if !governed || f.err != nil || f.m.Done() {
		return shareReq{}, false
	}
	rate := f.m.Rate(now)
	ceil := f.m.MaxRate()
	demand := govHeadroom * rate
	if rate >= 0.95*ceil {
		// Pacing at the ceiling: appetite unknown, stay hungry.
		demand = math.Inf(1)
	}
	if min := f.m.MinRate(); demand < min {
		demand = min
	}
	if f.capCeiling > 0 && demand > f.capCeiling {
		demand = f.capCeiling
	}
	return shareReq{Weight: f.weight, Demand: demand}, true
}

func (f *SenderFlow) handleBatch(now sim.Time, env []transport.Envelope) {
	f.mu.Lock()
	if f.err != nil {
		f.mu.Unlock()
		transport.ReleaseEnvelopes(env)
		return
	}
	for i := range env {
		f.m.HandlePacket(now, env[i].From, env[i].Pkt)
	}
	// Release on feedback, not on the next tick: when an UPDATE just
	// completed the membership picture for the window front, this frees
	// window space (and wakes a blocked Write) immediately instead of
	// up to a jiffy later — the difference between latency-bound and
	// rate-bound single-flow throughput.
	f.m.TryRelease(now)
	f.flushLocked()
	f.cond.Broadcast()
	f.mu.Unlock()
	// The sender machine never retains feedback packets.
	transport.ReleaseEnvelopes(env)
}

func (f *SenderFlow) flushLocked() {
	outs := f.m.Outgoing()
	if len(outs) == 0 {
		return
	}
	items := f.itemScratch[:0]
	for _, o := range outs {
		items = f.stage(items, o.Pkt, o.Windowed, o.Dest.Multicast, o.Dest.Node)
	}
	// The headers are staged by value and the packets covered by their
	// own references, so the drained slice can go straight back.
	f.m.Recycle(outs)
	f.ship(items)
}

// SetWeight re-points the flow's fair-share weight under the session
// budget at runtime; non-positive weights are ignored.
func (f *SenderFlow) SetWeight(w float64) {
	if w <= 0 {
		return
	}
	f.mu.Lock()
	f.weight = w
	f.mu.Unlock()
}

// SetCeiling re-points the flow's own rate ceiling at runtime, in
// bytes/second. Ungoverned flows apply it directly; under a session
// budget it caps the flow's governor share and demand, so the flow
// never paces above it even when the budget would allow more.
func (f *SenderFlow) SetCeiling(bytesPerSec float64) {
	if bytesPerSec <= 0 {
		return
	}
	f.mu.Lock()
	f.capCeiling = bytesPerSec
	if !f.governed {
		f.m.SetMaxRate(bytesPerSec)
	}
	f.mu.Unlock()
}

// Weight returns the flow's current fair-share weight.
func (f *SenderFlow) Weight() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.weight
}

// Write sends b on the multicast stream, blocking while the send
// window is full. It returns len(b) unless the flow fails.
func (f *SenderFlow) Write(b []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for n < len(b) {
		if f.err != nil {
			return n, f.err
		}
		w := f.m.Write(f.sess.now(), b[n:])
		n += w
		if w > 0 {
			// Ship what fit without waiting for the next tick.
			f.m.Tick(f.sess.now())
			f.flushLocked()
			continue
		}
		f.cond.Wait()
	}
	return n, nil
}

// Close marks the end of the stream and blocks until every receiver is
// known to hold all data (the send window fully releases). The flow
// stays bound — late feedback is still handled and its counters remain
// in Snapshot — until Detach or Session.Close.
func (f *SenderFlow) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		// Aborted (or transport-failed): the machine is quiescent and
		// its buffers are back in the pool — queueing a FIN into the
		// dead window would strand the packet.
		return f.err
	}
	f.m.Close(f.sess.now())
	// Ship the FIN now instead of leaving it for the next shared tick: on
	// a short stream the FIN is the packet the receivers' end-of-stream
	// (and so the final UPDATE that drains the window) is waiting on.
	f.m.Tick(f.sess.now())
	f.flushLocked()
	for !f.m.Done() && f.err == nil {
		f.cond.Wait()
	}
	return f.err
}

// Abort tears the flow down without waiting for delivery, returning
// its buffered window packets to the shared pool. In-flight sends the
// poller staged before the abort finish on their own references.
func (f *SenderFlow) Abort() {
	f.mu.Lock()
	if f.err == nil {
		f.err = ErrAborted
	}
	f.m.ReleaseBuffers()
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Detach unbinds the flow from the session, freeing its port and
// dropping it from Snapshot.
func (f *SenderFlow) Detach() { f.sess.detach(f) }

// Stats returns the flow's live protocol counters; use Snapshot for a
// consistent copy while the flow is running.
func (f *SenderFlow) Stats() *stats.Sender { return f.m.Stats() }

// Members returns the number of receivers currently joined.
func (f *SenderFlow) Members() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.m.Members()
}

// Done reports whether the stream is closed and fully released.
func (f *SenderFlow) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.m.Done()
}

func (f *SenderFlow) snapshot() FlowSnapshot {
	f.mu.Lock()
	cp := f.m.Stats().Snapshot()
	done := f.m.Done()
	w := f.weight
	f.mu.Unlock()
	return FlowSnapshot{
		ID: f.id, Label: f.label, Kind: f.kind, Port: f.port, Group: f.group,
		Weight: w, Done: done, Sender: &cp,
	}
}

func (f *SenderFlow) drainClose() error { return f.Close() }
func (f *SenderFlow) abort()            { f.Abort() }

// ReceiverFlow is one reliable-multicast receiving flow hosted by a
// session, implementing io.Reader semantics: Read blocks for data and
// returns io.EOF at the end of the stream.
type ReceiverFlow struct {
	flow
	m *receiver.Receiver

	senderSet bool
	sender    packet.NodeID
}

func (f *ReceiverFlow) tick(now sim.Time) {
	f.mu.Lock()
	if f.err == nil {
		f.m.Advance(now)
		f.flushLocked()
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

func (f *ReceiverFlow) handleBatch(now sim.Time, env []transport.Envelope) {
	f.mu.Lock()
	if f.err != nil {
		// An aborted flow's window may already have released its
		// buffers; feeding it would re-retain into a dead machine.
		f.mu.Unlock()
		transport.ReleaseEnvelopes(env)
		return
	}
	if !f.senderSet && len(env) > 0 {
		f.senderSet = true
		f.sender = env[0].From
	}
	for i := range env {
		// The source address rides along so a repair head can attribute
		// downstream member feedback (JOIN/UPDATE/LEAVE/HEAD_NAK).
		retained, _ := f.m.HandleFrom(now, env[i].From, env[i].Pkt)
		if !retained {
			transport.PutPacket(env[i].Pkt)
		}
		env[i] = transport.Envelope{}
	}
	f.flushLocked()
	f.cond.Broadcast()
	f.mu.Unlock()
}

func (f *ReceiverFlow) flushLocked() {
	items := f.itemScratch[:0]
	for _, p := range f.m.OutgoingMulticast() {
		items = f.stage(items, p, false, true, 0)
	}
	// Repair-plane traffic (leaf↔head) carries its own destination.
	for _, a := range f.m.OutgoingAddressed() {
		items = f.stage(items, a.Pkt, false, false, a.To)
	}
	// Unicast feedback stays queued in the machine until the sender's
	// node ID is learned from its first packet.
	if f.senderSet {
		for _, p := range f.m.Outgoing() {
			items = f.stage(items, p, false, false, f.sender)
		}
	}
	f.ship(items)
}

// Read delivers in-order stream bytes, blocking until data is
// available. It returns io.EOF once the whole stream has been
// consumed.
func (f *ReceiverFlow) Read(b []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		n, err := f.m.Read(f.sess.now(), b)
		f.flushLocked() // end-of-stream queues UPDATE+LEAVE
		if n > 0 || err != nil {
			return n, err
		}
		if f.err != nil {
			return 0, f.err
		}
		f.cond.Wait()
	}
}

// Close tears the receiving flow down; pending and future Reads return
// ErrClosed (after any already-buffered in-order data). The flow stays
// in Snapshot until Detach or Session.Close.
func (f *ReceiverFlow) Close() error {
	f.fail(ErrClosed)
	return nil
}

// Detach unbinds the flow from the session, freeing its port and
// dropping it from Snapshot.
func (f *ReceiverFlow) Detach() { f.sess.detach(f) }

// Stats returns the flow's live protocol counters; use Snapshot for a
// consistent copy while the flow is running.
func (f *ReceiverFlow) Stats() *stats.Receiver { return f.m.Stats() }

// Done reports whether the whole stream has been read and the LEAVE
// acknowledged.
func (f *ReceiverFlow) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.m.Done()
}

func (f *ReceiverFlow) snapshot() FlowSnapshot {
	f.mu.Lock()
	cp := f.m.Stats().Snapshot()
	done := f.m.Done()
	f.mu.Unlock()
	return FlowSnapshot{
		ID: f.id, Label: f.label, Kind: f.kind, Port: f.port, Group: f.group,
		Done: done, Receiver: &cp,
	}
}

func (f *ReceiverFlow) drainClose() error { return f.Close() }

// abort tears the flow down and returns its buffered (unread) packets
// to the shared pool, unlike Close, which keeps them readable.
func (f *ReceiverFlow) abort() {
	f.mu.Lock()
	if f.err == nil {
		f.err = ErrClosed
	}
	f.m.ReleaseBuffers()
	f.cond.Broadcast()
	f.mu.Unlock()
}
