package session

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/rate"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/transport"
)

// groupPorts returns the port pair for test group g: the sender binds
// sp (receivers' RemotePort), receivers bind rp (sender's RemotePort).
func groupPorts(g int) (sp, rp uint16) {
	return uint16(100 + 2*g), uint16(101 + 2*g)
}

// fastRate keeps test transfers short: slow start begins at 1 MB/s
// instead of the 140 KB/s production floor.
func fastRate() rate.Config {
	return rate.Config{MinRate: 1e6, MaxRate: 64e6, MSS: 1400}
}

// TestSessionMultiplexStress runs 12 concurrent flows — 4 groups of one
// sender and two receivers — through one lossy in-memory hub, all
// driven by one session tick loop, and asserts bit-exact delivery on
// every flow plus coherent aggregate counters.
func TestSessionMultiplexStress(t *testing.T) {
	const (
		groups      = 4
		rcvPerGroup = 2
		size        = 32 << 10
	)
	hub := transport.NewHub(transport.WithLoss(0.01, 7), transport.WithDelay(time.Millisecond))
	sess := New(Config{})
	defer sess.Close()

	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		sp, rp := groupPorts(g)
		data := make([]byte, size)
		app.FillPattern(data, int64(g)<<20) // distinct stream per group
		for i := 0; i < rcvPerGroup; i++ {
			rf, err := sess.OpenReceiver(hub.Endpoint(), receiver.Config{
				LocalPort: rp, RemotePort: sp, RcvBuf: 64 << 10,
			}, WithLabel(fmt.Sprintf("g%d-rcv%d", g, i)))
			if err != nil {
				t.Fatalf("OpenReceiver g%d: %v", g, err)
			}
			wg.Add(1)
			go func(g, i int, rf *ReceiverFlow) {
				defer wg.Done()
				got, err := io.ReadAll(rf)
				if err != nil {
					t.Errorf("group %d receiver %d: %v", g, i, err)
				}
				if !bytes.Equal(got, data) {
					t.Errorf("group %d receiver %d: got %d bytes, want %d (equal=%v)",
						g, i, len(got), len(data), bytes.Equal(got, data))
				}
			}(g, i, rf)
		}
		sf, err := sess.OpenSender(hub.Endpoint(), sender.Config{
			LocalPort: sp, RemotePort: rp, SndBuf: 64 << 10,
			ExpectedReceivers: rcvPerGroup, Rate: fastRate(),
		}, WithLabel(fmt.Sprintf("g%d-snd", g)))
		if err != nil {
			t.Fatalf("OpenSender g%d: %v", g, err)
		}
		wg.Add(1)
		go func(g int, sf *SenderFlow) {
			defer wg.Done()
			if _, err := sf.Write(data); err != nil {
				t.Errorf("group %d sender write: %v", g, err)
			}
			if err := sf.Close(); err != nil {
				t.Errorf("group %d sender close: %v", g, err)
			}
		}(g, sf)
	}

	// A mid-flight snapshot exercises the locking under the race
	// detector while every flow is active.
	time.Sleep(30 * time.Millisecond)
	_ = sess.Snapshot()

	wg.Wait()
	snap := sess.Snapshot()
	if len(snap.Flows) != groups*(1+rcvPerGroup) {
		t.Errorf("snapshot has %d flows, want %d", len(snap.Flows), groups*(1+rcvPerGroup))
	}
	if snap.Total.SenderFlows != groups || snap.Total.ReceiverFlows != groups*rcvPerGroup {
		t.Errorf("aggregate flow counts = %d/%d, want %d/%d",
			snap.Total.SenderFlows, snap.Total.ReceiverFlows, groups, groups*rcvPerGroup)
	}
	if want := int64(groups * size); snap.Total.Sender.BytesSent != want {
		t.Errorf("aggregate BytesSent = %d, want %d", snap.Total.Sender.BytesSent, want)
	}
	if want := int64(groups * rcvPerGroup * size); snap.Total.Receiver.BytesDelivered != want {
		t.Errorf("aggregate BytesDelivered = %d, want %d", snap.Total.Receiver.BytesDelivered, want)
	}
	// A receiver flow is Done only once its LEAVE is acknowledged — a
	// round trip that completes after the reader's EOF and the sender's
	// Close return, so give the handshake a bounded moment to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		allDone := true
		for _, fs := range snap.Flows {
			if !fs.Done {
				allDone = false
			}
		}
		if allDone || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
		snap = sess.Snapshot()
	}
	for _, fs := range snap.Flows {
		if !fs.Done {
			t.Errorf("flow %d (%s) not done at end of transfer", fs.ID, fs.Label)
		}
	}
}

// TestSessionBudgetGovernor runs four senders under a 2 MB/s aggregate
// budget and asserts the measured aggregate wire rate stays at or
// under it (with token-bucket burst slack).
func TestSessionBudgetGovernor(t *testing.T) {
	const (
		flows  = 4
		size   = 96 << 10
		budget = 2e6 // bytes/second aggregate
	)
	hub := transport.NewHub()
	sess := New(Config{Budget: budget})
	defer sess.Close()

	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < flows; g++ {
		sp, rp := groupPorts(g)
		data := make([]byte, size)
		app.FillPattern(data, int64(g)<<20)
		rf, err := sess.OpenReceiver(hub.Endpoint(), receiver.Config{
			LocalPort: rp, RemotePort: sp, RcvBuf: 64 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got, err := io.ReadAll(rf)
			if err != nil || !bytes.Equal(got, data) {
				t.Errorf("group %d delivery failed: err=%v equal=%v", g, err, bytes.Equal(got, data))
			}
		}(g)
		sf, err := sess.OpenSender(hub.Endpoint(), sender.Config{
			LocalPort: sp, RemotePort: rp, SndBuf: 64 << 10,
			ExpectedReceivers: 1,
			Rate:              rate.Config{MinRate: 100e3, MaxRate: 64e6, MSS: 1400},
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := sf.Write(data); err != nil {
				t.Errorf("group %d write: %v", g, err)
			}
			if err := sf.Close(); err != nil {
				t.Errorf("group %d close: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := sess.Snapshot()
	agg := &snap.Total.Sender
	wireBytes := agg.BytesSent + agg.RetransBytes + 20*(agg.PacketsSent+agg.Retransmissions)
	measured := float64(wireBytes) / elapsed.Seconds()
	// 30% slack absorbs token-bucket bursts and tick quantization; the
	// point is that four unconstrained 64 MB/s flows were held near the
	// shared 2 MB/s line.
	if measured > budget*1.3 {
		t.Errorf("aggregate send rate %.0f B/s exceeds budget %.0f B/s", measured, budget)
	}
	if elapsed < time.Duration(float64(flows*size)/budget*0.5*float64(time.Second)) {
		t.Errorf("transfer finished in %v — too fast for a %.0f B/s budget over %d bytes",
			elapsed, budget, flows*size)
	}
}

// ceiling reads a flow's current rate-control ceiling.
func ceiling(f *SenderFlow) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.m.MaxRate()
}

// govTransfer opens a sender/receiver pair that keeps transferring for
// the life of the test so the sender stays hungry under the governor.
// The pump goroutines ignore errors: the caller tears the session down
// with Abort when its assertion is met.
func govTransfer(t *testing.T, sess *Session, hub *transport.Hub, g int, size int, opts ...FlowOption) *SenderFlow {
	t.Helper()
	sp, rp := groupPorts(g)
	rf, err := sess.OpenReceiver(hub.Endpoint(), receiver.Config{
		LocalPort: rp, RemotePort: sp, RcvBuf: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = io.Copy(io.Discard, rf) }()
	sf, err := sess.OpenSender(hub.Endpoint(), sender.Config{
		LocalPort: sp, RemotePort: rp, SndBuf: 64 << 10,
		ExpectedReceivers: 1,
		Rate:              rate.Config{MinRate: 100e3, MaxRate: 64e6, MSS: 1400},
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = sf.Write(make([]byte, size)) }()
	return sf
}

// TestGovernorWeightedShares checks the weighted split on live flows:
// two hungry senders with weights 3 and 1 under a 1 MB/s budget must
// converge to 750 and 250 KB/s ceilings.
func TestGovernorWeightedShares(t *testing.T) {
	hub := transport.NewHub()
	sess := New(Config{Budget: 1e6})
	defer sess.Abort()

	a := govTransfer(t, sess, hub, 0, 8<<20, WithWeight(3))
	b := govTransfer(t, sess, hub, 1, 8<<20, WithWeight(1))

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if ceiling(a) == 750e3 && ceiling(b) == 250e3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("ceilings = %.0f/%.0f, want 750000/250000", ceiling(a), ceiling(b))
}

// TestGovernorDemandRedistribution pins the demand-aware behavior on
// live flows: an idle sender pacing at its 100 KB/s floor donates its
// slack, so the hungry flow's ceiling must climb well past the 500 KB/s
// equal split toward budget minus the donor's demand.
func TestGovernorDemandRedistribution(t *testing.T) {
	hub := transport.NewHub()
	sess := New(Config{Budget: 1e6})
	defer sess.Abort()

	idle, err := sess.OpenSender(hub.Endpoint(), sender.Config{
		LocalPort: 1,
		Rate:      rate.Config{MinRate: 100e3, MaxRate: 64e6, MSS: 1400},
	})
	if err != nil {
		t.Fatal(err)
	}
	hungry := govTransfer(t, sess, hub, 1, 8<<20)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		// The idle flow demands at most 2× its 100 KB/s rate, so the
		// hungry flow's share must reach 1 MB/s − 200 KB/s.
		if ceiling(hungry) >= 790e3 && ceiling(idle) <= 210e3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("ceilings idle=%.0f hungry=%.0f, want idle ≤ 210000 and hungry ≥ 790000",
		ceiling(idle), ceiling(hungry))
}

// TestGovernorRuntimeTuning exercises the control-plane hooks directly:
// SetBudget re-splits on the fly, SetWeight re-weights a live flow, and
// SetCeiling caps a flow below its governor share.
func TestGovernorRuntimeTuning(t *testing.T) {
	hub := transport.NewHub()
	sess := New(Config{Budget: 1e6})
	defer sess.Abort()

	a := govTransfer(t, sess, hub, 0, 8<<20)
	b := govTransfer(t, sess, hub, 1, 8<<20)

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("timeout waiting for %s (ceilings %.0f/%.0f)", what, ceiling(a), ceiling(b))
	}
	waitFor("equal split", func() bool { return ceiling(a) == 500e3 && ceiling(b) == 500e3 })

	sess.SetBudget(2e6)
	if got := sess.Budget(); got != 2e6 {
		t.Errorf("Budget() = %.0f after SetBudget, want 2000000", got)
	}
	waitFor("doubled budget split", func() bool { return ceiling(a) == 1e6 && ceiling(b) == 1e6 })

	a.SetWeight(3)
	if got := a.Weight(); got != 3 {
		t.Errorf("Weight() = %v after SetWeight, want 3", got)
	}
	waitFor("3:1 split", func() bool { return ceiling(a) == 1.5e6 && ceiling(b) == 500e3 })

	b.SetCeiling(200e3)
	waitFor("per-flow cap", func() bool { return ceiling(b) <= 200e3 })
}

// TestSessionDemuxSharedTransport hosts two flows of different groups
// on one shared endpoint — the sender of group 1 and a receiver of
// group 2 — and checks the port demultiplexer keeps both streams
// intact in both directions.
func TestSessionDemuxSharedTransport(t *testing.T) {
	const size = 16 << 10
	hub := transport.NewHub()
	sess := New(Config{})
	defer sess.Close()

	sp1, rp1 := groupPorts(1)
	sp2, rp2 := groupPorts(2)
	shared := hub.Endpoint() // hosts g1's sender AND g2's receiver

	data1 := make([]byte, size)
	app.FillPattern(data1, 1<<20)
	data2 := make([]byte, size)
	app.FillPattern(data2, 2<<20)

	r1, err := sess.OpenReceiver(hub.Endpoint(), receiver.Config{LocalPort: rp1, RemotePort: sp1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sess.OpenReceiver(shared, receiver.Config{LocalPort: rp2, RemotePort: sp2})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := sess.OpenSender(shared, sender.Config{
		LocalPort: sp1, RemotePort: rp1, ExpectedReceivers: 1, Rate: fastRate(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sess.OpenSender(hub.Endpoint(), sender.Config{
		LocalPort: sp2, RemotePort: rp2, ExpectedReceivers: 1, Rate: fastRate(),
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	check := func(name string, rf *ReceiverFlow, want []byte) {
		defer wg.Done()
		got, err := io.ReadAll(rf)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: got %d bytes, want %d (equal=%v)", name, len(got), len(want), bytes.Equal(got, want))
		}
	}
	send := func(name string, sf *SenderFlow, data []byte) {
		defer wg.Done()
		if _, err := sf.Write(data); err != nil {
			t.Errorf("%s write: %v", name, err)
		}
		if err := sf.Close(); err != nil {
			t.Errorf("%s close: %v", name, err)
		}
	}
	wg.Add(4)
	go check("g1", r1, data1)
	go check("g2", r2, data2)
	go send("g1", s1, data1)
	go send("g2", s2, data2)
	wg.Wait()
}

// TestSessionPortConflictAndClosed covers the demux binding errors.
func TestSessionPortConflictAndClosed(t *testing.T) {
	hub := transport.NewHub()
	sess := New(Config{})
	ep := hub.Endpoint()
	if _, err := sess.OpenSender(ep, sender.Config{LocalPort: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.OpenReceiver(ep, receiver.Config{LocalPort: 9}); err != ErrPortInUse {
		t.Errorf("duplicate port bind = %v, want ErrPortInUse", err)
	}
	// Different port on the same transport is fine.
	if _, err := sess.OpenReceiver(ep, receiver.Config{LocalPort: 10}); err != nil {
		t.Errorf("second port bind: %v", err)
	}
	sess.Abort()
	if _, err := sess.OpenSender(hub.Endpoint(), sender.Config{}); err != ErrClosed {
		t.Errorf("open after close = %v, want ErrClosed", err)
	}
}

// TestSenderFlowAbortUnblocksWrite mirrors the core-level guarantee at
// the session layer.
func TestSenderFlowAbortUnblocksWrite(t *testing.T) {
	hub := transport.NewHub()
	sess := New(Config{})
	defer sess.Abort()
	sf, err := sess.OpenSender(hub.Endpoint(), sender.Config{
		SndBuf: 16 << 10, ExpectedReceivers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := sf.Write(make([]byte, 1<<20))
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	sf.Abort()
	select {
	case err := <-errCh:
		if err != ErrAborted {
			t.Errorf("blocked Write returned %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Abort did not unblock Write")
	}
}

// TestFlowDetachFreesPort verifies Detach unbinds the demux slot so
// the port can be reused, and drops the flow from snapshots.
func TestFlowDetachFreesPort(t *testing.T) {
	hub := transport.NewHub()
	sess := New(Config{})
	defer sess.Abort()
	ep := hub.Endpoint()
	sf, err := sess.OpenSender(ep, sender.Config{LocalPort: 5})
	if err != nil {
		t.Fatal(err)
	}
	sf.Abort()
	sf.Detach()
	if n := len(sess.Snapshot().Flows); n != 0 {
		t.Errorf("snapshot has %d flows after Detach, want 0", n)
	}
	if _, err := sess.OpenSender(ep, sender.Config{LocalPort: 5}); err != nil {
		t.Errorf("rebind after Detach: %v", err)
	}
}
