package session

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"repro/internal/app"
	"repro/internal/packet"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/transport"
)

// TestSessionFecDatapathPoolBalance drives FEC flows over a lossy hub
// with receive-window recycling live (session receivers always recycle):
// the receiver's parity group cache takes and releases its own pool
// references alongside the window's, so every transfer must end
// bit-exact with the pool's get/put counters balanced — under the race
// detector this doubles as the use-after-free proof for cache-held
// buffers.
func TestSessionFecDatapathPoolBalance(t *testing.T) {
	const (
		groups = 4
		size   = 256 << 10
	)
	before := packet.PoolStats()
	hub := transport.NewHub(transport.WithLoss(0.02, 11))
	sess := New(Config{})

	var wg sync.WaitGroup
	var sfs []*SenderFlow
	var rfs []*ReceiverFlow
	for g := 0; g < groups; g++ {
		sp, rp := groupPorts(g)
		data := make([]byte, size)
		app.FillPattern(data, int64(g)<<20)
		rf, err := sess.OpenReceiver(hub.Endpoint(), receiver.Config{
			LocalPort: rp, RemotePort: sp, RcvBuf: 64 << 10,
		}, WithFec(FecConfig{Enabled: true, K: 8}))
		if err != nil {
			t.Fatalf("OpenReceiver g%d: %v", g, err)
		}
		sf, err := sess.OpenSender(hub.Endpoint(), sender.Config{
			LocalPort: sp, RemotePort: rp, SndBuf: 64 << 10,
			ExpectedReceivers: 1, Rate: fastRate(),
		}, WithFec(FecConfig{Enabled: true, K: 8}))
		if err != nil {
			t.Fatalf("OpenSender g%d: %v", g, err)
		}
		sfs, rfs = append(sfs, sf), append(rfs, rf)
		wg.Add(1)
		go func(g int, rf *ReceiverFlow) {
			defer wg.Done()
			got, err := io.ReadAll(rf)
			if err != nil || !bytes.Equal(got, data) {
				t.Errorf("group %d delivery: err=%v equal=%v", g, err, bytes.Equal(got, data))
			}
		}(g, rf)
		wg.Add(1)
		go func(g int, sf *SenderFlow) {
			defer wg.Done()
			if _, err := sf.Write(data); err != nil {
				t.Errorf("group %d write: %v", g, err)
			}
			if err := sf.Close(); err != nil {
				t.Errorf("group %d close: %v", g, err)
			}
		}(g, sf)
	}
	wg.Wait()
	if err := sess.Close(); err != nil {
		t.Errorf("session close: %v", err)
	}

	// Stats are read only now, after Close stopped the tick loop.
	var recovered, parity int64
	for _, sf := range sfs {
		parity += sf.Stats().FecParitySent
	}
	for _, rf := range rfs {
		recovered += rf.Stats().FecRecovered
	}
	if parity == 0 {
		t.Error("no parity sent — FEC flow option did not reach the senders")
	}
	if recovered == 0 {
		t.Error("no local recoveries across 2%-loss flows — parity path exercised nothing")
	}
	after := packet.PoolStats()
	gets, puts := after.Gets-before.Gets, after.Puts-before.Puts
	if gets != puts {
		t.Errorf("pool imbalance after close: gets +%d, puts +%d (leaked %d)",
			gets, puts, gets-puts)
	}
}
