// FlowSpec: the one canonical translation from a declarative flow
// description to the machine configs and options a flow opens with.
// Every front end — the hrmc-send/hrmc-recv CLIs, the hrmcd daemon's
// config file, and internal/control's admission API — builds a
// FlowSpec and opens it through OpenSenderFlow/OpenReceiverFlow, so a
// knob added here reaches every entry point at once instead of being
// hand-wired three times.
package session

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/rate"
	"repro/internal/receiver"
	"repro/internal/repair"
	"repro/internal/sender"
	"repro/internal/transport"
)

// FlowSpec is the transport-independent description of one flow.
type FlowSpec struct {
	// Kind is the flow direction.
	Kind Kind
	// Label names the flow in snapshots and logs.
	Label string
	// LocalPort and PeerPort are the H-RMC header ports (the session's
	// demux key); both zero binds the transport's wildcard slot.
	LocalPort, PeerPort uint16
	// Buf is the kernel-buffer analogue in bytes (send window for
	// senders, receive window for receivers). Zero keeps the machine
	// default.
	Buf int
	// Receivers is how many receivers must join before a sender
	// releases buffered data (senders only).
	Receivers int
	// Weight is the flow's fair share under a session budget (senders;
	// zero means the default weight 1).
	Weight float64
	// MinRateBps/MaxRateBps override the flow-control floor and ceiling
	// in bytes/second (senders; zero keeps the defaults).
	MinRateBps, MaxRateBps float64
	// Fec configures per-flow forward error correction; both ends of a
	// group must agree.
	Fec FecConfig
	// Head makes a receiver a repair head for its group (hierarchical
	// recovery).
	Head bool
	// HeadAddr attaches a receiver as a downstream leaf of the repair
	// head with that node address; zero keeps flat feedback. Ignored
	// when Head is set.
	HeadAddr packet.NodeID
	// ReadoptHead lets a failed-over leaf re-attach when its configured
	// head's traffic reappears.
	ReadoptHead bool
	// JoinInProgress admits a receiver to a stream already flowing.
	JoinInProgress bool
	// Group tags the flow's multicast group on a shared GroupTransport
	// (see WithGroup); zero for single-group transports.
	Group transport.GroupID
}

// SenderConfig builds the sender machine configuration the spec
// describes, complete enough for internal/core callers; session flows
// opened through OpenSenderFlow re-derive FEC from Options (WithFec),
// which resolves to the same group size.
func (sp FlowSpec) SenderConfig() sender.Config {
	cfg := sender.Config{
		LocalPort:         sp.LocalPort,
		RemotePort:        sp.PeerPort,
		SndBuf:            sp.Buf,
		ExpectedReceivers: sp.Receivers,
	}
	if sp.Fec.Enabled {
		cfg.FECGroupSize = sp.Fec.GroupSize()
	}
	if sp.MinRateBps > 0 || sp.MaxRateBps > 0 {
		rc := rate.DefaultConfig()
		if sp.MinRateBps > 0 {
			rc.MinRate = sp.MinRateBps
		}
		if sp.MaxRateBps > 0 {
			rc.MaxRate = sp.MaxRateBps
		}
		cfg.Rate = rc
	}
	return cfg
}

// ReceiverConfig builds the receiver machine configuration the spec
// describes, complete enough for internal/core callers; session flows
// opened through OpenReceiverFlow re-derive FEC from Options (WithFec),
// which resolves to the same group size.
func (sp FlowSpec) ReceiverConfig() receiver.Config {
	cfg := receiver.Config{
		LocalPort:      sp.LocalPort,
		RemotePort:     sp.PeerPort,
		RcvBuf:         sp.Buf,
		JoinInProgress: sp.JoinInProgress,
	}
	if sp.Fec.Enabled {
		cfg.FECGroupSize = sp.Fec.GroupSize()
	}
	if sp.Head {
		cfg.Head = &repair.Config{}
	} else if sp.HeadAddr != 0 {
		cfg.RepairHead = sp.HeadAddr
		cfg.ReadoptHead = sp.ReadoptHead
	}
	return cfg
}

// Options builds the flow options the spec describes.
func (sp FlowSpec) Options() []FlowOption {
	var opts []FlowOption
	if sp.Label != "" {
		opts = append(opts, WithLabel(sp.Label))
	}
	if sp.Weight > 0 {
		opts = append(opts, WithWeight(sp.Weight))
	}
	if sp.Fec.Enabled {
		opts = append(opts, WithFec(sp.Fec))
	}
	if sp.Group != 0 {
		opts = append(opts, WithGroup(sp.Group))
	}
	return opts
}

// OpenSenderFlow opens the sending flow sp describes over tr.
func (s *Session) OpenSenderFlow(tr transport.Transport, sp FlowSpec) (*SenderFlow, error) {
	if sp.Kind != KindSender {
		return nil, fmt.Errorf("session: OpenSenderFlow on a %v spec", sp.Kind)
	}
	return s.OpenSender(tr, sp.SenderConfig(), sp.Options()...)
}

// OpenReceiverFlow opens the receiving flow sp describes over tr.
func (s *Session) OpenReceiverFlow(tr transport.Transport, sp FlowSpec) (*ReceiverFlow, error) {
	if sp.Kind != KindReceiver {
		return nil, fmt.Errorf("session: OpenReceiverFlow on a %v spec", sp.Kind)
	}
	return s.OpenReceiver(tr, sp.ReceiverConfig(), sp.Options()...)
}
