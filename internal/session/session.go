// Package session multiplexes many concurrent H-RMC flows — senders
// and receivers across independent multicast groups — inside one
// process, the way the paper's kernel implementation multiplexes all
// AF_HRMC sockets over one jiffy clock and one timer wheel.
//
// One Session owns:
//
//   - a single wall-clock tick loop (default one kernel jiffy, 10 ms)
//     driving every flow's transmit and timer machinery;
//   - one batched receive loop per transport (the transport's native
//     BatchTransport interface, or any per-packet Transport lifted by
//     transport.Batched), with a port-based demultiplexer that drains
//     a whole batch, groups envelopes by destination port, and hands
//     each flow its slice under one flow-lock acquisition per batch —
//     the 20-byte H-RMC header carries src/dst ports end to end, so
//     flows sharing a transport need no extra framing. A flow bound
//     to port 0 acts as the wildcard and receives every packet with
//     no exact port binding, which is how single-flow users
//     (internal/core) keep working unconfigured. Packets bound for no
//     flow are recycled into the shared transport packet pool;
//   - an optional aggregate bandwidth budget: a weighted fair-share
//     governor re-apportions the configured line rate among the
//     sender flows still transmitting, scaling each flow's
//     internal/rate ceiling so the sum never exceeds the budget —
//     mirroring how the kernel shared one NIC among all sockets.
//
// Lifecycle: OpenSender/OpenReceiver bind flows, each flow's
// Close drains gracefully (a sender blocks until every receiver is
// known to hold the stream), Snapshot reports per-flow and aggregate
// counters at any time, and Session.Close drains every flow and shuts
// the loops and transports down. internal/core remains the single-flow
// convenience API, now a thin wrapper over a one-flow Session.
package session

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/packet"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
)

// DefaultTickInterval is the shared transmit/timer tick, one kernel
// jiffy.
const DefaultTickInterval = 10 * time.Millisecond

// Errors returned by session operations.
var (
	// ErrClosed is returned by operations on a closed session or flow.
	ErrClosed = errors.New("session: closed")
	// ErrAborted is returned by operations on an aborted flow.
	ErrAborted = errors.New("session: connection aborted")
	// ErrPortInUse is returned when a flow's local port is already
	// bound on the same transport.
	ErrPortInUse = errors.New("session: local port already bound on transport")
)

// Config parametrizes a Session.
type Config struct {
	// TickInterval is the shared wall-clock tick driving every flow;
	// zero selects DefaultTickInterval.
	TickInterval time.Duration
	// Budget, when positive, caps the aggregate send rate across all
	// sender flows in bytes/second. Every tick the demand-aware
	// fair-share governor water-fills it among the flows still sending,
	// proportional to their weights (WithWeight): flows pacing below
	// their ceiling donate the slack to still-hungry flows. Shares are
	// floored at each flow's rate-control MinRate — the
	// one-packet-per-jiffy pacing floor — so a budget below
	// len(flows)*MinRate cannot be fully honored. SetBudget adjusts the
	// budget at runtime.
	Budget float64
	// SendPollers is how many shared send pollers drain staged outgoing
	// batches. Transports are assigned to pollers round-robin at first
	// attach, so TX parallelism scales with shards on a sharded daemon
	// while each transport's traffic stays ordered on one poller. Zero
	// or negative selects one poller (the pre-sharding behavior).
	SendPollers int
}

// Session hosts many concurrent H-RMC flows over shared driver loops.
// All methods are safe for concurrent use.
type Session struct {
	cfg   Config
	start time.Time

	mu     sync.Mutex
	loops  map[transport.Transport]*recvLoop
	flows  []anyFlow
	nextID int
	closed bool
	// shares holds the ceilings the governor computed from the previous
	// tick's demand reports, applied at the start of the next tick so
	// governor bookkeeping and the flow machine tick share one lock
	// acquisition per flow.
	shares map[*SenderFlow]float64

	// sendShards are the outgoing staging queues: every flow's
	// flushLocked appends ready packets to its transport's shard
	// (header by value, payload by reference, pool ownership covered by
	// Retain) and that shard's poller drains it into per-transport
	// SendBatch calls. A handful of pollers serve every flow, so
	// goroutine count is O(pollers + transports), not O(flows); each
	// transport maps to exactly one shard, keeping its packet order.
	sendShards []*sendShard
	// nextShard round-robins transports onto send shards at first
	// attach. Guarded by mu.
	nextShard int

	quit     chan struct{}
	quitOnce sync.Once
	// pollerDone closes when every send poller has shipped its final
	// drain; shutdown waits on it before closing transports so staged
	// farewells (a receiver's EOF-time UPDATE+LEAVE) reach the wire.
	pollerDone chan struct{}
	pollerWG   sync.WaitGroup
	wg         sync.WaitGroup
}

// sendShard is one staging queue + notify pair owned by one send
// poller.
type sendShard struct {
	mu     sync.Mutex
	q      []outItem
	notify chan struct{} // capacity 1: "q may be non-empty"
}

// outItem is one staged outgoing packet. The header is copied by value
// under the flow lock, so later machine mutation (retransmission Tries
// bumps) cannot race the send; the payload is aliased, kept alive by
// the owner reference the poller releases after the send.
type outItem struct {
	bt        transport.BatchTransport
	hdr       packet.Header
	payload   []byte
	owner     *packet.Packet
	multicast bool
	to        packet.NodeID
	group     transport.GroupID
}

// New creates a session and starts its shared tick loop.
func New(cfg Config) *Session {
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = DefaultTickInterval
	}
	np := cfg.SendPollers
	if np <= 0 {
		np = 1
	}
	s := &Session{
		cfg:        cfg,
		start:      time.Now(),
		loops:      make(map[transport.Transport]*recvLoop),
		sendShards: make([]*sendShard, np),
		quit:       make(chan struct{}),
		pollerDone: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.runTicks()
	s.pollerWG.Add(np)
	for i := range s.sendShards {
		s.sendShards[i] = &sendShard{notify: make(chan struct{}, 1)}
		go s.runSendPoller(s.sendShards[i])
	}
	go func() {
		s.pollerWG.Wait()
		close(s.pollerDone)
	}()
	return s
}

// now is the session clock every flow machine runs on.
func (s *Session) now() sim.Time { return sim.Time(time.Since(s.start)) }

// runTicks is the single tick loop shared by every flow.
func (s *Session) runTicks() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.TickInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.tickAll()
		case <-s.quit:
			return
		}
	}
}

// tickAll drives one shared tick. Each flow is locked exactly once: a
// sender flow's governor share is applied, its machine ticked, and its
// next-tick demand sampled inside the same critical section (the old
// governor took three separate per-flow lock acquisitions — weight
// probe, ceiling store, tick). The shares applied this tick were
// computed from last tick's demand reports, so the governor lags the
// flows by one jiffy — well inside the round-trip timescale the rate
// controllers react on.
func (s *Session) tickAll() {
	now := s.now()
	s.mu.Lock()
	flows := append([]anyFlow(nil), s.flows...)
	budget := s.cfg.Budget
	shares := s.shares
	s.mu.Unlock()

	governed := budget > 0
	var senders []*SenderFlow
	var reqs []shareReq
	for _, f := range flows {
		sf, ok := f.(*SenderFlow)
		if !ok {
			f.tick(now)
			continue
		}
		share, haveShare := shares[sf]
		req, active := sf.tickSender(now, share, haveShare, governed)
		if governed && active {
			senders = append(senders, sf)
			reqs = append(reqs, req)
		}
	}
	if !governed {
		return
	}
	alloc := fairShares(budget, reqs)
	next := make(map[*SenderFlow]float64, len(senders))
	for i, sf := range senders {
		next[sf] = alloc[i]
	}
	s.mu.Lock()
	s.shares = next
	s.mu.Unlock()
}

// enqueueSend stages a flow's ready packets on its transport's send
// shard and wakes that shard's poller. items' values are copied; the
// caller may reuse its scratch slice as soon as this returns.
func (s *Session) enqueueSend(shard int, items []outItem) {
	if len(items) == 0 {
		return
	}
	sh := s.sendShards[shard%len(s.sendShards)]
	sh.mu.Lock()
	sh.q = append(sh.q, items...)
	sh.mu.Unlock()
	select {
	case sh.notify <- struct{}{}:
	default:
	}
}

// runSendPoller is one shard's send driver: it drains the shard's
// staged queue, groups consecutive items by transport, and ships each
// run through one SendBatch call. SendBatch only borrows its envelopes
// for the call, so the poller rebuilds them from scratch packets
// (header by value, payload aliased) and releases every item's owner
// reference right after the send.
func (s *Session) runSendPoller(sh *sendShard) {
	defer s.pollerWG.Done()
	var local []outItem
	var env []transport.Envelope
	var pkts []packet.Packet
	drain := func() {
		sh.mu.Lock()
		local = append(local[:0], sh.q...)
		for i := range sh.q {
			sh.q[i] = outItem{}
		}
		sh.q = sh.q[:0]
		sh.mu.Unlock()
		env, pkts = sendItems(local, env, pkts)
		for i := range local {
			local[i] = outItem{}
		}
	}
	for {
		select {
		case <-sh.notify:
		case <-s.quit:
			// Ship, don't drop: drained flows stage their farewells
			// (UPDATE+LEAVE, FIN feedback) just before quit, and the
			// transports stay open until pollerDone closes. Whatever the
			// receive loops stage after this, shutdown discards once
			// they exit.
			drain()
			return
		}
		drain()
	}
}

// destOrder is the coalescing sort key: staged items of one transport
// run are stably grouped by wire destination so the UDP writer sees
// maximal consecutive same-destination runs — what UDP GSO fuses into
// supersegments. The sort is stable, so each destination's packet
// order (a flow's DATA sequence, a head's repair order) is preserved;
// cross-destination order carries no guarantee worth preserving over
// UDP.
func destOrder(a, b *outItem) bool {
	if a.multicast != b.multicast {
		return a.multicast // multicast DATA first, then unicast
	}
	if a.group != b.group {
		return a.group < b.group
	}
	if !a.multicast && a.to != b.to {
		return a.to < b.to
	}
	return false
}

// sendItems ships staged items, one SendBatch per consecutive
// same-transport run (each run stably regrouped by destination so GSO
// coalescing finds its runs), and drops each owner reference after its
// send.
func sendItems(items []outItem, env []transport.Envelope, pkts []packet.Packet) ([]transport.Envelope, []packet.Packet) {
	i := 0
	for i < len(items) {
		j := i + 1
		for j < len(items) && items[j].bt == items[i].bt {
			j++
		}
		n := j - i
		if n > 2 {
			run := items[i:j]
			sort.SliceStable(run, func(a, b int) bool { return destOrder(&run[a], &run[b]) })
		}
		if cap(env) < n {
			env = make([]transport.Envelope, n)
			pkts = make([]packet.Packet, n)
		}
		env, pkts = env[:n], pkts[:n]
		for k := 0; k < n; k++ {
			it := &items[i+k]
			pkts[k] = packet.Packet{Header: it.hdr, Payload: it.payload}
			env[k] = transport.Envelope{Pkt: &pkts[k], Multicast: it.multicast, To: it.to, Group: it.group}
		}
		_ = items[i].bt.SendBatch(env)
		for k := 0; k < n; k++ {
			packet.Put(items[i+k].owner)
			pkts[k] = packet.Packet{}
			env[k] = transport.Envelope{}
		}
		i = j
	}
	return env, pkts
}

// discardSendq empties every shard's staged queue without sending,
// releasing every owner reference.
func (s *Session) discardSendq() {
	for _, sh := range s.sendShards {
		sh.mu.Lock()
		local := sh.q
		sh.q = nil
		sh.mu.Unlock()
		for i := range local {
			packet.Put(local[i].owner)
			local[i] = outItem{}
		}
	}
}

// SetBudget re-points the aggregate bandwidth budget at runtime, in
// bytes/second. Zero or negative disables the governor: on the next
// tick every governed flow's ceiling is restored to its own configured
// (or SetCeiling) value.
func (s *Session) SetBudget(bytesPerSec float64) {
	s.mu.Lock()
	s.cfg.Budget = bytesPerSec
	s.mu.Unlock()
}

// Budget returns the current aggregate bandwidth budget in
// bytes/second (zero when the governor is off).
func (s *Session) Budget() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.Budget
}

// recvBatchSize is how many envelopes the per-transport receive loop
// drains per RecvBatch call: one batch costs one demux-lock
// acquisition plus one flow-lock acquisition per distinct destination
// flow, however many packets it carries.
const recvBatchSize = 64

// recvLoop is the per-transport receive driver plus its demultiplexer.
// The transport is driven through its batch interface (a native
// BatchTransport, or any per-packet Transport lifted to batch size 1
// by transport.Batched).
type recvLoop struct {
	tr transport.Transport
	bt transport.BatchTransport
	// sendShard is the send-poller shard every flow of this transport
	// stages onto, assigned round-robin at loop creation; immutable.
	sendShard int

	mu     sync.Mutex
	byPort map[uint16]anyFlow
}

// lookupBatch resolves each envelope's destination port to its owning
// flow — exact binding first, then the port-0 wildcard — under a
// single demux-lock acquisition for the whole batch. flows[i] is nil
// for envelopes no flow is bound to.
func (l *recvLoop) lookupBatch(env []transport.Envelope, flows []anyFlow) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range env {
		f, ok := l.byPort[env[i].Pkt.DstPort]
		if !ok {
			f = l.byPort[0]
		}
		flows[i] = f
	}
}

func (l *recvLoop) bind(port uint16, f anyFlow) error {
	l.mu.Lock()
	if _, taken := l.byPort[port]; taken {
		l.mu.Unlock()
		return ErrPortInUse
	}
	l.byPort[port] = f
	l.mu.Unlock()
	l.refreshFilter()
	return nil
}

func (l *recvLoop) unbind(port uint16, f anyFlow) {
	l.mu.Lock()
	if l.byPort[port] == f {
		delete(l.byPort, port)
	}
	l.mu.Unlock()
	l.refreshFilter()
}

// refreshFilter pushes the current port-binding table down to the
// transport as an early-demux filter (see transport.FilteredTransport):
// on a shared hub, packets for ports this session never bound are then
// discarded at the sender before being cloned or queued. A wildcard
// (port 0) binding clears the filter — everything must be delivered.
// Transports without filter support demux-drop as before.
func (l *recvLoop) refreshFilter() {
	ft, ok := l.bt.(transport.FilteredTransport)
	if !ok {
		return
	}
	l.mu.Lock()
	if _, wild := l.byPort[0]; wild {
		l.mu.Unlock()
		ft.SetInboundFilter(nil)
		return
	}
	var ports [1024]uint64 // 65536-port bitset snapshot
	for p := range l.byPort {
		ports[p>>6] |= 1 << (p & 63)
	}
	l.mu.Unlock()
	ft.SetInboundFilter(func(h *packet.Header) bool {
		return ports[h.DstPort>>6]&(1<<(h.DstPort&63)) != 0
	})
}

func (l *recvLoop) bound() []anyFlow {
	l.mu.Lock()
	defer l.mu.Unlock()
	fs := make([]anyFlow, 0, len(l.byPort))
	for _, f := range l.byPort {
		fs = append(fs, f)
	}
	return fs
}

// flowGroup is one flow's slice of a receive batch, in arrival order.
type flowGroup struct {
	f   anyFlow
	env []transport.Envelope
}

// runRecv is the one receive loop a transport gets, demuxing every
// arriving batch to its flows: drain a full batch, resolve all ports
// under one demux-lock acquisition, group envelopes by flow, and hand
// each flow its slice in one flow-lock acquisition per batch instead
// of one per packet. Packets no flow is bound to go straight back to
// the shared packet pool — on a multicast hub most deliveries to an
// endpoint belong to other groups, so this drop-path recycling is what
// keeps the hot path allocation-free. A transport error fails every
// flow bound to it, unblocking their waiters.
func (s *Session) runRecv(l *recvLoop) {
	defer s.wg.Done()
	env := make([]transport.Envelope, recvBatchSize)
	flows := make([]anyFlow, recvBatchSize)
	var groups []flowGroup
	for {
		n, err := l.bt.RecvBatch(env)
		if err != nil {
			for _, f := range l.bound() {
				f.base().fail(err)
			}
			return
		}
		now := s.now()
		l.lookupBatch(env[:n], flows[:n])
		groups = groups[:0]
		for i := 0; i < n; i++ {
			f := flows[i]
			flows[i] = nil
			if f == nil {
				transport.PutPacket(env[i].Pkt)
				env[i] = transport.Envelope{}
				continue
			}
			// On a shared group transport, ports are only unique within
			// one daemon: a group-tagged arrival that does not match the
			// flow's own group is a cross-group stray — recycle it
			// rather than feeding a foreign group's packet to the
			// machine. (flow.group is immutable after init.)
			if fg := f.base().group; fg != 0 && env[i].Group != 0 && env[i].Group != fg {
				transport.PutPacket(env[i].Pkt)
				env[i] = transport.Envelope{}
				continue
			}
			gi := -1
			for j := range groups {
				if groups[j].f == f {
					gi = j
					break
				}
			}
			if gi < 0 {
				// Reuse a truncated slot's envelope capacity when one
				// is available; grow otherwise.
				if len(groups) < cap(groups) {
					groups = groups[:len(groups)+1]
					groups[len(groups)-1].f = f
				} else {
					groups = append(groups, flowGroup{f: f})
				}
				gi = len(groups) - 1
			}
			groups[gi].env = append(groups[gi].env, env[i])
			env[i] = transport.Envelope{}
		}
		for j := range groups {
			groups[j].f.handleBatch(now, groups[j].env)
			for i := range groups[j].env {
				groups[j].env[i] = transport.Envelope{}
			}
			groups[j].env = groups[j].env[:0]
			groups[j].f = nil
		}
	}
}

// attach registers a flow: it starts the transport's receive loop on
// first use and binds the flow's local port in the demultiplexer.
func (s *Session) attach(f anyFlow) error {
	b := f.base()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	l, ok := s.loops[b.tr]
	if !ok {
		l = &recvLoop{tr: b.tr, bt: b.bt, byPort: make(map[uint16]anyFlow)}
		l.sendShard = s.nextShard % len(s.sendShards)
		s.nextShard++
		s.loops[b.tr] = l
		s.wg.Add(1)
		go s.runRecv(l)
	}
	if err := l.bind(b.port, f); err != nil {
		return err
	}
	b.sendShard = l.sendShard
	b.id = s.nextID
	s.nextID++
	s.flows = append(s.flows, f)
	return nil
}

// detach unbinds a flow from the demultiplexer and drops it from the
// flow list; its counters leave Snapshot with it.
func (s *Session) detach(f anyFlow) {
	b := f.base()
	s.mu.Lock()
	defer s.mu.Unlock()
	if l := s.loops[b.tr]; l != nil {
		l.unbind(b.port, f)
	}
	for i, g := range s.flows {
		if g == f {
			s.flows = append(s.flows[:i], s.flows[i+1:]...)
			break
		}
	}
}

// OpenSender opens a sending flow over tr. cfg.LocalPort is the flow's
// demux binding (0 binds the transport's wildcard slot); feedback
// packets arrive on it, so receivers of the group must use it as their
// RemotePort.
func (s *Session) OpenSender(tr transport.Transport, cfg sender.Config, opts ...FlowOption) (*SenderFlow, error) {
	f := &SenderFlow{}
	f.init(s, KindSender, tr, cfg.LocalPort, opts)
	if f.fec.Enabled {
		cfg.FECGroupSize = f.fec.GroupSize()
	}
	f.m = sender.New(cfg)
	f.capCeiling = f.m.MaxRate()
	if err := s.attach(f); err != nil {
		return nil, err
	}
	return f, nil
}

// OpenReceiver opens a receiving flow over tr. cfg.LocalPort is the
// flow's demux binding (0 binds the wildcard slot); the group's sender
// must use it as its RemotePort. A zero cfg.LocalAddr defaults to the
// transport's node ID.
func (s *Session) OpenReceiver(tr transport.Transport, cfg receiver.Config, opts ...FlowOption) (*ReceiverFlow, error) {
	if cfg.LocalAddr == 0 {
		cfg.LocalAddr = tr.Local()
	}
	// The batched receive loop feeds the machine pool-owned packets
	// exclusively, so retained data can recycle on in-order release —
	// including under FEC/local recovery, whose group cache keeps its
	// own pool reference per cached packet.
	cfg.RecyclePackets = true
	f := &ReceiverFlow{}
	f.init(s, KindReceiver, tr, cfg.LocalPort, opts)
	if f.fec.Enabled {
		cfg.FECGroupSize = f.fec.GroupSize()
	}
	f.m = receiver.New(cfg)
	if err := s.attach(f); err != nil {
		return nil, err
	}
	return f, nil
}

// FlowSnapshot is one flow's entry in a session snapshot.
type FlowSnapshot struct {
	ID    int
	Label string
	Kind  Kind
	Port  uint16
	// Group is the flow's multicast group tag on a shared
	// GroupTransport (zero on single-group transports).
	Group transport.GroupID
	// Weight is the flow's fair-share weight under a session budget
	// (senders only; zero for receivers).
	Weight float64
	// Done reports stream completion: for a sender, the stream is
	// closed and fully released; for a receiver, fully read.
	Done bool
	// Exactly one of Sender/Receiver is set, an atomically-read copy
	// of the flow's counters taken under the flow lock.
	Sender   *stats.Sender
	Receiver *stats.Receiver
}

// Snapshot is a point-in-time view of every open flow plus aggregate
// totals.
type Snapshot struct {
	Flows []FlowSnapshot
	Total stats.Aggregate
}

// Snapshot copies every open flow's counters (consistently, under each
// flow's lock) and merges the aggregate totals.
func (s *Session) Snapshot() Snapshot {
	s.mu.Lock()
	flows := append([]anyFlow(nil), s.flows...)
	s.mu.Unlock()
	var snap Snapshot
	for _, f := range flows {
		fs := f.snapshot()
		snap.Flows = append(snap.Flows, fs)
		if fs.Sender != nil {
			snap.Total.AddSender(fs.Sender)
		}
		if fs.Receiver != nil {
			snap.Total.AddReceiver(fs.Receiver)
		}
	}
	return snap
}

// Close drains every flow gracefully — sender flows block until the
// stream is fully released to all receivers — then stops the tick
// loop, closes every bound transport, and waits for the receive loops.
// It returns the first flow drain error, if any.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	flows := append([]anyFlow(nil), s.flows...)
	s.mu.Unlock()
	var firstErr error
	for _, f := range flows {
		if err := f.drainClose(); err != nil && firstErr == nil && err != ErrClosed {
			firstErr = err
		}
	}
	s.shutdown()
	return firstErr
}

// Abort tears every flow down without waiting for delivery and shuts
// the session down.
func (s *Session) Abort() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	flows := append([]anyFlow(nil), s.flows...)
	s.mu.Unlock()
	for _, f := range flows {
		f.abort()
	}
	s.shutdown()
}

func (s *Session) shutdown() {
	s.quitOnce.Do(func() { close(s.quit) })
	// Let the poller ship everything the flows staged before the
	// transports close underneath it.
	<-s.pollerDone
	s.mu.Lock()
	loops := make([]*recvLoop, 0, len(s.loops))
	for _, l := range s.loops {
		loops = append(loops, l)
	}
	s.mu.Unlock()
	for _, l := range loops {
		_ = l.tr.Close()
	}
	s.wg.Wait()
	// The receive loops may have staged feedback after the poller's
	// exit drain; with every loop stopped the queue is finally quiet.
	s.discardSendq()
}
