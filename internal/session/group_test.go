package session

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/app"
	"repro/internal/packet"
	"repro/internal/transport"
)

// TestSessionGroupAddressedFlows runs a transfer over the hub's
// group-addressed multicast through the canonical FlowSpec path and
// pins the demux contract: the sender's traffic reaches only members
// of its group, a forged stream addressed to a different group the
// transport happens to be joined to is dropped by the flow's group
// check even though its header ports match, and every flow's Group tag
// round-trips into the session snapshot.
func TestSessionGroupAddressedFlows(t *testing.T) {
	const size = 16 << 10
	hub := transport.NewHub()
	sess := New(Config{})
	defer sess.Abort()

	sndEp := hub.Endpoint().(transport.GroupTransport)
	rcvEp := hub.Endpoint().(transport.GroupTransport)
	strayEp := hub.Endpoint().(transport.GroupTransport)

	gidA, err := sndEp.Register("239.10.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if g, err := rcvEp.Join("239.10.0.1"); err != nil || g != gidA {
		t.Fatalf("receiver join: got (%v, %v), want (%v, nil)", g, err, gidA)
	}
	// The receiver's transport is also joined to a second group — the
	// shared-shard situation — but the flow below belongs only to gidA.
	gidB, err := rcvEp.Join("239.10.0.2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strayEp.Register("239.10.0.2"); err != nil {
		t.Fatal(err)
	}

	sp, rp := groupPorts(0)
	rf, err := sess.OpenReceiverFlow(transport.AsTransport(rcvEp), FlowSpec{
		Kind: KindReceiver, Label: "a-rcv",
		LocalPort: rp, PeerPort: sp, Buf: 64 << 10, Group: gidA,
	})
	if err != nil {
		t.Fatal(err)
	}
	sf, err := sess.OpenSenderFlow(transport.AsTransport(sndEp), FlowSpec{
		Kind: KindSender, Label: "a-snd",
		LocalPort: sp, PeerPort: rp, Buf: 64 << 10, Receivers: 1,
		MinRateBps: 1e6, MaxRateBps: 64e6, Group: gidA,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Forge a garbage stream into group B with header ports that match
	// the receiver flow exactly. The transport delivers it (it is a
	// member of B); the flow's group check must discard every packet, or
	// the real transfer below is corrupted.
	for seq := uint32(0); seq < 8; seq++ {
		garbage := bytes.Repeat([]byte{0xC7}, 512)
		forged := &packet.Packet{
			Header: packet.Header{
				SrcPort: sp, DstPort: rp,
				Type: packet.TypeData, Seq: seq, Length: uint32(len(garbage)),
			},
			Payload: garbage,
		}
		if err := strayEp.SendBatch([]transport.Envelope{
			{Pkt: forged, Multicast: true, Group: gidB},
		}); err != nil {
			t.Fatalf("forged send: %v", err)
		}
	}

	data := make([]byte, size)
	app.FillPattern(data, 42<<20)
	done := make(chan error, 1)
	go func() {
		if _, err := sf.Write(data); err != nil {
			done <- err
			return
		}
		done <- sf.Close()
	}()
	got, err := io.ReadAll(rf)
	if err != nil {
		t.Fatalf("receive: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("delivered stream differs: got %d bytes, want %d (forged group-B data leaked into the flow?)", len(got), len(data))
	}
	if err := <-done; err != nil {
		t.Fatalf("sender: %v", err)
	}

	// The Group tag survives into the snapshot for both flows.
	snap := sess.Snapshot()
	tags := map[string]transport.GroupID{}
	for _, fs := range snap.Flows {
		tags[fs.Label] = fs.Group
	}
	if tags["a-snd"] != gidA || tags["a-rcv"] != gidA {
		t.Errorf("snapshot group tags = %v, want both %v", tags, gidA)
	}
}
