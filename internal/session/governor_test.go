package session

import (
	"math"
	"testing"
)

func inf() float64 { return math.Inf(1) }

// almost absorbs float summation noise in share comparisons.
func almost(got, want float64) bool { return math.Abs(got-want) < 1 }

// TestFairSharesWeighted pins the weighted split with every flow
// hungry: weights 3:1 under 1 MB/s yield 750/250 KB/s.
func TestFairSharesWeighted(t *testing.T) {
	got := fairShares(1e6, []shareReq{{Weight: 3, Demand: inf()}, {Weight: 1, Demand: inf()}})
	if !almost(got[0], 750e3) || !almost(got[1], 250e3) {
		t.Errorf("fairShares = %v, want [750000 250000]", got)
	}
}

// TestFairSharesRedistribution pins the demand-aware behavior: a flow
// demanding less than its fair share is capped at the demand and the
// slack goes to the hungry flow.
func TestFairSharesRedistribution(t *testing.T) {
	got := fairShares(1e6, []shareReq{{Weight: 1, Demand: 200e3}, {Weight: 1, Demand: inf()}})
	if !almost(got[0], 200e3) || !almost(got[1], 800e3) {
		t.Errorf("fairShares = %v, want [200000 800000]", got)
	}
}

// TestFairSharesWaterFill needs two redistribution rounds: capping the
// 100 KB/s flow lifts the per-flow share past the 500 KB/s flow's
// demand, whose slack then lands on the unbounded flow.
func TestFairSharesWaterFill(t *testing.T) {
	got := fairShares(1.2e6, []shareReq{
		{Weight: 1, Demand: 100e3},
		{Weight: 1, Demand: 500e3},
		{Weight: 1, Demand: inf()},
	})
	want := []float64{100e3, 500e3, 600e3}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Fatalf("fairShares = %v, want %v", got, want)
		}
	}
}

// TestFairSharesUnderDemand leaves budget on the table when every flow
// is satisfied: allocations equal demands, not shares.
func TestFairSharesUnderDemand(t *testing.T) {
	got := fairShares(1e6, []shareReq{{Weight: 1, Demand: 100e3}, {Weight: 1, Demand: 200e3}})
	if !almost(got[0], 100e3) || !almost(got[1], 200e3) {
		t.Errorf("fairShares = %v, want [100000 200000]", got)
	}
}

// TestFairSharesEdgeCases covers degenerate inputs: zero budget, no
// flows, and non-positive weights.
func TestFairSharesEdgeCases(t *testing.T) {
	if got := fairShares(0, []shareReq{{Weight: 1, Demand: inf()}}); got[0] != 0 {
		t.Errorf("zero budget allocated %v", got)
	}
	if got := fairShares(1e6, nil); len(got) != 0 {
		t.Errorf("no flows allocated %v", got)
	}
	got := fairShares(1e6, []shareReq{{Weight: 0, Demand: inf()}, {Weight: 1, Demand: inf()}})
	if got[0] != 0 || !almost(got[1], 1e6) {
		t.Errorf("zero-weight flow allocated %v", got)
	}
}

// TestFairSharesSumWithinBudget fuzzes a few mixed cases and asserts
// the invariants: sum ≤ budget and no allocation above demand.
func TestFairSharesSumWithinBudget(t *testing.T) {
	cases := [][]shareReq{
		{{Weight: 1, Demand: 50e3}, {Weight: 2, Demand: 300e3}, {Weight: 5, Demand: inf()}},
		{{Weight: 1, Demand: 10e3}, {Weight: 1, Demand: 10e3}},
		{{Weight: 4, Demand: inf()}, {Weight: 1, Demand: 999e3}, {Weight: 1, Demand: 1e3}},
	}
	for ci, reqs := range cases {
		got := fairShares(1e6, reqs)
		var sum float64
		for i, a := range got {
			if a > reqs[i].Demand+1 {
				t.Errorf("case %d flow %d: allocation %.0f exceeds demand %.0f", ci, i, a, reqs[i].Demand)
			}
			sum += a
		}
		if sum > 1e6+1 {
			t.Errorf("case %d: allocations sum to %.0f, over the 1e6 budget", ci, sum)
		}
	}
}
