package session

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/transport"
)

// TestSessionShardedSendPollers runs concurrent flows through a session
// configured with several send pollers: transports must spread across
// the shards round-robin, every flow must deliver bit-exact, and Close
// must still tear the pollers down cleanly.
func TestSessionShardedSendPollers(t *testing.T) {
	const (
		pollers = 4
		groups  = 6
		size    = 16 << 10
	)
	hub := transport.NewHub(transport.WithLoss(0.005, 11), transport.WithDelay(time.Millisecond))
	sess := New(Config{SendPollers: pollers})
	defer sess.Close()

	if got := len(sess.sendShards); got != pollers {
		t.Fatalf("session has %d send shards, want %d", got, pollers)
	}

	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		sp, rp := groupPorts(g)
		data := make([]byte, size)
		app.FillPattern(data, int64(g)<<18)
		rf, err := sess.OpenReceiver(hub.Endpoint(), receiver.Config{
			LocalPort: rp, RemotePort: sp, RcvBuf: 64 << 10,
		}, WithLabel(fmt.Sprintf("g%d-rcv", g)))
		if err != nil {
			t.Fatalf("OpenReceiver g%d: %v", g, err)
		}
		wg.Add(1)
		go func(g int, rf *ReceiverFlow) {
			defer wg.Done()
			got, err := io.ReadAll(rf)
			if err != nil {
				t.Errorf("group %d receiver: %v", g, err)
			}
			if !bytes.Equal(got, data) {
				t.Errorf("group %d receiver: got %d bytes, want %d", g, len(got), len(data))
			}
		}(g, rf)
		sf, err := sess.OpenSender(hub.Endpoint(), sender.Config{
			LocalPort: sp, RemotePort: rp, SndBuf: 64 << 10,
			ExpectedReceivers: 1, Rate: fastRate(),
		}, WithLabel(fmt.Sprintf("g%d-snd", g)))
		if err != nil {
			t.Fatalf("OpenSender g%d: %v", g, err)
		}
		wg.Add(1)
		go func(g int, sf *SenderFlow) {
			defer wg.Done()
			if _, err := sf.Write(data); err != nil {
				t.Errorf("group %d sender write: %v", g, err)
			}
			if err := sf.Close(); err != nil {
				t.Errorf("group %d sender close: %v", g, err)
			}
		}(g, sf)
	}
	wg.Wait()

	// With 2*groups transports attached round-robin, every shard must
	// have been assigned at least one.
	sess.mu.Lock()
	assigned := sess.nextShard
	sess.mu.Unlock()
	if assigned < pollers {
		t.Errorf("only %d transports attached across %d shards", assigned, pollers)
	}
}
