// The fair-share governor's allocation math, kept as a pure function so
// the redistribution policy is unit-testable without driving live flows.
//
// The original governor re-split the budget equally (by weight) every
// tick regardless of what each flow could actually use; a flow pacing
// below its ceiling — congestion-cut, urgently stopped, or simply idle —
// stranded the difference. The demand-aware governor water-fills
// instead: every flow reports a demand (how many bytes/second it could
// plausibly use next tick), flows whose weighted share exceeds their
// demand are capped at the demand, and the slack they donate is
// re-split among the still-hungry flows, proportional to weight, until
// no allocation changes.
package session

import "math"

// shareReq is one governed sender flow's input to the allocator.
type shareReq struct {
	// Weight is the flow's fair-share weight (> 0).
	Weight float64
	// Demand is the most bandwidth the flow can use next tick, in
	// bytes/second. math.Inf(1) means "as much as offered" — a flow
	// pacing at its ceiling whose appetite is unknown.
	Demand float64
}

// fairShares apportions budget among the requesting flows by iterative
// water-filling and returns each flow's allocation in bytes/second,
// parallel to reqs. Invariants: no flow is allocated more than its
// demand; the allocations sum to at most budget; slack donated by
// demand-capped flows is redistributed to uncapped flows proportional
// to their weights. Flows with non-positive weight get zero.
func fairShares(budget float64, reqs []shareReq) []float64 {
	out := make([]float64, len(reqs))
	if budget <= 0 {
		return out
	}
	unsat := make([]int, 0, len(reqs))
	for i, r := range reqs {
		if r.Weight > 0 {
			unsat = append(unsat, i)
		}
	}
	remaining := budget
	for len(unsat) > 0 && remaining > 0 {
		var totalW float64
		for _, i := range unsat {
			totalW += reqs[i].Weight
		}
		// Cap every flow whose proportional share covers its demand;
		// each cap frees slack, so re-run until a full pass caps no one.
		next := unsat[:0]
		capped := false
		for _, i := range unsat {
			share := remaining * reqs[i].Weight / totalW
			if !math.IsInf(reqs[i].Demand, 1) && reqs[i].Demand <= share {
				out[i] = reqs[i].Demand
				capped = true
			} else {
				next = append(next, i)
			}
		}
		unsat = next
		var used float64
		for i := range out {
			used += out[i]
		}
		if !capped {
			// Everyone left is hungry: split what remains by weight.
			rem := budget - used
			for _, i := range unsat {
				out[i] = rem * reqs[i].Weight / totalW
			}
			break
		}
		remaining = budget - used
	}
	return out
}
