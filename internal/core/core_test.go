package core

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/packet"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/transport"
)

// runTransfer moves size bytes from one sender to n receivers over the
// hub and returns what each receiver read.
func runTransfer(t *testing.T, hub *transport.Hub, n int, size int, scfg sender.Config, rcfg receiver.Config) [][]byte {
	t.Helper()
	scfg.ExpectedReceivers = n
	data := make([]byte, size)
	app.FillPattern(data, 0)

	var rs []*Receiver
	for i := 0; i < n; i++ {
		rs = append(rs, NewReceiver(hub.Endpoint(), rcfg))
	}
	snd := NewSender(hub.Endpoint(), scfg)

	results := make([][]byte, n)
	var wg sync.WaitGroup
	for i, r := range rs {
		wg.Add(1)
		go func(i int, r *Receiver) {
			defer wg.Done()
			got, err := io.ReadAll(r)
			if err != nil {
				t.Errorf("receiver %d: %v", i, err)
			}
			results[i] = got
			r.Close()
		}(i, r)
	}

	if _, err := snd.Write(data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- snd.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("sender Close timed out")
	}
	wg.Wait()
	return results
}

func TestLiveTransferLossless(t *testing.T) {
	hub := transport.NewHub()
	want := make([]byte, 200<<10)
	app.FillPattern(want, 0)
	results := runTransfer(t, hub, 3, len(want),
		sender.Config{SndBuf: 128 << 10},
		receiver.Config{RcvBuf: 128 << 10})
	for i, got := range results {
		if !bytes.Equal(got, want) {
			t.Errorf("receiver %d got %d bytes, want %d (content match: %v)",
				i, len(got), len(want), bytes.Equal(got, want))
		}
	}
}

func TestLiveTransferWithLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy live transfer takes a few wall-clock seconds")
	}
	hub := transport.NewHub(transport.WithLoss(0.02, 1), transport.WithDelay(2*time.Millisecond))
	want := make([]byte, 100<<10)
	app.FillPattern(want, 0)
	results := runTransfer(t, hub, 2, len(want),
		sender.Config{SndBuf: 64 << 10},
		receiver.Config{RcvBuf: 64 << 10})
	for i, got := range results {
		if !bytes.Equal(got, want) {
			t.Errorf("receiver %d: %d bytes, equal=%v", i, len(got), bytes.Equal(got, want))
		}
	}
}

func TestSenderAbortUnblocksWriters(t *testing.T) {
	hub := transport.NewHub()
	// No receivers and ExpectedReceivers=1: the window can never
	// release, so a large Write must block until Abort.
	snd := NewSender(hub.Endpoint(), sender.Config{
		SndBuf: 16 << 10, ExpectedReceivers: 1,
	})
	errCh := make(chan error, 1)
	go func() {
		_, err := snd.Write(make([]byte, 1<<20))
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	snd.Abort()
	select {
	case err := <-errCh:
		if err != ErrAborted {
			t.Errorf("blocked Write returned %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Abort did not unblock Write")
	}
}

func TestReceiverCloseUnblocksRead(t *testing.T) {
	hub := transport.NewHub()
	rcv := NewReceiver(hub.Endpoint(), receiver.Config{})
	errCh := make(chan error, 1)
	go func() {
		_, err := rcv.Read(make([]byte, 10))
		errCh <- err
	}()
	time.Sleep(30 * time.Millisecond)
	rcv.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("Read returned nil after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock Read")
	}
}

func TestHubLossAndDeterminism(t *testing.T) {
	// Direct hub-level checks: unicast goes to one endpoint, multicast
	// to all others.
	hub := transport.NewHub()
	a, b, c := hub.Endpoint(), hub.Endpoint(), hub.Endpoint()
	pkt := testPacket()
	if err := a.Send(pkt, true, 0); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []transport.Transport{b, c} {
		got, from, err := ep.Recv()
		if err != nil || got.Seq != pkt.Seq || from != a.Local() {
			t.Fatalf("multicast recv: %v %v %v", got, from, err)
		}
	}
	if err := b.Send(pkt, false, a.Local()); err != nil {
		t.Fatal(err)
	}
	got, from, err := a.Recv()
	if err != nil || from != b.Local() || got.Seq != pkt.Seq {
		t.Fatalf("unicast recv: %v %v %v", got, from, err)
	}
	a.Close()
	if _, _, err := a.Recv(); err != transport.ErrClosed {
		t.Errorf("Recv after Close = %v, want ErrClosed", err)
	}
	// A closed endpoint no longer receives multicast.
	if err := b.Send(pkt, true, 0); err != nil {
		t.Fatal(err)
	}
	got2, _, _ := c.Recv()
	if got2 == nil {
		t.Error("open endpoint missed multicast after peer close")
	}
}

func testPacket() *packet.Packet {
	return &packet.Packet{Header: packet.Header{Type: packet.TypeKeepalive, Seq: 77}}
}
