// Package core is the single-flow public face of the H-RMC library: it
// gives applications the familiar blocking Write/Read/Close socket
// feel of the kernel implementation's BSD interface over any
// Transport.
//
// Since the session layer landed there is exactly one wall-clock
// driver implementation: internal/session hosts N concurrent flows
// over one tick loop and one receive loop per transport, and each core
// Sender/Receiver is a thin wrapper around a private one-flow Session.
// Programs multiplexing many groups should use internal/session
// directly. The same sans-I/O machines also run, unchanged, under the
// discrete-event simulator in internal/netsim — the Go analogue of the
// paper importing the H-RMC kernel code directly into its CSIM
// simulation.
//
// A minimal session:
//
//	hub := transport.NewHub()
//	snd := core.NewSender(hub.Endpoint(), sender.Config{})
//	rcv := core.NewReceiver(hub.Endpoint(), receiver.Config{})
//	go func() { snd.Write(data); snd.Close() }()
//	io.ReadAll(rcv)
package core

import (
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/transport"
)

// TickInterval is the wall-clock transmit/timer tick, one kernel jiffy.
const TickInterval = session.DefaultTickInterval

// ErrAborted is returned by operations on an aborted connection.
var ErrAborted = session.ErrAborted

// newFlowSession builds the private one-flow session backing a core
// connection.
func newFlowSession() *session.Session {
	return session.New(session.Config{TickInterval: TickInterval})
}

// Sender is a reliable-multicast sending connection.
type Sender struct {
	sess *session.Session
	f    *session.SenderFlow
}

// NewSender opens a sending connection over tr and starts its driver
// loops. The connection owns tr and closes it on Close/Abort.
func NewSender(tr transport.Transport, cfg sender.Config) *Sender {
	sess := newFlowSession()
	f, err := sess.OpenSender(tr, cfg)
	if err != nil {
		// A fresh one-flow session cannot have port conflicts.
		panic("core: " + err.Error())
	}
	return &Sender{sess: sess, f: f}
}

// Write sends b on the multicast stream, blocking while the send window
// is full. It returns len(b) unless the connection is aborted.
func (s *Sender) Write(b []byte) (int, error) { return s.f.Write(b) }

// Close marks the end of the stream and blocks until every receiver is
// known to hold all data (the send window fully releases).
func (s *Sender) Close() error {
	err := s.f.Close()
	_ = s.sess.Close()
	return err
}

// Abort tears the connection down without waiting for delivery.
func (s *Sender) Abort() {
	s.f.Abort()
	s.sess.Abort()
}

// Stats returns the sender's protocol counters.
func (s *Sender) Stats() *stats.Sender { return s.f.Stats() }

// Members returns the number of receivers currently joined.
func (s *Sender) Members() int { return s.f.Members() }

// Receiver is a reliable-multicast receiving connection implementing
// io.Reader semantics: Read blocks for data and returns io.EOF at the
// end of the stream.
type Receiver struct {
	sess *session.Session
	f    *session.ReceiverFlow
}

// NewReceiver opens a receiving connection over tr and starts its
// driver loops. The connection owns tr and closes it on Close.
func NewReceiver(tr transport.Transport, cfg receiver.Config) *Receiver {
	sess := newFlowSession()
	f, err := sess.OpenReceiver(tr, cfg)
	if err != nil {
		panic("core: " + err.Error())
	}
	return &Receiver{sess: sess, f: f}
}

// Read delivers in-order stream bytes, blocking until data is available.
// It returns io.EOF once the whole stream has been consumed.
func (r *Receiver) Read(b []byte) (int, error) { return r.f.Read(b) }

// Close tears the receiving connection down.
func (r *Receiver) Close() error {
	_ = r.f.Close()
	r.sess.Abort()
	return nil
}

// Stats returns the receiver's protocol counters.
func (r *Receiver) Stats() *stats.Receiver { return r.f.Stats() }
