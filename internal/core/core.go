// Package core is the public face of the H-RMC library: it wires the
// sans-I/O protocol machines (internal/sender, internal/receiver) to a
// wall-clock driver over any Transport, giving applications the familiar
// blocking Write/Read/Close socket feel of the kernel implementation's
// BSD interface.
//
// The same machines run, unchanged, under the discrete-event simulator
// in internal/netsim — the Go analogue of the paper importing the H-RMC
// kernel code directly into its CSIM simulation.
//
// A minimal session:
//
//	hub := transport.NewHub()
//	snd := core.NewSender(hub.Endpoint(), sender.Config{})
//	rcv := core.NewReceiver(hub.Endpoint(), receiver.Config{})
//	go func() { snd.Write(data); snd.Close() }()
//	io.ReadAll(rcv)
package core

import (
	"errors"
	"sync"
	"time"

	"repro/internal/packet"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
)

// TickInterval is the wall-clock transmit/timer tick, one kernel jiffy.
const TickInterval = 10 * time.Millisecond

// ErrAborted is returned by operations on an aborted connection.
var ErrAborted = errors.New("hrmc: connection aborted")

// Sender is a reliable-multicast sending connection.
type Sender struct {
	mu    sync.Mutex
	cond  *sync.Cond
	m     *sender.Sender
	tr    transport.Transport
	start time.Time
	err   error
	quit  chan struct{}
	wg    sync.WaitGroup
}

// NewSender opens a sending connection over tr and starts its driver
// goroutines.
func NewSender(tr transport.Transport, cfg sender.Config) *Sender {
	s := &Sender{
		m:     sender.New(cfg),
		tr:    tr,
		start: time.Now(),
		quit:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(2)
	go s.tickLoop()
	go s.recvLoop()
	return s
}

func (s *Sender) now() sim.Time { return sim.Time(time.Since(s.start)) }

func (s *Sender) tickLoop() {
	defer s.wg.Done()
	t := time.NewTicker(TickInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			s.m.Tick(s.now())
			s.flushLocked()
			s.cond.Broadcast()
			s.mu.Unlock()
		case <-s.quit:
			return
		}
	}
}

func (s *Sender) recvLoop() {
	defer s.wg.Done()
	for {
		p, from, err := s.tr.Recv()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.m.HandlePacket(s.now(), from, p)
		s.flushLocked()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

func (s *Sender) flushLocked() {
	for _, o := range s.m.Outgoing() {
		_ = s.tr.Send(o.Pkt, o.Dest.Multicast, o.Dest.Node)
	}
}

// Write sends b on the multicast stream, blocking while the send window
// is full. It returns len(b) unless the connection is aborted.
func (s *Sender) Write(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for n < len(b) {
		if s.err != nil {
			return n, s.err
		}
		w := s.m.Write(s.now(), b[n:])
		n += w
		if w > 0 {
			// Ship what fit without waiting for the next tick.
			s.m.Tick(s.now())
			s.flushLocked()
			continue
		}
		s.cond.Wait()
	}
	return n, nil
}

// Close marks the end of the stream and blocks until every receiver is
// known to hold all data (the send window fully releases).
func (s *Sender) Close() error {
	s.mu.Lock()
	s.m.Close(s.now())
	for !s.m.Done() && s.err == nil {
		s.cond.Wait()
	}
	err := s.err
	s.mu.Unlock()
	s.shutdown()
	return err
}

// Abort tears the connection down without waiting for delivery.
func (s *Sender) Abort() {
	s.mu.Lock()
	if s.err == nil {
		s.err = ErrAborted
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.shutdown()
}

func (s *Sender) shutdown() {
	s.mu.Lock()
	select {
	case <-s.quit:
	default:
		close(s.quit)
	}
	s.mu.Unlock()
	_ = s.tr.Close()
	s.wg.Wait()
}

// Stats returns the sender's protocol counters.
func (s *Sender) Stats() *stats.Sender { return s.m.Stats() }

// Members returns the number of receivers currently joined.
func (s *Sender) Members() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Members()
}

// Receiver is a reliable-multicast receiving connection implementing
// io.Reader semantics: Read blocks for data and returns io.EOF at the
// end of the stream.
type Receiver struct {
	mu        sync.Mutex
	cond      *sync.Cond
	m         *receiver.Receiver
	tr        transport.Transport
	start     time.Time
	err       error
	quit      chan struct{}
	wg        sync.WaitGroup
	senderSet bool
	sender    packet.NodeID
}

// NewReceiver opens a receiving connection over tr and starts its driver
// goroutines.
func NewReceiver(tr transport.Transport, cfg receiver.Config) *Receiver {
	if cfg.LocalAddr == 0 {
		cfg.LocalAddr = tr.Local()
	}
	r := &Receiver{
		m:     receiver.New(cfg),
		tr:    tr,
		start: time.Now(),
		quit:  make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	r.wg.Add(2)
	go r.tickLoop()
	go r.recvLoop()
	return r
}

func (r *Receiver) now() sim.Time { return sim.Time(time.Since(r.start)) }

func (r *Receiver) tickLoop() {
	defer r.wg.Done()
	t := time.NewTicker(TickInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.mu.Lock()
			r.m.Advance(r.now())
			r.flushLocked()
			r.cond.Broadcast()
			r.mu.Unlock()
		case <-r.quit:
			return
		}
	}
}

func (r *Receiver) recvLoop() {
	defer r.wg.Done()
	for {
		p, from, err := r.tr.Recv()
		if err != nil {
			r.mu.Lock()
			if r.err == nil {
				r.err = err
			}
			r.cond.Broadcast()
			r.mu.Unlock()
			return
		}
		r.mu.Lock()
		if !r.senderSet {
			r.senderSet = true
			r.sender = from
		}
		_ = r.m.HandlePacket(r.now(), p)
		r.flushLocked()
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}

func (r *Receiver) flushLocked() {
	for _, p := range r.m.OutgoingMulticast() {
		_ = r.tr.Send(p, true, 0)
	}
	if !r.senderSet {
		return
	}
	for _, p := range r.m.Outgoing() {
		_ = r.tr.Send(p, false, r.sender)
	}
}

// Read delivers in-order stream bytes, blocking until data is available.
// It returns io.EOF once the whole stream has been consumed.
func (r *Receiver) Read(b []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		n, err := r.m.Read(r.now(), b)
		r.flushLocked() // end-of-stream queues UPDATE+LEAVE
		if n > 0 || err != nil {
			return n, err
		}
		if r.err != nil {
			return 0, r.err
		}
		r.cond.Wait()
	}
}

// Close tears the receiving connection down.
func (r *Receiver) Close() error {
	r.mu.Lock()
	select {
	case <-r.quit:
	default:
		close(r.quit)
	}
	r.mu.Unlock()
	_ = r.tr.Close()
	r.wg.Wait()
	return nil
}

// Stats returns the receiver's protocol counters.
func (r *Receiver) Stats() *stats.Receiver { return r.m.Stats() }
