// Package sim is a deterministic discrete-event simulation engine, the
// stand-in for the CSIM package the paper's simulation study used. It
// provides a virtual clock, a cancellable event queue, and seeded random
// number streams. Identical seeds produce identical runs.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual simulation time in nanoseconds since the start of the
// run.
type Time int64

// Convenient durations in virtual time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// String formats the time as seconds with microsecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%d.%06ds", t/Second, (t%Second)/Microsecond)
}

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts seconds to Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Event is a scheduled callback. The zero value is invalid; events are
// created by Engine.At and Engine.After.
type Event struct {
	at    Time
	seq   uint64 // tie-break: FIFO among same-time events
	fn    func()
	index int         // heap index, -1 when not queued
	q     *eventQueue // owning queue, nil once fired or cancelled
}

// Time returns the virtual time the event is (or was) scheduled for.
func (e *Event) Time() Time { return e.at }

// Cancel removes the event from the queue. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel reports whether the
// event was actually removed.
func (e *Event) Cancel() bool {
	if e.q == nil || e.index < 0 {
		return false
	}
	heap.Remove(e.q, e.index)
	e.q = nil
	return true
}

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e.q != nil && e.index >= 0 }

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engine is not safe for concurrent use; a simulation is single-threaded
// by design so that runs are reproducible.
type Engine struct {
	now    Time
	queue  eventQueue
	nextID uint64
	fired  uint64
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return e.queue.Len() }

// At schedules fn to run at virtual time t. Scheduling in the past (t <
// now) panics: that is always a logic error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.nextID, fn: fn, q: &e.queue}
	e.nextID++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Step executes the earliest pending event and returns true, or returns
// false when the queue is empty.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.q = nil
	if ev.at < e.now {
		panic("sim: event queue time went backwards")
	}
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled exactly at t are executed.
func (e *Engine) RunUntil(t Time) {
	for e.queue.Len() > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor executes events within the next d of virtual time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// eventQueue is a min-heap on (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
