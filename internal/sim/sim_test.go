package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(30*Millisecond, func() { got = append(got, 3) })
	e.At(10*Millisecond, func() { got = append(got, 1) })
	e.At(20*Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events ran in order %v, want %v", got, want)
		}
	}
	if e.Now() != 30*Millisecond {
		t.Errorf("final time %v, want 30ms", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("Fired() = %d, want 3", e.Fired())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	var e Engine
	var fired []Time
	e.After(Millisecond, func() {
		fired = append(fired, e.Now())
		e.After(2*Millisecond, func() {
			fired = append(fired, e.Now())
		})
	})
	e.Run()
	if len(fired) != 2 || fired[0] != Millisecond || fired[1] != 3*Millisecond {
		t.Errorf("fired at %v, want [1ms 3ms]", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	var e Engine
	ran := false
	ev := e.At(Millisecond, func() { ran = true })
	if !ev.Pending() {
		t.Error("event not pending after scheduling")
	}
	if !ev.Cancel() {
		t.Error("Cancel returned false for a pending event")
	}
	if ev.Cancel() {
		t.Error("second Cancel returned true")
	}
	e.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after cancel", e.Pending())
	}
}

func TestEngineCancelOneOfMany(t *testing.T) {
	var e Engine
	var got []int
	var evs []*Event
	for i := 0; i < 5; i++ {
		i := i
		evs = append(evs, e.At(Time(i+1)*Millisecond, func() { got = append(got, i) }))
	}
	evs[2].Cancel()
	e.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	var got []int
	e.At(Millisecond, func() { got = append(got, 1) })
	e.At(5*Millisecond, func() { got = append(got, 5) })
	e.RunUntil(3 * Millisecond)
	if len(got) != 1 {
		t.Fatalf("RunUntil(3ms) ran %v", got)
	}
	if e.Now() != 3*Millisecond {
		t.Errorf("Now() = %v, want 3ms", e.Now())
	}
	e.RunUntil(5 * Millisecond) // boundary inclusive
	if len(got) != 2 {
		t.Fatalf("RunUntil(5ms) did not run the boundary event: %v", got)
	}
	e.RunFor(10 * Millisecond)
	if e.Now() != 15*Millisecond {
		t.Errorf("RunFor advanced to %v, want 15ms", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(10*Millisecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(Millisecond, func() {})
}

func TestEngineStepEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestTimeHelpers(t *testing.T) {
	if s := (1500 * Millisecond).String(); s != "1.500000s" {
		t.Errorf("Time string = %q", s)
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Error("Seconds conversion wrong")
	}
	if FromSeconds(0.25) != 250*Millisecond {
		t.Error("FromSeconds conversion wrong")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds coincided %d/100 times", same)
	}
}

func TestRNGStreamsIndependentOfOrder(t *testing.T) {
	// Streams are derived from draw state, so derive both before drawing.
	r1 := NewRNG(1)
	a1 := r1.Stream(10)
	b1 := r1.Stream(20)
	r2 := NewRNG(1)
	a2 := r2.Stream(10)
	b2 := r2.Stream(20)
	for i := 0; i < 100; i++ {
		if a1.Uint64() != a2.Uint64() || b1.Uint64() != b2.Uint64() {
			t.Fatal("streams not reproducible")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Errorf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestRNGBool(t *testing.T) {
	r := NewRNG(4)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.02) {
			hits++
		}
	}
	if rate := float64(hits) / n; rate < 0.015 || rate > 0.025 {
		t.Errorf("Bool(0.02) rate = %v", rate)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) only produced %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGJitter(t *testing.T) {
	r := NewRNG(6)
	base := 100 * Millisecond
	for i := 0; i < 1000; i++ {
		j := r.Jitter(base, 0.1)
		if j < 90*Millisecond || j > 110*Millisecond {
			t.Fatalf("Jitter out of band: %v", j)
		}
	}
	if r.Jitter(base, 0) != base {
		t.Error("zero-fraction jitter changed the value")
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(9)
	var sum Time
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(Millisecond)
	}
	mean := float64(sum) / n
	if mean < 0.95*float64(Millisecond) || mean > 1.05*float64(Millisecond) {
		t.Errorf("Exp mean = %vns, want ≈1ms", mean)
	}
}

// Property: a run with the same seed and same schedule fires the same
// number of events at the same final time.
func TestPropEngineDeterministic(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		run := func() (uint64, Time) {
			var e Engine
			r := NewRNG(seed)
			n := int(nRaw%50) + 1
			for i := 0; i < n; i++ {
				d := Time(r.Intn(1000)) * Microsecond
				e.After(d, func() {})
			}
			e.Run()
			return e.Fired(), e.Now()
		}
		f1, t1 := run()
		f2, t2 := run()
		return f1 == f2 && t1 == t2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
