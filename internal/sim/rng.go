package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (splitmix64-seeded xoshiro256**). Each model component takes its own
// stream so that adding a component does not perturb the draws seen by
// the others, which keeps experiment sweeps comparable run to run.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64. Any seed,
// including zero, yields a valid stream.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// Stream derives an independent child generator; the (seed, label) pair
// determines the stream, so components can be created in any order.
func (r *RNG) Stream(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0x9E3779B97F4A7C15))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p. Probabilities outside [0,1] are
// clamped.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Jitter returns a duration drawn uniformly from [d*(1-frac), d*(1+frac)].
func (r *RNG) Jitter(d Time, frac float64) Time {
	if frac <= 0 || d == 0 {
		return d
	}
	span := float64(d) * frac
	return d + Time((r.Float64()*2-1)*span)
}

// Exp returns an exponentially distributed duration with the given mean.
func (r *RNG) Exp(mean Time) Time {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	// -ln(u) via the math-free approximation is not worth it; use math.Log.
	return Time(float64(mean) * negLog(u))
}

// negLog returns -ln(u) for u in (0, 1].
func negLog(u float64) float64 { return -math.Log(u) }
