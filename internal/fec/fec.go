// Package fec implements the forward-error-correction extension the
// paper lists as future work (Section 7, item 4: "incorporation of
// forward error correction, particularly for wireless environments").
//
// The scheme is single-erasure XOR parity: for every group of K
// consecutive data packets the sender multicasts one best-effort parity
// packet whose payload is the XOR of the group's length-prefixed
// payloads. A receiver missing exactly one packet of the group rebuilds
// it locally — no NAK, no retransmission round trip. Parity packets are
// never retransmitted and never occupy window space; losing one merely
// falls back to the NAK path.
//
// Wire form: a PROBE-sized extension type (packet.TypeFec). Seq is the
// first sequence number of the covered group; Length is the group size
// K; the payload is the XOR of [len16be ‖ flags8 ‖ payload ‖ zero
// padding] over the group, sized to fit the largest member plus the
// prefix. The flags byte rides inside the protected block so that a
// rebuilt packet restores its header flags too — losing the FIN packet
// and rebuilding it without FlagFIN would deliver every byte yet never
// signal end-of-stream.
package fec

import (
	"encoding/binary"

	"repro/internal/packet"
	"repro/internal/seqspace"
)

// MaxGroup bounds the group size (fits comfortably in a receive
// window's worth of state).
const MaxGroup = 64

// lenPrefix is the XOR-protected prefix in bytes: a 16-bit payload
// length followed by the header flags byte.
const lenPrefix = 3

// Encoder accumulates transmitted packets and produces parity packets.
type Encoder struct {
	k        int
	base     seqspace.Seq
	count    int
	acc      []byte // XOR accumulator, length = lenPrefix + longest payload
	restarts int64
}

// NewEncoder returns an encoder emitting one parity packet per k data
// packets; k is clamped to [2, MaxGroup].
func NewEncoder(k int) *Encoder {
	if k < 2 {
		k = 2
	}
	if k > MaxGroup {
		k = MaxGroup
	}
	return &Encoder{k: k}
}

// GroupSize returns K.
func (e *Encoder) GroupSize() int { return e.k }

// xorInto accumulates [len16 ‖ flags8 ‖ payload] into acc, growing it
// as needed.
func xorInto(acc []byte, flags uint8, payload []byte) []byte {
	need := lenPrefix + len(payload)
	for len(acc) < need {
		acc = append(acc, 0)
	}
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(payload)))
	acc[0] ^= l[0]
	acc[1] ^= l[1]
	acc[2] ^= flags
	for i, b := range payload {
		acc[lenPrefix+i] ^= b
	}
	return acc
}

// Add feeds one first-transmission data packet and returns a parity
// packet when the group completes, else nil. Retransmissions must not
// be fed: the group covers each sequence number once. A discontinuous
// sequence number (seq != base+count) abandons the open group and
// starts a fresh one at seq — emitting parity over a gapped group
// would silently corrupt it, because the receiver reconstructs members
// as base..base+K-1.
//
// The parity packet is drawn from the shared packet pool with one
// reference; the caller owns it and must eventually Put it (directly
// or through a path that does).
func (e *Encoder) Add(seq seqspace.Seq, flags uint8, payload []byte) *packet.Packet {
	if e.count > 0 && seq != e.base+seqspace.Seq(e.count) {
		e.count = 0
		e.restarts++
	}
	if e.count == 0 {
		e.base = seq
		e.acc = e.acc[:0]
	}
	e.acc = xorInto(e.acc, flags, payload)
	e.count++
	if e.count < e.k {
		return nil
	}
	p := packet.GetBuf(len(e.acc))
	p.Header = packet.Header{
		Type:   packet.TypeFec,
		Seq:    uint32(e.base),
		Length: uint32(e.k),
	}
	p.Payload = append(p.Payload[:0], e.acc...)
	e.count = 0
	return p
}

// Restarts returns how many open groups were abandoned because Add saw
// a discontinuous sequence number. Monotonic.
func (e *Encoder) Restarts() int64 { return e.restarts }

// Pending returns how many packets the open (incomplete) group holds.
func (e *Encoder) Pending() int { return e.count }

// Flush closes the open group early and returns its parity packet with
// Length set to the actual member count, or nil when fewer than two
// packets are pending (single-member parity is just a duplicate, and the
// decoder rejects k < 2 anyway — the lone packet stays pending so a
// later Add can still extend the group). Senders call this when the
// transmit pipeline goes idle mid-group — a stall, a rate-control pause,
// or the stream tail — so that already-sent packets do not sit
// unprotected past the receivers' NAK-defer window.
//
// Like Add, the returned packet carries one pool reference owned by the
// caller.
func (e *Encoder) Flush() *packet.Packet {
	if e.count < 2 {
		return nil
	}
	p := packet.GetBuf(len(e.acc))
	p.Header = packet.Header{
		Type:   packet.TypeFec,
		Seq:    uint32(e.base),
		Length: uint32(e.count),
	}
	p.Payload = append(p.Payload[:0], e.acc...)
	e.count = 0
	return p
}

// PayloadLookup resolves a stored data packet's payload and header
// flags by sequence number; ok is false when the packet is unavailable.
type PayloadLookup func(seq seqspace.Seq) (payload []byte, flags uint8, ok bool)

// Decoder rebuilds missing group members from parity packets. It holds
// a reusable XOR scratch buffer so steady-state recovery allocates
// nothing beyond the pooled rebuilt packet. The zero value is ready to
// use. Not safe for concurrent use.
type Decoder struct {
	acc []byte // XOR scratch, reused across Recover calls
}

// Recover attempts single-erasure reconstruction from a parity packet.
// lookup must resolve every present member of the covered group. It
// returns the rebuilt data packet and true when exactly one member is
// missing and reconstruction succeeds.
//
// The rebuilt packet is drawn from the shared packet pool with one
// reference owned by the caller.
func (d *Decoder) Recover(parity *packet.Packet, lookup PayloadLookup) (*packet.Packet, bool) {
	if parity.Type != packet.TypeFec {
		return nil, false
	}
	k := int(parity.Length)
	if k < 2 || k > MaxGroup || len(parity.Payload) < lenPrefix {
		return nil, false
	}
	base := seqspace.Seq(parity.Seq)
	acc := append(d.acc[:0], parity.Payload...)
	missing := seqspace.Seq(0)
	nMissing := 0
	for i := 0; i < k; i++ {
		seq := base + seqspace.Seq(i)
		payload, flags, ok := lookup(seq)
		if !ok {
			missing = seq
			nMissing++
			if nMissing > 1 {
				d.acc = acc
				return nil, false
			}
			continue
		}
		if lenPrefix+len(payload) > len(acc) {
			// A member is larger than the parity coverage: corrupt or
			// mismatched group; bail out.
			d.acc = acc
			return nil, false
		}
		acc = xorInto(acc, flags, payload)
	}
	d.acc = acc
	if nMissing != 1 {
		return nil, false
	}
	n := int(binary.BigEndian.Uint16(acc[:2]))
	flags := acc[2]
	if lenPrefix+n > len(acc) {
		return nil, false
	}
	if flags&^(packet.FlagURG|packet.FlagFIN) != 0 {
		// The residual flags byte can only hold legal flag bits; any
		// others mean the group was inconsistent.
		return nil, false
	}
	// Everything beyond the rebuilt payload must have XORed to zero;
	// nonzero residue means the group was inconsistent.
	for _, b := range acc[lenPrefix+n:] {
		if b != 0 {
			return nil, false
		}
	}
	rebuilt := packet.GetBuf(n)
	rebuilt.Header = packet.Header{
		Type:   packet.TypeData,
		Seq:    uint32(missing),
		Length: uint32(n),
		Flags:  flags,
	}
	rebuilt.Payload = append(rebuilt.Payload[:0], acc[lenPrefix:lenPrefix+n]...)
	return rebuilt, true
}

// Recover is the stateless form of Decoder.Recover, for callers without
// a long-lived decoder (tests, one-shot tooling).
func Recover(parity *packet.Packet, lookup PayloadLookup) (*packet.Packet, bool) {
	var d Decoder
	return d.Recover(parity, lookup)
}
