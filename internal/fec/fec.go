// Package fec implements the forward-error-correction extension the
// paper lists as future work (Section 7, item 4: "incorporation of
// forward error correction, particularly for wireless environments").
//
// The scheme is single-erasure XOR parity: for every group of K
// consecutive data packets the sender multicasts one best-effort parity
// packet whose payload is the XOR of the group's length-prefixed
// payloads. A receiver missing exactly one packet of the group rebuilds
// it locally — no NAK, no retransmission round trip. Parity packets are
// never retransmitted and never occupy window space; losing one merely
// falls back to the NAK path.
//
// Wire form: a PROBE-sized extension type (packet.TypeFec). Seq is the
// first sequence number of the covered group; Length is the group size
// K; the payload is the XOR of [len16be ‖ payload ‖ zero padding] over
// the group, sized to fit the largest member plus the prefix.
package fec

import (
	"encoding/binary"

	"repro/internal/packet"
	"repro/internal/seqspace"
)

// MaxGroup bounds the group size (fits comfortably in a receive
// window's worth of state).
const MaxGroup = 64

// lenPrefix is the XOR-protected length prefix in bytes.
const lenPrefix = 2

// Encoder accumulates transmitted packets and produces parity packets.
type Encoder struct {
	k     int
	base  seqspace.Seq
	count int
	acc   []byte // XOR accumulator, length = lenPrefix + longest payload
}

// NewEncoder returns an encoder emitting one parity packet per k data
// packets; k is clamped to [2, MaxGroup].
func NewEncoder(k int) *Encoder {
	if k < 2 {
		k = 2
	}
	if k > MaxGroup {
		k = MaxGroup
	}
	return &Encoder{k: k}
}

// GroupSize returns K.
func (e *Encoder) GroupSize() int { return e.k }

// xorInto accumulates [len16 ‖ payload] into acc, growing it as needed.
func xorInto(acc []byte, payload []byte) []byte {
	need := lenPrefix + len(payload)
	for len(acc) < need {
		acc = append(acc, 0)
	}
	var l [lenPrefix]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(payload)))
	acc[0] ^= l[0]
	acc[1] ^= l[1]
	for i, b := range payload {
		acc[lenPrefix+i] ^= b
	}
	return acc
}

// Add feeds one first-transmission data packet (in sequence order) and
// returns a parity packet when the group completes, else nil.
// Retransmissions must not be fed: the group covers each sequence
// number once.
func (e *Encoder) Add(seq seqspace.Seq, payload []byte) *packet.Packet {
	if e.count == 0 {
		e.base = seq
		e.acc = e.acc[:0]
	}
	e.acc = xorInto(e.acc, payload)
	e.count++
	if e.count < e.k {
		return nil
	}
	parity := make([]byte, len(e.acc))
	copy(parity, e.acc)
	p := &packet.Packet{
		Header: packet.Header{
			Type:   packet.TypeFec,
			Seq:    uint32(e.base),
			Length: uint32(e.k),
		},
		Payload: parity,
	}
	e.count = 0
	return p
}

// PayloadLookup resolves a stored data payload by sequence number; ok
// is false when the payload is unavailable.
type PayloadLookup func(seq seqspace.Seq) (payload []byte, ok bool)

// Recover attempts single-erasure reconstruction from a parity packet.
// lookup must resolve every present member of the covered group. It
// returns the rebuilt data packet and true when exactly one member is
// missing and reconstruction succeeds.
func Recover(parity *packet.Packet, lookup PayloadLookup) (*packet.Packet, bool) {
	if parity.Type != packet.TypeFec {
		return nil, false
	}
	k := int(parity.Length)
	if k < 2 || k > MaxGroup || len(parity.Payload) < lenPrefix {
		return nil, false
	}
	base := seqspace.Seq(parity.Seq)
	acc := make([]byte, len(parity.Payload))
	copy(acc, parity.Payload)
	missing := seqspace.Seq(0)
	nMissing := 0
	for i := 0; i < k; i++ {
		seq := base + seqspace.Seq(i)
		payload, ok := lookup(seq)
		if !ok {
			missing = seq
			nMissing++
			if nMissing > 1 {
				return nil, false
			}
			continue
		}
		if lenPrefix+len(payload) > len(acc) {
			// A member is larger than the parity coverage: corrupt or
			// mismatched group; bail out.
			return nil, false
		}
		acc = xorInto(acc, payload)
	}
	if nMissing != 1 {
		return nil, false
	}
	n := int(binary.BigEndian.Uint16(acc[:lenPrefix]))
	if lenPrefix+n > len(acc) {
		return nil, false
	}
	rebuilt := make([]byte, n)
	copy(rebuilt, acc[lenPrefix:lenPrefix+n])
	// Everything beyond the rebuilt payload must have XORed to zero;
	// nonzero residue means the group was inconsistent.
	for _, b := range acc[lenPrefix+n:] {
		if b != 0 {
			return nil, false
		}
	}
	return &packet.Packet{
		Header: packet.Header{
			Type:   packet.TypeData,
			Seq:    uint32(missing),
			Length: uint32(n),
		},
		Payload: rebuilt,
	}, true
}
