package fec

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/seqspace"
)

// mkGroup builds k payloads of varying sizes and the parity packet an
// encoder emits for them.
func mkGroup(t *testing.T, k int, base seqspace.Seq, sizes []int) ([][]byte, *packet.Packet) {
	t.Helper()
	enc := NewEncoder(k)
	payloads := make([][]byte, k)
	var parity *packet.Packet
	for i := 0; i < k; i++ {
		n := 100
		if i < len(sizes) {
			n = sizes[i]
		}
		pl := make([]byte, n)
		for j := range pl {
			pl[j] = byte(i*31 + j)
		}
		payloads[i] = pl
		parity = enc.Add(base+seqspace.Seq(i), pl)
		if i < k-1 && parity != nil {
			t.Fatal("parity emitted before the group completed")
		}
	}
	if parity == nil {
		t.Fatal("no parity after a full group")
	}
	return payloads, parity
}

func lookupFrom(payloads [][]byte, base seqspace.Seq, missing int) PayloadLookup {
	return func(seq seqspace.Seq) ([]byte, bool) {
		i := int(seqspace.Diff(seq, base))
		if i < 0 || i >= len(payloads) || i == missing {
			return nil, false
		}
		return payloads[i], true
	}
}

func TestEncoderGroupBoundaries(t *testing.T) {
	enc := NewEncoder(3)
	if enc.GroupSize() != 3 {
		t.Fatalf("group size %d", enc.GroupSize())
	}
	if NewEncoder(0).GroupSize() < 2 {
		t.Error("group size not clamped up")
	}
	if NewEncoder(1000).GroupSize() != MaxGroup {
		t.Error("group size not clamped down")
	}
	p := enc.Add(10, []byte("aa"))
	if p != nil {
		t.Fatal("parity after 1 of 3")
	}
	enc.Add(11, []byte("bb"))
	p = enc.Add(12, []byte("cc"))
	if p == nil || p.Seq != 10 || p.Length != 3 || p.Type != packet.TypeFec {
		t.Fatalf("parity header wrong: %+v", p)
	}
	// Next group starts fresh.
	if enc.Add(13, []byte("dd")) != nil {
		t.Error("parity leaked into the next group")
	}
}

func TestRecoverEachPosition(t *testing.T) {
	const k = 5
	sizes := []int{100, 1, 57, 100, 33} // mixed sizes, incl. shorter-than-max
	payloads, parity := mkGroup(t, k, 1000, sizes)
	for missing := 0; missing < k; missing++ {
		got, ok := Recover(parity, lookupFrom(payloads, 1000, missing))
		if !ok {
			t.Fatalf("recovery failed for position %d", missing)
		}
		if got.Seq != uint32(1000+missing) {
			t.Errorf("rebuilt seq %d, want %d", got.Seq, 1000+missing)
		}
		if !bytes.Equal(got.Payload, payloads[missing]) {
			t.Errorf("position %d: rebuilt payload differs", missing)
		}
		if got.Type != packet.TypeData || got.Length != uint32(len(payloads[missing])) {
			t.Errorf("rebuilt header wrong: %+v", got.Header)
		}
	}
}

func TestRecoverRefusesZeroOrTwoMissing(t *testing.T) {
	payloads, parity := mkGroup(t, 4, 0, nil)
	if _, ok := Recover(parity, lookupFrom(payloads, 0, -1)); ok {
		t.Error("recovered with nothing missing")
	}
	two := func(seq seqspace.Seq) ([]byte, bool) {
		i := int(seq)
		if i == 1 || i == 2 {
			return nil, false
		}
		return payloads[i], true
	}
	if _, ok := Recover(parity, two); ok {
		t.Error("recovered with two missing")
	}
}

func TestRecoverRejectsGarbage(t *testing.T) {
	if _, ok := Recover(&packet.Packet{Header: packet.Header{Type: packet.TypeData}}, nil); ok {
		t.Error("recovered from a non-FEC packet")
	}
	bad := &packet.Packet{Header: packet.Header{Type: packet.TypeFec, Length: 1}}
	if _, ok := Recover(bad, nil); ok {
		t.Error("recovered from k=1")
	}
	bad = &packet.Packet{Header: packet.Header{Type: packet.TypeFec, Length: 200}, Payload: []byte{0, 0}}
	if _, ok := Recover(bad, nil); ok {
		t.Error("recovered from oversized k")
	}
	// Inconsistent group: member larger than parity coverage.
	payloads, parity := mkGroup(t, 3, 0, []int{10, 10, 10})
	big := func(seq seqspace.Seq) ([]byte, bool) {
		if seq == 0 {
			return make([]byte, 500), true
		}
		return lookupFrom(payloads, 0, 1)(seq)
	}
	if _, ok := Recover(parity, big); ok {
		t.Error("recovered despite an oversized member")
	}
}

// Property: for any group contents and any single missing position,
// recovery rebuilds the exact payload.
func TestPropRecoverRoundTrip(t *testing.T) {
	f := func(seed uint8, kRaw uint8, missRaw uint8, lens []uint8) bool {
		k := int(kRaw%7) + 2
		enc := NewEncoder(k)
		payloads := make([][]byte, k)
		var parity *packet.Packet
		for i := 0; i < k; i++ {
			n := 1
			if i < len(lens) {
				n = int(lens[i])%200 + 1
			}
			pl := make([]byte, n)
			for j := range pl {
				pl[j] = byte(int(seed) + i*37 + j*11)
			}
			payloads[i] = pl
			parity = enc.Add(seqspace.Seq(i), pl)
		}
		missing := int(missRaw) % k
		got, ok := Recover(parity, lookupFrom(payloads, 0, missing))
		return ok && bytes.Equal(got.Payload, payloads[missing]) && got.Seq == uint32(missing)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncoderAdd(b *testing.B) {
	enc := NewEncoder(8)
	payload := make([]byte, 1400)
	b.SetBytes(1400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc.Add(seqspace.Seq(i), payload)
	}
}

func BenchmarkRecover(b *testing.B) {
	enc := NewEncoder(8)
	payloads := make([][]byte, 8)
	var parity *packet.Packet
	for i := range payloads {
		payloads[i] = make([]byte, 1400)
		parity = enc.Add(seqspace.Seq(i), payloads[i])
	}
	lookup := func(seq seqspace.Seq) ([]byte, bool) {
		if seq == 3 {
			return nil, false
		}
		return payloads[int(seq)], true
	}
	b.SetBytes(8 * 1400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Recover(parity, lookup); !ok {
			b.Fatal("recovery failed")
		}
	}
}
