package fec

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/seqspace"
)

// mkGroup builds k payloads of varying sizes and the parity packet an
// encoder emits for them.
func mkGroup(t *testing.T, k int, base seqspace.Seq, sizes []int) ([][]byte, *packet.Packet) {
	t.Helper()
	enc := NewEncoder(k)
	payloads := make([][]byte, k)
	var parity *packet.Packet
	for i := 0; i < k; i++ {
		n := 100
		if i < len(sizes) {
			n = sizes[i]
		}
		pl := make([]byte, n)
		for j := range pl {
			pl[j] = byte(i*31 + j)
		}
		payloads[i] = pl
		parity = enc.Add(base+seqspace.Seq(i), 0, pl)
		if i < k-1 && parity != nil {
			t.Fatal("parity emitted before the group completed")
		}
	}
	if parity == nil {
		t.Fatal("no parity after a full group")
	}
	return payloads, parity
}

func lookupFrom(payloads [][]byte, base seqspace.Seq, missing int) PayloadLookup {
	return func(seq seqspace.Seq) ([]byte, uint8, bool) {
		i := int(seqspace.Diff(seq, base))
		if i < 0 || i >= len(payloads) || i == missing {
			return nil, 0, false
		}
		return payloads[i], 0, true
	}
}

func TestEncoderGroupBoundaries(t *testing.T) {
	enc := NewEncoder(3)
	if enc.GroupSize() != 3 {
		t.Fatalf("group size %d", enc.GroupSize())
	}
	if NewEncoder(0).GroupSize() < 2 {
		t.Error("group size not clamped up")
	}
	if NewEncoder(1000).GroupSize() != MaxGroup {
		t.Error("group size not clamped down")
	}
	p := enc.Add(10, 0, []byte("aa"))
	if p != nil {
		t.Fatal("parity after 1 of 3")
	}
	enc.Add(11, 0, []byte("bb"))
	p = enc.Add(12, 0, []byte("cc"))
	if p == nil || p.Seq != 10 || p.Length != 3 || p.Type != packet.TypeFec {
		t.Fatalf("parity header wrong: %+v", p)
	}
	// Next group starts fresh.
	if enc.Add(13, 0, []byte("dd")) != nil {
		t.Error("parity leaked into the next group")
	}
}

// Regression: a discontinuous first transmission must abandon the open
// group instead of silently emitting parity over a gapped group. The
// receiver aligns members as base..base+K-1, so parity accumulated
// across a sequence jump would rebuild garbage that still passes the
// XOR residue check.
func TestEncoderRestartsOnDiscontinuity(t *testing.T) {
	enc := NewEncoder(3)
	if enc.Restarts() != 0 {
		t.Fatal("fresh encoder reports restarts")
	}
	enc.Add(0, 0, []byte("aa"))
	enc.Add(1, 0, []byte("bb"))
	// Sequence jump mid-group: 5 instead of 2.
	if p := enc.Add(5, 0, []byte("cc")); p != nil {
		t.Fatal("parity emitted across a sequence gap")
	}
	if enc.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1", enc.Restarts())
	}
	// Re-feeding the same sequence number (a mis-fed retransmission)
	// must also restart rather than double-count it.
	if p := enc.Add(5, 0, []byte("cc")); p != nil {
		t.Fatal("parity emitted after a duplicate sequence number")
	}
	if enc.Restarts() != 2 {
		t.Fatalf("restarts = %d, want 2", enc.Restarts())
	}
	// The restarted group must complete normally and its parity must
	// actually recover the right bytes.
	payloads := [][]byte{[]byte("cc"), []byte("dddd"), []byte("e")}
	enc.Add(6, 0, payloads[1])
	parity := enc.Add(7, 0, payloads[2])
	if parity == nil {
		t.Fatal("no parity after the restarted group completed")
	}
	if parity.Seq != 5 || parity.Length != 3 {
		t.Fatalf("restarted group parity header wrong: %+v", parity.Header)
	}
	for missing := 0; missing < 3; missing++ {
		got, ok := Recover(parity, lookupFrom(payloads, 5, missing))
		if !ok || !bytes.Equal(got.Payload, payloads[missing]) {
			t.Fatalf("restarted group failed to recover position %d", missing)
		}
	}
}

func TestRecoverEachPosition(t *testing.T) {
	const k = 5
	sizes := []int{100, 1, 57, 100, 33} // mixed sizes, incl. shorter-than-max
	payloads, parity := mkGroup(t, k, 1000, sizes)
	for missing := 0; missing < k; missing++ {
		got, ok := Recover(parity, lookupFrom(payloads, 1000, missing))
		if !ok {
			t.Fatalf("recovery failed for position %d", missing)
		}
		if got.Seq != uint32(1000+missing) {
			t.Errorf("rebuilt seq %d, want %d", got.Seq, 1000+missing)
		}
		if !bytes.Equal(got.Payload, payloads[missing]) {
			t.Errorf("position %d: rebuilt payload differs", missing)
		}
		if got.Type != packet.TypeData || got.Length != uint32(len(payloads[missing])) {
			t.Errorf("rebuilt header wrong: %+v", got.Header)
		}
	}
}

// Regression: header flags ride inside the XOR-protected block, so a
// rebuilt packet restores them bit-exactly. The live-datapath hang this
// guards against: the zero-length FIN packet lost on the wire and
// rebuilt from parity WITHOUT FlagFIN delivers the whole stream but
// never signals end-of-stream, wedging the reader forever.
func TestRecoverRestoresFlags(t *testing.T) {
	enc := NewEncoder(3)
	payloads := [][]byte{[]byte("hello"), []byte("world!"), nil}
	flags := []uint8{0, packet.FlagURG, packet.FlagFIN}
	var parity *packet.Packet
	for i, pl := range payloads {
		parity = enc.Add(seqspace.Seq(100+i), flags[i], pl)
	}
	if parity == nil {
		t.Fatal("no parity after full group")
	}
	for missing := 0; missing < 3; missing++ {
		lookup := func(seq seqspace.Seq) ([]byte, uint8, bool) {
			i := int(seqspace.Diff(seq, 100))
			if i < 0 || i >= 3 || i == missing {
				return nil, 0, false
			}
			return payloads[i], flags[i], true
		}
		got, ok := Recover(parity, lookup)
		if !ok {
			t.Fatalf("recovery failed for position %d", missing)
		}
		if got.Flags != flags[missing] {
			t.Errorf("position %d: rebuilt flags %#x, want %#x", missing, got.Flags, flags[missing])
		}
		if missing == 2 && !got.FIN() {
			t.Error("rebuilt FIN packet lost its FIN flag")
		}
		if !bytes.Equal(got.Payload, payloads[missing]) {
			t.Errorf("position %d: rebuilt payload differs", missing)
		}
	}
}

func TestRecoverRefusesZeroOrTwoMissing(t *testing.T) {
	payloads, parity := mkGroup(t, 4, 0, nil)
	if _, ok := Recover(parity, lookupFrom(payloads, 0, -1)); ok {
		t.Error("recovered with nothing missing")
	}
	two := func(seq seqspace.Seq) ([]byte, uint8, bool) {
		i := int(seq)
		if i == 1 || i == 2 {
			return nil, 0, false
		}
		return payloads[i], 0, true
	}
	if _, ok := Recover(parity, two); ok {
		t.Error("recovered with two missing")
	}
}

func TestRecoverRejectsGarbage(t *testing.T) {
	if _, ok := Recover(&packet.Packet{Header: packet.Header{Type: packet.TypeData}}, nil); ok {
		t.Error("recovered from a non-FEC packet")
	}
	bad := &packet.Packet{Header: packet.Header{Type: packet.TypeFec, Length: 1}}
	if _, ok := Recover(bad, nil); ok {
		t.Error("recovered from k=1")
	}
	bad = &packet.Packet{Header: packet.Header{Type: packet.TypeFec, Length: 200}, Payload: []byte{0, 0}}
	if _, ok := Recover(bad, nil); ok {
		t.Error("recovered from oversized k")
	}
	// Inconsistent group: member larger than parity coverage.
	payloads, parity := mkGroup(t, 3, 0, []int{10, 10, 10})
	big := func(seq seqspace.Seq) ([]byte, uint8, bool) {
		if seq == 0 {
			return make([]byte, 500), 0, true
		}
		return lookupFrom(payloads, 0, 1)(seq)
	}
	if _, ok := Recover(parity, big); ok {
		t.Error("recovered despite an oversized member")
	}
}

// Property: for any group contents and any single missing position,
// recovery rebuilds the exact payload.
func TestPropRecoverRoundTrip(t *testing.T) {
	f := func(seed uint8, kRaw uint8, missRaw uint8, lens []uint8) bool {
		k := int(kRaw%7) + 2
		enc := NewEncoder(k)
		payloads := make([][]byte, k)
		var parity *packet.Packet
		for i := 0; i < k; i++ {
			n := 1
			if i < len(lens) {
				n = int(lens[i])%200 + 1
			}
			pl := make([]byte, n)
			for j := range pl {
				pl[j] = byte(int(seed) + i*37 + j*11)
			}
			payloads[i] = pl
			parity = enc.Add(seqspace.Seq(i), 0, pl)
		}
		missing := int(missRaw) % k
		got, ok := Recover(parity, lookupFrom(payloads, 0, missing))
		return ok && bytes.Equal(got.Payload, payloads[missing]) && got.Seq == uint32(missing)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncoderAdd(b *testing.B) {
	enc := NewEncoder(8)
	payload := make([]byte, 1400)
	b.SetBytes(1400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc.Add(seqspace.Seq(i), 0, payload)
	}
}

func BenchmarkRecover(b *testing.B) {
	enc := NewEncoder(8)
	payloads := make([][]byte, 8)
	var parity *packet.Packet
	for i := range payloads {
		payloads[i] = make([]byte, 1400)
		parity = enc.Add(seqspace.Seq(i), 0, payloads[i])
	}
	lookup := func(seq seqspace.Seq) ([]byte, uint8, bool) {
		if seq == 3 {
			return nil, 0, false
		}
		return payloads[int(seq)], 0, true
	}
	b.SetBytes(8 * 1400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Recover(parity, lookup); !ok {
			b.Fatal("recovery failed")
		}
	}
}
