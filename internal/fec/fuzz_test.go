package fec

import (
	"bytes"
	"testing"

	"repro/internal/packet"
	"repro/internal/seqspace"
)

// FuzzRecover drives Recover with attacker-shaped parity packets:
// arbitrary header fields, truncated or oversized payloads, and
// lookups that disagree with the claimed group. The invariants are
// strict — Recover must never panic, and it must never claim a rebuild
// when the lookup shows no member missing (a false positive would
// inject fabricated bytes into the delivery path).
func FuzzRecover(f *testing.F) {
	f.Add(uint8(8), uint32(100), []byte{0, 10, 1, 2, 3}, uint16(100), uint16(3))
	f.Add(uint8(2), uint32(0), []byte{}, uint16(0), uint16(0))
	f.Add(uint8(64), uint32(1<<31), []byte{0}, uint16(1400), uint16(63))
	f.Add(uint8(200), uint32(7), []byte{0xff, 0xff, 0xff}, uint16(2048), uint16(1))
	f.Fuzz(func(t *testing.T, k uint8, seq uint32, parityPayload []byte, memberLen uint16, missRaw uint16) {
		parity := &packet.Packet{
			Header: packet.Header{
				Type:   packet.TypeFec,
				Seq:    seq,
				Length: uint32(k),
			},
			Payload: parityPayload,
		}
		member := make([]byte, int(memberLen)%2048)
		for i := range member {
			member[i] = byte(i*13 + 7)
		}

		// Every member present: any ok is a false-positive rebuild.
		full := func(seqspace.Seq) ([]byte, uint8, bool) { return member, 0, true }
		if _, ok := Recover(parity, full); ok {
			t.Fatalf("false-positive rebuild with zero missing members (k=%d payload=%d)", k, len(parityPayload))
		}

		// Exactly one member missing against a parity payload the group
		// never produced: must not panic, and any claimed rebuild must
		// at least be internally consistent.
		base := seqspace.Seq(seq)
		kEff := int(k)
		missing := base
		if kEff > 0 {
			missing = base + seqspace.Seq(int(missRaw)%kEff)
		}
		oneGone := func(s seqspace.Seq) ([]byte, uint8, bool) {
			if s == missing {
				return nil, 0, false
			}
			return member, 0, true
		}
		if got, ok := Recover(parity, oneGone); ok {
			if got.Type != packet.TypeData || got.Seq != uint32(missing) {
				t.Fatalf("rebuilt header inconsistent: %+v", got.Header)
			}
			if int(got.Length) != len(got.Payload) {
				t.Fatalf("rebuilt Length %d != payload %d", got.Length, len(got.Payload))
			}
		}

		// Truncating a genuine parity packet below the length prefix
		// must be rejected outright.
		if _, ok := Recover(&packet.Packet{
			Header:  parity.Header,
			Payload: parityPayload[:min(len(parityPayload), lenPrefix-1)],
		}, oneGone); ok {
			t.Fatal("rebuilt from a parity payload shorter than the length prefix")
		}
	})
}

// FuzzRecoverCorruptedGenuine builds a real group, then corrupts its
// parity with fuzz-chosen mutations (header K mismatch, truncation,
// appended nonzero residue) and checks the defences: no panic, no
// rebuild from residue-bearing or truncated parity, and an untouched
// parity still round-trips.
func FuzzRecoverCorruptedGenuine(f *testing.F) {
	f.Add(uint8(3), uint8(1), uint8(0), uint8(0))
	f.Add(uint8(8), uint8(0), uint8(5), uint8(1))
	f.Add(uint8(5), uint8(4), uint8(200), uint8(2))
	f.Fuzz(func(t *testing.T, kRaw, missRaw, wrongK, residue uint8) {
		k := int(kRaw)%7 + 2
		enc := NewEncoder(k)
		payloads := make([][]byte, k)
		var parity *packet.Packet
		for i := 0; i < k; i++ {
			pl := make([]byte, i*17%97+1)
			for j := range pl {
				pl[j] = byte(i*31 + j*5)
			}
			payloads[i] = pl
			parity = enc.Add(seqspace.Seq(i), 0, pl)
		}
		missing := int(missRaw) % k
		lookup := lookupFromBytes(payloads, 0, missing)

		// Baseline: the genuine parity must round-trip.
		got, ok := Recover(parity, lookup)
		if !ok || !bytes.Equal(got.Payload, payloads[missing]) {
			t.Fatal("genuine parity failed to recover")
		}

		// Mismatched Length (claimed K != real K): the XOR of a
		// different member set must not sneak through as a rebuild of
		// the missing payload's bytes.
		if int(wrongK) != k {
			mutant := &packet.Packet{Header: parity.Header, Payload: parity.Payload}
			mutant.Length = uint32(wrongK)
			if got, ok := Recover(mutant, lookup); ok && bytes.Equal(got.Payload, payloads[missing]) && got.Seq == uint32(missing) {
				t.Fatalf("mismatched K=%d produced a rebuild claiming the true payload", wrongK)
			}
		}

		// Truncated parity payload: dropping trailing bytes shrinks the
		// coverage below a member, which must be rejected, not rebuilt.
		if len(parity.Payload) > lenPrefix {
			trunc := &packet.Packet{Header: parity.Header, Payload: parity.Payload[:lenPrefix]}
			if got, ok := Recover(trunc, lookup); ok && len(got.Payload) > 0 {
				t.Fatal("truncated parity produced a non-empty rebuild")
			}
		}

		// Appended nonzero residue: bytes past every member's extent
		// that do not XOR to zero mark an inconsistent group.
		if residue != 0 {
			padded := append(append([]byte(nil), parity.Payload...), residue)
			if _, ok := Recover(&packet.Packet{Header: parity.Header, Payload: padded}, lookup); ok {
				t.Fatal("rebuilt despite nonzero parity residue")
			}
		}
	})
}

// lookupFromBytes mirrors lookupFrom but lives here so the fuzz file
// stands alone if the table tests move.
func lookupFromBytes(payloads [][]byte, base seqspace.Seq, missing int) PayloadLookup {
	return func(seq seqspace.Seq) ([]byte, uint8, bool) {
		i := int(seqspace.Diff(seq, base))
		if i < 0 || i >= len(payloads) || i == missing {
			return nil, 0, false
		}
		return payloads[i], 0, true
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
