package receiver

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/fec"
	"repro/internal/kernel"
	"repro/internal/packet"
	"repro/internal/repair"
	"repro/internal/seqspace"
	"repro/internal/sim"
)

// mkParity runs the payloads for seqs base..base+len-1 through an
// encoder and returns the group's parity packet. flags, when supplied,
// gives each member's header flags — parity protects those alongside
// the payload, so they must match what the receiver will look up.
func mkParity(t *testing.T, base seqspace.Seq, payloads [][]byte, flags ...uint8) *packet.Packet {
	t.Helper()
	enc := fec.NewEncoder(len(payloads))
	var parity *packet.Packet
	for i, pl := range payloads {
		var fl uint8
		if i < len(flags) {
			fl = flags[i]
		}
		parity = enc.Add(base+seqspace.Seq(i), fl, pl)
	}
	if parity == nil {
		t.Fatal("encoder emitted no parity for a full group")
	}
	return parity
}

// TestFecRecoveryCancelsPendingNak is the FEC-first contract: a gap
// repaired by parity inside the defer window never turns into a NAK,
// and the rebuilt bytes flow through delivery bit-exactly.
func TestFecRecoveryCancelsPendingNak(t *testing.T) {
	r := newR(t, func(c *Config) { c.FECGroupSize = 4 })
	payloads := [][]byte{[]byte("aaaa"), []byte("bb"), []byte("cccccc"), []byte("d")}
	for i, pl := range payloads {
		if i == 2 {
			continue // lost
		}
		r.HandlePacket(sim.Time(i)*kernel.Jiffy, data(seqspace.Seq(i), string(pl)))
	}
	if nak := findType(r.Outgoing(), packet.TypeNak); nak != nil {
		t.Fatal("NAK sent inside the FEC defer window")
	}
	r.HandlePacket(4*kernel.Jiffy, mkParity(t, 0, payloads))
	st := r.Stats()
	if st.FecRecovered != 1 {
		t.Fatalf("FecRecovered = %d, want 1", st.FecRecovered)
	}
	// Defer expiry must now find nothing to NAK.
	r.Advance(4 * sim.Second)
	if nak := findType(r.Outgoing(), packet.TypeNak); nak != nil {
		t.Fatalf("NAK sent after parity already repaired the gap: %+v", nak.Header)
	}
	if st.FecFallbackNaks != 0 {
		t.Errorf("FecFallbackNaks = %d, want 0", st.FecFallbackNaks)
	}
	var got bytes.Buffer
	buf := make([]byte, 64)
	for {
		n, err := r.Read(5*sim.Second, buf)
		got.Write(buf[:n])
		if err == io.EOF || n == 0 {
			break
		}
	}
	want := bytes.Join(payloads, nil)
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("delivered %q, want %q", got.Bytes(), want)
	}
}

// TestFecRecoversLostFin is the live-datapath hang regression: the
// zero-length FIN packet is lost and only its group's parity arrives.
// The rebuild must restore FlagFIN — header flags are XOR-protected
// alongside the payload — or the receiver delivers every byte yet
// never reports end-of-stream, wedging the application read forever.
func TestFecRecoversLostFin(t *testing.T) {
	r := newR(t, func(c *Config) { c.FECGroupSize = 4 })
	payloads := [][]byte{[]byte("aaaa"), []byte("bb"), []byte("cccccc"), nil}
	flags := []uint8{0, 0, 0, packet.FlagFIN}
	for i, pl := range payloads {
		if i == 3 {
			continue // the FIN itself is lost
		}
		r.HandlePacket(sim.Time(i)*kernel.Jiffy, data(seqspace.Seq(i), string(pl)))
	}
	r.HandlePacket(4*kernel.Jiffy, mkParity(t, 0, payloads, flags...))
	st := r.Stats()
	if st.FecRecovered != 1 {
		t.Fatalf("FecRecovered = %d, want 1", st.FecRecovered)
	}
	var got bytes.Buffer
	buf := make([]byte, 64)
	for {
		n, err := r.Read(5*kernel.Jiffy, buf)
		got.Write(buf[:n])
		if err == io.EOF {
			break
		}
		if n == 0 {
			t.Fatal("Read stalled without EOF: rebuilt FIN lost its flag")
		}
	}
	if want := bytes.Join(payloads, nil); !bytes.Equal(got.Bytes(), want) {
		t.Errorf("delivered %q, want %q", got.Bytes(), want)
	}
	if !r.FinDelivered() {
		t.Error("FinDelivered false after EOF")
	}
}

// TestFecFallbackNakWhenParityLost: the selective-NAK fallback. With
// no parity arriving, the deferred first NAK goes out once the defer
// window expires and is counted as a fallback.
func TestFecFallbackNakWhenParityLost(t *testing.T) {
	r := newR(t, func(c *Config) { c.FECGroupSize = 4 })
	r.HandlePacket(0, data(0, "aa"))
	r.Outgoing()
	r.HandlePacket(kernel.Jiffy, data(2, "cc")) // seq 1 lost
	if nak := findType(r.Outgoing(), packet.TypeNak); nak != nil {
		t.Fatal("first NAK not deferred under FEC")
	}
	r.Advance(sim.Second)
	nak := findType(r.Outgoing(), packet.TypeNak)
	if nak == nil {
		t.Fatal("no fallback NAK after the defer window expired")
	}
	if nak.Seq != 1 || nak.Length != 1 {
		t.Errorf("fallback NAK covers %d+%d, want 1+1", nak.Seq, nak.Length)
	}
	st := r.Stats()
	if st.FecFallbackNaks != 1 {
		t.Errorf("FecFallbackNaks = %d, want 1", st.FecFallbackNaks)
	}
	if st.FecParityWasted != 0 {
		t.Errorf("FecParityWasted = %d, want 0", st.FecParityWasted)
	}
}

// TestFecDoubleLossExpeditesNak: when a group's parity arrives but two
// members are missing, reconstruction is provably impossible — the
// receiver must stop deferring and NAK at once rather than ride out the
// rest of the defer window, and the NAKs still count as fallbacks.
func TestFecDoubleLossExpeditesNak(t *testing.T) {
	r := newR(t, func(c *Config) { c.FECGroupSize = 4 })
	payloads := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc"), []byte("dd")}
	for i, pl := range payloads {
		if i == 1 || i == 2 {
			continue // both lost: parity cannot help
		}
		r.HandlePacket(sim.Time(i)*kernel.Jiffy, data(seqspace.Seq(i), string(pl)))
	}
	if nak := findType(r.Outgoing(), packet.TypeNak); nak != nil {
		t.Fatal("NAK sent inside the FEC defer window")
	}
	// Parity arrives well before the defer window (2×NakRetryInterval
	// from detection) would expire.
	r.HandlePacket(4*kernel.Jiffy, mkParity(t, 0, payloads))
	nak := findType(r.Outgoing(), packet.TypeNak)
	if nak == nil {
		t.Fatal("unrepairable group's parity did not expedite the deferred NAK")
	}
	if nak.Seq != 1 || nak.Length != 2 {
		t.Errorf("expedited NAK covers %d+%d, want 1+2", nak.Seq, nak.Length)
	}
	st := r.Stats()
	if st.FecFallbackNaks != 2 {
		t.Errorf("FecFallbackNaks = %d, want 2", st.FecFallbackNaks)
	}
	if st.FecParityWasted != 1 {
		t.Errorf("FecParityWasted = %d, want 1", st.FecParityWasted)
	}
	if st.FecRecovered != 0 {
		t.Errorf("FecRecovered = %d, want 0", st.FecRecovered)
	}
}

// TestFecWastedParityCounted: parity over a complete group repairs
// nothing and is counted as wasted.
func TestFecWastedParityCounted(t *testing.T) {
	r := newR(t, func(c *Config) { c.FECGroupSize = 2 })
	payloads := [][]byte{[]byte("xx"), []byte("yy")}
	r.HandlePacket(0, data(0, "xx"))
	r.HandlePacket(kernel.Jiffy, data(1, "yy"))
	r.HandlePacket(2*kernel.Jiffy, mkParity(t, 0, payloads))
	st := r.Stats()
	if st.FecParityWasted != 1 {
		t.Errorf("FecParityWasted = %d, want 1", st.FecParityWasted)
	}
	if st.FecRecovered != 0 {
		t.Errorf("FecRecovered = %d, want 0", st.FecRecovered)
	}
}

// TestFecLeafRecoverySuppressesHeadNak: FEC × hierarchy. A leaf that
// parity-recovers a gap must not escalate a HEAD_NAK to its repair
// head once the defer window expires.
func TestFecLeafRecoverySuppressesHeadNak(t *testing.T) {
	r := newR(t, func(c *Config) {
		c.RepairHead = testHead
		c.FECGroupSize = 4
	})
	payloads := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc"), []byte("dd")}
	for i, pl := range payloads {
		if i == 1 {
			continue // lost
		}
		r.HandlePacket(sim.Time(i)*kernel.Jiffy, data(seqspace.Seq(i), string(pl)))
	}
	r.OutgoingAddressed()
	r.HandlePacket(4*kernel.Jiffy, mkParity(t, 0, payloads))
	if r.Stats().FecRecovered != 1 {
		t.Fatalf("FecRecovered = %d, want 1", r.Stats().FecRecovered)
	}
	// Let every defer and retry window expire; nothing may reach the head.
	for now := 5 * kernel.Jiffy; now < 2*sim.Second; now += kernel.Jiffy {
		r.Advance(now)
		for _, a := range r.OutgoingAddressed() {
			if a.Pkt.Type == packet.TypeHeadNak {
				t.Fatalf("leaf escalated HEAD_NAK %d+%d despite local recovery", a.Pkt.Seq, a.Pkt.Length)
			}
		}
	}
}

// TestFecLeafFallbackEscalatesHeadNak: the complement — when no parity
// saves the gap, the deferred request must still reach the head.
func TestFecLeafFallbackEscalatesHeadNak(t *testing.T) {
	r := newR(t, func(c *Config) {
		c.RepairHead = testHead
		c.FECGroupSize = 4
	})
	r.HandlePacket(0, data(0, "aa"))
	r.HandlePacket(kernel.Jiffy, data(2, "cc"))
	r.OutgoingAddressed()
	sawHeadNak := false
	for now := 2 * kernel.Jiffy; now < 2*sim.Second && !sawHeadNak; now += kernel.Jiffy {
		r.Advance(now)
		for _, a := range r.OutgoingAddressed() {
			if a.To == testHead && a.Pkt.Type == packet.TypeHeadNak {
				sawHeadNak = true
			}
		}
	}
	if !sawHeadNak {
		t.Fatal("no HEAD_NAK after the FEC defer expired unrepaired")
	}
	if r.Stats().FecFallbackNaks != 1 {
		t.Errorf("FecFallbackNaks = %d, want 1", r.Stats().FecFallbackNaks)
	}
}

// TestFecHeadWindowConsistentUnderRecoveryRace: FEC × hierarchy. A
// head that parity-recovers a loss and then hears the sender's
// retransmission of the same packet must keep serving the original
// bytes to downstream HEAD_NAKs.
func TestFecHeadWindowConsistentUnderRecoveryRace(t *testing.T) {
	const member = packet.NodeID(7)
	r := newR(t, func(c *Config) {
		c.Head = &repair.Config{}
		c.FECGroupSize = 4
	})
	payloads := [][]byte{[]byte("head-a"), []byte("head-b"), []byte("head-c"), []byte("head-d")}
	for i, pl := range payloads {
		if i == 2 {
			continue // lost on the head's own uplink
		}
		r.HandlePacket(sim.Time(i)*kernel.Jiffy, data(seqspace.Seq(i), string(pl)))
	}
	r.HandlePacket(4*kernel.Jiffy, mkParity(t, 0, payloads))
	if r.Stats().FecRecovered != 1 {
		t.Fatalf("head FecRecovered = %d, want 1", r.Stats().FecRecovered)
	}
	// The sender's retransmission races in after local recovery: a
	// duplicate now, which must not disturb the retained copy.
	retrans := data(2, string(payloads[2]))
	retrans.Tries = 1
	r.HandlePacket(5*kernel.Jiffy, retrans)
	if r.Stats().Duplicates != 1 {
		t.Fatalf("retransmission after recovery not counted as duplicate")
	}
	if src, ok := r.Head().Retained(2); !ok {
		t.Fatal("head retained window lost the recovered packet")
	} else if !bytes.Equal(src.Payload, payloads[2]) {
		t.Fatalf("head retained %q for seq 2, want %q", src.Payload, payloads[2])
	}
	// A downstream HEAD_NAK for the recovered sequence must be answered
	// from the retained window with the original bytes, not escalated.
	r.HandleFrom(6*kernel.Jiffy, member, &packet.Packet{Header: packet.Header{
		Type: packet.TypeHeadNak, Seq: 2, Length: 1, RateAdv: 2,
	}})
	answered := false
	for _, p := range r.OutgoingMulticast() {
		if p.Type == packet.TypeData && p.Seq == 2 {
			answered = true
			if !bytes.Equal(p.Payload, payloads[2]) {
				t.Fatalf("head repair carries %q, want %q", p.Payload, payloads[2])
			}
		}
	}
	if !answered {
		t.Fatal("head did not answer the HEAD_NAK from its retained window")
	}
	if r.Stats().HeadNaksAnswered != 1 {
		t.Errorf("HeadNaksAnswered = %d, want 1", r.Stats().HeadNaksAnswered)
	}
	if nak := findType(r.Outgoing(), packet.TypeNak); nak != nil {
		t.Fatalf("head escalated a NAK it could answer locally: %+v", nak.Header)
	}
}

// pooledData builds a pool-owned data packet the way the session's
// receive loop would hand one to the machine.
func pooledData(seq seqspace.Seq, payload []byte, fin bool) *packet.Packet {
	p := packet.GetBuf(len(payload))
	p.Header = packet.Header{
		Type:    packet.TypeData,
		Seq:     uint32(seq),
		Length:  uint32(len(payload)),
		RateAdv: 100000,
	}
	if fin {
		p.Flags = packet.FlagFIN
	}
	p.Payload = append(p.Payload[:0], payload...)
	return p
}

// TestFecCachePoolBalance proves the tentpole's ownership contract:
// with recycling ON and FEC on, every pooled packet — window-held,
// cache-held, and parity-rebuilt — returns to the pool once the stream
// is delivered and the machine is torn down.
func TestFecCachePoolBalance(t *testing.T) {
	before := packet.PoolStats()
	r := newR(t, func(c *Config) {
		c.FECGroupSize = 4
		c.RecyclePackets = true
	})
	const groups = 8
	var want bytes.Buffer
	now := sim.Time(0)
	feed := func(p *packet.Packet) {
		retained, err := r.HandleEnvelope(now, p)
		if err != nil {
			t.Fatalf("HandleEnvelope: %v", err)
		}
		if !retained {
			packet.Put(p)
		}
		now += kernel.Jiffy
	}
	seq := seqspace.Seq(0)
	for g := 0; g < groups; g++ {
		payloads := make([][]byte, 4)
		for i := range payloads {
			payloads[i] = bytes.Repeat([]byte{byte(g*4 + i)}, 50+i)
			want.Write(payloads[i])
		}
		lost := (g*7 + 1) % 4 // rotate the lost position; every group loses one
		fin := g == groups-1
		for i, pl := range payloads {
			if i == lost {
				continue
			}
			feed(pooledData(seq+seqspace.Seq(i), pl, fin && i == 3))
		}
		gflags := make([]uint8, 4)
		if fin {
			gflags[3] = packet.FlagFIN
		}
		feed(mkParity(t, seq, payloads, gflags...))
		if fin && lost == 3 {
			t.Fatal("test bug: FIN packet chosen as the lost one")
		}
		seq += 4
	}
	st := r.Stats()
	if st.FecRecovered != groups {
		t.Fatalf("FecRecovered = %d, want %d", st.FecRecovered, groups)
	}
	var got bytes.Buffer
	buf := make([]byte, 256)
	for {
		n, err := r.Read(now, buf)
		got.Write(buf[:n])
		if err == io.EOF {
			break
		}
		if n == 0 {
			t.Fatal("Read stalled before EOF")
		}
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("delivered %d bytes, want %d (content mismatch: %v)",
			got.Len(), want.Len(), !bytes.Equal(got.Bytes(), want.Bytes()))
	}
	r.ReleaseBuffers()
	after := packet.PoolStats()
	gets, puts := after.Gets-before.Gets, after.Puts-before.Puts
	if gets != puts {
		t.Fatalf("pool imbalance under FEC recycling: gets +%d, puts +%d (leaked %d)",
			gets, puts, gets-puts)
	}
}
