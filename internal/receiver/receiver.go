// Package receiver implements the H-RMC receiver of Figure 9 as a
// sans-I/O state machine: the Main Packet Processor (reassembly, gap
// detection, rate requests), the NAK Manager with local NAK suppression,
// the Update Generator with its dynamic period, and the Application
// Interface.
//
// The machine is driven from outside: the owner feeds packets with
// HandlePacket, advances timers with Advance, reads the stream with Read,
// and drains queued feedback packets with Outgoing. All feedback is
// unicast to the sender. The same code runs under the discrete-event
// simulator and the live UDP transport.
//
// Wire-field conventions (see the packet package): UPDATE, CONTROL and
// JOIN carry the receiver's next expected sequence number (rcv_nxt) in
// the Seq field. NAK carries the first missing sequence number in Seq,
// the count of consecutive missing packets in Length, and — because the
// rate-advertisement field is meaningless from receiver to sender — the
// receiver's rcv_nxt in RateAdv, so every feedback packet updates the
// sender's membership state as Section 3 of the paper requires.
package receiver

import (
	"errors"
	"io"

	"repro/internal/fec"
	"repro/internal/kernel"
	"repro/internal/packet"
	"repro/internal/repair"
	"repro/internal/seqspace"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/window"
)

// Mode selects the protocol variant.
type Mode int

const (
	// HRMC is the full hybrid protocol: periodic updates and probe
	// responses.
	HRMC Mode = iota
	// RMC is the original pure NAK-based protocol: no updates, probes
	// are ignored.
	RMC
)

func (m Mode) String() string {
	if m == RMC {
		return "RMC"
	}
	return "H-RMC"
}

// Config parametrizes a receiver.
type Config struct {
	// LocalAddr identifies this receiver; the sender keeps it as the
	// member's unicast address.
	LocalAddr packet.NodeID
	// LocalPort and RemotePort fill the port fields of feedback packets.
	LocalPort, RemotePort uint16
	// RcvBuf is the per-socket kernel receive buffer in bytes; the
	// receive window holds RcvBuf/(MSS+header) packets.
	RcvBuf int
	// MSS is the data payload size per packet.
	MSS int
	// Mode selects H-RMC or the RMC baseline.
	Mode Mode
	// InitialSeq is the first sequence number of the stream, agreed at
	// session setup (the simulator and the live transport both configure
	// it on all parties).
	InitialSeq seqspace.Seq

	// InitialUpdatePeriod is the Update Generator's starting period; the
	// paper uses 50 jiffies (0.5 s).
	InitialUpdatePeriod sim.Time
	// MinUpdatePeriod and MaxUpdatePeriod bound the dynamic adjustment.
	MinUpdatePeriod, MaxUpdatePeriod sim.Time
	// NakRetryInterval is the NAK Manager's base resend interval for
	// pending NAKs (local NAK suppression window); retries back off
	// linearly with the try count.
	NakRetryInterval sim.Time
	// AssumedRTT seeds the round-trip estimate used by the WARNBUF rule
	// and urgent-request throttling until the JOIN exchange measures one.
	AssumedRTT sim.Time
	// WarnBuf is the number of round-trip times of sending the warning
	// rule looks ahead; the paper sets 4.
	WarnBuf int

	// LocalRecovery enables the local-recovery extension (Section 7,
	// item 3): NAKs are multicast to the whole group with SRM-style
	// suppression, and receivers holding the requested data answer with
	// multicast repairs after a randomized delay, offloading
	// retransmission work from the sender.
	LocalRecovery bool
	// RecoverySeed seeds the randomized repair/suppression timers;
	// zero derives one from LocalAddr.
	RecoverySeed uint64

	// FECGroupSize mirrors the sender's FEC extension setting. When
	// positive, the first NAK for a fresh gap is deferred long enough
	// for the group's parity packet to arrive and repair single losses
	// locally, so FEC actually removes NAK round trips instead of merely
	// racing them.
	FECGroupSize int

	// RecyclePackets makes the receiver return retained data packets to
	// the shared pool (packet.Put) once the application consumes them —
	// the zero-copy hold-until-release path. Enable only when every
	// packet fed to HandlePacket/HandleEnvelope is pool-owned (the
	// session's batched receive loop guarantees this). The FEC/local-
	// recovery group cache holds its own pool references, so recycling
	// stays on under FEC.
	RecyclePackets bool

	// Head makes this receiver a repair head (hierarchical recovery
	// extension): it tracks downstream members, answers their HEAD_NAKs
	// from a retained window, and reports one aggregated UPDATE to the
	// sender instead of per-member feedback. Head mode implies HRMC and
	// disables local recovery (the repair tier subsumes it).
	Head *repair.Config
	// RepairHead, when nonzero, makes this receiver a downstream member
	// (leaf) of the given repair head: JOIN/UPDATE/LEAVE feedback and
	// retransmission requests (as HEAD_NAK) are addressed to the head
	// instead of the sender. Flow-control CONTROL packets still go to
	// the sender — rate control stays end-to-end. Ignored when Head is
	// set (a head reports straight to the sender).
	RepairHead packet.NodeID
	// HeadNakRetryBudget (leaf mode) is how many NAK retries one missing
	// packet may burn, unanswered by any head traffic, before the leaf
	// declares the head dead and fails over to flat mode. Zero means
	// DefaultHeadNakRetryBudget; negative disables the budget.
	HeadNakRetryBudget int
	// HeadSilenceTimeout (leaf mode) declares the head dead when a
	// response-expecting request (JOIN, HEAD_NAK, LEAVE) has been
	// outstanding this long with no traffic from the head at all. Zero
	// means DefaultHeadSilenceTimeout; negative disables the timer.
	HeadSilenceTimeout sim.Time
	// ReadoptHead re-attaches a failed-over leaf to its configured head
	// when the head's traffic reappears (a restarted head).
	ReadoptHead bool
	// JoinInProgress admits this receiver to a stream already flowing:
	// instead of NAKing the whole history back to InitialSeq, the
	// receive window is rebased to the first position the receiver can
	// anchor to (the first data packet seen, or one past a
	// PROBE/KEEPALIVE sequence number) and delivery starts there. Used
	// by restarted repair heads and late (flash-crowd) joiners.
	JoinInProgress bool

	// Stats receives counters; nil allocates a private set.
	Stats *stats.Receiver
	// Trace receives protocol events; nil disables tracing.
	Trace trace.Sink
}

func (c *Config) sanitize() {
	if c.MSS <= 0 {
		c.MSS = 1400
	}
	if c.RcvBuf <= 0 {
		c.RcvBuf = 64 << 10
	}
	if c.InitialUpdatePeriod <= 0 {
		c.InitialUpdatePeriod = 50 * kernel.Jiffy
	}
	if c.MinUpdatePeriod <= 0 {
		c.MinUpdatePeriod = kernel.Jiffy
	}
	if c.MaxUpdatePeriod <= 0 {
		c.MaxUpdatePeriod = 500 * kernel.Jiffy
	}
	if c.NakRetryInterval <= 0 {
		c.NakRetryInterval = 4 * kernel.Jiffy
	}
	if c.AssumedRTT < 2*kernel.Jiffy {
		c.AssumedRTT = 2 * kernel.Jiffy // jiffy-clock measurement floor
	}
	if c.WarnBuf <= 0 {
		c.WarnBuf = 4
	}
	if c.Head != nil {
		// The repair tier subsumes peer-based local recovery, and a head
		// reports straight to the sender.
		c.LocalRecovery = false
		c.RepairHead = 0
	}
	if c.RepairHead != 0 {
		c.LocalRecovery = false
	}
	if c.HeadNakRetryBudget == 0 {
		c.HeadNakRetryBudget = DefaultHeadNakRetryBudget
	}
	if c.HeadSilenceTimeout == 0 {
		c.HeadSilenceTimeout = DefaultHeadSilenceTimeout
	}
	if c.Stats == nil {
		c.Stats = &stats.Receiver{}
	}
}

// Leaf-failover defaults for Config fields left zero. The silence
// timeout must stay well below the sender's own head-eviction timeout
// so stranded leaves re-home (and re-gate releases) before the sender
// forgets their evicted head.
const (
	DefaultHeadNakRetryBudget = 6
	DefaultHeadSilenceTimeout = 2 * sim.Second
)

// nakEntry tracks one pending missing packet for the NAK Manager.
type nakEntry struct {
	lastSent sim.Time
	tries    int
	// detected is when the gap first appeared, for the GapFilled
	// recovery-latency trace event.
	detected sim.Time
	// deferUntil suppresses the first NAK until the given time (FEC
	// extension: give the parity packet a chance to repair the gap).
	deferUntil sim.Time
	// direct routes this entry's NAKs straight to the sender even while
	// attached to a repair head — set when the head declined the range
	// (HEAD_DECLINE): re-asking the head cannot help.
	direct bool
}

// Receiver is the H-RMC receiver state machine. Not safe for concurrent
// use; drivers serialize access.
type Receiver struct {
	cfg Config
	wnd *window.ReceiveWindow
	st  *stats.Receiver

	out kernel.Queue // queued feedback packets (all unicast to sender)

	// NAK Manager state: one entry per missing sequence number.
	pending  map[seqspace.Seq]*nakEntry
	nakTimer kernel.Timer

	// Update Generator state.
	updateTimer   kernel.Timer
	updatePeriod  sim.Time
	probesInPer   int  // probes received during the current period
	feedbackInPer bool // other reverse traffic sent during the period

	// JOIN handshake. The JOIN is retried until JOIN_RESPONSE arrives:
	// membership is load-bearing in H-RMC (the sender holds releases for
	// expected receivers), so the handshake must survive loss.
	joined        bool // JOIN sent at least once
	joinTime      sim.Time
	joinTimer     kernel.Timer
	joinAmbiguous bool // JOIN was retransmitted: RTT sample is unusable
	joinAcked     bool
	rttEstimate   sim.Time
	lastControl   sim.Time // throttle for warning rate requests
	lastUrgent    sim.Time // throttle for urgent rate requests
	seenAnyData   bool
	finDelivered  bool
	leaveSent     bool
	leaveAcked    bool

	advRate uint32 // last rate advertisement heard from the sender

	// fecCache retains recently received packets so parity can repair a
	// loss even after earlier group members were consumed by the
	// application (bounded to a few FEC groups; the kernel analogue is
	// holding a handful of sk_buffs past delivery). When fecPooled, the
	// cache holds its own pool reference per entry (Retain on insert,
	// Put on prune), which is what lets receive-window recycling stay on
	// under FEC; otherwise entries are plain aliases and nothing
	// recycles them.
	fecCache  map[seqspace.Seq]*packet.Packet
	fecPooled bool
	// fdec reuses one XOR scratch buffer across parity recoveries.
	fdec fec.Decoder

	// Local-recovery state.
	outMC         kernel.Queue // multicast feedback/repairs
	repairPending map[seqspace.Seq]sim.Time
	repairTimer   kernel.Timer
	rng           *sim.RNG

	// Repair tier (hierarchical recovery extension): head is the repair-
	// head state machine when this receiver serves a subtree; outAddr
	// queues repair-plane unicast packets (leaf→head feedback, head→leaf
	// responses) with explicit destinations.
	head    *repair.Head
	outAddr []Addressed

	// Repair-head failover state (leaf mode). headDown is set when the
	// configured head has been declared dead and the leaf has degraded
	// to flat mode; headWaitSince is when the oldest still-unanswered
	// head-bound request went out (zero = nothing outstanding) — the
	// head-silence clock.
	headDown      bool
	headWaitSince sim.Time
	// rebased records the JoinInProgress anchor point (mid-stream join).
	rebased   bool
	rebasedTo seqspace.Seq
	// drainStart is when a departing head began waiting for its subtree
	// to drain (deferred LEAVE); bounded by the head's LeaveDrainTimeout.
	drainStart sim.Time
	// dead marks sequence numbers the sender refused with NAK_ERR:
	// released end-to-end, unrecoverable. The NAK manager stops asking;
	// the hole stays visible as a stream that never advances past it.
	dead map[seqspace.Seq]bool
}

// Addressed is one outgoing packet with an explicit unicast destination
// on the repair plane (leaf↔head traffic, which the flat feedback path —
// everything unicast to the sender — cannot express).
type Addressed struct {
	Pkt *packet.Packet
	To  packet.NodeID
}

// ErrNotData is returned by HandlePacket for sender-bound packet types.
var ErrNotData = errors.New("receiver: packet type is sender-bound")

// New creates a receiver. The update timer starts armed so that a
// receiver in a silent group still reports state.
func New(cfg Config) *Receiver {
	cfg.sanitize()
	wndPackets := uint32(cfg.RcvBuf / (cfg.MSS + packet.HeaderSize))
	if wndPackets == 0 {
		wndPackets = 1
	}
	r := &Receiver{
		cfg:          cfg,
		wnd:          window.NewReceiveWindow(wndPackets, cfg.InitialSeq),
		st:           cfg.Stats,
		pending:      make(map[seqspace.Seq]*nakEntry),
		updatePeriod: cfg.InitialUpdatePeriod,
		rttEstimate:  cfg.AssumedRTT,
	}
	if cfg.Mode == HRMC && cfg.Head == nil {
		// A repair head replaces the per-receiver Update Generator with
		// the aggregate timer inside the head machine.
		r.updateTimer.Arm(sim.Time(cfg.InitialUpdatePeriod))
	}
	if cfg.FECGroupSize > 0 || cfg.LocalRecovery {
		r.fecCache = make(map[seqspace.Seq]*packet.Packet)
		r.fecPooled = cfg.RecyclePackets
	}
	if cfg.RecyclePackets {
		r.wnd.SetRecycle(true)
	}
	if cfg.Head != nil {
		hc := *cfg.Head
		// The head's retained window must outlast the receive window so
		// an evicted packet is always one the application (and hence the
		// subtree front, which the aggregate clamps releases to) is past.
		if hc.WindowPackets < 2*int(wndPackets) {
			hc.WindowPackets = 2 * int(wndPackets)
		}
		r.head = repair.NewHead(0, hc, cfg.RecyclePackets, r.st)
	}
	if cfg.LocalRecovery {
		seed := cfg.RecoverySeed
		if seed == 0 {
			seed = uint64(cfg.LocalAddr) + 0x10CA1
		}
		r.rng = sim.NewRNG(seed)
		r.repairPending = make(map[seqspace.Seq]sim.Time)
	}
	return r
}

// Stats returns the receiver's counters.
func (r *Receiver) Stats() *stats.Receiver { return r.st }

// WindowSize returns the receive window size in packets.
func (r *Receiver) WindowSize() uint32 { return r.wnd.Size() }

// UpdatePeriod returns the Update Generator's current period.
func (r *Receiver) UpdatePeriod() sim.Time { return r.updatePeriod }

// RTT returns the receiver's current round-trip estimate.
func (r *Receiver) RTT() sim.Time { return r.rttEstimate }

// NextExpected returns rcv_nxt.
func (r *Receiver) NextExpected() seqspace.Seq { return r.wnd.Next() }

// Done reports whether the stream has been fully delivered to the
// application and the LEAVE handshake has completed.
func (r *Receiver) Done() bool { return r.finDelivered && r.leaveAcked }

// FinDelivered reports whether the application has consumed the whole
// stream.
func (r *Receiver) FinDelivered() bool { return r.finDelivered }

// Outgoing drains the queued feedback packets, in order. Every packet is
// destined for the sender's unicast address.
func (r *Receiver) Outgoing() []*packet.Packet { return r.out.Drain() }

// OutgoingMulticast drains packets destined for the whole group
// (multicast NAKs and repairs under the local-recovery extension, and a
// head's repairs into its subtree).
func (r *Receiver) OutgoingMulticast() []*packet.Packet { return r.outMC.Drain() }

// OutgoingAddressed drains repair-plane unicast packets, each with its
// explicit destination (leaf→head feedback, head→leaf responses).
func (r *Receiver) OutgoingAddressed() []Addressed {
	out := r.outAddr
	r.outAddr = nil
	return out
}

// HasOutgoing reports whether feedback is queued.
func (r *Receiver) HasOutgoing() bool {
	return r.out.Len() > 0 || r.outMC.Len() > 0 || len(r.outAddr) > 0
}

// reportedNext is the next-expected sequence number this receiver
// reports upstream. A repair head speaks for its subtree: every packet
// that updates the sender's membership state carries the aggregate
// minimum, never the head's own frontier — otherwise the sender could
// release data a downstream member still needs.
func (r *Receiver) reportedNext() seqspace.Seq {
	if r.head != nil {
		return r.head.ClampNext(r.wnd.Next())
	}
	return r.wnd.Next()
}

// leafHead returns the repair head this receiver currently addresses:
// the configured head in leaf mode, or zero once the leaf has failed
// over to flat mode (or was never a leaf).
func (r *Receiver) leafHead() packet.NodeID {
	if r.headDown {
		return 0
	}
	return r.cfg.RepairHead
}

// noteHeadWait starts the head-silence clock when a response-expecting
// packet goes to the head and nothing is already outstanding. Zero
// means "no request outstanding", so a request at exactly t=0 is
// recorded one tick late rather than not at all.
func (r *Receiver) noteHeadWait(now sim.Time) {
	if r.leafHead() != 0 && r.headWaitSince == 0 {
		if now == 0 {
			now = 1
		}
		r.headWaitSince = now
	}
}

// onHeadTraffic feeds the head-liveness tracker: any packet from the
// configured head proves it alive.
func (r *Receiver) onHeadTraffic(now sim.Time) {
	if r.headDown {
		if r.cfg.ReadoptHead {
			r.readoptHead(now)
		}
		return
	}
	r.headWaitSince = 0
}

// emitNak routes a retransmission request: to the repair head as a
// HEAD_NAK in leaf mode (unless the entry was re-homed by a decline —
// direct), multicast under local recovery (so peers can repair and
// suppress), unicast to the sender otherwise.
func (r *Receiver) emitNak(now sim.Time, p *packet.Packet, direct bool) {
	if h := r.leafHead(); h != 0 && !direct {
		p.Type = packet.TypeHeadNak
		r.emitTo(p, h)
		r.noteHeadWait(now)
		return
	}
	if r.cfg.LocalRecovery {
		p.SrcPort = r.cfg.LocalPort
		p.DstPort = r.cfg.RemotePort
		r.outMC.Push(p)
		return
	}
	r.emit(p)
}

func (r *Receiver) emit(p *packet.Packet) {
	if h := r.leafHead(); h != 0 {
		// Leaf mode: membership feedback belongs to the repair head, not
		// the sender. CONTROL (rate requests) and everything else stays
		// end-to-end.
		switch p.Type {
		case packet.TypeJoin, packet.TypeUpdate, packet.TypeLeave:
			r.emitTo(p, h)
			return
		}
	}
	p.SrcPort = r.cfg.LocalPort
	p.DstPort = r.cfg.RemotePort
	r.out.Push(p)
}

// emitTo queues a repair-plane unicast packet. Both ends of the repair
// plane listen on the group's receiver port, so DstPort is LocalPort —
// not the sender's port.
func (r *Receiver) emitTo(p *packet.Packet, to packet.NodeID) {
	p.SrcPort = r.cfg.LocalPort
	p.DstPort = r.cfg.LocalPort
	r.outAddr = append(r.outAddr, Addressed{Pkt: p, To: to})
}

// HandlePacket processes one packet from the sender. It corresponds to
// hrmc_master_rcv on the receive path.
func (r *Receiver) HandlePacket(now sim.Time, p *packet.Packet) error {
	_, err := r.HandleEnvelope(now, p)
	return err
}

// HandleEnvelope is HandlePacket for pool-owned packets: it
// additionally reports whether the machine retained p (stored it in
// the receive window, to be released when the application consumes
// it). When retained is false the caller still owns p and should
// release it (packet.Put); when true, ownership transferred to the
// machine. Callers that know the source address use HandleFrom instead
// so a repair head can attribute member feedback.
func (r *Receiver) HandleEnvelope(now sim.Time, p *packet.Packet) (retained bool, err error) {
	return r.HandleFrom(now, 0, p)
}

// HandleFrom is HandleEnvelope with the source's unicast address, which
// a repair head needs to attribute downstream feedback (JOIN, UPDATE,
// LEAVE, HEAD_NAK). from may be zero when unknown; member feedback is
// then rejected.
func (r *Receiver) HandleFrom(now sim.Time, from packet.NodeID, p *packet.Packet) (retained bool, err error) {
	if r.cfg.RepairHead != 0 && from != 0 && from == r.cfg.RepairHead {
		r.onHeadTraffic(now)
	}
	// An unconfigured RemotePort is learned from the sender's source
	// port, the way a connected socket learns its peer — only from
	// sender-originated types, so a peer's multicast NAK (local
	// recovery) can never hijack the feedback address. In leaf mode the
	// JOIN/LEAVE responses come from the repair head, not the sender,
	// so they are excluded there (until a failover re-homes the
	// handshake to the sender).
	if r.cfg.RemotePort == 0 && p.SrcPort != 0 {
		switch p.Type {
		case packet.TypeData, packet.TypeKeepalive, packet.TypeProbe,
			packet.TypeFec, packet.TypeNakErr:
			r.cfg.RemotePort = p.SrcPort
		case packet.TypeJoinResponse, packet.TypeLeaveResponse:
			if r.leafHead() == 0 {
				r.cfg.RemotePort = p.SrcPort
			}
		}
	}
	switch p.Type {
	case packet.TypeData:
		retained = r.onData(now, p)
	case packet.TypeKeepalive:
		r.onKeepalive(now, p)
	case packet.TypeProbe:
		r.onProbe(now, p)
	case packet.TypeJoinResponse:
		r.onJoinResponse(now, from)
	case packet.TypeLeaveResponse:
		// Only a LEAVE this receiver actually has in flight can be acked;
		// responses to the auxiliary LEAVEs a re-adoption sends (retiring
		// a direct sender membership) must not complete the handshake.
		if r.leaveSent {
			r.leaveAcked = true
		}
	case packet.TypeNak:
		if !r.cfg.LocalRecovery {
			return false, ErrNotData
		}
		r.onPeerNak(now, p)
	case packet.TypeFec:
		// Recovery copies the parity payload (fec.Recover builds a fresh
		// rebuilt packet), so the parity packet itself is never retained.
		r.onFec(now, p)
	case packet.TypeNakErr:
		r.onNakErr(now, p)
	case packet.TypeHeadDecline:
		r.onHeadDecline(now, from, p)
	case packet.TypeJoin:
		if r.head == nil || from == 0 {
			return false, ErrNotData
		}
		r.onMemberJoin(now, from, p)
	case packet.TypeUpdate:
		if r.head == nil || from == 0 {
			return false, ErrNotData
		}
		r.head.Update(now, from, seqspace.Seq(p.Seq))
	case packet.TypeLeave:
		if r.head == nil || from == 0 {
			return false, ErrNotData
		}
		r.onMemberLeave(now, from, p)
	case packet.TypeHeadNak:
		if r.head == nil || from == 0 {
			return false, ErrNotData
		}
		r.onHeadNak(now, from, p)
	default:
		return false, ErrNotData
	}
	return retained, nil
}

// onMemberJoin registers a downstream member (head mode) and answers
// with the same JOIN_RESPONSE handshake the sender gives heads, so the
// leaf's JOIN retry loop and RTT estimate work unchanged.
func (r *Receiver) onMemberJoin(now sim.Time, from packet.NodeID, p *packet.Packet) {
	r.head.Join(now, from, seqspace.Seq(p.Seq))
	r.emitTo(&packet.Packet{Header: packet.Header{
		Type: packet.TypeJoinResponse,
		Seq:  p.Seq,
	}}, from)
}

// onMemberLeave removes a downstream member (head mode) and confirms
// with LEAVE_RESPONSE.
func (r *Receiver) onMemberLeave(now sim.Time, from packet.NodeID, p *packet.Packet) {
	r.head.Update(now, from, seqspace.Seq(p.Seq))
	r.head.Leave(from)
	r.emitTo(&packet.Packet{Header: packet.Header{
		Type: packet.TypeLeaveResponse,
		Seq:  p.Seq,
	}}, from)
	r.maybeLeave(now)
}

// onHeadNak services a downstream retransmission request (head mode):
// each requested sequence number is answered from the head's retained
// window (or the receive window) with a multicast repair into the
// subtree, suppressed if the same number was served within the
// suppression interval, or escalated to the sender as an ordinary NAK
// when the head does not hold the data either.
func (r *Receiver) onHeadNak(now sim.Time, from packet.NodeID, p *packet.Packet) {
	r.st.HeadNaksReceived++
	// The requester's rcv_nxt rides in RateAdv, like a NAK's.
	r.head.Update(now, from, seqspace.Seq(p.RateAdv))
	first := seqspace.Seq(p.Seq)
	to := first + seqspace.Seq(p.Length)
	if p.Length == 0 {
		to = first + 1
	}
	var escFrom seqspace.Seq
	var escCount uint32
	flushEsc := func() {
		if escCount == 0 {
			return
		}
		trace.Emit(r.cfg.Trace, now, trace.HeadNakEscalated, uint32(escFrom), int64(escCount))
		r.emit(&packet.Packet{Header: packet.Header{
			Type:   packet.TypeNak,
			Seq:    uint32(escFrom),
			Length: escCount,
			// An escalated NAK's timing is multi-hop (leaf -> head ->
			// sender): mark it re-asked so it never feeds the RTT estimate.
			Tries:   1,
			RateAdv: uint32(r.reportedNext()),
		}})
		escCount = 0
	}
	var decFrom seqspace.Seq
	var decCount uint32
	flushDec := func() {
		if decCount == 0 {
			return
		}
		r.sendDecline(now, decFrom, decCount)
		decCount = 0
	}
	for seq := first; seqspace.Before(seq, to); seq++ {
		if r.head.Handled(now, seq) {
			r.st.HeadNaksSuppressed++
			continue
		}
		var payload []byte
		var flags uint8
		if src, ok := r.head.Retained(seq); ok {
			// The FIN flag must survive the repair: a leaf whose lost
			// packet was the stream end can only finish if the rebuilt
			// copy still ends the stream.
			payload, flags = src.Payload, src.Flags&packet.FlagFIN
		} else if wp, ok := r.wnd.PayloadAt(seq); ok {
			payload = wp
		} else if r.head.Declined(now, seq) {
			// The sender already refused this range: re-escalating cannot
			// help, so answer with an explicit decline (coalesced).
			flushEsc()
			if decCount == 0 {
				decFrom = seq
			}
			decCount++
			continue
		} else {
			// Not held here: escalate (coalescing consecutive numbers).
			r.st.HeadNaksEscalated++
			flushDec()
			if escCount == 0 {
				escFrom = seq
			}
			escCount++
			continue
		}
		flushEsc()
		flushDec()
		r.st.HeadNaksAnswered++
		trace.Emit(r.cfg.Trace, now, trace.HeadRepairSent, uint32(seq), int64(len(payload)))
		pl := make([]byte, len(payload))
		copy(pl, payload)
		rep := &packet.Packet{
			Header: packet.Header{
				Type:    packet.TypeData,
				Seq:     uint32(seq),
				Length:  uint32(len(pl)),
				RateAdv: r.advRate,
				Tries:   1, // a repair is by definition a retransmission
				Flags:   flags,
			},
			Payload: pl,
		}
		rep.SrcPort = r.cfg.LocalPort
		rep.DstPort = r.cfg.LocalPort
		r.outMC.Push(rep)
	}
	flushEsc()
	flushDec()
	r.feedbackInPer = true
}

// onNakErr processes an authoritative sender refusal: the requested
// range is below the send window and no longer retransmittable.
func (r *Receiver) onNakErr(now sim.Time, p *packet.Packet) {
	r.st.NakErrsHeard++
	first := seqspace.Seq(p.Seq)
	to := first + seqspace.Seq(p.Length)
	if p.Length == 0 {
		to = first + 1
	}
	if r.head != nil {
		// Head mode, escalate-or-decline: the subtree member that asked
		// must hear an explicit refusal, never silence — record the
		// range and multicast a HEAD_DECLINE so leaves re-home their
		// recovery end-to-end.
		for seq := first; seqspace.Before(seq, to); seq++ {
			r.head.Decline(now, seq)
		}
		r.sendDecline(now, first, seqspace.Count(first, to))
		return
	}
	// Flat (or failed-over leaf): the data is gone for good and retrying
	// cannot help. The NAK manager stops asking; the hole stays visible
	// to the application as a stream that never advances past it.
	for seq := first; seqspace.Before(seq, to); seq++ {
		if _, ok := r.pending[seq]; !ok {
			continue
		}
		if r.dead == nil {
			r.dead = make(map[seqspace.Seq]bool)
		}
		if !r.dead[seq] {
			r.dead[seq] = true
			r.st.UnrecoverableHoles++
		}
		delete(r.pending, seq)
	}
	r.armNakTimer(now)
}

// sendDecline multicasts a HEAD_DECLINE into the subtree (head mode):
// an explicit refusal for [first, first+count), which the sender has
// released and the head cannot serve.
func (r *Receiver) sendDecline(now sim.Time, first seqspace.Seq, count uint32) {
	if count == 0 {
		count = 1
	}
	r.st.HeadDeclinesSent++
	trace.Emit(r.cfg.Trace, now, trace.HeadDeclineSent, uint32(first), int64(count))
	d := &packet.Packet{Header: packet.Header{
		Type:   packet.TypeHeadDecline,
		Seq:    uint32(first),
		Length: count,
	}}
	d.SrcPort = r.cfg.LocalPort
	d.DstPort = r.cfg.LocalPort
	r.outMC.Push(d)
}

// onHeadDecline processes the head's explicit refusal (leaf mode): the
// covered gaps re-home to end-to-end recovery — further NAKs for them
// go straight to the sender.
func (r *Receiver) onHeadDecline(now sim.Time, from packet.NodeID, p *packet.Packet) {
	if r.leafHead() == 0 || from == 0 || from != r.cfg.RepairHead {
		return
	}
	r.st.HeadDeclinesHeard++
	first := seqspace.Seq(p.Seq)
	to := first + seqspace.Seq(p.Length)
	if p.Length == 0 {
		to = first + 1
	}
	changed := false
	for seq := first; seqspace.Before(seq, to); seq++ {
		if e, ok := r.pending[seq]; ok && !e.direct {
			e.direct = true
			e.tries = 0
			e.deferUntil = 0
			changed = true
		}
	}
	if changed {
		r.sendDueNaks(now)
		r.armNakTimer(now)
	}
}

// failover degrades a leaf to flat mode: the configured repair head is
// declared dead, so membership and recovery re-home to the sender.
func (r *Receiver) failover(now sim.Time) {
	if r.leafHead() == 0 {
		return
	}
	r.headDown = true
	r.headWaitSince = 0
	r.st.HeadFailovers++
	trace.Emit(r.cfg.Trace, now, trace.HeadFailover, uint32(r.wnd.Next()), int64(r.cfg.RepairHead))
	if r.joined && !r.finDelivered {
		// Fresh JOIN handshake with the sender. Karn's rule: a sample
		// would mix head and sender round trips, so it is discarded.
		r.joinAcked = false
		r.joinAmbiguous = true
		r.sendJoin(now)
	}
	// Pending recovery restarts cleanly against the sender.
	for _, e := range r.pending {
		e.tries = 0
		e.deferUntil = 0
	}
	if len(r.pending) > 0 {
		r.sendDueNaks(now)
		r.armNakTimer(now)
	}
	if r.leaveSent && !r.leaveAcked {
		// The LEAVE went to the dead head; close membership with the
		// sender directly.
		r.emit(&packet.Packet{Header: packet.Header{
			Type: packet.TypeLeave,
			Seq:  uint32(r.wnd.Next()),
		}})
	}
}

// readoptHead re-attaches a failed-over leaf to its configured head —
// called when head traffic reappears and ReadoptHead is on.
func (r *Receiver) readoptHead(now sim.Time) {
	r.headDown = false
	r.headWaitSince = 0
	r.st.HeadReadoptions++
	trace.Emit(r.cfg.Trace, now, trace.HeadReadopted, uint32(r.wnd.Next()), int64(r.cfg.RepairHead))
	for _, e := range r.pending {
		e.direct = false
	}
	if r.joined && !r.finDelivered {
		// Hand membership back to the head ...
		r.joinAcked = false
		r.joinAmbiguous = true
		r.sendJoin(now)
		// ... and retire the direct sender membership so the sender
		// returns to O(heads) state. Deliberately not routed through
		// emit (which now reroutes LEAVEs to the head) and without
		// touching this leaf's own LEAVE handshake state.
		lv := &packet.Packet{Header: packet.Header{
			Type: packet.TypeLeave,
			Seq:  uint32(r.wnd.Next()),
		}}
		lv.SrcPort = r.cfg.LocalPort
		lv.DstPort = r.cfg.RemotePort
		r.out.Push(lv)
	}
}

// anchor fixes the JoinInProgress rebase point: the receive window is
// moved to seq so a mid-stream joiner delivers from there instead of
// NAKing the whole history.
func (r *Receiver) anchor(seq seqspace.Seq) {
	if r.rebased || !r.cfg.JoinInProgress {
		return
	}
	if !r.wnd.Rebase(seq) {
		// Data already anchored the window; record where it stands.
		r.rebasedTo, r.rebased = r.wnd.Base(), true
		return
	}
	r.rebasedTo, r.rebased = seq, true
}

// anchorAndJoin anchors at seq and starts the JOIN handshake — the path
// taken when the first thing a mid-stream joiner hears is a KEEPALIVE
// or PROBE rather than data.
func (r *Receiver) anchorAndJoin(now sim.Time, seq seqspace.Seq) {
	r.anchor(seq)
	if !r.joined {
		r.joined = true
		r.joinTime = now
		r.sendJoin(now)
	}
}

// onData reports whether p was stored in the receive window (retained).
func (r *Receiver) onData(now sim.Time, p *packet.Packet) bool {
	r.advRate = p.RateAdv
	firstData := !r.joined
	if !r.seenAnyData {
		// Mid-stream joiner: deliver from the first packet seen.
		r.anchor(seqspace.Seq(p.Seq))
	}
	r.seenAnyData = true
	if r.repairPending != nil {
		// Seeing the data (from anyone) cancels our scheduled repair.
		delete(r.repairPending, seqspace.Seq(p.Seq))
	}
	res := r.wnd.Insert(p)
	if firstData {
		// "send a JOIN message to the sender in response to the first
		// data packet that it receives" — carrying rcv_nxt after the
		// packet has been processed.
		r.joined = true
		r.joinTime = now
		r.sendJoin(now)
	}
	switch res {
	case window.Duplicate:
		r.st.Duplicates++
		return false
	case window.OutOfWindow:
		r.st.OutOfWindow++
		return false
	}
	r.st.DataReceived++
	if r.head != nil {
		// Head role: keep the packet available for downstream repairs
		// past application consumption (a reference when pool-owned, a
		// plain alias otherwise).
		r.head.Retain(p)
	}
	if r.fecCache != nil {
		seq := seqspace.Seq(p.Seq)
		if old, ok := r.fecCache[seq]; ok && r.fecPooled {
			packet.Put(old)
		}
		if r.fecPooled {
			packet.Retain(p)
		}
		r.fecCache[seq] = p
		r.pruneFecCache()
	}
	r.syncNakList(now)
	if p.FIN() {
		// The FIN itself may still be out of order; delivery tracking
		// happens in Read.
		_ = p
	}
	r.maybeRateRequest(now)
	return true
}

// syncNakList reconciles the pending NAK list with the window's missing
// set: gaps gain entries (NAKed immediately on first detection), filled
// holes lose them.
func (r *Receiver) syncNakList(now sim.Time) {
	missing := r.wnd.Missing(nil)
	present := make(map[seqspace.Seq]bool, len(r.pending))
	newGap := false
	for _, g := range missing {
		for s := g.From; seqspace.Before(s, g.To); s++ {
			if r.dead[s] {
				// Authoritatively refused (NAK_ERR): never re-request.
				continue
			}
			present[s] = true
			if _, ok := r.pending[s]; !ok {
				e := &nakEntry{detected: now}
				if r.cfg.FECGroupSize > 0 {
					// Give parity a chance before the first NAK. One
					// retry interval bounds the parity's trailing
					// distance comfortably: the sender emits it with the
					// group's last packet or, across a pipeline pause,
					// via the idle flush within a jiffy or two — any
					// longer wait just adds dead time to the fallback
					// path when the parity itself was lost. An arriving
					// parity that cannot repair the gap expires the
					// defer early (see onFec).
					e.deferUntil = now + r.cfg.NakRetryInterval
				}
				r.pending[s] = e
				if !newGap {
					trace.Emit(r.cfg.Trace, now, trace.GapDetected, uint32(s), 0)
				}
				newGap = true
			}
		}
	}
	for s, e := range r.pending {
		if !present[s] {
			// The gap is gone — filled by retransmission, parity
			// recovery, or a rebase past it. Aux carries the time it
			// stayed open, the recovery-latency a NAK round trip or a
			// parity arrival cost us.
			trace.Emit(r.cfg.Trace, now, trace.GapFilled, uint32(s), int64(now-e.detected))
			delete(r.pending, s)
		}
	}
	if newGap {
		r.sendDueNaks(now)
	}
	r.armNakTimer(now)
}

// sendDueNaks transmits NAKs for pending entries whose suppression
// window has expired, coalescing consecutive sequence numbers into one
// NAK packet.
func (r *Receiver) sendDueNaks(now sim.Time) {
	gaps := r.wnd.Missing(nil)
	sent := false
	exhausted := false
	for _, g := range gaps {
		var from seqspace.Seq
		var count uint32
		var runDirect, runRetry bool
		flushRun := func() {
			if count == 0 {
				return
			}
			sent = true
			// Tries marks a re-asked NAK: the sender must not take an RTT
			// sample from it, since the elapsed time includes our backoff.
			var tries uint8
			if runRetry {
				tries = 1
			}
			trace.Emit(r.cfg.Trace, now, trace.NakSent, uint32(from), int64(count))
			r.emitNak(now, &packet.Packet{Header: packet.Header{
				Type:    packet.TypeNak,
				Seq:     uint32(from),
				Length:  count,
				Tries:   tries,
				RateAdv: uint32(r.reportedNext()),
			}}, runDirect)
			count = 0
			runRetry = false
		}
		for s := g.From; seqspace.Before(s, g.To); s++ {
			e := r.pending[s]
			if e == nil {
				flushRun()
				continue
			}
			due := e.tries == 0 || now-e.lastSent >= r.retryInterval(e)
			if now < e.deferUntil {
				due = false
			}
			if !due {
				flushRun()
				continue
			}
			retry := e.tries != 0
			if retry {
				r.st.NakRetries++
			} else {
				r.st.NaksSent++
				if e.deferUntil != 0 {
					// The FEC defer window expired with the gap still
					// open: parity did not repair it, so this NAK is the
					// selective fallback to retransmission.
					r.st.FecFallbackNaks++
				}
			}
			e.lastSent = now
			e.tries++
			if r.leafHead() != 0 && !e.direct &&
				r.cfg.HeadNakRetryBudget > 0 && e.tries > r.cfg.HeadNakRetryBudget {
				exhausted = true
			}
			if count > 0 && e.direct != runDirect {
				// Head-bound and direct entries cannot share one NAK.
				flushRun()
			}
			if count == 0 {
				from, runDirect = s, e.direct
			}
			if retry {
				runRetry = true
			}
			count++
		}
		flushRun()
	}
	if sent {
		r.feedbackInPer = true
	}
	if exhausted {
		// The head absorbed a full retry budget without a sign of life.
		r.failover(now)
	}
}

// retryInterval computes the backoff before a pending NAK is resent:
// linear in flat mode (the local NAK-suppression window), exponential
// toward a repair head so a dead head is detected within the retry
// budget without flooding it first.
func (r *Receiver) retryInterval(e *nakEntry) sim.Time {
	if r.leafHead() != 0 && !e.direct {
		shift := e.tries - 1
		if shift < 0 {
			shift = 0
		}
		if shift > 6 {
			shift = 6
		}
		return r.cfg.NakRetryInterval << uint(shift)
	}
	return r.cfg.NakRetryInterval * sim.Time(e.tries+1)
}

// armNakTimer schedules the NAK Manager for the earliest pending retry.
func (r *Receiver) armNakTimer(now sim.Time) {
	if len(r.pending) == 0 {
		r.nakTimer.Disarm()
		return
	}
	var earliest sim.Time
	first := true
	for _, e := range r.pending {
		var at sim.Time
		if e.tries == 0 {
			at = now
		} else {
			at = e.lastSent + r.retryInterval(e)
		}
		if at < e.deferUntil {
			at = e.deferUntil
		}
		if first || at < earliest {
			earliest, first = at, false
		}
	}
	if earliest < now {
		earliest = now
	}
	r.nakTimer.Arm(earliest)
}

// maybeRateRequest applies the three flow-control rules of Section 2 on
// each accepted data packet.
func (r *Receiver) maybeRateRequest(now sim.Time) {
	if pm := int64(r.wnd.Fill()) * 1000 / int64(r.wnd.Size()); pm > r.st.MaxFillPermille {
		r.st.MaxFillPermille = pm
	}
	switch r.wnd.Region() {
	case window.Safe:
		return
	case window.Warning:
		// Rule 2: request a lower rate if the data sendable at the
		// advertised rate over the next WARNBUF round trips exceeds the
		// empty portion of the window.
		horizon := sim.Time(r.cfg.WarnBuf) * r.rttEstimate
		sendable := float64(r.advRate) * horizon.Seconds()
		emptyBytes := float64(r.wnd.Empty()) * float64(r.cfg.MSS)
		if sendable <= emptyBytes {
			return
		}
		// Rate requests are deliberately not suppressed (Section 5.2);
		// only the kernel's timer granularity bounds them.
		if now-r.lastControl < kernel.Jiffy && r.lastControl != 0 {
			return
		}
		r.lastControl = now
		r.st.RateRequests++
		trace.Emit(r.cfg.Trace, now, trace.RegionWarning, uint32(r.wnd.Next()), int64(r.wnd.Fill()))
		r.emit(&packet.Packet{Header: packet.Header{
			Type:    packet.TypeControl,
			Seq:     uint32(r.reportedNext()),
			RateAdv: r.advRate / 2,
		}})
		r.feedbackInPer = true
	case window.Critical:
		// Rule 3: urgent request, stops the sender for two round trips
		// regardless of the advertised rate. One per two round trips.
		if now-r.lastUrgent < 2*r.rttEstimate && r.lastUrgent != 0 {
			return
		}
		r.lastUrgent = now
		r.st.UrgentRequests++
		trace.Emit(r.cfg.Trace, now, trace.RegionCritical, uint32(r.wnd.Next()), int64(r.wnd.Fill()))
		r.emit(&packet.Packet{Header: packet.Header{
			Type:    packet.TypeControl,
			Seq:     uint32(r.reportedNext()),
			RateAdv: r.advRate / 2,
			Flags:   packet.FlagURG,
		}})
		r.feedbackInPer = true
	}
}

// pruneFecCache bounds the recovery cache to a few FEC groups behind
// the reassembly frontier, dropping the cache's pool reference with
// each evicted entry.
func (r *Receiver) pruneFecCache() {
	limit := 4 * r.cfg.FECGroupSize
	if len(r.fecCache) <= 2*limit {
		return
	}
	for seq, p := range r.fecCache {
		if int(seqspace.Diff(r.wnd.Next(), seq)) > limit {
			if r.fecPooled {
				packet.Put(p)
			}
			delete(r.fecCache, seq)
		}
	}
}

// releaseFecCache drops every cached group member, returning the
// cache's pool references. Called at end of stream and on teardown;
// the map stays usable (straggler data after FIN may repopulate it, so
// teardown drains again).
func (r *Receiver) releaseFecCache() {
	for seq, p := range r.fecCache {
		if r.fecPooled {
			packet.Put(p)
		}
		delete(r.fecCache, seq)
	}
}

// fecLookup resolves payloads (and header flags, which parity also
// covers) for recovery from the window first, then the recovery cache.
func (r *Receiver) fecLookup(seq seqspace.Seq) ([]byte, uint8, bool) {
	if p, ok := r.wnd.PacketAt(seq); ok {
		return p.Payload, p.Flags, true
	}
	if p, ok := r.fecCache[seq]; ok {
		return p.Payload, p.Flags, true
	}
	return nil, 0, false
}

// onPeerNak processes another receiver's multicast NAK (local-recovery
// extension): requests covering our own pending gaps suppress our NAKs
// (SRM-style), and requests for data we hold schedule a randomized
// multicast repair, cancelled if someone else repairs first.
func (r *Receiver) onPeerNak(now sim.Time, p *packet.Packet) {
	r.st.PeerNaksHeard++
	from := seqspace.Seq(p.Seq)
	to := from + seqspace.Seq(p.Length)
	if p.Length == 0 {
		to = from + 1
	}
	for seq := from; seqspace.Before(seq, to); seq++ {
		if e, ok := r.pending[seq]; ok {
			// A peer already asked: count it as our own ask.
			e.lastSent = now
			if e.tries == 0 {
				e.tries = 1
			}
			continue
		}
		if _, scheduled := r.repairPending[seq]; scheduled {
			continue
		}
		if _, _, have := r.fecLookup(seq); have {
			delay := kernel.Jiffy + sim.Time(r.rng.Intn(int(2*kernel.Jiffy)))
			r.repairPending[seq] = now + delay
		}
	}
	r.armNakTimer(now)
	r.armRepairTimer(now)
}

// armRepairTimer schedules the earliest pending repair.
func (r *Receiver) armRepairTimer(now sim.Time) {
	if len(r.repairPending) == 0 {
		r.repairTimer.Disarm()
		return
	}
	var earliest sim.Time
	first := true
	for _, at := range r.repairPending {
		if first || at < earliest {
			earliest, first = at, false
		}
	}
	if earliest < now {
		earliest = now
	}
	r.repairTimer.Arm(earliest)
}

// fireRepairs multicasts due repairs.
func (r *Receiver) fireRepairs(now sim.Time) {
	for seq, at := range r.repairPending {
		if at > now {
			continue
		}
		delete(r.repairPending, seq)
		payload, flags, ok := r.fecLookup(seq)
		if !ok {
			continue
		}
		r.st.RepairsSent++
		pl := make([]byte, len(payload))
		copy(pl, payload)
		rep := &packet.Packet{
			Header: packet.Header{
				Type:    packet.TypeData,
				Seq:     uint32(seq),
				Length:  uint32(len(pl)),
				RateAdv: r.advRate,
				Tries:   1, // a repair is by definition a retransmission
				// The FIN flag must survive a peer repair just as it
				// survives a head repair: without it the repaired
				// receiver delivers every byte but never sees
				// end-of-stream.
				Flags: flags & packet.FlagFIN,
			},
			Payload: pl,
		}
		rep.SrcPort = r.cfg.LocalPort
		rep.DstPort = r.cfg.RemotePort
		r.outMC.Push(rep)
	}
	r.armRepairTimer(now)
}

// onFec attempts single-erasure recovery from an FEC parity packet
// (extension): when exactly one packet of the covered group is missing
// and the rest are still buffered, the loss is repaired locally with no
// NAK round trip.
func (r *Receiver) onFec(now sim.Time, p *packet.Packet) {
	r.st.FecParityHeard++
	rebuilt, ok := r.fdec.Recover(p, r.fecLookup)
	if !ok {
		// Nothing to rebuild: the group is complete (the common case —
		// parity spent on a loss that never happened), more than one
		// member is gone, or the parity is unusable.
		r.st.FecParityWasted++
		// A failed reconstruction is still information: the group's
		// parity has arrived and could not repair its gaps, so local
		// repair is off the table for every deferred entry it covers.
		// Expire their defers now — keeping them waiting only adds the
		// full defer window to the retransmission round trip. The
		// stamp stays nonzero so the fallback counter still sees them.
		if p.Type == packet.TypeFec && len(r.pending) > 0 {
			base := seqspace.Seq(p.Seq)
			expedited := false
			for i := 0; i < int(p.Length) && i < fec.MaxGroup; i++ {
				if e, ok := r.pending[base+seqspace.Seq(i)]; ok && e.deferUntil > now {
					e.deferUntil = now
					expedited = true
				}
			}
			if expedited {
				r.sendDueNaks(now)
				r.armNakTimer(now)
			}
		}
		return
	}
	// Only rebuild data that is actually missing and fits the window.
	seq := seqspace.Seq(rebuilt.Seq)
	if seqspace.Before(seq, r.wnd.Next()) {
		r.st.FecParityWasted++
		packet.Put(rebuilt)
		return
	}
	r.st.FecRecovered++
	trace.Emit(r.cfg.Trace, now, trace.FecRecovered, rebuilt.Seq, int64(len(rebuilt.Payload)))
	rebuilt.RateAdv = r.advRate
	if !r.onData(now, rebuilt) {
		// The window refused it (raced a retransmission into Duplicate,
		// or out of window): drop our pool reference, exactly as the
		// session drops unretained receive packets.
		packet.Put(rebuilt)
	}
	// Local repair must not look like loss feedback: the rebuilt packet
	// filled its own gap, so the counters above tell the story.
}

func (r *Receiver) onKeepalive(now sim.Time, p *packet.Packet) {
	r.st.KeepalivesHeard++
	r.advRate = p.RateAdv
	if r.cfg.JoinInProgress && !r.rebased && !r.seenAnyData {
		// A mid-stream joiner must not NAK history it will never
		// deliver: anchor one past the keepalive's last-transmitted
		// sequence number and join from there.
		r.anchorAndJoin(now, seqspace.Seq(p.Seq)+1)
		return
	}
	// The keepalive carries the last sequence number transmitted; if we
	// have not received through it, the tail of a burst was lost.
	r.wnd.ExtendHighest(seqspace.Seq(p.Seq))
	r.syncNakList(now)
}

func (r *Receiver) onProbe(now sim.Time, p *packet.Packet) {
	if r.cfg.Mode == RMC {
		return // the RMC baseline predates probes
	}
	r.st.ProbesReceived++
	r.probesInPer++
	probeSeq := seqspace.Seq(p.Seq)
	if r.cfg.JoinInProgress && !r.rebased && !r.seenAnyData {
		// Mid-stream joiner: the probed data predates us. Anchor past it
		// and answer so the sender's release check stops waiting on a
		// stale membership entry.
		r.anchorAndJoin(now, probeSeq+1)
		if r.head != nil {
			r.sendAggUpdate(now)
		} else {
			r.sendUpdate(now)
		}
		return
	}
	if r.head != nil {
		// Head mode: the probe asks about the subtree, and the aggregate
		// is the answer. When the head itself lacks the probed data it
		// also NAKs immediately (the sender is blocked on it); when only
		// members lag, the AGG_UPDATE tells the sender how far the
		// subtree actually is, and member HEAD_NAKs drive the repairs.
		if seqspace.After(r.reportedNext(), probeSeq) {
			trace.Emit(r.cfg.Trace, now, trace.ProbeAnswered, p.Seq, 1)
		}
		if !seqspace.After(r.wnd.Next(), probeSeq) {
			r.wnd.ExtendHighest(probeSeq)
			r.syncNakList(now)
			r.forceNak(now)
		}
		r.sendAggUpdate(now)
		return
	}
	if seqspace.After(r.wnd.Next(), probeSeq) {
		// All data up to and including the probed sequence number has
		// been received: answer with an immediate UPDATE.
		trace.Emit(r.cfg.Trace, now, trace.ProbeAnswered, p.Seq, 1)
		r.sendUpdate(now)
		return
	}
	// Otherwise the probed data is missing: make the gap visible and NAK
	// immediately.
	r.wnd.ExtendHighest(probeSeq)
	r.syncNakList(now)
	r.forceNak(now)
}

// forceNak retransmits a NAK for the first pending gap immediately,
// bypassing suppression — the sender is blocked on this information.
func (r *Receiver) forceNak(now sim.Time) {
	gaps := r.wnd.Missing(nil)
	if len(gaps) == 0 {
		return
	}
	g := gaps[0]
	var tries uint8
	for s := g.From; seqspace.Before(s, g.To); s++ {
		if e := r.pending[s]; e != nil {
			if e.tries > 0 {
				r.st.NakRetries++
				tries = 1 // re-ask: not an RTT sample for the sender
			} else {
				r.st.NaksSent++
			}
			e.lastSent = now
			e.tries++
		}
	}
	r.emitNak(now, &packet.Packet{Header: packet.Header{
		Type:    packet.TypeNak,
		Seq:     uint32(g.From),
		Length:  g.Count(),
		Tries:   tries,
		RateAdv: uint32(r.reportedNext()),
	}}, false)
	r.feedbackInPer = true
	r.armNakTimer(now)
}

// sendJoin emits a JOIN and arms the retry timer. In leaf mode emit
// routes it to the repair head; a head joins the sender directly.
func (r *Receiver) sendJoin(now sim.Time) {
	r.emit(&packet.Packet{Header: packet.Header{
		Type: packet.TypeJoin,
		Seq:  uint32(r.reportedNext()),
	}})
	r.noteHeadWait(now)
	r.joinTimer.Arm(now + joinRetryInterval)
}

// joinRetryInterval paces JOIN retransmissions while no JOIN_RESPONSE
// has arrived.
const joinRetryInterval = 50 * kernel.Jiffy

func (r *Receiver) onJoinResponse(now sim.Time, from packet.NodeID) {
	if r.headDown && from != 0 && from == r.cfg.RepairHead {
		// A stale ack from the failed head must not complete the JOIN
		// handshake we re-homed to the sender. (With re-adoption on,
		// onHeadTraffic already re-attached before we got here.)
		return
	}
	if r.joinAcked || !r.joined {
		return
	}
	r.joinAcked = true
	r.joinTimer.Disarm()
	// Karn's rule: only an unambiguous (never-retransmitted) JOIN
	// exchange yields an RTT sample. The jiffy clock cannot resolve
	// sub-tick round trips, so the estimate floors at two jiffies.
	if d := now - r.joinTime; d > 0 && !r.joinAmbiguous {
		if d < 2*kernel.Jiffy {
			d = 2 * kernel.Jiffy
		}
		r.rttEstimate = d
	}
}

func (r *Receiver) sendUpdate(now sim.Time) {
	r.st.UpdatesSent++
	trace.Emit(r.cfg.Trace, now, trace.UpdateSent, uint32(r.wnd.Next()), 0)
	r.emit(&packet.Packet{Header: packet.Header{
		Type: packet.TypeUpdate,
		Seq:  uint32(r.reportedNext()),
	}})
	_ = now
}

// sendAggUpdate emits one aggregated UPDATE to the sender (head mode):
// the minimum next-expected sequence number over the head and its
// subtree, and the downstream member count.
func (r *Receiver) sendAggUpdate(now sim.Time) {
	min, members := r.head.Aggregate(r.wnd.Next())
	r.st.AggUpdatesSent++
	trace.Emit(r.cfg.Trace, now, trace.AggUpdateSent, uint32(min), int64(members))
	r.emit(&packet.Packet{Header: packet.Header{
		Type:   packet.TypeAggUpdate,
		Seq:    uint32(min),
		Length: uint32(members),
	}})
}

// maybeLeave sends the head's deferred LEAVE: a head that has delivered
// the whole stream holds its LEAVE until every downstream member is
// past the stream end (or evicted by the member timeout) — leaving
// earlier would drop the subtree minimum from the sender's release
// check while members still need repairs.
func (r *Receiver) maybeLeave(now sim.Time) {
	if r.head == nil || !r.finDelivered || r.leaveSent {
		return
	}
	if !r.head.Drained(r.wnd.Next()) {
		if r.drainStart == 0 {
			r.drainStart = now
			return
		}
		if now-r.drainStart < r.head.LeaveDrainTimeout() {
			return
		}
		// Drain bound hit: one dead or wedged member must not hold the
		// head's departure (and the sender's state for it) indefinitely.
		r.st.HeadDrainTimeouts++
		trace.Emit(r.cfg.Trace, now, trace.HeadDrainTimeout,
			uint32(r.wnd.Next()), int64(r.head.Members()))
	}
	r.leaveSent = true
	r.emit(&packet.Packet{Header: packet.Header{
		Type: packet.TypeLeave,
		Seq:  uint32(r.reportedNext()),
	}})
}

// Advance fires any due timers: the NAK Manager and the Update
// Generator. Drivers call it at their tick granularity or at NextWake.
func (r *Receiver) Advance(now sim.Time) {
	if r.leafHead() != 0 && r.headWaitSince != 0 && r.cfg.HeadSilenceTimeout > 0 {
		if (!r.joined || r.joinAcked) && len(r.pending) == 0 &&
			!(r.leaveSent && !r.leaveAcked) {
			// Nothing outstanding anymore: the request was answered
			// indirectly (e.g. the sender's multicast retransmission
			// filled the gap), so the silence clock resets.
			r.headWaitSince = 0
		} else if now-r.headWaitSince >= r.cfg.HeadSilenceTimeout {
			r.failover(now)
		}
	}
	if r.nakTimer.Fire(now) {
		r.sendDueNaks(now)
		r.armNakTimer(now)
	}
	if r.updateTimer.Fire(now) {
		r.onUpdateTimer(now)
	}
	if r.joinTimer.Fire(now) {
		if !r.joinAcked && !r.finDelivered {
			r.joinAmbiguous = true
			r.sendJoin(now)
		}
	}
	if r.repairTimer.Fire(now) {
		r.fireRepairs(now)
	}
	if r.head != nil && r.head.Tick(now) {
		// The aggregate period elapsed: one AGG_UPDATE speaks for the
		// whole subtree (and the eviction sweep ran inside Tick).
		if !r.leaveSent {
			r.sendAggUpdate(now)
		}
		r.maybeLeave(now)
	}
}

// onUpdateTimer is the Update Generator of Figure 9: send a periodic
// UPDATE (unless other reverse traffic already informed the sender this
// period) and adjust the period by one jiffy based on whether probes
// arrived — down when the sender had to probe, up when it did not.
func (r *Receiver) onUpdateTimer(now sim.Time) {
	if r.seenAnyData && !r.finDelivered {
		if r.feedbackInPer {
			r.st.UpdatesSkipped++
		} else {
			r.sendUpdate(now)
		}
	}
	if r.probesInPer > 0 {
		r.updatePeriod -= kernel.Jiffy
		if r.updatePeriod < r.cfg.MinUpdatePeriod {
			r.updatePeriod = r.cfg.MinUpdatePeriod
		}
	} else {
		r.updatePeriod += kernel.Jiffy
		if r.updatePeriod > r.cfg.MaxUpdatePeriod {
			r.updatePeriod = r.cfg.MaxUpdatePeriod
		}
	}
	r.probesInPer = 0
	r.feedbackInPer = false
	if !r.finDelivered {
		r.updateTimer.Arm(now + r.updatePeriod)
	}
}

// NextWake returns the earliest time Advance needs to run.
func (r *Receiver) NextWake() (sim.Time, bool) {
	if r.head != nil {
		return kernel.Earliest(&r.nakTimer, &r.updateTimer, &r.joinTimer, &r.repairTimer, r.head.Timer())
	}
	return kernel.Earliest(&r.nakTimer, &r.updateTimer, &r.joinTimer, &r.repairTimer)
}

// Read delivers in-order stream bytes to the application. At end of
// stream it returns io.EOF (after the final bytes) and queues the LEAVE
// message.
func (r *Receiver) Read(now sim.Time, buf []byte) (int, error) {
	if r.finDelivered {
		return 0, io.EOF
	}
	n, fin := r.wnd.Read(buf)
	r.st.BytesDelivered += int64(n)
	if fin {
		r.finDelivered = true
		trace.Emit(r.cfg.Trace, now, trace.StreamComplete, uint32(r.wnd.Next()), r.st.BytesDelivered)
		r.updateTimer.Disarm()
		// The stream is complete: no gap can need parity repair any
		// more, so the recovery cache's pool references go back.
		r.releaseFecCache()
		if r.head != nil {
			// A head reports the subtree state and defers its LEAVE
			// until every member is past the stream end — it must keep
			// answering HEAD_NAKs until then.
			r.sendAggUpdate(now)
			r.maybeLeave(now)
		} else if !r.leaveSent {
			r.leaveSent = true
			// A final UPDATE tells the sender everything was received,
			// then LEAVE closes the membership. The RMC baseline has no
			// UPDATE packet type.
			if r.cfg.Mode == HRMC {
				r.sendUpdate(now)
			}
			r.emit(&packet.Packet{Header: packet.Header{
				Type: packet.TypeLeave,
				Seq:  uint32(r.wnd.Next()),
			}})
			r.noteHeadWait(now)
		}
		if n == 0 {
			return 0, io.EOF
		}
	}
	return n, nil
}

// Buffered returns the number of in-order packets awaiting Read.
func (r *Receiver) Buffered() int { return r.wnd.Buffered() }

// ReleaseBuffers drops every buffered packet, returning retained pool
// packets to the pool. It is for teardown of an aborted flow only; the
// machine must not be used afterwards.
func (r *Receiver) ReleaseBuffers() {
	r.wnd.ReleaseAll()
	r.releaseFecCache()
	if r.head != nil {
		r.head.ReleaseAll()
	}
}

// Head exposes the repair-head machine (nil unless configured) for
// inspection in tests and the control plane.
func (r *Receiver) Head() *repair.Head { return r.head }

// HeadDown reports whether a leaf has declared its repair head dead and
// failed over to flat mode.
func (r *Receiver) HeadDown() bool { return r.headDown }

// RebasedAt returns the JoinInProgress anchor point and whether the
// receiver anchored mid-stream. Drivers use it to translate delivered
// bytes back to stream offsets.
func (r *Receiver) RebasedAt() (seqspace.Seq, bool) { return r.rebasedTo, r.rebased }

// Window exposes the receive window for inspection in tests and stats.
func (r *Receiver) Window() *window.ReceiveWindow { return r.wnd }
