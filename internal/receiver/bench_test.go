package receiver

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/seqspace"
	"repro/internal/sim"
)

// BenchmarkInOrderDataPath measures the Main Packet Processor's
// fast path: in-order DATA arrival plus application read.
func BenchmarkInOrderDataPath(b *testing.B) {
	r := New(Config{RcvBuf: 4 << 20, MSS: 1400})
	payload := make([]byte, 1400)
	buf := make([]byte, 4096)
	b.SetBytes(1400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := &packet.Packet{
			Header:  packet.Header{Type: packet.TypeData, Seq: uint32(i), Length: 1400, RateAdv: 1e6},
			Payload: payload,
		}
		r.HandlePacket(sim.Time(i), p)
		for r.Buffered() > 0 {
			r.Read(sim.Time(i), buf)
		}
		if r.HasOutgoing() {
			r.Outgoing()
		}
	}
}

// BenchmarkLossRecoveryPath measures gap detection + NAK generation +
// hole filling for every other packet.
func BenchmarkLossRecoveryPath(b *testing.B) {
	r := New(Config{RcvBuf: 4 << 20, MSS: 1400})
	payload := make([]byte, 1400)
	buf := make([]byte, 8192)
	b.SetBytes(2 * 1400)
	b.ReportAllocs()
	seq := uint32(0)
	for i := 0; i < b.N; i++ {
		gap := &packet.Packet{
			Header:  packet.Header{Type: packet.TypeData, Seq: seq + 1, Length: 1400},
			Payload: payload,
		}
		fill := &packet.Packet{
			Header:  packet.Header{Type: packet.TypeData, Seq: seq, Length: 1400},
			Payload: payload,
		}
		now := sim.Time(i)
		r.HandlePacket(now, gap)
		r.HandlePacket(now, fill)
		seq += 2
		for r.Buffered() > 0 {
			r.Read(now, buf)
		}
		r.Outgoing()
	}
	if r.NextExpected() != seqspace.Seq(seq) {
		b.Fatalf("reassembly lost packets: next=%d want %d", r.NextExpected(), seq)
	}
}
