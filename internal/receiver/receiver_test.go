package receiver

import (
	"io"
	"testing"

	"repro/internal/kernel"
	"repro/internal/packet"
	"repro/internal/seqspace"
	"repro/internal/sim"
	"repro/internal/window"
)

func newR(t *testing.T, mod func(*Config)) *Receiver {
	t.Helper()
	cfg := Config{
		LocalAddr: 1,
		RcvBuf:    32 * (1400 + packet.HeaderSize), // 32-packet window
		MSS:       1400,
	}
	if mod != nil {
		mod(&cfg)
	}
	return New(cfg)
}

func data(seq seqspace.Seq, payload string) *packet.Packet {
	return &packet.Packet{
		Header: packet.Header{
			Type:    packet.TypeData,
			Seq:     uint32(seq),
			Length:  uint32(len(payload)),
			RateAdv: 100000,
		},
		Payload: []byte(payload),
	}
}

func typesOf(pkts []*packet.Packet) []packet.Type {
	ts := make([]packet.Type, len(pkts))
	for i, p := range pkts {
		ts[i] = p.Type
	}
	return ts
}

func findType(pkts []*packet.Packet, ty packet.Type) *packet.Packet {
	for _, p := range pkts {
		if p.Type == ty {
			return p
		}
	}
	return nil
}

func TestJoinOnFirstData(t *testing.T) {
	r := newR(t, nil)
	r.HandlePacket(0, data(0, "a"))
	out := r.Outgoing()
	j := findType(out, packet.TypeJoin)
	if j == nil {
		t.Fatalf("no JOIN after first data packet; got %v", typesOf(out))
	}
	if j.Seq != 1 {
		t.Errorf("JOIN carries next-expected %d, want 1", j.Seq)
	}
	// Second packet must not trigger another JOIN.
	r.HandlePacket(kernel.Jiffy, data(1, "b"))
	if findType(r.Outgoing(), packet.TypeJoin) != nil {
		t.Error("JOIN repeated on second data packet")
	}
}

func TestJoinResponseMeasuresRTT(t *testing.T) {
	r := newR(t, nil)
	r.HandlePacket(100*sim.Millisecond, data(0, "a"))
	r.Outgoing()
	r.HandlePacket(130*sim.Millisecond, &packet.Packet{Header: packet.Header{Type: packet.TypeJoinResponse}})
	if r.RTT() != 30*sim.Millisecond {
		t.Errorf("RTT after JOIN exchange = %v, want 30ms", r.RTT())
	}
}

func TestGapTriggersImmediateNak(t *testing.T) {
	r := newR(t, nil)
	r.HandlePacket(0, data(0, "a"))
	r.Outgoing()
	// Sequence 1 is lost; 2 arrives.
	r.HandlePacket(kernel.Jiffy, data(2, "c"))
	out := r.Outgoing()
	nak := findType(out, packet.TypeNak)
	if nak == nil {
		t.Fatalf("no NAK on gap; got %v", typesOf(out))
	}
	if nak.Seq != 1 || nak.Length != 1 {
		t.Errorf("NAK covers seq=%d len=%d, want 1,1", nak.Seq, nak.Length)
	}
	if nak.RateAdv != 1 {
		t.Errorf("NAK rcv_nxt field = %d, want 1", nak.RateAdv)
	}
	if r.Stats().NaksSent != 1 {
		t.Errorf("NaksSent = %d", r.Stats().NaksSent)
	}
}

func TestNakCoalescesConsecutiveGap(t *testing.T) {
	r := newR(t, nil)
	r.HandlePacket(0, data(0, "a"))
	r.Outgoing()
	// 1,2,3 lost; 4 arrives: one NAK for the run of three.
	r.HandlePacket(kernel.Jiffy, data(4, "e"))
	nak := findType(r.Outgoing(), packet.TypeNak)
	if nak == nil {
		t.Fatal("no NAK")
	}
	if nak.Seq != 1 || nak.Length != 3 {
		t.Errorf("NAK seq=%d len=%d, want 1,3", nak.Seq, nak.Length)
	}
}

func TestNakSuppressionAndRetry(t *testing.T) {
	r := newR(t, nil)
	r.HandlePacket(0, data(0, "a"))
	r.Outgoing()
	r.HandlePacket(kernel.Jiffy, data(2, "c"))
	if findType(r.Outgoing(), packet.TypeNak) == nil {
		t.Fatal("no initial NAK")
	}
	// More out-of-order arrivals for the same gap must not re-NAK
	// (local NAK suppression).
	r.HandlePacket(2*kernel.Jiffy, data(3, "d"))
	if findType(r.Outgoing(), packet.TypeNak) != nil {
		t.Error("suppressed NAK was resent on another arrival")
	}
	// But after the retry interval the NAK Manager resends.
	wake, ok := r.NextWake()
	if !ok {
		t.Fatal("no NAK retry scheduled")
	}
	r.Advance(wake)
	if findType(r.Outgoing(), packet.TypeNak) == nil {
		t.Error("NAK Manager did not retry after the interval")
	}
	if r.Stats().NakRetries != 1 {
		t.Errorf("NakRetries = %d, want 1", r.Stats().NakRetries)
	}
}

func TestRetransmissionFillsGapAndCancelsNak(t *testing.T) {
	r := newR(t, nil)
	r.HandlePacket(0, data(0, "a"))
	r.HandlePacket(kernel.Jiffy, data(2, "c"))
	r.Outgoing()
	r.HandlePacket(2*kernel.Jiffy, data(1, "b"))
	if _, ok := r.NextWake(); ok {
		// Update timer may still be armed in H-RMC; check it is not the
		// NAK timer by ensuring no NAK goes out at that wake.
	}
	r.Advance(3 * kernel.Jiffy * 100)
	if findType(r.Outgoing(), packet.TypeNak) != nil {
		t.Error("NAK resent after the gap was filled")
	}
	buf := make([]byte, 10)
	n, _ := r.Read(0, buf)
	if n != 3 || string(buf[:3]) != "abc" {
		t.Errorf("delivered %q", buf[:n])
	}
}

func TestKeepaliveExposesTailLoss(t *testing.T) {
	r := newR(t, nil)
	r.HandlePacket(0, data(0, "a"))
	r.Outgoing()
	// Packets 1 and 2 lost entirely; keepalive says the last sent was 2.
	r.HandlePacket(sim.Second, &packet.Packet{Header: packet.Header{
		Type: packet.TypeKeepalive, Seq: 2,
	}})
	nak := findType(r.Outgoing(), packet.TypeNak)
	if nak == nil {
		t.Fatal("keepalive did not expose tail loss")
	}
	if nak.Seq != 1 || nak.Length != 2 {
		t.Errorf("NAK seq=%d len=%d, want 1,2", nak.Seq, nak.Length)
	}
	if r.Stats().KeepalivesHeard != 1 {
		t.Error("keepalive not counted")
	}
}

func TestProbeAnsweredWithUpdateWhenDataHeld(t *testing.T) {
	r := newR(t, nil)
	r.HandlePacket(0, data(0, "a"))
	r.HandlePacket(0, data(1, "b"))
	r.Outgoing()
	r.HandlePacket(kernel.Jiffy, &packet.Packet{Header: packet.Header{
		Type: packet.TypeProbe, Seq: 1,
	}})
	up := findType(r.Outgoing(), packet.TypeUpdate)
	if up == nil {
		t.Fatal("probe for held data not answered with UPDATE")
	}
	if up.Seq != 2 {
		t.Errorf("UPDATE carries %d, want rcv_nxt 2", up.Seq)
	}
	if r.Stats().ProbesReceived != 1 || r.Stats().UpdatesSent != 1 {
		t.Error("probe/update counters wrong")
	}
}

func TestProbeAnsweredWithNakWhenDataMissing(t *testing.T) {
	r := newR(t, nil)
	r.HandlePacket(0, data(0, "a"))
	r.Outgoing()
	// Probe for seq 3: receiver has only 0, so 1..3 are missing.
	r.HandlePacket(kernel.Jiffy, &packet.Packet{Header: packet.Header{
		Type: packet.TypeProbe, Seq: 3,
	}})
	out := r.Outgoing()
	nak := findType(out, packet.TypeNak)
	if nak == nil {
		t.Fatalf("probe for missing data not answered with NAK; got %v", typesOf(out))
	}
	if nak.Seq != 1 || nak.Length != 3 {
		t.Errorf("NAK seq=%d len=%d, want 1,3", nak.Seq, nak.Length)
	}
	if findType(out, packet.TypeUpdate) != nil {
		t.Error("probe answered with both UPDATE and NAK")
	}
}

func TestRMCModeIgnoresProbes(t *testing.T) {
	r := newR(t, func(c *Config) { c.Mode = RMC })
	r.HandlePacket(0, data(0, "a"))
	r.Outgoing()
	r.HandlePacket(kernel.Jiffy, &packet.Packet{Header: packet.Header{
		Type: packet.TypeProbe, Seq: 5,
	}})
	if out := r.Outgoing(); len(out) != 0 {
		t.Errorf("RMC receiver answered a probe: %v", typesOf(out))
	}
	if r.Stats().ProbesReceived != 0 {
		t.Error("RMC receiver counted a probe")
	}
}

func TestPeriodicUpdates(t *testing.T) {
	r := newR(t, nil)
	r.HandlePacket(0, data(0, "a"))
	r.Outgoing()
	wake, ok := r.NextWake()
	if !ok {
		t.Fatal("update timer not armed")
	}
	if wake != 50*kernel.Jiffy {
		t.Errorf("first update at %v, want 50 jiffies", wake)
	}
	r.Advance(wake)
	up := findType(r.Outgoing(), packet.TypeUpdate)
	if up == nil {
		t.Fatal("no periodic UPDATE")
	}
	if up.Seq != 1 {
		t.Errorf("UPDATE seq = %d, want 1", up.Seq)
	}
}

func TestUpdateSkippedWhenOtherFeedbackSent(t *testing.T) {
	r := newR(t, nil)
	r.HandlePacket(0, data(0, "a"))
	// A NAK in this period counts as reverse traffic.
	r.HandlePacket(kernel.Jiffy, data(2, "c"))
	r.Outgoing()
	r.Advance(50 * kernel.Jiffy)
	if findType(r.Outgoing(), packet.TypeUpdate) != nil {
		t.Error("UPDATE sent despite NAK reverse traffic in the period")
	}
	if r.Stats().UpdatesSkipped != 1 {
		t.Errorf("UpdatesSkipped = %d", r.Stats().UpdatesSkipped)
	}
}

func TestDynamicUpdatePeriod(t *testing.T) {
	r := newR(t, nil)
	r.HandlePacket(0, data(0, "a"))
	r.HandlePacket(0, data(1, "b"))
	// Complete the JOIN handshake so the join-retry timer does not
	// interleave with the update timer below.
	r.HandlePacket(0, &packet.Packet{Header: packet.Header{Type: packet.TypeJoinResponse}})
	r.Outgoing()
	p0 := r.UpdatePeriod()
	// No probes in the period: period grows by one jiffy.
	r.Advance(p0)
	if got := r.UpdatePeriod(); got != p0+kernel.Jiffy {
		t.Errorf("period after quiet interval = %v, want %v", got, p0+kernel.Jiffy)
	}
	// A probe arrives: period shrinks by one jiffy at the next firing.
	r.HandlePacket(p0+kernel.Jiffy, &packet.Packet{Header: packet.Header{
		Type: packet.TypeProbe, Seq: 0,
	}})
	wake, _ := r.NextWake()
	r.Advance(wake)
	if got := r.UpdatePeriod(); got != p0 {
		t.Errorf("period after probe = %v, want %v", got, p0)
	}
	r.Outgoing()
}

func TestUpdatePeriodBounds(t *testing.T) {
	r := newR(t, func(c *Config) {
		c.InitialUpdatePeriod = 2 * kernel.Jiffy
		c.MinUpdatePeriod = 2 * kernel.Jiffy
		c.MaxUpdatePeriod = 4 * kernel.Jiffy
	})
	r.HandlePacket(0, data(0, "a"))
	r.Outgoing()
	now := sim.Time(0)
	// Quiet periods push the period to the max and no further.
	for i := 0; i < 10; i++ {
		wake, ok := r.NextWake()
		if !ok {
			t.Fatal("update timer dead")
		}
		now = wake
		r.Advance(now)
		r.Outgoing()
	}
	if got := r.UpdatePeriod(); got != 4*kernel.Jiffy {
		t.Errorf("period = %v, want the 4-jiffy max", got)
	}
	// Probes every period push it back to the min and no further.
	for i := 0; i < 10; i++ {
		r.HandlePacket(now, &packet.Packet{Header: packet.Header{Type: packet.TypeProbe, Seq: 0}})
		wake, _ := r.NextWake()
		now = wake
		r.Advance(now)
		r.Outgoing()
	}
	if got := r.UpdatePeriod(); got != 2*kernel.Jiffy {
		t.Errorf("period = %v, want the 2-jiffy min", got)
	}
}

func TestRMCModeSendsNoUpdates(t *testing.T) {
	r := newR(t, func(c *Config) { c.Mode = RMC })
	r.HandlePacket(0, data(0, "a"))
	// Only the JOIN retry timer may be armed; once the handshake
	// completes, an RMC receiver has no periodic timers at all.
	r.HandlePacket(0, &packet.Packet{Header: packet.Header{Type: packet.TypeJoinResponse}})
	r.Outgoing()
	if _, ok := r.NextWake(); ok {
		t.Error("RMC receiver armed the update timer")
	}
}

func TestWarningRateRequest(t *testing.T) {
	r := newR(t, nil) // 32-packet window; warning at 16
	now := sim.Time(0)
	// Fill to 50% without reading; advertised rate is high so the
	// WARNBUF rule predicts overflow.
	for i := 0; i < 16; i++ {
		now += sim.Millisecond
		p := data(seqspace.Seq(i), "x")
		p.RateAdv = 10_000_000 // 10 MB/s: fills the window within 4 RTTs
		r.HandlePacket(now, p)
	}
	ctrl := findType(r.Outgoing(), packet.TypeControl)
	if ctrl == nil {
		t.Fatal("no CONTROL in warning region under overflow prediction")
	}
	if ctrl.URG() {
		t.Error("warning request has URG set")
	}
	if ctrl.RateAdv != 5_000_000 {
		t.Errorf("suggested rate = %d, want half of advertised", ctrl.RateAdv)
	}
	if r.Stats().RateRequests == 0 {
		t.Error("rate request not counted")
	}
}

func TestNoWarningWhenRateIsSlow(t *testing.T) {
	r := newR(t, nil)
	now := sim.Time(0)
	for i := 0; i < 16; i++ {
		now += sim.Millisecond
		p := data(seqspace.Seq(i), "x")
		p.RateAdv = 100 // 100 B/s cannot overflow the window in 4 RTTs
		r.HandlePacket(now, p)
	}
	if findType(r.Outgoing(), packet.TypeControl) != nil {
		t.Error("warning CONTROL sent although the advertised rate is harmless")
	}
}

func TestCriticalUrgentRequest(t *testing.T) {
	r := newR(t, nil) // critical at 28 of 32
	now := sim.Time(0)
	for i := 0; i < 29; i++ {
		now += sim.Millisecond
		p := data(seqspace.Seq(i), "x")
		p.RateAdv = 100 // even a slow rate must not avoid the urgent stop
		r.HandlePacket(now, p)
	}
	out := r.Outgoing()
	var urgent *packet.Packet
	for _, p := range out {
		if p.Type == packet.TypeControl && p.URG() {
			urgent = p
		}
	}
	if urgent == nil {
		t.Fatalf("no urgent CONTROL in critical region; got %v", typesOf(out))
	}
	if r.Stats().UrgentRequests == 0 {
		t.Error("urgent request not counted")
	}
}

func TestUrgentThrottled(t *testing.T) {
	r := newR(t, func(c *Config) { c.AssumedRTT = 100 * sim.Millisecond })
	now := sim.Time(0)
	for i := 0; i < 32; i++ {
		now += sim.Millisecond
		p := data(seqspace.Seq(i), "x")
		r.HandlePacket(now, p)
	}
	urgents := r.Stats().UrgentRequests
	if urgents == 0 {
		t.Fatal("no urgent requests at all")
	}
	// All arrivals landed within 2*RTT (32ms < 200ms): exactly one urgent.
	if urgents != 1 {
		t.Errorf("urgent requests = %d, want 1 within two RTTs", urgents)
	}
}

func TestReadDeliversStreamAndEOF(t *testing.T) {
	r := newR(t, nil)
	r.HandlePacket(0, data(0, "hello "))
	r.HandlePacket(0, data(1, "world"))
	fin := data(2, "")
	fin.Flags = packet.FlagFIN
	r.HandlePacket(0, fin)
	r.Outgoing()

	buf := make([]byte, 64)
	n, err := r.Read(kernel.Jiffy, buf)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf[:n]) != "hello world" {
		t.Errorf("stream = %q", buf[:n])
	}
	if !r.FinDelivered() {
		t.Error("FIN not recorded as delivered")
	}
	if _, err := r.Read(kernel.Jiffy, buf); err != io.EOF {
		t.Errorf("read after FIN: err = %v, want EOF", err)
	}
	// End of stream queues a final UPDATE and a LEAVE.
	out := r.Outgoing()
	if findType(out, packet.TypeLeave) == nil {
		t.Errorf("no LEAVE at end of stream; got %v", typesOf(out))
	}
	if findType(out, packet.TypeUpdate) == nil {
		t.Errorf("no final UPDATE at end of stream; got %v", typesOf(out))
	}
	r.HandlePacket(kernel.Jiffy, &packet.Packet{Header: packet.Header{Type: packet.TypeLeaveResponse}})
	if !r.Done() {
		t.Error("receiver not Done after LEAVE_RESPONSE")
	}
}

func TestDuplicateAndOutOfWindowCounters(t *testing.T) {
	r := newR(t, nil)
	r.HandlePacket(0, data(0, "a"))
	r.HandlePacket(0, data(0, "a"))
	if r.Stats().Duplicates != 1 {
		t.Errorf("Duplicates = %d", r.Stats().Duplicates)
	}
	r.HandlePacket(0, data(100, "z"))
	if r.Stats().OutOfWindow != 1 {
		t.Errorf("OutOfWindow = %d", r.Stats().OutOfWindow)
	}
}

func TestSenderBoundTypesRejected(t *testing.T) {
	r := newR(t, nil)
	for _, ty := range []packet.Type{packet.TypeNak, packet.TypeJoin, packet.TypeLeave, packet.TypeControl, packet.TypeUpdate} {
		if err := r.HandlePacket(0, &packet.Packet{Header: packet.Header{Type: ty}}); err != ErrNotData {
			t.Errorf("%v: err = %v, want ErrNotData", ty, err)
		}
	}
}

func TestWindowSizeFromRcvBuf(t *testing.T) {
	r := New(Config{RcvBuf: 64 << 10, MSS: 1400})
	want := uint32((64 << 10) / (1400 + packet.HeaderSize))
	if r.WindowSize() != want {
		t.Errorf("window size = %d, want %d", r.WindowSize(), want)
	}
	tiny := New(Config{RcvBuf: 10, MSS: 1400})
	if tiny.WindowSize() != 1 {
		t.Error("tiny buffer must still hold one packet")
	}
}

func TestProbeForDataBeyondWindowClamped(t *testing.T) {
	r := New(Config{RcvBuf: 4 * (1400 + packet.HeaderSize), MSS: 1400})
	r.HandlePacket(0, data(0, "a"))
	r.Outgoing()
	// Probe far beyond the 4-packet window: the gap must clamp to the
	// window so the receiver does not NAK data it cannot buffer.
	r.HandlePacket(kernel.Jiffy, &packet.Packet{Header: packet.Header{
		Type: packet.TypeProbe, Seq: 100,
	}})
	nak := findType(r.Outgoing(), packet.TypeNak)
	if nak == nil {
		t.Fatal("no NAK for probed missing data")
	}
	if nak.Length > 3 {
		t.Errorf("NAK for %d packets exceeds window space 3", nak.Length)
	}
	_ = window.Gap{}
}
