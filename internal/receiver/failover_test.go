package receiver

import (
	"io"
	"testing"

	"repro/internal/kernel"
	"repro/internal/packet"
	"repro/internal/repair"
	"repro/internal/seqspace"
	"repro/internal/sim"
)

// Leaf-failover and escalate-or-decline unit tests: the receiver-side
// half of the repair-head failure model, exercised without a network.

const testHead = packet.NodeID(9)

// newLeaf builds a receiver attached to repair head testHead.
func newLeaf(t *testing.T, mod func(*Config)) *Receiver {
	t.Helper()
	return newR(t, func(c *Config) {
		c.RepairHead = testHead
		if mod != nil {
			mod(c)
		}
	})
}

// headNaks drains the addressed queue and returns the HEAD_NAKs bound
// for the configured head.
func headNaks(r *Receiver) []*packet.Packet {
	var naks []*packet.Packet
	for _, a := range r.OutgoingAddressed() {
		if a.To == testHead && a.Pkt.Type == packet.TypeHeadNak {
			naks = append(naks, a.Pkt)
		}
	}
	return naks
}

func TestLeafNakBudgetFailover(t *testing.T) {
	r := newLeaf(t, func(c *Config) {
		c.HeadNakRetryBudget = 2
		c.HeadSilenceTimeout = -1 // isolate the budget path
	})
	r.HandlePacket(0, data(0, "a"))
	r.HandlePacket(kernel.Jiffy, data(2, "c")) // seq 1 lost
	if got := len(headNaks(r)); got != 1 {
		t.Fatalf("first ask: %d HEAD_NAKs to head, want 1", got)
	}
	// The head answers nothing; retries back off until the budget is
	// spent and the leaf degrades to flat mode.
	var now sim.Time
	for now = 2 * kernel.Jiffy; r.Stats().HeadFailovers == 0 && now < 10*sim.Second; now += kernel.Jiffy {
		r.Advance(now)
		r.OutgoingAddressed()
		r.Outgoing()
	}
	if r.Stats().HeadFailovers != 1 {
		t.Fatal("retry budget exhausted but no failover")
	}
	// Flat mode: recovery and membership re-home to the sender.
	r.Advance(now + sim.Second)
	out := r.Outgoing()
	if findType(out, packet.TypeNak) == nil {
		t.Errorf("no sender-bound NAK after failover; got %v", typesOf(out))
	}
	if len(headNaks(r)) != 0 {
		t.Error("HEAD_NAK still addressed to the dead head after failover")
	}
}

func TestLeafHeadSilenceFailover(t *testing.T) {
	r := newLeaf(t, func(c *Config) {
		c.HeadNakRetryBudget = -1 // isolate the silence timer
		c.HeadSilenceTimeout = 500 * sim.Millisecond
	})
	// The JOIN goes to the head and is never answered: the silence clock
	// runs from the first response-expecting request.
	r.HandlePacket(0, data(0, "a"))
	r.OutgoingAddressed()
	r.Advance(400 * sim.Millisecond)
	if r.Stats().HeadFailovers != 0 {
		t.Fatal("failover before the silence timeout")
	}
	r.Advance(600 * sim.Millisecond)
	if r.Stats().HeadFailovers != 1 {
		t.Fatal("head silent past the timeout but no failover")
	}
	// The re-homed JOIN goes straight to the sender.
	if findType(r.Outgoing(), packet.TypeJoin) == nil {
		t.Error("no sender-bound JOIN after silence failover")
	}
}

func TestLeafSilenceClockClearedByHeadTraffic(t *testing.T) {
	r := newLeaf(t, func(c *Config) {
		c.HeadNakRetryBudget = -1
		c.HeadSilenceTimeout = 500 * sim.Millisecond
	})
	r.HandlePacket(0, data(0, "a"))
	r.OutgoingAddressed()
	// Any packet from the head proves it alive and resets the clock.
	r.HandleFrom(300*sim.Millisecond, testHead, &packet.Packet{Header: packet.Header{
		Type: packet.TypeJoinResponse,
	}})
	r.Advance(700 * sim.Millisecond)
	if r.Stats().HeadFailovers != 0 {
		t.Error("failover despite live head traffic inside the timeout")
	}
}

func TestLeafReadoptAfterFailover(t *testing.T) {
	r := newLeaf(t, func(c *Config) {
		c.HeadNakRetryBudget = -1
		c.HeadSilenceTimeout = 500 * sim.Millisecond
		c.ReadoptHead = true
	})
	r.HandlePacket(0, data(0, "a"))
	r.OutgoingAddressed()
	r.Advance(600 * sim.Millisecond)
	if r.Stats().HeadFailovers != 1 {
		t.Fatal("no failover to recover from")
	}
	r.Outgoing()
	// The restarted head speaks again: the leaf re-attaches, hands
	// membership back to the head, and retires its direct sender entry.
	r.HandleFrom(sim.Second, testHead, &packet.Packet{Header: packet.Header{
		Type: packet.TypeKeepalive, Seq: 0,
	}})
	if r.Stats().HeadReadoptions != 1 {
		t.Fatal("head traffic reappeared but no re-adoption")
	}
	var joinToHead bool
	for _, a := range r.OutgoingAddressed() {
		if a.To == testHead && a.Pkt.Type == packet.TypeJoin {
			joinToHead = true
		}
	}
	if !joinToHead {
		t.Error("no JOIN re-homed to the restarted head")
	}
	if findType(r.Outgoing(), packet.TypeLeave) == nil {
		t.Error("direct sender membership not retired with a LEAVE")
	}
}

func TestHeadDeclineRehomesNak(t *testing.T) {
	r := newLeaf(t, func(c *Config) {
		c.HeadNakRetryBudget = -1
		c.HeadSilenceTimeout = -1
	})
	r.HandlePacket(0, data(0, "a"))
	r.HandlePacket(kernel.Jiffy, data(2, "c")) // seq 1 lost
	if got := len(headNaks(r)); got != 1 {
		t.Fatalf("first ask: %d HEAD_NAKs, want 1", got)
	}
	// The head refuses the range: further asks must go end-to-end.
	r.HandleFrom(2*kernel.Jiffy, testHead, &packet.Packet{Header: packet.Header{
		Type: packet.TypeHeadDecline, Seq: 1, Length: 1,
	}})
	if r.Stats().HeadDeclinesHeard != 1 {
		t.Fatal("decline not counted")
	}
	nak := findType(r.Outgoing(), packet.TypeNak)
	if nak == nil {
		t.Fatal("no direct sender NAK after the head's decline")
	}
	if nak.Seq != 1 {
		t.Errorf("direct NAK seq = %d, want 1", nak.Seq)
	}
	if len(headNaks(r)) != 0 {
		t.Error("declined range still asked of the head")
	}
	// The sender's NAK_ERR ends recovery: the hole is authoritatively
	// dead and the NAK manager stops asking.
	r.HandlePacket(3*kernel.Jiffy, &packet.Packet{Header: packet.Header{
		Type: packet.TypeNakErr, Seq: 1, Length: 1,
	}})
	if r.Stats().UnrecoverableHoles != 1 {
		t.Error("NAK_ERR did not dead-mark the hole")
	}
	r.Advance(sim.Second)
	if out := r.Outgoing(); findType(out, packet.TypeNak) != nil {
		t.Error("NAK resent for a dead hole")
	}
}

// TestHeadColdWindowDeclineChain is the head-side half of
// escalate-or-decline: a restarted head (cold retained window, anchored
// mid-stream) cannot serve history, so a member's HEAD_NAK is escalated
// to the sender; the sender's NAK_ERR turns into a multicast
// HEAD_DECLINE; and a repeat ask is declined directly without
// re-escalating.
func TestHeadColdWindowDeclineChain(t *testing.T) {
	member := packet.NodeID(7)
	r := newR(t, func(c *Config) {
		c.Head = &repair.Config{SuppressionInterval: kernel.Jiffy}
		c.JoinInProgress = true
	})
	// Restart mid-stream: the window anchors at the first packet seen.
	r.HandlePacket(0, data(100, "x"))
	r.Outgoing()
	// A member asks for history below the anchor: nothing retained,
	// nothing in the window -> escalate.
	r.HandleFrom(kernel.Jiffy, member, &packet.Packet{Header: packet.Header{
		Type: packet.TypeHeadNak, Seq: 50, Length: 2, RateAdv: 50,
	}})
	esc := findType(r.Outgoing(), packet.TypeNak)
	if esc == nil {
		t.Fatal("cold-window HEAD_NAK not escalated to the sender")
	}
	if esc.Seq != 50 || esc.Length != 2 {
		t.Errorf("escalated NAK covers seq=%d len=%d, want 50,2", esc.Seq, esc.Length)
	}
	if esc.Tries != 1 {
		t.Error("escalated NAK not marked re-asked: its multi-hop timing would poison the sender's RTT estimate")
	}
	if r.Stats().HeadNaksEscalated != 2 {
		t.Errorf("HeadNaksEscalated = %d, want 2", r.Stats().HeadNaksEscalated)
	}
	// The sender refuses: the head records the decline and multicasts an
	// explicit HEAD_DECLINE into the subtree — never silence.
	r.HandlePacket(2*kernel.Jiffy, &packet.Packet{Header: packet.Header{
		Type: packet.TypeNakErr, Seq: 50, Length: 2,
	}})
	if r.Stats().HeadDeclinesSent != 1 {
		t.Fatal("NAK_ERR at a head did not produce a HEAD_DECLINE")
	}
	dec := findType(r.OutgoingMulticast(), packet.TypeHeadDecline)
	if dec == nil {
		t.Fatal("HEAD_DECLINE not multicast into the subtree")
	}
	if dec.Seq != 50 || dec.Length != 2 {
		t.Errorf("HEAD_DECLINE covers seq=%d len=%d, want 50,2", dec.Seq, dec.Length)
	}
	// A repeat ask (past the suppression interval) is declined directly:
	// re-escalating a range the sender already refused cannot help.
	r.HandleFrom(4*kernel.Jiffy, member, &packet.Packet{Header: packet.Header{
		Type: packet.TypeHeadNak, Seq: 50, Length: 2, RateAdv: 50,
	}})
	if r.Stats().HeadNaksEscalated != 2 {
		t.Error("declined range re-escalated to the sender")
	}
	if r.Stats().HeadDeclinesSent != 2 {
		t.Error("repeat ask for a declined range drew no HEAD_DECLINE")
	}
}

// TestHeadDrainTimeoutBoundsLeave is the regression test for the
// deferred-LEAVE drain bound: a head that has delivered the whole
// stream defers its LEAVE for a wedged member, but only up to
// LeaveDrainTimeout — one dead member must not pin the head (and the
// sender's state for it) forever.
func TestHeadDrainTimeoutBoundsLeave(t *testing.T) {
	member := packet.NodeID(7)
	drain := 500 * sim.Millisecond
	r := newR(t, func(c *Config) {
		c.Head = &repair.Config{LeaveDrainTimeout: drain}
	})
	// A member joins far behind and never advances.
	r.HandleFrom(0, member, &packet.Packet{Header: packet.Header{
		Type: packet.TypeJoin, Seq: 0,
	}})
	// The head itself receives and consumes the entire (tiny) stream.
	fin := data(0, "end")
	fin.Flags = packet.FlagFIN
	r.HandlePacket(kernel.Jiffy, fin)
	buf := make([]byte, 16)
	for {
		if _, err := r.Read(kernel.Jiffy, buf); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("Read: %v", err)
		}
	}
	if !r.FinDelivered() {
		t.Fatal("stream not fully delivered")
	}
	// The aggregate timer drives maybeLeave; within the drain bound the
	// LEAVE is deferred for the wedged member.
	var now sim.Time
	var leave *packet.Packet
	for now = 2 * kernel.Jiffy; leave == nil && now < drain+5*sim.Second; now += kernel.Jiffy {
		r.Advance(now)
		if leave = findType(r.Outgoing(), packet.TypeLeave); leave != nil && now < drain {
			t.Fatalf("LEAVE at %v, inside the drain bound %v", now, drain)
		}
		r.OutgoingAddressed()
	}
	if leave == nil {
		t.Fatal("wedged member held the head's LEAVE past the drain bound")
	}
	if r.Stats().HeadDrainTimeouts != 1 {
		t.Errorf("HeadDrainTimeouts = %d, want 1", r.Stats().HeadDrainTimeouts)
	}
	// The LEAVE still reports the subtree minimum, so the sender's
	// release check stays safe until the member is evicted there too.
	if got := seqspace.Seq(leave.Seq); got != 0 {
		t.Errorf("departing head reported next-expected %d, want subtree minimum 0", got)
	}
}
