// Package window implements the window-based half of RMC/H-RMC flow
// control: the sender's send window (the kernel write_queue of Figure 8)
// and the receiver's receive window with the safe/warning/critical
// regions of Figure 2.
package window

import (
	"errors"

	"repro/internal/packet"
	"repro/internal/seqspace"
	"repro/internal/sim"
)

// ErrWindowFull is returned when a packet does not fit in the window's
// byte budget.
var ErrWindowFull = errors.New("window: full")

// SendEntry is one buffered outgoing packet with the state the sender
// needs to decide on release and retransmission.
type SendEntry struct {
	Pkt *packet.Packet
	// FirstSent and LastSent are the times of the first and the most
	// recent transmission; zero Tries means not yet transmitted.
	FirstSent sim.Time
	LastSent  sim.Time
	// Tries counts transmissions (Karn: an entry with Tries > 1 gives
	// ambiguous RTT samples).
	Tries int
}

// Sent reports whether the packet has been transmitted at least once.
func (e *SendEntry) Sent() bool { return e.Tries > 0 }

// SendWindow is the sender's buffer of un-released packets, a queue over
// the contiguous sequence range [Base, Next). Capacity is accounted in
// wire bytes against the per-socket kernel buffer size (sndbuf).
type SendWindow struct {
	base    seqspace.Seq // snd_wnd: first un-released sequence number
	next    seqspace.Seq // snd_nxt: sequence number for the next new packet
	entries []*SendEntry // ring-free: index 0 is base
	head    int
	bytes   int
	limit   int

	// Entry structs are carved from slabs and recycled through a free
	// list, so steady-state Insert/Release traffic allocates nothing.
	// The entry returned by Release stays valid until the next call
	// into the window (spare holds it until then).
	slab  []SendEntry
	free  []*SendEntry
	spare *SendEntry
}

const entrySlabSize = 64

// getEntry returns a zeroed SendEntry from the free list or a slab.
func (w *SendWindow) getEntry() *SendEntry {
	w.recycleSpare()
	if n := len(w.free) - 1; n >= 0 {
		e := w.free[n]
		w.free[n] = nil
		w.free = w.free[:n]
		return e
	}
	if len(w.slab) == 0 {
		w.slab = make([]SendEntry, entrySlabSize)
	}
	e := &w.slab[0]
	w.slab = w.slab[1:]
	return e
}

// recycleSpare moves the previously released entry onto the free list.
func (w *SendWindow) recycleSpare() {
	if w.spare != nil {
		*w.spare = SendEntry{}
		w.free = append(w.free, w.spare)
		w.spare = nil
	}
}

// NewSendWindow creates a send window with the given byte budget and
// initial sequence number.
func NewSendWindow(limitBytes int, initialSeq seqspace.Seq) *SendWindow {
	return &SendWindow{base: initialSeq, next: initialSeq, limit: limitBytes}
}

// Base returns snd_wnd, the first sequence number still buffered.
func (w *SendWindow) Base() seqspace.Seq { return w.base }

// Next returns snd_nxt, the sequence number the next new packet gets.
func (w *SendWindow) Next() seqspace.Seq { return w.next }

// Len returns the number of buffered packets.
func (w *SendWindow) Len() int { return len(w.entries) - w.head }

// Bytes returns the buffered wire bytes.
func (w *SendWindow) Bytes() int { return w.bytes }

// Limit returns the byte budget.
func (w *SendWindow) Limit() int { return w.limit }

// Free returns the remaining byte budget.
func (w *SendWindow) Free() int { return w.limit - w.bytes }

// Fits reports whether a packet of the given wire size can be inserted.
func (w *SendWindow) Fits(wireSize int) bool {
	return w.bytes+wireSize <= w.limit || w.Len() == 0
}

// Insert assigns the next sequence number to p, buffers it, and returns
// the assigned sequence number. A packet that would exceed the byte
// budget is rejected with ErrWindowFull unless the window is empty (a
// single oversized packet must always be sendable, like the kernel's
// one-skb grace).
func (w *SendWindow) Insert(p *packet.Packet) (seqspace.Seq, error) {
	if !w.Fits(p.WireSize()) {
		return 0, ErrWindowFull
	}
	p.Seq = uint32(w.next)
	e := w.getEntry()
	e.Pkt = p
	w.entries = append(w.entries, e)
	w.next++
	w.bytes += p.WireSize()
	return seqspace.Seq(p.Seq), nil
}

// Entry returns the buffered entry for seq, or nil when seq is not in
// [Base, Next).
func (w *SendWindow) Entry(seq seqspace.Seq) *SendEntry {
	d := seqspace.Diff(seq, w.base)
	if d < 0 || int(d) >= w.Len() {
		return nil
	}
	return w.entries[w.head+int(d)]
}

// Front returns the oldest buffered entry, or nil.
func (w *SendWindow) Front() *SendEntry {
	if w.Len() == 0 {
		return nil
	}
	return w.entries[w.head]
}

// Release drops the front packet (advances snd_wnd) and returns its
// entry, or nil when the window is empty. The returned entry is only
// valid until the next call into the window: it is recycled for a
// later Insert.
func (w *SendWindow) Release() *SendEntry {
	w.recycleSpare()
	if w.Len() == 0 {
		return nil
	}
	e := w.entries[w.head]
	w.spare = e
	w.entries[w.head] = nil
	w.head++
	w.bytes -= e.Pkt.WireSize()
	w.base++
	if w.head > 64 && w.head*2 >= len(w.entries) {
		n := copy(w.entries, w.entries[w.head:])
		for i := n; i < len(w.entries); i++ {
			w.entries[i] = nil
		}
		w.entries = w.entries[:n]
		w.head = 0
	}
	return e
}

// Each walks the buffered entries in sequence order; fn returning false
// stops the walk.
func (w *SendWindow) Each(fn func(seqspace.Seq, *SendEntry) bool) {
	for i := w.head; i < len(w.entries); i++ {
		seq := w.base + seqspace.Seq(i-w.head)
		if !fn(seq, w.entries[i]) {
			return
		}
	}
}

// FirstUnsent returns the first entry that has never been transmitted,
// with its sequence number, or nil.
func (w *SendWindow) FirstUnsent() (seqspace.Seq, *SendEntry) {
	for i := w.head; i < len(w.entries); i++ {
		if e := w.entries[i]; !e.Sent() {
			return w.base + seqspace.Seq(i-w.head), e
		}
	}
	return 0, nil
}
