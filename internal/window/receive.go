package window

import (
	"repro/internal/packet"
	"repro/internal/seqspace"
)

// Region is the receive-window fill region of Figure 2.
type Region int

const (
	// Safe: no flow-control action is taken.
	Safe Region = iota
	// Warning: a rate request is sent when the WARNBUF rule predicts
	// overflow.
	Warning
	// Critical: an urgent rate request stops the sender for two RTTs.
	Critical
)

func (r Region) String() string {
	switch r {
	case Safe:
		return "safe"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	}
	return "unknown"
}

// Region thresholds as fractions of the receive-window size. The paper
// does not publish its constants; Figure 2 draws the safe region as the
// smaller left portion, and a quarter/three-quarters split reproduces
// the reported feedback behaviour: rate requests whenever loss or a slow
// application lets arrivals run ahead, urgent stops only near overflow.
const (
	WarningFraction  = 0.25
	CriticalFraction = 0.75
)

// InsertResult describes what Insert did with a data packet.
type InsertResult int

const (
	// Accepted: the packet was new and stored.
	Accepted InsertResult = iota
	// AcceptedInOrder: the packet was exactly rcv_nxt and advanced the
	// in-order frontier (possibly draining out-of-order packets too).
	AcceptedInOrder
	// Duplicate: the packet was already received or already consumed.
	Duplicate
	// OutOfWindow: the packet lies beyond the receive window (region R4
	// of Figure 2) and was dropped.
	OutOfWindow
)

func (r InsertResult) String() string {
	switch r {
	case Accepted:
		return "accepted"
	case AcceptedInOrder:
		return "accepted-in-order"
	case Duplicate:
		return "duplicate"
	case OutOfWindow:
		return "out-of-window"
	}
	return "unknown"
}

// ReceiveWindow reassembles the data stream. It owns both the out-of-
// order queue and the in-order receive queue of Figure 9, and exposes
// the region logic the Main Packet Processor uses for rate requests.
//
// The window covers [Base, Base+Size) in packets. Base (rcv_wnd) advances
// as the application consumes data; Next (rcv_nxt) is the reassembly
// frontier; HighestEnd is one past the highest sequence number received,
// which may run ahead of Next when there are gaps.
type ReceiveWindow struct {
	base    seqspace.Seq
	next    seqspace.Seq
	size    uint32
	highest seqspace.Seq // one past the highest seq stored; == next when no OOO
	// announced is one past the highest sequence number the sender is
	// known to have transmitted (from KEEPALIVE/PROBE); it can run ahead
	// of highest and drives gap detection, but not flow-control fill —
	// unreceived data occupies no buffer space.
	announced seqspace.Seq

	// ooo holds packets at or after next that cannot be delivered yet.
	ooo map[seqspace.Seq]*packet.Packet
	// ready holds in-order packets awaiting application reads.
	ready     []*packet.Packet
	readyHead int
	// readOff is the byte offset consumed from ready[readyHead].
	readOff int

	// recycle makes the window the owner of inserted packets: each one
	// is returned to the packet pool (packet.Put) when the application
	// fully consumes it — the hold-until-release edge of the zero-copy
	// datapath. Anything holding payloads past consumption must keep
	// its own pool reference (the receiver's FEC cache retains each
	// cached packet for exactly this reason).
	recycle bool
}

// SetRecycle switches packet recycling on or off (see the recycle
// field). Callers enable it only when every inserted packet is pool-
// owned and nothing aliases stored payloads after consumption.
func (w *ReceiveWindow) SetRecycle(on bool) { w.recycle = on }

// NewReceiveWindow creates a window of the given size in packets,
// starting at initialSeq.
func NewReceiveWindow(sizePackets uint32, initialSeq seqspace.Seq) *ReceiveWindow {
	if sizePackets == 0 {
		sizePackets = 1
	}
	return &ReceiveWindow{
		base:      initialSeq,
		next:      initialSeq,
		size:      sizePackets,
		highest:   initialSeq,
		announced: initialSeq,
		ooo:       make(map[seqspace.Seq]*packet.Packet),
	}
}

// Base returns rcv_wnd.
func (w *ReceiveWindow) Base() seqspace.Seq { return w.base }

// Next returns rcv_nxt, the next sequence number expected in order.
func (w *ReceiveWindow) Next() seqspace.Seq { return w.next }

// Size returns the window size in packets.
func (w *ReceiveWindow) Size() uint32 { return w.size }

// HighestEnd returns one past the highest sequence number received.
func (w *ReceiveWindow) HighestEnd() seqspace.Seq { return w.highest }

// Fill returns the number of window slots occupied, counting everything
// from Base up to the highest received packet — buffered in-order data
// the application has not read (region R2) plus the span containing any
// out-of-order data. This is the quantity the region rules act on.
func (w *ReceiveWindow) Fill() uint32 { return seqspace.Count(w.base, w.highest) }

// Empty returns the unoccupied window slots.
func (w *ReceiveWindow) Empty() uint32 {
	f := w.Fill()
	if f >= w.size {
		return 0
	}
	return w.size - f
}

// Region returns the fill region per Figure 2.
func (w *ReceiveWindow) Region() Region {
	fill := float64(w.Fill()) / float64(w.size)
	switch {
	case fill >= CriticalFraction:
		return Critical
	case fill >= WarningFraction:
		return Warning
	default:
		return Safe
	}
}

// Insert processes an arriving data packet. On AcceptedInOrder the
// reassembly frontier advanced (check Next). The caller detects gaps by
// comparing the packet's sequence number with Next before inserting.
func (w *ReceiveWindow) Insert(p *packet.Packet) InsertResult {
	seq := seqspace.Seq(p.Seq)
	if seqspace.Before(seq, w.next) {
		return Duplicate
	}
	if !seqspace.InWindow(seq, w.base, w.size) {
		return OutOfWindow
	}
	if _, dup := w.ooo[seq]; dup {
		return Duplicate
	}
	end := seq + 1
	if seqspace.After(end, w.highest) {
		w.highest = end
	}
	if seqspace.After(end, w.announced) {
		w.announced = end
	}
	if seq != w.next {
		w.ooo[seq] = p
		return Accepted
	}
	// In order: deliver it and drain any contiguous out-of-order run.
	w.pushReady(p)
	w.next++
	for {
		q, ok := w.ooo[w.next]
		if !ok {
			break
		}
		delete(w.ooo, w.next)
		w.pushReady(q)
		w.next++
	}
	return AcceptedInOrder
}

func (w *ReceiveWindow) pushReady(p *packet.Packet) {
	w.ready = append(w.ready, p)
}

// Missing appends to dst the sequence ranges [from, to) that are absent
// between Next and the highest sequence number the sender is known to
// have transmitted — the gaps a NAK must cover.
func (w *ReceiveWindow) Missing(dst []Gap) []Gap {
	s := w.next
	for seqspace.Before(s, w.announced) {
		if _, ok := w.ooo[s]; ok {
			s++
			continue
		}
		g := Gap{From: s}
		for seqspace.Before(s, w.announced) {
			if _, ok := w.ooo[s]; ok {
				break
			}
			s++
		}
		g.To = s
		dst = append(dst, g)
	}
	return dst
}

// Gap is a half-open range of missing sequence numbers.
type Gap struct {
	From, To seqspace.Seq
}

// Count returns the number of missing packets in the gap.
func (g Gap) Count() uint32 { return seqspace.Count(g.From, g.To) }

// Buffered returns the number of in-order packets awaiting reads.
func (w *ReceiveWindow) Buffered() int { return len(w.ready) - w.readyHead }

// Read copies up to len(buf) in-order payload bytes to buf, advancing
// Base as packets are fully consumed (the application-read edge of the
// window). It returns the number of bytes copied and whether a packet
// with the FIN flag was fully consumed (end of stream).
func (w *ReceiveWindow) Read(buf []byte) (n int, fin bool) {
	for n < len(buf) && w.readyHead < len(w.ready) {
		p := w.ready[w.readyHead]
		c := copy(buf[n:], p.Payload[w.readOff:])
		n += c
		w.readOff += c
		if w.readOff >= len(p.Payload) {
			if p.FIN() {
				fin = true
			}
			if w.recycle {
				packet.Put(p)
			}
			w.ready[w.readyHead] = nil
			w.readyHead++
			w.readOff = 0
			w.base++
			if w.readyHead > 64 && w.readyHead*2 >= len(w.ready) {
				m := copy(w.ready, w.ready[w.readyHead:])
				for i := m; i < len(w.ready); i++ {
					w.ready[i] = nil
				}
				w.ready = w.ready[:m]
				w.readyHead = 0
			}
			if fin {
				return n, true
			}
		}
	}
	return n, false
}

// PeekFIN reports whether the stream end (a FIN packet) is already fully
// reassembled and waiting in the ready queue.
func (w *ReceiveWindow) PeekFIN() bool {
	for i := w.readyHead; i < len(w.ready); i++ {
		if w.ready[i].FIN() {
			return true
		}
	}
	return false
}

// OOOCount returns the number of packets parked in the out-of-order
// queue.
func (w *ReceiveWindow) OOOCount() int { return len(w.ooo) }

// PayloadAt returns the stored payload for seq, covering both the
// in-order queue awaiting application reads and the out-of-order queue.
// Consumed (below Base) and absent sequence numbers report false. Used
// by the FEC and local-recovery extensions.
func (w *ReceiveWindow) PayloadAt(seq seqspace.Seq) ([]byte, bool) {
	if p, ok := w.PacketAt(seq); ok {
		return p.Payload, true
	}
	return nil, false
}

// PacketAt returns the stored packet for seq (both queues), for callers
// that need header fields — FEC parity covers the flags byte alongside
// the payload.
func (w *ReceiveWindow) PacketAt(seq seqspace.Seq) (*packet.Packet, bool) {
	if seqspace.Before(seq, w.base) {
		return nil, false
	}
	if seqspace.Before(seq, w.next) {
		idx := w.readyHead + int(seqspace.Diff(seq, w.base))
		if idx >= w.readyHead && idx < len(w.ready) {
			return w.ready[idx], true
		}
		return nil, false
	}
	if p, ok := w.ooo[seq]; ok {
		return p, true
	}
	return nil, false
}

// ReleaseAll drops every buffered packet — the unread ready queue and
// the out-of-order queue — returning them to the pool when recycling
// is on. It is for teardown of an aborted flow; the window must not be
// used afterwards.
func (w *ReceiveWindow) ReleaseAll() {
	for i := w.readyHead; i < len(w.ready); i++ {
		if w.recycle {
			packet.Put(w.ready[i])
		}
		w.ready[i] = nil
	}
	w.ready = w.ready[:0]
	w.readyHead = 0
	w.readOff = 0
	for seq, p := range w.ooo {
		if w.recycle {
			packet.Put(p)
		}
		delete(w.ooo, seq)
	}
}

// Rebase moves an empty window to start at seq — the late-join path: a
// receiver attaching to an in-progress stream accepts it from the first
// position it can anchor to instead of NAKing the whole history. Valid
// only before any packet has been inserted or announced; a non-empty
// window is left untouched and Rebase reports false.
func (w *ReceiveWindow) Rebase(seq seqspace.Seq) bool {
	if w.highest != w.base || w.announced != w.base || len(w.ready) != 0 || len(w.ooo) != 0 {
		return false
	}
	w.base, w.next, w.highest, w.announced = seq, seq, seq, seq
	return true
}

// ExtendHighest records that the sender has transmitted data up to and
// including seq (learned from a KEEPALIVE or PROBE), so that trailing
// losses become visible as gaps. The extension is clamped to the window
// end (data beyond the window could not be buffered yet and will be
// recovered after the window slides) and does not count toward
// flow-control fill, since nothing was actually received.
func (w *ReceiveWindow) ExtendHighest(seq seqspace.Seq) {
	end := seq + 1
	windowEnd := w.base + seqspace.Seq(w.size)
	if seqspace.After(end, windowEnd) {
		end = windowEnd
	}
	if seqspace.After(end, w.announced) {
		w.announced = end
	}
}
