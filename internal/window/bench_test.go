package window

import (
	"testing"

	"repro/internal/seqspace"
)

func BenchmarkSendWindowInsertRelease(b *testing.B) {
	w := NewSendWindow(1<<20, 0)
	p := dataPkt(1400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := *p // fresh header; payload shared is fine for the bench
		if _, err := w.Insert(&q); err != nil {
			b.Fatal(err)
		}
		w.Front().Tries = 1
		w.Release()
	}
}

func BenchmarkSendWindowEntryLookup(b *testing.B) {
	w := NewSendWindow(16<<20, 0)
	for i := 0; i < 1000; i++ {
		w.Insert(dataPkt(1400))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w.Entry(seqspace.Seq(i%1000)) == nil {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkReceiveWindowInOrder(b *testing.B) {
	w := NewReceiveWindow(1<<16, 0)
	payload := make([]byte, 1400)
	buf := make([]byte, 4096)
	b.SetBytes(1400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := dataPktSeq(seqspace.Seq(uint32(i)), payload)
		if r := w.Insert(p); r != AcceptedInOrder {
			b.Fatalf("insert %d: %v", i, r)
		}
		for w.Buffered() > 0 {
			w.Read(buf)
		}
	}
}

func BenchmarkReceiveWindowOutOfOrder(b *testing.B) {
	// Worst-ish case: every other packet arrives late.
	w := NewReceiveWindow(1<<16, 0)
	payload := make([]byte, 1400)
	buf := make([]byte, 4096)
	b.SetBytes(2 * 1400)
	b.ReportAllocs()
	seq := uint32(0)
	for i := 0; i < b.N; i++ {
		w.Insert(dataPktSeq(seqspace.Seq(seq+1), payload)) // gap
		w.Insert(dataPktSeq(seqspace.Seq(seq), payload))   // fill
		seq += 2
		for w.Buffered() > 0 {
			w.Read(buf)
		}
	}
}

func BenchmarkReceiveWindowMissing(b *testing.B) {
	w := NewReceiveWindow(4096, 0)
	// 50% loss pattern across 1024 packets.
	for i := 0; i < 1024; i += 2 {
		w.Insert(dataPktSeq(seqspace.Seq(i+1), []byte{0}))
	}
	var gaps []Gap
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gaps = w.Missing(gaps[:0])
	}
	if len(gaps) == 0 {
		b.Fatal("no gaps found")
	}
}
