package window

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/seqspace"
)

func dataPkt(n int) *packet.Packet {
	return &packet.Packet{
		Header:  packet.Header{Type: packet.TypeData, Length: uint32(n)},
		Payload: make([]byte, n),
	}
}

func dataPktSeq(seq seqspace.Seq, payload []byte) *packet.Packet {
	return &packet.Packet{
		Header:  packet.Header{Type: packet.TypeData, Seq: uint32(seq), Length: uint32(len(payload))},
		Payload: payload,
	}
}

func TestSendWindowInsertAssignsSequence(t *testing.T) {
	w := NewSendWindow(10000, 100)
	for i := 0; i < 3; i++ {
		seq, err := w.Insert(dataPkt(50))
		if err != nil {
			t.Fatal(err)
		}
		if seq != seqspace.Seq(100+i) {
			t.Errorf("assigned seq %d, want %d", seq, 100+i)
		}
	}
	if w.Base() != 100 || w.Next() != 103 || w.Len() != 3 {
		t.Errorf("window state base=%d next=%d len=%d", w.Base(), w.Next(), w.Len())
	}
	wantBytes := 3 * (packet.HeaderSize + 50)
	if w.Bytes() != wantBytes || w.Free() != 10000-wantBytes {
		t.Errorf("bytes=%d free=%d", w.Bytes(), w.Free())
	}
}

func TestSendWindowByteLimit(t *testing.T) {
	w := NewSendWindow(200, 0)
	if _, err := w.Insert(dataPkt(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Insert(dataPkt(100)); err != ErrWindowFull {
		t.Errorf("over-budget insert: err = %v, want ErrWindowFull", err)
	}
	// An oversized packet fits when the window is empty.
	w2 := NewSendWindow(10, 0)
	if _, err := w2.Insert(dataPkt(500)); err != nil {
		t.Errorf("oversized packet into empty window rejected: %v", err)
	}
}

func TestSendWindowEntryLookup(t *testing.T) {
	w := NewSendWindow(1<<20, 10)
	for i := 0; i < 5; i++ {
		w.Insert(dataPkt(10))
	}
	e := w.Entry(12)
	if e == nil || e.Pkt.Seq != 12 {
		t.Fatalf("Entry(12) = %v", e)
	}
	if w.Entry(9) != nil || w.Entry(15) != nil {
		t.Error("out-of-range lookup returned an entry")
	}
	w.Release()
	if w.Entry(10) != nil {
		t.Error("released entry still reachable")
	}
	if w.Entry(12).Pkt.Seq != 12 {
		t.Error("lookup broken after release")
	}
}

func TestSendWindowReleaseOrder(t *testing.T) {
	w := NewSendWindow(1<<20, 0)
	for i := 0; i < 300; i++ {
		w.Insert(dataPkt(1))
	}
	for i := 0; i < 300; i++ {
		e := w.Release()
		if e == nil || e.Pkt.Seq != uint32(i) {
			t.Fatalf("release %d returned %v", i, e)
		}
		if w.Base() != seqspace.Seq(i+1) {
			t.Fatalf("base = %d after releasing %d", w.Base(), i)
		}
	}
	if w.Release() != nil {
		t.Error("release on empty window returned an entry")
	}
	if w.Bytes() != 0 {
		t.Errorf("bytes = %d after full drain", w.Bytes())
	}
}

func TestSendWindowEachAndFirstUnsent(t *testing.T) {
	w := NewSendWindow(1<<20, 0)
	for i := 0; i < 4; i++ {
		w.Insert(dataPkt(1))
	}
	w.Entry(0).Tries = 1
	w.Entry(1).Tries = 2
	seq, e := w.FirstUnsent()
	if e == nil || seq != 2 {
		t.Errorf("FirstUnsent = %d,%v, want 2", seq, e)
	}
	var seqs []seqspace.Seq
	w.Each(func(s seqspace.Seq, _ *SendEntry) bool {
		seqs = append(seqs, s)
		return len(seqs) < 3
	})
	if len(seqs) != 3 || seqs[0] != 0 || seqs[2] != 2 {
		t.Errorf("Each visited %v", seqs)
	}
	w.Entry(2).Tries = 1
	w.Entry(3).Tries = 1
	if _, e := w.FirstUnsent(); e != nil {
		t.Error("FirstUnsent found an entry in a fully sent window")
	}
}

func TestReceiveWindowInOrder(t *testing.T) {
	w := NewReceiveWindow(16, 0)
	for i := 0; i < 4; i++ {
		res := w.Insert(dataPktSeq(seqspace.Seq(i), []byte{byte(i)}))
		if res != AcceptedInOrder {
			t.Fatalf("packet %d: %v", i, res)
		}
	}
	if w.Next() != 4 || w.HighestEnd() != 4 || w.Buffered() != 4 {
		t.Fatalf("state next=%d highest=%d buffered=%d", w.Next(), w.HighestEnd(), w.Buffered())
	}
	buf := make([]byte, 10)
	n, fin := w.Read(buf)
	if n != 4 || fin {
		t.Fatalf("Read = %d,%v", n, fin)
	}
	if !bytes.Equal(buf[:4], []byte{0, 1, 2, 3}) {
		t.Errorf("Read returned %v", buf[:4])
	}
	if w.Base() != 4 {
		t.Errorf("base = %d after reading, want 4", w.Base())
	}
}

func TestReceiveWindowOutOfOrderReassembly(t *testing.T) {
	w := NewReceiveWindow(16, 0)
	if res := w.Insert(dataPktSeq(2, []byte{2})); res != Accepted {
		t.Fatalf("ooo insert: %v", res)
	}
	if w.Next() != 0 || w.HighestEnd() != 3 || w.OOOCount() != 1 {
		t.Fatalf("state next=%d highest=%d ooo=%d", w.Next(), w.HighestEnd(), w.OOOCount())
	}
	gaps := w.Missing(nil)
	if len(gaps) != 1 || gaps[0].From != 0 || gaps[0].To != 2 {
		t.Fatalf("Missing = %v", gaps)
	}
	w.Insert(dataPktSeq(0, []byte{0}))
	if w.Next() != 1 {
		t.Fatalf("next = %d after filling 0", w.Next())
	}
	// Filling the last hole drains the contiguous run.
	if res := w.Insert(dataPktSeq(1, []byte{1})); res != AcceptedInOrder {
		t.Fatal("hole fill not in-order")
	}
	if w.Next() != 3 || w.OOOCount() != 0 || w.Buffered() != 3 {
		t.Fatalf("after reassembly next=%d ooo=%d buffered=%d", w.Next(), w.OOOCount(), w.Buffered())
	}
	buf := make([]byte, 3)
	w.Read(buf)
	if !bytes.Equal(buf, []byte{0, 1, 2}) {
		t.Errorf("reassembled stream = %v", buf)
	}
}

func TestReceiveWindowDuplicatesAndBounds(t *testing.T) {
	w := NewReceiveWindow(8, 0)
	w.Insert(dataPktSeq(0, []byte{0}))
	if res := w.Insert(dataPktSeq(0, []byte{0})); res != Duplicate {
		t.Errorf("replayed in-order packet: %v", res)
	}
	w.Insert(dataPktSeq(3, []byte{3}))
	if res := w.Insert(dataPktSeq(3, []byte{3})); res != Duplicate {
		t.Errorf("replayed ooo packet: %v", res)
	}
	if res := w.Insert(dataPktSeq(8, []byte{8})); res != OutOfWindow {
		t.Errorf("beyond-window packet: %v", res)
	}
	// After the app reads packet 0, the window slides and seq 8 fits.
	w.Insert(dataPktSeq(1, []byte{1}))
	w.Insert(dataPktSeq(2, []byte{2}))
	buf := make([]byte, 4)
	w.Read(buf)
	if w.Base() != 4 {
		t.Fatalf("base = %d", w.Base())
	}
	if res := w.Insert(dataPktSeq(8, []byte{8})); res != Accepted {
		t.Errorf("packet 8 after slide: %v", res)
	}
}

func TestReceiveWindowRegions(t *testing.T) {
	w := NewReceiveWindow(16, 0)
	if w.Region() != Safe {
		t.Errorf("empty window region = %v", w.Region())
	}
	// Fill 3 of 16 (19%): still safe.
	for i := 0; i < 3; i++ {
		w.Insert(dataPktSeq(seqspace.Seq(i), []byte{0}))
	}
	if w.Region() != Safe {
		t.Errorf("3/16 region = %v, want safe", w.Region())
	}
	// 4/16 = 25%: warning.
	w.Insert(dataPktSeq(3, []byte{0}))
	if w.Region() != Warning {
		t.Errorf("4/16 region = %v, want warning", w.Region())
	}
	// 12/16 = 75%: critical.
	for i := 4; i < 12; i++ {
		w.Insert(dataPktSeq(seqspace.Seq(i), []byte{0}))
	}
	if w.Region() != Critical {
		t.Errorf("12/16 region = %v, want critical", w.Region())
	}
	if w.Empty() != 4 {
		t.Errorf("Empty = %d, want 4", w.Empty())
	}
	// An out-of-order packet deep in the window counts toward fill: a
	// fresh window with only seq 13 present is already critical — this
	// is how loss-induced reordering drives the paper's rate requests.
	w2 := NewReceiveWindow(16, 0)
	w2.Insert(dataPktSeq(13, []byte{0}))
	if w2.Fill() != 14 {
		t.Errorf("Fill with ooo at 13 = %d, want 14", w2.Fill())
	}
	if w2.Region() != Critical {
		t.Errorf("ooo fill region = %v, want critical", w2.Region())
	}
}

func TestReceiveWindowReadPartialPacket(t *testing.T) {
	w := NewReceiveWindow(8, 0)
	w.Insert(dataPktSeq(0, []byte("abcdef")))
	buf := make([]byte, 4)
	n, _ := w.Read(buf)
	if n != 4 || string(buf) != "abcd" {
		t.Fatalf("partial read = %d %q", n, buf)
	}
	if w.Base() != 0 {
		t.Error("base advanced before the packet was fully consumed")
	}
	n, _ = w.Read(buf)
	if n != 2 || string(buf[:2]) != "ef" {
		t.Fatalf("second read = %d %q", n, buf[:2])
	}
	if w.Base() != 1 {
		t.Error("base did not advance after full consumption")
	}
}

func TestReceiveWindowFIN(t *testing.T) {
	w := NewReceiveWindow(8, 0)
	w.Insert(dataPktSeq(0, []byte("xy")))
	p := dataPktSeq(1, []byte("z"))
	p.Flags = packet.FlagFIN
	w.Insert(p)
	if !w.PeekFIN() {
		t.Error("PeekFIN missed a reassembled FIN")
	}
	buf := make([]byte, 10)
	n, fin := w.Read(buf)
	if n != 3 || !fin {
		t.Fatalf("Read = %d,%v, want 3,true", n, fin)
	}
	if string(buf[:3]) != "xyz" {
		t.Errorf("stream = %q", buf[:3])
	}
}

func TestReceiveWindowEmptyFINPacket(t *testing.T) {
	w := NewReceiveWindow(8, 0)
	p := dataPktSeq(0, nil)
	p.Flags = packet.FlagFIN
	w.Insert(p)
	buf := make([]byte, 4)
	n, fin := w.Read(buf)
	if n != 0 || !fin {
		t.Fatalf("empty FIN read = %d,%v", n, fin)
	}
	if w.Base() != 1 {
		t.Error("empty FIN did not advance base")
	}
}

func TestGapCount(t *testing.T) {
	g := Gap{From: 5, To: 9}
	if g.Count() != 4 {
		t.Errorf("Gap count = %d", g.Count())
	}
}

// Property: any permutation of packet arrivals (with duplicates) inside
// the window reassembles the exact original stream.
func TestPropReassemblyAnyOrder(t *testing.T) {
	f := func(order []uint8, dup []uint8, seed uint8) bool {
		const n = 24
		w := NewReceiveWindow(n, 0)
		want := make([]byte, n)
		for i := range want {
			want[i] = byte(i) ^ seed
		}
		mk := func(i int) *packet.Packet {
			p := dataPktSeq(seqspace.Seq(i), []byte{want[i]})
			if i == n-1 {
				p.Flags = packet.FlagFIN
			}
			return p
		}
		// Build an arrival order: a permutation from the fuzz input.
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		for i, o := range order {
			j := int(o) % n
			k := i % n
			perm[j], perm[k] = perm[k], perm[j]
		}
		for idx, i := range perm {
			w.Insert(mk(i))
			if idx < len(dup) {
				w.Insert(mk(int(dup[idx]) % n)) // duplicate injection
			}
		}
		got := make([]byte, 0, n)
		buf := make([]byte, 5)
		for {
			c, fin := w.Read(buf)
			got = append(got, buf[:c]...)
			if fin {
				break
			}
			if c == 0 {
				return false // stream stalled before FIN
			}
		}
		return bytes.Equal(got, want) && w.Base() == n && w.OOOCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Fill + Empty == Size whenever fill is within the window, and
// Missing gaps exactly cover [Next, HighestEnd) minus stored packets.
func TestPropFillAndGapsConsistent(t *testing.T) {
	f := func(seqs []uint8) bool {
		const size = 32
		w := NewReceiveWindow(size, 0)
		present := map[seqspace.Seq]bool{}
		for _, s := range seqs {
			seq := seqspace.Seq(s % (size + 8)) // some out-of-window
			res := w.Insert(dataPktSeq(seq, []byte{0}))
			if res == Accepted || res == AcceptedInOrder {
				present[seq] = true
			}
		}
		if w.Fill()+w.Empty() != size && w.Empty() != 0 {
			return false
		}
		// Gaps + present must tile [Next, HighestEnd).
		covered := map[seqspace.Seq]bool{}
		for _, g := range w.Missing(nil) {
			for s := g.From; seqspace.Before(s, g.To); s++ {
				if present[s] || covered[s] {
					return false
				}
				covered[s] = true
			}
		}
		for s := w.Next(); seqspace.Before(s, w.HighestEnd()); s++ {
			if !covered[s] && !present[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Rebase is the late-join anchor: an untouched window moves to the
// anchor sequence; any received or announced state refuses the move.
func TestReceiveWindowRebase(t *testing.T) {
	w := NewReceiveWindow(8, 0)
	if !w.Rebase(100) {
		t.Fatal("empty window refused Rebase")
	}
	if w.Base() != 100 || w.Next() != 100 {
		t.Fatalf("base=%d next=%d after Rebase, want 100,100", w.Base(), w.Next())
	}
	// The anchored window accepts the stream from there; below-anchor
	// history counts as already delivered, not a gap to NAK.
	if res := w.Insert(dataPktSeq(100, []byte{1})); res != AcceptedInOrder {
		t.Fatalf("insert at anchor: %v", res)
	}
	if res := w.Insert(dataPktSeq(99, []byte{0})); res != Duplicate {
		t.Fatalf("pre-anchor history: %v, want Duplicate", res)
	}
	if w.Rebase(200) {
		t.Error("non-empty window accepted Rebase")
	}
	// Announced-only state (a KEEPALIVE extended the frontier) also
	// pins the window: rebasing away would erase a visible loss.
	w2 := NewReceiveWindow(8, 0)
	w2.ExtendHighest(3)
	if w2.Rebase(50) {
		t.Error("window with announced gaps accepted Rebase")
	}
}
