package sender

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/packet"
	"repro/internal/rate"
	"repro/internal/sim"
)

// benchFeedbackPlane measures the sender-side cost of one feedback
// round: every reporter delivers one status packet (a flat receiver's
// UPDATE, or a repair head's AGG_UPDATE speaking for its subtree),
// then the sender ticks. The window is kept half-empty so release
// never stalls and the measurement isolates the feedback path.
func benchFeedbackPlane(b *testing.B, reporters, subtree int) {
	s := New(Config{
		SndBuf:     64 * (1000 + packet.HeaderSize),
		MSS:        1000,
		Mode:       HRMC,
		InitialRTT: 10 * sim.Millisecond,
		Rate:       rate.Config{MinRate: 1e6, MaxRate: 1e8, MSS: 1000},
	})
	now := sim.Time(0)
	s.Write(now, make([]byte, 32*1000))
	now += kernel.Jiffy
	s.Tick(now)
	s.Outgoing()
	for i := 0; i < reporters; i++ {
		s.HandlePacket(now, packet.NodeID(i+1),
			&packet.Packet{Header: packet.Header{Type: packet.TypeJoin, Seq: 0}})
	}
	s.Outgoing()

	report := &packet.Packet{Header: packet.Header{Type: packet.TypeUpdate, Seq: 10}}
	if subtree > 0 {
		report = &packet.Packet{Header: packet.Header{
			Type: packet.TypeAggUpdate, Seq: 10, Length: uint32(subtree),
		}}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		now += kernel.Jiffy
		for i := 0; i < reporters; i++ {
			s.HandlePacket(now, packet.NodeID(i+1), report)
		}
		s.Tick(now)
		s.Outgoing()
	}
}

// BenchmarkFeedbackPlane compares a flat population reporting straight
// to the sender against the same population folded behind repair heads
// (~1% of the population, as in the netsim hierarchy scenario): one op
// is one full feedback round for the whole group.
func BenchmarkFeedbackPlane(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		heads := n / 100
		b.Run(fmt.Sprintf("flat/n=%d", n), func(b *testing.B) {
			benchFeedbackPlane(b, n, 0)
		})
		b.Run(fmt.Sprintf("hier/n=%d", n), func(b *testing.B) {
			benchFeedbackPlane(b, heads, (n-heads)/heads)
		})
	}
}
