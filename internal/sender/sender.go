// Package sender implements the H-RMC sender of Figure 8 as a sans-I/O
// state machine: the Application Interface (fragmentation into the send
// window), the per-jiffy Transmitter, the Feedback Processor, the
// Retransmitter, the Keepalive Controller, and probe_members — the
// buffer-release safety check that distinguishes H-RMC from the pure
// NAK-based RMC baseline.
//
// The machine is driven from outside: the owner writes stream data with
// Write, feeds arriving feedback with HandlePacket, runs the transmit
// tick with Tick, and drains queued outgoing packets with Outgoing.
package sender

import (
	"repro/internal/fec"
	"repro/internal/kernel"
	"repro/internal/membership"
	"repro/internal/packet"
	"repro/internal/rate"
	"repro/internal/rtt"
	"repro/internal/seqspace"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/window"
)

// Mode selects the protocol variant.
type Mode int

const (
	// HRMC guarantees reliability: the window advances only when every
	// member is known to hold the data, probing members whose state is
	// unknown.
	HRMC Mode = iota
	// RMC is the original protocol: anonymous membership, release purely
	// on the MINBUF timer; a NAK for released data earns a NAK_ERR.
	RMC
)

func (m Mode) String() string {
	if m == RMC {
		return "RMC"
	}
	return "H-RMC"
}

// Silent-head failover defaults (see Config.HeadSilenceTimeout and
// Config.FailoverGrace). The eviction timeout is several AGG_UPDATE
// periods plus margin; the grace covers a leaf-side failover detection
// plus a JOIN round trip.
const (
	DefaultHeadSilenceTimeout = 10 * sim.Second
	DefaultFailoverGrace      = 5 * sim.Second
)

// Config parametrizes a sender.
type Config struct {
	LocalPort, RemotePort uint16
	// SndBuf is the per-socket kernel send buffer in bytes; it bounds
	// the send window.
	SndBuf int
	// MSS is the data payload size per packet.
	MSS int
	// Mode selects H-RMC or the RMC baseline.
	Mode Mode
	// InitialSeq is the stream's first sequence number.
	InitialSeq seqspace.Seq
	// MinBufRTTs is the minimum time a transmitted packet stays buffered
	// before it becomes a release candidate, in round trips; the paper
	// sets MINBUF = 10.
	MinBufRTTs int
	// Rate configures the rate-based flow-control component.
	Rate rate.Config
	// InitialRTT seeds the worst-receiver round-trip estimator.
	InitialRTT sim.Time
	// KeepaliveMax caps the exponential keepalive backoff; the paper
	// uses 2 seconds.
	KeepaliveMax sim.Time
	// ExpectedReceivers, when positive, holds buffer release (not
	// transmission) until that many receivers have joined, protecting
	// the start of stream in deployments where the population is known.
	ExpectedReceivers int

	// EarlyProbeRTTs is the early-probe extension (Section 7, item 1):
	// when positive, probe lagging receivers this many round trips
	// before the release deadline instead of at it, hiding the probe
	// round trip behind the tail of the MINBUF wait.
	EarlyProbeRTTs float64
	// MulticastProbeThreshold is the multicast-probe extension (Section
	// 7, item 2): when positive and at least this many receivers need
	// probing, send one multicast PROBE instead of unicasts.
	MulticastProbeThreshold int
	// LocalRecovery enables the local-recovery extension (Section 7,
	// item 3): NAK-triggered retransmissions are deferred half a round
	// trip so a peer's multicast repair can serve the group first, and
	// repairs the sender observes cancel the matching retransmissions.
	LocalRecovery bool
	// FECGroupSize enables the forward-error-correction extension
	// (Section 7, item 4): one best-effort XOR parity packet is
	// multicast per this many first-transmission data packets, letting
	// receivers rebuild single losses without a NAK round trip. Zero
	// disables FEC.
	FECGroupSize int
	// TombstoneTTL bounds how long the final state of a departed member
	// is remembered for the stale-NAK guard. Under sustained join/leave
	// churn the departed map would otherwise grow without bound; a
	// straggler NAK older than this is vanishingly unlikely and merely
	// earns a harmless NAK_ERR. Zero means 30 seconds.
	TombstoneTTL sim.Time
	// HeadSilenceTimeout evicts a repair head that has gone completely
	// silent — no AGG_UPDATE, escalated NAK, or any other feedback — for
	// this long. A healthy head speaks at least every AggregatePeriod, so
	// sustained silence means the head process died without a LEAVE and
	// its entry would otherwise stall the release path forever. Zero
	// means 10 seconds; negative disables the sweep.
	HeadSilenceTimeout sim.Time
	// FailoverGrace holds buffer release at an evicted head's last
	// reported subtree minimum for this long after the eviction, giving
	// the head's orphaned leaves time to detect the death themselves,
	// re-JOIN directly, and report their true positions — without the
	// fence the release path would treat the shrunken membership table as
	// complete and free data the orphans still need. Zero means 5
	// seconds; negative disables the fence.
	FailoverGrace sim.Time

	// Stats receives counters; nil allocates a private set.
	Stats *stats.Sender
	// Trace receives protocol events; nil disables tracing.
	Trace trace.Sink
}

func (c *Config) sanitize() {
	if c.MSS <= 0 {
		c.MSS = 1400
	}
	if c.SndBuf <= 0 {
		c.SndBuf = 64 << 10
	}
	if c.MinBufRTTs <= 0 {
		c.MinBufRTTs = 10
	}
	if c.Rate.MSS == 0 {
		c.Rate.MSS = c.MSS + packet.HeaderSize // pace in wire bytes
	}
	if c.Rate.MinRate == 0 && c.Rate.MaxRate == 0 {
		def := rate.DefaultConfig()
		def.MSS = c.MSS
		c.Rate = def
	}
	if c.KeepaliveMax <= 0 {
		c.KeepaliveMax = 2 * sim.Second
	}
	if c.TombstoneTTL <= 0 {
		c.TombstoneTTL = 30 * sim.Second
	}
	if c.HeadSilenceTimeout == 0 {
		c.HeadSilenceTimeout = DefaultHeadSilenceTimeout
	} else if c.HeadSilenceTimeout < 0 {
		c.HeadSilenceTimeout = 0
	}
	if c.FailoverGrace == 0 {
		c.FailoverGrace = DefaultFailoverGrace
	} else if c.FailoverGrace < 0 {
		c.FailoverGrace = 0
	}
	if c.Stats == nil {
		c.Stats = &stats.Sender{}
	}
}

// Dest is where an outgoing packet goes.
type Dest struct {
	// Multicast packets go to the whole group; otherwise Node is the
	// receiver's unicast address.
	Multicast bool
	Node      packet.NodeID
}

// Out is one outgoing packet with its destination.
type Out struct {
	Pkt  *packet.Packet
	Dest Dest
	// Windowed marks a packet still owned by the send window (a DATA
	// transmission or retransmission emitted without cloning). The
	// driver must not hold Pkt or its payload past the point where it
	// hands control back to the machine, unless it covers the overlap
	// with packet.Retain: the window releases (packet.Put) the buffer
	// as soon as feedback allows.
	Windowed bool
}

// retransReq is one queued retransmission range; notBefore defers it
// under the local-recovery extension.
type retransReq struct {
	gap       window.Gap
	notBefore sim.Time
}

// tombstone is the remembered final state of a departed member. head
// marks a departed (or evicted) repair head: its recorded state was a
// subtree minimum, not the member's own monotonic frontier, so the
// stale-NAK guard must not silently swallow NAKs against it — a leaf
// behind that minimum deserves an authoritative NAK_ERR.
type tombstone struct {
	next seqspace.Seq
	at   sim.Time
	head bool
}

// Sender is the H-RMC sender state machine. Not safe for concurrent use;
// drivers serialize access.
type Sender struct {
	cfg     Config
	wnd     *window.SendWindow
	members membership.Table
	rc      *rate.Controller
	est     *rtt.Estimator
	st      *stats.Sender

	out []Out

	// Retransmission request ranges, coalesced by the Retransmitter.
	retrans []retransReq

	// Keepalive Controller state.
	lastSendActivity sim.Time
	kaTimer          kernel.Timer
	kaBackoff        sim.Time

	closed     bool // Close called; a FIN packet is (or will be) queued
	finQueued  bool
	pendingFIN bool // FIN packet could not be inserted yet (window full)

	// judged is the next sequence number whose release decision has not
	// yet been scored for the Figure 3 metric: each packet is judged
	// exactly once, at the moment its MINBUF deadline first passes,
	// independent of whether H-RMC then stalls the release.
	judged    seqspace.Seq
	stalled   bool // window release is currently blocked on receiver info
	primed    bool // first transmit tick has granted its jiffy budget
	maxJoined int
	// cutEpoch is snd_nxt at the last NAK-driven rate cut: NAKs for
	// data sent before the cut describe the same loss event and do not
	// cut again (the rate-based analogue of TCP's one-cut-per-window).
	cutEpoch    seqspace.Seq
	cutEpochSet bool
	// departed records the final cumulative state of members that left,
	// so the stale-NAK guard in onNak still recognises a straggler
	// (reordered or duplicated) NAK from a receiver that has since sent
	// LEAVE — without it, release after the last LEAVE empties the
	// window and the straggler would earn a spurious NAK_ERR. Entries
	// expire after TombstoneTTL (swept from the tick) so churn cannot
	// grow the map without bound.
	departed      map[packet.NodeID]tombstone
	lastTombSweep sim.Time

	// Silent-head failover state: lastHeadSweep amortizes the eviction
	// sweep; headFence/headFenceTill hold release at the lowest evicted
	// head's last reported subtree minimum until the grace expires (see
	// Config.FailoverGrace).
	lastHeadSweep sim.Time
	headFence     seqspace.Seq
	headFenceTill sim.Time

	// fenc is the FEC parity encoder (extension), nil when disabled.
	// fecLastAdd is the last time a first transmission fed it; when the
	// pipeline then sits idle with a group half-open, Tick flushes the
	// partial group's parity so the sent prefix doesn't remain
	// unprotected across a stall (see Encoder.Flush).
	fenc       *fec.Encoder
	fecLastAdd sim.Time
}

// New creates a sender.
func New(cfg Config) *Sender {
	cfg.sanitize()
	s := &Sender{
		cfg:    cfg,
		wnd:    window.NewSendWindow(cfg.SndBuf, cfg.InitialSeq),
		rc:     rate.New(cfg.Rate),
		est:    rtt.New(cfg.InitialRTT),
		st:     cfg.Stats,
		judged: cfg.InitialSeq,
	}
	if cfg.FECGroupSize > 0 {
		s.fenc = fec.NewEncoder(cfg.FECGroupSize)
	}
	return s
}

// Stats returns the sender's counters.
func (s *Sender) Stats() *stats.Sender { return s.st }

// pacingRTT is the round-trip time used for timer-granular decisions
// (growth pacing, cut pacing, hold times). A 10 ms-jiffy kernel cannot
// act on sub-tick round trips, so the estimate is floored at two
// jiffies.
func (s *Sender) pacingRTT() sim.Time {
	rtt := s.est.RTT()
	if rtt < 2*kernel.Jiffy {
		rtt = 2 * kernel.Jiffy
	}
	return rtt
}

// RTT returns the current worst-receiver round-trip estimate.
func (s *Sender) RTT() sim.Time { return s.est.RTT() }

// Rate returns the current transmission rate in bytes/second.
func (s *Sender) Rate(now sim.Time) float64 { return s.rc.Rate(now) }

// MaxRate returns the current flow-control ceiling in bytes/second.
func (s *Sender) MaxRate() float64 { return s.rc.Ceiling() }

// MinRate returns the rate-control floor in bytes/second — the
// one-packet-per-jiffy pacing minimum the flow cannot go below.
func (s *Sender) MinRate() float64 { return s.rc.MinRate() }

// SetMaxRate adjusts the flow-control ceiling at runtime. The session
// layer's fair-share governor calls this every tick to keep the
// aggregate rate of all flows sharing a line under a global budget; the
// driver must serialize it with the other machine entry points.
func (s *Sender) SetMaxRate(bytesPerSec float64) { s.rc.SetCeiling(bytesPerSec) }

// Members returns the current receiver count.
func (s *Sender) Members() int { return s.members.Len() }

// MaxJoined returns the high-water mark of the membership table — the
// most entries (leaves or repair heads) the sender ever tracked at
// once. The hierarchy scale tests assert this stays O(heads).
func (s *Sender) MaxJoined() int { return s.maxJoined }

// WindowBytes returns the bytes currently buffered in the send window.
func (s *Sender) WindowBytes() int { return s.wnd.Bytes() }

// Outgoing drains the queued outgoing packets in order.
func (s *Sender) Outgoing() []Out {
	out := s.out
	s.out = nil
	return out
}

// HasOutgoing reports whether packets are queued.
func (s *Sender) HasOutgoing() bool { return len(s.out) > 0 }

// Recycle gives a slice obtained from Outgoing back to the sender so
// emit reuses its capacity instead of regrowing from nil every drain
// cycle. The caller must be completely done with the slice; drivers
// that keep the slice (or don't care) simply never call it.
func (s *Sender) Recycle(out []Out) {
	if s.out != nil || cap(out) == 0 {
		return
	}
	for i := range out {
		out[i] = Out{}
	}
	s.out = out[:0]
}

func (s *Sender) emit(p *packet.Packet, d Dest) {
	p.SrcPort = s.cfg.LocalPort
	p.DstPort = s.cfg.RemotePort
	p.RateAdv = s.rc.Advertised()
	s.out = append(s.out, Out{Pkt: p, Dest: d})
}

// emitWindowed queues a window-owned packet without cloning it (see
// Out.Windowed).
func (s *Sender) emitWindowed(p *packet.Packet, d Dest) {
	p.SrcPort = s.cfg.LocalPort
	p.DstPort = s.cfg.RemotePort
	p.RateAdv = s.rc.Advertised()
	s.out = append(s.out, Out{Pkt: p, Dest: d, Windowed: true})
}

// Write fragments b into DATA packets and inserts them into the send
// window (hrmc_sendmsg). It returns the number of bytes consumed, which
// is less than len(b) when the window byte budget fills; the caller
// retries after the window advances. Write after Close panics: that is a
// caller bug.
func (s *Sender) Write(now sim.Time, b []byte) int {
	if s.closed {
		panic("sender: Write after Close")
	}
	n := 0
	for n < len(b) {
		chunk := len(b) - n
		if chunk > s.cfg.MSS {
			chunk = s.cfg.MSS
		}
		// Chunk straight into a pooled packet: the payload backing array
		// is allocated (or recycled) once and lives until the window
		// releases the packet — one allocation per buffer lifetime, the
		// hold-until-release discipline of the paper's sk_buff handling.
		p := packet.GetBuf(chunk)
		p.Type = packet.TypeData
		p.Length = uint32(chunk)
		p.Payload = append(p.Payload[:0], b[n:n+chunk]...)
		if _, err := s.wnd.Insert(p); err != nil {
			packet.Put(p)
			break
		}
		n += chunk
	}
	return n
}

// Close marks the end of the stream: a zero-length FIN DATA packet is
// appended after all written data. Reliable delivery of the FIN is
// governed by the same window machinery as data.
func (s *Sender) Close(now sim.Time) {
	if s.closed {
		return
	}
	s.closed = true
	s.pendingFIN = true
	s.tryQueueFIN()
}

func (s *Sender) tryQueueFIN() {
	if !s.pendingFIN {
		return
	}
	p := packet.Get()
	p.Type = packet.TypeData
	p.Flags = packet.FlagFIN
	if _, err := s.wnd.Insert(p); err == nil {
		s.pendingFIN = false
		s.finQueued = true
	} else {
		packet.Put(p)
	}
}

// Done reports whether the stream is fully transmitted and released: the
// FIN was queued and every packet has left the send window. Under H-RMC
// this implies every member held all data at release time.
func (s *Sender) Done() bool {
	return s.closed && s.finQueued && !s.pendingFIN && s.wnd.Len() == 0
}

// HandlePacket processes receiver feedback (hrmc_master_rcv on the send
// path). from is the receiver's unicast address.
func (s *Sender) HandlePacket(now sim.Time, from packet.NodeID, p *packet.Packet) {
	switch p.Type {
	case packet.TypeData:
		// A peer's multicast repair (local-recovery extension): the data
		// is being served by the group, so drop any matching deferred
		// retransmission.
		if s.cfg.LocalRecovery {
			s.onRepairHeard(now, p)
		}
	case packet.TypeJoin:
		s.onJoin(now, from, p)
	case packet.TypeLeave:
		s.onLeave(now, from, p)
	case packet.TypeNak:
		s.onNak(now, from, p)
	case packet.TypeControl:
		s.onControl(now, from, p)
	case packet.TypeUpdate:
		s.onUpdate(now, from, p)
	case packet.TypeAggUpdate:
		s.onAggUpdate(now, from, p)
	}
}

func (s *Sender) onJoin(now sim.Time, from packet.NodeID, p *packet.Packet) {
	s.st.JoinsReceived++
	m, added := s.members.Add(from, now)
	// An explicit JOIN — even from a known address — marks a (re)start:
	// the machine behind the address is new, and packets transmitted
	// before this moment are pre-history for RTT sampling purposes.
	m.JoinedAt = now
	s.members.Update(from, seqspace.Seq(p.Seq), now)
	if added {
		trace.Emit(s.cfg.Trace, now, trace.MemberJoined, p.Seq, int64(s.members.Len()))
	}
	if added && s.members.Len() > s.maxJoined {
		s.maxJoined = s.members.Len()
	}
	// A direct JOIN from a former leaf of an evicted head re-homes one
	// orphan. The gauge is an approximation — the sender cannot tell a
	// re-homing orphan from a genuinely new receiver — but it decays to
	// zero as the orphaned population drains, which is the signal the
	// operator needs.
	if added && s.st.OrphanedLeaves > 0 {
		s.st.OrphanedLeaves--
	}
	// The JOIN answers the first data packet the receiver saw; if that
	// packet (seq one below the receiver's next-expected) is still
	// buffered and was sent exactly once, its send time gives an
	// unambiguous round-trip sample (Karn), used to estimate the round
	// trip to the most distant receiver.
	if added {
		if e := s.wnd.Entry(seqspace.Seq(p.Seq) - 1); e != nil && e.Tries == 1 {
			s.est.Sample(now - e.LastSent)
		}
	}
	s.emit(&packet.Packet{Header: packet.Header{
		Type: packet.TypeJoinResponse,
		Seq:  p.Seq,
	}}, Dest{Node: from})
}

func (s *Sender) onLeave(now sim.Time, from packet.NodeID, p *packet.Packet) {
	s.st.LeavesReceived++
	s.members.Update(from, seqspace.Seq(p.Seq), now)
	if m := s.members.Lookup(from); m != nil && m.KnownState {
		if s.departed == nil {
			s.departed = make(map[packet.NodeID]tombstone)
		}
		s.departed[from] = tombstone{next: m.NextExpected, at: now, head: m.Head}
	}
	s.members.Remove(from)
	trace.Emit(s.cfg.Trace, now, trace.MemberLeft, p.Seq, int64(s.members.Len()))
	s.emit(&packet.Packet{Header: packet.Header{
		Type: packet.TypeLeaveResponse,
		Seq:  p.Seq,
	}}, Dest{Node: from})
}

func (s *Sender) onNak(now sim.Time, from packet.NodeID, p *packet.Packet) {
	s.st.NaksReceived++
	// NAKs carry the receiver's next expected sequence number in the
	// rate-advertisement field (see the receiver package).
	s.sampleProbeRTT(now, from)
	s.members.Update(from, seqspace.Seq(p.RateAdv), now)
	gap := window.Gap{From: seqspace.Seq(p.Seq), To: seqspace.Seq(p.Seq) + seqspace.Seq(p.Length)}
	if p.Length == 0 {
		gap.To = gap.From + 1
	}
	// Per the paper, the worst-receiver RTT estimate "continues
	// updating ... based on incoming NAKs and rate-reduce requests":
	// the NAKed packet's first (sole) transmission to NAK arrival is a
	// Karn-unambiguous upper bound on the receiver's round trip. Karn
	// cuts both ways: the NAK itself must be the receiver's first ask
	// (Tries == 0) — a re-asked NAK's elapsed time includes the
	// receiver's retry backoff, which can reach seconds and would
	// poison the pacing estimate. The packet must also postdate the
	// requester's JOIN: a restarted head or re-homed leaf NAKs history
	// transmitted before it existed, and that elapsed time measures the
	// outage, not the network.
	if e := s.wnd.Entry(gap.From); e != nil && e.Tries == 1 && p.Tries == 0 {
		if m := s.members.Lookup(from); m != nil && e.FirstSent >= m.JoinedAt {
			s.est.Sample(now - e.FirstSent)
		}
	}
	// Clamp the request to the buffered range; anything below the window
	// base has been released.
	if seqspace.Before(gap.From, s.wnd.Base()) {
		if seqspace.AtOrBefore(gap.To, s.wnd.Base()) {
			// Entirely released. If the requester's own (monotonic)
			// recorded state already covers the range, this NAK is a
			// reordered stale report of a loss the receiver has since
			// recovered from — there is nothing to repair and nothing to
			// mourn, so it is dropped. Only an uncovered request for
			// released data earns a NAK_ERR. Repair heads (live or
			// tombstoned) are exempt from the silent drop: their recorded
			// state is a non-monotonic subtree minimum, so "covered" proves
			// nothing about the leaf that escalated the NAK, and an
			// escalation for released data must always draw the explicit
			// refusal — the head turns it into a HEAD_DECLINE and the leaf
			// stops waiting. The NAK_ERR echoes the requested length so the
			// refusal covers the whole range, not just its first packet.
			if m := s.members.Lookup(from); m != nil {
				if !m.Head && m.KnownState && seqspace.AtOrAfter(m.NextExpected, gap.To) {
					return
				}
			} else if tb, ok := s.departed[from]; ok && !tb.head && seqspace.AtOrAfter(tb.next, gap.To) {
				return
			}
			// The request cannot be satisfied.
			s.st.NakErrsSent++
			trace.Emit(s.cfg.Trace, now, trace.NakErrSent, p.Seq, 0)
			s.emit(&packet.Packet{Header: packet.Header{
				Type:   packet.TypeNakErr,
				Seq:    p.Seq,
				Length: p.Length,
			}}, Dest{Node: from})
			return
		}
		gap.From = s.wnd.Base()
	}
	if seqspace.After(gap.To, s.wnd.Next()) {
		gap.To = s.wnd.Next()
	}
	if gap.Count() > 0 {
		req := retransReq{gap: gap}
		if s.cfg.LocalRecovery {
			// Give peer repairs half a round trip's head start.
			req.notBefore = now + s.pacingRTT()/2
		}
		s.retrans = append(s.retrans, req)
	}
	// A NAK signals loss: cut the rate once per loss epoch — NAKs for
	// data transmitted before the previous cut report the same event.
	if !s.cutEpochSet || seqspace.AtOrAfter(seqspace.Seq(p.Seq), s.cutEpoch) {
		s.cutEpoch = s.wnd.Next()
		s.cutEpochSet = true
		s.rc.OnCongestion(now, s.pacingRTT(), 0)
		trace.Emit(s.cfg.Trace, now, trace.RateCut, p.Seq, int64(s.rc.Rate(now)))
	}
}

func (s *Sender) onControl(now sim.Time, from packet.NodeID, p *packet.Packet) {
	s.sampleProbeRTT(now, from)
	// Rate requests also feed the worst-receiver RTT estimate: the
	// receiver's next-expected field names the most recent in-order
	// packet it holds (Seq-1); its single transmission bounds the loop.
	if e := s.wnd.Entry(seqspace.Seq(p.Seq) - 1); e != nil && e.Tries == 1 {
		s.est.Sample(now - e.FirstSent)
	}
	s.members.Update(from, seqspace.Seq(p.Seq), now)
	if p.URG() {
		s.st.UrgentReceived++
		// The urgent stop spans two round trips of network quiet; it is
		// not a timer-granular pacing decision, so the measured RTT is
		// used unfloored — on a fast network a transiently overrun
		// receiver costs microseconds of quiet, not two jiffies. A
		// still-critical receiver extends the stop with further urgent
		// requests.
		s.rc.OnUrgent(now, s.est.RTT())
		trace.Emit(s.cfg.Trace, now, trace.RateStopped, p.Seq, 0)
	} else {
		s.st.RateRequestsReceived++
		s.rc.OnCongestion(now, s.pacingRTT(), float64(p.RateAdv))
		trace.Emit(s.cfg.Trace, now, trace.RateCut, p.Seq, int64(s.rc.Rate(now)))
	}
}

func (s *Sender) onUpdate(now sim.Time, from packet.NodeID, p *packet.Packet) {
	s.st.UpdatesReceived++
	s.sampleProbeRTT(now, from)
	s.members.Update(from, seqspace.Seq(p.Seq), now)
}

// onAggUpdate processes one aggregated UPDATE from a repair head
// (hierarchical recovery extension): Seq is the minimum next-expected
// sequence number over the head's whole subtree, Length its downstream
// member count. The head is registered as a member if its JOIN was
// lost, and its entry is updated non-monotonically — a new leaf joining
// behind the subtree front legitimately regresses the minimum.
func (s *Sender) onAggUpdate(now sim.Time, from packet.NodeID, p *packet.Packet) {
	s.st.AggUpdatesReceived++
	s.sampleProbeRTT(now, from)
	m, added := s.members.Add(from, now)
	if added {
		trace.Emit(s.cfg.Trace, now, trace.MemberJoined, p.Seq, int64(s.members.Len()))
		if s.members.Len() > s.maxJoined {
			s.maxJoined = s.members.Len()
		}
	}
	wasHead := m.Head
	s.members.UpdateAggregate(from, seqspace.Seq(p.Seq), int(p.Length), now)
	// A head announcing itself (first AGG_UPDATE after a restart, or a
	// re-JOIN after eviction) reclaims its reported subtree from the
	// orphan gauge: those leaves are spoken for again.
	if !wasHead && s.st.OrphanedLeaves > 0 {
		s.st.OrphanedLeaves -= int64(p.Length)
		if s.st.OrphanedLeaves < 0 {
			s.st.OrphanedLeaves = 0
		}
	}
}

// onRepairHeard cancels deferred retransmissions covered by a repair a
// peer multicast (the sender, like any group member, hears repairs).
func (s *Sender) onRepairHeard(now sim.Time, p *packet.Packet) {
	s.st.RepairsHeard++
	seq := seqspace.Seq(p.Seq)
	kept := s.retrans[:0]
	for _, req := range s.retrans {
		g := req.gap
		if !seqspace.InWindow(seq, g.From, g.Count()) {
			kept = append(kept, req)
			continue
		}
		s.st.RetransCancelled++
		// Split the range around the repaired sequence number.
		if seqspace.Before(g.From, seq) {
			kept = append(kept, retransReq{gap: window.Gap{From: g.From, To: seq}, notBefore: req.notBefore})
		}
		if seqspace.Before(seq+1, g.To) {
			kept = append(kept, retransReq{gap: window.Gap{From: seq + 1, To: g.To}, notBefore: req.notBefore})
		}
	}
	s.retrans = kept
}

// sampleProbeRTT takes a Karn-safe round-trip sample when feedback
// answers an outstanding single-transmission probe.
func (s *Sender) sampleProbeRTT(now sim.Time, from packet.NodeID) {
	m := s.members.Lookup(from)
	if m == nil || !m.ProbeOutstanding || m.ProbeTries != 1 {
		return
	}
	// Any feedback from the probed receiver answers the probe for RTT
	// purposes; membership.Update clears the outstanding flag only when
	// the response actually covers the probed data.
	s.est.Sample(now - m.LastProbed)
	m.ProbeTries = 2 // consume the sample; further feedback is ambiguous
}

// Tick is the Transmitter (transmit_timer): it runs every jiffy. It
// retransmits requested data first, transmits new data within the rate
// allowance, attempts window release (probing under H-RMC), and drives
// the Keepalive Controller.
func (s *Sender) Tick(now sim.Time) {
	s.tryQueueFIN()
	if !s.primed {
		// The transmit timer's first tick grants the budget of one full
		// jiffy, as if the timer had been running.
		s.primed = true
		s.rc.Allowance(now - kernel.Jiffy)
	}
	allowance := s.rc.Allowance(now)
	sentAny := false

	// Retransmitter: requested data has priority over new data.
	allowance, resent := s.retransmit(now, allowance)
	sentAny = sentAny || resent

	// New data within the rate window. Tokens accumulate across ticks
	// (up to the burst cap, which always admits one full packet), so
	// rates below one packet per jiffy still pace correctly.
	for {
		seq, e := s.wnd.FirstUnsent()
		if e == nil {
			break
		}
		size := e.Pkt.WireSize()
		if size > allowance {
			break
		}
		s.transmit(now, seq, e, false)
		allowance -= size
		s.rc.Spend(size)
		sentAny = true
	}

	// FEC idle flush: a parity group left half-open across a pipeline
	// pause (window stall, rate gate, stream tail) would leave its sent
	// prefix unprotected past the receivers' NAK-defer window; close it
	// early with a short-group parity instead. One jiffy of silence is
	// the signal — at line rate groups complete well inside a jiffy, so
	// this only fires when transmission genuinely paused.
	if s.fenc != nil && s.fenc.Pending() > 0 && now-s.fecLastAdd >= kernel.Jiffy {
		if parity := s.fenc.Flush(); parity != nil {
			s.st.FecParitySent++
			trace.Emit(s.cfg.Trace, now, trace.FecParitySent, parity.Seq, int64(parity.Length))
			s.emit(parity, Dest{Multicast: true})
		}
	}

	// Window release (buffer space reclamation).
	s.tryRelease(now)

	// Rate growth happens only while there is demand.
	if sentAny {
		s.rc.MaybeGrow(now, s.pacingRTT())
		s.lastSendActivity = now
		s.kaBackoff = 0
		s.kaTimer.Disarm()
	} else if s.needsKeepalive(now) {
		s.runKeepalive(now)
	}

	// Flow-control gauges for observers (session snapshots, control
	// plane): the rate actually being paced and its current ceiling,
	// plus the repair-tier shape of the membership table.
	s.st.RateBps = int64(s.rc.Rate(now))
	s.st.CeilingBps = int64(s.rc.Ceiling())
	s.st.RepairHeads = int64(s.members.Heads())
	s.st.DownstreamMembers = int64(s.members.Downstream())

	s.sweepSilentHeads(now)
	s.sweepTombstones(now)
}

// sweepSilentHeads evicts repair heads that have gone completely silent
// past the timeout (see Config.HeadSilenceTimeout). Like the tombstone
// sweep it is amortized: the table is walked at most every quarter
// timeout, so a dead head is detected within 1.25 timeouts at O(members)
// cost per sweep, not per tick. Each eviction tombstones the head (so
// straggler escalations still draw NAK_ERRs, never silence), arms the
// release fence at its last reported subtree minimum, and charges its
// reported downstream count to the orphaned-leaves gauge.
func (s *Sender) sweepSilentHeads(now sim.Time) {
	if s.cfg.HeadSilenceTimeout <= 0 || s.members.Heads() == 0 {
		return
	}
	if now-s.lastHeadSweep < s.cfg.HeadSilenceTimeout/4 {
		return
	}
	s.lastHeadSweep = now
	stale := s.members.StaleHeads(now, s.cfg.HeadSilenceTimeout, nil)
	for _, m := range stale {
		if m.KnownState {
			if s.departed == nil {
				s.departed = make(map[packet.NodeID]tombstone)
			}
			s.departed[m.Addr] = tombstone{next: m.NextExpected, at: now, head: true}
			if s.cfg.FailoverGrace > 0 {
				if s.headFenceTill == 0 || seqspace.Before(m.NextExpected, s.headFence) {
					s.headFence = m.NextExpected
				}
				if till := now + s.cfg.FailoverGrace; till > s.headFenceTill {
					s.headFenceTill = till
				}
			}
		}
		s.st.HeadsEvicted++
		s.st.OrphanedLeaves += int64(m.Members)
		trace.Emit(s.cfg.Trace, now, trace.HeadEvicted, uint32(m.NextExpected), int64(m.Members))
		s.members.Remove(m.Addr)
	}
}

// sweepTombstones evicts departed-member tombstones older than the TTL.
// The sweep itself is amortized: it walks the map at most once per TTL,
// so steady-state cost is O(expired) not O(departed) per tick.
func (s *Sender) sweepTombstones(now sim.Time) {
	if len(s.departed) == 0 || now-s.lastTombSweep < s.cfg.TombstoneTTL {
		return
	}
	s.lastTombSweep = now
	for addr, tb := range s.departed {
		if now-tb.at >= s.cfg.TombstoneTTL {
			delete(s.departed, addr)
		}
	}
}

// retransmit services the retransmission request list, multicasting the
// requested packets. Requests for a packet retransmitted within half a
// round trip are dropped: the retransmission is already in flight and
// several receivers NAKed the same loss.
func (s *Sender) retransmit(now sim.Time, allowance int) (int, bool) {
	if len(s.retrans) == 0 {
		return allowance, false
	}
	guard := s.pacingRTT() / 2
	sent := false
	pending := s.retrans
	s.retrans = nil
	for _, req := range pending {
		if req.notBefore > now {
			s.retrans = append(s.retrans, req)
			continue
		}
		g := req.gap
		for seq := g.From; seqspace.Before(seq, g.To); seq++ {
			e := s.wnd.Entry(seq)
			if e == nil || !e.Sent() {
				continue
			}
			if now-e.LastSent < guard {
				continue
			}
			if allowance <= 0 {
				// Out of rate budget: requeue the tail for the next tick.
				s.retrans = append(s.retrans, retransReq{gap: window.Gap{From: seq, To: g.To}})
				break
			}
			s.transmit(now, seq, e, true)
			allowance -= e.Pkt.WireSize()
			s.rc.Spend(e.Pkt.WireSize())
			sent = true
		}
	}
	return allowance, sent
}

// transmit multicasts one window entry. The window packet itself is
// emitted (no clone): the driver copies or encodes it before the next
// machine entry point runs, and the retransmit guard (half an RTT
// between transmissions of one sequence) keeps a single buffer from
// being emitted twice in one drain.
func (s *Sender) transmit(now sim.Time, seq seqspace.Seq, e *window.SendEntry, isRetrans bool) {
	e.Tries++
	if e.Tries == 1 {
		e.FirstSent = now
	}
	e.LastSent = now
	pkt := e.Pkt
	pkt.Seq = uint32(seq)
	pkt.Tries = uint8(min(e.Tries-1, 255))
	if isRetrans {
		s.st.Retransmissions++
		s.st.RetransBytes += int64(len(pkt.Payload))
		trace.Emit(s.cfg.Trace, now, trace.SendRetransmission, pkt.Seq, int64(len(pkt.Payload)))
	} else {
		s.st.PacketsSent++
		s.st.BytesSent += int64(len(pkt.Payload))
		trace.Emit(s.cfg.Trace, now, trace.SendData, pkt.Seq, int64(len(pkt.Payload)))
	}
	s.emitWindowed(pkt, Dest{Multicast: true})
	if !isRetrans && s.fenc != nil {
		// FEC extension: parity covers first transmissions only and is
		// itself best-effort (never retransmitted, not counted against
		// the rate allowance — a bounded 1/K overhead).
		if parity := s.fenc.Add(seq, e.Pkt.Flags, e.Pkt.Payload); parity != nil {
			s.st.FecParitySent++
			trace.Emit(s.cfg.Trace, now, trace.FecParitySent, parity.Seq, int64(parity.Length))
			s.emit(parity, Dest{Multicast: true})
		}
		s.fecLastAdd = now
		s.st.FecGroupRestarts = s.fenc.Restarts()
	}
}

// tryRelease advances the send window: a packet becomes a release
// candidate MINBUF round trips after its last transmission; under H-RMC
// it is released only when every member is known to hold it, otherwise
// the lacking members are probed and the window stalls.
func (s *Sender) tryRelease(now sim.Time) {
	s.stalled = false
	// Like the kernel, buffer space is reclaimed lazily: only when the
	// window lacks room for another packet, or when the stream is
	// closed and draining. With large kernel buffers packets therefore
	// sit well past their MINBUF deadline before release, which is why
	// buffer size improves the Figure 3 metric.
	if !s.closed && s.wnd.Free() >= s.cfg.MSS+packet.HeaderSize {
		return
	}
	minHold := sim.Time(s.cfg.MinBufRTTs) * s.pacingRTT()
	for {
		e := s.wnd.Front()
		if e == nil || !e.Sent() {
			return
		}
		seq := s.wnd.Base()
		// Failover fence: an evicted head's orphaned leaves are not in the
		// membership table yet, so AllPast would pass trivially over data
		// they still need. Hold the release at the evicted head's last
		// reported subtree minimum until the grace expires or the orphans
		// re-JOIN (their entries then gate the release the normal way).
		if s.headFenceTill != 0 && seqspace.AtOrAfter(seq, s.headFence) {
			if now < s.headFenceTill {
				s.stalled = true
				s.st.ReleaseStalls++
				return
			}
			s.headFenceTill = 0
		}
		complete := s.members.AllPast(seq)
		joined := s.cfg.ExpectedReceivers <= 0 || s.maxJoined >= s.cfg.ExpectedReceivers
		if now-e.LastSent < minHold {
			// Early release, for known populations only: the MINBUF hold
			// keeps the packet available for repair while the member
			// picture may still grow (a JOIN in flight) or shift. With
			// ExpectedReceivers set, once that many receivers have joined
			// and every current member's cumulative state covers seq, the
			// picture is provably final — no receiver that matters can
			// still NAK it — so H-RMC frees the buffer ahead of the
			// deadline. Unknown populations (and RMC, which has no member
			// state) always wait out the timer: the hold is their grace
			// period for late joiners. An entry transmitted at this very
			// timestamp is never released: it may still sit un-drained
			// (and un-retained) in the outgoing queue, and freeing it
			// would zero the emitted packet under the driver.
			known := s.cfg.ExpectedReceivers > 0 && s.maxJoined >= s.cfg.ExpectedReceivers
			if s.cfg.Mode != HRMC || !known || !complete || now == e.LastSent {
				if s.cfg.Mode == HRMC && s.cfg.EarlyProbeRTTs > 0 {
					s.maybeEarlyProbe(now, minHold)
				}
				return
			}
			if seq == s.judged {
				s.st.Releases++
				s.st.ReleasesCompleteInfo++
				s.judged++
			}
		} else {
			// Figure 3 metric: judge each packet once, at the moment its
			// MINBUF deadline first passes, regardless of mode and of
			// whether the release then proceeds.
			if seq == s.judged {
				s.st.Releases++
				if complete {
					s.st.ReleasesCompleteInfo++
				}
				s.judged++
			}
			if s.cfg.Mode == HRMC {
				if !joined {
					s.st.ReleaseStalls++
					s.stalled = true
					return
				}
				if !complete {
					s.st.ReleaseStalls++
					s.stalled = true
					trace.Emit(s.cfg.Trace, now, trace.ReleaseStall, uint32(seq), 0)
					s.probeLacking(now, seq)
					return
				}
			}
		}
		// RMC releases on the timer alone; a NAK for the data later
		// earns a NAK_ERR.
		e = s.wnd.Release()
		trace.Emit(s.cfg.Trace, now, trace.Release, uint32(seq), int64(e.Pkt.WireSize()))
		// The window's reference is done; the pool recycles the buffer
		// once any in-flight send (shared poller) drops its Retain.
		packet.Put(e.Pkt)
		e.Pkt = nil
	}
}

// TryRelease attempts window release outside the tick, with the same
// rules as the Transmitter's release step. Drivers call it right after
// feeding feedback (HandlePacket) so a blocked Write unblocks the
// moment an UPDATE completes the membership picture, instead of up to
// a jiffy later on the next tick.
func (s *Sender) TryRelease(now sim.Time) { s.tryRelease(now) }

// ReleaseBuffers force-releases every buffered packet back to the
// pool, bypassing the reliability rules. It is for teardown of an
// aborted flow only: the machine must not be asked to transmit
// afterwards.
func (s *Sender) ReleaseBuffers() {
	for {
		e := s.wnd.Release()
		if e == nil {
			return
		}
		packet.Put(e.Pkt)
		e.Pkt = nil
	}
}

// maybeEarlyProbe (extension) probes for the front packet before its
// release deadline so the answer arrives by the time the deadline hits.
func (s *Sender) maybeEarlyProbe(now sim.Time, minHold sim.Time) {
	e := s.wnd.Front()
	if e == nil || !e.Sent() {
		return
	}
	lead := sim.Time(s.cfg.EarlyProbeRTTs * float64(s.pacingRTT()))
	if now-e.LastSent < minHold-lead {
		return
	}
	seq := s.wnd.Base()
	if !s.members.AllPast(seq) {
		s.probeLacking(now, seq)
	}
}

// probeLacking unicasts PROBE packets to every member whose state does
// not cover seq, rate-limited per member by the probe timeout. With the
// multicast-probe extension enabled and enough lagging members, a single
// multicast PROBE is sent instead.
func (s *Sender) probeLacking(now sim.Time, seq seqspace.Seq) {
	lacking := s.members.Lacking(seq, nil)
	if len(lacking) == 0 {
		return
	}
	due := lacking[:0]
	for _, m := range lacking {
		if m.ProbeOutstanding && seqspace.AtOrBefore(seq, m.ProbeSeq) {
			// An equivalent probe is in flight: wait at least an RTO
			// (floored at two jiffies of timer granularity), backed off
			// exponentially with the per-member retry count.
			spacing := s.est.RTO()
			if spacing < 2*kernel.Jiffy {
				spacing = 2 * kernel.Jiffy
			}
			shift := m.ProbeTries - 1
			if shift > 6 {
				shift = 6
			}
			if shift > 0 {
				spacing <<= uint(shift)
			}
			if now-m.LastProbed < spacing {
				continue
			}
		}
		due = append(due, m)
	}
	if len(due) == 0 {
		return
	}
	if s.cfg.MulticastProbeThreshold > 0 && len(due) >= s.cfg.MulticastProbeThreshold {
		for _, m := range due {
			s.markProbed(m, seq, now)
		}
		s.st.MulticastProbesSent++
		trace.Emit(s.cfg.Trace, now, trace.ProbeSent, uint32(seq), int64(len(due)))
		s.emit(&packet.Packet{Header: packet.Header{
			Type: packet.TypeProbe,
			Seq:  uint32(seq),
		}}, Dest{Multicast: true})
		return
	}
	for _, m := range due {
		s.markProbed(m, seq, now)
		s.st.ProbesSent++
		trace.Emit(s.cfg.Trace, now, trace.ProbeSent, uint32(seq), 1)
		s.emit(&packet.Packet{Header: packet.Header{
			Type: packet.TypeProbe,
			Seq:  uint32(seq),
		}}, Dest{Node: m.Addr})
	}
}

func (s *Sender) markProbed(m *membership.Member, seq seqspace.Seq, now sim.Time) {
	if m.ProbeOutstanding && m.ProbeSeq == seq {
		m.ProbeTries++ // Karn: a re-probe makes the sample ambiguous
	} else {
		m.ProbeOutstanding = true
		m.ProbeSeq = seq
		m.ProbeTries = 1
	}
	m.LastProbed = now
}

// needsKeepalive reports whether the Keepalive Controller should run.
// Per the paper it covers application idle time, the period after an
// urgent rate request, and ticks when the window cannot be advanced for
// lack of receiver information. Mere rate pacing (tokens accruing toward
// the next data packet) is not idleness and must not trigger keepalives.
func (s *Sender) needsKeepalive(now sim.Time) bool {
	if s.st.PacketsSent == 0 || s.Done() {
		return false
	}
	if s.stalled {
		return true
	}
	if _, stopped := s.rc.StoppedUntil(); stopped {
		return true
	}
	if _, e := s.wnd.FirstUnsent(); e == nil {
		// No new data to send: the application is idle (or everything
		// is in flight awaiting release).
		return true
	}
	return false
}

// runKeepalive sends KEEPALIVE packets carrying the last sequence number
// transmitted, exponentially backed off to KeepaliveMax (2 s in the
// paper).
func (s *Sender) runKeepalive(now sim.Time) {
	if s.kaTimer.Armed() && !s.kaTimer.Due(now) {
		return
	}
	s.kaTimer.Fire(now)
	last := s.wnd.Next() - 1 // last sequence number assigned
	if seq, e := s.wnd.FirstUnsent(); e != nil {
		// Last actually transmitted: one before the first unsent.
		last = seq - 1
	}
	s.st.KeepalivesSent++
	trace.Emit(s.cfg.Trace, now, trace.KeepaliveSent, uint32(last), 0)
	s.emit(&packet.Packet{Header: packet.Header{
		Type: packet.TypeKeepalive,
		Seq:  uint32(last),
	}}, Dest{Multicast: true})
	if s.kaBackoff == 0 {
		s.kaBackoff = 2 * kernel.Jiffy
	} else {
		s.kaBackoff *= 2
		if s.kaBackoff > s.cfg.KeepaliveMax {
			s.kaBackoff = s.cfg.KeepaliveMax
		}
	}
	s.kaTimer.Arm(now + s.kaBackoff)
}

// NextWake returns the earliest time beyond the per-jiffy tick that the
// sender needs attention; drivers that tick every jiffy can ignore it.
func (s *Sender) NextWake() (sim.Time, bool) {
	return s.kaTimer.Deadline()
}
