package sender

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/packet"
	"repro/internal/rate"
	"repro/internal/sim"
)

// BenchmarkSteadyStateTick measures the transmit tick with a supplied
// window and active members — the per-jiffy cost of the kernel's
// transmit_timer.
func BenchmarkSteadyStateTick(b *testing.B) {
	s := New(Config{
		SndBuf: 1 << 20, MinBufRTTs: 1, InitialRTT: sim.Millisecond,
		Rate: rate.Config{MinRate: 100e6, MaxRate: 100e6, MSS: 1400},
	})
	for i := 0; i < 10; i++ {
		s.HandlePacket(0, packet.NodeID(i+1), &packet.Packet{Header: packet.Header{
			Type: packet.TypeJoin, Seq: 0,
		}})
	}
	payload := make([]byte, 64<<10)
	now := sim.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += kernel.Jiffy
		s.Write(now, payload)
		// Everyone confirms everything so releases flow.
		for m := 1; m <= 10; m++ {
			s.HandlePacket(now, packet.NodeID(m), &packet.Packet{Header: packet.Header{
				Type: packet.TypeUpdate, Seq: uint32(s.wnd.Next()),
			}})
		}
		s.Tick(now)
		s.Outgoing()
	}
}

// BenchmarkFeedbackProcessing measures hrmc_master_rcv on the send path:
// an UPDATE arriving from one of 100 members.
func BenchmarkFeedbackProcessing(b *testing.B) {
	s := New(Config{SndBuf: 1 << 20})
	for i := 0; i < 100; i++ {
		s.HandlePacket(0, packet.NodeID(i+1), &packet.Packet{Header: packet.Header{
			Type: packet.TypeJoin,
		}})
	}
	s.Outgoing()
	up := &packet.Packet{Header: packet.Header{Type: packet.TypeUpdate, Seq: 5}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		up.Seq++
		s.HandlePacket(sim.Time(i), packet.NodeID(i%100+1), up)
	}
	s.Outgoing()
}
