package sender

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/packet"
	"repro/internal/rate"
	"repro/internal/sim"
)

func newS(t *testing.T, mod func(*Config)) *Sender {
	t.Helper()
	cfg := Config{
		SndBuf:     64 * (1000 + packet.HeaderSize),
		MSS:        1000,
		InitialRTT: 10 * sim.Millisecond,
		Rate:       rate.Config{MinRate: 1e6, MaxRate: 1e8, MSS: 1000},
	}
	if mod != nil {
		mod(&cfg)
	}
	return New(cfg)
}

func dataOuts(outs []Out) []Out {
	var d []Out
	for _, o := range outs {
		if o.Pkt.Type == packet.TypeData {
			d = append(d, o)
		}
	}
	return d
}

func findOut(outs []Out, ty packet.Type) *Out {
	for i := range outs {
		if outs[i].Pkt.Type == ty {
			return &outs[i]
		}
	}
	return nil
}

// feedback builds a receiver feedback packet.
func fb(ty packet.Type, seq uint32) *packet.Packet {
	return &packet.Packet{Header: packet.Header{Type: ty, Seq: seq}}
}

func TestWriteFragmentsIntoMSS(t *testing.T) {
	s := newS(t, nil)
	n := s.Write(0, make([]byte, 2500))
	if n != 2500 {
		t.Fatalf("Write = %d", n)
	}
	s.Tick(kernel.Jiffy)
	outs := dataOuts(s.Outgoing())
	if len(outs) != 3 {
		t.Fatalf("sent %d packets, want 3 (1000+1000+500)", len(outs))
	}
	if len(outs[0].Pkt.Payload) != 1000 || len(outs[2].Pkt.Payload) != 500 {
		t.Errorf("fragment sizes %d,%d,%d", len(outs[0].Pkt.Payload), len(outs[1].Pkt.Payload), len(outs[2].Pkt.Payload))
	}
	for i, o := range outs {
		if o.Pkt.Seq != uint32(i) {
			t.Errorf("packet %d has seq %d", i, o.Pkt.Seq)
		}
		if !o.Dest.Multicast {
			t.Error("data packet not multicast")
		}
		if o.Pkt.RateAdv == 0 {
			t.Error("data packet missing rate advertisement")
		}
	}
	if s.Stats().PacketsSent != 3 || s.Stats().BytesSent != 2500 {
		t.Errorf("stats: %d pkts %d bytes", s.Stats().PacketsSent, s.Stats().BytesSent)
	}
}

func TestWriteStopsAtWindowLimit(t *testing.T) {
	s := New(Config{SndBuf: 3 * (1000 + packet.HeaderSize), MSS: 1000})
	n := s.Write(0, make([]byte, 10_000))
	if n != 3000 {
		t.Fatalf("Write consumed %d, want 3000 (window limit)", n)
	}
	if s.Write(0, make([]byte, 1000)) != 0 {
		t.Error("Write into a full window consumed bytes")
	}
}

func TestRatePacing(t *testing.T) {
	// 1 MB/s min rate: one jiffy admits ~10200 wire bytes ≈ 10 packets.
	s := newS(t, nil)
	s.Write(0, make([]byte, 100_000))
	s.Tick(kernel.Jiffy)
	first := len(dataOuts(s.Outgoing()))
	if first < 5 || first > 25 {
		t.Errorf("first tick sent %d packets, want ≈10 at 1MB/s", first)
	}
	// Second tick: roughly another jiffy's worth.
	s.Tick(2 * kernel.Jiffy)
	second := len(dataOuts(s.Outgoing()))
	if second < 5 || second > 30 {
		t.Errorf("second tick sent %d packets", second)
	}
}

func TestRateGrowthWhileSending(t *testing.T) {
	// Short hold time so lazy release keeps freeing window space and the
	// application can keep the sender supplied.
	s := newS(t, func(c *Config) { c.MinBufRTTs = 1 })
	now := sim.Time(0)
	for i := 0; i < 30; i++ {
		s.Write(now, make([]byte, 100_000))
		now += kernel.Jiffy
		s.Tick(now)
		s.Outgoing()
	}
	if got := s.Rate(now); got <= 1e6 {
		t.Errorf("rate did not grow under demand: %v", got)
	}
}

// growRate drives the sender until its rate exceeds target.
func growRate(t *testing.T, s *Sender, now *sim.Time, target float64) {
	t.Helper()
	for i := 0; i < 200; i++ {
		s.Write(*now, make([]byte, 100_000))
		*now += kernel.Jiffy
		s.Tick(*now)
		s.Outgoing()
		if s.Rate(*now) > target {
			return
		}
	}
	t.Fatalf("rate stuck at %v, wanted > %v", s.Rate(*now), target)
}

func TestNakTriggersRetransmissionAndCut(t *testing.T) {
	s := newS(t, nil)
	s.Write(0, make([]byte, 5000))
	s.Tick(kernel.Jiffy)
	s.Outgoing()

	nak := fb(packet.TypeNak, 1)
	nak.Length = 2
	nak.RateAdv = 1 // receiver's next expected
	s.HandlePacket(3*kernel.Jiffy, 7, nak)
	if s.Stats().NaksReceived != 1 {
		t.Error("NAK not counted")
	}
	// Retransmission happens on the next tick, well after the half-RTT
	// in-flight guard.
	s.Tick(10 * kernel.Jiffy)
	outs := dataOuts(s.Outgoing())
	if len(outs) != 2 {
		t.Fatalf("retransmitted %d packets, want 2", len(outs))
	}
	if outs[0].Pkt.Seq != 1 || outs[1].Pkt.Seq != 2 {
		t.Errorf("retransmitted seqs %d,%d", outs[0].Pkt.Seq, outs[1].Pkt.Seq)
	}
	if outs[0].Pkt.Tries != 1 {
		t.Errorf("retransmission Tries = %d, want 1", outs[0].Pkt.Tries)
	}
	if s.Stats().Retransmissions != 2 {
		t.Errorf("Retransmissions = %d", s.Stats().Retransmissions)
	}
}

func TestNakCutsGrownRate(t *testing.T) {
	s := newS(t, func(c *Config) { c.MinBufRTTs = 1 })
	now := sim.Time(0)
	growRate(t, s, &now, 3e6)
	before := s.Rate(now)
	nak := fb(packet.TypeNak, uint32(s.wnd.Next()-1))
	nak.Length = 1
	s.HandlePacket(now, 7, nak)
	after := s.Rate(now)
	if after >= before {
		t.Fatalf("rate not cut after NAK: %v >= %v", after, before)
	}
	if after < before/2-1 {
		t.Errorf("rate cut too deep: %v from %v", after, before)
	}
	// A second NAK for data sent before the cut is the same loss epoch
	// and must not cut again.
	nak2 := fb(packet.TypeNak, uint32(s.wnd.Base()))
	nak2.Length = 1
	s.HandlePacket(now+kernel.Jiffy, 8, nak2)
	if got := s.Rate(now + kernel.Jiffy); got < after/2 {
		t.Errorf("same-epoch NAK cut again: %v", got)
	}
}

func TestRetransmissionGuardCoalescesDuplicateNaks(t *testing.T) {
	s := newS(t, func(c *Config) { c.InitialRTT = 100 * sim.Millisecond })
	s.Write(0, make([]byte, 3000))
	s.Tick(kernel.Jiffy)
	s.Outgoing()
	// Three receivers NAK the same packet in the same window.
	for n := packet.NodeID(1); n <= 3; n++ {
		nak := fb(packet.TypeNak, 0)
		nak.Length = 1
		s.HandlePacket(100*sim.Millisecond, n, nak)
	}
	s.Tick(110 * sim.Millisecond)
	if got := len(dataOuts(s.Outgoing())); got != 1 {
		t.Fatalf("retransmitted %d copies, want 1", got)
	}
	// A NAK arriving moments later is also absorbed by the guard.
	nak := fb(packet.TypeNak, 0)
	nak.Length = 1
	s.HandlePacket(120*sim.Millisecond, 4, nak)
	s.Tick(130 * sim.Millisecond)
	if got := len(dataOuts(s.Outgoing())); got != 0 {
		t.Errorf("in-flight retransmission duplicated %d times", got)
	}
}

func TestNakForReleasedDataGetsNakErr(t *testing.T) {
	s := newS(t, func(c *Config) { c.Mode = RMC; c.MinBufRTTs = 1; c.InitialRTT = sim.Millisecond })
	s.Write(0, make([]byte, 1000))
	s.Close(0) // closing drains the window once deadlines pass
	s.Tick(kernel.Jiffy)
	s.Outgoing()
	// After MINBUF RTTs the RMC sender releases unconditionally.
	s.Tick(10 * kernel.Jiffy)
	s.Outgoing()
	if s.WindowBytes() != 0 {
		t.Fatal("RMC sender did not release")
	}
	nak := fb(packet.TypeNak, 0)
	nak.Length = 1
	s.HandlePacket(11*kernel.Jiffy, 9, nak)
	out := findOut(s.Outgoing(), packet.TypeNakErr)
	if out == nil {
		t.Fatal("no NAK_ERR for released data")
	}
	if out.Dest.Multicast || out.Dest.Node != 9 {
		t.Error("NAK_ERR not unicast to the requester")
	}
	if s.Stats().NakErrsSent != 1 {
		t.Error("NakErr not counted")
	}
}

func TestJoinLeaveMembership(t *testing.T) {
	s := newS(t, nil)
	s.HandlePacket(0, 5, fb(packet.TypeJoin, 0))
	if s.Members() != 1 {
		t.Fatalf("members = %d", s.Members())
	}
	jr := findOut(s.Outgoing(), packet.TypeJoinResponse)
	if jr == nil || jr.Dest.Node != 5 || jr.Dest.Multicast {
		t.Fatal("JOIN_RESPONSE missing or misaddressed")
	}
	// Duplicate JOIN stays idempotent but is re-acknowledged.
	s.HandlePacket(kernel.Jiffy, 5, fb(packet.TypeJoin, 0))
	if s.Members() != 1 {
		t.Error("duplicate JOIN added a member")
	}
	if findOut(s.Outgoing(), packet.TypeJoinResponse) == nil {
		t.Error("duplicate JOIN not re-acknowledged")
	}
	s.HandlePacket(2*kernel.Jiffy, 5, fb(packet.TypeLeave, 10))
	if s.Members() != 0 {
		t.Error("LEAVE did not remove the member")
	}
	if findOut(s.Outgoing(), packet.TypeLeaveResponse) == nil {
		t.Error("no LEAVE_RESPONSE")
	}
}

func TestHRMCReleaseGatedOnMemberState(t *testing.T) {
	s := newS(t, func(c *Config) { c.MinBufRTTs = 1; c.InitialRTT = sim.Millisecond })
	s.Write(0, make([]byte, 1000))
	s.Close(0) // data packet seq 0 plus a FIN at seq 1
	s.Tick(kernel.Jiffy)
	s.Outgoing()
	s.HandlePacket(kernel.Jiffy, 3, fb(packet.TypeJoin, 0))
	s.Outgoing()
	// Member 3 joined expecting seq 0: release of seq 0 is unsafe.
	s.Tick(5 * kernel.Jiffy)
	if s.WindowBytes() == 0 {
		t.Fatal("H-RMC released data a member had not confirmed")
	}
	probe := findOut(s.Outgoing(), packet.TypeProbe)
	if probe == nil {
		t.Fatal("no PROBE for the lacking member")
	}
	if probe.Dest.Multicast || probe.Dest.Node != 3 {
		t.Error("PROBE not unicast to the lacking member")
	}
	if probe.Pkt.Seq != 0 {
		t.Errorf("PROBE seq = %d, want 0", probe.Pkt.Seq)
	}
	if s.Stats().ProbesSent != 1 || s.Stats().ReleaseStalls == 0 {
		t.Errorf("probe/stall stats: %+v", s.Stats())
	}
	// An UPDATE confirming receipt of everything (data + FIN) unblocks
	// the release.
	s.HandlePacket(6*kernel.Jiffy, 3, fb(packet.TypeUpdate, 2))
	s.Tick(7 * kernel.Jiffy)
	if s.WindowBytes() != 0 {
		t.Error("release still blocked after covering UPDATE")
	}
	if s.Stats().UpdatesReceived != 1 {
		t.Error("UPDATE not counted")
	}
}

func TestProbeRateLimited(t *testing.T) {
	s := newS(t, func(c *Config) { c.MinBufRTTs = 1; c.InitialRTT = sim.Millisecond })
	s.Write(0, make([]byte, 1000))
	s.Close(0)
	s.Tick(kernel.Jiffy)
	s.HandlePacket(kernel.Jiffy, 3, fb(packet.TypeJoin, 0))
	s.Outgoing()
	for i := 2; i < 6; i++ {
		s.Tick(sim.Time(i) * kernel.Jiffy)
	}
	probes := 0
	for _, o := range s.Outgoing() {
		if o.Pkt.Type == packet.TypeProbe {
			probes++
		}
	}
	// RTO with a 1ms RTT is clamped to ≥1ms but stays well under the
	// 40ms window here, so a couple of probes are fine — a probe per
	// tick is not.
	if probes >= 4 {
		t.Errorf("probe flood: %d probes in 4 ticks", probes)
	}
	if probes == 0 {
		t.Error("no probes at all")
	}
}

func TestFigure3MetricRMCMode(t *testing.T) {
	s := newS(t, func(c *Config) { c.Mode = RMC; c.MinBufRTTs = 1; c.InitialRTT = sim.Millisecond })
	s.Write(0, make([]byte, 2000))
	s.Close(0) // seq 0, seq 1 data + seq 2 FIN
	s.Tick(kernel.Jiffy)
	s.Outgoing()
	// One member whose state only covers seq 0.
	s.HandlePacket(kernel.Jiffy, 3, fb(packet.TypeJoin, 0))
	s.HandlePacket(kernel.Jiffy, 3, fb(packet.TypeUpdate, 1))
	s.Outgoing()
	s.Tick(10 * kernel.Jiffy)
	st := s.Stats()
	if st.Releases != 3 {
		t.Fatalf("Releases = %d, want 3", st.Releases)
	}
	if st.ReleasesCompleteInfo != 1 {
		t.Errorf("ReleasesCompleteInfo = %d, want 1 (member covers seq 0 only)", st.ReleasesCompleteInfo)
	}
	if got := st.ReleaseInfoRatio(); got < 0.33 || got > 0.34 {
		t.Errorf("ReleaseInfoRatio = %v, want 1/3", got)
	}
}

func TestControlWarningCutsRate(t *testing.T) {
	s := newS(t, nil)
	s.Write(0, make([]byte, 50_000))
	now := sim.Time(0)
	for i := 0; i < 10; i++ {
		now += kernel.Jiffy
		s.Tick(now)
		s.Outgoing()
	}
	r0 := s.Rate(now)
	ctrl := fb(packet.TypeControl, 5)
	ctrl.RateAdv = uint32(r0 / 4)
	s.HandlePacket(now, 2, ctrl)
	if got := s.Rate(now); got != r0/4 {
		t.Errorf("rate after suggested cut = %v, want %v", got, r0/4)
	}
	if s.Stats().RateRequestsReceived != 1 {
		t.Error("rate request not counted")
	}
}

func TestControlUrgentStopsTransmission(t *testing.T) {
	s := newS(t, nil)
	s.Write(0, make([]byte, 50_000))
	s.Tick(kernel.Jiffy)
	s.Outgoing()
	urgent := fb(packet.TypeControl, 1)
	urgent.Flags = packet.FlagURG
	now := 2 * kernel.Jiffy
	s.HandlePacket(now, 2, urgent)
	if s.Stats().UrgentReceived != 1 {
		t.Error("urgent not counted")
	}
	// For two RTTs (20ms = 2 jiffies) nothing is transmitted.
	s.Tick(now + kernel.Jiffy)
	if got := len(dataOuts(s.Outgoing())); got != 0 {
		t.Errorf("sent %d data packets during urgent stop", got)
	}
	// After the stop, transmission resumes (from the minimum rate).
	var resumed bool
	for i := sim.Time(3); i < 10; i++ {
		s.Tick(now + i*kernel.Jiffy)
		if len(dataOuts(s.Outgoing())) > 0 {
			resumed = true
			break
		}
	}
	if !resumed {
		t.Error("transmission did not resume after the urgent stop")
	}
}

func TestKeepaliveOnIdleWithBackoff(t *testing.T) {
	s := newS(t, nil)
	s.Write(0, make([]byte, 1000))
	s.Tick(kernel.Jiffy)
	s.Outgoing()
	// No more data: keepalives with exponential backoff.
	now := kernel.Jiffy
	var kaTimes []sim.Time
	for i := 0; i < 600; i++ {
		now += kernel.Jiffy
		s.Tick(now)
		for _, o := range s.Outgoing() {
			if o.Pkt.Type == packet.TypeKeepalive {
				kaTimes = append(kaTimes, now)
				if o.Pkt.Seq != 0 {
					t.Errorf("keepalive carries seq %d, want 0 (last sent)", o.Pkt.Seq)
				}
			}
		}
	}
	if len(kaTimes) < 3 {
		t.Fatalf("only %d keepalives in 6s of idle", len(kaTimes))
	}
	// Gaps grow and saturate at 2s.
	for i := 2; i < len(kaTimes); i++ {
		g1 := kaTimes[i] - kaTimes[i-1]
		g0 := kaTimes[i-1] - kaTimes[i-2]
		if g1 < g0 {
			t.Errorf("keepalive gaps shrank: %v then %v", g0, g1)
		}
		if g1 > 2*sim.Second {
			t.Errorf("keepalive gap %v exceeds the 2s cap", g1)
		}
	}
	if s.Stats().KeepalivesSent != int64(len(kaTimes)) {
		t.Error("keepalive counter mismatch")
	}
}

func TestNoKeepaliveWhileRatePacing(t *testing.T) {
	// At a very low rate the sender waits several ticks between packets;
	// those waits are pacing, not idleness. The application keeps the
	// window supplied so unsent data exists throughout.
	s := newS(t, func(c *Config) {
		c.Rate = rate.Config{MinRate: 20_000, MaxRate: 20_000, MSS: 1020}
	})
	now := sim.Time(0)
	sent := 0
	for i := 0; i < 100; i++ {
		s.Write(now, make([]byte, 5000))
		now += kernel.Jiffy
		s.Tick(now)
		for _, o := range s.Outgoing() {
			if o.Pkt.Type == packet.TypeKeepalive {
				t.Fatalf("keepalive at %v while pacing data", now)
			}
			if o.Pkt.Type == packet.TypeData {
				sent += o.Pkt.WireSize()
			}
		}
	}
	// One second at 20 KB/s: roughly 20 KB on the wire.
	if sent < 15_000 || sent > 25_000 {
		t.Errorf("paced %d bytes in 1s at 20KB/s", sent)
	}
}

func TestCloseAppendsFINAndDone(t *testing.T) {
	s := newS(t, func(c *Config) { c.MinBufRTTs = 1; c.InitialRTT = sim.Millisecond; c.Mode = RMC })
	s.Write(0, make([]byte, 1500))
	s.Close(0)
	s.Tick(kernel.Jiffy)
	outs := dataOuts(s.Outgoing())
	if len(outs) != 3 {
		t.Fatalf("sent %d packets, want 2 data + 1 FIN", len(outs))
	}
	last := outs[2].Pkt
	if !last.FIN() || len(last.Payload) != 0 {
		t.Errorf("last packet FIN=%v len=%d", last.FIN(), len(last.Payload))
	}
	if s.Done() {
		t.Error("Done before release")
	}
	s.Tick(20 * kernel.Jiffy)
	if !s.Done() {
		t.Error("not Done after full release")
	}
}

func TestCloseWithFullWindowDefersFIN(t *testing.T) {
	s := New(Config{
		SndBuf: 2 * (1000 + packet.HeaderSize), MSS: 1000, Mode: RMC,
		MinBufRTTs: 1, InitialRTT: sim.Millisecond,
		Rate: rate.Config{MinRate: 1e6, MaxRate: 1e8, MSS: 1000},
	})
	if s.Write(0, make([]byte, 2000)) != 2000 {
		t.Fatal("setup write failed")
	}
	s.Close(0) // window is full: FIN must wait
	if s.Done() {
		t.Error("Done with FIN still pending")
	}
	now := sim.Time(0)
	for i := 0; i < 40 && !s.Done(); i++ {
		now += kernel.Jiffy
		s.Tick(now)
		s.Outgoing()
	}
	if !s.Done() {
		t.Error("FIN never flushed after window drained")
	}
}

func TestWriteAfterClosePanics(t *testing.T) {
	s := newS(t, nil)
	s.Close(0)
	defer func() {
		if recover() == nil {
			t.Error("Write after Close did not panic")
		}
	}()
	s.Write(0, []byte{1})
}

func TestExpectedReceiversHoldsRelease(t *testing.T) {
	s := newS(t, func(c *Config) {
		c.MinBufRTTs = 1
		c.InitialRTT = sim.Millisecond
		c.ExpectedReceivers = 2
	})
	s.Write(0, make([]byte, 1000))
	s.Close(0) // data seq 0 + FIN seq 1
	s.Tick(kernel.Jiffy)
	s.Outgoing()
	s.Tick(10 * kernel.Jiffy) // no receivers at all: hold
	if s.WindowBytes() == 0 {
		t.Fatal("released with zero of two expected receivers")
	}
	s.HandlePacket(10*kernel.Jiffy, 1, fb(packet.TypeJoin, 2))
	s.Tick(11 * kernel.Jiffy)
	if s.WindowBytes() == 0 {
		t.Fatal("released with one of two expected receivers")
	}
	s.HandlePacket(11*kernel.Jiffy, 2, fb(packet.TypeJoin, 2))
	s.Tick(12 * kernel.Jiffy)
	if s.WindowBytes() != 0 {
		t.Error("release still held after both receivers joined past the data")
	}
}

func TestMulticastProbeExtension(t *testing.T) {
	s := newS(t, func(c *Config) {
		c.MinBufRTTs = 1
		c.InitialRTT = sim.Millisecond
		c.MulticastProbeThreshold = 3
	})
	s.Write(0, make([]byte, 1000))
	s.Close(0)
	s.Tick(kernel.Jiffy)
	for n := packet.NodeID(1); n <= 4; n++ {
		s.HandlePacket(kernel.Jiffy, n, fb(packet.TypeJoin, 0))
	}
	s.Outgoing()
	s.Tick(5 * kernel.Jiffy)
	outs := s.Outgoing()
	var uni, multi int
	for _, o := range outs {
		if o.Pkt.Type != packet.TypeProbe {
			continue
		}
		if o.Dest.Multicast {
			multi++
		} else {
			uni++
		}
	}
	if multi != 1 || uni != 0 {
		t.Errorf("probes: %d multicast %d unicast, want 1,0", multi, uni)
	}
	if s.Stats().MulticastProbesSent != 1 {
		t.Error("multicast probe not counted")
	}
}

func TestEarlyProbeExtension(t *testing.T) {
	s := newS(t, func(c *Config) {
		c.MinBufRTTs = 10
		c.InitialRTT = 20 * sim.Millisecond
		c.EarlyProbeRTTs = 3
	})
	s.Write(0, make([]byte, 1000))
	s.Close(0)
	s.Tick(kernel.Jiffy) // sent at 10ms; deadline at 210ms; early probe from 150ms
	s.HandlePacket(kernel.Jiffy, 1, fb(packet.TypeJoin, 0))
	s.Outgoing()
	s.Tick(16 * kernel.Jiffy) // 160ms: inside the early-probe lead
	outs := s.Outgoing()
	if findOut(outs, packet.TypeProbe) == nil {
		t.Error("no early probe inside the lead window")
	}
	if s.WindowBytes() == 0 {
		t.Error("early probe released data ahead of the deadline")
	}
}

func TestJoinSamplesRTT(t *testing.T) {
	s := newS(t, func(c *Config) { c.InitialRTT = 500 * sim.Millisecond })
	s.Write(0, make([]byte, 1000))
	s.Tick(kernel.Jiffy)
	s.Outgoing()
	// JOIN arrives 30ms after the data packet went out, expecting seq 1:
	// the triggering packet is seq 0, sent once.
	s.HandlePacket(kernel.Jiffy+30*sim.Millisecond, 1, fb(packet.TypeJoin, 1))
	if got := s.RTT(); got != 30*sim.Millisecond {
		t.Errorf("RTT after JOIN sample = %v, want 30ms", got)
	}
}

func TestProbeResponseSamplesRTT(t *testing.T) {
	s := newS(t, func(c *Config) { c.MinBufRTTs = 1; c.InitialRTT = 40 * sim.Millisecond })
	s.Write(0, make([]byte, 1000))
	s.Close(0)
	s.Tick(kernel.Jiffy)
	s.HandlePacket(kernel.Jiffy, 1, fb(packet.TypeJoin, 0))
	s.Outgoing()
	// Deadline 10+400ms; probe goes out on the first tick past it.
	var probeAt sim.Time
	now := kernel.Jiffy
	for i := 0; i < 100 && probeAt == 0; i++ {
		now += kernel.Jiffy
		s.Tick(now)
		if findOut(s.Outgoing(), packet.TypeProbe) != nil {
			probeAt = now
		}
	}
	if probeAt == 0 {
		t.Fatal("no probe emitted")
	}
	s.HandlePacket(probeAt+20*sim.Millisecond, 1, fb(packet.TypeUpdate, 1))
	// Asymmetric estimator: downward samples move slowly; exact value is
	// not required, movement is.
	if got := s.RTT(); got >= 40*sim.Millisecond {
		t.Errorf("RTT did not absorb the probe sample: %v", got)
	}
}
