package sender

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/packet"
	"repro/internal/sim"
)

// nak builds a receiver NAK for one sequence number, reporting the
// requester's next-expected in RateAdv like the receiver does.
func nak(seq, next uint32) *packet.Packet {
	return &packet.Packet{Header: packet.Header{Type: packet.TypeNak, Seq: seq, RateAdv: next}}
}

// A departed member's tombstone suppresses NAK_ERRs for stale NAKs the
// member had already recovered from — but only for the tombstone TTL,
// after which the sweep reclaims the entry and the memory.
func TestTombstoneGuardsStaleNakThenExpires(t *testing.T) {
	const ttl = 100 * sim.Millisecond
	s := newS(t, func(c *Config) {
		c.Mode = HRMC
		c.TombstoneTTL = ttl
		c.MinBufRTTs = 1
	})
	now := sim.Time(0)
	s.Write(now, make([]byte, 5000))
	s.HandlePacket(now, 1, fb(packet.TypeJoin, 0))
	now += kernel.Jiffy
	s.Tick(now)
	s.Outgoing()

	// The member holds everything, then leaves; close, wait out the
	// MINBUF hold, and drain so the window releases.
	s.HandlePacket(now, 1, fb(packet.TypeUpdate, 5))
	s.HandlePacket(now, 1, fb(packet.TypeLeave, 5))
	s.Close(now)
	now += 5 * kernel.Jiffy
	s.Tick(now) // sends the FIN
	s.Outgoing()
	now += 3 * kernel.Jiffy
	s.Tick(now) // FIN's own hold expires; window drains
	s.Outgoing()
	if s.wnd.Len() != 0 {
		t.Fatalf("window still holds %d packets after close and release", s.wnd.Len())
	}

	// A reordered stale NAK for released data, covered by the tombstone:
	// dropped silently.
	s.HandlePacket(now, 1, nak(2, 5))
	if s.Stats().NakErrsSent != 0 {
		t.Fatal("stale NAK from a departed member earned a NAK_ERR inside the TTL")
	}

	// Past the TTL the sweep forgets the member; the same NAK is now an
	// uncoverable request and earns the NAK_ERR.
	now += ttl + kernel.Jiffy
	s.Tick(now)
	if len(s.departed) != 0 {
		t.Fatalf("tombstones not swept after TTL: %d left", len(s.departed))
	}
	s.HandlePacket(now, 1, nak(2, 5))
	if s.Stats().NakErrsSent != 1 {
		t.Fatal("NAK for released data got no NAK_ERR after the tombstone expired")
	}
}

// The tombstone map must not leak under sustained membership churn:
// entries older than the TTL are swept in O(1) amortized time from the
// tick path.
func TestTombstoneChurnDoesNotLeak(t *testing.T) {
	const ttl = 50 * sim.Millisecond
	s := newS(t, func(c *Config) {
		c.Mode = HRMC
		c.TombstoneTTL = ttl
	})
	now := sim.Time(0)
	peak := 0
	for i := 0; i < 500; i++ {
		addr := packet.NodeID(i + 1)
		s.HandlePacket(now, addr, fb(packet.TypeJoin, 0))
		s.HandlePacket(now, addr, fb(packet.TypeLeave, 0))
		now += kernel.Jiffy
		s.Tick(now)
		s.Outgoing()
		if len(s.departed) > peak {
			peak = len(s.departed)
		}
	}
	// At one join/leave per jiffy and a 5-jiffy TTL, steady state keeps
	// only the entries younger than the TTL plus one sweep period.
	bound := 2*int(ttl/kernel.Jiffy) + 2
	if peak > bound {
		t.Fatalf("tombstone map peaked at %d entries, want <= %d (TTL-bounded)", peak, bound)
	}
	now += ttl + kernel.Jiffy
	s.Tick(now)
	if len(s.departed) != 0 {
		t.Fatalf("%d tombstones left after quiescence + TTL", len(s.departed))
	}
}

// PROBE-before-release under churn: a lagging member stalls the window
// and is probed; when it departs before answering, the next release
// pass proceeds without it instead of stalling forever.
func TestProbeBeforeReleaseMemberDeparts(t *testing.T) {
	s := newS(t, func(c *Config) {
		c.SndBuf = 4 * (1000 + packet.HeaderSize)
		c.Mode = HRMC
		c.MinBufRTTs = 1
	})
	now := sim.Time(0)
	if n := s.Write(now, make([]byte, 4000)); n != 4000 {
		t.Fatalf("Write = %d, want the full window", n)
	}
	s.HandlePacket(now, 1, fb(packet.TypeJoin, 0)) // joined, holds nothing
	now += kernel.Jiffy
	s.Tick(now)
	if got := len(dataOuts(s.Outgoing())); got != 4 {
		t.Fatalf("sent %d data packets, want 4", got)
	}

	// Let the MINBUF hold expire with the window full: release must
	// stall on the lagging member and probe it.
	now += 10 * kernel.Jiffy
	s.Tick(now)
	outs := s.Outgoing()
	probe := findOut(outs, packet.TypeProbe)
	if probe == nil {
		t.Fatal("no PROBE for the lagging member at the release deadline")
	}
	if probe.Dest.Multicast || probe.Dest.Node != 1 {
		t.Fatalf("PROBE dest = %+v, want unicast to node 1", probe.Dest)
	}
	if !s.stalled || s.wnd.Len() != 4 {
		t.Fatalf("window not stalled on the lagging member (stalled=%v len=%d)", s.stalled, s.wnd.Len())
	}

	// The member departs between PROBE and release.
	s.HandlePacket(now, 1, fb(packet.TypeLeave, 0))
	now += kernel.Jiffy
	s.Tick(now)
	s.Outgoing()
	if s.wnd.Len() != 0 {
		t.Fatalf("window still holds %d packets after the lagging member left", s.wnd.Len())
	}
	if s.members.Len() != 0 {
		t.Fatalf("membership not empty after LEAVE: %d", s.members.Len())
	}
	// The probe must not haunt the departed member: no retries, no
	// NAK_ERR, and new writes flow again.
	if s.Stats().NakErrsSent != 0 {
		t.Fatal("departure produced a NAK_ERR")
	}
	if n := s.Write(now, make([]byte, 1000)); n != 1000 {
		t.Fatalf("Write after release = %d, want 1000", n)
	}
}
