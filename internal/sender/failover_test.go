package sender

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Silent-head failover unit tests: the sender-side half of the repair-
// head failure model — AGG_UPDATE-silence eviction, the release fence
// over the failover grace, the orphaned-leaves gauge, and the
// tombstoned-head NAK_ERR exemption.

// agg builds an AGG_UPDATE: Seq is the subtree minimum, Length the
// downstream member count.
func agg(seq uint32, members uint32) *packet.Packet {
	return &packet.Packet{Header: packet.Header{
		Type: packet.TypeAggUpdate, Seq: seq, Length: members,
	}}
}

func TestSilentHeadEvictedAndReleaseFenced(t *testing.T) {
	const (
		timeout = sim.Second
		grace   = sim.Second
	)
	s := newS(t, func(c *Config) {
		c.MinBufRTTs = 1
		c.InitialRTT = sim.Millisecond
		c.HeadSilenceTimeout = timeout
		c.FailoverGrace = grace
	})
	s.Write(0, make([]byte, 1000))
	s.Close(0) // data at seq 0, FIN at seq 1
	s.Tick(kernel.Jiffy)
	s.Outgoing()
	// A head speaks for 4 leaves, confirmed through seq 0 only — then
	// goes completely silent.
	s.HandlePacket(kernel.Jiffy, 5, agg(1, 4))
	if s.Stats().AggUpdatesReceived != 1 || s.Members() != 1 {
		t.Fatalf("head not registered: %+v", s.Stats())
	}
	var now, evictedAt sim.Time
	for now = 2 * kernel.Jiffy; now < 4*timeout; now += kernel.Jiffy {
		s.Tick(now)
		s.Outgoing()
		if s.Stats().HeadsEvicted == 1 {
			evictedAt = now
			break
		}
	}
	if evictedAt == 0 {
		t.Fatal("silent head never evicted")
	}
	if evictedAt < timeout || evictedAt > 2*timeout {
		t.Errorf("evicted at %v, want within [1x, 2x] of the %v timeout", evictedAt, timeout)
	}
	if s.Stats().OrphanedLeaves != 4 {
		t.Errorf("OrphanedLeaves = %d, want the head's reported 4", s.Stats().OrphanedLeaves)
	}
	if s.Members() != 0 {
		t.Error("evicted head still in the membership table")
	}
	// The table is now empty, so AllPast passes trivially — but the
	// orphans behind the dead head were last reported at seq 1. The
	// fence must hold the release there for the grace period.
	for now += kernel.Jiffy; now < evictedAt+grace-kernel.Jiffy; now += kernel.Jiffy {
		s.Tick(now)
		s.Outgoing()
	}
	if s.WindowBytes() == 0 {
		t.Fatal("release crossed the failover fence inside the grace period")
	}
	stalls := s.Stats().ReleaseStalls
	if stalls == 0 {
		t.Error("fenced release not counted as a stall")
	}
	// Grace over: the orphans had their chance to re-JOIN; release
	// proceeds and the sender finishes.
	for ; now < evictedAt+grace+sim.Second; now += kernel.Jiffy {
		s.Tick(now)
		s.Outgoing()
	}
	if s.WindowBytes() != 0 {
		t.Fatal("release still fenced after the grace expired")
	}
	if !s.Done() {
		t.Error("sender not done after the fence lifted")
	}
}

func TestOrphanGaugeReclaimedByJoinAndAggUpdate(t *testing.T) {
	s := newS(t, func(c *Config) {
		c.HeadSilenceTimeout = sim.Second
		c.FailoverGrace = -1 // isolate the gauge from the fence
	})
	s.HandlePacket(0, 5, agg(0, 3))
	var now sim.Time
	for now = kernel.Jiffy; s.Stats().HeadsEvicted == 0 && now < 4*sim.Second; now += kernel.Jiffy {
		s.Tick(now)
		s.Outgoing()
	}
	if s.Stats().OrphanedLeaves != 3 {
		t.Fatalf("OrphanedLeaves = %d after eviction, want 3", s.Stats().OrphanedLeaves)
	}
	// One orphan re-homes with a direct JOIN.
	s.HandlePacket(now, 11, fb(packet.TypeJoin, 0))
	if s.Stats().OrphanedLeaves != 2 {
		t.Errorf("OrphanedLeaves = %d after direct JOIN, want 2", s.Stats().OrphanedLeaves)
	}
	// The same leaf retries its JOIN (a lost JOIN_RESPONSE, or the
	// failover handshake racing the first ask): idempotent — the member
	// is not duplicated and the gauge is not double-decremented.
	s.HandlePacket(now+kernel.Jiffy, 11, fb(packet.TypeJoin, 0))
	if s.Members() != 1 {
		t.Errorf("duplicate JOIN added a member: %d", s.Members())
	}
	if s.Stats().OrphanedLeaves != 2 {
		t.Errorf("OrphanedLeaves = %d after duplicate JOIN, want still 2", s.Stats().OrphanedLeaves)
	}
	if s.Stats().JoinsReceived != 2 {
		t.Errorf("JoinsReceived = %d, want 2", s.Stats().JoinsReceived)
	}
	// The head restarts and announces the rest of its subtree back.
	s.HandlePacket(now+2*kernel.Jiffy, 5, agg(0, 2))
	if s.Stats().OrphanedLeaves != 0 {
		t.Errorf("OrphanedLeaves = %d after the head's re-announce, want 0", s.Stats().OrphanedLeaves)
	}
}

// TestReleasedRangeNakPolicy pins the escalate-or-decline contract for
// NAKs below the send window: a departed leaf whose tombstone covers
// the range is a stale report and stays silent; a tombstoned HEAD's
// escalation always draws the explicit NAK_ERR (its recorded state is
// a subtree minimum — it proves nothing about the leaf that asked);
// and an unknown requester (a failed-over leaf NAKing directly) is
// refused rather than ignored.
func TestReleasedRangeNakPolicy(t *testing.T) {
	s := newS(t, func(c *Config) { c.Mode = RMC; c.MinBufRTTs = 1; c.InitialRTT = sim.Millisecond })
	s.Write(0, make([]byte, 1000))
	s.Close(0)
	s.Tick(kernel.Jiffy)
	s.Outgoing()
	// Head 5 speaks for a subtree past the stream end; leaf 6 confirms
	// the same individually.
	s.HandlePacket(kernel.Jiffy, 5, agg(2, 3))
	s.HandlePacket(kernel.Jiffy, 6, fb(packet.TypeJoin, 0))
	s.HandlePacket(kernel.Jiffy, 6, fb(packet.TypeUpdate, 2))
	s.Tick(10 * kernel.Jiffy) // RMC: releases once the hold passes
	s.Outgoing()
	if s.WindowBytes() != 0 {
		t.Fatal("window not released")
	}
	s.HandlePacket(11*kernel.Jiffy, 5, fb(packet.TypeLeave, 2))
	s.HandlePacket(11*kernel.Jiffy, 6, fb(packet.TypeLeave, 2))
	s.Outgoing()

	// Departed leaf, range covered by its tombstone: a reordered stale
	// report — silence is correct.
	nak := fb(packet.TypeNak, 0)
	nak.Length = 1
	s.HandlePacket(12*kernel.Jiffy, 6, nak)
	if got := findOut(s.Outgoing(), packet.TypeNakErr); got != nil {
		t.Error("stale NAK from a covered leaf tombstone drew a NAK_ERR")
	}
	// Departed head, same range: the escalation must be refused
	// explicitly so the head can turn it into a HEAD_DECLINE.
	nak = fb(packet.TypeNak, 0)
	nak.Length = 2
	s.HandlePacket(13*kernel.Jiffy, 5, nak)
	ne := findOut(s.Outgoing(), packet.TypeNakErr)
	if ne == nil {
		t.Fatal("escalation from a tombstoned head drew silence, want NAK_ERR")
	}
	if ne.Dest.Multicast || ne.Dest.Node != 5 {
		t.Error("NAK_ERR not unicast to the head")
	}
	if ne.Pkt.Length != 2 {
		t.Errorf("NAK_ERR length = %d, want the full refused range 2", ne.Pkt.Length)
	}
	// Unknown requester (no membership, no tombstone): a failed-over
	// leaf asking directly must hear the refusal, never silence.
	nak = fb(packet.TypeNak, 0)
	nak.Length = 1
	s.HandlePacket(14*kernel.Jiffy, 7, nak)
	ne = findOut(s.Outgoing(), packet.TypeNakErr)
	if ne == nil {
		t.Fatal("NAK from an unknown requester for released data drew silence, want NAK_ERR")
	}
	if ne.Dest.Node != 7 {
		t.Error("NAK_ERR not unicast to the unknown requester")
	}
}
