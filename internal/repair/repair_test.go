package repair

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/seqspace"
	"repro/internal/sim"
	"repro/internal/stats"
)

func newHead(pooled bool, cfg Config) (*Head, *stats.Receiver) {
	st := &stats.Receiver{}
	return NewHead(0, cfg, pooled, st), st
}

func TestMembershipJoinUpdateLeave(t *testing.T) {
	h, st := newHead(false, Config{})
	if st.RepairHead != 1 {
		t.Fatalf("RepairHead gauge = %d, want 1", st.RepairHead)
	}
	if !h.Join(10, 7, 100) {
		t.Fatal("first Join was not reported as new")
	}
	if h.Join(20, 7, 105) {
		t.Fatal("re-Join was reported as new")
	}
	if h.Members() != 1 || st.RepairMembers != 1 {
		t.Fatalf("members = %d (gauge %d), want 1", h.Members(), st.RepairMembers)
	}

	// Update on an unknown member joins it implicitly.
	h.Update(30, 8, 90)
	if h.Members() != 2 {
		t.Fatalf("members = %d after implicit join, want 2", h.Members())
	}

	// Regressions are accepted — the safe direction for an aggregate.
	h.Update(40, 7, 50)
	if min, _ := h.Aggregate(200); min != 50 {
		t.Fatalf("aggregate min = %d after regression, want 50", min)
	}

	h.Leave(7)
	h.Leave(7) // idempotent
	if h.Members() != 1 || st.RepairMembers != 1 {
		t.Fatalf("members = %d (gauge %d) after leave, want 1", h.Members(), st.RepairMembers)
	}
}

func TestAggregateClampAndDrained(t *testing.T) {
	h, _ := newHead(false, Config{})
	if min, n := h.Aggregate(42); min != 42 || n != 0 {
		t.Fatalf("empty aggregate = (%d, %d), want (42, 0)", min, n)
	}
	h.Join(0, 1, 10)
	h.Join(0, 2, 30)
	if min, n := h.Aggregate(20); min != 10 || n != 2 {
		t.Fatalf("aggregate = (%d, %d), want (10, 2)", min, n)
	}
	if got := h.ClampNext(5); got != 5 {
		t.Fatalf("ClampNext(5) = %d, want the head's own lower frontier", got)
	}
	if h.Drained(30) {
		t.Fatal("Drained(30) with a member at 10")
	}
	h.Update(0, 1, 30)
	if !h.Drained(30) {
		t.Fatal("not Drained(30) with every member at 30")
	}
}

func pkt(seq uint32) *packet.Packet {
	return &packet.Packet{Header: packet.Header{Type: packet.TypeData, Seq: seq}, Payload: []byte{1}}
}

func TestRetainEvictsLowestBeyondWindow(t *testing.T) {
	h, _ := newHead(false, Config{WindowPackets: 4})
	for seq := uint32(10); seq < 17; seq++ {
		h.Retain(pkt(seq))
		h.Retain(pkt(seq)) // duplicates are dropped, not double-counted
	}
	for seq := seqspace.Seq(10); seq < 13; seq++ {
		if _, ok := h.Retained(seq); ok {
			t.Errorf("seq %d still retained, want evicted", seq)
		}
	}
	for seq := seqspace.Seq(13); seq < 17; seq++ {
		if _, ok := h.Retained(seq); !ok {
			t.Errorf("seq %d not retained", seq)
		}
	}
}

// Pooled retention must hold one pool reference per retained packet and
// return it on eviction and teardown, so the shared pool's outstanding
// count goes back to zero.
func TestRetainPooledRefcounting(t *testing.T) {
	before := packet.PoolStats()
	h, _ := newHead(true, Config{WindowPackets: 2})
	ps := make([]*packet.Packet, 4)
	for i := range ps {
		p := packet.Get()
		p.Type = packet.TypeData
		p.Seq = uint32(100 + i)
		ps[i] = p
		h.Retain(p) // head takes its own reference
	}
	// Drop the simulated receive-window references.
	for _, p := range ps {
		packet.Put(p)
	}
	// Two were evicted by the window bound; release the rest.
	h.ReleaseAll()
	after := packet.PoolStats()
	gets := after.Gets - before.Gets
	puts := after.Puts - before.Puts
	if gets != puts {
		t.Fatalf("pool imbalance: %d gets vs %d puts", gets, puts)
	}
}

func TestHandledSuppression(t *testing.T) {
	h, _ := newHead(false, Config{SuppressionInterval: 10 * sim.Millisecond})
	if h.Handled(100, 5) {
		t.Fatal("first request suppressed")
	}
	if !h.Handled(105, 5) {
		t.Fatal("duplicate within the interval not suppressed")
	}
	if h.Handled(100, 6) {
		t.Fatal("different sequence number suppressed")
	}
	if h.Handled(100+10*sim.Millisecond, 5) {
		t.Fatal("request after the interval suppressed")
	}
}

func TestTickEvictsSilentMembers(t *testing.T) {
	cfg := Config{AggregatePeriod: 100, MemberTimeout: 1000}
	h, st := newHead(false, cfg)
	h.Join(0, 1, 10)
	h.Join(0, 2, 10)
	if h.Tick(50) {
		t.Fatal("Tick fired before the aggregate period")
	}
	if !h.Tick(100) {
		t.Fatal("Tick did not fire at the aggregate period")
	}
	// Member 2 keeps reporting; member 1 goes silent.
	for now := sim.Time(200); now <= 900; now += 100 {
		h.Update(now, 2, 20)
		h.Tick(now)
	}
	if h.Members() != 2 {
		t.Fatalf("members = %d before the timeout, want 2", h.Members())
	}
	if !h.Tick(1100) {
		t.Fatal("Tick did not fire")
	}
	if h.Members() != 1 || st.RepairMembersEvicted != 1 {
		t.Fatalf("members = %d, evicted = %d; want 1 member left and 1 eviction",
			h.Members(), st.RepairMembersEvicted)
	}
	if _, ok := h.Retained(0); ok {
		t.Fatal("unrelated sequence retained")
	}
	// The survivor alone now defines the aggregate.
	if min, n := h.Aggregate(100); min != 20 || n != 1 {
		t.Fatalf("aggregate = (%d, %d) after eviction, want (20, 1)", min, n)
	}
}
