// Package repair implements the hierarchical recovery tier: the repair-
// head role a receiver takes on so the sender tracks O(heads) state
// instead of O(receivers).
//
// A Head sits between the sender and a subtree of downstream receivers.
// Downstream members direct their feedback (JOIN/UPDATE/LEAVE) and
// retransmission requests (HEAD_NAK) at the head instead of the sender.
// The head
//
//   - retains the data packets it has delivered in its own
//     retransmission window (reusing internal/packet refcounting when
//     the packets are pool-owned) and answers HEAD_NAKs from that
//     window by multicasting the repair into its subtree,
//
//   - suppresses duplicate HEAD_NAKs for the same sequence number
//     within a suppression interval, so one loss shared by many members
//     produces one repair,
//
//   - escalates requests it cannot answer to the sender as an ordinary
//     NAK, and
//
//   - periodically emits one aggregated UPDATE (AGG_UPDATE) carrying
//     the minimum next-expected sequence number across itself and all
//     downstream members, which is all the sender needs for its
//     release decision.
//
// The Head is sans-I/O like the sender and receiver machines: the
// embedding receiver feeds it events and ships the packets it decides
// to emit. All methods are single-goroutine, driven by the receiver's
// lock.
package repair

import (
	"repro/internal/kernel"
	"repro/internal/packet"
	"repro/internal/seqspace"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Defaults for Config fields left zero.
const (
	// DefaultAggregatePeriod spaces AGG_UPDATEs to the sender. It is
	// deliberately coarser than the receiver's own adaptive UPDATE
	// period: the head speaks for many members, and the sender's
	// release path only needs the subtree minimum, not a fresh sample
	// every RTT.
	DefaultAggregatePeriod = 25 * kernel.Jiffy
	// DefaultSuppressionInterval is how long after answering (or
	// escalating) a sequence number the head ignores further HEAD_NAKs
	// for it — long enough for the repair to reach the subtree, short
	// enough that a lost repair is re-requested quickly.
	DefaultSuppressionInterval = 4 * kernel.Jiffy
	// DefaultMemberTimeout evicts downstream members that stopped
	// reporting, so a crashed leaf cannot pin the aggregate minimum
	// (and thus the sender's buffer) forever. It must comfortably
	// exceed the receiver's maximum UPDATE period (500 jiffies = 5 s):
	// evicting a live-but-quiet leaf drops it from the aggregate, which
	// is the unsafe direction.
	DefaultMemberTimeout = 16 * sim.Second
	// DefaultWindowPackets bounds the head's retained retransmission
	// window.
	DefaultWindowPackets = 512
	// DefaultLeaveDrainTimeout bounds how long a departing head defers
	// its own LEAVE waiting for the subtree to drain. A silently-dead
	// leaf would otherwise wedge shutdown for the full MemberTimeout.
	DefaultLeaveDrainTimeout = 4 * sim.Second
	// DefaultDeclineTTL is how long a declined sequence number is
	// remembered. After expiry a re-asked decline is re-derived through
	// the sender (escalate → NAK_ERR → decline), so a short TTL only
	// costs one extra round trip.
	DefaultDeclineTTL = 2 * sim.Second
)

// Config parameterizes a repair head.
type Config struct {
	// AggregatePeriod is the interval between AGG_UPDATEs to the
	// sender. Zero means DefaultAggregatePeriod.
	AggregatePeriod sim.Time
	// SuppressionInterval is the duplicate-NAK suppression window per
	// sequence number. Zero means DefaultSuppressionInterval.
	SuppressionInterval sim.Time
	// MemberTimeout evicts members not heard from for this long. Zero
	// means DefaultMemberTimeout.
	MemberTimeout sim.Time
	// WindowPackets bounds the retained retransmission window, in
	// packets. Zero means DefaultWindowPackets. The embedding receiver
	// raises it to at least twice its receive-window size so that
	// evicted packets are always already consumed (below the receive
	// window's base) — the invariant that makes non-pooled eviction a
	// plain pointer drop.
	WindowPackets int
	// LeaveDrainTimeout caps the deferred-LEAVE drain: a departing head
	// waits at most this long for every member to reach the stream end
	// before leaving anyway. Zero means DefaultLeaveDrainTimeout.
	LeaveDrainTimeout sim.Time
}

func (c *Config) sanitize() {
	if c.AggregatePeriod <= 0 {
		c.AggregatePeriod = DefaultAggregatePeriod
	}
	if c.SuppressionInterval <= 0 {
		c.SuppressionInterval = DefaultSuppressionInterval
	}
	if c.MemberTimeout <= 0 {
		c.MemberTimeout = DefaultMemberTimeout
	}
	if c.WindowPackets <= 0 {
		c.WindowPackets = DefaultWindowPackets
	}
	if c.LeaveDrainTimeout <= 0 {
		c.LeaveDrainTimeout = DefaultLeaveDrainTimeout
	}
}

// Member is one downstream receiver the head answers for.
type Member struct {
	Addr packet.NodeID
	// NextExpected is the member's reported next-expected sequence
	// number (its rcv_nxt). Every repair-plane packet carries one, so
	// unlike the sender's membership table there is no unknown state.
	NextExpected seqspace.Seq
	// LastHeard drives timeout-based eviction.
	LastHeard sim.Time
}

// Head is the repair-head state machine a receiver embeds.
type Head struct {
	cfg Config
	st  *stats.Receiver
	// pooled records whether retained packets are pool-owned (the
	// receiver's zero-copy datapath with recycling on). When true the
	// head holds a reference (packet.Retain at retention, packet.Put at
	// eviction); when false — netsim clones, or an aliasing FEC cache —
	// retention is a plain pointer copy and eviction a plain drop:
	// donating a non-pooled packet to the pool could hand its buffer to
	// a new packet while a receive window still aliases it.
	pooled bool

	members map[packet.NodeID]*Member

	// win is the retained retransmission window, keyed by sequence
	// number; low tracks the lowest retained seq so eviction is O(1)
	// amortized (sequence numbers are retained in near-order).
	win map[seqspace.Seq]*packet.Packet
	low seqspace.Seq

	// answered records, per sequence number, when the head last served
	// or escalated a repair — the NAK-suppression state.
	answered map[seqspace.Seq]sim.Time

	// declined records sequence numbers the sender refused (NAK_ERR): the
	// data is released end-to-end and re-escalating cannot help, so the
	// head answers further HEAD_NAKs for them with HEAD_DECLINE. Entries
	// expire after DefaultDeclineTTL.
	declined map[seqspace.Seq]sim.Time

	// timer paces AGG_UPDATEs and member eviction.
	timer kernel.Timer
}

// NewHead creates a head. pooled declares whether retained packets are
// pool-owned (see the field comment); st receives repair-tier counters
// and must be non-nil.
func NewHead(now sim.Time, cfg Config, pooled bool, st *stats.Receiver) *Head {
	cfg.sanitize()
	h := &Head{
		cfg:      cfg,
		st:       st,
		pooled:   pooled,
		members:  make(map[packet.NodeID]*Member),
		win:      make(map[seqspace.Seq]*packet.Packet),
		answered: make(map[seqspace.Seq]sim.Time),
		declined: make(map[seqspace.Seq]sim.Time),
	}
	st.RepairHead = 1
	h.timer.ArmIn(now, cfg.AggregatePeriod)
	return h
}

// Members returns the current downstream member count.
func (h *Head) Members() int { return len(h.members) }

// Join registers a downstream member reporting nextExpected, returning
// whether it was new. Re-joins just refresh the existing entry.
func (h *Head) Join(now sim.Time, from packet.NodeID, nextExpected seqspace.Seq) bool {
	if m, ok := h.members[from]; ok {
		m.NextExpected = nextExpected
		m.LastHeard = now
		return false
	}
	h.members[from] = &Member{Addr: from, NextExpected: nextExpected, LastHeard: now}
	h.st.RepairMembers = int64(len(h.members))
	return true
}

// Update records a member's reported next-expected sequence number.
// Unknown members are added implicitly — a leaf whose JOIN raced the
// head's startup must not be lost.
func (h *Head) Update(now sim.Time, from packet.NodeID, nextExpected seqspace.Seq) {
	m, ok := h.members[from]
	if !ok {
		h.Join(now, from, nextExpected)
		return
	}
	// Unlike the sender's monotonic Update, regressions are accepted:
	// they only make the aggregate more conservative, which is the safe
	// direction.
	m.NextExpected = nextExpected
	m.LastHeard = now
}

// Leave removes a departing member.
func (h *Head) Leave(from packet.NodeID) {
	if _, ok := h.members[from]; !ok {
		return
	}
	delete(h.members, from)
	h.st.RepairMembers = int64(len(h.members))
}

// Retain stores a delivered data packet in the head's retransmission
// window, evicting the lowest retained sequence number when the window
// is full. The caller passes packets as the receive window accepts
// them; the head takes its own reference when they are pool-owned.
func (h *Head) Retain(p *packet.Packet) {
	seq := seqspace.Seq(p.Seq)
	if _, dup := h.win[seq]; dup {
		return
	}
	if len(h.win) == 0 || seqspace.Before(seq, h.low) {
		h.low = seq
	}
	if h.pooled {
		packet.Retain(p)
	}
	h.win[seq] = p
	for len(h.win) > h.cfg.WindowPackets {
		h.evictLowest()
	}
}

func (h *Head) evictLowest() {
	for {
		if p, ok := h.win[h.low]; ok {
			delete(h.win, h.low)
			if h.pooled {
				packet.Put(p)
			}
			h.low++
			return
		}
		h.low++
	}
}

// Retained returns the stored packet for seq, if the head still holds
// it. Callers copy the payload before re-emitting — the packet may be
// aliased by the receive window (and, when pooled, by the pool).
func (h *Head) Retained(seq seqspace.Seq) (*packet.Packet, bool) {
	p, ok := h.win[seq]
	return p, ok
}

// Handled implements NAK suppression: it reports whether seq was
// already answered or escalated within the suppression interval, and
// otherwise records now as the time it is being handled. One call per
// requested sequence number, before serving the repair.
func (h *Head) Handled(now sim.Time, seq seqspace.Seq) bool {
	if t, ok := h.answered[seq]; ok && now-t < h.cfg.SuppressionInterval {
		return true
	}
	h.answered[seq] = now
	if len(h.answered) > 4*h.cfg.WindowPackets {
		h.pruneAnswered(now)
	}
	return false
}

func (h *Head) pruneAnswered(now sim.Time) {
	for seq, t := range h.answered {
		if now-t >= h.cfg.SuppressionInterval {
			delete(h.answered, seq)
		}
	}
}

// Decline records that the sender refused seq with a NAK_ERR: the range
// is released and un-servable, so the head answers further HEAD_NAKs
// for it with an explicit HEAD_DECLINE instead of re-escalating.
func (h *Head) Decline(now sim.Time, seq seqspace.Seq) {
	h.declined[seq] = now
	if len(h.declined) > 4*h.cfg.WindowPackets {
		for s, t := range h.declined {
			if now-t >= DefaultDeclineTTL {
				delete(h.declined, s)
			}
		}
	}
}

// Declined reports whether seq carries an unexpired decline.
func (h *Head) Declined(now sim.Time, seq seqspace.Seq) bool {
	t, ok := h.declined[seq]
	if !ok {
		return false
	}
	if now-t >= DefaultDeclineTTL {
		delete(h.declined, seq)
		return false
	}
	return true
}

// LeaveDrainTimeout returns the configured deferred-LEAVE drain bound.
func (h *Head) LeaveDrainTimeout() sim.Time { return h.cfg.LeaveDrainTimeout }

// Aggregate returns the minimum next-expected sequence number across
// the head's own frontier and all downstream members, plus the member
// count — the AGG_UPDATE contents.
func (h *Head) Aggregate(own seqspace.Seq) (min seqspace.Seq, members int) {
	min = own
	for _, m := range h.members {
		if seqspace.Before(m.NextExpected, min) {
			min = m.NextExpected
		}
	}
	return min, len(h.members)
}

// ClampNext returns the subtree minimum given the head's own frontier —
// the value every head-to-sender feedback packet must report instead of
// the head's own rcv_nxt, so the sender never releases data a
// downstream member still needs.
func (h *Head) ClampNext(own seqspace.Seq) seqspace.Seq {
	min, _ := h.Aggregate(own)
	return min
}

// Drained reports whether every downstream member is at or past end —
// the condition for the head to forward its own LEAVE after delivering
// the stream end.
func (h *Head) Drained(end seqspace.Seq) bool {
	for _, m := range h.members {
		if seqspace.Before(m.NextExpected, end) {
			return false
		}
	}
	return true
}

// Tick drives the head's timer. It returns true when the aggregate
// period elapsed — the embedding receiver then emits an AGG_UPDATE.
// Expired members are evicted on the same cadence.
func (h *Head) Tick(now sim.Time) bool {
	if !h.timer.Fire(now) {
		return false
	}
	h.evictExpired(now)
	h.timer.ArmIn(now, h.cfg.AggregatePeriod)
	return true
}

func (h *Head) evictExpired(now sim.Time) {
	for addr, m := range h.members {
		if now-m.LastHeard >= h.cfg.MemberTimeout {
			delete(h.members, addr)
			h.st.RepairMembersEvicted++
		}
	}
	h.st.RepairMembers = int64(len(h.members))
}

// NextWake returns when Tick next needs to run.
func (h *Head) NextWake() (sim.Time, bool) { return h.timer.Deadline() }

// Timer exposes the head's timer so the embedding receiver can fold it
// into its own NextWake calculation.
func (h *Head) Timer() *kernel.Timer { return &h.timer }

// ReleaseAll drops the retained window, returning pool-owned packets.
// For teardown; the head must not be used afterwards.
func (h *Head) ReleaseAll() {
	for seq, p := range h.win {
		if h.pooled {
			packet.Put(p)
		}
		delete(h.win, seq)
	}
}
