package app

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPatternDeterministicAndVaried(t *testing.T) {
	a := make([]byte, 1024)
	b := make([]byte, 1024)
	FillPattern(a, 0)
	FillPattern(b, 0)
	if !bytes.Equal(a, b) {
		t.Fatal("pattern not deterministic")
	}
	// Offset-dependence: shifted fills differ.
	FillPattern(b, 1)
	if bytes.Equal(a, b) {
		t.Fatal("pattern ignores offset")
	}
	// No trivial short period.
	if bytes.Equal(a[:256], a[256:512]) {
		t.Error("pattern repeats with period 256")
	}
	if i := VerifyPattern(a, 0); i != -1 {
		t.Errorf("VerifyPattern flagged clean data at %d", i)
	}
	a[100] ^= 0xFF
	if i := VerifyPattern(a, 0); i != 100 {
		t.Errorf("VerifyPattern found corruption at %d, want 100", i)
	}
}

// Property: filling in two chunks equals filling at once.
func TestPropPatternChunked(t *testing.T) {
	f := func(off int64, split uint8) bool {
		if off < 0 {
			off = -off
		}
		whole := make([]byte, 256)
		FillPattern(whole, off)
		parts := make([]byte, 256)
		k := int(split)
		FillPattern(parts[:k], off)
		FillPattern(parts[k:], off+int64(k))
		return bytes.Equal(whole, parts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemorySource(t *testing.T) {
	s := NewMemorySource(1000)
	if s.Available(0) != 1000 || s.Remaining() != 1000 {
		t.Fatal("fresh source wrong")
	}
	buf := make([]byte, 600)
	if n := s.Produce(0, buf); n != 600 {
		t.Fatalf("Produce = %d", n)
	}
	if VerifyPattern(buf, 0) != -1 {
		t.Error("produced bytes do not match the pattern")
	}
	if s.Remaining() != 400 {
		t.Errorf("Remaining = %d", s.Remaining())
	}
	// Over-read clamps at the end and content continues the stream.
	n := s.Produce(0, buf)
	if n != 400 {
		t.Fatalf("tail Produce = %d", n)
	}
	if VerifyPattern(buf[:n], 600) != -1 {
		t.Error("tail bytes break the stream pattern")
	}
	if s.Available(0) != 0 || s.Remaining() != 0 {
		t.Error("exhausted source still reports data")
	}
}

func TestMemorySink(t *testing.T) {
	var s MemorySink
	if s.Budget(0) <= 0 {
		t.Error("memory sink has no budget")
	}
	s.Consume(0, 1<<20) // must not affect future budget
	if s.Budget(0) <= 0 {
		t.Error("memory sink budget exhausted")
	}
}

func TestDiskSourceRateLimit(t *testing.T) {
	cfg := DiskConfig{Rate: 1 << 20} // 1 MB/s, no stalls
	s := NewDiskSource(10<<20, cfg)
	if got := s.Available(0); got != 0 {
		t.Fatalf("available at t=0: %d", got)
	}
	// After 100 ms: 100 KB accrued, capped at CapBytes (64 KB default).
	if got := s.Available(100 * sim.Millisecond); got != 64<<10 {
		t.Fatalf("available after 100ms = %d, want capped 64K", got)
	}
	buf := make([]byte, 200<<10)
	n := s.Produce(100*sim.Millisecond, buf)
	if n != 64<<10 {
		t.Fatalf("Produce = %d, want 64K", n)
	}
	if VerifyPattern(buf[:n], 0) != -1 {
		t.Error("disk source broke the pattern")
	}
	// Credit was consumed; immediately after there is nothing.
	if got := s.Available(100 * sim.Millisecond); got != 0 {
		t.Errorf("available right after produce = %d", got)
	}
	// 10 ms later: 1 MiB/s × 10 ms ≈ 10486 bytes.
	if got := s.Available(110 * sim.Millisecond); got < 10300 || got > 10600 {
		t.Errorf("available after 10ms more = %d, want ≈10486", got)
	}
}

func TestDiskSourceEndOfFile(t *testing.T) {
	s := NewDiskSource(5000, DiskConfig{Rate: 1 << 30})
	buf := make([]byte, 10000)
	n := s.Produce(sim.Second, buf)
	if n > 5000 {
		t.Fatalf("produced %d of a 5000-byte file", n)
	}
	total := n
	for i := 0; i < 10 && total < 5000; i++ {
		total += s.Produce(sim.Second*sim.Time(i+2), buf)
	}
	if total != 5000 || s.Remaining() != 0 {
		t.Errorf("total produced %d, remaining %d", total, s.Remaining())
	}
}

func TestDiskSinkBudgetAndStalls(t *testing.T) {
	rng := sim.NewRNG(7)
	cfg := DiskConfig{
		Rate:       1 << 20,
		StallEvery: 50 * sim.Millisecond,
		StallFor:   20 * sim.Millisecond,
		RNG:        rng,
	}
	s := NewDiskSink(cfg)
	// Drive one simulated second in 1 ms steps, consuming all budget;
	// total consumed must be well below the stall-free 1 MB but not
	// zero.
	var consumed int
	for tms := 1; tms <= 1000; tms++ {
		now := sim.Time(tms) * sim.Millisecond
		b := s.Budget(now)
		s.Consume(now, b)
		consumed += b
	}
	stallFree := 1 << 20
	if consumed == 0 {
		t.Fatal("sink consumed nothing")
	}
	if consumed >= stallFree {
		t.Errorf("consumed %d, expected stalls to cost throughput (< %d)", consumed, stallFree)
	}
	if float64(consumed) < 0.4*float64(stallFree) {
		t.Errorf("consumed %d, stalls ate too much (expected ≈ 5/7 of %d)", consumed, stallFree)
	}
}

func TestDiskBudgetCapPreventsBanking(t *testing.T) {
	s := NewDiskSink(DiskConfig{Rate: 1 << 20, CapBytes: 32 << 10})
	s.Budget(0)
	// An hour of idle must bank at most the cap.
	if got := s.Budget(sim.Time(3600) * sim.Second); got != 32<<10 {
		t.Errorf("banked %d after long idle, want cap 32K", got)
	}
}

// Property: however advance times are interleaved, accrued budget never
// exceeds cap and never goes negative, and consumption is conserved.
func TestPropDiskBudgetBounds(t *testing.T) {
	f := func(steps []uint16, takes []uint16, seed uint64) bool {
		rng := sim.NewRNG(seed)
		s := NewDiskSink(DiskConfig{
			Rate: 512 << 10, StallEvery: 30 * sim.Millisecond,
			StallFor: 10 * sim.Millisecond, CapBytes: 16 << 10, RNG: rng,
		})
		now := sim.Time(0)
		for i, st := range steps {
			now += sim.Time(st) * sim.Microsecond
			b := s.Budget(now)
			if b < 0 || b > 16<<10 {
				return false
			}
			if i < len(takes) {
				take := int(takes[i])
				if take > b {
					take = b
				}
				s.Consume(now, take)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDefaultConfigs(t *testing.T) {
	rng := sim.NewRNG(1)
	src := DefaultDiskSourceConfig(rng)
	sink := DefaultDiskSinkConfig(rng)
	if src.Rate <= sink.Rate {
		t.Error("sequential reads should outpace writes in the disk model")
	}
	lineRate10Mbps := 1.25e6
	if sink.Rate < lineRate10Mbps {
		t.Error("sink must keep up with a 10 Mbps line on average")
	}
	if DefaultDiskConfig(rng).Rate != sink.Rate {
		t.Error("DefaultDiskConfig should alias the sink profile")
	}
}
