// Package app models the applications of the paper's experiments: the
// memory-to-memory tests ("the application was always ready") and the
// disk-to-disk tests ("slowed by I/O operations"). A Source produces the
// outgoing byte stream at the sender; a Sink rations how fast the
// receiving application drains the protocol's receive queue.
//
// Stream content is a deterministic byte pattern so that receivers can
// verify end-to-end integrity without shipping the file around.
package app

import "repro/internal/sim"

// PatternByte returns the stream byte at offset i: a cheap, position-
// dependent pattern with no short period.
func PatternByte(i int64) byte {
	x := uint64(i)*0x9E3779B97F4A7C15 + 0xDEADBEEF
	x ^= x >> 29
	return byte(x ^ x>>11)
}

// FillPattern writes the pattern for offsets [off, off+len(buf)).
func FillPattern(buf []byte, off int64) {
	for i := range buf {
		buf[i] = PatternByte(off + int64(i))
	}
}

// VerifyPattern checks buf against the pattern at offset off and returns
// the index of the first mismatch, or -1.
func VerifyPattern(buf []byte, off int64) int {
	for i := range buf {
		if buf[i] != PatternByte(off+int64(i)) {
			return i
		}
	}
	return -1
}

// Source produces the outgoing stream at the sender.
type Source interface {
	// Available returns how many bytes the application could hand to
	// the protocol at time now (bounded by I/O progress for disk
	// sources).
	Available(now sim.Time) int
	// Produce fills up to len(buf) bytes (no more than Available) and
	// advances the stream cursor, returning the count produced.
	Produce(now sim.Time, buf []byte) int
	// Remaining returns the bytes not yet produced; zero means the
	// application is finished and the connection can close.
	Remaining() int
}

// Sink rations application reads at a receiver.
type Sink interface {
	// Budget returns how many bytes the application is willing to read
	// at time now.
	Budget(now sim.Time) int
	// Consume records that n bytes were actually read.
	Consume(now sim.Time, n int)
}

// MemorySource is an always-ready source of size bytes (the memory-to-
// memory tests).
type MemorySource struct {
	size int64
	off  int64
}

// NewMemorySource returns a memory source of the given size.
func NewMemorySource(size int64) *MemorySource { return &MemorySource{size: size} }

// Available implements Source.
func (s *MemorySource) Available(sim.Time) int { return clampInt(s.size - s.off) }

// Produce implements Source.
func (s *MemorySource) Produce(_ sim.Time, buf []byte) int {
	n := len(buf)
	if r := clampInt(s.size - s.off); n > r {
		n = r
	}
	FillPattern(buf[:n], s.off)
	s.off += int64(n)
	return n
}

// Remaining implements Source.
func (s *MemorySource) Remaining() int { return clampInt(s.size - s.off) }

// MemorySink consumes instantly (the receiving application is always
// ready).
type MemorySink struct{}

// Budget implements Sink.
func (MemorySink) Budget(sim.Time) int { return 1 << 30 }

// Consume implements Sink.
func (MemorySink) Consume(sim.Time, int) {}

// DiskConfig parametrizes the disk I/O model: a sustained sequential
// rate plus occasional stalls ("a number of different activities in the
// operating system or I/O delays could have caused the application to
// slow", Section 5.1).
type DiskConfig struct {
	// Rate is the sustained disk bandwidth in bytes/second (a late-90s
	// disk sustains a few MB/s).
	Rate float64
	// StallEvery is the mean interval between stalls; zero disables
	// stalls.
	StallEvery sim.Time
	// StallFor is the mean stall duration.
	StallFor sim.Time
	// CapBytes bounds the accumulated I/O credit (a disk cannot "bank"
	// idle bandwidth for later; only a write-buffer's worth of burst is
	// absorbed). Zero selects 64 KiB.
	CapBytes int
	// RNG drives stall timing; required when StallEvery > 0.
	RNG *sim.RNG
}

// DefaultDiskConfig models the testbed's disks for callers that need a
// single profile; the source/sink-specific variants below are what the
// experiments use.
func DefaultDiskConfig(rng *sim.RNG) DiskConfig {
	return DefaultDiskSinkConfig(rng)
}

// DefaultDiskSourceConfig models sequential reads on the sending host:
// fast enough to keep a 10 Mbps link busy, with occasional OS-induced
// stalls.
func DefaultDiskSourceConfig(rng *sim.RNG) DiskConfig {
	return DiskConfig{
		Rate:       2 << 20, // 2 MB/s sustained sequential reads
		StallEvery: 200 * sim.Millisecond,
		StallFor:   20 * sim.Millisecond,
		RNG:        rng,
	}
}

// DefaultDiskSinkConfig models writes on a receiving host: sustained
// bandwidth just below the 10 Mbps line rate, plus stalls. The receiving
// application therefore falls behind, the kernel buffer fills, and the
// receiver's rate requests throttle the sender — the behaviour behind
// the disk-test feedback activity of Figure 11.
func DefaultDiskSinkConfig(rng *sim.RNG) DiskConfig {
	return DiskConfig{
		Rate:       1400 << 10, // just above a 10 Mbps line: keeps up on average
		StallEvery: 100 * sim.Millisecond,
		StallFor:   40 * sim.Millisecond,
		RNG:        rng,
	}
}

// ioBudget is the common progress meter for disk sources and sinks: an
// I/O budget that grows at Rate, interrupted by random stalls.
type ioBudget struct {
	cfg       DiskConfig
	started   bool
	lastAt    sim.Time
	credit    float64 // accumulated I/O budget in bytes
	nextStall sim.Time
	stallEnd  sim.Time
}

func newIOBudget(cfg DiskConfig) ioBudget {
	if cfg.CapBytes <= 0 {
		cfg.CapBytes = 64 << 10
	}
	return ioBudget{cfg: cfg}
}

// advance accrues budget to now, honoring stalls.
func (b *ioBudget) advance(now sim.Time) {
	if !b.started {
		b.started = true
		b.lastAt = now
		if b.cfg.StallEvery > 0 && b.cfg.RNG != nil {
			b.nextStall = now + b.cfg.RNG.Exp(b.cfg.StallEvery)
		}
		return
	}
	for b.lastAt < now {
		// Accrue in segments split at stall boundaries.
		segEnd := now
		inStall := b.lastAt < b.stallEnd
		if inStall && b.stallEnd < segEnd {
			segEnd = b.stallEnd
		}
		if !inStall && b.nextStall > 0 && b.nextStall > b.lastAt && b.nextStall < segEnd {
			segEnd = b.nextStall
		}
		if !inStall {
			b.credit += b.cfg.Rate * (segEnd - b.lastAt).Seconds()
		}
		b.lastAt = segEnd
		if b.nextStall > 0 && b.lastAt >= b.nextStall && b.lastAt >= b.stallEnd {
			// Enter a stall.
			b.stallEnd = b.lastAt + b.cfg.RNG.Exp(b.cfg.StallFor)
			b.nextStall = b.stallEnd + b.cfg.RNG.Exp(b.cfg.StallEvery)
		}
	}
	if b.credit > float64(b.cfg.CapBytes) {
		b.credit = float64(b.cfg.CapBytes)
	}
}

func (b *ioBudget) take(n int) { b.credit -= float64(n) }

func (b *ioBudget) available() int {
	if b.credit <= 0 {
		return 0
	}
	return int(b.credit)
}

// DiskSource reads the stream from a modeled disk.
type DiskSource struct {
	budget ioBudget
	size   int64
	off    int64
}

// NewDiskSource returns a disk-backed source of the given size.
func NewDiskSource(size int64, cfg DiskConfig) *DiskSource {
	return &DiskSource{budget: newIOBudget(cfg), size: size}
}

// Available implements Source.
func (s *DiskSource) Available(now sim.Time) int {
	s.budget.advance(now)
	n := s.budget.available()
	if r := clampInt(s.size - s.off); n > r {
		n = r
	}
	return n
}

// Produce implements Source.
func (s *DiskSource) Produce(now sim.Time, buf []byte) int {
	n := len(buf)
	if a := s.Available(now); n > a {
		n = a
	}
	FillPattern(buf[:n], s.off)
	s.off += int64(n)
	s.budget.take(n)
	return n
}

// Remaining implements Source.
func (s *DiskSource) Remaining() int { return clampInt(s.size - s.off) }

// DiskSink writes the received stream to a modeled disk.
type DiskSink struct {
	budget ioBudget
}

// NewDiskSink returns a disk-backed sink.
func NewDiskSink(cfg DiskConfig) *DiskSink {
	return &DiskSink{budget: newIOBudget(cfg)}
}

// Budget implements Sink.
func (s *DiskSink) Budget(now sim.Time) int {
	s.budget.advance(now)
	return s.budget.available()
}

// Consume implements Sink.
func (s *DiskSink) Consume(_ sim.Time, n int) { s.budget.take(n) }

func clampInt(v int64) int {
	if v < 0 {
		return 0
	}
	if v > 1<<30 {
		return 1 << 30
	}
	return int(v)
}
