package seqspace

import (
	"testing"
	"testing/quick"
)

func TestBeforeAfterBasic(t *testing.T) {
	cases := []struct {
		a, b   Seq
		before bool
	}{
		{0, 1, true},
		{1, 0, false},
		{0, 0, false},
		{100, 200, true},
		{0xFFFFFFFF, 0, true},     // wrap: max precedes 0
		{0xFFFFFFF0, 0x10, true},  // wrap across zero
		{0x10, 0xFFFFFFF0, false}, // and the reverse
		{0, 0x7FFFFFFF, true},     // edge of half-space
		// Antipodal pairs (distance exactly 2^31) have no defined order;
		// the implementation deterministically reports both as Before.
		{0, 0x80000000, true},
		{0x80000000, 0, true},
		{0x80000001, 0, true}, // just inside the half-space
	}
	for _, c := range cases {
		if got := Before(c.a, c.b); got != c.before {
			t.Errorf("Before(%#x, %#x) = %v, want %v", c.a, c.b, got, c.before)
		}
		if c.a != c.b && Diff(c.a, c.b) != -(1<<31) {
			if got := After(c.b, c.a); got != c.before {
				t.Errorf("After(%#x, %#x) = %v, want %v", c.b, c.a, got, c.before)
			}
		}
	}
}

func TestAtOrBeforeAfter(t *testing.T) {
	if !AtOrBefore(5, 5) || !AtOrAfter(5, 5) {
		t.Fatal("equal sequence numbers must satisfy AtOrBefore and AtOrAfter")
	}
	if !AtOrBefore(4, 5) {
		t.Fatal("AtOrBefore(4,5) = false")
	}
	if !AtOrAfter(6, 5) {
		t.Fatal("AtOrAfter(6,5) = false")
	}
	if AtOrBefore(6, 5) {
		t.Fatal("AtOrBefore(6,5) = true")
	}
}

func TestDiff(t *testing.T) {
	if d := Diff(10, 4); d != 6 {
		t.Errorf("Diff(10,4) = %d, want 6", d)
	}
	if d := Diff(4, 10); d != -6 {
		t.Errorf("Diff(4,10) = %d, want -6", d)
	}
	if d := Diff(2, 0xFFFFFFFE); d != 4 {
		t.Errorf("Diff across wrap = %d, want 4", d)
	}
}

func TestMinMax(t *testing.T) {
	if m := Min(0xFFFFFFFF, 2); m != 0xFFFFFFFF {
		t.Errorf("Min across wrap = %#x, want 0xFFFFFFFF", m)
	}
	if m := Max(0xFFFFFFFF, 2); m != 2 {
		t.Errorf("Max across wrap = %#x, want 2", m)
	}
	if m := Min(3, 3); m != 3 {
		t.Errorf("Min(3,3) = %d", m)
	}
}

func TestInWindow(t *testing.T) {
	cases := []struct {
		s, start Seq
		size     uint32
		in       bool
	}{
		{5, 5, 1, true},
		{5, 5, 0, false},
		{6, 5, 1, false},
		{4, 5, 10, false},
		{14, 5, 10, true},
		{15, 5, 10, false},
		{1, 0xFFFFFFFE, 8, true}, // window straddles wrap
		{0xFFFFFFFD, 0xFFFFFFFE, 8, false},
	}
	for _, c := range cases {
		if got := InWindow(c.s, c.start, c.size); got != c.in {
			t.Errorf("InWindow(%#x, %#x, %d) = %v, want %v", c.s, c.start, c.size, got, c.in)
		}
	}
}

func TestRange(t *testing.T) {
	var got []Seq
	Range(0xFFFFFFFE, 3, func(s Seq) bool {
		got = append(got, s)
		return true
	})
	want := []Seq{0xFFFFFFFE, 0xFFFFFFFF, 0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("Range produced %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range produced %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	Range(0, 100, func(Seq) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("Range early stop visited %d, want 3", n)
	}
	// Empty interval.
	Range(5, 5, func(Seq) bool { t.Fatal("Range visited an empty interval"); return true })
	Range(6, 5, func(Seq) bool { t.Fatal("Range visited an inverted interval"); return true })
}

func TestCount(t *testing.T) {
	if c := Count(5, 5); c != 0 {
		t.Errorf("Count(5,5) = %d, want 0", c)
	}
	if c := Count(6, 5); c != 0 {
		t.Errorf("Count(6,5) = %d, want 0", c)
	}
	if c := Count(5, 8); c != 3 {
		t.Errorf("Count(5,8) = %d, want 3", c)
	}
	if c := Count(0xFFFFFFFE, 2); c != 4 {
		t.Errorf("Count across wrap = %d, want 4", c)
	}
}

// Property: within a half-space, Before is a strict total order:
// irreflexive, asymmetric, and trichotomous.
func TestPropBeforeStrictOrder(t *testing.T) {
	f := func(a, b uint32) bool {
		sa, sb := Seq(a), Seq(b)
		if Diff(sa, sb) == -(1 << 31) { // antipodal pair: order undefined
			return true
		}
		if sa == sb {
			return !Before(sa, sb) && !After(sa, sb)
		}
		// Exactly one of Before/After holds.
		return Before(sa, sb) != Before(sb, sa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: translation invariance — shifting both operands by the same
// offset preserves order.
func TestPropTranslationInvariance(t *testing.T) {
	f := func(a, b, k uint32) bool {
		sa, sb, sk := Seq(a), Seq(b), k
		return Before(sa, sb) == Before(Add(sa, sk), Add(sb, sk))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: InWindow(s, start, size) iff 0 <= Diff(s, start) < size, for
// window sizes below the half-space bound.
func TestPropInWindowDiff(t *testing.T) {
	f := func(s, start uint32, size uint32) bool {
		sz := size % (1 << 30)
		in := InWindow(Seq(s), Seq(start), sz)
		d := Diff(Seq(s), Seq(start))
		want := d >= 0 && uint32(d) < sz
		return in == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Count(from, from+n) == n for n below the half-space bound.
func TestPropCountRoundTrip(t *testing.T) {
	f := func(from, n uint32) bool {
		k := n % (1 << 30)
		return Count(Seq(from), Add(Seq(from), k)) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
