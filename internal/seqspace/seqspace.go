// Package seqspace implements 32-bit wrap-around sequence number
// arithmetic as used by the RMC/H-RMC sequence space.
//
// Sequence numbers identify packets, not bytes. Comparisons are defined
// over a half-space: a is "before" b when the signed 32-bit distance from
// a to b is positive. This matches the TCP-style serial number arithmetic
// of RFC 1982 with SERIAL_BITS = 32 and is valid as long as live sequence
// numbers span less than 2^31.
package seqspace

// Seq is a 32-bit wrap-around sequence number.
type Seq uint32

// Before reports whether a precedes b in the sequence space.
func Before(a, b Seq) bool { return int32(a-b) < 0 }

// After reports whether a follows b in the sequence space.
func After(a, b Seq) bool { return int32(a-b) > 0 }

// AtOrBefore reports whether a precedes or equals b.
func AtOrBefore(a, b Seq) bool { return int32(a-b) <= 0 }

// AtOrAfter reports whether a follows or equals b.
func AtOrAfter(a, b Seq) bool { return int32(a-b) >= 0 }

// Diff returns the signed distance from b to a (a - b). The result is
// positive when a is after b.
func Diff(a, b Seq) int32 { return int32(a - b) }

// Min returns the earlier of a and b.
func Min(a, b Seq) Seq {
	if Before(a, b) {
		return a
	}
	return b
}

// Max returns the later of a and b.
func Max(a, b Seq) Seq {
	if After(a, b) {
		return a
	}
	return b
}

// InWindow reports whether s lies in the half-open window [start,
// start+size).
func InWindow(s, start Seq, size uint32) bool {
	d := int32(s - start)
	return d >= 0 && uint32(d) < size
}

// Add advances s by n, wrapping.
func Add(s Seq, n uint32) Seq { return s + Seq(n) }

// Range iterates the half-open interval [from, to), calling fn for each
// sequence number in order. It stops early if fn returns false. Range is a
// no-op when to is at or before from.
func Range(from, to Seq, fn func(Seq) bool) {
	for s := from; Before(s, to); s++ {
		if !fn(s) {
			return
		}
	}
}

// Count returns the number of sequence numbers in the half-open interval
// [from, to), or 0 when to is at or before from.
func Count(from, to Seq) uint32 {
	d := int32(to - from)
	if d <= 0 {
		return 0
	}
	return uint32(d)
}
