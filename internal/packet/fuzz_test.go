package packet

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the wire decoder: it must never
// panic, and anything it accepts must re-encode to a packet that decodes
// to the same header and payload (canonical round trip).
func FuzzDecode(f *testing.F) {
	// Seed with valid encodings of each packet type plus mutations.
	for _, ty := range Types() {
		p := &Packet{Header: Header{
			Type: ty, Seq: 12345, RateAdv: 999, SrcPort: 7, DstPort: 9,
		}}
		if ty == TypeData {
			p.Payload = []byte("fuzz seed payload")
			p.Length = uint32(len(p.Payload))
		}
		buf, err := p.Encode(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		mut := append([]byte(nil), buf...)
		mut[4] ^= 0x80
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		re, err := p.Encode(nil)
		if err != nil {
			t.Fatalf("accepted packet does not re-encode: %v (%v)", err, p)
		}
		q, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded packet does not decode: %v", err)
		}
		if q.Header != p.Header || !bytes.Equal(q.Payload, p.Payload) {
			t.Fatalf("canonical round trip changed the packet:\n %+v\n %+v", p, q)
		}
	})
}
