package packet

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the wire decoder: it must never
// panic, and anything it accepts must re-encode to a packet that decodes
// to the same header and payload (canonical round trip).
func FuzzDecode(f *testing.F) {
	// Seed with valid encodings of each packet type plus mutations.
	for _, ty := range Types() {
		p := &Packet{Header: Header{
			Type: ty, Seq: 12345, RateAdv: 999, SrcPort: 7, DstPort: 9,
		}}
		if ty == TypeData {
			p.Payload = []byte("fuzz seed payload")
			p.Length = uint32(len(p.Payload))
		}
		buf, err := p.Encode(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		mut := append([]byte(nil), buf...)
		mut[4] ^= 0x80
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		re, err := p.Encode(nil)
		if err != nil {
			t.Fatalf("accepted packet does not re-encode: %v (%v)", err, p)
		}
		q, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded packet does not decode: %v", err)
		}
		if q.Header != p.Header || !bytes.Equal(q.Payload, p.Payload) {
			t.Fatalf("canonical round trip changed the packet:\n %+v\n %+v", p, q)
		}
	})
}

// FuzzDecodeBorrow checks the alias-decode path against the cloning
// path on arbitrary bytes: both must accept and reject the same
// inputs, an accepted borrow must be bit-exact with the clone while
// genuinely aliasing the envelope buffer, and once a borrowed packet
// is released to the pool, mutating the source buffer must not be
// observable through packets subsequently handed out by the pool.
func FuzzDecodeBorrow(f *testing.F) {
	for _, ty := range Types() {
		p := &Packet{Header: Header{
			Type: ty, Seq: 4242, RateAdv: 17, SrcPort: 3, DstPort: 5,
		}}
		if ty == TypeData {
			p.Payload = []byte("borrowed fuzz payload")
			p.Length = uint32(len(p.Payload))
		}
		buf, err := p.Encode(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		mut := append([]byte(nil), buf...)
		mut[0] ^= 0x01
		f.Add(mut)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Borrow-decode from a private copy so post-release mutation
		// below cannot be confused with the fuzzer reusing data.
		src := append([]byte(nil), data...)
		b := Get()
		defer func() {
			if b != nil {
				Put(b)
			}
		}()
		borrowErr := DecodeBorrow(b, src)

		c := Get()
		defer Put(c)
		cloneErr := DecodeInto(c, data)

		if (borrowErr == nil) != (cloneErr == nil) {
			t.Fatalf("accept mismatch: DecodeBorrow=%v DecodeInto=%v", borrowErr, cloneErr)
		}
		if borrowErr != nil {
			return
		}
		if b.Header != c.Header || !bytes.Equal(b.Payload, c.Payload) {
			t.Fatalf("borrow differs from clone:\n %+v\n %+v", b, c)
		}
		if len(b.Payload) > 0 {
			if !b.Borrowed() {
				t.Fatal("non-empty payload decoded without the borrowed mark")
			}
			if &b.Payload[0] != &src[HeaderSize] {
				t.Fatal("borrowed payload does not alias the envelope buffer")
			}
		}

		// Release the borrow, then trash the source buffer. The pool
		// must have dropped the borrowed backing on Put, so no packet
		// it hands out afterwards may alias src: scribbling over a
		// fresh packet's full payload capacity must leave src intact.
		Put(b)
		b = nil
		for i := range src {
			src[i] ^= 0xFF
		}
		want := append([]byte(nil), src...)
		r := Get()
		defer Put(r)
		pl := r.Payload[:cap(r.Payload)]
		for i := range pl {
			pl[i] = 0xA5
		}
		if !bytes.Equal(src, want) {
			t.Fatal("pool handed out a packet whose capacity aliases a released borrow")
		}
	})
}
