// Shared reference-counted packet pool. This is the allocation backbone
// of the zero-copy datapath: every hot path — transport receive loops,
// the sender's write-side chunking, the receive window's hold-until-
// release buffering — draws packets from one pool and returns them with
// an explicit Put, so a payload backing array is allocated once per
// buffer lifetime and then circulates, the way the paper's kernel
// module recycles sk_buffs instead of allocating per packet.
//
// Ownership rules:
//
//   - Get hands out a packet with one reference. Put drops a
//     reference; the packet is recycled when the last reference drops.
//     Retain adds a reference for a second concurrent holder (e.g. the
//     session's shared send poller keeping a window-owned packet alive
//     while a concurrent release races it).
//   - A packet that never came from the pool (plain &Packet{}) may
//     still be Put: it is absorbed into the pool, payload and all.
//     That is how GC-allocated packets from the sans-I/O machines
//     seed pool capacity instead of churning the collector.
//   - After the final Put the packet and its payload must not be
//     touched: the pool will hand both to an unrelated path.
//   - A borrowed packet (DecodeBorrow) aliases a caller-owned envelope
//     buffer; Put drops the alias instead of capturing the foreign
//     backing array, so later mutation of the envelope buffer can
//     never be observed through the pool.
//
// The Gets/Puts/News counters are process-wide and monotonically
// increasing; `gets - puts` is the number of packets currently checked
// out, which the control plane exports so buffer leaks are visible in
// production.
package packet

import (
	"sync"
	"sync/atomic"
)

// The pool is split by payload ownership so capacity lands where it is
// needed: bufPool holds packets that own a payload backing array
// (senders chunking app data, transports cloning for delivery), while
// barePool holds packets with no payload capacity — control packets and
// borrowed-decode packets whose alias was dropped at Put. Get serves
// alias/zero-payload users from barePool first; GetBuf serves copying
// users from bufPool first. Without the split, a borrowed-receive
// packet recycled into a sender's Write would arrive with nil payload
// and force a fresh backing-array allocation per packet.
var (
	bufPool  sync.Pool
	barePool sync.Pool
)

func poolGet(primary, fallback *sync.Pool) *Packet {
	if v := primary.Get(); v != nil {
		return v.(*Packet)
	}
	if v := fallback.Get(); v != nil {
		return v.(*Packet)
	}
	poolNews.Add(1)
	return new(Packet)
}

var (
	poolGets atomic.Int64
	poolPuts atomic.Int64
	poolNews atomic.Int64
)

// PoolCounters is a snapshot of the shared pool's activity counters.
type PoolCounters struct {
	// Gets counts packets handed out by Get.
	Gets int64
	// Puts counts packets recycled by the final Put.
	Puts int64
	// News counts pool misses — packets freshly allocated because the
	// pool was empty.
	News int64
}

// PoolStats returns the current pool counters. Gets - Puts is the
// number of packets currently checked out.
func PoolStats() PoolCounters {
	return PoolCounters{
		Gets: poolGets.Load(),
		Puts: poolPuts.Load(),
		News: poolNews.Load(),
	}
}

// Get takes a packet from the shared pool with one reference. The
// header is zeroed; the payload slice is empty but usually has no
// capacity — Get is for callers that alias a payload (DecodeBorrow) or
// build payload-less control packets. Callers that copy bytes into the
// payload should use GetBuf.
func Get() *Packet {
	poolGets.Add(1)
	p := poolGet(&barePool, &bufPool)
	atomic.StoreInt32(&p.refs, 1)
	return p
}

// GetBuf takes a packet from the shared pool with one reference and a
// zero-length payload of capacity at least n, preferring packets that
// already own a backing array so copy-side hot paths (sender chunking,
// transport cloning) reuse arrays instead of allocating per packet.
func GetBuf(n int) *Packet {
	poolGets.Add(1)
	p := poolGet(&bufPool, &barePool)
	atomic.StoreInt32(&p.refs, 1)
	if cap(p.Payload) < n {
		p.Payload = make([]byte, 0, n)
	}
	return p
}

// Retain adds a reference to p, deferring recycling until a matching
// Put. Retaining a packet that never came from Get gives it one
// tracked reference, so the next Put recycles it.
func Retain(p *Packet) {
	atomic.AddInt32(&p.refs, 1)
}

// Put drops one reference to p and recycles it into the shared pool
// when no references remain, keeping its payload capacity for reuse
// (borrowed payloads are dropped instead — see DecodeBorrow). Putting
// nil is a no-op. Putting a packet something still references without
// a covering Retain is a use-after-free bug: the payload bytes will be
// overwritten by an unrelated path.
func Put(p *Packet) {
	if p == nil {
		return
	}
	n := atomic.AddInt32(&p.refs, -1)
	if n > 0 {
		return
	}
	// n == 0 closes out a tracked reference from Get/Retain; n < 0 is a
	// never-tracked packet being absorbed (a donation, not a checkin),
	// which must not count against Gets or gets==puts balance checks
	// would see phantom double-frees.
	if n == 0 {
		poolPuts.Add(1)
	}
	var pl []byte
	if !p.borrowed {
		pl = p.Payload[:0]
	}
	*p = Packet{}
	p.Payload = pl
	if cap(pl) > 0 {
		bufPool.Put(p)
	} else {
		barePool.Put(p)
	}
}
