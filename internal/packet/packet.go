// Package packet implements the RMC/H-RMC wire format: the 20-byte packet
// header of Figure 1 of the paper and the eleven packet types of Table 1.
//
// Layout (big-endian, 20 bytes, mirroring the paper's Figure 1):
//
//	 0                   1                   2                   3
//	+---------------------------------+---------------------------------+
//	|           Source Port           |        Destination Port         |
//	+---------------------------------+---------------------------------+
//	|                         Sequence Number                           |
//	+-------------------------------------------------------------------+
//	|                        Rate Advertisement                         |
//	+-------------------------------------------------------------------+
//	|                             Length                                |
//	+---------------------------------+----------------+----------------+
//	|            Checksum             |     Tries      | Flags | Type   |
//	+---------------------------------+----------------+----------------+
//
// The paper's figure draws the URG and FIN flags on their own row but
// states the header is 20 bytes; here the flags occupy the top two bits of
// the final octet and the packet type the low six bits, which preserves
// the 20-byte size.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

// HeaderSize is the encoded size of an RMC/H-RMC header in bytes.
const HeaderSize = 20

// Type identifies an RMC/H-RMC packet type (Table 1 of the paper).
type Type uint8

// Packet types. DATA through KEEPALIVE are the nine original RMC types;
// UPDATE and PROBE were added by H-RMC.
const (
	TypeInvalid       Type = iota // zero value; never on the wire
	TypeData                      // sender: data transmissions and retransmissions
	TypeNak                       // receiver: request data retransmission
	TypeNakErr                    // sender: cannot satisfy retransmission request
	TypeJoin                      // receiver: request to join the multicast group
	TypeJoinResponse              // sender: join request accepted
	TypeLeave                     // receiver: leaving the multicast group
	TypeLeaveResponse             // sender: leave request received
	TypeControl                   // receiver: request a reduced transmission rate
	TypeKeepalive                 // sender: keep the connection active when idle
	TypeUpdate                    // H-RMC receiver: periodic state information
	TypeProbe                     // H-RMC sender: solicit state information
	// TypeFec carries XOR parity for the forward-error-correction
	// extension (Section 7, item 4); it is not part of the paper's
	// Table 1. Seq is the first covered sequence number, Length the
	// group size.
	TypeFec
	// TypeHeadNak is the repair-tier (hierarchical recovery) analogue of
	// NAK, sent by a downstream receiver to its repair head instead of
	// the sender: Seq is the first missing sequence number, Length the
	// count of consecutive missing packets, and RateAdv the requester's
	// next expected sequence number. Not part of the paper's Table 1.
	TypeHeadNak
	// TypeAggUpdate is one aggregated UPDATE from a repair head to the
	// sender, summarizing the head's whole subtree: Seq is the minimum
	// next-expected sequence number across the head and its downstream
	// members, Length the downstream member count. Not part of the
	// paper's Table 1.
	TypeAggUpdate
	// TypeHeadDecline is a repair head's explicit refusal: the head
	// cannot serve [Seq, Seq+Length) — the range is outside its retained
	// window and the sender has already released it — so downstream
	// receivers must recover end-to-end instead of re-asking the head.
	// Multicast into the subtree like a repair. Not part of the paper's
	// Table 1.
	TypeHeadDecline
	typeMax
)

var typeNames = [...]string{
	TypeInvalid:       "INVALID",
	TypeData:          "DATA",
	TypeNak:           "NAK",
	TypeNakErr:        "NAK_ERR",
	TypeJoin:          "JOIN",
	TypeJoinResponse:  "JOIN_RESPONSE",
	TypeLeave:         "LEAVE",
	TypeLeaveResponse: "LEAVE_RESPONSE",
	TypeControl:       "CONTROL",
	TypeKeepalive:     "KEEPALIVE",
	TypeUpdate:        "UPDATE",
	TypeProbe:         "PROBE",
	TypeFec:           "FEC",
	TypeHeadNak:       "HEAD_NAK",
	TypeAggUpdate:     "AGG_UPDATE",
	TypeHeadDecline:   "HEAD_DECLINE",
}

// String returns the paper's name for the packet type.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Valid reports whether t is a defined wire type.
func (t Type) Valid() bool { return t > TypeInvalid && t < typeMax }

// Types returns the eleven packet types of the paper's Table 1, in
// order. The FEC extension type is excluded: it is this library's
// addition, not part of the paper's wire format.
func Types() []Type {
	ts := make([]Type, 0, TypeProbe)
	for t := TypeData; t <= TypeProbe; t++ {
		ts = append(ts, t)
	}
	return ts
}

// Header flag bits, stored in the top bits of the final header octet.
const (
	FlagURG uint8 = 0x80 // urgent rate request: stop transmission two RTTs
	FlagFIN uint8 = 0x40 // end of the data stream

	flagMask = FlagURG | FlagFIN
	typeMask = ^flagMask & 0xFF
)

// NodeID identifies a host endpoint. In the simulator it is a dense index;
// the UDP transport maps it to and from the peer's unicast address, which
// is all the state the paper's sender keeps per receiver.
type NodeID uint32

// String formats the node as a dotted pseudo-address for logs.
func (n NodeID) String() string {
	return fmt.Sprintf("10.%d.%d.%d", (n>>16)&0xFF, (n>>8)&0xFF, n&0xFF)
}

// Header is the decoded 20-byte RMC/H-RMC packet header.
type Header struct {
	SrcPort uint16
	DstPort uint16
	// Seq is the packet sequence number. Its meaning depends on Type:
	// DATA carries the packet's own sequence number; NAK the first missing
	// sequence number; UPDATE, JOIN, CONTROL and PROBE the next expected
	// (or queried) sequence number; KEEPALIVE the last sequence sent.
	Seq uint32
	// RateAdv is the flow-control rate advertisement in bytes/second:
	// the current transmission rate in sender packets, the suggested
	// reduced rate in CONTROL packets.
	RateAdv uint32
	// Length is the payload length in bytes for DATA packets. For NAK
	// packets it carries the count of consecutive missing packets
	// starting at Seq.
	Length uint32
	// Checksum is the Internet checksum over the header (with this field
	// zero) and payload.
	Checksum uint16
	// Tries counts transmissions of this packet (0 for the first), used
	// for Karn's-algorithm ambiguity detection.
	Tries uint8
	Type  Type
	Flags uint8 // FlagURG | FlagFIN
}

// Packet is a header plus payload. Only DATA packets carry a payload.
type Packet struct {
	Header
	Payload []byte

	// refs is the pool reference count (see pool.go), manipulated with
	// sync/atomic functions. It is a plain int32 rather than an
	// atomic.Int32 so Packet stays trivially copyable (Clone does
	// `q := *p`).
	refs int32
	// borrowed marks a payload that aliases a caller-owned buffer
	// (DecodeBorrow); Put drops such payloads instead of pooling them.
	borrowed bool
}

// Borrowed reports whether the payload aliases a caller-owned buffer
// (see DecodeBorrow) rather than being owned by the packet.
func (p *Packet) Borrowed() bool { return p.borrowed }

// URG reports whether the urgent flag is set.
func (p *Header) URG() bool { return p.Flags&FlagURG != 0 }

// FIN reports whether the end-of-stream flag is set.
func (p *Header) FIN() bool { return p.Flags&FlagFIN != 0 }

// WireSize returns the encoded size of the packet in bytes.
func (p *Packet) WireSize() int { return HeaderSize + len(p.Payload) }

// String renders a compact single-line description for traces.
func (p *Packet) String() string {
	flags := ""
	if p.URG() {
		flags += " URG"
	}
	if p.FIN() {
		flags += " FIN"
	}
	return fmt.Sprintf("%s seq=%d len=%d rate=%d tries=%d%s",
		p.Type, p.Seq, p.Length, p.RateAdv, p.Tries, flags)
}

// Clone returns a deep copy of the packet. The copy owns its payload
// and carries no pool references regardless of p's state.
func (p *Packet) Clone() *Packet {
	q := *p
	q.refs = 0
	q.borrowed = false
	if p.Payload != nil {
		q.Payload = make([]byte, len(p.Payload))
		copy(q.Payload, p.Payload)
	}
	return &q
}

// CloneInto deep-copies p into q, reusing q's payload buffer when its
// capacity suffices. It is the allocation-free companion of Clone for
// pooled packets (packet.Get/Put): q's recycled payload backing array
// absorbs the copy instead of a fresh allocation. q's pool reference
// count is preserved, and the copy owns its payload even when p's was
// borrowed.
func (p *Packet) CloneInto(q *Packet) {
	refs := atomic.LoadInt32(&q.refs)
	var buf []byte
	if !q.borrowed {
		buf = q.Payload[:0]
	}
	*q = *p
	q.borrowed = false
	q.Payload = append(buf, p.Payload...)
	atomic.StoreInt32(&q.refs, refs)
}

// Encoding and decoding errors.
var (
	ErrShortPacket  = errors.New("packet: buffer shorter than header")
	ErrBadChecksum  = errors.New("packet: checksum mismatch")
	ErrBadType      = errors.New("packet: unknown packet type")
	ErrLengthField  = errors.New("packet: length field does not match payload")
	ErrFlagsOverlap = errors.New("packet: flags overlap type bits")
)

// Encode appends the wire encoding of p to dst and returns the extended
// slice. The checksum is computed over the header and payload and stored
// in both the output and p.Checksum.
func (p *Packet) Encode(dst []byte) ([]byte, error) {
	if !p.Type.Valid() {
		return dst, ErrBadType
	}
	if uint8(p.Type)&flagMask != 0 {
		return dst, ErrFlagsOverlap
	}
	if p.Flags&^flagMask != 0 {
		return dst, ErrFlagsOverlap
	}
	off := len(dst)
	dst = append(dst, make([]byte, HeaderSize)...)
	h := dst[off : off+HeaderSize]
	binary.BigEndian.PutUint16(h[0:2], p.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], p.DstPort)
	binary.BigEndian.PutUint32(h[4:8], p.Seq)
	binary.BigEndian.PutUint32(h[8:12], p.RateAdv)
	binary.BigEndian.PutUint32(h[12:16], p.Length)
	// h[16:18] checksum, filled below.
	h[18] = p.Tries
	h[19] = uint8(p.Type) | p.Flags
	dst = append(dst, p.Payload...)
	sum := Checksum(dst[off:])
	binary.BigEndian.PutUint16(dst[off+16:off+18], sum)
	p.Checksum = sum
	return dst, nil
}

// Decode parses one packet from buf, which must contain exactly one
// packet (header plus payload). The payload is copied out of buf.
func Decode(buf []byte) (*Packet, error) {
	var p Packet
	if err := DecodeInto(&p, buf); err != nil {
		return nil, err
	}
	return &p, nil
}

// DecodeInto parses one packet from buf into p, reusing p's payload
// buffer when its capacity suffices — the allocation-free companion of
// Decode for pooled packets on batched receive paths. p's pool
// reference count is preserved; a previously borrowed payload is
// dropped rather than reused (its backing array belongs to someone
// else). On error p is left in an unspecified state (its payload
// buffer is still reusable).
func DecodeInto(p *Packet, buf []byte) error {
	refs := atomic.LoadInt32(&p.refs)
	defer atomic.StoreInt32(&p.refs, refs)
	if len(buf) < HeaderSize {
		return ErrShortPacket
	}
	var pl []byte
	if !p.borrowed {
		pl = p.Payload[:0]
	}
	*p = Packet{}
	p.SrcPort = binary.BigEndian.Uint16(buf[0:2])
	p.DstPort = binary.BigEndian.Uint16(buf[2:4])
	p.Seq = binary.BigEndian.Uint32(buf[4:8])
	p.RateAdv = binary.BigEndian.Uint32(buf[8:12])
	p.Length = binary.BigEndian.Uint32(buf[12:16])
	p.Checksum = binary.BigEndian.Uint16(buf[16:18])
	p.Tries = buf[18]
	p.Type = Type(buf[19] & typeMask)
	p.Flags = buf[19] & flagMask
	p.Payload = pl
	if !p.Type.Valid() {
		return ErrBadType
	}
	if err := verifyChecksum(buf); err != nil {
		return err
	}
	if payload := buf[HeaderSize:]; len(payload) > 0 {
		p.Payload = append(pl, payload...)
	}
	if p.Type == TypeData && p.Length != uint32(len(p.Payload)) {
		return ErrLengthField
	}
	return nil
}

// DecodeBorrow parses one packet from buf into p like DecodeInto, but
// the payload aliases buf[HeaderSize:] instead of being copied — the
// zero-copy decode for receive paths that consume a packet before its
// envelope buffer is reused. The packet is marked borrowed: Put drops
// the aliased payload instead of capturing buf's backing array into
// the pool, and CloneInto/DecodeInto will not write into it.
//
// Ownership: the caller must guarantee buf stays untouched until it is
// done with p (for pooled packets, until the final Put). Mutating buf
// while p is live is observable through p.Payload; mutating it after
// Put is not, because the pool never retains borrowed payloads.
func DecodeBorrow(p *Packet, buf []byte) error {
	refs := atomic.LoadInt32(&p.refs)
	defer atomic.StoreInt32(&p.refs, refs)
	if len(buf) < HeaderSize {
		return ErrShortPacket
	}
	*p = Packet{}
	p.SrcPort = binary.BigEndian.Uint16(buf[0:2])
	p.DstPort = binary.BigEndian.Uint16(buf[2:4])
	p.Seq = binary.BigEndian.Uint32(buf[4:8])
	p.RateAdv = binary.BigEndian.Uint32(buf[8:12])
	p.Length = binary.BigEndian.Uint32(buf[12:16])
	p.Checksum = binary.BigEndian.Uint16(buf[16:18])
	p.Tries = buf[18]
	p.Type = Type(buf[19] & typeMask)
	p.Flags = buf[19] & flagMask
	if !p.Type.Valid() {
		return ErrBadType
	}
	if err := verifyChecksum(buf); err != nil {
		return err
	}
	if payload := buf[HeaderSize:]; len(payload) > 0 {
		p.Payload = payload
		p.borrowed = true
	}
	if p.Type == TypeData && p.Length != uint32(len(p.Payload)) {
		return ErrLengthField
	}
	return nil
}

func verifyChecksum(buf []byte) error {
	want := binary.BigEndian.Uint16(buf[16:18])
	// Compute with the checksum field zeroed, without mutating buf.
	sum := checksumZeroed(buf, 16)
	if sum != want {
		return ErrBadChecksum
	}
	return nil
}

// Checksum computes the 16-bit Internet checksum (RFC 1071) of b with the
// bytes at the checksum offset treated as zero if the caller has already
// zeroed them. Callers encoding a packet should zero the checksum field
// first; Encode does this implicitly by computing before filling it in.
func Checksum(b []byte) uint16 {
	var sum uint32
	n := len(b)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if n%2 == 1 {
		sum += uint32(b[n-1]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum >> 16) + (sum & 0xFFFF)
	}
	return ^uint16(sum)
}

// checksumZeroed computes the Internet checksum of b treating the two
// bytes at off as zero.
func checksumZeroed(b []byte, off int) uint16 {
	var sum uint32
	n := len(b)
	for i := 0; i+1 < n; i += 2 {
		hi, lo := b[i], b[i+1]
		if i == off {
			hi, lo = 0, 0
		}
		sum += uint32(hi)<<8 | uint32(lo)
	}
	if n%2 == 1 {
		v := b[n-1]
		if n-1 == off {
			v = 0
		}
		sum += uint32(v) << 8
	}
	for sum > 0xFFFF {
		sum = (sum >> 16) + (sum & 0xFFFF)
	}
	return ^uint16(sum)
}
