package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTypeNames(t *testing.T) {
	want := map[Type]string{
		TypeData:          "DATA",
		TypeNak:           "NAK",
		TypeNakErr:        "NAK_ERR",
		TypeJoin:          "JOIN",
		TypeJoinResponse:  "JOIN_RESPONSE",
		TypeLeave:         "LEAVE",
		TypeLeaveResponse: "LEAVE_RESPONSE",
		TypeControl:       "CONTROL",
		TypeKeepalive:     "KEEPALIVE",
		TypeUpdate:        "UPDATE",
		TypeProbe:         "PROBE",
	}
	for ty, name := range want {
		if ty.String() != name {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), name)
		}
		if !ty.Valid() {
			t.Errorf("%s not Valid()", name)
		}
	}
	if TypeInvalid.Valid() {
		t.Error("TypeInvalid reports Valid()")
	}
	if Type(200).Valid() {
		t.Error("Type(200) reports Valid()")
	}
}

func TestTypesTable(t *testing.T) {
	ts := Types()
	if len(ts) != 11 {
		t.Fatalf("Types() returned %d types, want the 11 of Table 1", len(ts))
	}
	if ts[0] != TypeData || ts[len(ts)-1] != TypeProbe {
		t.Errorf("Types() order wrong: %v", ts)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := &Packet{
		Header: Header{
			SrcPort: 5001,
			DstPort: 7000,
			Seq:     0xDEADBEEF,
			RateAdv: 1_250_000,
			Length:  5,
			Tries:   3,
			Type:    TypeData,
			Flags:   FlagFIN,
		},
		Payload: []byte("hello"),
	}
	buf, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderSize+5 {
		t.Fatalf("encoded size %d, want %d", len(buf), HeaderSize+5)
	}
	q, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.SrcPort != p.SrcPort || q.DstPort != p.DstPort || q.Seq != p.Seq ||
		q.RateAdv != p.RateAdv || q.Length != p.Length || q.Tries != p.Tries ||
		q.Type != p.Type || q.Flags != p.Flags {
		t.Errorf("decoded header mismatch:\n got %+v\nwant %+v", q.Header, p.Header)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Errorf("payload mismatch: %q vs %q", q.Payload, p.Payload)
	}
	if !q.FIN() || q.URG() {
		t.Errorf("flags decoded wrong: URG=%v FIN=%v", q.URG(), q.FIN())
	}
}

func TestEncodeAppends(t *testing.T) {
	p := &Packet{Header: Header{Type: TypeKeepalive, Seq: 9}}
	prefix := []byte{1, 2, 3}
	buf, err := p.Encode(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:3], prefix) {
		t.Error("Encode overwrote existing bytes")
	}
	if _, err := Decode(buf[3:]); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	p := &Packet{Header: Header{Type: TypeData, Seq: 1, Length: 3}, Payload: []byte("abc")}
	good, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Decode(good[:HeaderSize-1]); err != ErrShortPacket {
		t.Errorf("short buffer: got %v, want ErrShortPacket", err)
	}

	// Corrupt a payload byte: checksum must catch it.
	bad := append([]byte(nil), good...)
	bad[HeaderSize] ^= 0xFF
	if _, err := Decode(bad); err != ErrBadChecksum {
		t.Errorf("corrupted payload: got %v, want ErrBadChecksum", err)
	}

	// Corrupt a header byte.
	bad = append([]byte(nil), good...)
	bad[4] ^= 0x01
	if _, err := Decode(bad); err != ErrBadChecksum {
		t.Errorf("corrupted header: got %v, want ErrBadChecksum", err)
	}

	// Unknown type (also breaks checksum, so patch the type byte on a
	// packet and recompute by re-encoding through a raw buffer).
	bad = append([]byte(nil), good...)
	bad[19] = 63 // valid flags bits clear, type out of range
	bad[16], bad[17] = 0, 0
	sum := Checksum(bad)
	bad[16], bad[17] = byte(sum>>8), byte(sum)
	if _, err := Decode(bad); err != ErrBadType {
		t.Errorf("unknown type: got %v, want ErrBadType", err)
	}

	// DATA length field disagreeing with payload size.
	bad = append([]byte(nil), good...)
	bad[15] = 7 // length = 7, payload = 3
	bad[16], bad[17] = 0, 0
	sum = Checksum(bad)
	bad[16], bad[17] = byte(sum>>8), byte(sum)
	if _, err := Decode(bad); err != ErrLengthField {
		t.Errorf("length mismatch: got %v, want ErrLengthField", err)
	}
}

func TestEncodeRejectsBadType(t *testing.T) {
	p := &Packet{Header: Header{Type: TypeInvalid}}
	if _, err := p.Encode(nil); err != ErrBadType {
		t.Errorf("got %v, want ErrBadType", err)
	}
	p = &Packet{Header: Header{Type: TypeData, Flags: 0x01}}
	if _, err := p.Encode(nil); err != ErrFlagsOverlap {
		t.Errorf("bad flags: got %v, want ErrFlagsOverlap", err)
	}
}

func TestChecksumKnownValues(t *testing.T) {
	// RFC 1071 example: bytes 00 01 f2 03 f4 f5 f6 f7 sum to ddf2 before
	// complement, so checksum is ^0xddf2 = 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Errorf("Checksum = %#04x, want 0x220d", got)
	}
	// Odd length pads with a zero byte.
	if got, want := Checksum([]byte{0xFF}), ^uint16(0xFF00); got != want {
		t.Errorf("odd-length checksum = %#04x, want %#04x", got, want)
	}
	if got := Checksum(nil); got != 0xFFFF {
		t.Errorf("empty checksum = %#04x, want 0xFFFF", got)
	}
}

func TestClone(t *testing.T) {
	p := &Packet{Header: Header{Type: TypeData, Length: 2, Seq: 7}, Payload: []byte{1, 2}}
	q := p.Clone()
	q.Payload[0] = 99
	q.Seq = 8
	if p.Payload[0] != 1 || p.Seq != 7 {
		t.Error("Clone shares state with the original")
	}
}

func TestCloneInto(t *testing.T) {
	p := &Packet{Header: Header{Type: TypeData, Length: 2, Seq: 7}, Payload: []byte{1, 2}}
	q := &Packet{Payload: make([]byte, 0, 64)}
	keep := &q.Payload[:1][0]
	p.CloneInto(q)
	if q.Seq != 7 || len(q.Payload) != 2 || q.Payload[0] != 1 {
		t.Fatalf("CloneInto result = %+v", q)
	}
	if &q.Payload[0] != keep {
		t.Error("CloneInto discarded the destination's payload capacity")
	}
	q.Payload[0] = 99
	if p.Payload[0] != 1 {
		t.Error("CloneInto shares payload storage with the source")
	}
}

func TestDecodeIntoReusesPayload(t *testing.T) {
	p := &Packet{Header: Header{Type: TypeData, Length: 3}, Payload: []byte{1, 2, 3}}
	buf, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	q := &Packet{Payload: make([]byte, 0, 64)}
	keep := &q.Payload[:1][0]
	if err := DecodeInto(q, buf); err != nil {
		t.Fatal(err)
	}
	if q.Length != 3 || len(q.Payload) != 3 || q.Payload[2] != 3 {
		t.Fatalf("DecodeInto result = %+v", q)
	}
	if &q.Payload[0] != keep {
		t.Error("DecodeInto discarded the destination's payload capacity")
	}
	// A stale destination must be fully overwritten by a payload-less
	// packet.
	bare, err := (&Packet{Header: Header{Type: TypeKeepalive}}).Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeInto(q, bare); err != nil {
		t.Fatal(err)
	}
	if q.Type != TypeKeepalive || len(q.Payload) != 0 {
		t.Fatalf("DecodeInto left stale state: %+v", q)
	}
}

func TestNodeIDString(t *testing.T) {
	if s := NodeID(0x010203).String(); s != "10.1.2.3" {
		t.Errorf("NodeID string = %q", s)
	}
}

func TestHeaderFlagHelpers(t *testing.T) {
	h := Header{Flags: FlagURG}
	if !h.URG() || h.FIN() {
		t.Error("URG-only header decoded wrong")
	}
	h = Header{Flags: FlagURG | FlagFIN}
	if !h.URG() || !h.FIN() {
		t.Error("URG|FIN header decoded wrong")
	}
}

// Property: every valid random packet round-trips exactly.
func TestPropRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(src, dst uint16, seq, rate uint32, tries uint8, tyRaw, flagRaw uint8, payload []byte) bool {
		ty := Type(tyRaw%uint8(typeMax-1)) + 1
		if ty != TypeData {
			payload = nil
		}
		p := &Packet{
			Header: Header{
				SrcPort: src, DstPort: dst, Seq: seq, RateAdv: rate,
				Length: uint32(len(payload)), Tries: tries, Type: ty,
				Flags: (flagRaw & flagMask),
			},
			Payload: payload,
		}
		if ty == TypeNak {
			p.Length = rng.Uint32() // NAK length is a missing-count, not payload size
		}
		buf, err := p.Encode(nil)
		if err != nil {
			return false
		}
		q, err := Decode(buf)
		if err != nil {
			return false
		}
		return q.Header == p.Header && bytes.Equal(q.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: flipping any single byte of an encoded packet is either
// detected (decode error) or leaves the packet identical (impossible for
// a flip, so: always detected or decodes to different-but-valid only if
// the checksum collides — the Internet checksum cannot collide on a
// single-byte flip, so any flip must error or restore the original).
func TestPropSingleByteCorruptionDetected(t *testing.T) {
	p := &Packet{
		Header:  Header{SrcPort: 1, DstPort: 2, Seq: 3, RateAdv: 4, Length: 8, Type: TypeData},
		Payload: []byte("payload!"),
	}
	buf, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), buf...)
			mut[i] ^= bit
			if _, err := Decode(mut); err == nil {
				t.Fatalf("flip of byte %d bit %#x went undetected", i, bit)
			}
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	p := &Packet{
		Header:  Header{Type: TypeData, Length: 1400},
		Payload: make([]byte, 1400),
	}
	buf := make([]byte, 0, p.WireSize())
	b.SetBytes(int64(p.WireSize()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = p.Encode(buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	p := &Packet{
		Header:  Header{Type: TypeData, Length: 1400},
		Payload: make([]byte, 1400),
	}
	buf, err := p.Encode(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
