// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation via the experiments harness — one testing.B
// benchmark per figure. Each iteration reproduces the figure's full
// sweep in quick mode (shrunken file sizes); run cmd/hrmc-bench for the
// paper-scale version. Key series values are attached as custom metrics
// so `go test -bench` output records the reproduced numbers.
package repro

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/app"
	"repro/internal/experiments"
	"repro/internal/rate"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/session"
	"repro/internal/transport"
)

func quickOpts() experiments.Options {
	return experiments.Options{Seeds: 1, Quick: true}
}

// reportTables attaches the last-buffer value of each series of each
// panel as a benchmark metric, e.g. "fig10a/3receivers_Mbps".
func reportTables(b *testing.B, tables []*experiments.Table, unit string) {
	b.Helper()
	for _, tb := range tables {
		for _, s := range tb.Series {
			if len(s.Y) == 0 {
				continue
			}
			b.ReportMetric(s.Y[len(s.Y)-1], tb.ID+"/"+sanitizeMetric(s.Label)+"_"+unit)
		}
		for _, note := range tb.Notes {
			b.Logf("%s: %s", tb.ID, note)
		}
	}
}

func sanitizeMetric(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		}
	}
	return string(out)
}

func benchFigure(b *testing.B, name, unit string) {
	r, ok := experiments.Find(name)
	if !ok {
		b.Fatalf("experiment %s not registered", name)
	}
	var tables []*experiments.Table
	for i := 0; i < b.N; i++ {
		tables = r.Run(quickOpts())
	}
	reportTables(b, tables, unit)
}

// BenchmarkFig3 regenerates Figure 3: percentage of buffer releases with
// complete receiver information, RMC (a) vs H-RMC with updates (b).
func BenchmarkFig3(b *testing.B) { benchFigure(b, "fig3", "pct") }

// BenchmarkFig10 regenerates Figure 10: throughput on the 10 Mbps
// testbed (memory and disk, 10 and 40 MB, 1–3 receivers).
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10", "Mbps") }

// BenchmarkFig11 regenerates Figure 11: feedback activity (rate
// requests and NAKs) in the 10 Mbps disk tests.
func BenchmarkFig11(b *testing.B) { benchFigure(b, "fig11", "count") }

// BenchmarkFig12 regenerates Figure 12: memory-to-memory throughput on
// the 100 Mbps network.
func BenchmarkFig12(b *testing.B) { benchFigure(b, "fig12", "Mbps") }

// BenchmarkFig13 regenerates Figure 13: NAKs from NIC burst drops at
// large kernel buffers on the 100 Mbps network.
func BenchmarkFig13(b *testing.B) { benchFigure(b, "fig13", "naks") }

// BenchmarkFig14 emits the characteristic-group and test-case
// definitions of Figure 14 (no simulation; included for completeness).
func BenchmarkFig14(b *testing.B) { benchFigure(b, "fig14", "def") }

// BenchmarkFig15 regenerates Figure 15: the simulated 10 Mbps study over
// Tests 1–5 and the many-receiver scaling panel.
func BenchmarkFig15(b *testing.B) { benchFigure(b, "fig15", "val") }

// BenchmarkFig16 regenerates Figure 16: the simulated 100 Mbps study and
// the many-receiver headline number.
func BenchmarkFig16(b *testing.B) { benchFigure(b, "fig16", "val") }

// BenchmarkSessionMultiplex measures aggregate live-path throughput as
// a function of concurrent flow count: N sender flows, each with one
// receiver, multiplexed over one internal/session tick loop and one
// in-memory hub. Reported MB/s is aggregate across all flows; the
// interesting series is how it scales (or doesn't) with flows=1→256.
// The wide end (16–64) exercises the batched tick path, where the
// driver takes each flow's lock once per tick for governor bookkeeping,
// machine tick, and demand sampling combined.
func BenchmarkSessionMultiplex(b *testing.B) {
	for _, flows := range benchFlowCounts() {
		b.Run(fmt.Sprintf("flows=%d", flows), func(b *testing.B) {
			const size = 256 << 10
			// Source data and reader scratch live outside the timed loop:
			// the benchmark measures the datapath, not harness churn. A
			// fresh source slice per iteration plus io.ReadAll's doubling
			// used to dominate B/op, and the resulting GC cadence emptied
			// the packet pool every cycle, double-counting the harness as
			// datapath allocations.
			datas := make([][]byte, flows)
			scratch := make([][]byte, flows)
			for g := range datas {
				datas[g] = make([]byte, size)
				app.FillPattern(datas[g], int64(g)<<20)
				scratch[g] = make([]byte, 64<<10)
			}
			b.SetBytes(int64(flows) * size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSessionTransfer(b, datas, scratch)
			}
			b.StopTimer()
			// Per-flow cost makes the "flat to 256 flows" claim checkable:
			// bench.sh gates ns/flow at the wide end against the mid sweep.
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*flows), "ns/flow")
		})
	}
}

// benchFlowCounts returns the flow counts BenchmarkSessionMultiplex
// sweeps. HRMC_BENCH_FLOWS (comma-separated, e.g. "1,12,64") overrides
// the default sweep; scripts/bench.sh uses it to pin the tracked
// 1/12/64 points.
func benchFlowCounts() []int {
	env := os.Getenv("HRMC_BENCH_FLOWS")
	if env == "" {
		return []int{1, 2, 4, 8, 16, 32, 64, 256}
	}
	var out []int
	for _, part := range strings.Split(env, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			continue
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return []int{1, 2, 4, 8, 16, 32, 64, 256}
	}
	return out
}

// runSessionTransfer moves each datas[g] on its own flow through one
// session and asserts full delivery, reading through the caller's
// per-flow scratch buffers.
func runSessionTransfer(b *testing.B, datas, scratch [][]byte) {
	b.Helper()
	hub := transport.NewHub()
	sess := session.New(session.Config{})
	defer sess.Close()
	fast := rate.Config{MinRate: 32e6, MaxRate: 1e9, MSS: 1400}
	var wg sync.WaitGroup
	for g := 0; g < len(datas); g++ {
		sp, rp := uint16(100+2*g), uint16(101+2*g)
		data := datas[g]
		size := len(data)
		rf, err := sess.OpenReceiver(hub.Endpoint(), receiver.Config{
			LocalPort: rp, RemotePort: sp, RcvBuf: 256 << 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := scratch[g]
			total := 0
			for {
				n, err := rf.Read(buf)
				total += n
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Errorf("flow %d read: %v", g, err)
					break
				}
			}
			if total != size {
				b.Errorf("flow %d: delivered %d bytes, want %d", g, total, size)
			}
		}(g)
		sf, err := sess.OpenSender(hub.Endpoint(), sender.Config{
			LocalPort: sp, RemotePort: rp, SndBuf: 256 << 10,
			ExpectedReceivers: 1, MinBufRTTs: 1, Rate: fast,
		})
		if err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := sf.Write(data); err != nil {
				b.Errorf("flow %d write: %v", g, err)
			}
			if err := sf.Close(); err != nil {
				b.Errorf("flow %d close: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
}
