package repro

import "testing"

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// paper's Section 7 extensions, each compared against its baseline in
// one run. Metrics carry the baseline-vs-variant values.

// BenchmarkAblationEarlyProbe measures the early-probe extension:
// probing lagging receivers before the release deadline removes the
// probe round trip from each stop-and-wait window cycle at small
// buffers.
func BenchmarkAblationEarlyProbe(b *testing.B) {
	benchFigure(b, "ext-earlyprobe", "Mbps")
}

// BenchmarkAblationMulticastProbe measures the multicast-probe
// extension: one multicast PROBE replaces a unicast burst when many
// receivers lag at once.
func BenchmarkAblationMulticastProbe(b *testing.B) {
	benchFigure(b, "ext-mcastprobe", "val")
}

// BenchmarkScalingStudy measures throughput and feedback volume as the
// receiver population grows past the paper's 100 (Section 5.2
// discussion).
func BenchmarkScalingStudy(b *testing.B) {
	benchFigure(b, "ext-scaling", "val")
}

// BenchmarkAblationLocalRecovery measures the local-recovery extension:
// multicast NAKs with suppression plus peer-served repairs offload the
// sender's retransmitter.
func BenchmarkAblationLocalRecovery(b *testing.B) {
	benchFigure(b, "ext-localrec", "val")
}

// BenchmarkAblationFec measures the forward-error-correction extension:
// XOR parity converts most NAK round trips into silent local rebuilds.
func BenchmarkAblationFec(b *testing.B) {
	benchFigure(b, "ext-fec", "val")
}
