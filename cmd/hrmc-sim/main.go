// Command hrmc-sim runs a single simulated H-RMC transfer with
// configurable topology and prints the protocol metrics — the generic
// front end to the discrete-event simulator used by the figure
// reproductions.
//
// Example: 10 MB to 8 MAN receivers and 2 WAN receivers over a 10 Mbps
// network with 256 KB kernel buffers, RMC baseline:
//
//	hrmc-sim -mbps 10 -size 10485760 -buffer 262144 -groupB 8 -groupC 2 -mode rmc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/sender"
	"repro/internal/sim"
)

func main() {
	var (
		mbps   = flag.Float64("mbps", 10, "network line rate in Mbps")
		size   = flag.Int64("size", 10<<20, "transfer size in bytes")
		buffer = flag.Int("buffer", 256<<10, "per-socket kernel buffer in bytes")
		nA     = flag.Int("groupA", 3, "receivers in group A (2 ms, 0.005% loss)")
		nB     = flag.Int("groupB", 0, "receivers in group B (20 ms, 0.5% loss)")
		nC     = flag.Int("groupC", 0, "receivers in group C (100 ms, 2% loss)")
		disk   = flag.Bool("disk", false, "use the disk-to-disk application model")
		mode   = flag.String("mode", "hrmc", "protocol mode: hrmc or rmc")
		seed   = flag.Uint64("seed", 1, "simulation seed")
		limit  = flag.Duration("limit", 0, "virtual-time limit (0 = default 2000s)")

		earlyProbe = flag.Float64("early-probe", 0, "early-probe extension: RTTs of lead before the release deadline")
		mcastProbe = flag.Int("mcast-probe", 0, "multicast-probe extension: threshold of lagging receivers")
		traceFlag  = flag.Bool("trace", false, "print a protocol-event trace to stderr")
	)
	flag.Parse()

	var m sender.Mode
	switch *mode {
	case "hrmc":
		m = sender.HRMC
	case "rmc":
		m = sender.RMC
	default:
		fmt.Fprintf(os.Stderr, "hrmc-sim: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	var receivers []netsim.Group
	add := func(g netsim.Group, n int) {
		for i := 0; i < n; i++ {
			receivers = append(receivers, g)
		}
	}
	add(netsim.GroupA, *nA)
	add(netsim.GroupB, *nB)
	add(netsim.GroupC, *nC)
	if len(receivers) == 0 {
		fmt.Fprintln(os.Stderr, "hrmc-sim: no receivers")
		os.Exit(2)
	}

	sc := experiments.Scenario{
		Seed:                    *seed,
		LineRate:                *mbps * 1e6 / 8,
		Buffer:                  *buffer,
		FileSize:                *size,
		Receivers:               receivers,
		DiskIO:                  *disk,
		Mode:                    m,
		Limit:                   sim.Time(*limit),
		EarlyProbeRTTs:          *earlyProbe,
		MulticastProbeThreshold: *mcastProbe,
	}
	if *traceFlag {
		sc.TraceTo = os.Stderr
	}
	res := experiments.Run(sc)

	fmt.Printf("mode:              %v\n", m)
	fmt.Printf("receivers:         %d (A=%d B=%d C=%d)\n", len(receivers), *nA, *nB, *nC)
	fmt.Printf("completed:         %v\n", res.Completed)
	fmt.Printf("duration:          %v\n", res.Duration)
	fmt.Printf("throughput:        %.2f Mbps\n", res.ThroughputMbps)
	fmt.Printf("release info:      %.1f%% of releases had complete receiver state\n", res.ReleaseInfoPct)
	fmt.Printf("naks:              %.0f\n", res.Naks)
	fmt.Printf("rate requests:     %.0f (+%.0f urgent)\n", res.RateRequests, res.Urgents)
	fmt.Printf("updates:           %.0f\n", res.Updates)
	fmt.Printf("probes:            %.0f\n", res.ProbesSent)
	fmt.Printf("retransmissions:   %.0f\n", res.Retrans)
	fmt.Printf("nak errors:        %.0f\n", res.NakErrs)
	fmt.Printf("drops:             %.0f router, %.0f NIC\n", res.RouterDrops, res.NICDrops)
	if res.BadBytes > 0 {
		fmt.Printf("CORRUPTED BYTES:   %.0f\n", res.BadBytes)
		os.Exit(1)
	}
	if !res.Completed && m == sender.HRMC {
		fmt.Println("WARNING: H-RMC transfer did not complete within the limit")
		os.Exit(1)
	}
}
