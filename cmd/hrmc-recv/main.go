// Command hrmc-recv joins an H-RMC multicast group and writes the
// reliably delivered stream to a file or stdout. See hrmc-send for a
// same-host demo.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/session"
	"repro/internal/udpmcast"
)

func main() {
	var (
		group  = flag.String("group", "239.66.66.66:9999", "multicast group address")
		out    = flag.String("out", "-", "output file (- for stdout)")
		rcvbuf = flag.Int("rcvbuf", 512<<10, "receive buffer (kernel-buffer analogue) in bytes")
		iface  = flag.String("iface", "", "interface to join on (default: loopback if present, else system default)")
		fecK   = flag.Int("fec", 0, "FEC parity group size K (0 disables; must match the sender's -fec)")
	)
	flag.Parse()

	var ifi *net.Interface
	if *iface != "" {
		var err error
		ifi, err = net.InterfaceByName(*iface)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hrmc-recv: %v\n", err)
			os.Exit(1)
		}
	} else if lo, err := net.InterfaceByName("lo"); err == nil {
		ifi = lo
	}

	tr, err := udpmcast.NewReceiverTransport(*group, ifi)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hrmc-recv: %v\n", err)
		os.Exit(1)
	}

	var dst io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hrmc-recv: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}

	// All flow knobs funnel through the canonical session.FlowSpec, the
	// same translation the daemon's control plane admits flows with.
	spec := session.FlowSpec{Kind: session.KindReceiver, Buf: *rcvbuf}
	if *fecK > 0 {
		spec.Fec = session.FecConfig{Enabled: true, K: *fecK}
	}
	rcv := core.NewReceiver(tr, spec.ReceiverConfig())
	fmt.Fprintf(os.Stderr, "hrmc-recv: joined %s, waiting for data\n", *group)
	start := time.Now()
	n, err := io.Copy(dst, rcv)
	rcv.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hrmc-recv: %v\n", err)
		os.Exit(1)
	}
	el := time.Since(start)
	st := rcv.Stats()
	fmt.Fprintf(os.Stderr, "hrmc-recv: received %d bytes in %v (%.2f Mbps)\n",
		n, el.Round(time.Millisecond), float64(n)*8/el.Seconds()/1e6)
	fmt.Fprintf(os.Stderr, "hrmc-recv: %d data pkts, %d dups, %d naks sent, %d updates sent, %d probes answered\n",
		st.DataReceived, st.Duplicates, st.NaksSent, st.UpdatesSent, st.ProbesReceived)
}
