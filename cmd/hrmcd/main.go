// Command hrmcd is the multi-group H-RMC daemon: one process serving
// many concurrent reliable-multicast transfers — senders and receivers
// across independent groups — over a single internal/session driver
// (one 10 ms tick loop, one receive loop per UDP socket, an optional
// aggregate bandwidth budget shared fairly among the sending flows).
//
// Flows are admitted through the internal/control plane. The JSON
// config file is only the initial state; with -listen (or "listen" in
// the config) the same control plane is served over HTTP, and flows
// can be admitted, observed, tuned, drained, and closed at runtime:
//
//	hrmcd -example > hrmcd.json
//	hrmcd -config hrmcd.json -listen 127.0.0.1:8383
//	curl http://127.0.0.1:8383/v1/status
//	curl -X POST http://127.0.0.1:8383/v1/flows -d \
//	  '{"name":"dist-c","group":"239.66.66.68:11999","role":"send","size":1048576,"receivers":1}'
//	curl -X DELETE 'http://127.0.0.1:8383/v1/flows/3?mode=drain'
//	curl -X POST http://127.0.0.1:8383/v1/shutdown
//
// -listen also accepts unix sockets as "unix:/path/to.sock".
//
// Without a listener the daemon exits once every configured transfer
// completes, as before. With one it keeps serving until a shutdown is
// requested (SIGINT/SIGTERM or POST /v1/shutdown), then drains every
// flow and exits; a second signal aborts immediately.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/control"
	"repro/internal/session"
	"repro/internal/transport"
	"repro/internal/udpmcast"
)

// Config is the daemon's JSON configuration — the initial control-plane
// state.
type Config struct {
	// TickMS is the shared driver tick in milliseconds (default 10,
	// one kernel jiffy).
	TickMS int `json:"tick_ms"`
	// BudgetMbps, when positive, caps the aggregate send rate of all
	// sending groups, in megabits/second; the demand-aware fair-share
	// governor splits it by weight. PATCH /v1/governor adjusts it at
	// runtime.
	BudgetMbps float64 `json:"budget_mbps"`
	// StatsEverySec prints a session snapshot line at this period
	// (default 5; 0 disables).
	StatsEverySec int `json:"stats_every_sec"`
	// Loopback pins multicast egress to 127.0.0.1 for same-host demos.
	Loopback bool `json:"loopback"`
	// Listen, when set, serves the control-plane HTTP API on this
	// address ("host:port" or "unix:/path"); the -listen flag
	// overrides it.
	Listen string `json:"listen,omitempty"`
	// RetentionSec, when positive, evicts terminal flows from the
	// control plane that long after they finish, bounding /v1/status and
	// /metrics cardinality on long-lived daemons; 0 keeps them until an
	// explicit forget. The -retention flag overrides it.
	RetentionSec int `json:"retention_sec,omitempty"`
	// Shards, when positive, switches the daemon to the shared-socket
	// group transport: that many socket pairs (and receive-poller pairs)
	// host every admitted group, chosen per group by hash, so serving
	// 1,000 groups costs O(shards) fds and goroutines instead of
	// O(groups). Requires DataPort; 0 keeps the classic
	// one-socket-per-flow dialer.
	Shards int `json:"shards,omitempty"`
	// DataPort is the UDP data port shared by every group in sharded
	// mode. Group addresses must be bare IPs or ip:DataPort.
	DataPort int `json:"data_port,omitempty"`
	// GSO, when explicitly false, disables UDP segmentation offload
	// (GSO on send, GRO on receive) for every socket the daemon opens.
	// Unset or true leaves offload on; kernels without UDP_SEGMENT /
	// UDP_GRO fall back automatically either way.
	GSO *bool `json:"gso,omitempty"`
	// SendPollers is how many session send pollers drain staged
	// outgoing traffic, with transports spread across them round-robin.
	// 0 defaults to Shards in sharded mode (TX parallelism matching the
	// shard count) and 1 otherwise.
	SendPollers int `json:"send_pollers,omitempty"`
	// Groups lists the flows admitted at startup. In classic
	// (non-sharded) mode each distinct group needs its own UDP port:
	// Linux delivers multicast for same-port sockets in one SO_REUSEPORT
	// group to a single hash-chosen socket, which strands the other
	// groups. In sharded mode all groups share DataPort and are told
	// apart by group address.
	Groups []control.FlowSpec `json:"groups"`
}

const exampleConfig = `{
  "tick_ms": 10,
  "budget_mbps": 50,
  "stats_every_sec": 5,
  "loopback": true,
  "listen": "127.0.0.1:8383",
  "groups": [
    {"name": "dist-a", "group": "239.66.66.66:9999", "role": "send",
     "file": "/etc/hostname", "receivers": 1, "weight": 2},
    {"name": "dist-b", "group": "239.66.66.67:10999", "role": "send",
     "size": 1048576, "receivers": 1, "fec": 8},
    {"name": "mirror-b", "group": "239.66.66.67:10999", "role": "recv",
     "file": "/tmp/mirror-b.out", "fec": 8}
  ]
}
`

func main() {
	var (
		cfgPath   = flag.String("config", "", "JSON config file (see -example)")
		listen    = flag.String("listen", "", `control API address ("host:port" or "unix:/path"); overrides the config`)
		retention = flag.Duration("retention", 0, "evict terminal flows from the control plane this long after they finish (0 keeps them until an explicit forget); overrides the config")
		pprofAddr = flag.String("pprof", "", `serve net/http/pprof on this address (e.g. "127.0.0.1:6060") for live datapath profiling`)
		example   = flag.Bool("example", false, "print an example config and exit")
	)
	flag.Parse()
	if *example {
		fmt.Print(exampleConfig)
		return
	}
	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers registered by the
			// net/http/pprof import; the control API runs on its own mux,
			// so nothing else is exposed here.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "hrmcd: pprof: %v\n", err)
			}
		}()
		fmt.Printf("hrmcd: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}
	cfg, err := loadConfig(*cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hrmcd: %v\n", err)
		os.Exit(2)
	}
	if *listen != "" {
		cfg.Listen = *listen
	}
	if *retention > 0 {
		cfg.RetentionSec = int(retention.Seconds())
	}
	if len(cfg.Groups) == 0 && cfg.Listen == "" {
		fmt.Fprintln(os.Stderr, "hrmcd: nothing to do: no groups configured and no -listen address (try -example)")
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hrmcd: %v\n", err)
		os.Exit(1)
	}
}

func loadConfig(path string) (*Config, error) {
	cfg := &Config{TickMS: 10, StatsEverySec: 5}
	if path == "" {
		return cfg, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, cfg); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	control.AssignPorts(cfg.Groups)
	return cfg, nil
}

// mcastDialer creates one UDP-multicast socket per admitted flow — the
// classic mode, for daemons serving a handful of groups.
type mcastDialer struct {
	loopback bool
}

func (d mcastDialer) Dial(spec control.FlowSpec) (control.Link, error) {
	if spec.Role == control.RoleSend {
		var opts []udpmcast.SenderOption
		if d.loopback {
			opts = append(opts, udpmcast.WithEgressIP(net.IPv4(127, 0, 0, 1)))
		}
		tr, err := udpmcast.NewSenderTransport(spec.Group, opts...)
		if err != nil {
			return control.Link{}, err
		}
		return control.Link{Transport: tr}, nil
	}
	var ifi *net.Interface
	if d.loopback {
		lo, err := net.InterfaceByName("lo")
		if err != nil {
			return control.Link{}, fmt.Errorf("loopback configured but no lo interface: %w", err)
		}
		ifi = lo
	}
	tr, err := udpmcast.NewReceiverTransport(spec.Group, ifi)
	if err != nil {
		return control.Link{}, err
	}
	return control.Link{Transport: tr}, nil
}

// newDialer builds the flow dialer the config asks for: sharded mode
// opens cfg.Shards shared group transports on cfg.DataPort up front
// and admits every flow onto them; classic mode dials one socket per
// flow. The returned closer tears the shard sockets down (idempotent —
// the session also closes transports it hosted flows on).
func newDialer(cfg *Config) (control.Dialer, func(), error) {
	if cfg.Shards <= 0 {
		return mcastDialer{loopback: cfg.Loopback}, func() {}, nil
	}
	if cfg.DataPort <= 0 {
		return nil, nil, fmt.Errorf("sharded mode (shards=%d) requires data_port", cfg.Shards)
	}
	shards := make([]transport.GroupTransport, 0, cfg.Shards)
	closeAll := func() {
		for _, s := range shards {
			s.(*udpmcast.GroupTransport).Close()
		}
	}
	for i := 0; i < cfg.Shards; i++ {
		gt, err := udpmcast.NewGroupTransport(udpmcast.GroupConfig{
			Port:     cfg.DataPort,
			Loopback: cfg.Loopback,
		})
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("shard %d/%d: %w", i, cfg.Shards, err)
		}
		shards = append(shards, gt)
	}
	d, err := control.NewShardedDialer(shards)
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	return d, closeAll, nil
}

func run(cfg *Config) error {
	if cfg.GSO != nil && !*cfg.GSO {
		udpmcast.SetOffload(false)
	} else if gso, gro := udpmcast.ProbeOffload(); gso || gro {
		fmt.Printf("hrmcd: UDP offload: gso=%v gro=%v\n", gso, gro)
	}
	dialer, closeShards, err := newDialer(cfg)
	if err != nil {
		return err
	}
	defer closeShards()
	pollers := cfg.SendPollers
	if pollers <= 0 && cfg.Shards > 0 {
		pollers = cfg.Shards
	}
	if cfg.Shards > 0 {
		fmt.Printf("hrmcd: sharded transport: %d shard socket pairs on data port %d, %d send pollers\n",
			cfg.Shards, cfg.DataPort, pollers)
	}
	sess := session.New(session.Config{
		TickInterval: time.Duration(cfg.TickMS) * time.Millisecond,
		Budget:       cfg.BudgetMbps * 1e6 / 8,
		SendPollers:  pollers,
	})
	mgr := control.NewManager(control.ManagerConfig{
		Session:   sess,
		Dialer:    dialer,
		Retention: time.Duration(cfg.RetentionSec) * time.Second,
		Logf: func(format string, args ...any) {
			fmt.Printf("hrmcd: "+format+"\n", args...)
		},
	})

	// shutdownCh fires once on the first shutdown request (signal or
	// POST /v1/shutdown); a second signal aborts outright.
	shutdownCh := make(chan struct{}, 1)
	requestShutdown := func() {
		select {
		case shutdownCh <- struct{}{}:
		default:
		}
	}
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "hrmcd: %v — draining (signal again to abort)\n", s)
		requestShutdown()
		s = <-sig
		fmt.Fprintf(os.Stderr, "hrmcd: %v — aborting\n", s)
		sess.Abort()
		os.Exit(1)
	}()

	var httpSrv *http.Server
	if cfg.Listen != "" {
		ln, err := listenControl(cfg.Listen)
		if err != nil {
			sess.Abort()
			return err
		}
		httpSrv = &http.Server{Handler: control.NewServer(mgr, requestShutdown).Handler()}
		go func() {
			if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "hrmcd: control API: %v\n", err)
			}
		}()
		fmt.Printf("hrmcd: control API on %s\n", cfg.Listen)
	}

	// The config file is just the first batch of admissions.
	for _, spec := range cfg.Groups {
		if _, err := mgr.Admit(spec); err != nil {
			sess.Abort()
			return fmt.Errorf("admit %s: %w", spec.Name, err)
		}
	}

	// Without a listener the daemon is a batch job: done when the
	// configured transfers are. With one, it runs until told to stop.
	initialDone := make(chan struct{})
	go func() { mgr.Wait(); close(initialDone) }()

	var ticker *time.Ticker
	if cfg.StatsEverySec > 0 {
		ticker = time.NewTicker(time.Duration(cfg.StatsEverySec) * time.Second)
		defer ticker.Stop()
	}
	start := time.Now()
	for {
		var tick <-chan time.Time
		if ticker != nil {
			tick = ticker.C
		}
		var batchDone <-chan struct{}
		if cfg.Listen == "" {
			batchDone = initialDone
		}
		select {
		case <-tick:
			printSnapshot(os.Stdout, start, sess.Snapshot())
		case <-batchDone:
			return finish(cfg, sess, mgr, httpSrv, start)
		case <-shutdownCh:
			fmt.Println("hrmcd: shutdown requested — draining flows")
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			err := mgr.Shutdown(ctx)
			cancel()
			if ferr := finish(cfg, sess, mgr, httpSrv, start); err == nil {
				err = ferr
			}
			return err
		}
	}
}

// finish prints the last snapshot, reports failed flows, and closes the
// control listener and the session.
func finish(cfg *Config, sess *session.Session, mgr *control.Manager, httpSrv *http.Server, start time.Time) error {
	printSnapshot(os.Stdout, start, sess.Snapshot())
	var firstErr error
	for _, fs := range mgr.List() {
		if fs.State == control.StateFailed {
			err := fmt.Errorf("%s: %s", fs.Name, fs.Error)
			if firstErr == nil {
				firstErr = err
				continue
			}
			fmt.Fprintf(os.Stderr, "hrmcd: %v\n", err)
		}
	}
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = httpSrv.Shutdown(ctx)
		cancel()
	}
	if err := sess.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// listenControl opens the control API listener: "unix:/path" or a TCP
// host:port.
func listenControl(addr string) (net.Listener, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		_ = os.Remove(path)
		return net.Listen("unix", path)
	}
	return net.Listen("tcp", addr)
}

// printSnapshot renders one status line per flow plus the aggregate.
func printSnapshot(w io.Writer, start time.Time, snap session.Snapshot) {
	el := time.Since(start).Round(time.Second)
	for _, f := range snap.Flows {
		switch {
		case f.Sender != nil:
			fmt.Fprintf(w, "hrmcd: [%v] %s (%s :%d) sent=%dB retrans=%d naks=%d rate=%dB/s ceil=%dB/s done=%v\n",
				el, f.Label, f.Kind, f.Port,
				f.Sender.BytesSent, f.Sender.Retransmissions, f.Sender.NaksReceived,
				f.Sender.RateBps, f.Sender.CeilingBps, f.Done)
		case f.Receiver != nil:
			fmt.Fprintf(w, "hrmcd: [%v] %s (%s :%d) delivered=%dB naks=%d updates=%d done=%v\n",
				el, f.Label, f.Kind, f.Port,
				f.Receiver.BytesDelivered, f.Receiver.NaksSent, f.Receiver.UpdatesSent, f.Done)
		}
	}
	t := snap.Total
	fmt.Fprintf(w, "hrmcd: [%v] total %d senders %d receivers sent=%dB retrans=%d delivered=%dB rate=%dB/s\n",
		el, t.SenderFlows, t.ReceiverFlows,
		t.Sender.BytesSent, t.Sender.Retransmissions, t.Receiver.BytesDelivered, t.Sender.RateBps)
}
