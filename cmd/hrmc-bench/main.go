// Command hrmc-bench regenerates the tables and figures of the paper's
// evaluation (Section 5). Each figure is printed as text tables: one row
// per kernel-buffer size, one column per series, matching the paper's
// plots.
//
// Usage:
//
//	hrmc-bench -experiment fig10          # one figure
//	hrmc-bench -experiment all -seeds 5   # everything, 5-run averages
//	hrmc-bench -list                      # what is available
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		name   = flag.String("experiment", "all", "figure to regenerate (fig3, fig10, ..., fig16, or all)")
		seeds  = flag.Int("seeds", 3, "seeded runs averaged per data point (the paper averages 5)")
		quick  = flag.Bool("quick", false, "shrink file sizes and sweeps for a fast smoke run")
		list   = flag.Bool("list", false, "list available experiments and exit")
		format = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", r.Name, r.Desc)
		}
		return
	}

	opt := experiments.Options{Seeds: *seeds, Quick: *quick}
	runners := experiments.Registry()
	if *name != "all" {
		r, ok := experiments.Find(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "hrmc-bench: unknown experiment %q (try -list)\n", *name)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	csv := *format == "csv"
	if !csv && *format != "text" {
		fmt.Fprintf(os.Stderr, "hrmc-bench: unknown format %q\n", *format)
		os.Exit(2)
	}
	for _, r := range runners {
		if !csv {
			fmt.Printf("=== %s: %s\n", r.Name, r.Desc)
		}
		start := time.Now()
		for _, tb := range r.Run(opt) {
			if csv {
				fmt.Println(tb.FormatCSV())
			} else {
				fmt.Println(tb.Format())
			}
		}
		if !csv {
			fmt.Printf("    (%s in %v)\n\n", r.Name, time.Since(start).Round(time.Millisecond))
		}
	}
}
