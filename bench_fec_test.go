package repro

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"

	"repro/internal/app"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/rate"
	"repro/internal/receiver"
	"repro/internal/sender"
	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/udpmcast"
)

// gapSink collects gap-filled trace events: each carries the time from
// gap detection to repair (parity rebuild or retransmission arrival) as
// its value, so the mean is the receiver's loss-recovery latency.
type gapSink struct {
	mu    sync.Mutex
	total sim.Time
	n     int64
}

func (s *gapSink) Emit(e trace.Event) {
	if e.Kind != trace.GapFilled {
		return
	}
	s.mu.Lock()
	s.total += sim.Time(e.Value)
	s.n++
	s.mu.Unlock()
}

func (s *gapSink) meanMs() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return 0
	}
	return float64(s.total) / float64(s.n) / float64(sim.Millisecond)
}

// BenchmarkFecCrossover measures what proactive parity buys over the
// pure selective-NAK path: per-loss recovery latency (the "recovery-ms"
// metric — NAK recovery costs an RTT plus timer grain, parity recovery
// only the rest of the group's serialization) and the allocation cost
// of running the parity pipeline, at 1% and 5% loss, in three
// harnesses: the discrete-event netsim, the live session datapath over
// a lossy in-memory hub, and the same live datapath over real UDP
// multicast on the loopback interface (internal/udpmcast) with
// downlink loss injected by a wrapper transport. The udp arm skips
// itself where loopback multicast is unavailable. scripts/bench.sh
// writes the series to BENCH_7.json and gates the ≥2× latency win and
// the ≤1.2× allocation ceiling.
func BenchmarkFecCrossover(b *testing.B) {
	for _, loss := range []float64{0.01, 0.05} {
		for _, fecK := range []int{0, 8} {
			mode := "nak"
			if fecK > 0 {
				mode = "fec"
			}
			name := fmt.Sprintf("loss=%dpct/%s", int(loss*100+0.5), mode)
			b.Run("netsim/"+name, func(b *testing.B) {
				benchNetsimCrossover(b, loss, fecK)
			})
			b.Run("live/"+name, func(b *testing.B) {
				benchLiveCrossover(b, loss, fecK)
			})
			b.Run("udp/"+name, func(b *testing.B) {
				benchUdpCrossover(b, loss, fecK)
			})
		}
	}
}

// benchNetsimCrossover runs one 1 MiB transfer per iteration through
// the simulated 10 Mbps WAN at the given loss rate, varying the seed
// per iteration, and reports the mean gap-recovery latency.
func benchNetsimCrossover(b *testing.B, loss float64, fecK int) {
	const size = 1 << 20
	sink := &gapSink{}
	g := netsim.Group{Name: "bench", Delay: 20 * sim.Millisecond, Loss: loss}
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := netsim.DefaultConfig(netsim.Rate10Mbps, uint64(17+i))
		net := netsim.New(cfg)
		rcfg := rate.DefaultConfig()
		rcfg.MaxRate = netsim.Rate10Mbps
		s := sender.New(sender.Config{
			SndBuf: 256 << 10, Mode: sender.HRMC, Rate: rcfg,
			ExpectedReceivers: 1, FECGroupSize: fecK,
		})
		net.AddSender(s, app.NewMemorySource(size))
		net.AddReceiver(receiver.New(receiver.Config{
			RcvBuf: 256 << 10, Mode: receiver.HRMC,
			FECGroupSize: fecK, Trace: sink,
		}), g, app.MemorySink{})
		res := net.Run(600 * sim.Second)
		if !res.Completed {
			b.Fatalf("netsim transfer (loss=%.2f fec=%d) did not complete", loss, fecK)
		}
	}
	b.StopTimer()
	b.ReportMetric(sink.meanMs(), "recovery-ms")
}

// benchLiveCrossover runs one 256 KiB transfer per iteration through
// the real concurrent datapath — session tick loop, shared send poller,
// pooled buffers, receive-window recycling — over an in-memory hub
// that drops the given fraction of packets. Alloc figures here are the
// parity pipeline's real cost: parity XOR on send, group cache and
// rebuild on receive.
func benchLiveCrossover(b *testing.B, loss float64, fecK int) {
	const size = 256 << 10
	data := make([]byte, size)
	app.FillPattern(data, 7<<20)
	scratch := make([]byte, 64<<10)
	sink := &gapSink{}
	fast := rate.Config{MinRate: 32e6, MaxRate: 1e9, MSS: 1400}
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub := transport.NewHub(transport.WithLoss(loss, int64(29+i)))
		runCrossoverTransfer(b, sink, data, scratch, hub.Endpoint(), hub.Endpoint(), fecK, fast)
	}
	b.StopTimer()
	b.ReportMetric(sink.meanMs(), "recovery-ms")
}

// benchUdpCrossover runs the identical live transfer over real UDP
// multicast on the loopback interface: syscalls, sendmmsg batching, a
// real socket buffer. udpmcast has no built-in loss, so a wrapper
// transport drops each receiver-inbound packet independently (downlink
// loss — the path proactive parity protects; feedback upstream is
// clean). Skips where loopback multicast is unavailable.
func benchUdpCrossover(b *testing.B, loss float64, fecK int) {
	lo, err := net.InterfaceByName("lo")
	if err != nil {
		b.Skipf("no loopback interface: %v", err)
	}
	const size = 256 << 10
	data := make([]byte, size)
	app.FillPattern(data, 9<<20)
	scratch := make([]byte, 64<<10)
	sink := &gapSink{}
	fast := rate.Config{MinRate: 32e6, MaxRate: 1e9, MSS: 1400}
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh group port per iteration keeps straggler datagrams
		// from a finished transfer out of the next one.
		group := fmt.Sprintf("239.77.13.9:%d", 40200+i%1024)
		rt, err := udpmcast.NewReceiverTransport(group, lo)
		if err != nil {
			b.Skipf("loopback multicast unavailable: %v", err)
		}
		st, err := udpmcast.NewSenderTransport(group, udpmcast.WithEgressIP(net.IPv4(127, 0, 0, 1)))
		if err != nil {
			rt.Close()
			b.Skipf("loopback multicast unavailable: %v", err)
		}
		lossy := &lossyUDP{
			ReceiverTransport: rt,
			p:                 loss,
			rng:               rand.New(rand.NewSource(int64(43 + i))),
		}
		runCrossoverTransfer(b, sink, data, scratch, lossy, st, fecK, fast)
	}
	b.StopTimer()
	b.ReportMetric(sink.meanMs(), "recovery-ms")
}

// runCrossoverTransfer pushes data through one sender→receiver session
// pair over the given transports, verifying bit-exact delivery. The
// session closes both transports on teardown.
func runCrossoverTransfer(b *testing.B, sink *gapSink, data, scratch []byte, rtr, str transport.Transport, fecK int, fast rate.Config) {
	size := len(data)
	sess := session.New(session.Config{})
	var opts []session.FlowOption
	if fecK > 0 {
		opts = append(opts, session.WithFec(session.FecConfig{Enabled: true, K: fecK}))
	}
	rf, err := sess.OpenReceiver(rtr, receiver.Config{
		LocalPort: 101, RemotePort: 100, RcvBuf: 256 << 10, Trace: sink,
	}, opts...)
	if err != nil {
		b.Fatal(err)
	}
	sf, err := sess.OpenSender(str, sender.Config{
		LocalPort: 100, RemotePort: 101, SndBuf: 256 << 10,
		ExpectedReceivers: 1, MinBufRTTs: 1, Rate: fast,
	}, opts...)
	if err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		total := 0
		for {
			n, err := rf.Read(scratch)
			if n > 0 {
				if !bytes.Equal(scratch[:n], data[total:total+n]) {
					b.Errorf("corrupt delivery at offset %d", total)
					return
				}
			}
			total += n
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Errorf("read: %v", err)
				break
			}
		}
		if total != size {
			b.Errorf("delivered %d bytes, want %d", total, size)
		}
	}()
	if _, err := sf.Write(data); err != nil {
		b.Errorf("write: %v", err)
	}
	if err := sf.Close(); err != nil {
		b.Errorf("close: %v", err)
	}
	wg.Wait()
	if err := sess.Close(); err != nil {
		b.Errorf("session close: %v", err)
	}
}

// lossyUDP injects downlink loss into a real-UDP receiver transport:
// each inbound packet is dropped independently with probability p,
// seeded deterministically. It overrides both the batch and the
// per-packet receive paths so the loss draw happens regardless of how
// the session lifts the transport.
type lossyUDP struct {
	*udpmcast.ReceiverTransport
	p   float64
	mu  sync.Mutex
	rng *rand.Rand
}

func (l *lossyUDP) RecvBatch(buf []transport.Envelope) (int, error) {
	for {
		n, err := l.ReceiverTransport.RecvBatch(buf)
		if n == 0 || err != nil {
			return n, err
		}
		kept := 0
		l.mu.Lock()
		for i := 0; i < n; i++ {
			if l.rng.Float64() < l.p {
				transport.PutPacket(buf[i].Pkt)
				buf[i].Pkt = nil
				continue
			}
			buf[kept] = buf[i]
			kept++
		}
		l.mu.Unlock()
		if kept > 0 {
			return kept, nil
		}
	}
}

func (l *lossyUDP) Recv() (*packet.Packet, packet.NodeID, error) {
	var buf [1]transport.Envelope
	for {
		n, err := l.RecvBatch(buf[:])
		if err != nil {
			return nil, 0, err
		}
		if n == 1 {
			return buf[0].Pkt, buf[0].From, nil
		}
	}
}
